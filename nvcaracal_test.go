package nvcaracal

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"nvcaracal/internal/nvm"
)

const tbl = uint32(1)

func setTxn(key uint64, val []byte) *Txn {
	in := binary.LittleEndian.AppendUint64(nil, key)
	in = append(in, val...)
	return &Txn{
		TypeID: 1,
		Input:  in,
		Ops:    []Op{{Table: tbl, Key: key, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			ctx.Insert(tbl, key, val)
		},
	}
}

func facadeRegistry() *Registry {
	reg := NewRegistry()
	reg.Register(1, func(d []byte, _ *DB) (*Txn, error) {
		return setTxn(binary.LittleEndian.Uint64(d), d[8:]), nil
	})
	return reg
}

func TestOpenZeroConfig(t *testing.T) {
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Cores() < 1 {
		t.Fatal("no cores")
	}
	if _, err := db.RunEpoch([]*Txn{setTxn(1, []byte("v"))}); err != nil {
		t.Fatal(err)
	}
	v, ok := db.Get(tbl, 1)
	if !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q,%v", v, ok)
	}
}

func TestOpenWithDeviceCrashRecover(t *testing.T) {
	cfg := Config{Cores: 2, Registry: facadeRegistry()}
	db, dev, err := OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunEpoch([]*Txn{setTxn(7, []byte("durable"))}); err != nil {
		t.Fatal(err)
	}
	dev.Crash(nvm.CrashStrict, 1)
	db2, rep, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointEpoch != 1 {
		t.Fatalf("rep = %+v", rep)
	}
	v, ok := db2.Get(tbl, 7)
	if !ok || !bytes.Equal(v, []byte("durable")) {
		t.Fatalf("Get after recovery = %q,%v", v, ok)
	}
}

func TestRecoverWithoutRegistryFails(t *testing.T) {
	cfg := Config{Cores: 1, Registry: facadeRegistry()}
	_, dev, err := OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev, Config{Cores: 1}); err == nil {
		t.Fatal("recovery without registry accepted")
	}
}

func TestModesOpen(t *testing.T) {
	for _, m := range []StorageMode{ModeNVCaracal, ModeNoLogging, ModeHybrid, ModeAllNVMM, ModeAllDRAM} {
		db, err := Open(Config{Cores: 1, Mode: m})
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		if _, err := db.RunEpoch([]*Txn{setTxn(1, []byte("x"))}); err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
	}
}

func TestLatencyConfigSlowsNVMM(t *testing.T) {
	fast, err := Open(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Open(Config{Cores: 1, NVMMWriteLatency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	run := func(db *DB) time.Duration {
		start := time.Now()
		batch := make([]*Txn, 32)
		for i := range batch {
			batch[i] = setTxn(uint64(i), []byte("value"))
		}
		if _, err := db.RunEpoch(batch); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	tf, ts := run(fast), run(slow)
	if ts < tf*2 {
		t.Fatalf("latency model ineffective: fast=%v slow=%v", tf, ts)
	}
}

func TestBadLayoutRejected(t *testing.T) {
	if _, err := Open(Config{Cores: 1, RowSize: 100}); err == nil {
		t.Fatal("invalid row size accepted")
	}
}

func TestPersistIndexRecovery(t *testing.T) {
	cfg := Config{Cores: 2, Registry: facadeRegistry(), PersistIndex: true}
	db, dev, err := OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch []*Txn
	for i := uint64(0); i < 100; i++ {
		batch = append(batch, setTxn(i, []byte{byte(i)}))
	}
	if _, err := db.RunEpoch(batch); err != nil {
		t.Fatal(err)
	}
	dev.Crash(nvm.CrashStrict, 9)
	db2, rep, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedIndexJournal {
		t.Fatal("facade PersistIndex did not engage the journal")
	}
	if db2.RowCount() != 100 {
		t.Fatalf("RowCount = %d", db2.RowCount())
	}
}

func TestAriaFacade(t *testing.T) {
	areg := NewAriaRegistry()
	areg.Register(7, func(d []byte, _ *DB) (*AriaTxn, error) {
		return &AriaTxn{
			TypeID: 7, Input: d,
			Exec: func(ctx *AriaCtx) {
				ctx.Write(tbl, binary.LittleEndian.Uint64(d), d[8:])
			},
		}, nil
	})
	cfg := Config{Cores: 2, Registry: facadeRegistry(), AriaRegistry: areg}
	db, dev, err := OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := append(binary.LittleEndian.AppendUint64(nil, 3), []byte("aria!")...)
	txn := &AriaTxn{TypeID: 7, Input: in, Exec: func(ctx *AriaCtx) {
		ctx.Write(tbl, 3, []byte("aria!"))
	}}
	res, err := db.RunEpochAria([]*AriaTxn{txn})
	if err != nil || res.Committed != 1 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	dev.Crash(CrashStrict, 1)
	db2, _, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := db2.Get(tbl, 3)
	if !ok || !bytes.Equal(v, []byte("aria!")) {
		t.Fatalf("aria row after recovery: %q,%v", v, ok)
	}
}

func TestCacheHotOnlyConfig(t *testing.T) {
	db, err := Open(Config{Cores: 1, CacheHotOnly: true, DisableCacheOnRead: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunEpoch([]*Txn{setTxn(1, []byte("cold"))}); err != nil {
		t.Fatal(err)
	}
	if n := db.Metrics().CacheEntries; n != 0 {
		t.Fatalf("cold single-write row cached: %d entries", n)
	}
}

func TestMemoryAndMetricsExposed(t *testing.T) {
	db, err := Open(Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.RunEpoch([]*Txn{setTxn(1, []byte("x"))}); err != nil {
		t.Fatal(err)
	}
	if db.Memory().RowBytes == 0 {
		t.Fatal("Memory breakdown empty")
	}
	if db.Metrics().TxnsCommitted != 1 {
		t.Fatal("Metrics not wired")
	}
}
