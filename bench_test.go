// Benchmarks: one testing.B family per table/figure of the paper's
// evaluation (§6). Each benchmark measures the figure's central cell(s) at
// reduced dataset scale with the simulated NVMM latency model enabled, and
// reports auxiliary metrics (transient share, NVMM line writes per txn)
// that drive the figure's shape. `go run ./cmd/nvbench` produces the full
// figure series; these benches make the same comparisons available to
// `go test -bench`.
package nvcaracal_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"nvcaracal"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/workload/smallbank"
	"nvcaracal/internal/workload/tpcc"
	"nvcaracal/internal/workload/ycsb"
	"nvcaracal/internal/zen"
)

const (
	benchYCSBRows  = 8_000
	benchSBCust    = 9_000
	benchEpochSize = 500
	benchReadLat   = 60 * time.Nanosecond
	benchWriteLat  = 250 * time.Nanosecond
)

// --- setup helpers ---

func ycsbDB(b *testing.B, hotOps int, smallrow bool, mode nvcaracal.StorageMode, mut func(*nvcaracal.Config)) (*ycsb.Workload, *nvcaracal.DB, *nvcaracal.Device) {
	b.Helper()
	cfg := ycsb.DefaultConfig(benchYCSBRows)
	if smallrow {
		cfg = ycsb.SmallRowConfig(benchYCSBRows)
	}
	cfg.HotOps = hotOps
	w, err := ycsb.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	fc := nvcaracal.Config{
		Mode:             mode,
		Registry:         reg,
		RowsPerCore:      benchYCSBRows*2 + 8192,
		ValuesPerCore:    benchYCSBRows*3 + 8192,
		NVMMReadLatency:  benchReadLat,
		NVMMWriteLatency: benchWriteLat,
	}
	if mode == nvcaracal.ModeAllDRAM {
		fc.NVMMReadLatency, fc.NVMMWriteLatency = 0, 0
	}
	if mut != nil {
		mut(&fc)
	}
	db, dev, err := nvcaracal.OpenWithDevice(fc)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range w.LoadBatches(4000) {
		if _, err := db.RunEpoch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return w, db, dev
}

func smallbankDB(b *testing.B, hotspot int, mode nvcaracal.StorageMode, mut func(*nvcaracal.Config)) (*smallbank.Workload, *nvcaracal.DB, *nvcaracal.Device) {
	b.Helper()
	w, err := smallbank.New(smallbank.DefaultConfig(benchSBCust, hotspot))
	if err != nil {
		b.Fatal(err)
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	fc := nvcaracal.Config{
		Mode:             mode,
		Registry:         reg,
		RowSize:          128,
		ValueSize:        64,
		RowsPerCore:      benchSBCust*6 + 8192,
		ValuesPerCore:    8192,
		NVMMReadLatency:  benchReadLat,
		NVMMWriteLatency: benchWriteLat,
	}
	if mode == nvcaracal.ModeAllDRAM {
		fc.NVMMReadLatency, fc.NVMMWriteLatency = 0, 0
	}
	if mut != nil {
		mut(&fc)
	}
	db, dev, err := nvcaracal.OpenWithDevice(fc)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range w.LoadBatches(4000) {
		if _, err := db.RunEpoch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return w, db, dev
}

func tpccDB(b *testing.B, warehouses int, epochsHint int) (*tpcc.Workload, *nvcaracal.DB) {
	b.Helper()
	cfg := tpcc.DefaultConfig(warehouses)
	cfg.CustomersPerDistrict = 60
	cfg.Items = 400
	w, err := tpcc.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	base := cfg.Items + warehouses*(1+cfg.Items) + warehouses*cfg.Districts*(2+2*cfg.CustomersPerDistrict)
	fc := nvcaracal.Config{
		Mode:             nvcaracal.ModeNVCaracal,
		Registry:         reg,
		Counters:         cfg.RequiredCounters(),
		RevertOnRecovery: true,
		RowsPerCore:      int64(base) + int64(epochsHint)*benchEpochSize*8 + 8192,
		ValuesPerCore:    8192,
		NVMMReadLatency:  benchReadLat,
		NVMMWriteLatency: benchWriteLat,
	}
	db, err := nvcaracal.Open(fc)
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range w.LoadBatches(4000) {
		if _, err := db.RunEpoch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return w, db
}

// driveNVC runs b.N transactions in epochs and reports per-txn NVMM
// metrics.
func driveNVC(b *testing.B, db *nvcaracal.DB, dev *nvcaracal.Device, gen func(n int) []*nvcaracal.Txn) {
	b.Helper()
	metBase := db.Metrics()
	var devBase nvm.Stats
	if dev != nil {
		devBase = dev.Stats()
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := min(b.N-done, benchEpochSize)
		batch := gen(n)
		b.StopTimer() // generation is client-side
		b.StartTimer()
		if _, err := db.RunEpoch(batch); err != nil {
			b.Fatal(err)
		}
		done += n
	}
	b.StopTimer()
	m := db.Metrics().Sub(metBase)
	b.ReportMetric(m.TransientShare(), "transient-share")
	if dev != nil {
		d := dev.Stats().Sub(devBase)
		b.ReportMetric(float64(d.LineWrites)/float64(b.N), "nvmm-writes/txn")
	}
}

func driveZen(b *testing.B, zdb *zen.DB, run func(rng *rand.Rand) error) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables 1-4: configuration construction (cheap sanity bench) ---

func BenchmarkConfigTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ycsb.New(ycsb.DefaultConfig(benchYCSBRows)); err != nil {
			b.Fatal(err)
		}
		if _, err := smallbank.New(smallbank.DefaultConfig(benchSBCust, 100)); err != nil {
			b.Fatal(err)
		}
		if _, err := tpcc.New(tpcc.DefaultConfig(2)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5: YCSB, NVCaracal vs Zen ---

func benchFig5NVC(b *testing.B, hotOps int) {
	w, db, dev := ycsbDB(b, hotOps, false, nvcaracal.ModeNVCaracal, nil)
	rng := rand.New(rand.NewSource(1))
	driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
}

func benchFig5Zen(b *testing.B, hotOps int) {
	cfg := ycsb.DefaultConfig(benchYCSBRows)
	cfg.HotOps = hotOps
	w, err := ycsb.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	zcfg := zen.Config{TupleSize: 1032, Capacity: benchYCSBRows * 2, CacheEntries: benchYCSBRows}
	dev := nvm.New(zcfg.DeviceSize(), nvm.WithLatency(benchReadLat, benchWriteLat))
	zdb, err := zen.Open(dev, zcfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.LoadZen(zdb); err != nil {
		b.Fatal(err)
	}
	driveZen(b, zdb, func(rng *rand.Rand) error { return w.RunZen(zdb, rng) })
}

func BenchmarkFig5YCSB(b *testing.B) {
	for _, c := range []struct {
		name string
		hot  int
	}{{"low", 0}, {"med", 4}, {"high", 7}} {
		b.Run(c.name+"/nvcaracal", func(b *testing.B) { benchFig5NVC(b, c.hot) })
		b.Run(c.name+"/zen", func(b *testing.B) { benchFig5Zen(b, c.hot) })
	}
}

// --- Figure 6: SmallBank, NVCaracal vs Zen ---

func BenchmarkFig6SmallBank(b *testing.B) {
	for _, c := range []struct {
		name    string
		hotspot int
	}{{"low", benchSBCust / 18}, {"high", 60}} {
		b.Run(c.name+"/nvcaracal", func(b *testing.B) {
			w, db, dev := smallbankDB(b, c.hotspot, nvcaracal.ModeNVCaracal, nil)
			rng := rand.New(rand.NewSource(2))
			driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
		})
		b.Run(c.name+"/zen", func(b *testing.B) {
			w, err := smallbank.New(smallbank.DefaultConfig(benchSBCust, c.hotspot))
			if err != nil {
				b.Fatal(err)
			}
			zcfg := zen.Config{TupleSize: 64, Capacity: benchSBCust * 4, CacheEntries: benchSBCust}
			dev := nvm.New(zcfg.DeviceSize(), nvm.WithLatency(benchReadLat, benchWriteLat))
			zdb, err := zen.Open(dev, zcfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.LoadZen(zdb); err != nil {
				b.Fatal(err)
			}
			driveZen(b, zdb, func(rng *rand.Rand) error { return w.RunZen(zdb, rng) })
		})
	}
}

// --- Figure 7: NVCaracal vs all-NVMM vs hybrid (default 256 B rows) ---

func BenchmarkFig7Designs(b *testing.B) {
	modes := []nvcaracal.StorageMode{
		nvcaracal.ModeNVCaracal, nvcaracal.ModeHybrid, nvcaracal.ModeAllNVMM,
	}
	for _, workload := range []string{"ycsb", "ycsb-smallrow", "smallbank"} {
		for _, mode := range modes {
			b.Run(workload+"/high/"+mode.String(), func(b *testing.B) {
				switch workload {
				case "ycsb", "ycsb-smallrow":
					w, db, dev := ycsbDB(b, 7, workload == "ycsb-smallrow", mode,
						func(c *nvcaracal.Config) { c.RowSize = 256 })
					rng := rand.New(rand.NewSource(3))
					driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
				case "smallbank":
					w, db, dev := smallbankDB(b, 60, mode,
						func(c *nvcaracal.Config) { c.RowSize = 256 })
					rng := rand.New(rand.NewSource(3))
					driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
				}
			})
		}
	}
	for _, mode := range modes {
		b.Run("tpcc/high/"+mode.String(), func(b *testing.B) {
			w, db := tpccDB(b, 1, b.N/benchEpochSize+2)
			rng := rand.New(rand.NewSource(3))
			driveNVC(b, db, nil, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, db, n) })
		})
	}
}

// --- Figure 8: memory accounting cost ---

func BenchmarkFig8MemoryBreakdown(b *testing.B) {
	w, db, dev := ycsbDB(b, 4, false, nvcaracal.ModeNVCaracal, nil)
	rng := rand.New(rand.NewSource(4))
	if _, err := db.RunEpoch(w.GenBatch(rng, benchEpochSize)); err != nil {
		b.Fatal(err)
	}
	_ = dev
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		m := db.Memory()
		total += m.DRAMTotal() + m.NVMMTotal()
	}
	b.ReportMetric(float64(db.Memory().NVMMTotal())/(1<<20), "nvmm-MiB")
	b.ReportMetric(float64(db.Memory().DRAMTotal())/(1<<20), "dram-MiB")
	_ = total
}

// --- Figure 9: optimization ablations ---

func BenchmarkFig9Optimizations(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*nvcaracal.Config)
	}{
		{"full", nil},
		{"no-minor-gc", func(c *nvcaracal.Config) { c.DisableMinorGC = true }},
		{"no-cache", func(c *nvcaracal.Config) { c.DisableCache = true }},
	}
	for _, v := range variants {
		b.Run("ycsb-smallrow/high/"+v.name, func(b *testing.B) {
			w, db, dev := ycsbDB(b, 7, true, nvcaracal.ModeNVCaracal, v.mut)
			rng := rand.New(rand.NewSource(5))
			driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
		})
		b.Run("smallbank/high/"+v.name, func(b *testing.B) {
			w, db, dev := smallbankDB(b, 60, nvcaracal.ModeNVCaracal, v.mut)
			rng := rand.New(rand.NewSource(5))
			driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
		})
	}
}

// --- Figure 10: cost of failure-recovery support ---

func BenchmarkFig10RecoverySupport(b *testing.B) {
	for _, v := range []struct {
		name string
		mode nvcaracal.StorageMode
	}{
		{"nvcaracal", nvcaracal.ModeNVCaracal},
		{"no-logging", nvcaracal.ModeNoLogging},
		{"all-dram", nvcaracal.ModeAllDRAM},
	} {
		b.Run("smallbank/high/"+v.name, func(b *testing.B) {
			w, db, dev := smallbankDB(b, 60, v.mode, nil)
			rng := rand.New(rand.NewSource(6))
			driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
		})
	}
}

// --- Figure 11: recovery ---

func BenchmarkFig11Recovery(b *testing.B) {
	// Each iteration: crash a prepared database mid-epoch and recover.
	w, err := smallbank.New(smallbank.DefaultConfig(benchSBCust, 60))
	if err != nil {
		b.Fatal(err)
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	cfg := nvcaracal.Config{
		Registry: reg, RowSize: 128, ValueSize: 64,
		RowsPerCore: benchSBCust*6 + 8192, ValuesPerCore: 8192,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db, dev, err := nvcaracal.OpenWithDevice(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, batch := range w.LoadBatches(4000) {
			if _, err := db.RunEpoch(batch); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := db.RunEpoch(w.GenBatch(rng, benchEpochSize)); err != nil {
			b.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil && r != nvcaracal.ErrInjectedCrash {
					panic(r)
				}
			}()
			dev.SetFailAfter(300)
			db.RunEpoch(w.GenBatch(rng, benchEpochSize))
		}()
		dev.Crash(nvcaracal.CrashStrict, int64(i))
		b.StartTimer()
		if _, _, err := nvcaracal.Recover(dev, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 12: epoch size sweep ---

func BenchmarkFig12EpochSize(b *testing.B) {
	for _, size := range []int{125, 500, 2000} {
		b.Run(itoa(size), func(b *testing.B) {
			w, db, dev := smallbankDB(b, 60, nvcaracal.ModeNVCaracal, nil)
			rng := rand.New(rand.NewSource(7))
			metBase := db.Metrics()
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := min(b.N-done, size)
				if _, err := db.RunEpoch(w.GenBatch(rng, n)); err != nil {
					b.Fatal(err)
				}
				done += n
			}
			b.StopTimer()
			b.ReportMetric(db.Metrics().Sub(metBase).TransientShare(), "transient-share")
			_ = dev
		})
	}
}

// --- Group-commit front-end: concurrent Submit vs hand-batched epochs ---

// BenchmarkSubmitVsHandBatched measures the overhead of the concurrent
// group-commit front-end against a single caller hand-assembling the same
// epochs. Both variants run SmallBank at low contention with the same batch
// cap; the submit variant pushes pre-generated transactions through 8
// goroutines. The front-end's throughput should land within ~20% of the
// hand-batched baseline.
func BenchmarkSubmitVsHandBatched(b *testing.B) {
	const submitters = 8
	b.Run("hand-batched", func(b *testing.B) {
		w, db, dev := smallbankDB(b, benchSBCust/18, nvcaracal.ModeNVCaracal, nil)
		rng := rand.New(rand.NewSource(8))
		driveNVC(b, db, dev, func(n int) []*nvcaracal.Txn { return w.GenBatch(rng, n) })
	})
	b.Run("submit", func(b *testing.B) {
		w, db, _ := smallbankDB(b, benchSBCust/18, nvcaracal.ModeNVCaracal, nil)
		rng := rand.New(rand.NewSource(8))
		txns := w.GenBatch(rng, b.N) // generation is client-side, excluded from the timer
		epochBase := db.Epoch()
		b.ResetTimer()
		s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
			MaxBatch: benchEpochSize,
			MaxDelay: 2 * time.Millisecond,
		})
		futs := make([]*nvcaracal.Future, len(txns))
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(txns); i += submitters {
					f, err := s.Submit(txns[i])
					if err != nil {
						b.Error(err)
						return
					}
					futs[i] = f
				}
			}(g)
		}
		wg.Wait()
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, f := range futs {
			if f == nil {
				b.Fatal("missing future")
			}
			if r := f.Wait(); r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		b.ReportMetric(float64(db.Epoch()-epochBase), "epochs")
	})
}

// --- §7 extension: Aria-style CC on the same NVMM substrate ---

// BenchmarkAriaVsCaracal contrasts the two deterministic CC schemes under
// a contended RMW workload: Caracal-style epochs commit every transaction
// (DRAM absorbs intermediate versions); Aria must defer conflict losers to
// later epochs, so its goodput falls as contention rises.
func BenchmarkAriaVsCaracal(b *testing.B) {
	const hotKeys = 64
	mkRMWTxn := func(key uint64, tag byte) *nvcaracal.Txn {
		return &nvcaracal.Txn{
			TypeID: 1,
			Ops:    []nvcaracal.Op{{Table: 1, Key: key, Kind: nvcaracal.OpUpdate}},
			Exec: func(ctx *nvcaracal.Ctx) {
				old, _ := ctx.Read(1, key)
				buf := make([]byte, len(old))
				copy(buf, old)
				buf[0] = tag
				ctx.Write(1, key, buf)
			},
		}
	}
	mkAriaRMW := func(key uint64, tag byte) *nvcaracal.AriaTxn {
		return &nvcaracal.AriaTxn{
			TypeID: 1,
			Exec: func(ctx *nvcaracal.AriaCtx) {
				old, _ := ctx.Read(1, key)
				buf := make([]byte, len(old))
				copy(buf, old)
				buf[0] = tag
				ctx.Write(1, key, buf)
			},
		}
	}
	open := func(b *testing.B) (*nvcaracal.DB, *nvcaracal.Device) {
		db, dev, err := nvcaracal.OpenWithDevice(nvcaracal.Config{
			Registry:         nvcaracal.NewRegistry(),
			NVMMReadLatency:  benchReadLat,
			NVMMWriteLatency: benchWriteLat,
		})
		if err != nil {
			b.Fatal(err)
		}
		var load []*nvcaracal.Txn
		for k := uint64(0); k < hotKeys; k++ {
			key := k
			load = append(load, &nvcaracal.Txn{
				TypeID: 2,
				Ops:    []nvcaracal.Op{{Table: 1, Key: key, Kind: nvcaracal.OpInsert}},
				Exec: func(ctx *nvcaracal.Ctx) {
					ctx.Insert(1, key, make([]byte, 64))
				},
			})
		}
		if _, err := db.RunEpoch(load); err != nil {
			b.Fatal(err)
		}
		return db, dev
	}
	b.Run("caracal", func(b *testing.B) {
		db, _ := open(b)
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := min(b.N-done, benchEpochSize)
			batch := make([]*nvcaracal.Txn, n)
			for i := range batch {
				batch[i] = mkRMWTxn(uint64(rng.Intn(hotKeys)), byte(i))
			}
			if _, err := db.RunEpoch(batch); err != nil {
				b.Fatal(err)
			}
			done += n
		}
	})
	b.Run("aria", func(b *testing.B) {
		db, _ := open(b)
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		committed := 0
		var pending []*nvcaracal.AriaTxn
		for committed < b.N {
			for len(pending) < benchEpochSize && committed+len(pending) < b.N {
				pending = append(pending, mkAriaRMW(uint64(rng.Intn(hotKeys)), byte(committed)))
			}
			res, err := db.RunEpochAria(pending)
			if err != nil {
				b.Fatal(err)
			}
			committed += res.Committed
			pending = res.Deferred
		}
		b.StopTimer()
		b.ReportMetric(float64(db.Epoch()), "epochs-needed")
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
