package prof

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilProfilerSafe(t *testing.T) {
	var p *Profiler
	end := p.Region("execute")
	end()
	end = p.RegionNested("minor-gc", "execute")
	end()
	p.EpochTask(7).End()
	p.SetEpochSource(func() uint64 { return 1 })
	if _, err := p.CaptureCPU(&bytes.Buffer{}, time.Millisecond); err == nil {
		t.Fatal("nil profiler CaptureCPU: want error")
	}
	if _, err := p.CaptureTrace(&bytes.Buffer{}, time.Millisecond); err == nil {
		t.Fatal("nil profiler CaptureTrace: want error")
	}
	if _, err := p.CaptureCPUBytes(time.Millisecond); err == nil {
		t.Fatal("nil profiler CaptureCPUBytes: want error")
	}
}

// burn spins under a phase label until stop flips, so CPU samples land with
// predictable attribution.
func burn(stop *atomic.Bool, phase string) {
	end := (&Profiler{}).Region(phase)
	defer end()
	x := 0
	for !stop.Load() {
		x++
	}
	_ = x
}

func TestCaptureCPUParsesWithPhaseLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := New(Config{})
	for attempt := 0; ; attempt++ {
		var stop atomic.Bool
		go burn(&stop, "persist")
		var buf bytes.Buffer
		win, err := p.CaptureCPU(&buf, 300*time.Millisecond)
		stop.Store(true)
		if err != nil {
			t.Fatalf("CaptureCPU: %v", err)
		}
		if win.Elapsed < 250*time.Millisecond {
			t.Fatalf("window elapsed %v, want >= 250ms", win.Elapsed)
		}
		prof, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		if len(prof.SampleTypes) == 0 {
			t.Fatal("no sample types in CPU profile")
		}
		labeled := 0
		for i := range prof.Samples {
			if prof.Samples[i].Label(LabelPhase) == "persist" {
				labeled++
			}
		}
		if labeled > 0 {
			idx, err := prof.SampleIndex("cpu")
			if err != nil {
				t.Fatalf("SampleIndex: %v", err)
			}
			rep := Phases(prof, idx, 3)
			found := false
			for _, c := range rep.Phases {
				if c.Phase == "persist" && c.Value > 0 {
					found = true
				}
			}
			if !found {
				t.Fatalf("phase report missing persist cell: %+v", rep.Phases)
			}
			return
		}
		if attempt >= 2 {
			t.Fatal("no phase-labeled samples after 3 attempts")
		}
	}
}

func TestCaptureCPUEpochsWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var epoch atomic.Uint64
	p := New(Config{Epoch: epoch.Load})
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				epoch.Add(1)
			}
		}
	}()
	defer close(done)

	var buf bytes.Buffer
	win, err := p.CaptureCPUEpochs(&buf, 5, 5*time.Second)
	if err != nil {
		t.Fatalf("CaptureCPUEpochs: %v", err)
	}
	if win.EndEpoch < win.StartEpoch+5 {
		t.Fatalf("window covered %d..%d, want >= 5 epochs", win.StartEpoch, win.EndEpoch)
	}
	if win.Elapsed >= 5*time.Second {
		t.Fatalf("capture hit max-wait (%v) instead of the epoch bound", win.Elapsed)
	}
	if _, err := Parse(buf.Bytes()); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}

func TestCaptureBusy(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := New(Config{})
	started := make(chan struct{})
	doneC := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		close(started)
		_, err := p.CaptureCPU(&buf, 300*time.Millisecond)
		doneC <- err
	}()
	<-started
	time.Sleep(50 * time.Millisecond)
	if _, err := p.CaptureCPU(&bytes.Buffer{}, time.Millisecond); !errors.Is(err, ErrCaptureBusy) {
		t.Fatalf("concurrent capture: got %v, want ErrCaptureBusy", err)
	}
	if err := <-doneC; err != nil {
		t.Fatalf("first capture: %v", err)
	}
}

func TestCaptureTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	p := New(Config{})
	var buf bytes.Buffer
	// Open a region while the trace runs so a user region lands in it.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				end := p.Region("execute")
				time.Sleep(time.Millisecond)
				end()
			}
		}
	}()
	_, err := p.CaptureTrace(&buf, 100*time.Millisecond)
	close(stop)
	if err != nil {
		t.Fatalf("CaptureTrace: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty execution trace")
	}
	// The trace format carries its string table verbatim; the region name
	// must appear somewhere in the raw bytes.
	if !bytes.Contains(buf.Bytes(), []byte("execute")) {
		t.Fatal("trace does not mention the execute region")
	}
}

// TestParseHeapProfile feeds the parser a real runtime-generated profile
// (heap, since it needs no wall-clock window) and checks the schema.
func TestParseHeapProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap WriteTo: %v", err)
	}
	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := map[string]bool{"alloc_objects": false, "alloc_space": false, "inuse_objects": false, "inuse_space": false}
	for _, st := range p.SampleTypes {
		if _, ok := want[st.Type]; ok {
			want[st.Type] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Fatalf("heap profile missing sample type %q (got %v)", name, p.SampleTypes)
		}
	}
	if len(p.Samples) == 0 {
		t.Fatal("heap profile has no samples")
	}
	found := false
	for i := range p.Samples {
		for _, fr := range p.Samples[i].Stack {
			if fr.Func != "" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no symbolized frames in heap profile")
	}
}

func synthProfile() *Profile {
	return &Profile{
		SampleTypes:   []ValueType{{Type: "samples", Unit: "count"}, {Type: "cpu", Unit: "nanoseconds"}},
		DurationNanos: int64(time.Second),
		Samples: []Sample{
			{
				Stack:  []Frame{{Func: "nvcaracal/internal/nvm.(*Device).Fence"}, {Func: "nvcaracal/internal/core.(*DB).checkpointEpoch"}},
				Values: []int64{8, 80},
				Labels: map[string][]string{LabelPhase: {"persist"}},
			},
			{
				Stack:  []Frame{{Func: "nvcaracal/internal/core.(*DB).executeTxn"}, {Func: "nvcaracal/internal/core.(*DB).executePhase"}},
				Values: []int64{6, 60},
				Labels: map[string][]string{LabelPhase: {"execute"}},
			},
			{
				Stack:  []Frame{{Func: "nvcaracal/internal/core.(*DB).checkpointEpoch"}},
				Values: []int64{2, 20},
				Labels: map[string][]string{LabelPhase: {"persist"}},
			},
			{
				Stack:  []Frame{{Func: "runtime.mallocgc"}},
				Values: []int64{4, 40},
			},
		},
	}
}

func TestTopAndPhases(t *testing.T) {
	p := synthProfile()
	idx, err := p.SampleIndex("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("cpu index = %d, want 1", idx)
	}
	top := Top(p, idx, 2, "", "")
	if len(top) != 2 || top[0].Name != "nvcaracal/internal/nvm.(*Device).Fence" || top[0].Flat != 80 {
		t.Fatalf("Top: %+v", top)
	}
	// checkpointEpoch: flat 20 (leaf sample) + cum 80 from the fence stack.
	for _, e := range Top(p, idx, 0, "", "") {
		if e.Name == "nvcaracal/internal/core.(*DB).checkpointEpoch" {
			if e.Flat != 20 || e.Cum != 100 {
				t.Fatalf("checkpointEpoch flat/cum = %d/%d, want 20/100", e.Flat, e.Cum)
			}
		}
	}

	rep := Phases(p, idx, 2)
	if rep.Total != 200 || rep.Unlabeled != 40 {
		t.Fatalf("total/unlabeled = %d/%d, want 200/40", rep.Total, rep.Unlabeled)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Phase != "persist" {
		t.Fatalf("phases: %+v", rep.Phases)
	}
	persist := rep.Phases[0]
	if persist.Value != 100 || persist.SharePct != 50 {
		t.Fatalf("persist cell: %+v", persist)
	}
	// 80 of 100 persist ns touch internal/nvm frames.
	if persist.DeviceSharePct != 80 {
		t.Fatalf("persist device share = %v, want 80", persist.DeviceSharePct)
	}
}

func TestDiff(t *testing.T) {
	a := synthProfile()
	b := synthProfile()
	b.Samples[1].Values = []int64{6, 160} // execute grew by 100ns
	ia, _ := a.SampleIndex("cpu")
	ib, _ := b.SampleIndex("cpu")
	d := Diff(a, b, ia, ib, 1)
	if len(d) != 1 || d[0].Name != "nvcaracal/internal/core.(*DB).executeTxn" || d[0].Delta != 100 {
		t.Fatalf("Diff: %+v", d)
	}
}

func TestHandlerErrors(t *testing.T) {
	h := NewHandler(New(Config{}))
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get(PprofPath); rec.Code != http.StatusOK {
		t.Fatalf("index: %d", rec.Code)
	}
	for _, bad := range []string{
		PprofPath + "profile?seconds=abc",
		PprofPath + "profile?seconds=-1",
		PprofPath + "profile?seconds=9999",
		PprofPath + "profile?epochs=abc",
		PprofPath + "profile?epochs=-3",
		PprofPath + "trace?epochs=1.5",
		PprofPath + "profile?epochs=2&max-wait=banana",
	} {
		if rec := get(bad); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: got %d, want 400", bad, rec.Code)
		}
	}
	if rec := get(PprofPath + "nosuchprofile"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown profile: got %d, want 404", rec.Code)
	}
	if rec := get(PprofPath + "heap"); rec.Code != http.StatusOK {
		t.Fatalf("heap: %d", rec.Code)
	} else if _, err := Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("heap parse: %v", err)
	}

	// A handler with no profiler rejects captures but still serves runtime
	// profiles.
	bare := NewHandler(nil)
	rec := httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", PprofPath+"profile?seconds=0.1", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("bare profile: got %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", PprofPath+"goroutine", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("bare goroutine: %d", rec.Code)
	}
}

func TestHandlerWindowedCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var epoch atomic.Uint64
	p := New(Config{Epoch: epoch.Load})
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				epoch.Add(1)
			}
		}
	}()
	defer close(done)

	h := NewHandler(p)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", PprofPath+"profile?epochs=3&max-wait=5s", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("windowed profile: %d (%s)", rec.Code, rec.Body.String())
	}
	start, _ := strconv.ParseUint(rec.Header().Get("X-Prof-Epoch-Start"), 10, 64)
	end, _ := strconv.ParseUint(rec.Header().Get("X-Prof-Epoch-End"), 10, 64)
	if end < start+3 {
		t.Fatalf("window %d..%d, want >= 3 epochs", start, end)
	}
	if _, err := Parse(rec.Body.Bytes()); err != nil {
		t.Fatalf("Parse: %v", err)
	}
}
