package prof

// A minimal decoder for the pprof profile.proto wire format. The module has
// no external dependencies by policy, so instead of importing
// github.com/google/pprof this reads the (stable, documented) protobuf
// encoding directly: varint / length-delimited wire types, packed repeated
// scalars, and the string-table indirection. Only the fields the report
// layer needs are decoded; unknown fields are skipped by wire type, so
// profiles from future runtimes still parse.

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// ValueType names one sample-value column, e.g. {Type: "cpu", Unit:
// "nanoseconds"}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Frame is one resolved stack frame. Inline expansions of a single location
// appear as consecutive frames with Inlined set on all but the outermost.
type Frame struct {
	Func    string `json:"func"`
	File    string `json:"file,omitempty"`
	Line    int64  `json:"line,omitempty"`
	Inlined bool   `json:"inlined,omitempty"`
}

// Sample is one profile sample: a stack (leaf first, per pprof convention),
// one value per sample-type column, and the pprof labels attached when the
// sample was taken (the engine sets "phase").
type Sample struct {
	Stack     []Frame
	Values    []int64
	Labels    map[string][]string
	NumLabels map[string][]int64
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
	Comments      []string
}

// Label returns the first string label value for key on s, or "".
func (s *Sample) Label(key string) string {
	if v := s.Labels[key]; len(v) > 0 {
		return v[0]
	}
	return ""
}

// SampleIndex resolves a sample-type name ("cpu", "samples", "alloc_space",
// ...) to its value-column index. An empty name selects the pprof default:
// the last column.
func (p *Profile) SampleIndex(name string) (int, error) {
	if name == "" {
		if len(p.SampleTypes) == 0 {
			return 0, errors.New("prof: profile has no sample types")
		}
		return len(p.SampleTypes) - 1, nil
	}
	for i, st := range p.SampleTypes {
		if st.Type == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("prof: no sample type %q (have %v)", name, p.SampleTypes)
}

// Parse decodes a pprof profile, transparently gunzipping (the runtime
// always emits gzipped profiles; raw protobuf is accepted too).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data = raw
	}
	return parseProfile(data)
}

// --- wire-format primitives ---

var errTruncated = errors.New("prof: truncated profile")

type wbuf struct {
	data []byte
	pos  int
}

func (b *wbuf) done() bool { return b.pos >= len(b.data) }

func (b *wbuf) varint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if b.pos >= len(b.data) {
			return 0, errTruncated
		}
		c := b.data[b.pos]
		b.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift >= 64 {
			return 0, errors.New("prof: varint overflow")
		}
	}
}

// field reads the next tag and returns (fieldNum, wireType).
func (b *wbuf) field() (int, int, error) {
	tag, err := b.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// delimited reads a length-delimited payload.
func (b *wbuf) delimited() ([]byte, error) {
	n, err := b.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b.data)-b.pos) {
		return nil, errTruncated
	}
	out := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return out, nil
}

func (b *wbuf) skip(wireType int) error {
	switch wireType {
	case 0:
		_, err := b.varint()
		return err
	case 1:
		if len(b.data)-b.pos < 8 {
			return errTruncated
		}
		b.pos += 8
		return nil
	case 2:
		_, err := b.delimited()
		return err
	case 5:
		if len(b.data)-b.pos < 4 {
			return errTruncated
		}
		b.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wireType)
	}
}

// repeatedVarints appends one or more varints for a repeated scalar field:
// wire type 2 is the packed encoding, wire type 0 a single element.
func repeatedVarints(b *wbuf, wireType int, dst []uint64) ([]uint64, error) {
	if wireType == 2 {
		payload, err := b.delimited()
		if err != nil {
			return nil, err
		}
		pb := wbuf{data: payload}
		for !pb.done() {
			v, err := pb.varint()
			if err != nil {
				return nil, err
			}
			dst = append(dst, v)
		}
		return dst, nil
	}
	v, err := b.varint()
	if err != nil {
		return nil, err
	}
	return append(dst, v), nil
}

// --- profile.proto messages ---

type rawValueType struct{ typ, unit uint64 } // string-table indexes

type rawLabel struct {
	key, str uint64
	num      int64
	hasNum   bool
}

type rawSample struct {
	locationIDs []uint64
	values      []uint64
	labels      []rawLabel
}

type rawLine struct {
	functionID uint64
	line       int64
}

type rawLocation struct {
	id    uint64
	lines []rawLine
}

type rawFunction struct {
	id, name, file uint64
}

func parseValueType(data []byte) (rawValueType, error) {
	b := wbuf{data: data}
	var vt rawValueType
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return vt, err
		}
		switch f {
		case 1:
			vt.typ, err = b.varint()
		case 2:
			vt.unit, err = b.varint()
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return vt, err
		}
	}
	return vt, nil
}

func parseLabel(data []byte) (rawLabel, error) {
	b := wbuf{data: data}
	var l rawLabel
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return l, err
		}
		switch f {
		case 1:
			l.key, err = b.varint()
		case 2:
			l.str, err = b.varint()
		case 3:
			var v uint64
			v, err = b.varint()
			l.num, l.hasNum = int64(v), true
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return l, err
		}
	}
	return l, nil
}

func parseSample(data []byte) (rawSample, error) {
	b := wbuf{data: data}
	var s rawSample
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return s, err
		}
		switch f {
		case 1:
			s.locationIDs, err = repeatedVarints(&b, wt, s.locationIDs)
		case 2:
			s.values, err = repeatedVarints(&b, wt, s.values)
		case 3:
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var l rawLabel
				l, err = parseLabel(payload)
				s.labels = append(s.labels, l)
			}
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseLine(data []byte) (rawLine, error) {
	b := wbuf{data: data}
	var l rawLine
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return l, err
		}
		switch f {
		case 1:
			l.functionID, err = b.varint()
		case 2:
			var v uint64
			v, err = b.varint()
			l.line = int64(v)
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return l, err
		}
	}
	return l, nil
}

func parseLocation(data []byte) (rawLocation, error) {
	b := wbuf{data: data}
	var loc rawLocation
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return loc, err
		}
		switch f {
		case 1:
			loc.id, err = b.varint()
		case 4:
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var l rawLine
				l, err = parseLine(payload)
				loc.lines = append(loc.lines, l)
			}
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return loc, err
		}
	}
	return loc, nil
}

func parseFunction(data []byte) (rawFunction, error) {
	b := wbuf{data: data}
	var fn rawFunction
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return fn, err
		}
		switch f {
		case 1:
			fn.id, err = b.varint()
		case 2:
			fn.name, err = b.varint()
		case 4:
			fn.file, err = b.varint()
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return fn, err
		}
	}
	return fn, nil
}

func parseProfile(data []byte) (*Profile, error) {
	b := wbuf{data: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   = map[uint64]rawLocation{}
		functions   = map[uint64]rawFunction{}
		strtab      []string
		periodType  rawValueType
		comments    []uint64
		p           Profile
	)
	for !b.done() {
		f, wt, err := b.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1: // sample_type
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var vt rawValueType
				vt, err = parseValueType(payload)
				sampleTypes = append(sampleTypes, vt)
			}
		case 2: // sample
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var s rawSample
				s, err = parseSample(payload)
				samples = append(samples, s)
			}
		case 4: // location
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var loc rawLocation
				loc, err = parseLocation(payload)
				if err == nil {
					locations[loc.id] = loc
				}
			}
		case 5: // function
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				var fn rawFunction
				fn, err = parseFunction(payload)
				if err == nil {
					functions[fn.id] = fn
				}
			}
		case 6: // string_table
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				strtab = append(strtab, string(payload))
			}
		case 9: // time_nanos
			var v uint64
			v, err = b.varint()
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			var v uint64
			v, err = b.varint()
			p.DurationNanos = int64(v)
		case 11: // period_type
			var payload []byte
			payload, err = b.delimited()
			if err == nil {
				periodType, err = parseValueType(payload)
			}
		case 12: // period
			var v uint64
			v, err = b.varint()
			p.Period = int64(v)
		case 13: // comment
			comments, err = repeatedVarints(&b, wt, comments)
		default:
			err = b.skip(wt)
		}
		if err != nil {
			return nil, err
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strtab)) {
			return strtab[i]
		}
		return ""
	}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typ), Unit: str(periodType.unit)}
	for _, c := range comments {
		p.Comments = append(p.Comments, str(c))
	}

	for _, rs := range samples {
		s := Sample{Values: make([]int64, len(rs.values))}
		for i, v := range rs.values {
			s.Values[i] = int64(v)
		}
		for _, locID := range rs.locationIDs {
			loc, ok := locations[locID]
			if !ok {
				s.Stack = append(s.Stack, Frame{Func: fmt.Sprintf("location#%d", locID)})
				continue
			}
			// Location lines list inline expansions leaf-first; keep that
			// order so Stack stays leaf-first end to end.
			for li, line := range loc.lines {
				fn := functions[line.functionID]
				s.Stack = append(s.Stack, Frame{
					Func:    str(fn.name),
					File:    str(fn.file),
					Line:    line.line,
					Inlined: li < len(loc.lines)-1,
				})
			}
		}
		for _, l := range rs.labels {
			key := str(l.key)
			if l.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string][]string{}
				}
				s.Labels[key] = append(s.Labels[key], str(l.str))
			} else if l.hasNum {
				if s.NumLabels == nil {
					s.NumLabels = map[string][]int64{}
				}
				s.NumLabels[key] = append(s.NumLabels[key], l.num)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return &p, nil
}
