package prof

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// PprofPath is where hosts mount the Handler; it deliberately lives beside
// the obs endpoints (/debug/nvcaracal/...) rather than at /debug/pprof so a
// mux can expose both the stock net/http/pprof tree and this one.
const PprofPath = "/debug/nvcaracal/pprof/"

// maxCaptureSeconds bounds on-demand wall-clock captures; longer windows
// should use the epoch-bounded form or cmd/nvprof against a local engine.
const maxCaptureSeconds = 120

// Handler serves capture-on-demand profiles:
//
//	GET .../pprof/            — index
//	GET .../pprof/profile     — CPU profile; ?seconds=F (default 2) or
//	                            ?epochs=N (window over the next N committed
//	                            epochs, ?max-wait=D bound)
//	GET .../pprof/trace       — runtime execution trace, same parameters
//	GET .../pprof/heap        — and allocs, mutex, block, goroutine,
//	                            threadcreate: delegated to runtime profiles
//	GET .../pprof/cmdline     — delegated to net/http/pprof
//	GET .../pprof/symbol      — delegated to net/http/pprof
//
// Epoch-windowed responses carry X-Prof-Epoch-Start/X-Prof-Epoch-End headers
// reporting the committed-epoch range the capture actually covered.
type Handler struct {
	p *Profiler
}

// NewHandler builds a Handler. A nil Profiler serves the runtime-backed
// endpoints (heap, goroutine, ...) but rejects CPU/trace captures.
func NewHandler(p *Profiler) *Handler { return &Handler{p: p} }

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, PprofPath)
	name = strings.TrimPrefix(name, "/") // tolerate mounting without trailing slash
	switch name {
	case "":
		h.serveIndex(w)
	case "profile":
		h.serveCapture(w, r, "profile")
	case "trace":
		h.serveCapture(w, r, "trace")
	case "cmdline":
		httppprof.Cmdline(w, r)
	case "symbol":
		httppprof.Symbol(w, r)
	default:
		// heap, allocs, mutex, block, goroutine, threadcreate; unknown
		// names get net/http/pprof's 404.
		httppprof.Handler(name).ServeHTTP(w, r)
	}
}

func (h *Handler) serveIndex(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "nvcaracal profiling endpoints (under %s):\n\n", PprofPath)
	fmt.Fprint(w, `profile?seconds=F        CPU profile over a wall-clock window
profile?epochs=N         CPU profile over the next N committed epochs
trace?seconds=F|epochs=N runtime execution trace (go tool trace)
heap, allocs             allocation profiles
mutex, block             contention profiles (need rates armed at startup)
goroutine, threadcreate  runtime dumps
cmdline, symbol          net/http/pprof delegates
`)
}

// captureParams parses the shared profile/trace query parameters.
func captureParams(r *http.Request) (seconds float64, epochs int, maxWait time.Duration, err error) {
	q := r.URL.Query()
	seconds = 2
	if s := q.Get("seconds"); s != "" {
		seconds, err = strconv.ParseFloat(s, 64)
		if err != nil || seconds <= 0 || seconds > maxCaptureSeconds {
			return 0, 0, 0, fmt.Errorf("seconds must be in (0, %d], got %q", maxCaptureSeconds, s)
		}
	}
	if s := q.Get("epochs"); s != "" {
		epochs, err = strconv.Atoi(s)
		if err != nil || epochs <= 0 {
			return 0, 0, 0, fmt.Errorf("epochs must be a positive integer, got %q", s)
		}
	}
	maxWait = 30 * time.Second
	if s := q.Get("max-wait"); s != "" {
		maxWait, err = time.ParseDuration(s)
		if err != nil || maxWait <= 0 {
			return 0, 0, 0, fmt.Errorf("max-wait must be a positive duration, got %q", s)
		}
	}
	return seconds, epochs, maxWait, nil
}

func (h *Handler) serveCapture(w http.ResponseWriter, r *http.Request, kind string) {
	seconds, epochs, maxWait, err := captureParams(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.p == nil {
		http.Error(w, "profiler not configured", http.StatusServiceUnavailable)
		return
	}
	// Capture into memory so the epoch-window headers (known only at the
	// end) can precede the body. Profiles and short traces are small.
	var buf bytes.Buffer
	var win Window
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case kind == "profile" && epochs > 0:
		win, err = h.p.CaptureCPUEpochs(&buf, epochs, maxWait)
	case kind == "profile":
		win, err = h.p.CaptureCPU(&buf, d)
	case epochs > 0:
		win, err = h.p.CaptureTraceEpochs(&buf, epochs, maxWait)
	default:
		win, err = h.p.CaptureTrace(&buf, d)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrCaptureBusy) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf(`attachment; filename="%s"`, kind))
	w.Header().Set("X-Prof-Epoch-Start", strconv.FormatUint(win.StartEpoch, 10))
	w.Header().Set("X-Prof-Epoch-End", strconv.FormatUint(win.EndEpoch, 10))
	w.Header().Set("X-Prof-Elapsed", win.Elapsed.String())
	w.Write(buf.Bytes())
}
