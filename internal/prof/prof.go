// Package prof is the epoch-correlated profiling layer. The obs stack says
// which phase of an epoch was slow; prof says which code burned the time,
// using only the runtime's own profilers:
//
//   - Phase regions: the engine wraps each epoch phase (log, init, execute,
//     persist, commit, GC, recovery) in a runtime/trace region plus a pprof
//     goroutine label ("phase" => name). Because goroutine labels are
//     inherited by spawned goroutines, the per-phase worker pools the engine
//     forks inherit the coordinator's label, so CPU samples from worker
//     goroutines attribute to the right phase with no per-sample bookkeeping.
//   - Windowed captures: CPU profiles and execution traces bounded either by
//     wall-clock or by an epoch count ("profile the next 5 epochs"), read off
//     the engine's epoch gauge.
//   - A hand-rolled pprof decoder (pprofparse.go) and report layer
//     (report.go), because the module has no external dependencies.
//
// prof deliberately does not import internal/obs: the engine passes phase
// names as strings and the watchdog receives profile bytes through a
// host-wired callback, keeping the two observability layers decoupled.
//
// All Profiler methods are nil-safe; a nil *Profiler costs one pointer check
// per phase, benchmarked in prof_bench_test.go under the same <2% budget as
// the nil obs instruments.
package prof

import (
	"context"
	"errors"
	"io"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// LabelPhase is the pprof label key carrying the engine phase name. It shows
// up in `go tool pprof -tags` output and drives the phase-attribution report.
const LabelPhase = "phase"

// Config configures a Profiler.
type Config struct {
	// Epoch, when non-nil, is the engine's committed-epoch gauge; it bounds
	// epoch-windowed captures. Hosts that build the Profiler before the
	// engine can wire it later with SetEpochSource.
	Epoch func() uint64

	// MutexFraction, when > 0, is passed to runtime.SetMutexProfileFraction
	// so /debug/nvcaracal/pprof/mutex has data. Zero leaves the runtime
	// default (off) untouched.
	MutexFraction int

	// BlockProfileRate, when > 0, is passed to runtime.SetBlockProfileRate
	// (nanoseconds per sampled blocking event). Zero leaves it off.
	BlockProfileRate int
}

// Profiler is the capture coordinator. The zero of *Profiler (nil) is a
// valid, disabled profiler: every method no-ops.
type Profiler struct {
	epoch atomic.Pointer[func() uint64]

	// cpuMu and traceMu serialize CPU-profile and execution-trace captures
	// respectively: the runtime allows one of each at a time (they can run
	// concurrently with each other), and a second caller gets ErrCaptureBusy
	// instead of a confusing runtime error.
	cpuMu   sync.Mutex
	traceMu sync.Mutex
}

// New builds a Profiler and applies the runtime profiler rates in cfg.
func New(cfg Config) *Profiler {
	p := &Profiler{}
	if cfg.Epoch != nil {
		p.epoch.Store(&cfg.Epoch)
	}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockProfileRate)
	}
	return p
}

// SetEpochSource wires the engine's epoch gauge after construction; hosts
// build the Profiler first (it is part of the engine's Options) and the
// engine second.
func (p *Profiler) SetEpochSource(fn func() uint64) {
	if p == nil || fn == nil {
		return
	}
	p.epoch.Store(&fn)
}

func (p *Profiler) epochNow() (uint64, bool) {
	if p == nil {
		return 0, false
	}
	fn := p.epoch.Load()
	if fn == nil {
		return 0, false
	}
	return (*fn)(), true
}

var noopEnd = func() {}

// Region enters an epoch phase on the calling goroutine: it opens a
// runtime/trace region (visible in `go tool trace`) and sets the pprof
// "phase" label (inherited by goroutines the phase spawns). The returned
// func ends the region and clears the label; call it exactly once, on the
// same goroutine.
func (p *Profiler) Region(phase string) func() {
	if p == nil {
		return noopEnd
	}
	return p.region(phase, "")
}

// RegionNested is Region for a phase that runs inside another phase on the
// same goroutine (minor GC inside execute on workers, major GC inside init
// on the coordinator). pprof offers no way to read the current goroutine
// labels back, so the caller names the parent phase and the end func
// restores that label instead of clearing it.
func (p *Profiler) RegionNested(phase, parent string) func() {
	if p == nil {
		return noopEnd
	}
	return p.region(phase, parent)
}

func (p *Profiler) region(phase, parent string) func() {
	var reg *trace.Region
	if trace.IsEnabled() {
		reg = trace.StartRegion(context.Background(), phase)
	}
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(LabelPhase, phase)))
	return func() {
		if reg != nil {
			reg.End()
		}
		if parent == "" {
			pprof.SetGoroutineLabels(context.Background())
		} else {
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), pprof.Labels(LabelPhase, parent)))
		}
	}
}

// Task groups one epoch's trace regions under a runtime/trace task so
// `go tool trace` can show per-epoch lanes. A nil *Task (nil profiler or
// tracing off) is valid and End no-ops.
type Task struct{ t *trace.Task }

// EpochTask opens the per-epoch trace task. It is a no-op unless a trace is
// actually being captured, so the steady-state cost is one atomic load.
func (p *Profiler) EpochTask(epoch uint64) *Task {
	if p == nil || !trace.IsEnabled() {
		return nil
	}
	ctx, t := trace.NewTask(context.Background(), "epoch")
	trace.Log(ctx, "epoch", strconv.FormatUint(epoch, 10))
	return &Task{t: t}
}

// End closes the epoch task.
func (t *Task) End() {
	if t != nil {
		t.t.End()
	}
}

// ErrCaptureBusy reports that another CPU-profile or execution-trace capture
// is already running; the runtime supports only one at a time.
var ErrCaptureBusy = errors.New("prof: another capture is in progress")

// errNilProfiler reports a capture attempted through a disabled profiler.
var errNilProfiler = errors.New("prof: profiler not configured")

// Window describes what an epoch- or time-bounded capture actually covered.
type Window struct {
	StartEpoch uint64        // committed epoch when the capture began
	EndEpoch   uint64        // committed epoch when it ended
	Elapsed    time.Duration // wall-clock span of the capture
}

// CaptureCPU profiles CPU for the given wall-clock duration (default 2s when
// d <= 0) and writes the gzipped pprof protobuf to w.
func (p *Profiler) CaptureCPU(w io.Writer, d time.Duration) (Window, error) {
	return p.captureCPU(w, d, 0, 0)
}

// CaptureCPUEpochs profiles CPU until the engine commits n more epochs,
// bounded by maxWait (default 30s when <= 0) so a stalled engine cannot hang
// the capture. The returned Window reports the epoch range actually covered.
func (p *Profiler) CaptureCPUEpochs(w io.Writer, n int, maxWait time.Duration) (Window, error) {
	return p.captureCPU(w, 0, n, maxWait)
}

func (p *Profiler) captureCPU(w io.Writer, d time.Duration, epochs int, maxWait time.Duration) (Window, error) {
	if p == nil {
		return Window{}, errNilProfiler
	}
	if !p.cpuMu.TryLock() {
		return Window{}, ErrCaptureBusy
	}
	defer p.cpuMu.Unlock()

	var win Window
	win.StartEpoch, _ = p.epochNow()
	start := time.Now()
	if err := pprof.StartCPUProfile(w); err != nil {
		return win, err
	}
	p.waitWindow(d, epochs, maxWait, win.StartEpoch)
	pprof.StopCPUProfile()
	win.Elapsed = time.Since(start)
	win.EndEpoch, _ = p.epochNow()
	return win, nil
}

// CaptureCPUBytes is CaptureCPU into memory — the shape the watchdog wants
// for attaching flame-graph evidence to incident bundles.
func (p *Profiler) CaptureCPUBytes(d time.Duration) ([]byte, error) {
	if p == nil {
		return nil, errNilProfiler
	}
	var b writerBuf
	if _, err := p.CaptureCPU(&b, d); err != nil {
		return nil, err
	}
	return b.data, nil
}

type writerBuf struct{ data []byte }

func (b *writerBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// CaptureTrace records a runtime execution trace for the given duration
// (default 1s when d <= 0). View with `go tool trace`; the engine's phase
// regions and per-epoch tasks appear as user regions/tasks.
func (p *Profiler) CaptureTrace(w io.Writer, d time.Duration) (Window, error) {
	return p.captureTrace(w, d, 0, 0)
}

// CaptureTraceEpochs records a runtime execution trace spanning the next n
// committed epochs, bounded by maxWait (default 30s when <= 0).
func (p *Profiler) CaptureTraceEpochs(w io.Writer, n int, maxWait time.Duration) (Window, error) {
	return p.captureTrace(w, 0, n, maxWait)
}

func (p *Profiler) captureTrace(w io.Writer, d time.Duration, epochs int, maxWait time.Duration) (Window, error) {
	if p == nil {
		return Window{}, errNilProfiler
	}
	if !p.traceMu.TryLock() {
		return Window{}, ErrCaptureBusy
	}
	defer p.traceMu.Unlock()

	var win Window
	win.StartEpoch, _ = p.epochNow()
	start := time.Now()
	if d <= 0 && epochs <= 0 {
		d = time.Second
	}
	if err := trace.Start(w); err != nil {
		return win, err
	}
	p.waitWindow(d, epochs, maxWait, win.StartEpoch)
	trace.Stop()
	win.Elapsed = time.Since(start)
	win.EndEpoch, _ = p.epochNow()
	return win, nil
}

// StartCPU begins an open-ended CPU capture for hosts that bracket a run
// phase rather than a window; end it with StopCPU. While it runs, windowed
// and on-demand CPU captures report ErrCaptureBusy.
func (p *Profiler) StartCPU(w io.Writer) error {
	if p == nil {
		return errNilProfiler
	}
	if !p.cpuMu.TryLock() {
		return ErrCaptureBusy
	}
	if err := pprof.StartCPUProfile(w); err != nil {
		p.cpuMu.Unlock()
		return err
	}
	return nil
}

// StopCPU ends a StartCPU capture. Calling it without a matching StartCPU is
// a host bug; the mutex makes it deadlock rather than corrupt a concurrent
// capture.
func (p *Profiler) StopCPU() {
	if p == nil {
		return
	}
	pprof.StopCPUProfile()
	p.cpuMu.Unlock()
}

// StartTrace begins an open-ended runtime execution trace; end it with
// StopTrace. CPU capture and execution trace may run concurrently.
func (p *Profiler) StartTrace(w io.Writer) error {
	if p == nil {
		return errNilProfiler
	}
	if !p.traceMu.TryLock() {
		return ErrCaptureBusy
	}
	if err := trace.Start(w); err != nil {
		p.traceMu.Unlock()
		return err
	}
	return nil
}

// StopTrace ends a StartTrace capture.
func (p *Profiler) StopTrace() {
	if p == nil {
		return
	}
	trace.Stop()
	p.traceMu.Unlock()
}

// waitWindow blocks for the capture window: either a fixed duration, or
// until the epoch gauge advances by `epochs` (polled at 500µs — far finer
// than any realistic epoch period and invisible next to profiling overhead).
func (p *Profiler) waitWindow(d time.Duration, epochs int, maxWait time.Duration, startEpoch uint64) {
	if epochs <= 0 {
		if d <= 0 {
			d = 2 * time.Second
		}
		time.Sleep(d)
		return
	}
	if _, ok := p.epochNow(); !ok {
		// No epoch gauge wired: fall back to a wall-clock window so the
		// capture still terminates.
		if maxWait <= 0 {
			maxWait = 2 * time.Second
		}
		time.Sleep(maxWait)
		return
	}
	if maxWait <= 0 {
		maxWait = 30 * time.Second
	}
	deadline := time.Now().Add(maxWait)
	target := startEpoch + uint64(epochs)
	for time.Now().Before(deadline) {
		if now, _ := p.epochNow(); now >= target {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
}
