package prof

// Report layer over parsed profiles: flat/cumulative hotspot tables, profile
// diffs, and the phase-attribution report that joins CPU samples against the
// engine's "phase" goroutine labels — the profiling counterpart of the obs
// layer's phase-share table.

import (
	"fmt"
	"sort"
	"strings"
)

// FlatEntry is one function's flat (leaf) and cumulative sample value.
type FlatEntry struct {
	Name string `json:"name"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// Top aggregates samples into per-function flat/cum values for one value
// column and returns the top n by flat value (all when n <= 0). When
// labelKey is non-empty only samples carrying labelKey=labelVal count, so
// Top(p, idx, 10, "phase", "persist") is "the persist-phase hotspots".
func Top(p *Profile, valueIdx, n int, labelKey, labelVal string) []FlatEntry {
	flat := map[string]int64{}
	cum := map[string]int64{}
	for i := range p.Samples {
		s := &p.Samples[i]
		if labelKey != "" && s.Label(labelKey) != labelVal {
			continue
		}
		v := sampleValue(s, valueIdx)
		if v == 0 || len(s.Stack) == 0 {
			continue
		}
		flat[s.Stack[0].Func] += v
		seen := map[string]bool{}
		for _, fr := range s.Stack {
			if !seen[fr.Func] {
				seen[fr.Func] = true
				cum[fr.Func] += v
			}
		}
	}
	out := make([]FlatEntry, 0, len(cum))
	for name, c := range cum {
		out = append(out, FlatEntry{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		if out[i].Cum != out[j].Cum {
			return out[i].Cum > out[j].Cum
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func sampleValue(s *Sample, idx int) int64 {
	if idx < 0 || idx >= len(s.Values) {
		return 0
	}
	return s.Values[idx]
}

// Total sums one value column over every sample.
func Total(p *Profile, valueIdx int) int64 {
	var t int64
	for i := range p.Samples {
		t += sampleValue(&p.Samples[i], valueIdx)
	}
	return t
}

// DiffEntry is one function's flat value in two profiles and the delta
// (B - A; positive means the function grew).
type DiffEntry struct {
	Name  string `json:"name"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Delta int64  `json:"delta"`
}

// Diff compares per-function flat values between two profiles (same sample
// type assumed) and returns the n largest absolute deltas. Wall-clock
// differences between the two captures are the caller's problem — nvprof
// prints both totals so shares can be eyeballed.
func Diff(a, b *Profile, valueIdxA, valueIdxB, n int) []DiffEntry {
	av := map[string]int64{}
	for _, e := range Top(a, valueIdxA, 0, "", "") {
		av[e.Name] = e.Flat
	}
	bv := map[string]int64{}
	for _, e := range Top(b, valueIdxB, 0, "", "") {
		bv[e.Name] = e.Flat
	}
	names := map[string]bool{}
	for name := range av {
		names[name] = true
	}
	for name := range bv {
		names[name] = true
	}
	out := make([]DiffEntry, 0, len(names))
	for name := range names {
		d := DiffEntry{Name: name, A: av[name], B: bv[name]}
		d.Delta = d.B - d.A
		if d.Delta != 0 {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := abs64(out[i].Delta), abs64(out[j].Delta)
		if di != dj {
			return di > dj
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// DevicePackages are the function-name prefixes counted as "device-model
// code" in the phase report: the NVMM device emulation and persistence
// primitives. A sample attributes to the device when any frame in its stack
// lands in one of these packages.
var DevicePackages = []string{"nvcaracal/internal/nvm", "nvcaracal/internal/pmem"}

// PhaseCell is one engine phase's slice of a profile.
type PhaseCell struct {
	Phase    string  `json:"phase"`
	Value    int64   `json:"value"`
	SharePct float64 `json:"share_pct"`
	// DeviceSharePct is the fraction of this phase's samples whose stack
	// touches DevicePackages — for the persist phase this is the "time spent
	// in the NVMM model" number the bench acceptance gates on.
	DeviceSharePct float64     `json:"device_share_pct"`
	Top            []FlatEntry `json:"top,omitempty"`
}

// PhaseReport is the phase-attribution report: profile value split by the
// engine's "phase" goroutine labels.
type PhaseReport struct {
	SampleType    ValueType   `json:"sample_type"`
	DurationNanos int64       `json:"duration_nanos"`
	Total         int64       `json:"total"`
	Unlabeled     int64       `json:"unlabeled"`
	UnlabeledPct  float64     `json:"unlabeled_pct"`
	Phases        []PhaseCell `json:"phases"`
}

// Phases builds the phase-attribution report for one value column, with the
// top-n hotspot functions per phase (n <= 0 skips the tables).
func Phases(p *Profile, valueIdx, n int) PhaseReport {
	rep := PhaseReport{DurationNanos: p.DurationNanos}
	if valueIdx >= 0 && valueIdx < len(p.SampleTypes) {
		rep.SampleType = p.SampleTypes[valueIdx]
	}
	byPhase := map[string]int64{}
	devByPhase := map[string]int64{}
	for i := range p.Samples {
		s := &p.Samples[i]
		v := sampleValue(s, valueIdx)
		if v == 0 {
			continue
		}
		rep.Total += v
		phase := s.Label(LabelPhase)
		if phase == "" {
			rep.Unlabeled += v
			continue
		}
		byPhase[phase] += v
		if stackTouches(s.Stack, DevicePackages) {
			devByPhase[phase] += v
		}
	}
	if rep.Total > 0 {
		rep.UnlabeledPct = 100 * float64(rep.Unlabeled) / float64(rep.Total)
	}
	for phase, v := range byPhase {
		cell := PhaseCell{Phase: phase, Value: v}
		if rep.Total > 0 {
			cell.SharePct = 100 * float64(v) / float64(rep.Total)
		}
		if v > 0 {
			cell.DeviceSharePct = 100 * float64(devByPhase[phase]) / float64(v)
		}
		if n > 0 {
			cell.Top = Top(p, valueIdx, n, LabelPhase, phase)
		}
		rep.Phases = append(rep.Phases, cell)
	}
	sort.Slice(rep.Phases, func(i, j int) bool {
		if rep.Phases[i].Value != rep.Phases[j].Value {
			return rep.Phases[i].Value > rep.Phases[j].Value
		}
		return rep.Phases[i].Phase < rep.Phases[j].Phase
	})
	return rep
}

// stackTouches reports whether any frame's function lives in one of the
// named packages (prefix match on the qualified symbol name).
func stackTouches(stack []Frame, pkgs []string) bool {
	for _, fr := range stack {
		for _, pkg := range pkgs {
			if strings.HasPrefix(fr.Func, pkg+".") || strings.HasPrefix(fr.Func, pkg+"/") {
				return true
			}
		}
	}
	return false
}

// FormatValue renders a sample value with its unit (ns values as
// milliseconds, everything else raw).
func FormatValue(v int64, unit string) string {
	if unit == "nanoseconds" {
		return fmt.Sprintf("%.2fms", float64(v)/1e6)
	}
	if unit == "bytes" {
		return fmt.Sprintf("%.1fkB", float64(v)/1024)
	}
	return fmt.Sprintf("%d", v)
}
