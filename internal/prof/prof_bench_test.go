package prof

import "testing"

// The disabled-profiler benchmarks, under the same <2% overhead budget as
// the nil obs instruments (CI obs-overhead job, NilProf regex). A nil
// *Profiler must cost a pointer check, nothing more.

func BenchmarkNilProfRegion(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := p.Region("execute")
		end()
	}
}

func BenchmarkNilProfRegionNested(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := p.RegionNested("minor-gc", "execute")
		end()
	}
}

func BenchmarkNilProfEpochTask(b *testing.B) {
	var p *Profiler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EpochTask(uint64(i)).End()
	}
}

// BenchmarkNilProfEpochTaskEnabled measures the tracing-off cost for a
// non-nil profiler: trace.IsEnabled is one atomic load.
func BenchmarkNilProfEpochTaskEnabled(b *testing.B) {
	p := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.EpochTask(uint64(i)).End()
	}
}
