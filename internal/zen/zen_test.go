package zen

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"nvcaracal/internal/nvm"
)

func testDB(t *testing.T, cacheEntries int) (*DB, *nvm.Device, Config) {
	t.Helper()
	cfg := Config{TupleSize: 128, Capacity: 4096, CacheEntries: cacheEntries}
	dev := nvm.New(cfg.DeviceSize())
	db, err := Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, cfg
}

func commit(t *testing.T, tx *Txn) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	db, _, _ := testDB(t, 100)
	tx := db.NewTxn()
	tx.Write(1, 42, []byte("hello"))
	commit(t, tx)
	v, ok := db.Read(1, 42)
	if !ok || !bytes.Equal(v, []byte("hello")) {
		t.Fatalf("Read = %q,%v", v, ok)
	}
}

func TestReadYourWrites(t *testing.T) {
	db, _, _ := testDB(t, 100)
	tx := db.NewTxn()
	tx.Write(1, 1, []byte("a"))
	if v, ok := tx.Read(1, 1); !ok || !bytes.Equal(v, []byte("a")) {
		t.Fatalf("read-your-write = %q,%v", v, ok)
	}
	tx.Delete(1, 1)
	if _, ok := tx.Read(1, 1); ok {
		t.Fatal("read-your-delete returned a value")
	}
	commit(t, tx)
}

func TestUpdateReplacesValue(t *testing.T) {
	db, _, _ := testDB(t, 100)
	for i := 0; i < 5; i++ {
		tx := db.NewTxn()
		tx.Write(1, 7, []byte{byte(i)})
		commit(t, tx)
	}
	v, _ := db.Read(1, 7)
	if !bytes.Equal(v, []byte{4}) {
		t.Fatalf("v = %v", v)
	}
}

func TestDelete(t *testing.T) {
	db, _, _ := testDB(t, 100)
	tx := db.NewTxn()
	tx.Write(1, 1, []byte("x"))
	commit(t, tx)
	tx = db.NewTxn()
	tx.Delete(1, 1)
	commit(t, tx)
	if _, ok := db.Read(1, 1); ok {
		t.Fatal("deleted key readable")
	}
}

func TestAbortDiscards(t *testing.T) {
	db, _, _ := testDB(t, 100)
	tx := db.NewTxn()
	tx.Write(1, 1, []byte("x"))
	tx.Abort()
	commit(t, tx) // no-op after abort
	if _, ok := db.Read(1, 1); ok {
		t.Fatal("aborted write visible")
	}
	if db.Stats().Aborts != 1 {
		t.Fatalf("aborts = %d", db.Stats().Aborts)
	}
}

func TestSlotRecycling(t *testing.T) {
	db, _, _ := testDB(t, 0)
	for i := 0; i < 100; i++ {
		tx := db.NewTxn()
		tx.Write(1, 5, []byte{byte(i)})
		commit(t, tx)
	}
	if used := db.Stats().SlotsUsed; used != 1 {
		t.Fatalf("SlotsUsed = %d, want 1 (old versions recycled)", used)
	}
}

func TestHeapFull(t *testing.T) {
	cfg := Config{TupleSize: 64, Capacity: 4, CacheEntries: 0}
	dev := nvm.New(cfg.DeviceSize())
	db, err := Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		tx := db.NewTxn()
		tx.Write(1, i, []byte("v"))
		commit(t, tx)
	}
	tx := db.NewTxn()
	tx.Write(1, 99, []byte("v"))
	if err := tx.Commit(); err == nil {
		t.Fatal("commit on full heap succeeded")
	}
}

func TestValueTooLarge(t *testing.T) {
	db, _, _ := testDB(t, 0)
	tx := db.NewTxn()
	tx.Write(1, 1, make([]byte, 1024))
	if err := tx.Commit(); err == nil {
		t.Fatal("oversized value accepted")
	}
}

func TestCacheServesReads(t *testing.T) {
	db, dev, _ := testDB(t, 100)
	tx := db.NewTxn()
	tx.Write(1, 1, []byte("cached"))
	commit(t, tx)
	before := dev.Stats()
	for i := 0; i < 10; i++ {
		db.Read(1, 1)
	}
	if got := dev.Stats().Sub(before).LineReads; got != 0 {
		t.Fatalf("cached reads hit NVMM %d times", got)
	}
	if db.Stats().CacheHits < 10 {
		t.Fatalf("cache hits = %d", db.Stats().CacheHits)
	}
}

func TestCacheBounded(t *testing.T) {
	db, _, _ := testDB(t, 8)
	for i := uint64(0); i < 100; i++ {
		tx := db.NewTxn()
		tx.Write(1, i, []byte("v"))
		commit(t, tx)
	}
	if n := db.Stats().CacheEntries; n > 8 {
		t.Fatalf("cache grew to %d entries, bound 8", n)
	}
}

func TestEveryUpdateWritesNVMM(t *testing.T) {
	// Zen's defining property vs NVCaracal: contention does not reduce
	// NVMM writes.
	db, _, _ := testDB(t, 100)
	for i := 0; i < 50; i++ {
		tx := db.NewTxn()
		tx.Write(1, 1, []byte{byte(i)}) // same hot key
		commit(t, tx)
	}
	if w := db.Stats().NVMMWrites; w != 50 {
		t.Fatalf("NVMMWrites = %d, want 50", w)
	}
}

func TestRecoverAfterCrash(t *testing.T) {
	db, dev, cfg := testDB(t, 100)
	for i := uint64(0); i < 20; i++ {
		tx := db.NewTxn()
		tx.Write(1, i, []byte{byte(i * 3)})
		commit(t, tx)
	}
	tx := db.NewTxn()
	tx.Delete(1, 5)
	commit(t, tx)
	dev.Crash(nvm.CrashStrict, 1)

	db2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		v, ok := db2.Read(1, i)
		if i == 5 {
			if ok {
				t.Fatal("deleted key survived recovery")
			}
			continue
		}
		if !ok || !bytes.Equal(v, []byte{byte(i * 3)}) {
			t.Fatalf("key %d: %v,%v", i, v, ok)
		}
	}
}

func TestRecoverDiscardsUncommitted(t *testing.T) {
	db, dev, cfg := testDB(t, 0)
	tx := db.NewTxn()
	tx.Write(1, 1, []byte("durable"))
	commit(t, tx)
	// Simulate a torn commit: write a tuple, flush payload, crash before
	// the commit flag is fenced. Easiest: write a raw uncommitted tuple.
	off, err := db.alloc()
	if err != nil {
		t.Fatal(err)
	}
	dev.Store32(off+tupTable, 1)
	dev.Store64(off+tupKey, 1)
	dev.Store64(off+tupVersion, 999)
	dev.Persist(off, 64)
	dev.Crash(nvm.CrashStrict, 1)

	db2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := db2.Read(1, 1)
	if !ok || !bytes.Equal(v, []byte("durable")) {
		t.Fatalf("Read = %q,%v, want durable value", v, ok)
	}
}

func TestRecoverRebuildsFreeList(t *testing.T) {
	db, dev, cfg := testDB(t, 0)
	for i := 0; i < 10; i++ {
		tx := db.NewTxn()
		tx.Write(1, 1, []byte{byte(i)}) // one key, many superseded slots
		commit(t, tx)
	}
	dev.Crash(nvm.CrashStrict, 2)
	db2, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if used := db2.Stats().SlotsUsed; used != 1 {
		t.Fatalf("SlotsUsed after recovery = %d, want 1", used)
	}
	// The recycled slots must be allocatable.
	for i := uint64(10); i < 15; i++ {
		tx := db2.NewTxn()
		tx.Write(1, i, []byte("new"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentCommits(t *testing.T) {
	db, _, _ := testDB(t, 1000)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tx := db.NewTxn()
				tx.Write(1, uint64(w*1000+i), []byte{byte(w)})
				tx.Write(2, uint64(i%10), []byte{byte(i)}) // contended table
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c := db.Stats().Commits; c != workers*100 {
		t.Fatalf("commits = %d", c)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < 100; i++ {
			if _, ok := db.Read(1, uint64(w*1000+i)); !ok {
				t.Fatalf("lost key %d/%d", w, i)
			}
		}
	}
}

func TestQuickZenMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{TupleSize: 128, Capacity: 2048, CacheEntries: 16}
		dev := nvm.New(cfg.DeviceSize())
		db, err := Open(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64][]byte{}
		for i := 0; i < 200; i++ {
			k := uint64(rng.Intn(30))
			switch rng.Intn(4) {
			case 0:
				tx := db.NewTxn()
				tx.Delete(1, k)
				if err := tx.Commit(); err != nil {
					return false
				}
				delete(model, k)
			default:
				v := make([]byte, rng.Intn(64))
				rng.Read(v)
				tx := db.NewTxn()
				tx.Write(1, k, v)
				if err := tx.Commit(); err != nil {
					return false
				}
				model[k] = v
			}
		}
		// Crash + recover, then compare.
		dev.Crash(nvm.CrashStrict, seed)
		db2, err := Recover(dev, cfg)
		if err != nil {
			return false
		}
		for k := uint64(0); k < 30; k++ {
			got, ok := db2.Read(1, k)
			want, wok := model[k]
			if ok != wok || (ok && !bytes.Equal(got, want)) {
				t.Logf("seed %d key %d: %v/%v vs %v/%v", seed, k, got, ok, want, wok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	for i, cfg := range []Config{
		{TupleSize: 16, Capacity: 10},
		{TupleSize: 128, Capacity: 0},
	} {
		dev := nvm.New(1024)
		if _, err := Open(dev, cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
	// Device too small.
	cfg := Config{TupleSize: 128, Capacity: 1024}
	if _, err := Open(nvm.New(64), cfg); err == nil {
		t.Error("small device accepted")
	}
	_ = fmt.Sprint
}
