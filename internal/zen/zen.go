// Package zen re-implements the architecture of Zen (Liu, Chen & Chen,
// VLDB 2021), the log-free NVMM OLTP engine the paper compares against in
// Figures 5 and 6.
//
// Zen's design, as relevant to the comparison:
//
//   - Every committed update allocates a fresh NVMM tuple slot and writes
//     the full tuple there — NVMM sees one value write per update,
//     regardless of contention (unlike NVCaracal, which absorbs
//     intermediate writes in DRAM).
//   - No log: a per-tuple commit flag persisted with the tuple makes the
//     write self-describing. Commit is flush + fence of the tuple lines.
//   - A DRAM tuple cache (bounded entries) absorbs reads; a DRAM free list
//     tracks reusable slots (memory and compute cost in DRAM).
//   - Recovery scans the whole tuple heap more than once: one pass to find
//     the latest committed version of every key, a second to rebuild the
//     free list.
package zen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nvcaracal/internal/index"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Tuple slot layout.
const (
	tupTable   = 0  // uint32
	tupFlags   = 4  // uint32: bit0 committed, bit1 deleted
	tupKey     = 8  // uint64
	tupVersion = 16 // uint64 commit timestamp
	tupSize    = 24 // uint32 payload length
	tupPayload = 32

	flagCommitted = 1
	flagDeleted   = 2
)

// Config sizes a Zen instance.
type Config struct {
	// TupleSize is the fixed slot size; payload capacity is TupleSize-32.
	TupleSize int64
	// Capacity is the total number of tuple slots.
	Capacity int64
	// CacheEntries bounds the DRAM tuple cache (0 disables it).
	CacheEntries int
	// Shards controls lock striping for writers. Defaults to 64.
	Shards int
}

func (c *Config) applyDefaults() error {
	if c.TupleSize < tupPayload+1 {
		return fmt.Errorf("zen: tuple size %d too small", c.TupleSize)
	}
	if c.Capacity <= 0 {
		return errors.New("zen: capacity must be positive")
	}
	if c.Shards <= 0 {
		c.Shards = 64
	}
	return nil
}

// DeviceSize returns the NVMM bytes a config requires.
func (c Config) DeviceSize() int64 { return c.TupleSize * c.Capacity }

// ErrFull is returned when the tuple heap has no free slots.
var ErrFull = errors.New("zen: tuple heap full")

type cacheShard struct {
	mu sync.Mutex
	m  map[index.Key][]byte
}

type lockShard struct {
	mu sync.Mutex
	_  [48]byte
}

// DB is a Zen engine instance bound to an NVMM device region.
type DB struct {
	dev *nvm.Device
	cfg Config

	idx *index.Map[int64] // key -> slot offset of latest committed tuple

	mu       sync.Mutex // guards bump + free list
	bump     int64
	freeList []int64

	version atomic.Uint64 // global commit timestamp

	locks []lockShard

	cache      []cacheShard
	cacheCount atomic.Int64

	stats struct {
		commits    atomic.Int64
		aborts     atomic.Int64
		cacheHits  atomic.Int64
		cacheMiss  atomic.Int64
		nvmmWrites atomic.Int64
	}
}

// Open initializes a Zen engine on a fresh device region.
func Open(dev *nvm.Device, cfg Config) (*DB, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if dev.Size() < cfg.DeviceSize() {
		return nil, fmt.Errorf("zen: device %d bytes, need %d", dev.Size(), cfg.DeviceSize())
	}
	db := &DB{dev: dev, cfg: cfg}
	db.idx = index.New[int64](cfg.Shards)
	db.locks = make([]lockShard, cfg.Shards)
	db.cache = make([]cacheShard, cfg.Shards)
	for i := range db.cache {
		db.cache[i].m = make(map[index.Key][]byte)
	}
	return db, nil
}

// Stats reports engine counters.
type Stats struct {
	Commits, Aborts      int64
	CacheHits, CacheMiss int64
	NVMMWrites           int64
	CacheEntries         int64
	SlotsUsed            int64
}

// Stats returns a snapshot of the engine counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	used := db.bump - int64(len(db.freeList))
	db.mu.Unlock()
	return Stats{
		Commits:      db.stats.commits.Load(),
		Aborts:       db.stats.aborts.Load(),
		CacheHits:    db.stats.cacheHits.Load(),
		CacheMiss:    db.stats.cacheMiss.Load(),
		NVMMWrites:   db.stats.nvmmWrites.Load(),
		CacheEntries: db.cacheCount.Load(),
		SlotsUsed:    used,
	}
}

func (db *DB) alloc() (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n := len(db.freeList); n > 0 {
		off := db.freeList[n-1]
		db.freeList = db.freeList[:n-1]
		return off, nil
	}
	if db.bump < db.cfg.Capacity {
		off := db.bump * db.cfg.TupleSize
		db.bump++
		return off, nil
	}
	return 0, ErrFull
}

func (db *DB) free(off int64) {
	db.mu.Lock()
	db.freeList = append(db.freeList, off)
	db.mu.Unlock()
}

func (db *DB) shardOf(k index.Key) int {
	return int(index.Hash(k) % uint64(db.cfg.Shards))
}

// cacheGet returns a cached tuple payload.
func (db *DB) cacheGet(k index.Key) ([]byte, bool) {
	if db.cfg.CacheEntries == 0 {
		return nil, false
	}
	sh := &db.cache[db.shardOf(k)]
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// cachePut inserts or updates a cache entry, evicting an arbitrary victim
// from the same shard when the global bound is exceeded.
func (db *DB) cachePut(k index.Key, v []byte) {
	if db.cfg.CacheEntries == 0 {
		return
	}
	sh := &db.cache[db.shardOf(k)]
	sh.mu.Lock()
	if _, existed := sh.m[k]; !existed {
		if db.cacheCount.Load() >= int64(db.cfg.CacheEntries) {
			// Evict a victim from this shard; if the shard is empty the
			// global bound is enforced by refusing the insert.
			victimFound := false
			for victim := range sh.m {
				delete(sh.m, victim)
				db.cacheCount.Add(-1)
				victimFound = true
				break
			}
			if !victimFound {
				sh.mu.Unlock()
				return
			}
		}
		db.cacheCount.Add(1)
	}
	sh.m[k] = append([]byte(nil), v...)
	sh.mu.Unlock()
}

func (db *DB) cacheDel(k index.Key) {
	if db.cfg.CacheEntries == 0 {
		return
	}
	sh := &db.cache[db.shardOf(k)]
	sh.mu.Lock()
	if _, ok := sh.m[k]; ok {
		delete(sh.m, k)
		db.cacheCount.Add(-1)
	}
	sh.mu.Unlock()
}

// Read returns the latest committed value of (table, key).
func (db *DB) Read(table uint32, key uint64) ([]byte, bool) {
	k := index.Key{Table: table, ID: key}
	if v, ok := db.cacheGet(k); ok {
		db.stats.cacheHits.Add(1)
		return v, true
	}
	db.stats.cacheMiss.Add(1)
	off, ok := db.idx.Get(k)
	if !ok {
		return nil, false
	}
	size := db.dev.Load32(off + tupSize)
	buf := make([]byte, size)
	db.dev.ReadAt(buf, off+tupPayload)
	db.cachePut(k, buf)
	return buf, true
}

// writeTuple persists one tuple with Zen's flush-then-commit protocol and
// returns its slot offset. The caller fences (per transaction commit).
func (db *DB) writeTuple(table uint32, key uint64, version uint64, val []byte, deleted bool) (int64, error) {
	if int64(len(val)) > db.cfg.TupleSize-tupPayload {
		return 0, fmt.Errorf("zen: value of %d bytes exceeds tuple payload %d", len(val), db.cfg.TupleSize-tupPayload)
	}
	off, err := db.alloc()
	if err != nil {
		return 0, err
	}
	// Every Zen tuple write is a committed final version: attribute the
	// whole protocol to the persist-final cause through the tagged-op API.
	td := db.dev.Tag(obs.CausePersistFinal)
	td.Store32(off+tupTable, table)
	td.Store32(off+tupFlags, 0)
	td.Store64(off+tupKey, key)
	td.Store64(off+tupVersion, version)
	td.Store32(off+tupSize, uint32(len(val)))
	if len(val) > 0 {
		td.WriteAt(val, off+tupPayload)
	}
	td.Flush(off, tupPayload+int64(len(val)))
	// Commit flag last: a torn tuple is never considered committed.
	flags := uint32(flagCommitted)
	if deleted {
		flags |= flagDeleted
	}
	td.Store32(off+tupFlags, flags)
	td.Flush(off, 64)
	db.stats.nvmmWrites.Add(1)
	return off, nil
}

// Txn is a Zen transaction: reads go straight through, writes buffer until
// Commit. Create via NewTxn, finish with Commit or Abort.
type Txn struct {
	db      *DB
	writes  []pendingWrite
	aborted bool
}

type pendingWrite struct {
	key     index.Key
	val     []byte
	deleted bool
}

// NewTxn begins a transaction.
func (db *DB) NewTxn() *Txn { return &Txn{db: db} }

// Read observes the latest committed value (Zen provides snapshot-free
// read-committed semantics in this reproduction; the benchmarks only
// require read-your-writes within a transaction, which the buffer gives).
func (t *Txn) Read(table uint32, key uint64) ([]byte, bool) {
	k := index.Key{Table: table, ID: key}
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].key == k {
			if t.writes[i].deleted {
				return nil, false
			}
			return t.writes[i].val, true
		}
	}
	return t.db.Read(table, key)
}

// Write buffers an update or insert.
func (t *Txn) Write(table uint32, key uint64, val []byte) {
	t.writes = append(t.writes, pendingWrite{
		key: index.Key{Table: table, ID: key},
		val: append([]byte(nil), val...),
	})
}

// Delete buffers a deletion.
func (t *Txn) Delete(table uint32, key uint64) {
	t.writes = append(t.writes, pendingWrite{
		key:     index.Key{Table: table, ID: key},
		deleted: true,
	})
}

// Abort discards the transaction.
func (t *Txn) Abort() {
	t.aborted = true
	t.db.stats.aborts.Add(1)
}

// Commit applies the write buffer: per-key locks are taken in shard order
// (deadlock-free), each write persists a fresh tuple, one fence commits the
// transaction, and old tuple slots are recycled after the fence.
func (t *Txn) Commit() error {
	if t.aborted {
		return nil
	}
	if len(t.writes) == 0 {
		t.db.stats.commits.Add(1)
		return nil
	}
	// Lock the touched shards in ascending order.
	shards := make([]int, 0, len(t.writes))
	seen := make(map[int]bool, len(t.writes))
	for _, w := range t.writes {
		s := t.db.shardOf(w.key)
		if !seen[s] {
			seen[s] = true
			shards = append(shards, s)
		}
	}
	sortInts(shards)
	for _, s := range shards {
		t.db.locks[s].mu.Lock()
	}
	defer func() {
		for i := len(shards) - 1; i >= 0; i-- {
			t.db.locks[shards[i]].mu.Unlock()
		}
	}()

	version := t.db.version.Add(1)
	var oldSlots []int64
	for _, w := range t.writes {
		old, hadOld := t.db.idx.Get(w.key)
		off, err := t.db.writeTuple(w.key.Table, w.key.ID, version, w.val, w.deleted)
		if err != nil {
			return err
		}
		if w.deleted {
			t.db.idx.Delete(w.key)
			t.db.cacheDel(w.key)
			oldSlots = append(oldSlots, off) // delete markers are reclaimed eagerly after fence
		} else {
			t.db.idx.Put(w.key, off)
			t.db.cachePut(w.key, w.val)
		}
		if hadOld {
			oldSlots = append(oldSlots, old)
		}
	}
	// The commit fence orders the tuple writes this transaction paid for:
	// route it through the tagged-op API so fence attribution tiles (a raw
	// Device.Fence here would land in the catch-all "other" bucket).
	t.db.dev.Tag(obs.CausePersistFinal).Fence()
	// Only after the fence are superseded tuples safe to recycle: the new
	// versions are durable, so losing the old slots cannot lose data.
	for _, off := range oldSlots {
		t.db.free(off)
	}
	t.db.stats.commits.Add(1)
	return nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Recover rebuilds a Zen engine from the device after a crash. Per the
// paper, the tuple heap is scanned more than once: pass 1 finds the latest
// committed version of every key; pass 2 rebuilds the free list (and
// reclaims superseded or torn tuples). Recovery cost therefore scales with
// the heap size, not the crashed working set.
func Recover(dev *nvm.Device, cfg Config) (*DB, error) {
	db, err := Open(dev, cfg)
	if err != nil {
		return nil, err
	}
	type best struct {
		off     int64
		version uint64
		deleted bool
	}
	latest := make(map[index.Key]best)
	var maxVersion uint64

	// Both heap scans are recovery traffic in the attribution ledger.
	rd := dev.Tag(obs.CauseRecovery)

	// Pass 1: latest committed version per key.
	for i := int64(0); i < cfg.Capacity; i++ {
		off := i * cfg.TupleSize
		flags := rd.Load32(off + tupFlags)
		if flags&flagCommitted == 0 {
			continue
		}
		k := index.Key{Table: rd.Load32(off + tupTable), ID: rd.Load64(off + tupKey)}
		if k.Table == 0 {
			continue // never-written slot
		}
		v := rd.Load64(off + tupVersion)
		if v > maxVersion {
			maxVersion = v
		}
		if b, ok := latest[k]; !ok || v > b.version {
			latest[k] = best{off: off, version: v, deleted: flags&flagDeleted != 0}
		}
	}
	for k, b := range latest {
		if !b.deleted {
			db.idx.Put(k, b.off)
		}
	}
	db.version.Store(maxVersion)

	// Pass 2: free list = every slot that is not some key's latest live
	// tuple.
	keep := make(map[int64]bool, len(latest))
	for k, b := range latest {
		if !b.deleted {
			keep[b.off] = true
		}
		_ = k
	}
	var bump int64
	for i := int64(0); i < cfg.Capacity; i++ {
		off := i * cfg.TupleSize
		flags := rd.Load32(off + tupFlags)
		table := rd.Load32(off + tupTable)
		inUse := flags&flagCommitted != 0 && table != 0
		if inUse {
			bump = i + 1
		}
	}
	db.bump = bump
	for i := int64(0); i < bump; i++ {
		off := i * cfg.TupleSize
		if !keep[off] {
			db.freeList = append(db.freeList, off)
		}
	}
	return db, nil
}
