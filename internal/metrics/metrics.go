// Package metrics provides lightweight atomic counters for engine-level
// accounting: transient vs persistent version writes, cache behaviour, and
// memory breakdowns used to reproduce the paper's Figure 8.
package metrics

import "sync/atomic"

// Counters aggregates engine events. All methods are safe for concurrent
// use. The zero value is ready.
type Counters struct {
	txnsCommitted      atomic.Int64
	txnsAborted        atomic.Int64
	epochs             atomic.Int64
	transientVersions  atomic.Int64 // versions written only to DRAM
	persistentVersions atomic.Int64 // final versions written to NVMM
	rowReads           atomic.Int64 // persistent-row reads from NVMM
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheBytes         atomic.Int64 // live cached-version payload bytes
	cacheEntries       atomic.Int64
	minorGCs           atomic.Int64
	majorGCs           atomic.Int64
}

// Snapshot is an immutable copy of all counters.
type Snapshot struct {
	TxnsCommitted      int64
	TxnsAborted        int64
	Epochs             int64
	TransientVersions  int64
	PersistentVersions int64
	RowReads           int64
	CacheHits          int64
	CacheMisses        int64
	CacheBytes         int64
	CacheEntries       int64
	MinorGCs           int64
	MajorGCs           int64
}

// Sub returns s - o field-wise, for interval measurements.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		TxnsCommitted:      s.TxnsCommitted - o.TxnsCommitted,
		TxnsAborted:        s.TxnsAborted - o.TxnsAborted,
		Epochs:             s.Epochs - o.Epochs,
		TransientVersions:  s.TransientVersions - o.TransientVersions,
		PersistentVersions: s.PersistentVersions - o.PersistentVersions,
		RowReads:           s.RowReads - o.RowReads,
		CacheHits:          s.CacheHits - o.CacheHits,
		CacheMisses:        s.CacheMisses - o.CacheMisses,
		CacheBytes:         s.CacheBytes, // gauges are not differenced
		CacheEntries:       s.CacheEntries,
		MinorGCs:           s.MinorGCs - o.MinorGCs,
		MajorGCs:           s.MajorGCs - o.MajorGCs,
	}
}

// TransientShare returns the fraction of version writes that stayed in
// DRAM, the quantity the paper's contention analysis revolves around.
func (s Snapshot) TransientShare() float64 {
	total := s.TransientVersions + s.PersistentVersions
	if total == 0 {
		return 0
	}
	return float64(s.TransientVersions) / float64(total)
}

// AddCommitted adds n committed transactions.
func (c *Counters) AddCommitted(n int64) { c.txnsCommitted.Add(n) }

// AddAborted adds n aborted transactions.
func (c *Counters) AddAborted(n int64) { c.txnsAborted.Add(n) }

// AddEpoch counts one completed epoch.
func (c *Counters) AddEpoch() { c.epochs.Add(1) }

// AddTransient counts a version written only to DRAM.
func (c *Counters) AddTransient() { c.transientVersions.Add(1) }

// AddPersistent counts a final version written to NVMM.
func (c *Counters) AddPersistent() { c.persistentVersions.Add(1) }

// AddRowRead counts a persistent-row read from NVMM.
func (c *Counters) AddRowRead() { c.rowReads.Add(1) }

// AddCacheHit counts a read served by a cached version.
func (c *Counters) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a read that fell through to NVMM.
func (c *Counters) AddCacheMiss() { c.cacheMisses.Add(1) }

// CacheAdd accounts a cached-version creation of n payload bytes.
func (c *Counters) CacheAdd(n int64) {
	c.cacheBytes.Add(n)
	c.cacheEntries.Add(1)
}

// CacheDrop accounts a cached-version eviction of n payload bytes.
func (c *Counters) CacheDrop(n int64) {
	c.cacheBytes.Add(-n)
	c.cacheEntries.Add(-1)
}

// AddMinorGC counts a minor-collector cleanup.
func (c *Counters) AddMinorGC() { c.minorGCs.Add(1) }

// AddMajorGC counts a major-collector cleanup.
func (c *Counters) AddMajorGC() { c.majorGCs.Add(1) }

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		TxnsCommitted:      c.txnsCommitted.Load(),
		TxnsAborted:        c.txnsAborted.Load(),
		Epochs:             c.epochs.Load(),
		TransientVersions:  c.transientVersions.Load(),
		PersistentVersions: c.persistentVersions.Load(),
		RowReads:           c.rowReads.Load(),
		CacheHits:          c.cacheHits.Load(),
		CacheMisses:        c.cacheMisses.Load(),
		CacheBytes:         c.cacheBytes.Load(),
		CacheEntries:       c.cacheEntries.Load(),
		MinorGCs:           c.minorGCs.Load(),
		MajorGCs:           c.majorGCs.Load(),
	}
}
