// Package metrics provides lightweight atomic counters for engine-level
// accounting: transient vs persistent version writes, cache behaviour, and
// memory breakdowns used to reproduce the paper's Figure 8.
//
// Counters are striped: each worker core updates its own cache-line-sized
// cell (via At) and Snapshot folds the cells, so the execution phase never
// has every core bouncing one counter cache line. The zero value is ready.
package metrics

import "sync/atomic"

// stripes is the number of worker counter cells. Core IDs index cells modulo
// this, so any core count works; beyond 64 cores stripes are shared pairwise.
// One extra cell beyond the worker stripes belongs to the coordinator, so
// cold-path updates never share a line with worker core 0.
const stripes = 64

// Cell is one stripe of the counters: the per-core view a worker updates
// without contending with other cores. Obtain one with Counters.At.
type Cell struct {
	txnsCommitted      atomic.Int64
	txnsAborted        atomic.Int64
	epochs             atomic.Int64
	transientVersions  atomic.Int64 // versions written only to DRAM
	persistentVersions atomic.Int64 // final versions written to NVMM
	rowReads           atomic.Int64 // persistent-row reads from NVMM
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheBytes         atomic.Int64 // live cached-version payload bytes
	cacheEntries       atomic.Int64
	minorGCs           atomic.Int64
	majorGCs           atomic.Int64
	_                  [32]byte // pad to a multiple of 64B: no false sharing
}

// Counters aggregates engine events. All methods are safe for concurrent
// use. Hot paths should grab the executing core's Cell once via At and
// update that; the convenience methods on Counters itself go to a dedicated
// coordinator cell and are fine for cold paths (epoch boundaries,
// coordinators, tests) even while workers are running.
type Counters struct {
	cells [stripes + 1]Cell
}

// At returns the counter cell for a worker core. Per-cell totals are
// meaningless in isolation; Snapshot folds them.
func (c *Counters) At(core int) *Cell {
	return &c.cells[uint(core)%stripes]
}

// Coordinator returns the cell cold paths update. It is distinct from every
// worker cell, so coordinator-side accounting (epoch boundaries, eviction,
// recovery) never contends with worker core 0.
func (c *Counters) Coordinator() *Cell {
	return &c.cells[stripes]
}

// Monotonic holds the counters that only ever increase; interval deltas via
// Sub are meaningful for every field.
type Monotonic struct {
	TxnsCommitted      int64
	TxnsAborted        int64
	Epochs             int64
	TransientVersions  int64
	PersistentVersions int64
	RowReads           int64
	CacheHits          int64
	CacheMisses        int64
	MinorGCs           int64
	MajorGCs           int64
}

// Sub returns m - o field-wise.
func (m Monotonic) Sub(o Monotonic) Monotonic {
	return Monotonic{
		TxnsCommitted:      m.TxnsCommitted - o.TxnsCommitted,
		TxnsAborted:        m.TxnsAborted - o.TxnsAborted,
		Epochs:             m.Epochs - o.Epochs,
		TransientVersions:  m.TransientVersions - o.TransientVersions,
		PersistentVersions: m.PersistentVersions - o.PersistentVersions,
		RowReads:           m.RowReads - o.RowReads,
		CacheHits:          m.CacheHits - o.CacheHits,
		CacheMisses:        m.CacheMisses - o.CacheMisses,
		MinorGCs:           m.MinorGCs - o.MinorGCs,
		MajorGCs:           m.MajorGCs - o.MajorGCs,
	}
}

// Gauges holds the level-style counters: current values, not accumulations.
// Differencing them produces nonsense, so Snapshot.Sub carries them through
// from the newer snapshot unchanged.
type Gauges struct {
	CacheBytes   int64
	CacheEntries int64
}

// Snapshot is an immutable copy of all counters. The embedded sections keep
// field access flat (s.TxnsCommitted, s.CacheBytes) while making the
// monotonic-vs-gauge split explicit for interval arithmetic.
type Snapshot struct {
	Monotonic
	Gauges
}

// Sub returns the interval s - o: monotonic counters are differenced, gauges
// are taken from s (the newer snapshot) as-is.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Monotonic: s.Monotonic.Sub(o.Monotonic),
		Gauges:    s.Gauges,
	}
}

// TransientShare returns the fraction of version writes that stayed in
// DRAM, the quantity the paper's contention analysis revolves around.
func (s Snapshot) TransientShare() float64 {
	total := s.TransientVersions + s.PersistentVersions
	if total == 0 {
		return 0
	}
	return float64(s.TransientVersions) / float64(total)
}

// AddCommitted adds n committed transactions.
func (c *Cell) AddCommitted(n int64) { c.txnsCommitted.Add(n) }

// AddAborted adds n aborted transactions.
func (c *Cell) AddAborted(n int64) { c.txnsAborted.Add(n) }

// AddEpoch counts one completed epoch.
func (c *Cell) AddEpoch() { c.epochs.Add(1) }

// AddTransient counts a version written only to DRAM.
func (c *Cell) AddTransient() { c.transientVersions.Add(1) }

// AddPersistent counts a final version written to NVMM.
func (c *Cell) AddPersistent() { c.persistentVersions.Add(1) }

// AddRowRead counts a persistent-row read from NVMM.
func (c *Cell) AddRowRead() { c.rowReads.Add(1) }

// AddCacheHit counts a read served by a cached version.
func (c *Cell) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a read that fell through to NVMM.
func (c *Cell) AddCacheMiss() { c.cacheMisses.Add(1) }

// CacheAdd accounts a cached-version creation of n payload bytes.
func (c *Cell) CacheAdd(n int64) {
	c.cacheBytes.Add(n)
	c.cacheEntries.Add(1)
}

// CacheDrop accounts a cached-version eviction of n payload bytes. A cell's
// gauge may go negative (create on one core, evict on another); only the
// folded Snapshot totals are meaningful.
func (c *Cell) CacheDrop(n int64) {
	c.cacheBytes.Add(-n)
	c.cacheEntries.Add(-1)
}

// AddMinorGC counts a minor-collector cleanup.
func (c *Cell) AddMinorGC() { c.minorGCs.Add(1) }

// AddMajorGC counts a major-collector cleanup.
func (c *Cell) AddMajorGC() { c.majorGCs.Add(1) }

// Cold-path convenience forwarders on Counters (coordinator cell).

// AddCommitted adds n committed transactions.
func (c *Counters) AddCommitted(n int64) { c.Coordinator().AddCommitted(n) }

// AddAborted adds n aborted transactions.
func (c *Counters) AddAborted(n int64) { c.Coordinator().AddAborted(n) }

// AddEpoch counts one completed epoch.
func (c *Counters) AddEpoch() { c.Coordinator().AddEpoch() }

// AddTransient counts a version written only to DRAM.
func (c *Counters) AddTransient() { c.Coordinator().AddTransient() }

// AddPersistent counts a final version written to NVMM.
func (c *Counters) AddPersistent() { c.Coordinator().AddPersistent() }

// AddRowRead counts a persistent-row read from NVMM.
func (c *Counters) AddRowRead() { c.Coordinator().AddRowRead() }

// AddCacheHit counts a read served by a cached version.
func (c *Counters) AddCacheHit() { c.Coordinator().AddCacheHit() }

// AddCacheMiss counts a read that fell through to NVMM.
func (c *Counters) AddCacheMiss() { c.Coordinator().AddCacheMiss() }

// CacheAdd accounts a cached-version creation of n payload bytes.
func (c *Counters) CacheAdd(n int64) { c.Coordinator().CacheAdd(n) }

// CacheDrop accounts a cached-version eviction of n payload bytes.
func (c *Counters) CacheDrop(n int64) { c.Coordinator().CacheDrop(n) }

// AddMinorGC counts a minor-collector cleanup.
func (c *Counters) AddMinorGC() { c.Coordinator().AddMinorGC() }

// AddMajorGC counts a major-collector cleanup.
func (c *Counters) AddMajorGC() { c.Coordinator().AddMajorGC() }

// Snapshot returns a copy of all counters, folding the striped cells and
// the coordinator cell.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	for i := range c.cells {
		cell := &c.cells[i]
		s.TxnsCommitted += cell.txnsCommitted.Load()
		s.TxnsAborted += cell.txnsAborted.Load()
		s.Epochs += cell.epochs.Load()
		s.TransientVersions += cell.transientVersions.Load()
		s.PersistentVersions += cell.persistentVersions.Load()
		s.RowReads += cell.rowReads.Load()
		s.CacheHits += cell.cacheHits.Load()
		s.CacheMisses += cell.cacheMisses.Load()
		s.CacheBytes += cell.cacheBytes.Load()
		s.CacheEntries += cell.cacheEntries.Load()
		s.MinorGCs += cell.minorGCs.Load()
		s.MajorGCs += cell.majorGCs.Load()
	}
	return s
}
