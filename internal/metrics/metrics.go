// Package metrics provides lightweight atomic counters for engine-level
// accounting: transient vs persistent version writes, cache behaviour, and
// memory breakdowns used to reproduce the paper's Figure 8.
//
// Counters are striped: each worker core updates its own cache-line-sized
// cell (via At) and Snapshot folds the cells, so the execution phase never
// has every core bouncing one counter cache line. The zero value is ready.
package metrics

import "sync/atomic"

// stripes is the number of counter cells. Core IDs index cells modulo this,
// so any core count works; beyond 64 cores stripes are shared pairwise.
const stripes = 64

// Cell is one stripe of the counters: the per-core view a worker updates
// without contending with other cores. Obtain one with Counters.At.
type Cell struct {
	txnsCommitted      atomic.Int64
	txnsAborted        atomic.Int64
	epochs             atomic.Int64
	transientVersions  atomic.Int64 // versions written only to DRAM
	persistentVersions atomic.Int64 // final versions written to NVMM
	rowReads           atomic.Int64 // persistent-row reads from NVMM
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheBytes         atomic.Int64 // live cached-version payload bytes
	cacheEntries       atomic.Int64
	minorGCs           atomic.Int64
	majorGCs           atomic.Int64
	_                  [32]byte // pad to a multiple of 64B: no false sharing
}

// Counters aggregates engine events. All methods are safe for concurrent
// use. Hot paths should grab the executing core's Cell once via At and
// update that; the convenience methods on Counters itself hit cell 0 and
// are fine for cold paths (epoch boundaries, coordinators, tests).
type Counters struct {
	cells [stripes]Cell
}

// At returns the counter cell for a worker core. Per-cell totals are
// meaningless in isolation; Snapshot folds them.
func (c *Counters) At(core int) *Cell {
	return &c.cells[uint(core)%stripes]
}

// Snapshot is an immutable copy of all counters.
type Snapshot struct {
	TxnsCommitted      int64
	TxnsAborted        int64
	Epochs             int64
	TransientVersions  int64
	PersistentVersions int64
	RowReads           int64
	CacheHits          int64
	CacheMisses        int64
	CacheBytes         int64
	CacheEntries       int64
	MinorGCs           int64
	MajorGCs           int64
}

// Sub returns s - o field-wise, for interval measurements.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		TxnsCommitted:      s.TxnsCommitted - o.TxnsCommitted,
		TxnsAborted:        s.TxnsAborted - o.TxnsAborted,
		Epochs:             s.Epochs - o.Epochs,
		TransientVersions:  s.TransientVersions - o.TransientVersions,
		PersistentVersions: s.PersistentVersions - o.PersistentVersions,
		RowReads:           s.RowReads - o.RowReads,
		CacheHits:          s.CacheHits - o.CacheHits,
		CacheMisses:        s.CacheMisses - o.CacheMisses,
		CacheBytes:         s.CacheBytes, // gauges are not differenced
		CacheEntries:       s.CacheEntries,
		MinorGCs:           s.MinorGCs - o.MinorGCs,
		MajorGCs:           s.MajorGCs - o.MajorGCs,
	}
}

// TransientShare returns the fraction of version writes that stayed in
// DRAM, the quantity the paper's contention analysis revolves around.
func (s Snapshot) TransientShare() float64 {
	total := s.TransientVersions + s.PersistentVersions
	if total == 0 {
		return 0
	}
	return float64(s.TransientVersions) / float64(total)
}

// AddCommitted adds n committed transactions.
func (c *Cell) AddCommitted(n int64) { c.txnsCommitted.Add(n) }

// AddAborted adds n aborted transactions.
func (c *Cell) AddAborted(n int64) { c.txnsAborted.Add(n) }

// AddEpoch counts one completed epoch.
func (c *Cell) AddEpoch() { c.epochs.Add(1) }

// AddTransient counts a version written only to DRAM.
func (c *Cell) AddTransient() { c.transientVersions.Add(1) }

// AddPersistent counts a final version written to NVMM.
func (c *Cell) AddPersistent() { c.persistentVersions.Add(1) }

// AddRowRead counts a persistent-row read from NVMM.
func (c *Cell) AddRowRead() { c.rowReads.Add(1) }

// AddCacheHit counts a read served by a cached version.
func (c *Cell) AddCacheHit() { c.cacheHits.Add(1) }

// AddCacheMiss counts a read that fell through to NVMM.
func (c *Cell) AddCacheMiss() { c.cacheMisses.Add(1) }

// CacheAdd accounts a cached-version creation of n payload bytes.
func (c *Cell) CacheAdd(n int64) {
	c.cacheBytes.Add(n)
	c.cacheEntries.Add(1)
}

// CacheDrop accounts a cached-version eviction of n payload bytes. A cell's
// gauge may go negative (create on one core, evict on another); only the
// folded Snapshot totals are meaningful.
func (c *Cell) CacheDrop(n int64) {
	c.cacheBytes.Add(-n)
	c.cacheEntries.Add(-1)
}

// AddMinorGC counts a minor-collector cleanup.
func (c *Cell) AddMinorGC() { c.minorGCs.Add(1) }

// AddMajorGC counts a major-collector cleanup.
func (c *Cell) AddMajorGC() { c.majorGCs.Add(1) }

// Cold-path convenience forwarders on Counters (cell 0).

// AddCommitted adds n committed transactions.
func (c *Counters) AddCommitted(n int64) { c.cells[0].AddCommitted(n) }

// AddAborted adds n aborted transactions.
func (c *Counters) AddAborted(n int64) { c.cells[0].AddAborted(n) }

// AddEpoch counts one completed epoch.
func (c *Counters) AddEpoch() { c.cells[0].AddEpoch() }

// AddTransient counts a version written only to DRAM.
func (c *Counters) AddTransient() { c.cells[0].AddTransient() }

// AddPersistent counts a final version written to NVMM.
func (c *Counters) AddPersistent() { c.cells[0].AddPersistent() }

// AddRowRead counts a persistent-row read from NVMM.
func (c *Counters) AddRowRead() { c.cells[0].AddRowRead() }

// AddCacheHit counts a read served by a cached version.
func (c *Counters) AddCacheHit() { c.cells[0].AddCacheHit() }

// AddCacheMiss counts a read that fell through to NVMM.
func (c *Counters) AddCacheMiss() { c.cells[0].AddCacheMiss() }

// CacheAdd accounts a cached-version creation of n payload bytes.
func (c *Counters) CacheAdd(n int64) { c.cells[0].CacheAdd(n) }

// CacheDrop accounts a cached-version eviction of n payload bytes.
func (c *Counters) CacheDrop(n int64) { c.cells[0].CacheDrop(n) }

// AddMinorGC counts a minor-collector cleanup.
func (c *Counters) AddMinorGC() { c.cells[0].AddMinorGC() }

// AddMajorGC counts a major-collector cleanup.
func (c *Counters) AddMajorGC() { c.cells[0].AddMajorGC() }

// Snapshot returns a copy of all counters, folding the striped cells.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	for i := range c.cells {
		cell := &c.cells[i]
		s.TxnsCommitted += cell.txnsCommitted.Load()
		s.TxnsAborted += cell.txnsAborted.Load()
		s.Epochs += cell.epochs.Load()
		s.TransientVersions += cell.transientVersions.Load()
		s.PersistentVersions += cell.persistentVersions.Load()
		s.RowReads += cell.rowReads.Load()
		s.CacheHits += cell.cacheHits.Load()
		s.CacheMisses += cell.cacheMisses.Load()
		s.CacheBytes += cell.cacheBytes.Load()
		s.CacheEntries += cell.cacheEntries.Load()
		s.MinorGCs += cell.minorGCs.Load()
		s.MajorGCs += cell.majorGCs.Load()
	}
	return s
}
