package metrics

import (
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddCommitted(5)
	c.AddAborted(2)
	c.AddEpoch()
	c.AddTransient()
	c.AddTransient()
	c.AddPersistent()
	c.AddRowRead()
	c.AddCacheHit()
	c.AddCacheMiss()
	c.CacheAdd(100)
	c.AddMinorGC()
	c.AddMajorGC()
	s := c.Snapshot()
	if s.TxnsCommitted != 5 || s.TxnsAborted != 2 || s.Epochs != 1 {
		t.Fatalf("txn counters: %+v", s)
	}
	if s.TransientVersions != 2 || s.PersistentVersions != 1 {
		t.Fatalf("version counters: %+v", s)
	}
	if s.CacheBytes != 100 || s.CacheEntries != 1 {
		t.Fatalf("cache gauges: %+v", s)
	}
	if s.MinorGCs != 1 || s.MajorGCs != 1 {
		t.Fatalf("gc counters: %+v", s)
	}
}

func TestCacheDrop(t *testing.T) {
	var c Counters
	c.CacheAdd(100)
	c.CacheAdd(50)
	c.CacheDrop(100)
	s := c.Snapshot()
	if s.CacheBytes != 50 || s.CacheEntries != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestSub(t *testing.T) {
	var c Counters
	c.AddCommitted(10)
	before := c.Snapshot()
	c.AddCommitted(7)
	c.AddTransient()
	d := c.Snapshot().Sub(before)
	if d.TxnsCommitted != 7 || d.TransientVersions != 1 {
		t.Fatalf("Sub: %+v", d)
	}
}

func TestTransientShare(t *testing.T) {
	var c Counters
	if got := c.Snapshot().TransientShare(); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
	for i := 0; i < 3; i++ {
		c.AddTransient()
	}
	c.AddPersistent()
	if got := c.Snapshot().TransientShare(); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddTransient()
				c.CacheAdd(1)
				c.CacheDrop(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.TransientVersions != 8000 {
		t.Fatalf("TransientVersions = %d", s.TransientVersions)
	}
	if s.CacheBytes != 0 || s.CacheEntries != 0 {
		t.Fatalf("cache gauges drifted: %+v", s)
	}
}
