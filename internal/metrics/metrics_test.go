package metrics

import (
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddCommitted(5)
	c.AddAborted(2)
	c.AddEpoch()
	c.AddTransient()
	c.AddTransient()
	c.AddPersistent()
	c.AddRowRead()
	c.AddCacheHit()
	c.AddCacheMiss()
	c.CacheAdd(100)
	c.AddMinorGC()
	c.AddMajorGC()
	s := c.Snapshot()
	if s.TxnsCommitted != 5 || s.TxnsAborted != 2 || s.Epochs != 1 {
		t.Fatalf("txn counters: %+v", s)
	}
	if s.TransientVersions != 2 || s.PersistentVersions != 1 {
		t.Fatalf("version counters: %+v", s)
	}
	if s.CacheBytes != 100 || s.CacheEntries != 1 {
		t.Fatalf("cache gauges: %+v", s)
	}
	if s.MinorGCs != 1 || s.MajorGCs != 1 {
		t.Fatalf("gc counters: %+v", s)
	}
}

func TestCacheDrop(t *testing.T) {
	var c Counters
	c.CacheAdd(100)
	c.CacheAdd(50)
	c.CacheDrop(100)
	s := c.Snapshot()
	if s.CacheBytes != 50 || s.CacheEntries != 1 {
		t.Fatalf("%+v", s)
	}
}

func TestSub(t *testing.T) {
	var c Counters
	c.AddCommitted(10)
	before := c.Snapshot()
	c.AddCommitted(7)
	c.AddTransient()
	d := c.Snapshot().Sub(before)
	if d.TxnsCommitted != 7 || d.TransientVersions != 1 {
		t.Fatalf("Sub: %+v", d)
	}
}

func TestTransientShare(t *testing.T) {
	var c Counters
	if got := c.Snapshot().TransientShare(); got != 0 {
		t.Fatalf("empty share = %v", got)
	}
	for i := 0; i < 3; i++ {
		c.AddTransient()
	}
	c.AddPersistent()
	if got := c.Snapshot().TransientShare(); got != 0.75 {
		t.Fatalf("share = %v, want 0.75", got)
	}
}

// TestCoordinatorCellIsolated pins the fix for cold-path forwarders landing
// in worker cell 0: Counters-level updates must go to the dedicated
// coordinator cell, leaving every worker cell untouched.
func TestCoordinatorCellIsolated(t *testing.T) {
	var c Counters
	c.AddEpoch()
	c.CacheDrop(10)
	c.AddMajorGC()
	if got := c.At(0).epochs.Load(); got != 0 {
		t.Fatalf("forwarder wrote worker cell 0: epochs = %d", got)
	}
	if got := c.At(0).cacheBytes.Load(); got != 0 {
		t.Fatalf("forwarder wrote worker cell 0: cacheBytes = %d", got)
	}
	co := c.Coordinator()
	if co == c.At(0) || co == c.At(stripes) {
		t.Fatal("coordinator cell aliases a worker cell")
	}
	if co.epochs.Load() != 1 || co.cacheBytes.Load() != -10 || co.majorGCs.Load() != 1 {
		t.Fatal("coordinator cell missed forwarder updates")
	}
	s := c.Snapshot()
	if s.Epochs != 1 || s.CacheBytes != -10 || s.MajorGCs != 1 {
		t.Fatalf("snapshot must fold the coordinator cell: %+v", s)
	}
}

// TestSubGaugeSemantics pins interval arithmetic: monotonic counters are
// differenced, gauges report the newer snapshot's level.
func TestSubGaugeSemantics(t *testing.T) {
	var c Counters
	c.AddCommitted(3)
	c.CacheAdd(500)
	before := c.Snapshot()
	c.AddCommitted(4)
	c.CacheAdd(200)
	after := c.Snapshot()
	d := after.Sub(before)
	if d.TxnsCommitted != 4 {
		t.Fatalf("monotonic delta: %+v", d)
	}
	if d.CacheBytes != 700 || d.CacheEntries != 2 {
		t.Fatalf("gauges must carry the newer level, not a delta: %+v", d)
	}
}

// TestCoordinatorWorkerConcurrent drives Counters-level forwarders from a
// coordinator goroutine while workers hammer their cells — the pattern the
// engine uses at epoch boundaries. Run under -race in CI.
func TestCoordinatorWorkerConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cell := c.At(w)
			for i := 0; i < per; i++ {
				cell.AddCommitted(1)
				cell.AddTransient()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < per; i++ {
			c.AddEpoch()
			c.CacheDrop(1)
			c.Snapshot()
		}
	}()
	wg.Wait()
	s := c.Snapshot()
	if s.TxnsCommitted != workers*per || s.Epochs != per || s.CacheBytes != -per {
		t.Fatalf("totals: %+v", s)
	}
}

func TestConcurrentUse(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddTransient()
				c.CacheAdd(1)
				c.CacheDrop(1)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.TransientVersions != 8000 {
		t.Fatalf("TransientVersions = %d", s.TransientVersions)
	}
	if s.CacheBytes != 0 || s.CacheEntries != 0 {
		t.Fatalf("cache gauges drifted: %+v", s)
	}
}
