// Package index provides the sharded DRAM hash index of the database.
//
// The paper keeps row indexes in DRAM for performance and rebuilds them
// from the persistent rows during recovery (§4.3); the index never touches
// NVMM. Sharding keeps init-phase inserts (partitioned by owner core) and
// execution-phase lookups contention-free.
package index

import "sync"

// Key identifies a row: a table id plus a 64-bit encoded primary key.
// Workloads with composite keys (e.g. TPC-C's warehouse/district/order
// triples) pack them into the 64-bit ID with per-table bit layouts.
type Key struct {
	Table uint32
	ID    uint64
}

// Hash mixes a Key into a well-distributed 64-bit value
// (splitmix64-style finalizer).
func Hash(k Key) uint64 {
	x := k.ID ^ (uint64(k.Table) << 56) ^ (uint64(k.Table) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

type shard[V any] struct {
	mu sync.RWMutex
	m  map[Key]V
	_  [40]byte // pad to a cache line to avoid false sharing
}

// Map is a sharded hash map from Key to V, safe for concurrent use.
type Map[V any] struct {
	shards []shard[V]
	mask   uint64
}

// New creates a map with the given shard count, rounded up to a power of
// two (minimum 1).
func New[V any](nShards int) *Map[V] {
	n := 1
	for n < nShards {
		n <<= 1
	}
	m := &Map[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	for i := range m.shards {
		m.shards[i].m = make(map[Key]V)
	}
	return m
}

// NumShards returns the shard count.
func (m *Map[V]) NumShards() int { return len(m.shards) }

// ShardOf returns the shard index for a key; the engine uses the same
// function to route init-phase work to owner cores.
func (m *Map[V]) ShardOf(k Key) int { return int(Hash(k) & m.mask) }

// Get returns the value for k.
func (m *Map[V]) Get(k Key) (V, bool) {
	sh := &m.shards[Hash(k)&m.mask]
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	return v, ok
}

// Put stores v under k.
func (m *Map[V]) Put(k Key, v V) {
	sh := &m.shards[Hash(k)&m.mask]
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// GetOrPut returns the existing value for k, or stores and returns def if
// absent. The boolean reports whether the value already existed.
func (m *Map[V]) GetOrPut(k Key, def V) (V, bool) {
	sh := &m.shards[Hash(k)&m.mask]
	sh.mu.Lock()
	if v, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		return v, true
	}
	sh.m[k] = def
	sh.mu.Unlock()
	return def, false
}

// Delete removes k.
func (m *Map[V]) Delete(k Key) {
	sh := &m.shards[Hash(k)&m.mask]
	sh.mu.Lock()
	delete(sh.m, k)
	sh.mu.Unlock()
}

// Len returns the total number of entries.
func (m *Map[V]) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Range calls f for every entry until f returns false. It locks one shard
// at a time; concurrent mutation of other shards is allowed.
func (m *Map[V]) Range(f func(Key, V) bool) {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			if !f(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// approxEntryBytes estimates DRAM per index entry: key (12 B padded to 16),
// pointer-sized value, and Go map bucket overhead.
const approxEntryBytes = 48

// MemBytes estimates the index's DRAM footprint for memory accounting
// (Figure 8 of the paper).
func (m *Map[V]) MemBytes() int64 {
	return int64(m.Len()) * approxEntryBytes
}
