package index

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	m := New[int](8)
	k := Key{Table: 1, ID: 42}
	if _, ok := m.Get(k); ok {
		t.Fatal("empty map returned a value")
	}
	m.Put(k, 7)
	v, ok := m.Get(k)
	if !ok || v != 7 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
}

func TestTablesAreDistinct(t *testing.T) {
	m := New[int](8)
	m.Put(Key{Table: 1, ID: 5}, 1)
	m.Put(Key{Table: 2, ID: 5}, 2)
	if v, _ := m.Get(Key{Table: 1, ID: 5}); v != 1 {
		t.Fatalf("table 1 = %d", v)
	}
	if v, _ := m.Get(Key{Table: 2, ID: 5}); v != 2 {
		t.Fatalf("table 2 = %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestDelete(t *testing.T) {
	m := New[int](8)
	k := Key{Table: 1, ID: 1}
	m.Put(k, 1)
	m.Delete(k)
	if _, ok := m.Get(k); ok {
		t.Fatal("deleted key still present")
	}
	m.Delete(k) // idempotent
}

func TestGetOrPut(t *testing.T) {
	m := New[int](8)
	k := Key{Table: 3, ID: 9}
	v, existed := m.GetOrPut(k, 10)
	if existed || v != 10 {
		t.Fatalf("first GetOrPut = %d,%v", v, existed)
	}
	v, existed = m.GetOrPut(k, 20)
	if !existed || v != 10 {
		t.Fatalf("second GetOrPut = %d,%v", v, existed)
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	if got := New[int](5).NumShards(); got != 8 {
		t.Fatalf("NumShards = %d, want 8", got)
	}
	if got := New[int](1).NumShards(); got != 1 {
		t.Fatalf("NumShards = %d, want 1", got)
	}
}

func TestRange(t *testing.T) {
	m := New[int](4)
	for i := uint64(0); i < 100; i++ {
		m.Put(Key{Table: 1, ID: i}, int(i))
	}
	seen := map[uint64]bool{}
	m.Range(func(k Key, v int) bool {
		seen[k.ID] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d keys", len(seen))
	}
	// Early termination.
	count := 0
	m.Range(func(Key, int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early-terminated Range visited %d", count)
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := New[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{Table: uint32(w), ID: uint64(i)}
				m.Put(k, i)
				if v, ok := m.Get(k); !ok || v != i {
					t.Errorf("worker %d: lost key %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m.Len() != 8000 {
		t.Fatalf("Len = %d, want 8000", m.Len())
	}
}

func TestHashDistribution(t *testing.T) {
	// Sequential IDs (the common workload pattern) must spread evenly.
	const shards = 16
	m := New[int](shards)
	counts := make([]int, m.NumShards())
	for i := uint64(0); i < 16000; i++ {
		counts[m.ShardOf(Key{Table: 1, ID: i})]++
	}
	want := 16000 / m.NumShards()
	for s, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d has %d keys, want ~%d", s, c, want)
		}
	}
}

func TestMemBytes(t *testing.T) {
	m := New[int](4)
	if m.MemBytes() != 0 {
		t.Fatal("empty map has nonzero MemBytes")
	}
	m.Put(Key{Table: 1, ID: 1}, 1)
	if m.MemBytes() != approxEntryBytes {
		t.Fatalf("MemBytes = %d", m.MemBytes())
	}
}

// Property: Put then Get always round-trips, and ShardOf is stable.
func TestQuickPutGet(t *testing.T) {
	m := New[uint64](32)
	f := func(table uint32, id, v uint64) bool {
		k := Key{Table: table, ID: id}
		m.Put(k, v)
		got, ok := m.Get(k)
		return ok && got == v && m.ShardOf(k) == m.ShardOf(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
