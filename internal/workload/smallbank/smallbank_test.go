package smallbank

import (
	"math/rand"
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/zen"
)

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := New(Config{Customers: 200, Hotspot: 10, InitialBalance: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func openDB(t *testing.T, w *Workload) (*core.DB, *nvm.Device, core.Options) {
	t.Helper()
	reg := core.NewRegistry()
	w.Register(reg)
	layout := pmem.Layout{
		Cores: 2, RowSize: 128, RowsPerCore: 2048, ValueSize: 256,
		ValuesPerCore: 1024, RingCap: 8192, LogBytes: 1 << 20, Counters: 4,
	}
	if err := layout.Finalize(); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		Cores: 2, Layout: layout, CacheEnabled: true, CacheK: 8,
		MinorGCEnabled: true, Registry: reg,
	}
	dev := nvm.New(layout.TotalBytes())
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, opts
}

func load(t *testing.T, db *core.DB, w *Workload) {
	t.Helper()
	for _, b := range w.LoadBatches(100) {
		if _, err := db.RunEpoch(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for i, c := range []Config{
		{Customers: 2, Hotspot: 1},
		{Customers: 100, Hotspot: 0},
		{Customers: 100, Hotspot: 200},
	} {
		if _, err := New(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoad(t *testing.T) {
	w := testWorkload(t)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	if db.RowCount() != 3*w.Config().Customers {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
	v, ok := db.Get(TableChecking, 0)
	if !ok || decBalance(v) != 10_000 {
		t.Fatalf("checking 0 = %v,%v", v, ok)
	}
}

// modelBank applies params sequentially to an in-memory model.
type modelBank struct {
	sav, chk map[uint64]int64
}

func newModelBank(w *Workload) *modelBank {
	m := &modelBank{sav: map[uint64]int64{}, chk: map[uint64]int64{}}
	for i := 0; i < w.cfg.Customers; i++ {
		m.sav[uint64(i)] = w.cfg.InitialBalance
		m.chk[uint64(i)] = w.cfg.InitialBalance
	}
	return m
}

func (m *modelBank) apply(p params) {
	switch p.Type {
	case TxnBalance:
	case TxnDepositChecking:
		m.chk[p.Cust1] += p.Amount
	case TxnTransactSavings:
		if m.sav[p.Cust1]+p.Amount >= 0 {
			m.sav[p.Cust1] += p.Amount
		}
	case TxnAmalgamate:
		total := m.sav[p.Cust1] + m.chk[p.Cust1]
		m.sav[p.Cust1] = 0
		m.chk[p.Cust1] = 0
		m.chk[p.Cust2] += total
	case TxnWriteCheck:
		if m.sav[p.Cust1]+m.chk[p.Cust1] >= p.Amount {
			m.chk[p.Cust1] -= p.Amount
		}
	}
}

func TestEngineMatchesSequentialModel(t *testing.T) {
	w := testWorkload(t)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	model := newModelBank(w)
	rng := rand.New(rand.NewSource(7))

	for e := 0; e < 5; e++ {
		var batch []*core.Txn
		used := map[uint64]bool{}
		for len(batch) < 30 {
			p := w.genParams(rng)
			// One txn per customer pair per epoch keeps the sequential
			// model aligned with the serial order without re-implementing
			// intra-epoch chaining (covered by core tests).
			if used[p.Cust1] || (p.Type == TxnAmalgamate && used[p.Cust2]) {
				continue
			}
			used[p.Cust1] = true
			if p.Type == TxnAmalgamate {
				used[p.Cust2] = true
			}
			batch = append(batch, w.build(p))
			model.apply(p)
		}
		if _, err := db.RunEpoch(batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w.cfg.Customers; i++ {
			k := uint64(i)
			if sv, _ := db.Get(TableSavings, k); decBalance(sv) != model.sav[k] {
				t.Fatalf("epoch %d cust %d savings: %d != %d", e, i, decBalance(sv), model.sav[k])
			}
			if cv, _ := db.Get(TableChecking, k); decBalance(cv) != model.chk[k] {
				t.Fatalf("epoch %d cust %d checking: %d != %d", e, i, decBalance(cv), model.chk[k])
			}
		}
	}
}

func TestAbortRateRoughlyTenPercent(t *testing.T) {
	w := testWorkload(t)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(8))
	var committed, aborted int
	for e := 0; e < 20; e++ {
		res, err := db.RunEpoch(w.GenBatch(rng, 100))
		if err != nil {
			t.Fatal(err)
		}
		committed += res.Committed
		aborted += res.Aborted
	}
	rate := float64(aborted) / float64(committed+aborted)
	// Two of five types abort ~10% of the time => overall ~4%; accept a
	// broad band since balances drift.
	if rate < 0.005 || rate > 0.25 {
		t.Fatalf("abort rate = %.3f, implausible", rate)
	}
}

func TestCrashRecoveryPreservesBalances(t *testing.T) {
	w := testWorkload(t)
	db, dev, opts := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(9))
	for e := 0; e < 3; e++ {
		if _, err := db.RunEpoch(w.GenBatch(rng, 50)); err != nil {
			t.Fatal(err)
		}
	}
	before := w.TotalMoney(db.Get)
	dev.Crash(nvm.CrashStrict, 1)
	db2, _, err := core.Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after := w.TotalMoney(db2.Get); after != before {
		t.Fatalf("total money changed across crash: %d -> %d", before, after)
	}
}

func TestZenSmallBank(t *testing.T) {
	w := testWorkload(t)
	cfg := zen.Config{TupleSize: 64, Capacity: 4096, CacheEntries: 128}
	dev := nvm.New(cfg.DeviceSize())
	zdb, err := zen.Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadZen(zdb); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		if err := w.RunZen(zdb, rng); err != nil {
			t.Fatal(err)
		}
	}
	s := zdb.Stats()
	if s.Commits+s.Aborts < 200 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHotspotSkew(t *testing.T) {
	w := testWorkload(t)
	rng := rand.New(rand.NewSource(11))
	hot := 0
	const n = 10_000
	for i := 0; i < n; i++ {
		if w.pickCustomer(rng) < uint64(w.cfg.Hotspot) {
			hot++
		}
	}
	frac := float64(hot) / n
	// 90% targeted + 10%*hotspot/customers incidental.
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hotspot fraction = %.3f", frac)
	}
}
