// Package smallbank implements the SmallBank OLTP benchmark (paper §6.2.2):
// bank customers with checking and savings accounts, five transaction types
// chosen uniformly, two of which abort at a 10% rate, and a hotspot subset
// of customers targeted by 90% of the transactions.
package smallbank

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"nvcaracal/internal/core"
	"nvcaracal/internal/zen"
)

// Table ids.
const (
	TableAccount  = uint32(10) // customer id -> metadata (read-mostly)
	TableSavings  = uint32(11) // customer id -> savings balance (8 bytes)
	TableChecking = uint32(12) // customer id -> checking balance (8 bytes)
)

// Transaction type ids (logged).
const (
	TxnBalance uint16 = 0x5B00 + iota
	TxnDepositChecking
	TxnTransactSavings
	TxnAmalgamate
	TxnWriteCheck
	TxnLoad
)

// Config describes a SmallBank instance (Table 2 of the paper).
type Config struct {
	// Customers is the account count (paper: 18M default, 180M large).
	Customers int
	// Hotspot is the number of hot customers targeted by 90% of
	// transactions (paper: 1M low contention, 10K high contention — as a
	// fraction of the scaled dataset).
	Hotspot int
	// InitialBalance seeds every account.
	InitialBalance int64
}

// DefaultConfig returns a scaled configuration with the paper's hotspot
// structure: hotspot = customers/18 approximates the low-contention setup;
// pass an explicit Hotspot for high contention.
func DefaultConfig(customers, hotspot int) Config {
	return Config{Customers: customers, Hotspot: hotspot, InitialBalance: 10_000}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Customers < 4 {
		return fmt.Errorf("smallbank: %d customers too few", c.Customers)
	}
	if c.Hotspot <= 0 || c.Hotspot > c.Customers {
		return fmt.Errorf("smallbank: hotspot %d out of range", c.Hotspot)
	}
	return nil
}

// Workload generates SmallBank transactions.
type Workload struct {
	cfg Config
}

// New creates a workload; the config must validate.
func New(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg}, nil
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

func encBalance(v int64) []byte {
	return binary.LittleEndian.AppendUint64(nil, uint64(v))
}

func decBalance(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}

// LoadBatches returns the insert batches populating both account tables.
func (w *Workload) LoadBatches(batchSize int) [][]*core.Txn {
	var batches [][]*core.Txn
	var cur []*core.Txn
	for i := 0; i < w.cfg.Customers; i++ {
		cust := uint64(i)
		bal := w.cfg.InitialBalance
		cur = append(cur, &core.Txn{
			TypeID: TxnLoad,
			Input:  binary.LittleEndian.AppendUint64(nil, cust),
			Ops: []core.Op{
				{Table: TableAccount, Key: cust, Kind: core.OpInsert},
				{Table: TableSavings, Key: cust, Kind: core.OpInsert},
				{Table: TableChecking, Key: cust, Kind: core.OpInsert},
			},
			Exec: func(ctx *core.Ctx) {
				ctx.Insert(TableAccount, cust, encBalance(int64(cust)))
				ctx.Insert(TableSavings, cust, encBalance(bal))
				ctx.Insert(TableChecking, cust, encBalance(bal))
			},
		})
		if len(cur) == batchSize {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// LoadZen populates a Zen instance.
func (w *Workload) LoadZen(db *zen.DB) error {
	for i := 0; i < w.cfg.Customers; i++ {
		tx := db.NewTxn()
		cust := uint64(i)
		tx.Write(TableAccount, cust, encBalance(int64(cust)))
		tx.Write(TableSavings, cust, encBalance(w.cfg.InitialBalance))
		tx.Write(TableChecking, cust, encBalance(w.cfg.InitialBalance))
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// pickCustomer draws a customer: 90% from the hotspot, else uniform.
func (w *Workload) pickCustomer(rng *rand.Rand) uint64 {
	if rng.Intn(10) < 9 {
		return uint64(rng.Intn(w.cfg.Hotspot))
	}
	return uint64(rng.Intn(w.cfg.Customers))
}

// params is the serializable input of any SmallBank transaction.
type params struct {
	Type   uint16
	Cust1  uint64
	Cust2  uint64
	Amount int64
}

func (p params) encode() []byte {
	b := make([]byte, 0, 26)
	b = binary.LittleEndian.AppendUint16(b, p.Type)
	b = binary.LittleEndian.AppendUint64(b, p.Cust1)
	b = binary.LittleEndian.AppendUint64(b, p.Cust2)
	return binary.LittleEndian.AppendUint64(b, uint64(p.Amount))
}

func decodeParams(d []byte) (params, error) {
	if len(d) != 26 {
		return params{}, fmt.Errorf("smallbank: bad input length %d", len(d))
	}
	return params{
		Type:   binary.LittleEndian.Uint16(d),
		Cust1:  binary.LittleEndian.Uint64(d[2:]),
		Cust2:  binary.LittleEndian.Uint64(d[10:]),
		Amount: int64(binary.LittleEndian.Uint64(d[18:])),
	}, nil
}

// build constructs the deterministic transaction for the given params.
func (w *Workload) build(p params) *core.Txn {
	in := p.encode()
	switch p.Type {
	case TxnBalance:
		// Read-only: empty write set.
		return &core.Txn{
			TypeID: p.Type, Input: in,
			Exec: func(ctx *core.Ctx) {
				s, _ := ctx.Read(TableSavings, p.Cust1)
				c, _ := ctx.Read(TableChecking, p.Cust1)
				_ = s
				_ = c
			},
		}
	case TxnDepositChecking:
		return &core.Txn{
			TypeID: p.Type, Input: in,
			Ops: []core.Op{{Table: TableChecking, Key: p.Cust1, Kind: core.OpUpdate}},
			Exec: func(ctx *core.Ctx) {
				old, _ := ctx.Read(TableChecking, p.Cust1)
				ctx.Write(TableChecking, p.Cust1, encBalance(decBalance(old)+p.Amount))
			},
		}
	case TxnTransactSavings:
		// Aborts when the resulting savings balance would be negative
		// (one of the two ~10%-abort types).
		return &core.Txn{
			TypeID: p.Type, Input: in,
			Ops: []core.Op{{Table: TableSavings, Key: p.Cust1, Kind: core.OpUpdate}},
			Exec: func(ctx *core.Ctx) {
				old, _ := ctx.Read(TableSavings, p.Cust1)
				bal := decBalance(old) + p.Amount
				if bal < 0 {
					ctx.Abort()
					return
				}
				ctx.Write(TableSavings, p.Cust1, encBalance(bal))
			},
		}
	case TxnAmalgamate:
		// Move all funds of cust1 into cust2's checking account.
		return &core.Txn{
			TypeID: p.Type, Input: in,
			Ops: []core.Op{
				{Table: TableSavings, Key: p.Cust1, Kind: core.OpUpdate},
				{Table: TableChecking, Key: p.Cust1, Kind: core.OpUpdate},
				{Table: TableChecking, Key: p.Cust2, Kind: core.OpUpdate},
			},
			Exec: func(ctx *core.Ctx) {
				s, _ := ctx.Read(TableSavings, p.Cust1)
				c, _ := ctx.Read(TableChecking, p.Cust1)
				total := decBalance(s) + decBalance(c)
				dst, _ := ctx.Read(TableChecking, p.Cust2)
				ctx.Write(TableSavings, p.Cust1, encBalance(0))
				ctx.Write(TableChecking, p.Cust1, encBalance(0))
				ctx.Write(TableChecking, p.Cust2, encBalance(decBalance(dst)+total))
			},
		}
	case TxnWriteCheck:
		// Deduct from checking; abort on insufficient total funds (the
		// other ~10%-abort type).
		return &core.Txn{
			TypeID: p.Type, Input: in,
			Ops: []core.Op{{Table: TableChecking, Key: p.Cust1, Kind: core.OpUpdate}},
			Exec: func(ctx *core.Ctx) {
				s, _ := ctx.Read(TableSavings, p.Cust1)
				c, _ := ctx.Read(TableChecking, p.Cust1)
				if decBalance(s)+decBalance(c) < p.Amount {
					ctx.Abort()
					return
				}
				ctx.Write(TableChecking, p.Cust1, encBalance(decBalance(c)-p.Amount))
			},
		}
	}
	panic(fmt.Sprintf("smallbank: unknown txn type %#x", p.Type))
}

// genParams draws one transaction's parameters. Amounts are tuned so the
// two abortable types abort at roughly the paper's 10% rate given the
// initial balances.
func (w *Workload) genParams(rng *rand.Rand) params {
	p := params{Cust1: w.pickCustomer(rng)}
	switch rng.Intn(5) {
	case 0:
		p.Type = TxnBalance
	case 1:
		p.Type = TxnDepositChecking
		p.Amount = int64(rng.Intn(100) + 1)
	case 2:
		p.Type = TxnTransactSavings
		// Mostly small deposits; occasionally a large withdrawal that can
		// push the balance negative.
		if rng.Intn(10) == 0 {
			p.Amount = -int64(rng.Intn(40_000))
		} else {
			p.Amount = int64(rng.Intn(100) + 1)
		}
	case 3:
		p.Type = TxnAmalgamate
		for {
			p.Cust2 = w.pickCustomer(rng)
			if p.Cust2 != p.Cust1 {
				break
			}
		}
	case 4:
		p.Type = TxnWriteCheck
		if rng.Intn(10) == 0 {
			p.Amount = int64(rng.Intn(100_000))
		} else {
			p.Amount = int64(rng.Intn(50) + 1)
		}
	}
	return p
}

// Gen produces one transaction.
func (w *Workload) Gen(rng *rand.Rand) *core.Txn {
	return w.build(w.genParams(rng))
}

// GenBatch produces an epoch's worth of transactions.
func (w *Workload) GenBatch(rng *rand.Rand, n int) []*core.Txn {
	batch := make([]*core.Txn, n)
	for i := range batch {
		batch[i] = w.Gen(rng)
	}
	return batch
}

// Register installs the replay decoders.
func (w *Workload) Register(reg *core.Registry) {
	dec := func(d []byte, _ *core.DB) (*core.Txn, error) {
		p, err := decodeParams(d)
		if err != nil {
			return nil, err
		}
		return w.build(p), nil
	}
	for _, t := range []uint16{TxnBalance, TxnDepositChecking, TxnTransactSavings, TxnAmalgamate, TxnWriteCheck} {
		reg.Register(t, dec)
	}
	reg.Register(TxnLoad, func(d []byte, _ *core.DB) (*core.Txn, error) {
		if len(d) != 8 {
			return nil, fmt.Errorf("smallbank: bad loader input")
		}
		cust := binary.LittleEndian.Uint64(d)
		bal := w.cfg.InitialBalance
		return &core.Txn{
			TypeID: TxnLoad, Input: d,
			Ops: []core.Op{
				{Table: TableAccount, Key: cust, Kind: core.OpInsert},
				{Table: TableSavings, Key: cust, Kind: core.OpInsert},
				{Table: TableChecking, Key: cust, Kind: core.OpInsert},
			},
			Exec: func(ctx *core.Ctx) {
				ctx.Insert(TableAccount, cust, encBalance(int64(cust)))
				ctx.Insert(TableSavings, cust, encBalance(bal))
				ctx.Insert(TableChecking, cust, encBalance(bal))
			},
		}, nil
	})
}

// RunZen executes one equivalent transaction against a Zen instance.
func (w *Workload) RunZen(db *zen.DB, rng *rand.Rand) error {
	p := w.genParams(rng)
	tx := db.NewTxn()
	switch p.Type {
	case TxnBalance:
		tx.Read(TableSavings, p.Cust1)
		tx.Read(TableChecking, p.Cust1)
	case TxnDepositChecking:
		old, _ := tx.Read(TableChecking, p.Cust1)
		tx.Write(TableChecking, p.Cust1, encBalance(decBalance(old)+p.Amount))
	case TxnTransactSavings:
		old, _ := tx.Read(TableSavings, p.Cust1)
		bal := decBalance(old) + p.Amount
		if bal < 0 {
			tx.Abort()
		} else {
			tx.Write(TableSavings, p.Cust1, encBalance(bal))
		}
	case TxnAmalgamate:
		s, _ := tx.Read(TableSavings, p.Cust1)
		c, _ := tx.Read(TableChecking, p.Cust1)
		dst, _ := tx.Read(TableChecking, p.Cust2)
		tx.Write(TableSavings, p.Cust1, encBalance(0))
		tx.Write(TableChecking, p.Cust1, encBalance(0))
		tx.Write(TableChecking, p.Cust2, encBalance(decBalance(dst)+decBalance(s)+decBalance(c)))
	case TxnWriteCheck:
		s, _ := tx.Read(TableSavings, p.Cust1)
		c, _ := tx.Read(TableChecking, p.Cust1)
		if decBalance(s)+decBalance(c) < p.Amount {
			tx.Abort()
		} else {
			tx.Write(TableChecking, p.Cust1, encBalance(decBalance(c)-p.Amount))
		}
	}
	return tx.Commit()
}

// TotalMoney sums all balances (conservation invariant for tests). Only
// valid between epochs.
func (w *Workload) TotalMoney(get func(table uint32, key uint64) ([]byte, bool)) int64 {
	var total int64
	for i := 0; i < w.cfg.Customers; i++ {
		if v, ok := get(TableSavings, uint64(i)); ok {
			total += decBalance(v)
		}
		if v, ok := get(TableChecking, uint64(i)); ok {
			total += decBalance(v)
		}
	}
	return total
}
