// Package tpcc implements the TPC-C benchmark with Caracal's modifications
// for deterministic execution (paper §6.2.3):
//
//   - Payment takes the customer id as a transaction input instead of a
//     last-name lookup.
//   - NewOrder draws its order id from an engine-persisted atomic counter
//     per district at transaction-generation time (before execution), so
//     the write set is known up front. The counters make TPC-C not fully
//     deterministic, which is why the engine's RevertOnRecovery mode exists.
//   - Delivery uses a reconnaissance read at generation time to discover
//     the oldest undelivered order and declares a write set from it; the
//     execution validates the reconnaissance and skips (ignoring its
//     declared writes) when the order was already delivered.
//
// Keys are packed into uint64s arithmetically; see the key helpers.
package tpcc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"nvcaracal/internal/core"
)

// Table ids.
const (
	TableWarehouse = uint32(20) // w -> {ytd}
	TableDistrict  = uint32(21) // dKey -> {ytd}
	TableCustomer  = uint32(22) // cKey -> {balance, ytdPayment, paymentCnt, deliveryCnt}
	TableItem      = uint32(23) // i -> {price}
	TableStock     = uint32(24) // sKey -> {qty, ytd, orderCnt}
	TableOrder     = uint32(25) // oKey -> {cID, olCnt, carrier}
	TableOrderLine = uint32(26) // olKey -> {item, supplyW, qty, amount, delivered}
	TableNewOrder  = uint32(27) // oKey -> {} (presence marker)
	TableHistory   = uint32(28) // hID -> {cKey, amount}
	TableCustLast  = uint32(29) // cKey -> {lastO} (supports OrderStatus)
	TableDistDeliv = uint32(30) // dKey -> {nextDeliveryO}
)

// Transaction type ids (logged).
const (
	TxnNewOrder uint16 = 0x7C00 + iota
	TxnPayment
	TxnOrderStatus
	TxnDelivery
	TxnStockLevel
	TxnLoad
)

// Config scales the benchmark (Table 3 of the paper: 256 warehouses low
// contention, 1 warehouse high contention).
type Config struct {
	Warehouses           int
	Districts            int // per warehouse; spec says 10
	CustomersPerDistrict int // spec says 3000
	Items                int // spec says 100000
}

// DefaultConfig returns a configuration scaled for simulation.
func DefaultConfig(warehouses int) Config {
	return Config{Warehouses: warehouses, Districts: 10, CustomersPerDistrict: 120, Items: 1000}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warehouses < 1 || c.Districts < 1 || c.CustomersPerDistrict < 3 || c.Items < 10 {
		return fmt.Errorf("tpcc: implausible config %+v", c)
	}
	if c.CustomersPerDistrict > 99_999 || c.Items > 999_999 {
		return fmt.Errorf("tpcc: config exceeds key packing limits: %+v", c)
	}
	return nil
}

// RequiredCounters returns how many persistent counter slots the engine
// layout must provide: one order-id counter per district plus one history
// id counter.
func (c Config) RequiredCounters() int64 {
	return int64(c.Warehouses*c.Districts) + 1
}

// --- key packing ---

func dKey(w, d int) uint64 { return uint64(w)*100 + uint64(d) }
func cKey(w, d, c int) uint64 {
	return dKey(w, d)*100_000 + uint64(c)
}
func sKey(w, i int) uint64 { return uint64(w)*1_000_000 + uint64(i) }
func oKey(w, d int, o uint64) uint64 {
	return dKey(w, d)*10_000_000 + o
}
func olKey(w, d int, o uint64, ol int) uint64 {
	return oKey(w, d, o)*16 + uint64(ol)
}

func (c Config) districtSlot(w, d int) int {
	return (w-1)*c.Districts + (d - 1)
}

func (c Config) historySlot() int { return c.Warehouses * c.Districts }

// --- value encodings ---

func encInt64s(vs ...int64) []byte {
	b := make([]byte, 0, 8*len(vs))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func decInt64(b []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(b[i*8:]))
}

// Workload generates TPC-C transactions against a core.DB (the engine
// counters make generation stateful).
type Workload struct {
	cfg Config

	// genMu serializes GenBatch: counterSnap is batch-scoped state, and
	// callers like the crashcheck sweep generate the same batch from many
	// worker goroutines against one shared Workload.
	genMu sync.Mutex

	// counterSnap holds the district order-id counters as of the start of
	// the current batch. Delivery reconnaissance must not observe ids
	// issued to NewOrders generated earlier in the same batch — their
	// orders do not exist yet and must not be treated as burned ids.
	counterSnap []uint64
}

// New creates a workload; the config must validate.
func New(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg}, nil
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// --- loading ---

// loadRec describes one loader insert, encoded into the input log.
type loadRec struct {
	Table uint32
	Key   uint64
	A, B  int64 // seed values
}

func (l loadRec) encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, l.Table)
	b = binary.LittleEndian.AppendUint64(b, l.Key)
	b = binary.LittleEndian.AppendUint64(b, uint64(l.A))
	return binary.LittleEndian.AppendUint64(b, uint64(l.B))
}

func decodeLoadRec(d []byte) (loadRec, error) {
	if len(d) != 28 {
		return loadRec{}, fmt.Errorf("tpcc: bad load record length %d", len(d))
	}
	return loadRec{
		Table: binary.LittleEndian.Uint32(d),
		Key:   binary.LittleEndian.Uint64(d[4:]),
		A:     int64(binary.LittleEndian.Uint64(d[12:])),
		B:     int64(binary.LittleEndian.Uint64(d[20:])),
	}, nil
}

func (l loadRec) value() []byte {
	switch l.Table {
	case TableWarehouse, TableDistrict:
		return encInt64s(0) // ytd
	case TableCustomer:
		return encInt64s(l.A, 0, 0, 0) // balance, ytdPayment, paymentCnt, deliveryCnt
	case TableItem:
		return encInt64s(l.A) // price
	case TableStock:
		return encInt64s(l.A, 0, 0) // qty, ytd, orderCnt
	case TableCustLast:
		return encInt64s(0)
	case TableDistDeliv:
		return encInt64s(1) // first order id to deliver
	}
	panic(fmt.Sprintf("tpcc: load into unexpected table %d", l.Table))
}

func (l loadRec) txn() *core.Txn {
	val := l.value()
	return &core.Txn{
		TypeID: TxnLoad,
		Input:  l.encode(),
		Ops:    []core.Op{{Table: l.Table, Key: l.Key, Kind: core.OpInsert}},
		Exec: func(ctx *core.Ctx) {
			ctx.Insert(l.Table, l.Key, val)
		},
	}
}

// LoadBatches returns the insert batches populating all tables.
func (w *Workload) LoadBatches(batchSize int) [][]*core.Txn {
	var recs []loadRec
	for i := 1; i <= w.cfg.Items; i++ {
		recs = append(recs, loadRec{Table: TableItem, Key: uint64(i), A: int64(i%90+1) * 100})
	}
	for wh := 1; wh <= w.cfg.Warehouses; wh++ {
		recs = append(recs, loadRec{Table: TableWarehouse, Key: uint64(wh)})
		for i := 1; i <= w.cfg.Items; i++ {
			recs = append(recs, loadRec{Table: TableStock, Key: sKey(wh, i), A: int64(50 + (i % 50))})
		}
		for d := 1; d <= w.cfg.Districts; d++ {
			recs = append(recs, loadRec{Table: TableDistrict, Key: dKey(wh, d)})
			recs = append(recs, loadRec{Table: TableDistDeliv, Key: dKey(wh, d)})
			for c := 1; c <= w.cfg.CustomersPerDistrict; c++ {
				recs = append(recs, loadRec{Table: TableCustomer, Key: cKey(wh, d, c), A: 1_000_00})
				recs = append(recs, loadRec{Table: TableCustLast, Key: cKey(wh, d, c)})
			}
		}
	}
	var batches [][]*core.Txn
	for start := 0; start < len(recs); start += batchSize {
		end := min(start+batchSize, len(recs))
		batch := make([]*core.Txn, 0, end-start)
		for _, r := range recs[start:end] {
			batch = append(batch, r.txn())
		}
		batches = append(batches, batch)
	}
	return batches
}

// --- transaction generation ---

// Mix returns the standard transaction mix percentages.
func Mix() map[string]int {
	return map[string]int{"NewOrder": 45, "Payment": 43, "OrderStatus": 4, "Delivery": 4, "StockLevel": 4}
}

// Gen produces one transaction using the standard mix. The db is needed
// for order-id counters and Delivery reconnaissance.
func (w *Workload) Gen(rng *rand.Rand, db *core.DB) *core.Txn {
	r := rng.Intn(100)
	switch {
	case r < 45:
		return w.genNewOrder(rng, db)
	case r < 88:
		return w.genPayment(rng, db)
	case r < 92:
		return w.genOrderStatus(rng)
	case r < 96:
		return w.genDelivery(rng, db)
	default:
		return w.genStockLevel(rng, db)
	}
}

// GenBatch produces an epoch's worth of transactions, snapshotting the
// order-id counters first (see Workload.counterSnap).
func (w *Workload) GenBatch(rng *rand.Rand, db *core.DB, n int) []*core.Txn {
	w.genMu.Lock()
	defer w.genMu.Unlock()
	w.snapshotCounters(db)
	batch := make([]*core.Txn, n)
	for i := range batch {
		batch[i] = w.Gen(rng, db)
	}
	w.counterSnap = nil
	return batch
}

func (w *Workload) snapshotCounters(db *core.DB) {
	n := w.cfg.Warehouses * w.cfg.Districts
	if cap(w.counterSnap) < n {
		w.counterSnap = make([]uint64, n)
	}
	w.counterSnap = w.counterSnap[:n]
	for i := 0; i < n; i++ {
		w.counterSnap[i] = db.CounterGet(i)
	}
}

// lastCommittedIssued returns the last order id issued before the current
// batch began for a district.
func (w *Workload) lastCommittedIssued(db *core.DB, wh, d int) uint64 {
	slot := w.cfg.districtSlot(wh, d)
	if w.counterSnap != nil {
		return w.counterSnap[slot]
	}
	return db.CounterGet(slot)
}

func (w *Workload) pickWarehouse(rng *rand.Rand) int {
	return 1 + rng.Intn(w.cfg.Warehouses)
}

// --- NewOrder ---

type noParams struct {
	W, D, C int
	O       uint64 // counter-assigned order id
	Abort   bool   // 1% invalid-item rollback
	Items   []noItem
}

type noItem struct {
	Item    int
	SupplyW int
	Qty     int
}

func (p noParams) encode() []byte {
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint32(b, uint32(p.W))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.D))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.C))
	b = binary.LittleEndian.AppendUint64(b, p.O)
	ab := byte(0)
	if p.Abort {
		ab = 1
	}
	b = append(b, ab, byte(len(p.Items)))
	for _, it := range p.Items {
		b = binary.LittleEndian.AppendUint32(b, uint32(it.Item))
		b = binary.LittleEndian.AppendUint32(b, uint32(it.SupplyW))
		b = append(b, byte(it.Qty))
	}
	return b
}

func decodeNOParams(d []byte) (noParams, error) {
	if len(d) < 22 {
		return noParams{}, fmt.Errorf("tpcc: short neworder input")
	}
	p := noParams{
		W: int(binary.LittleEndian.Uint32(d)),
		D: int(binary.LittleEndian.Uint32(d[4:])),
		C: int(binary.LittleEndian.Uint32(d[8:])),
		O: binary.LittleEndian.Uint64(d[12:]),
	}
	p.Abort = d[20] == 1
	n := int(d[21])
	pos := 22
	for i := 0; i < n; i++ {
		if pos+9 > len(d) {
			return noParams{}, fmt.Errorf("tpcc: truncated neworder items")
		}
		p.Items = append(p.Items, noItem{
			Item:    int(binary.LittleEndian.Uint32(d[pos:])),
			SupplyW: int(binary.LittleEndian.Uint32(d[pos+4:])),
			Qty:     int(d[pos+8]),
		})
		pos += 9
	}
	return p, nil
}

func (w *Workload) genNewOrder(rng *rand.Rand, db *core.DB) *core.Txn {
	wh := w.pickWarehouse(rng)
	d := 1 + rng.Intn(w.cfg.Districts)
	c := 1 + rng.Intn(w.cfg.CustomersPerDistrict)
	p := noParams{
		W: wh, D: d, C: c,
		O:     db.CounterAdd(w.cfg.districtSlot(wh, d), 1) + 1,
		Abort: rng.Intn(100) == 0,
	}
	olCnt := 5 + rng.Intn(11)
	used := map[int]bool{}
	for i := 0; i < olCnt; i++ {
		var item int
		for {
			item = 1 + rng.Intn(w.cfg.Items)
			if !used[item] {
				used[item] = true
				break
			}
		}
		supply := wh
		if w.cfg.Warehouses > 1 && rng.Intn(100) == 0 {
			for {
				supply = w.pickWarehouse(rng)
				if supply != wh {
					break
				}
			}
		}
		p.Items = append(p.Items, noItem{Item: item, SupplyW: supply, Qty: 1 + rng.Intn(10)})
	}
	return w.buildNewOrder(p)
}

func (w *Workload) buildNewOrder(p noParams) *core.Txn {
	ok := oKey(p.W, p.D, p.O)
	ops := []core.Op{
		{Table: TableOrder, Key: ok, Kind: core.OpInsert},
		{Table: TableNewOrder, Key: ok, Kind: core.OpInsert},
		{Table: TableCustLast, Key: cKey(p.W, p.D, p.C), Kind: core.OpUpdate},
	}
	for i, it := range p.Items {
		ops = append(ops,
			core.Op{Table: TableOrderLine, Key: olKey(p.W, p.D, p.O, i+1), Kind: core.OpInsert},
			core.Op{Table: TableStock, Key: sKey(it.SupplyW, it.Item), Kind: core.OpUpdate},
		)
	}
	return &core.Txn{
		TypeID: TxnNewOrder,
		Input:  p.encode(),
		Ops:    ops,
		Exec: func(ctx *core.Ctx) {
			if p.Abort {
				// Invalid item: user-level abort before any writes (§3.1.1).
				ctx.Abort()
				return
			}
			// Reads: customer (discount/credit) and district.
			if _, found := ctx.Read(TableCustomer, cKey(p.W, p.D, p.C)); !found {
				panic("tpcc: missing customer")
			}
			ctx.Read(TableDistrict, dKey(p.W, p.D))
			for i, it := range p.Items {
				price, found := ctx.Read(TableItem, uint64(it.Item))
				if !found {
					panic("tpcc: missing item")
				}
				sk := sKey(it.SupplyW, it.Item)
				st, found := ctx.Read(TableStock, sk)
				if !found {
					panic("tpcc: missing stock")
				}
				qty := decInt64(st, 0)
				if qty >= int64(it.Qty)+10 {
					qty -= int64(it.Qty)
				} else {
					qty = qty - int64(it.Qty) + 91
				}
				ctx.Write(TableStock, sk, encInt64s(qty, decInt64(st, 1)+int64(it.Qty), decInt64(st, 2)+1))
				amount := decInt64(price, 0) * int64(it.Qty)
				ctx.Insert(TableOrderLine, olKey(p.W, p.D, p.O, i+1),
					encInt64s(int64(it.Item), int64(it.SupplyW), int64(it.Qty), amount, 0))
			}
			ctx.Insert(TableOrder, ok, encInt64s(int64(cKey(p.W, p.D, p.C)), int64(len(p.Items)), 0))
			ctx.Insert(TableNewOrder, ok, nil)
			ctx.Write(TableCustLast, cKey(p.W, p.D, p.C), encInt64s(int64(p.O)))
		},
	}
}

// --- Payment ---

type payParams struct {
	W, D, C int
	Amount  int64
	HID     uint64
}

func (p payParams) encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(p.W))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.D))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.C))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Amount))
	return binary.LittleEndian.AppendUint64(b, p.HID)
}

func decodePayParams(d []byte) (payParams, error) {
	if len(d) != 28 {
		return payParams{}, fmt.Errorf("tpcc: bad payment input length %d", len(d))
	}
	return payParams{
		W:      int(binary.LittleEndian.Uint32(d)),
		D:      int(binary.LittleEndian.Uint32(d[4:])),
		C:      int(binary.LittleEndian.Uint32(d[8:])),
		Amount: int64(binary.LittleEndian.Uint64(d[12:])),
		HID:    binary.LittleEndian.Uint64(d[20:]),
	}, nil
}

func (w *Workload) genPayment(rng *rand.Rand, db *core.DB) *core.Txn {
	p := payParams{
		W:      w.pickWarehouse(rng),
		D:      1 + rng.Intn(w.cfg.Districts),
		C:      1 + rng.Intn(w.cfg.CustomersPerDistrict),
		Amount: int64(rng.Intn(5000) + 1),
		HID:    db.CounterAdd(w.cfg.historySlot(), 1) + 1,
	}
	return w.buildPayment(p)
}

func (w *Workload) buildPayment(p payParams) *core.Txn {
	ck := cKey(p.W, p.D, p.C)
	return &core.Txn{
		TypeID: TxnPayment,
		Input:  p.encode(),
		Ops: []core.Op{
			{Table: TableWarehouse, Key: uint64(p.W), Kind: core.OpUpdate},
			{Table: TableDistrict, Key: dKey(p.W, p.D), Kind: core.OpUpdate},
			{Table: TableCustomer, Key: ck, Kind: core.OpUpdate},
			{Table: TableHistory, Key: p.HID, Kind: core.OpInsert},
		},
		Exec: func(ctx *core.Ctx) {
			wv, _ := ctx.Read(TableWarehouse, uint64(p.W))
			ctx.Write(TableWarehouse, uint64(p.W), encInt64s(decInt64(wv, 0)+p.Amount))
			dv, _ := ctx.Read(TableDistrict, dKey(p.W, p.D))
			ctx.Write(TableDistrict, dKey(p.W, p.D), encInt64s(decInt64(dv, 0)+p.Amount))
			cv, _ := ctx.Read(TableCustomer, ck)
			ctx.Write(TableCustomer, ck, encInt64s(
				decInt64(cv, 0)-p.Amount,
				decInt64(cv, 1)+p.Amount,
				decInt64(cv, 2)+1,
				decInt64(cv, 3),
			))
			ctx.Insert(TableHistory, p.HID, encInt64s(int64(ck), p.Amount))
		},
	}
}

// --- OrderStatus (read-only) ---

type osParams struct {
	W, D, C int
}

func (p osParams) encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(p.W))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.D))
	return binary.LittleEndian.AppendUint32(b, uint32(p.C))
}

func decodeOSParams(d []byte) (osParams, error) {
	if len(d) != 12 {
		return osParams{}, fmt.Errorf("tpcc: bad orderstatus input")
	}
	return osParams{
		W: int(binary.LittleEndian.Uint32(d)),
		D: int(binary.LittleEndian.Uint32(d[4:])),
		C: int(binary.LittleEndian.Uint32(d[8:])),
	}, nil
}

func (w *Workload) genOrderStatus(rng *rand.Rand) *core.Txn {
	return w.buildOrderStatus(osParams{
		W: w.pickWarehouse(rng),
		D: 1 + rng.Intn(w.cfg.Districts),
		C: 1 + rng.Intn(w.cfg.CustomersPerDistrict),
	})
}

func (w *Workload) buildOrderStatus(p osParams) *core.Txn {
	return &core.Txn{
		TypeID: TxnOrderStatus,
		Input:  p.encode(),
		Exec: func(ctx *core.Ctx) {
			last, found := ctx.Read(TableCustLast, cKey(p.W, p.D, p.C))
			if !found {
				return
			}
			o := uint64(decInt64(last, 0))
			if o == 0 {
				return // customer has no orders yet
			}
			ov, found := ctx.Read(TableOrder, oKey(p.W, p.D, o))
			if !found {
				return
			}
			olCnt := int(decInt64(ov, 1))
			for i := 1; i <= olCnt; i++ {
				ctx.Read(TableOrderLine, olKey(p.W, p.D, o, i))
			}
		},
	}
}

// --- Delivery ---

// dlvDistrict is the reconnaissance result for one district.
type dlvDistrict struct {
	D     int
	O     uint64
	CKey  uint64
	OlCnt int
	Mode  byte // 0 = nothing to deliver, 1 = deliver, 2 = advance past burned id
}

type dlvParams struct {
	W         int
	Carrier   int64
	Districts []dlvDistrict
}

func (p dlvParams) encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(p.W))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Carrier))
	b = append(b, byte(len(p.Districts)))
	for _, d := range p.Districts {
		b = binary.LittleEndian.AppendUint32(b, uint32(d.D))
		b = binary.LittleEndian.AppendUint64(b, d.O)
		b = binary.LittleEndian.AppendUint64(b, d.CKey)
		b = append(b, byte(d.OlCnt), d.Mode)
	}
	return b
}

func decodeDlvParams(d []byte) (dlvParams, error) {
	if len(d) < 13 {
		return dlvParams{}, fmt.Errorf("tpcc: short delivery input")
	}
	p := dlvParams{
		W:       int(binary.LittleEndian.Uint32(d)),
		Carrier: int64(binary.LittleEndian.Uint64(d[4:])),
	}
	n := int(d[12])
	pos := 13
	for i := 0; i < n; i++ {
		if pos+22 > len(d) {
			return dlvParams{}, fmt.Errorf("tpcc: truncated delivery input")
		}
		p.Districts = append(p.Districts, dlvDistrict{
			D:     int(binary.LittleEndian.Uint32(d[pos:])),
			O:     binary.LittleEndian.Uint64(d[pos+4:]),
			CKey:  binary.LittleEndian.Uint64(d[pos+12:]),
			OlCnt: int(d[pos+20]),
			Mode:  d[pos+21],
		})
		pos += 22
	}
	return p, nil
}

func (w *Workload) genDelivery(rng *rand.Rand, db *core.DB) *core.Txn {
	wh := w.pickWarehouse(rng)
	p := dlvParams{W: wh, Carrier: int64(1 + rng.Intn(10))}
	for d := 1; d <= w.cfg.Districts; d++ {
		dd := dlvDistrict{D: d}
		if nv, found := db.Get(TableDistDeliv, dKey(wh, d)); found {
			o := uint64(decInt64(nv, 0))
			lastIssued := w.lastCommittedIssued(db, wh, d)
			if o <= lastIssued {
				dd.O = o
				if ov, found := db.Get(TableOrder, oKey(wh, d, o)); found {
					dd.CKey = uint64(decInt64(ov, 0))
					dd.OlCnt = int(decInt64(ov, 1))
					dd.Mode = 1
				} else {
					// The order id was burned by an aborted NewOrder:
					// advance the delivery pointer past it.
					dd.Mode = 2
				}
			}
		}
		p.Districts = append(p.Districts, dd)
	}
	return w.buildDelivery(p)
}

func (w *Workload) buildDelivery(p dlvParams) *core.Txn {
	var ops []core.Op
	for _, dd := range p.Districts {
		switch dd.Mode {
		case 1:
			ok := oKey(p.W, dd.D, dd.O)
			ops = append(ops,
				core.Op{Table: TableNewOrder, Key: ok, Kind: core.OpDelete},
				core.Op{Table: TableOrder, Key: ok, Kind: core.OpUpdate},
				core.Op{Table: TableCustomer, Key: dd.CKey, Kind: core.OpUpdate},
				core.Op{Table: TableDistDeliv, Key: dKey(p.W, dd.D), Kind: core.OpUpdate},
			)
			for i := 1; i <= dd.OlCnt; i++ {
				ops = append(ops, core.Op{Table: TableOrderLine, Key: olKey(p.W, dd.D, dd.O, i), Kind: core.OpUpdate})
			}
		case 2:
			ops = append(ops, core.Op{Table: TableDistDeliv, Key: dKey(p.W, dd.D), Kind: core.OpUpdate})
		}
	}
	return &core.Txn{
		TypeID: TxnDelivery,
		Input:  p.encode(),
		Ops:    ops,
		Exec: func(ctx *core.Ctx) {
			for _, dd := range p.Districts {
				switch dd.Mode {
				case 1:
					ok := oKey(p.W, dd.D, dd.O)
					// Validate the reconnaissance: if another Delivery in
					// this epoch already delivered the order, skip; the
					// declared writes become IGNORE markers.
					if _, stillThere := ctx.Read(TableNewOrder, ok); !stillThere {
						continue
					}
					ctx.Delete(TableNewOrder, ok)
					ov, _ := ctx.Read(TableOrder, ok)
					ctx.Write(TableOrder, ok, encInt64s(decInt64(ov, 0), decInt64(ov, 1), p.Carrier))
					var total int64
					for i := 1; i <= dd.OlCnt; i++ {
						olk := olKey(p.W, dd.D, dd.O, i)
						olv, found := ctx.Read(TableOrderLine, olk)
						if !found {
							continue
						}
						total += decInt64(olv, 3)
						ctx.Write(TableOrderLine, olk, encInt64s(
							decInt64(olv, 0), decInt64(olv, 1), decInt64(olv, 2), decInt64(olv, 3), 1))
					}
					cv, _ := ctx.Read(TableCustomer, dd.CKey)
					ctx.Write(TableCustomer, dd.CKey, encInt64s(
						decInt64(cv, 0)+total, decInt64(cv, 1), decInt64(cv, 2), decInt64(cv, 3)+1))
					ctx.Write(TableDistDeliv, dKey(p.W, dd.D), encInt64s(int64(dd.O)+1))
				case 2:
					ctx.Write(TableDistDeliv, dKey(p.W, dd.D), encInt64s(int64(dd.O)+1))
				}
			}
		},
	}
}

// --- StockLevel (read-only) ---

type slParams struct {
	W, D      int
	Threshold int64
	OHi       uint64 // last issued order id at generation time
}

func (p slParams) encode() []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(p.W))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.D))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.Threshold))
	return binary.LittleEndian.AppendUint64(b, p.OHi)
}

func decodeSLParams(d []byte) (slParams, error) {
	if len(d) != 24 {
		return slParams{}, fmt.Errorf("tpcc: bad stocklevel input")
	}
	return slParams{
		W:         int(binary.LittleEndian.Uint32(d)),
		D:         int(binary.LittleEndian.Uint32(d[4:])),
		Threshold: int64(binary.LittleEndian.Uint64(d[8:])),
		OHi:       binary.LittleEndian.Uint64(d[16:]),
	}, nil
}

func (w *Workload) genStockLevel(rng *rand.Rand, db *core.DB) *core.Txn {
	wh := w.pickWarehouse(rng)
	d := 1 + rng.Intn(w.cfg.Districts)
	return w.buildStockLevel(slParams{
		W: wh, D: d,
		Threshold: int64(10 + rng.Intn(11)),
		OHi:       db.CounterGet(w.cfg.districtSlot(wh, d)),
	})
}

func (w *Workload) buildStockLevel(p slParams) *core.Txn {
	return &core.Txn{
		TypeID: TxnStockLevel,
		Input:  p.encode(),
		Exec: func(ctx *core.Ctx) {
			lo := uint64(1)
			if p.OHi > 20 {
				lo = p.OHi - 19
			}
			low := 0
			for o := lo; o <= p.OHi; o++ {
				ov, found := ctx.Read(TableOrder, oKey(p.W, p.D, o))
				if !found {
					continue // burned order id
				}
				olCnt := int(decInt64(ov, 1))
				for i := 1; i <= olCnt; i++ {
					olv, found := ctx.Read(TableOrderLine, olKey(p.W, p.D, o, i))
					if !found {
						continue
					}
					item := int(decInt64(olv, 0))
					sv, found := ctx.Read(TableStock, sKey(p.W, item))
					if found && decInt64(sv, 0) < p.Threshold {
						low++
					}
				}
			}
			_ = low
		},
	}
}

// Register installs the replay decoders. NewOrder and Payment decoders do
// not re-draw counters: the ids in the logged input are authoritative
// (replay may produce different ids than the crashed run, which is why the
// engine's RevertOnRecovery mode is required for TPC-C).
func (w *Workload) Register(reg *core.Registry) {
	reg.Register(TxnNewOrder, func(d []byte, db *core.DB) (*core.Txn, error) {
		p, err := decodeNOParams(d)
		if err != nil {
			return nil, err
		}
		// Re-issue the order id from the recovered counter so the id space
		// stays consistent after replay.
		p.O = db.CounterAdd(w.cfg.districtSlot(p.W, p.D), 1) + 1
		return w.buildNewOrder(p), nil
	})
	reg.Register(TxnPayment, func(d []byte, db *core.DB) (*core.Txn, error) {
		p, err := decodePayParams(d)
		if err != nil {
			return nil, err
		}
		p.HID = db.CounterAdd(w.cfg.historySlot(), 1) + 1
		return w.buildPayment(p), nil
	})
	reg.Register(TxnOrderStatus, func(d []byte, _ *core.DB) (*core.Txn, error) {
		p, err := decodeOSParams(d)
		if err != nil {
			return nil, err
		}
		return w.buildOrderStatus(p), nil
	})
	reg.Register(TxnDelivery, func(d []byte, _ *core.DB) (*core.Txn, error) {
		p, err := decodeDlvParams(d)
		if err != nil {
			return nil, err
		}
		return w.buildDelivery(p), nil
	})
	reg.Register(TxnStockLevel, func(d []byte, _ *core.DB) (*core.Txn, error) {
		p, err := decodeSLParams(d)
		if err != nil {
			return nil, err
		}
		return w.buildStockLevel(p), nil
	})
	reg.Register(TxnLoad, func(d []byte, _ *core.DB) (*core.Txn, error) {
		r, err := decodeLoadRec(d)
		if err != nil {
			return nil, err
		}
		return r.txn(), nil
	})
}
