package tpcc

import (
	"math/rand"
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
)

func testWorkload(t *testing.T, warehouses int) *Workload {
	t.Helper()
	w, err := New(Config{Warehouses: warehouses, Districts: 2, CustomersPerDistrict: 20, Items: 50})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func openDB(t *testing.T, w *Workload) (*core.DB, *nvm.Device, core.Options) {
	t.Helper()
	reg := core.NewRegistry()
	w.Register(reg)
	layout := pmem.Layout{
		Cores: 2, RowSize: 192, RowsPerCore: 1 << 14, ValueSize: 256,
		ValuesPerCore: 1 << 12, RingCap: 1 << 16, LogBytes: 1 << 20,
		Counters: w.Config().RequiredCounters(),
	}
	if err := layout.Finalize(); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		Cores: 2, Layout: layout, CacheEnabled: true, CacheK: 8,
		MinorGCEnabled: true, RevertOnRecovery: true, Registry: reg,
	}
	dev := nvm.New(layout.TotalBytes())
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, opts
}

func load(t *testing.T, db *core.DB, w *Workload) {
	t.Helper()
	for _, b := range w.LoadBatches(500) {
		if _, err := db.RunEpoch(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for i, c := range []Config{
		{Warehouses: 0, Districts: 10, CustomersPerDistrict: 100, Items: 100},
		{Warehouses: 1, Districts: 10, CustomersPerDistrict: 100, Items: 5},
		{Warehouses: 1, Districts: 10, CustomersPerDistrict: 1_000_000, Items: 100},
	} {
		if _, err := New(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if DefaultConfig(8).Warehouses != 8 {
		t.Error("DefaultConfig")
	}
}

func TestKeyPackingDisjoint(t *testing.T) {
	// Key spaces of different tuple kinds must not collide within a table
	// and must round-trip district/order identities.
	seen := map[uint64]bool{}
	for wh := 1; wh <= 3; wh++ {
		for d := 1; d <= 10; d++ {
			k := dKey(wh, d)
			if seen[k] {
				t.Fatalf("district key collision %d", k)
			}
			seen[k] = true
		}
	}
	if oKey(1, 1, 5) == oKey(1, 2, 5) {
		t.Fatal("order keys collide across districts")
	}
	if olKey(1, 1, 5, 1) == olKey(1, 1, 5, 2) {
		t.Fatal("orderline keys collide")
	}
	if olKey(1, 1, 5, 15) >= olKey(1, 1, 6, 1) {
		t.Fatal("orderline keys overflow into next order")
	}
}

func TestLoadCounts(t *testing.T) {
	w := testWorkload(t, 2)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	cfg := w.Config()
	want := cfg.Items + // items
		cfg.Warehouses*(1+cfg.Items) + // warehouses + stock
		cfg.Warehouses*cfg.Districts*2 + // districts + distdeliv
		cfg.Warehouses*cfg.Districts*cfg.CustomersPerDistrict*2 // customers + custlast
	if db.RowCount() != want {
		t.Fatalf("RowCount = %d, want %d", db.RowCount(), want)
	}
}

func TestMixPercentagesSum(t *testing.T) {
	total := 0
	for _, v := range Mix() {
		total += v
	}
	if total != 100 {
		t.Fatalf("mix sums to %d", total)
	}
}

func runEpochs(t *testing.T, db *core.DB, w *Workload, rng *rand.Rand, epochs, perEpoch int) (committed, aborted int) {
	t.Helper()
	for e := 0; e < epochs; e++ {
		res, err := db.RunEpoch(w.GenBatch(rng, db, perEpoch))
		if err != nil {
			t.Fatal(err)
		}
		committed += res.Committed
		aborted += res.Aborted
	}
	return
}

func TestRunMixedWorkload(t *testing.T) {
	w := testWorkload(t, 2)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(1))
	committed, aborted := runEpochs(t, db, w, rng, 5, 100)
	if committed < 400 {
		t.Fatalf("committed = %d", committed)
	}
	// ~1% of NewOrders (45%) abort.
	if aborted > committed/5 {
		t.Fatalf("aborted = %d of %d", aborted, committed)
	}
}

// checkConsistency verifies TPC-C invariants adapted to this reproduction:
//   - every order id at or above the district's delivery pointer and issued
//     has a NewOrder row iff the order exists and is undelivered;
//   - delivered orders have a carrier and no NewOrder row;
//   - warehouse ytd equals the sum of its districts' ytd.
func checkConsistency(t *testing.T, db *core.DB, w *Workload) {
	t.Helper()
	cfg := w.Config()
	for wh := 1; wh <= cfg.Warehouses; wh++ {
		var distSum int64
		for d := 1; d <= cfg.Districts; d++ {
			dv, ok := db.Get(TableDistrict, dKey(wh, d))
			if !ok {
				t.Fatalf("district %d/%d missing", wh, d)
			}
			distSum += decInt64(dv, 0)

			nv, ok := db.Get(TableDistDeliv, dKey(wh, d))
			if !ok {
				t.Fatalf("distdeliv %d/%d missing", wh, d)
			}
			nextDeliv := uint64(decInt64(nv, 0))
			last := db.CounterGet(cfg.districtSlot(wh, d))
			for o := uint64(1); o <= last; o++ {
				_, orderExists := db.Get(TableOrder, oKey(wh, d, o))
				_, noExists := db.Get(TableNewOrder, oKey(wh, d, o))
				if !orderExists {
					if noExists {
						t.Fatalf("w%d d%d o%d: NewOrder without Order", wh, d, o)
					}
					continue
				}
				ov, _ := db.Get(TableOrder, oKey(wh, d, o))
				carrier := decInt64(ov, 2)
				if o < nextDeliv {
					if noExists {
						t.Fatalf("w%d d%d o%d: delivered order still has NewOrder row", wh, d, o)
					}
					if carrier == 0 {
						t.Fatalf("w%d d%d o%d: delivered order has no carrier", wh, d, o)
					}
				} else {
					if !noExists {
						t.Fatalf("w%d d%d o%d: undelivered order lost its NewOrder row", wh, d, o)
					}
					if carrier != 0 {
						t.Fatalf("w%d d%d o%d: undelivered order has carrier %d", wh, d, o, carrier)
					}
				}
			}
		}
		wv, ok := db.Get(TableWarehouse, uint64(wh))
		if !ok {
			t.Fatalf("warehouse %d missing", wh)
		}
		if got := decInt64(wv, 0); got != distSum {
			t.Fatalf("warehouse %d ytd %d != district sum %d", wh, got, distSum)
		}
	}
}

func TestConsistencyAfterManyEpochs(t *testing.T) {
	w := testWorkload(t, 2)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(2))
	runEpochs(t, db, w, rng, 8, 80)
	checkConsistency(t, db, w)
}

func TestSingleWarehouseHighContention(t *testing.T) {
	w := testWorkload(t, 1)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(3))
	runEpochs(t, db, w, rng, 5, 100)
	checkConsistency(t, db, w)
}

func TestOrderLinesMatchOrders(t *testing.T) {
	w := testWorkload(t, 1)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(4))
	runEpochs(t, db, w, rng, 4, 60)
	cfg := w.Config()
	for d := 1; d <= cfg.Districts; d++ {
		last := db.CounterGet(cfg.districtSlot(1, d))
		for o := uint64(1); o <= last; o++ {
			ov, ok := db.Get(TableOrder, oKey(1, d, o))
			if !ok {
				continue
			}
			olCnt := int(decInt64(ov, 1))
			if olCnt < 5 || olCnt > 15 {
				t.Fatalf("order %d has %d lines", o, olCnt)
			}
			for i := 1; i <= olCnt; i++ {
				if _, ok := db.Get(TableOrderLine, olKey(1, d, o, i)); !ok {
					t.Fatalf("order %d missing line %d", o, i)
				}
			}
			// No extra lines.
			if _, ok := db.Get(TableOrderLine, olKey(1, d, o, olCnt+1)); ok {
				t.Fatalf("order %d has extra line", o)
			}
		}
	}
}

func TestCrashRecoveryWithRevert(t *testing.T) {
	// The TPC-C recovery path: crash mid-epoch, recover with
	// RevertOnRecovery, verify consistency holds afterward.
	for seed := int64(1); seed <= 6; seed++ {
		w := testWorkload(t, 1)
		db, dev, opts := openDB(t, w)
		load(t, db, w)
		rng := rand.New(rand.NewSource(seed))
		runEpochs(t, db, w, rng, 2, 60)

		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					fired = true
				}
			}()
			batch := w.GenBatch(rng, db, 60)
			dev.SetFailAfter(int64(20 + seed*13))
			db.RunEpoch(batch)
		}()
		if !fired {
			t.Fatalf("seed %d: fail-point never fired", seed)
		}
		dev.Crash(nvm.CrashStrict, seed)
		db2, rep, err := core.Recover(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		_ = rep
		checkConsistency(t, db2, w)
		// And the database keeps working.
		rng2 := rand.New(rand.NewSource(seed + 100))
		w2 := testWorkload(t, 1)
		for e := 0; e < 2; e++ {
			if _, err := db2.RunEpoch(w2.GenBatch(rng2, db2, 40)); err != nil {
				t.Fatal(err)
			}
		}
		checkConsistency(t, db2, w2)
	}
}

func TestDeliveryAdvancesPastBurnedIDs(t *testing.T) {
	// Force aborted NewOrders (burned order ids) and verify Delivery does
	// not stall on them.
	w := testWorkload(t, 1)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(6))

	// Generate NewOrders, marking every third one aborted.
	w.snapshotCounters(db)
	var batch []*core.Txn
	for i := 0; i < 12; i++ {
		txn := w.genNewOrder(rng, db)
		batch = append(batch, txn)
	}
	w.counterSnap = nil
	if _, err := db.RunEpoch(batch); err != nil {
		t.Fatal(err)
	}
	// Deliver everything over several rounds.
	for round := 0; round < 30; round++ {
		w.snapshotCounters(db)
		d := w.genDelivery(rng, db)
		w.counterSnap = nil
		if _, err := db.RunEpoch([]*core.Txn{d}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := w.Config()
	for d := 1; d <= cfg.Districts; d++ {
		nv, _ := db.Get(TableDistDeliv, dKey(1, d))
		next := uint64(decInt64(nv, 0))
		last := db.CounterGet(cfg.districtSlot(1, d))
		if next != last+1 {
			t.Fatalf("district %d delivery pointer %d, want %d (stalled)", d, next, last+1)
		}
	}
	checkConsistency(t, db, w)
}

func TestHistoryRowsInserted(t *testing.T) {
	w := testWorkload(t, 1)
	db, _, _ := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(7))
	runEpochs(t, db, w, rng, 3, 80)
	hCount := db.CounterGet(w.Config().historySlot())
	if hCount == 0 {
		t.Fatal("no payments ran")
	}
	for h := uint64(1); h <= hCount; h++ {
		if _, ok := db.Get(TableHistory, h); !ok {
			t.Fatalf("history row %d missing", h)
		}
	}
}
