// Package ycsb implements Caracal's YCSB variant (paper §6.2.1): each
// transaction groups 10 read-modify-write operations to unique keys; a
// configurable fraction of the operations target a small hot set of 256
// rows to control contention.
package ycsb

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"nvcaracal/internal/core"
	"nvcaracal/internal/zen"
)

// Table is the YCSB table id.
const Table = uint32(1)

// TxnType is the logged transaction type id.
const TxnType = uint16(0x5943) // "YC"

// OpsPerTxn is the number of read-modify-write operations per transaction.
const OpsPerTxn = 10

// Config describes a YCSB instance (Table 1 of the paper).
type Config struct {
	// Rows is the dataset size (paper: 16M default, 64M large; scale down
	// for simulation).
	Rows int
	// ValueSize is the row payload size (paper: 1000, or 64 for smallrow).
	ValueSize int
	// UpdateBytes is how much of the row each write rewrites (paper: first
	// 100 bytes, or the whole row for smallrow).
	UpdateBytes int
	// HotRows is the size of the hot set (paper: 256).
	HotRows int
	// HotOps is how many of the 10 ops touch hot rows: 0 = low, 4 = medium,
	// 7 = high contention.
	HotOps int
}

// DefaultConfig returns the paper's configuration scaled to the given row
// count.
func DefaultConfig(rows int) Config {
	return Config{Rows: rows, ValueSize: 1000, UpdateBytes: 100, HotRows: 256, HotOps: 0}
}

// SmallRowConfig returns the YCSB-smallrow variant.
func SmallRowConfig(rows int) Config {
	return Config{Rows: rows, ValueSize: 64, UpdateBytes: 64, HotRows: 256, HotOps: 0}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rows <= c.HotRows+OpsPerTxn {
		return fmt.Errorf("ycsb: %d rows too few for hot set %d", c.Rows, c.HotRows)
	}
	if c.UpdateBytes > c.ValueSize {
		return fmt.Errorf("ycsb: update bytes %d > value size %d", c.UpdateBytes, c.ValueSize)
	}
	if c.HotOps < 0 || c.HotOps > OpsPerTxn {
		return fmt.Errorf("ycsb: hot ops %d out of range", c.HotOps)
	}
	return nil
}

// Workload generates YCSB transactions.
type Workload struct {
	cfg Config
}

// New creates a workload; the config must validate.
func New(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg}, nil
}

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// initialValue builds row i's starting payload.
func (w *Workload) initialValue(key uint64) []byte {
	v := make([]byte, w.cfg.ValueSize)
	for i := 0; i+8 <= len(v); i += 8 {
		binary.LittleEndian.PutUint64(v[i:], key^uint64(i))
	}
	return v
}

// LoadBatches returns the insert batches that populate the table.
func (w *Workload) LoadBatches(batchSize int) [][]*core.Txn {
	var batches [][]*core.Txn
	var cur []*core.Txn
	for i := 0; i < w.cfg.Rows; i++ {
		key := uint64(i)
		val := w.initialValue(key)
		cur = append(cur, &core.Txn{
			TypeID: TxnType + 1, // loader type; never logged for replay across runs
			Input:  binary.LittleEndian.AppendUint64(nil, key),
			Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpInsert}},
			Exec: func(ctx *core.Ctx) {
				ctx.Insert(Table, key, val)
			},
		})
		if len(cur) == batchSize {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// LoadZen populates a Zen instance with the same dataset.
func (w *Workload) LoadZen(db *zen.DB) error {
	for i := 0; i < w.cfg.Rows; i++ {
		tx := db.NewTxn()
		tx.Write(Table, uint64(i), w.initialValue(uint64(i)))
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// pickKeys draws OpsPerTxn distinct keys: HotOps from the hot set and the
// rest uniformly from the cold range.
func (w *Workload) pickKeys(rng *rand.Rand) [OpsPerTxn]uint64 {
	var keys [OpsPerTxn]uint64
	used := map[uint64]bool{}
	for i := 0; i < OpsPerTxn; i++ {
		for {
			var k uint64
			if i < w.cfg.HotOps {
				k = uint64(rng.Intn(w.cfg.HotRows))
			} else {
				k = uint64(w.cfg.HotRows + rng.Intn(w.cfg.Rows-w.cfg.HotRows))
			}
			if !used[k] {
				used[k] = true
				keys[i] = k
				break
			}
		}
	}
	return keys
}

// encodeInput serializes a transaction's keys plus its write seed.
func encodeInput(keys [OpsPerTxn]uint64, seed uint64) []byte {
	b := make([]byte, 0, 8*(OpsPerTxn+1))
	for _, k := range keys {
		b = binary.LittleEndian.AppendUint64(b, k)
	}
	return binary.LittleEndian.AppendUint64(b, seed)
}

func decodeInput(d []byte) (keys [OpsPerTxn]uint64, seed uint64, err error) {
	if len(d) != 8*(OpsPerTxn+1) {
		return keys, 0, fmt.Errorf("ycsb: bad input length %d", len(d))
	}
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(d[i*8:])
	}
	return keys, binary.LittleEndian.Uint64(d[OpsPerTxn*8:]), nil
}

// buildTxn constructs the deterministic transaction for the given params.
func (w *Workload) buildTxn(keys [OpsPerTxn]uint64, seed uint64) *core.Txn {
	ops := make([]core.Op, OpsPerTxn)
	for i, k := range keys {
		ops[i] = core.Op{Table: Table, Key: k, Kind: core.OpUpdate}
	}
	upd := w.cfg.UpdateBytes
	return &core.Txn{
		TypeID: TxnType,
		Input:  encodeInput(keys, seed),
		Ops:    ops,
		Exec: func(ctx *core.Ctx) {
			for i, k := range keys {
				old, ok := ctx.Read(Table, k)
				if !ok {
					panic(fmt.Sprintf("ycsb: row %d missing", k))
				}
				buf := make([]byte, len(old))
				copy(buf, old)
				patch := seed + uint64(i)
				for j := 0; j+8 <= upd; j += 8 {
					binary.LittleEndian.PutUint64(buf[j:], patch^uint64(j))
				}
				ctx.Write(Table, k, buf)
			}
		},
	}
}

// Gen produces one transaction.
func (w *Workload) Gen(rng *rand.Rand) *core.Txn {
	return w.buildTxn(w.pickKeys(rng), rng.Uint64())
}

// GenBatch produces an epoch's worth of transactions.
func (w *Workload) GenBatch(rng *rand.Rand, n int) []*core.Txn {
	batch := make([]*core.Txn, n)
	for i := range batch {
		batch[i] = w.Gen(rng)
	}
	return batch
}

// Register installs the replay decoders (including the loader's, so a
// crash during population also recovers).
func (w *Workload) Register(reg *core.Registry) {
	reg.Register(TxnType, func(d []byte, _ *core.DB) (*core.Txn, error) {
		keys, seed, err := decodeInput(d)
		if err != nil {
			return nil, err
		}
		return w.buildTxn(keys, seed), nil
	})
	reg.Register(TxnType+1, func(d []byte, _ *core.DB) (*core.Txn, error) {
		if len(d) != 8 {
			return nil, fmt.Errorf("ycsb: bad loader input length %d", len(d))
		}
		key := binary.LittleEndian.Uint64(d)
		val := w.initialValue(key)
		return &core.Txn{
			TypeID: TxnType + 1,
			Input:  d,
			Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpInsert}},
			Exec: func(ctx *core.Ctx) {
				ctx.Insert(Table, key, val)
			},
		}, nil
	})
}

// RunZen executes one equivalent transaction against a Zen instance.
func (w *Workload) RunZen(db *zen.DB, rng *rand.Rand) error {
	keys := w.pickKeys(rng)
	seed := rng.Uint64()
	tx := db.NewTxn()
	for i, k := range keys {
		old, ok := tx.Read(Table, k)
		if !ok {
			return fmt.Errorf("ycsb: zen row %d missing", k)
		}
		buf := make([]byte, len(old))
		copy(buf, old)
		patch := seed + uint64(i)
		for j := 0; j+8 <= w.cfg.UpdateBytes; j += 8 {
			binary.LittleEndian.PutUint64(buf[j:], patch^uint64(j))
		}
		tx.Write(Table, k, buf)
	}
	return tx.Commit()
}
