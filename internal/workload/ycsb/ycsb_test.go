package ycsb

import (
	"math/rand"
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/zen"
)

func testConfig() Config {
	return Config{Rows: 500, ValueSize: 120, UpdateBytes: 100, HotRows: 16, HotOps: 4}
}

func openDB(t *testing.T, w *Workload) *core.DB {
	t.Helper()
	reg := core.NewRegistry()
	w.Register(reg)
	layout := pmem.Layout{
		Cores: 2, RowSize: 256, RowsPerCore: 2048, ValueSize: 1024,
		ValuesPerCore: 2048, RingCap: 8192, LogBytes: 1 << 20, Counters: 4,
	}
	if err := layout.Finalize(); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		Cores: 2, Layout: layout, CacheEnabled: true, CacheK: 8,
		MinorGCEnabled: true, Registry: reg,
	}
	dev := nvm.New(layout.TotalBytes())
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func load(t *testing.T, db *core.DB, w *Workload) {
	t.Helper()
	for _, b := range w.LoadBatches(200) {
		if _, err := db.RunEpoch(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Rows: 10, ValueSize: 100, UpdateBytes: 50, HotRows: 256, HotOps: 0},
		{Rows: 1000, ValueSize: 50, UpdateBytes: 100, HotRows: 16, HotOps: 0},
		{Rows: 1000, ValueSize: 100, UpdateBytes: 50, HotRows: 16, HotOps: 11},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
	if _, err := New(DefaultConfig(10_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(SmallRowConfig(10_000)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPopulatesAllRows(t *testing.T) {
	w, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	db := openDB(t, w)
	load(t, db, w)
	if db.RowCount() != w.Config().Rows {
		t.Fatalf("RowCount = %d, want %d", db.RowCount(), w.Config().Rows)
	}
	v, ok := db.Get(Table, 0)
	if !ok || len(v) != w.Config().ValueSize {
		t.Fatalf("row 0: %v,%v", len(v), ok)
	}
}

func TestTxnKeysDistinctAndContended(t *testing.T) {
	w, _ := New(testConfig())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		keys := w.pickKeys(rng)
		seen := map[uint64]bool{}
		hot := 0
		for _, k := range keys {
			if seen[k] {
				t.Fatal("duplicate key in txn")
			}
			seen[k] = true
			if k < uint64(w.cfg.HotRows) {
				hot++
			}
		}
		if hot != w.cfg.HotOps {
			t.Fatalf("hot ops = %d, want %d", hot, w.cfg.HotOps)
		}
	}
}

func TestRunBatches(t *testing.T) {
	w, _ := New(testConfig())
	db := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(2))
	for e := 0; e < 3; e++ {
		res, err := db.RunEpoch(w.GenBatch(rng, 50))
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed != 50 {
			t.Fatalf("committed = %d", res.Committed)
		}
	}
	// Updated rows must carry the patch pattern in their first 8 bytes.
	if v, ok := db.Get(Table, 0); !ok || len(v) != w.cfg.ValueSize {
		t.Fatalf("row 0 after updates: %d,%v", len(v), ok)
	}
}

func TestReplayDeterminism(t *testing.T) {
	// The same logged inputs must produce identical state on replay.
	w, _ := New(testConfig())
	db := openDB(t, w)
	load(t, db, w)
	rng := rand.New(rand.NewSource(3))
	if _, err := db.RunEpoch(w.GenBatch(rng, 40)); err != nil {
		t.Fatal(err)
	}
	// Snapshot state, then replay the same epoch on a second instance via
	// the decoder path.
	reg := core.NewRegistry()
	w.Register(reg)
	rng2 := rand.New(rand.NewSource(3))
	db2 := openDB(t, w)
	load(t, db2, w)
	batch2raw := w.GenBatch(rng2, 40)
	// Round-trip through encode/decode to prove the decoders are faithful.
	batch2 := make([]*core.Txn, len(batch2raw))
	for i, txn := range batch2raw {
		dec, err := reg.Decode(txn.TypeID, txn.Input, db2)
		if err != nil {
			t.Fatal(err)
		}
		batch2[i] = dec
	}
	if _, err := db2.RunEpoch(batch2); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < w.cfg.Rows; k++ {
		v1, _ := db.Get(Table, uint64(k))
		v2, _ := db2.Get(Table, uint64(k))
		if string(v1) != string(v2) {
			t.Fatalf("row %d diverged after decode round-trip", k)
		}
	}
}

func TestZenEquivalentLoad(t *testing.T) {
	w, _ := New(testConfig())
	cfg := zen.Config{TupleSize: 256, Capacity: 4096, CacheEntries: 64}
	dev := nvm.New(cfg.DeviceSize())
	zdb, err := zen.Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadZen(zdb); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		if err := w.RunZen(zdb, rng); err != nil {
			t.Fatal(err)
		}
	}
	if got := zdb.Stats().Commits; got != 100+int64(w.cfg.Rows) {
		t.Fatalf("commits = %d", got)
	}
}
