package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"nvcaracal/internal/nvm"
)

func newLog(t *testing.T, size int64) (*Log, *nvm.Device) {
	t.Helper()
	dev := nvm.New(size)
	return New(dev, 0, size), dev
}

func TestWriteReadRoundTrip(t *testing.T) {
	l, _ := newLog(t, 1<<16)
	recs := []Record{
		{Type: 1, Data: []byte("alpha")},
		{Type: 2, Data: []byte{}},
		{Type: 300, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	if err := l.WriteEpoch(5, recs); err != nil {
		t.Fatal(err)
	}
	got, ok := l.ReadEpoch(5)
	if !ok {
		t.Fatal("ReadEpoch failed")
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Type != recs[i].Type || !bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadWrongEpoch(t *testing.T) {
	l, _ := newLog(t, 1<<16)
	l.WriteEpoch(5, []Record{{Type: 1, Data: []byte("x")}})
	if _, ok := l.ReadEpoch(6); ok {
		t.Fatal("read of wrong epoch succeeded")
	}
}

func TestLogSurvivesCrash(t *testing.T) {
	l, dev := newLog(t, 1<<16)
	recs := []Record{{Type: 9, Data: []byte("persist me")}}
	if err := l.WriteEpoch(3, recs); err != nil {
		t.Fatal(err)
	}
	dev.Crash(nvm.CrashStrict, 1)
	got, ok := l.ReadEpoch(3)
	if !ok || len(got) != 1 || !bytes.Equal(got[0].Data, []byte("persist me")) {
		t.Fatal("log lost after crash despite fence")
	}
}

func TestTornLogRejected(t *testing.T) {
	// Write epoch 1 (durable), then epoch 2 without a fence taking effect
	// (crash strict before the implicit fence completes cannot be forced
	// through the public API, so simulate a torn header by corrupting it).
	l, dev := newLog(t, 1<<16)
	l.WriteEpoch(1, []Record{{Type: 1, Data: []byte("old")}})
	l.WriteEpoch(2, []Record{{Type: 1, Data: []byte("new")}})
	// Corrupt one payload byte: checksum must catch it.
	dev.WriteAt([]byte{0xFF}, headerSize+3)
	if _, ok := l.ReadEpoch(2); ok {
		t.Fatal("corrupted log accepted")
	}
}

func TestLogFull(t *testing.T) {
	l, _ := newLog(t, 256)
	err := l.WriteEpoch(1, []Record{{Type: 1, Data: make([]byte, 1000)}})
	if !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestOverwritePreviousEpoch(t *testing.T) {
	l, _ := newLog(t, 1<<16)
	l.WriteEpoch(1, []Record{{Type: 1, Data: []byte("one")}})
	l.WriteEpoch(2, []Record{{Type: 2, Data: []byte("two!")}})
	// Consecutive epochs occupy different parity slots, so epoch 1 stays
	// readable while epoch 2 appends — the pipeline may still be committing
	// epoch 1 at that point.
	if got, ok := l.ReadEpoch(1); !ok || got[0].Type != 1 {
		t.Fatal("previous-parity epoch unreadable")
	}
	// Epoch 3 reuses epoch 1's slot: only then is epoch 1 gone.
	l.WriteEpoch(3, []Record{{Type: 3, Data: []byte("three")}})
	if _, ok := l.ReadEpoch(1); ok {
		t.Fatal("stale epoch still readable after slot reuse")
	}
	if got, ok := l.ReadEpoch(2); !ok || got[0].Type != 2 {
		t.Fatal("previous epoch unreadable")
	}
	if got, ok := l.ReadEpoch(3); !ok || got[0].Type != 3 {
		t.Fatal("current epoch unreadable")
	}
}

func TestEmptyEpoch(t *testing.T) {
	l, _ := newLog(t, 1<<16)
	if err := l.WriteEpoch(4, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := l.ReadEpoch(4)
	if !ok || len(got) != 0 {
		t.Fatalf("empty epoch: ok=%v len=%d", ok, len(got))
	}
}

func TestLastPayloadBytes(t *testing.T) {
	l, _ := newLog(t, 1<<16)
	l.WriteEpoch(1, []Record{{Type: 1, Data: make([]byte, 10)}})
	if got := l.LastPayloadBytes(); got != 16 { // 2+4+10
		t.Fatalf("LastPayloadBytes = %d, want 16", got)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, epoch uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, _ := newLog(t, 1<<18)
		n := rng.Intn(50)
		recs := make([]Record, n)
		for i := range recs {
			data := make([]byte, rng.Intn(200))
			rng.Read(data)
			recs[i] = Record{Type: uint16(rng.Intn(1 << 16)), Data: data}
		}
		if err := l.WriteEpoch(epoch, recs); err != nil {
			return false
		}
		got, ok := l.ReadEpoch(epoch)
		if !ok || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i].Type != recs[i].Type || !bytes.Equal(got[i].Data, recs[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
