// Package wal implements the epoch-granularity input log of the
// deterministic database.
//
// A deterministic database does not log transaction outputs: it logs the
// *inputs* and predetermined serial order of every transaction in an epoch,
// persists them before the execution phase begins, and replays them
// deterministically after a crash. Only the in-flight epoch's log is ever
// needed (earlier epochs are covered by the checkpoint), so the log region
// holds just two epoch slots, selected by epoch parity and each rewritten
// from its base at sequential NVMM bandwidth. Two slots instead of one is
// what lets an epoch pipeline overlap: epoch N+1 serializes its inputs into
// slot (N+1)%2 while epoch N's checkpoint — whose replay inputs live in
// slot N%2 — is still being committed in the background.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Record is one logged transaction input: a workload-registered type id and
// the serialized parameters sufficient to reconstruct the transaction.
type Record struct {
	Type uint16
	Data []byte
}

// ErrLogFull is returned when an epoch's inputs exceed the log region.
var ErrLogFull = errors.New("wal: epoch inputs exceed log region")

// header layout (one line):
//
//	0  epoch     uint64
//	8  count     uint64
//	16 payload   uint64 (bytes)
//	24 checksum  uint64 (FNV-1a over payload bytes, seeded with epoch+count)
const headerSize = int64(nvm.LineSize)

// Log manages the input-log region of the device.
type Log struct {
	dev  *nvm.Device
	off  int64
	size int64

	lastPayload int64 // payload bytes of the most recent WriteEpoch
	buf         []byte
}

// New returns a log over [off, off+size) of the device. The region is split
// into two line-aligned epoch-parity slots.
func New(dev *nvm.Device, off, size int64) *Log {
	l := &Log{dev: dev, off: off, size: size}
	if l.slotCap() <= headerSize {
		panic("wal: log region too small")
	}
	return l
}

// slotCap is the byte capacity of one epoch-parity slot (half the region,
// aligned down to a line so both slots start line-aligned).
func (l *Log) slotCap() int64 { return l.size / 2 / headerSize * headerSize }

// slotOff returns the base offset of the slot holding the given epoch.
func (l *Log) slotOff(epoch uint64) int64 { return l.off + int64(epoch%2)*l.slotCap() }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(seed uint64, data []byte) uint64 {
	h := uint64(fnvOffset) ^ seed
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// WriteEpoch serializes the records, writes them to the log region, and
// persists everything with a single fence. On return the epoch's inputs are
// durable and the execution phase may make writes visible immediately.
func (l *Log) WriteEpoch(epoch uint64, recs []Record) error {
	if err := l.WriteEpochNoFence(epoch, recs); err != nil {
		return err
	}
	l.dev.Tag(obs.CauseWALAppend).Fence()
	return nil
}

// WriteEpochNoFence is WriteEpoch without the trailing durability fence: it
// serializes, writes, and flushes the epoch's inputs but leaves ordering to
// the caller. An engine coalescing the log append with the rest of its
// initialization phase under one fence uses this; the inputs are NOT
// guaranteed durable until the caller fences.
func (l *Log) WriteEpochNoFence(epoch uint64, recs []Record) error {
	need := 0
	for _, r := range recs {
		need += 2 + 4 + len(r.Data)
	}
	if int64(need) > l.slotCap()-headerSize {
		return fmt.Errorf("%w: need %d, have %d", ErrLogFull, need, l.slotCap()-headerSize)
	}
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	buf := l.buf[:0]
	for _, r := range recs {
		buf = binary.LittleEndian.AppendUint16(buf, r.Type)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Data)))
		buf = append(buf, r.Data...)
	}
	l.buf = buf

	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], epoch)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(buf)))
	binary.LittleEndian.PutUint64(hdr[24:], fnv1a(epoch*31+uint64(len(recs)), buf))

	// Payload then header in one vectored call (payload-first order means a
	// torn append never has a valid header over garbage payload; the
	// checksum backstops the rest). The durability fence is the caller's.
	base := l.slotOff(epoch)
	td := l.dev.Tag(obs.CauseWALAppend)
	td.WriteFields([]nvm.FieldWrite{
		{Off: base + headerSize, Data: buf},
		{Off: base, Data: hdr[:]},
	}, []nvm.Range{{Off: base, N: headerSize + int64(len(buf))}})
	l.lastPayload = int64(len(buf))
	return nil
}

// ReadEpoch returns the records logged for the given epoch, or ok=false if
// the log does not hold a complete, checksum-valid image of that epoch
// (e.g. the crash happened before the log fence).
func (l *Log) ReadEpoch(epoch uint64) ([]Record, bool) {
	// The log is only read back after a crash: recovery traffic.
	base := l.slotOff(epoch)
	rd := l.dev.Tag(obs.CauseRecovery)
	var hdr [32]byte
	rd.ReadAt(hdr[:], base)
	gotEpoch := binary.LittleEndian.Uint64(hdr[0:])
	count := binary.LittleEndian.Uint64(hdr[8:])
	payload := binary.LittleEndian.Uint64(hdr[16:])
	sum := binary.LittleEndian.Uint64(hdr[24:])
	if gotEpoch != epoch {
		return nil, false
	}
	if int64(payload) > l.slotCap()-headerSize {
		return nil, false
	}
	data := make([]byte, payload)
	rd.ReadAt(data, base+headerSize)
	if fnv1a(epoch*31+count, data) != sum {
		return nil, false
	}
	recs := make([]Record, 0, count)
	pos := 0
	for i := uint64(0); i < count; i++ {
		if pos+6 > len(data) {
			return nil, false
		}
		typ := binary.LittleEndian.Uint16(data[pos:])
		n := int(binary.LittleEndian.Uint32(data[pos+2:]))
		pos += 6
		if pos+n > len(data) {
			return nil, false
		}
		recs = append(recs, Record{Type: typ, Data: data[pos : pos+n : pos+n]})
		pos += n
	}
	if pos != len(data) {
		return nil, false
	}
	return recs, true
}

// LastPayloadBytes reports the payload size of the most recent WriteEpoch,
// for logging-overhead accounting.
func (l *Log) LastPayloadBytes() int64 { return l.lastPayload }
