package submit_test

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nvcaracal"
	"nvcaracal/internal/obs"
)

// TestSubmitTxnTraceStress drives concurrent submitters with lifecycle
// tracing on while a reader drains the serving surface the whole time; the
// race detector checks the publish/drain paths, and the deterministic
// 1-in-N counter pins the sampled and published counts exactly.
func TestSubmitTxnTraceStress(t *testing.T) {
	const (
		submitters  = 4
		perWorker   = 200
		sampleEvery = 4
	)
	cfg := testConfig()
	o := nvcaracal.NewObs(nvcaracal.ObsConfig{Hists: true, TxnTrace: true, TxnSampleEvery: sampleEvery})
	cfg.Obs = o
	db, _, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 32,
		MaxDelay: 100 * time.Microsecond,
	})

	var submitting atomic.Bool
	submitting.Store(true)
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for submitting.Load() {
			j := o.TxnTrace().JSON()
			if j.Published < uint64(len(j.Spans)) {
				t.Errorf("served %d spans with only %d published", len(j.Spans), j.Published)
				return
			}
			_ = obs.Breakdown(o.TxnTrace().Spans())
			_ = o.Flight().Events(0)
		}
	}()

	var wg sync.WaitGroup
	futs := make([][]*nvcaracal.Future, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			futs[w] = make([]*nvcaracal.Future, perWorker)
			for i := 0; i < perWorker; i++ {
				k := key(w, i)
				f, err := s.Submit(mkInsert(k, binary.LittleEndian.AppendUint64(nil, k)))
				if err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				futs[w][i] = f
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db.WaitDurable()
	submitting.Store(false)
	readers.Wait()

	for w := range futs {
		for i, f := range futs[w] {
			if f == nil {
				continue // submit error already reported
			}
			if r := f.Wait(); r.Err != nil || !r.Committed {
				t.Fatalf("worker %d txn %d: err=%v committed=%v", w, i, r.Err, r.Committed)
			}
		}
	}

	tt := o.TxnTrace()
	const total = submitters * perWorker
	if got := tt.SampledCount(); got != total/sampleEvery {
		t.Fatalf("sampled %d of %d at 1-in-%d, want %d", got, total, sampleEvery, total/sampleEvery)
	}
	if got := tt.PublishedCount(); got != tt.SampledCount() {
		t.Fatalf("published %d != sampled %d: spans lost between seal and durable", got, tt.SampledCount())
	}

	// Submitted spans ran the full queue: every phase of the decomposition
	// must be populated, including the submit-side queue time that
	// hand-batched epochs never accrue.
	spans := tt.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans retained")
	}
	for _, sp := range spans {
		if sp.SubmitNS == 0 || sp.SealNS == 0 || sp.DurableNS == 0 {
			t.Fatalf("span missing queue stamps: %+v", sp)
		}
		if sp.Total() <= 0 {
			t.Fatalf("span with non-positive total: %+v", sp)
		}
	}
	b := obs.Breakdown(spans)
	if b.Phases[obs.TxnQueue].MaxNS <= 0 {
		t.Fatalf("queued submissions accrued no queue time: %+v", b.Phases[obs.TxnQueue])
	}
	if b.Phases[obs.TxnExecute].MaxNS <= 0 {
		t.Fatalf("no execute time recorded: %+v", b.Phases[obs.TxnExecute])
	}
}
