// Package submit is the concurrent group-commit front-end of the engine.
//
// The core engine processes work one epoch at a time: RunEpoch (and
// RunEpochAria) take a hand-assembled batch and are not safe for concurrent
// calls. This package turns that single-threaded epoch loop into a serving
// layer: any number of client goroutines call Submit/SubmitAria and receive
// a Future; a batch former groups submissions into epochs, closing a batch
// when it reaches the configured size cap or a max-latency deadline; a
// runner executes the batches through the unchanged RunEpoch/RunEpochAria
// path. Futures resolve once their epoch is durable — the natural fit for
// the paper's design, which amortizes NVMM persistence (log write, fence,
// epoch record) over the whole batch.
//
// The former and runner are pipelined: while epoch N executes, the former
// accumulates epoch N+1, so submission latency hides behind epoch
// execution. Caracal-style and Aria transactions may be submitted
// concurrently; since an epoch holds one flavour, the former splits batches
// at flavour boundaries. Aria conflict losers (AriaResult.Deferred) are
// resubmitted automatically into the next Aria batch — their futures
// resolve only when the transaction finally commits or user-aborts — and
// the batch size cap counts them, so a batch never exceeds
// core.MaxTxnsPerEpoch even with a full redo backlog.
//
// Failure semantics: if the engine fails mid-epoch (an injected device
// crash, an allocator exhaustion), the submitter stops accepting work and
// resolves every outstanding future instead of hanging. Futures of the
// failing epoch get ErrEpochFailed — their inputs may or may not have
// reached the log, so recovery may still replay them. Futures that never
// entered an epoch get ErrNeverSubmitted — they are guaranteed absent from
// the log and must be retried after recovery.
package submit

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nvcaracal/internal/core"
	"nvcaracal/internal/obs"
)

// Errors returned by the submitter.
var (
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("submit: submitter closed")
	// ErrOverloaded rejects submissions when the queue is full and the
	// overload policy is Reject.
	ErrOverloaded = errors.New("submit: submission queue full")
	// ErrEpochFailed resolves futures of the epoch that was executing when
	// the engine failed. The transactions may or may not have reached the
	// input log, so crash recovery may still replay (and commit) them.
	ErrEpochFailed = errors.New("submit: epoch failed before durability")
	// ErrNeverSubmitted resolves futures of transactions that were queued
	// but had not entered an epoch when the engine failed; they are
	// guaranteed absent from the input log.
	ErrNeverSubmitted = errors.New("submit: transaction never entered an epoch")
)

// Overload selects the backpressure behaviour when the submission queue is
// full.
type Overload int

const (
	// Block makes Submit wait for queue space (the default): client
	// goroutines absorb the backpressure.
	Block Overload = iota
	// Reject makes Submit return ErrOverloaded immediately so callers can
	// shed load themselves.
	Reject
)

// Config tunes the batch former. The zero value picks serviceable defaults.
type Config struct {
	// MaxBatch closes an epoch at this many transactions (resubmitted Aria
	// conflict losers included). Default 512; clamped to
	// core.MaxTxnsPerEpoch.
	MaxBatch int
	// MaxDelay closes a non-full batch this long after its first
	// transaction arrived, bounding commit latency under light load.
	// Default 2ms.
	MaxDelay time.Duration
	// QueueDepth bounds the submission queue between clients and the batch
	// former. Default 4*MaxBatch.
	QueueDepth int
	// Overload selects Block (default) or Reject when the queue is full.
	Overload Overload
}

func (c *Config) applyDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxBatch > core.MaxTxnsPerEpoch {
		c.MaxBatch = core.MaxTxnsPerEpoch
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
}

// Result is the final outcome of one submission.
type Result struct {
	// Epoch is the epoch that made the outcome durable (zero on error).
	Epoch uint64
	// SID is the serial id the transaction held in that epoch.
	SID uint64
	// Committed reports commit; false with a nil Err means a user-level
	// abort.
	Committed bool
	// Err is non-nil when the outcome is unknown or the transaction never
	// ran: ErrEpochFailed, ErrNeverSubmitted, or an engine error.
	Err error
}

// Future resolves to a Result once the submission's epoch is durable (or
// the submitter fails). It is safe to Wait from multiple goroutines.
type Future struct {
	done chan struct{}
	res  Result

	resolved bool // runner-goroutine only; guards double resolution
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

// Done returns a channel closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the result is available and returns it.
func (f *Future) Wait() Result {
	<-f.done
	return f.res
}

// resolve publishes the result. Only the runner goroutine resolves futures,
// so the resolved flag needs no lock.
func (f *Future) resolve(r Result) {
	if f.resolved {
		return
	}
	f.resolved = true
	f.res = r
	close(f.done)
}

// pending is one queued submission: exactly one of txn/aria is set.
type pending struct {
	txn  *core.Txn
	aria *core.AriaTxn
	fut  *Future
}

// Submitter is the concurrent group-commit front-end over one DB. Create
// with New; all methods are safe for concurrent use.
type Submitter struct {
	db  *core.DB
	cfg Config

	queue chan pending   // clients -> former (closed by Close)
	runq  chan []pending // former -> runner (cap 1: pipeline one batch ahead)
	compl chan []pending // runner -> former: epoch done, slice = Aria deferrals
	done  chan struct{}  // closed when former and runner have exited

	mu     sync.RWMutex // guards closed against racing enqueues
	closed bool

	failMu  sync.Mutex
	failErr error // first engine failure; sticky
}

// New starts a submitter over db. The caller must not call RunEpoch or
// RunEpochAria on db directly while the submitter is open, and must Close
// it to flush queued work and stop the background goroutines.
func New(db *core.DB, cfg Config) *Submitter {
	cfg.applyDefaults()
	s := &Submitter{
		db:    db,
		cfg:   cfg,
		queue: make(chan pending, cfg.QueueDepth),
		runq:  make(chan []pending, 1),
		compl: make(chan []pending, 4),
		done:  make(chan struct{}),
	}
	go s.formLoop()
	go s.runLoop()
	return s
}

// Submit queues a Caracal-style transaction (declared write set) for the
// next epoch of its flavour. The returned future resolves once the epoch is
// durable. A Txn must not be submitted again before its future resolves.
func (s *Submitter) Submit(t *core.Txn) (*Future, error) {
	if t == nil {
		return nil, errors.New("submit: nil txn")
	}
	// Lifecycle sampling starts here: a sampled transaction's span rides the
	// Txn through seal, epoch assignment, execution, and commit, giving the
	// breakdown its queue phase. Sample() is a single atomic increment for
	// the unsampled majority and a no-op when tracing is off.
	sp := s.db.Obs().TxnTrace().Sample()
	if sp != nil {
		sp.MarkSubmit()
	}
	// Attach even a nil span: that records the sampling decision, so the
	// engine's hand-batch fallback does not draw a second time.
	t.SetSpan(sp)
	f := newFuture()
	if err := s.enqueue(pending{txn: t, fut: f}); err != nil {
		t.SetSpan(nil)
		return nil, err
	}
	return f, nil
}

// SubmitAria queues an Aria-style transaction (no declared write set).
// Conflict losers are resubmitted automatically; the future resolves when
// the transaction finally commits or user-aborts.
func (s *Submitter) SubmitAria(t *core.AriaTxn) (*Future, error) {
	if t == nil {
		return nil, errors.New("submit: nil txn")
	}
	f := newFuture()
	if err := s.enqueue(pending{aria: t, fut: f}); err != nil {
		return nil, err
	}
	return f, nil
}

// Close stops accepting submissions, drains every queued transaction
// through final epochs (including Aria redo backlogs), waits for the
// background goroutines to exit, and returns the sticky engine failure, if
// any. Close is idempotent.
func (s *Submitter) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}
	<-s.done
	return s.failure()
}

// Err returns the sticky engine failure, or nil while the submitter is
// healthy.
func (s *Submitter) Err() error { return s.failure() }

func (s *Submitter) enqueue(p pending) error {
	// The read lock excludes a concurrent Close between the closed check
	// and the channel send: Close takes the write lock before closing the
	// queue, so a send that passed the check cannot hit a closed channel.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.failure(); err != nil {
		return err
	}
	if s.cfg.Overload == Reject {
		select {
		case s.queue <- p:
			return nil
		default:
			s.db.Obs().Flight().Record(obs.EvBackpressure, obs.CoordinatorCore, 0, int64(cap(s.queue)), 0)
			return ErrOverloaded
		}
	}
	select {
	case s.queue <- p:
		return nil
	default:
		// The queue is full and this client is about to block: record the
		// backpressure once, then wait.
		s.db.Obs().Flight().Record(obs.EvBackpressure, obs.CoordinatorCore, 0, int64(cap(s.queue)), 0)
	}
	select {
	case s.queue <- p:
		return nil
	case <-s.done:
		return ErrClosed
	}
}

func (s *Submitter) failure() error {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	return s.failErr
}

func (s *Submitter) setFailure(err error) {
	s.failMu.Lock()
	if s.failErr == nil {
		s.failErr = err
	}
	s.failMu.Unlock()
}

// formLoop is the batch former: it groups queued submissions into
// single-flavour batches bounded by MaxBatch and MaxDelay, folds Aria redo
// backlogs in ahead of new work, and hands batches to the runner.
func (s *Submitter) formLoop() {
	var (
		cur         []pending // forming batch, all one flavour
		curAria     bool
		redo        []pending // Aria conflict losers awaiting resubmission
		outstanding int       // batches dispatched but not yet completed
		timer       *time.Timer
		timerC      <-chan time.Time
	)

	armTimer := func() {
		if timer == nil {
			timer = time.NewTimer(s.cfg.MaxDelay)
		} else {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.MaxDelay)
		}
		timerC = timer.C
	}
	disarmTimer := func() {
		if timer != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerC = nil
	}
	complete := func(deferred []pending) {
		outstanding--
		redo = append(redo, deferred...)
	}
	// dispatch hands the forming batch to the runner. It keeps consuming
	// completions while blocked so the runner can never deadlock against a
	// full completion channel.
	dispatch := func() {
		if len(cur) == 0 {
			return
		}
		b := cur
		cur = nil
		disarmTimer()
		// The batch is sealed: stamp the sampled spans' seal time, ending
		// their queue phase. MarkSeal is a no-op on the unsampled majority.
		for i := range b {
			if b[i].txn != nil {
				b[i].txn.Span().MarkSeal()
			}
		}
		for {
			select {
			case s.runq <- b:
				outstanding++
				return
			case d := <-s.compl:
				complete(d)
			}
		}
	}
	// foldRedo moves the redo backlog into the forming batch, flushing a
	// Caracal batch out of the way first. The MaxBatch cap counts redo
	// entries like any other submission.
	foldRedo := func() {
		for len(redo) > 0 {
			if len(cur) > 0 && !curAria {
				dispatch()
			}
			curAria = true
			for len(redo) > 0 && len(cur) < s.cfg.MaxBatch {
				cur = append(cur, redo[0])
				redo[0] = pending{}
				redo = redo[1:]
			}
			if len(cur) >= s.cfg.MaxBatch {
				dispatch()
				continue
			}
			if timerC == nil {
				armTimer()
			}
			return
		}
	}

	for {
		foldRedo()
		select {
		case p, ok := <-s.queue:
			if !ok {
				// Shutdown: flush the tail, then run redo backlogs to
				// exhaustion. Every redo epoch commits at least its
				// smallest-SID transaction, so this terminates.
				dispatch()
				for outstanding > 0 || len(redo) > 0 {
					foldRedo()
					dispatch()
					if outstanding > 0 {
						complete(<-s.compl)
					}
				}
				close(s.runq)
				return
			}
			isAria := p.aria != nil
			if len(cur) > 0 && isAria != curAria {
				dispatch()
			}
			if len(cur) == 0 {
				curAria = isAria
				armTimer()
			}
			cur = append(cur, p)
			if len(cur) >= s.cfg.MaxBatch {
				dispatch()
			}
		case <-timerC:
			timerC = nil
			dispatch()
		case d := <-s.compl:
			complete(d)
		}
	}
}

// runLoop executes batches in order and resolves their futures. It reports
// each completion (with any Aria deferrals) back to the former.
func (s *Submitter) runLoop() {
	defer close(s.done)
	for b := range s.runq {
		var deferred []pending
		if s.failure() != nil {
			// Engine already failed: these batches never reached the input
			// log.
			failAll(b, ErrNeverSubmitted)
		} else {
			deferred = s.runBatch(b)
		}
		s.compl <- deferred
	}
}

// runBatch runs one epoch, surviving engine panics (injected device
// crashes) by converting them into a sticky failure and resolving the
// batch's futures with ErrEpochFailed.
func (s *Submitter) runBatch(b []pending) (deferred []pending) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("%w: panic: %v", ErrEpochFailed, r)
			s.setFailure(err)
			failAll(b, err)
			deferred = nil
		}
	}()
	if b[0].aria != nil {
		return s.runAria(b)
	}
	s.runCaracal(b)
	return nil
}

func (s *Submitter) runCaracal(b []pending) {
	batch := make([]*core.Txn, len(b))
	for i := range b {
		batch[i] = b[i].txn
	}
	res, err := s.db.RunEpoch(batch)
	if err != nil {
		err = fmt.Errorf("%w: %v", ErrEpochFailed, err)
		s.setFailure(err)
		failAll(b, err)
		return
	}
	for i := range b {
		t := b[i].txn
		b[i].fut.resolve(Result{Epoch: res.Epoch, SID: t.SID(), Committed: !t.Aborted()})
	}
}

func (s *Submitter) runAria(b []pending) []pending {
	batch := make([]*core.AriaTxn, len(b))
	futs := make(map[*core.AriaTxn]*Future, len(b))
	for i := range b {
		batch[i] = b[i].aria
		futs[b[i].aria] = b[i].fut
	}
	res, err := s.db.RunEpochAria(batch)
	if err != nil {
		err = fmt.Errorf("%w: %v", ErrEpochFailed, err)
		s.setFailure(err)
		failAll(b, err)
		return nil
	}
	deferred := make([]pending, 0, len(res.Deferred))
	for _, t := range res.Deferred {
		deferred = append(deferred, pending{aria: t, fut: futs[t]})
		delete(futs, t)
	}
	for t, f := range futs {
		f.resolve(Result{Epoch: res.Epoch, SID: t.SID(), Committed: !t.Aborted()})
	}
	return deferred
}

func failAll(b []pending, err error) {
	for i := range b {
		b[i].fut.resolve(Result{Err: err})
	}
}
