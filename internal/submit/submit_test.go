// Tests live in submit_test and drive the submitter through the public
// nvcaracal facade, which both exercises the root wiring and mirrors how
// applications use the front-end.
package submit_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"nvcaracal"
	"nvcaracal/internal/crashcheck/kit"
)

// The KV builders and their replay registry come from the shared crash-test
// kit (nvcaracal.Txn is an alias of core.Txn, so kit transactions submit
// directly); the thin wrappers keep the call sites short.
const tblKV = kit.Table

func encKV(key uint64, val []byte) []byte {
	return append(binary.LittleEndian.AppendUint64(nil, key), val...)
}

func mkInsert(key uint64, val []byte) *nvcaracal.Txn { return kit.MkInsert(key, val) }

func mkSet(key uint64, val []byte) *nvcaracal.Txn { return kit.MkSet(key, val) }

func testConfig() nvcaracal.Config {
	return nvcaracal.Config{
		Cores:         2,
		Registry:      kit.Registry(),
		RowsPerCore:   1 << 13,
		ValuesPerCore: 1 << 13,
	}
}

func openTestDB(t *testing.T) (*nvcaracal.DB, *nvcaracal.Device) {
	t.Helper()
	db, dev, err := nvcaracal.OpenWithDevice(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return db, dev
}

// key spreads submitter-local serials into a unique key space.
func key(worker, i int) uint64 { return uint64(worker)<<32 | uint64(i) }

// TestConcurrentSubmitStress is the acceptance stress test: 8 submitter
// goroutines drive the engine through dozens of epochs, every future
// commits, batches respect the size cap, and the final state holds every
// write. Run it under -race.
func TestConcurrentSubmitStress(t *testing.T) {
	const (
		submitters = 8
		perWorker  = 250
		maxBatch   = 64
	)
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: maxBatch,
		MaxDelay: 200 * time.Microsecond,
	})

	futs := make([][]*nvcaracal.Future, submitters)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			futs[w] = make([]*nvcaracal.Future, perWorker)
			for i := 0; i < perWorker; i++ {
				k := key(w, i)
				f, err := s.Submit(mkInsert(k, binary.LittleEndian.AppendUint64(nil, k)))
				if err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				futs[w][i] = f
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	perEpoch := make(map[uint64]int)
	for w := range futs {
		for i, f := range futs[w] {
			if f == nil {
				t.Fatalf("worker %d future %d missing", w, i)
			}
			r := f.Wait()
			if r.Err != nil || !r.Committed {
				t.Fatalf("worker %d txn %d: err=%v committed=%v", w, i, r.Err, r.Committed)
			}
			if r.Epoch == 0 || r.SID == 0 {
				t.Fatalf("worker %d txn %d: empty result %+v", w, i, r)
			}
			perEpoch[r.Epoch]++
		}
	}
	for ep, n := range perEpoch {
		if n > maxBatch {
			t.Fatalf("epoch %d held %d txns, cap %d", ep, n, maxBatch)
		}
	}
	if got := db.Epoch(); got < 20 {
		t.Fatalf("expected >= 20 epochs, got %d", got)
	}
	for w := 0; w < submitters; w++ {
		for i := 0; i < perWorker; i++ {
			k := key(w, i)
			v, ok := db.Get(tblKV, k)
			if !ok || binary.LittleEndian.Uint64(v) != k {
				t.Fatalf("key %d: ok=%v val=%v", k, ok, v)
			}
		}
	}
}

// TestSubmitAriaResubmitsConflictLosers drives contended Aria RMW
// increments on a single key: each epoch commits exactly one writer, the
// rest defer and must be resubmitted automatically until every future
// resolves committed and the counter equals the transaction count.
func TestSubmitAriaResubmitsConflictLosers(t *testing.T) {
	const (
		submitters = 4
		perWorker  = 10
	)
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 16,
		MaxDelay: 200 * time.Microsecond,
	})

	// Seed the counter row through the Caracal flavour of the same
	// submitter.
	seed, err := s.Submit(mkInsert(1, make([]byte, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if r := seed.Wait(); r.Err != nil || !r.Committed {
		t.Fatalf("seed: %+v", r)
	}

	mkIncr := func() *nvcaracal.AriaTxn {
		return &nvcaracal.AriaTxn{
			TypeID: 1,
			Exec: func(ctx *nvcaracal.AriaCtx) {
				old, _ := ctx.Read(tblKV, 1)
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, binary.LittleEndian.Uint64(old)+1)
				ctx.Write(tblKV, 1, buf)
			},
		}
	}

	var wg sync.WaitGroup
	futs := make([][]*nvcaracal.Future, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			futs[w] = make([]*nvcaracal.Future, perWorker)
			for i := 0; i < perWorker; i++ {
				f, err := s.SubmitAria(mkIncr())
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				futs[w][i] = f
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	epochsUsed := make(map[uint64]bool)
	for w := range futs {
		for i, f := range futs[w] {
			r := f.Wait()
			if r.Err != nil || !r.Committed {
				t.Fatalf("worker %d incr %d: %+v", w, i, r)
			}
			epochsUsed[r.Epoch] = true
		}
	}
	if len(epochsUsed) < 2 {
		t.Fatalf("contended RMWs committed in %d epoch(s); expected conflict deferrals", len(epochsUsed))
	}
	v, ok := db.Get(tblKV, 1)
	if !ok {
		t.Fatal("counter row missing")
	}
	if got := binary.LittleEndian.Uint64(v); got != submitters*perWorker {
		t.Fatalf("counter = %d, want %d", got, submitters*perWorker)
	}
}

// TestMixedFlavourSubmission interleaves Caracal and Aria submissions; the
// former must split batches at flavour boundaries and commit both kinds.
func TestMixedFlavourSubmission(t *testing.T) {
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 8,
		MaxDelay: 200 * time.Microsecond,
	})

	var futs []*nvcaracal.Future
	for i := 0; i < 40; i++ {
		k := uint64(100 + i)
		if i%2 == 0 {
			f, err := s.Submit(mkInsert(k, []byte("caracal")))
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		} else {
			f, err := s.SubmitAria(&nvcaracal.AriaTxn{
				TypeID: 1,
				Exec: func(ctx *nvcaracal.AriaCtx) {
					ctx.Write(tblKV, k, []byte("aria"))
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if r := f.Wait(); r.Err != nil || !r.Committed {
			t.Fatalf("txn %d: %+v", i, r)
		}
	}
	for i := 0; i < 40; i++ {
		want := "caracal"
		if i%2 == 1 {
			want = "aria"
		}
		v, ok := db.Get(tblKV, uint64(100+i))
		if !ok || string(v) != want {
			t.Fatalf("key %d: ok=%v val=%q want %q", 100+i, ok, v, want)
		}
	}
}

// TestRejectBackpressure stalls the runner with a gated transaction and
// verifies the Reject policy sheds load with ErrOverloaded once the queue
// and pipeline are full, then drains cleanly.
func TestRejectBackpressure(t *testing.T) {
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch:   2,
		MaxDelay:   50 * time.Microsecond,
		QueueDepth: 4,
		Overload:   nvcaracal.OverloadReject,
	})

	gate := make(chan struct{})
	gated := &nvcaracal.Txn{
		TypeID: kit.TypeInsert,
		Input:  encKV(1, []byte("g")),
		Ops:    []nvcaracal.Op{{Table: tblKV, Key: 1, Kind: nvcaracal.OpInsert}},
		Exec: func(ctx *nvcaracal.Ctx) {
			<-gate
			ctx.Insert(tblKV, 1, []byte("g"))
		},
	}
	gf, err := s.Submit(gated)
	if err != nil {
		t.Fatal(err)
	}

	// With the runner stalled, the queue (depth 4) plus the pipeline can
	// absorb only a bounded number of submissions before Reject fires.
	var futs []*nvcaracal.Future
	sawOverload := false
	for i := 0; i < 100 && !sawOverload; i++ {
		f, err := s.Submit(mkInsert(uint64(10+i), []byte("x")))
		switch {
		case err == nil:
			futs = append(futs, f)
		case errors.Is(err, nvcaracal.ErrOverloaded):
			sawOverload = true
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
		time.Sleep(100 * time.Microsecond) // let the former drain the queue
	}
	if !sawOverload {
		t.Fatal("never saw ErrOverloaded with the runner stalled")
	}

	close(gate)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r := gf.Wait(); r.Err != nil || !r.Committed {
		t.Fatalf("gated txn: %+v", r)
	}
	for i, f := range futs {
		if r := f.Wait(); r.Err != nil || !r.Committed {
			t.Fatalf("txn %d: %+v", i, r)
		}
	}
}

// TestBlockBackpressure verifies the default policy blocks a submitter on a
// full queue and completes once the stall clears.
func TestBlockBackpressure(t *testing.T) {
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch:   2,
		MaxDelay:   50 * time.Microsecond,
		QueueDepth: 2,
	})

	gate := make(chan struct{})
	gf, err := s.Submit(&nvcaracal.Txn{
		TypeID: kit.TypeInsert,
		Input:  encKV(1, []byte("g")),
		Ops:    []nvcaracal.Op{{Table: tblKV, Key: 1, Kind: nvcaracal.OpInsert}},
		Exec: func(ctx *nvcaracal.Ctx) {
			<-gate
			ctx.Insert(tblKV, 1, []byte("g"))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 30
	var wg sync.WaitGroup
	futs := make([]*nvcaracal.Future, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := s.Submit(mkInsert(uint64(10+i), []byte("x")))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			futs[i] = f
		}(i)
	}
	// Some of those submits are necessarily blocked on the full queue now;
	// releasing the gate must unblock them all.
	close(gate)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if r := gf.Wait(); r.Err != nil || !r.Committed {
		t.Fatalf("gated txn: %+v", r)
	}
	for i, f := range futs {
		if r := f.Wait(); r.Err != nil || !r.Committed {
			t.Fatalf("txn %d: %+v", i, r)
		}
	}
}

// TestCloseSemantics: Close drains queued work, later submissions fail with
// ErrSubmitterClosed, and Close is idempotent.
func TestCloseSemantics(t *testing.T) {
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 4,
		// A long deadline: Close itself must flush the partial batch.
		MaxDelay: time.Hour,
	})
	var futs []*nvcaracal.Future
	for i := 0; i < 10; i++ {
		f, err := s.Submit(mkInsert(uint64(i), []byte("v")))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if r := f.Wait(); r.Err != nil || !r.Committed {
			t.Fatalf("txn %d after Close: %+v", i, r)
		}
	}
	if _, err := s.Submit(mkInsert(99, []byte("late"))); !errors.Is(err, nvcaracal.ErrSubmitterClosed) {
		t.Fatalf("submit after Close: %v, want ErrSubmitterClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMaxDelayFlushesPartialBatch: a single submission must not wait for a
// full batch; the deadline closes the epoch.
func TestMaxDelayFlushesPartialBatch(t *testing.T) {
	db, _ := openTestDB(t)
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 1 << 20, // never reached
		MaxDelay: time.Millisecond,
	})
	defer s.Close()
	f, err := s.Submit(mkInsert(1, []byte("solo")))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-f.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("future did not resolve; deadline flush broken")
	}
	if r := f.Wait(); r.Err != nil || !r.Committed {
		t.Fatalf("solo txn: %+v", r)
	}
}

// TestPipelineSubmitStress is the submit-front counterpart of the engine's
// pipeline race test: concurrent submitters keep the batch former full
// while the depth-1 epoch pipeline overlaps every epoch's checkpoint with
// the next epoch's work, so the race detector watches the staging-token
// and commit-join handoffs under real front-end concurrency. Run under
// -race in CI.
func TestPipelineSubmitStress(t *testing.T) {
	const (
		submitters = 8
		perWorker  = 200
		maxBatch   = 64
	)
	cfg := testConfig()
	cfg.AsyncPersist = true
	cfg.Pipeline = true
	db, err := nvcaracal.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: maxBatch,
		MaxDelay: 200 * time.Microsecond,
	})

	var wg sync.WaitGroup
	futs := make([][]*nvcaracal.Future, submitters)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			futs[w] = make([]*nvcaracal.Future, perWorker)
			for i := 0; i < perWorker; i++ {
				k := key(w, i)
				var f *nvcaracal.Future
				var err error
				if i%2 == 0 {
					f, err = s.Submit(mkInsert(k, binary.LittleEndian.AppendUint64(nil, k)))
				} else {
					// Overwrite the worker's previous insert: dual-version
					// rewrites feed major GC into the overlapped window.
					f, err = s.Submit(mkSet(key(w, i-1), binary.LittleEndian.AppendUint64(nil, k)))
				}
				if err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
					return
				}
				futs[w][i] = f
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	db.WaitDurable()
	if ep, dur := db.Epoch(), db.DurableEpoch(); dur != ep {
		t.Fatalf("after WaitDurable: durable epoch %d != epoch %d", dur, ep)
	}

	for w := range futs {
		for i, f := range futs[w] {
			if f == nil {
				t.Fatalf("worker %d future %d missing", w, i)
			}
			if r := f.Wait(); r.Err != nil || !r.Committed {
				t.Fatalf("worker %d txn %d: err=%v committed=%v", w, i, r.Err, r.Committed)
			}
		}
	}
	for w := 0; w < submitters; w++ {
		for i := 1; i < perWorker; i += 2 {
			k := key(w, i-1)
			v, ok := db.Get(tblKV, k)
			if !ok || binary.LittleEndian.Uint64(v) != key(w, i) {
				t.Fatalf("key %d: ok=%v val=%v", k, ok, v)
			}
		}
	}
}
