package submit_test

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"nvcaracal"
)

// TestCrashDuringSubmission injects a device power failure while 8
// submitter goroutines are in flight. Every future must resolve rather
// than hang: commits before the crash stay durable across Recover,
// the epoch executing at the crash resolves ErrEpochFailed (its inputs may
// have reached the log, in which case recovery replays them), and
// transactions that never entered an epoch resolve ErrNeverSubmitted and
// are guaranteed absent after recovery.
func TestCrashDuringSubmission(t *testing.T) {
	const (
		submitters = 8
		perWorker  = 150
	)
	cfg := testConfig()
	db, dev, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 32,
		MaxDelay: 100 * time.Microsecond,
	})

	// A couple of healthy epochs first, so the crash lands on a database
	// with durable history.
	warm, err := s.Submit(mkInsert(1, []byte("warm")))
	if err != nil {
		t.Fatal(err)
	}
	if r := warm.Wait(); r.Err != nil || !r.Committed {
		t.Fatalf("warmup: %+v", r)
	}

	// Arm the fail-point: after a few thousand more flushed lines the next
	// persist panics with ErrInjectedCrash inside RunEpoch.
	dev.SetFailAfter(4000)

	futs := make([][]*nvcaracal.Future, submitters)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			futs[w] = make([]*nvcaracal.Future, perWorker)
			for i := 0; i < perWorker; i++ {
				k := key(w+1, i) // worker 0 slot reserved for the warmup key
				f, err := s.Submit(mkInsert(k, binary.LittleEndian.AppendUint64(nil, k)))
				if err != nil {
					// The engine failed while we were queueing: expected for
					// the tail of the stream; stop this worker.
					if errors.Is(err, nvcaracal.ErrEpochFailed) {
						return
					}
					t.Errorf("worker %d submit %d: unexpected error %v", w, i, err)
					return
				}
				futs[w][i] = f
			}
		}(w)
	}
	wg.Wait()
	closeErr := s.Close()
	if closeErr == nil {
		t.Fatal("expected Close to report the injected crash")
	}
	if !errors.Is(closeErr, nvcaracal.ErrEpochFailed) {
		t.Fatalf("Close: %v, want ErrEpochFailed", closeErr)
	}

	// Every issued future must have resolved; sort them by outcome.
	type outcome struct {
		key uint64
		res nvcaracal.SubmitResult
	}
	var committed, epochFailed, neverSubmitted []outcome
	for w := range futs {
		for i, f := range futs[w] {
			if f == nil {
				continue // submission itself was rejected after the failure
			}
			select {
			case <-f.Done():
			case <-time.After(10 * time.Second):
				t.Fatalf("worker %d future %d hung after crash", w, i)
			}
			o := outcome{key: key(w+1, i), res: f.Wait()}
			r := o.res
			switch {
			case r.Err == nil && r.Committed:
				committed = append(committed, o)
			case errors.Is(r.Err, nvcaracal.ErrNeverSubmitted):
				neverSubmitted = append(neverSubmitted, o)
			case errors.Is(r.Err, nvcaracal.ErrEpochFailed):
				epochFailed = append(epochFailed, o)
			default:
				t.Fatalf("worker %d txn %d: unexpected outcome %+v", w, i, r)
			}
		}
	}
	if len(epochFailed) == 0 {
		t.Fatal("no future resolved ErrEpochFailed; the crash missed the pipeline")
	}
	t.Logf("outcomes: %d committed, %d epoch-failed, %d never-submitted",
		len(committed), len(epochFailed), len(neverSubmitted))

	// Power-cycle and recover: logged epochs replay deterministically.
	dev.Crash(nvcaracal.CrashStrict, 42)
	rec, rep, err := nvcaracal.Recover(dev, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	t.Logf("recovery: checkpoint epoch %d, replayed epoch %d (%d txns)",
		rep.CheckpointEpoch, rep.ReplayedEpoch, rep.TxnsReplayed)

	if v, ok := rec.Get(tblKV, 1); !ok || string(v) != "warm" {
		t.Fatalf("warmup row lost: ok=%v val=%q", ok, v)
	}
	// Durable commits survive the crash with the exact value written.
	for _, o := range committed {
		v, ok := rec.Get(tblKV, o.key)
		if !ok || binary.LittleEndian.Uint64(v) != o.key {
			t.Fatalf("committed key %d (epoch %d) lost after recovery: ok=%v", o.key, o.res.Epoch, ok)
		}
	}
	// Never-submitted transactions are guaranteed absent: their inputs
	// never reached the log.
	for _, o := range neverSubmitted {
		if _, ok := rec.Get(tblKV, o.key); ok {
			t.Fatalf("never-submitted key %d present after recovery", o.key)
		}
	}
	// Epoch-failed transactions are all-or-nothing per epoch: either the
	// crashed epoch's inputs were fully logged (the replay reran them all)
	// or none of them are visible.
	present := 0
	for _, o := range epochFailed {
		if _, ok := rec.Get(tblKV, o.key); ok {
			present++
		}
	}
	if present != 0 && present != len(epochFailed) {
		t.Fatalf("crashed epoch partially visible after recovery: %d/%d keys", present, len(epochFailed))
	}
	if present > 0 && rep.ReplayedEpoch == 0 {
		t.Fatal("crashed-epoch keys visible but recovery replayed nothing")
	}
}
