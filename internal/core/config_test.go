package core

import (
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.applyDefaults()
	if o.Cores <= 0 {
		t.Fatal("cores not defaulted")
	}
	if o.CacheK != 20 {
		t.Fatalf("CacheK = %d, want paper default 20", o.CacheK)
	}
	if o.Layout.Cores != o.Cores {
		t.Fatal("layout not defaulted to core count")
	}
}

func TestOptionsValidation(t *testing.T) {
	// Core/layout mismatch.
	o := testOpts(2)
	o.Cores = 4
	if err := o.validate(); err == nil {
		t.Error("core/layout mismatch accepted")
	}
	// Logging mode without registry.
	o2 := testOpts(1)
	o2.Registry = nil
	if err := o2.validate(); err == nil {
		t.Error("logging mode without registry accepted")
	}
	// Non-logging modes do not need a registry.
	o3 := testOpts(1)
	o3.Registry = nil
	o3.Mode = ModeNoLogging
	if err := o3.validate(); err != nil {
		t.Errorf("no-logging rejected: %v", err)
	}
}

func TestAllNVMMForcesCacheOff(t *testing.T) {
	o := testOpts(1)
	o.Mode = ModeAllNVMM
	o.CacheEnabled = true
	o.applyDefaults()
	if o.CacheEnabled {
		t.Fatal("ModeAllNVMM did not force cache off")
	}
}

func TestModePredicates(t *testing.T) {
	if !ModeNVCaracal.logs() || ModeNoLogging.logs() || ModeHybrid.logs() {
		t.Error("logs() wrong")
	}
	if !ModeHybrid.persistsIntermediates() || !ModeAllNVMM.persistsIntermediates() {
		t.Error("persistsIntermediates() wrong")
	}
	if ModeNVCaracal.persistsIntermediates() {
		t.Error("nvcaracal persists intermediates?")
	}
	if ModeAllNVMM.caches() || !ModeNVCaracal.caches() {
		t.Error("caches() wrong")
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpUpdate.String() != "update" || OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("op kind strings")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown op kind prints empty")
	}
}

func TestRegistryUnknownType(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Decode(42, nil, nil); err == nil {
		t.Fatal("unknown type decoded")
	}
}

func TestOpenDeviceTooSmall(t *testing.T) {
	opts := testOpts(1)
	dev := nvm.New(1024)
	if _, err := Open(dev, opts); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func TestReadOnlyTxnWithEmptyWriteSet(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v"))})
	var saw []byte
	ro := &Txn{
		TypeID: ttSet, Input: nil,
		Exec: func(ctx *Ctx) {
			v, _ := ctx.Read(tblKV, 1)
			saw = append([]byte(nil), v...)
		},
	}
	res := mustRun(t, db, []*Txn{ro})
	if res.Committed != 1 {
		t.Fatalf("res = %+v", res)
	}
	if string(saw) != "v" {
		t.Fatalf("read-only txn saw %q", saw)
	}
}

func TestReadMissingTable(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v"))})
	var found bool
	probe := &Txn{
		TypeID: ttSet,
		Exec: func(ctx *Ctx) {
			_, found = ctx.Read(999, 1)
		},
	}
	mustRun(t, db, []*Txn{probe})
	if found {
		t.Fatal("read from nonexistent table found a row")
	}
}

func TestDeleteNotDeclaredPanics(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v"))})
	bad := &Txn{
		TypeID: ttSet,
		Ops:    []Op{{Table: tblKV, Key: 1, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			ctx.Delete(tblKV, 1) // declared as update, not delete
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.RunEpoch([]*Txn{bad})
}

func TestMultiTableTxn(t *testing.T) {
	db, _ := openTestDB(t, 2)
	multi := &Txn{
		TypeID: ttSet,
		Ops: []Op{
			{Table: 1, Key: 5, Kind: OpInsert},
			{Table: 2, Key: 5, Kind: OpInsert}, // same key, different table
		},
		Exec: func(ctx *Ctx) {
			ctx.Insert(1, 5, []byte("t1"))
			ctx.Insert(2, 5, []byte("t2"))
		},
	}
	mustRun(t, db, []*Txn{multi})
	if v, _ := db.Get(1, 5); string(v) != "t1" {
		t.Fatalf("table 1 = %q", v)
	}
	if v, _ := db.Get(2, 5); string(v) != "t2" {
		t.Fatalf("table 2 = %q", v)
	}
}

func TestLayoutRoundTripThroughDefault(t *testing.T) {
	l := pmem.DefaultLayout(2, 1024, 1024)
	if l.TotalBytes() <= 0 {
		t.Fatal("empty layout")
	}
	dev := nvm.New(l.TotalBytes())
	if err := pmem.Format(dev, l); err != nil {
		t.Fatal(err)
	}
	if _, err := pmem.Attach(dev, l); err != nil {
		t.Fatal(err)
	}
}
