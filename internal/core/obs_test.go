package core

import (
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

func openObservedDB(t *testing.T, cores int) (*DB, *nvm.Device, *obs.Obs) {
	t.Helper()
	o := obs.New(obs.Config{Hists: true, Trace: true, Device: true, Cores: cores})
	opts := testOpts(cores)
	opts.Obs = o
	dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithObserver(o.Device()))
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, o
}

// TestObsEpochInstrumentation runs a few epochs with the full observability
// layer attached and checks every instrument filled in: per-phase and epoch
// histograms, transaction latencies, tracer spans for each epoch phase, and
// the device histograms underneath.
func TestObsEpochInstrumentation(t *testing.T) {
	db, _, o := openObservedDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("one")), mkInsert(2, []byte("two"))})
	mustRun(t, db, []*Txn{mkRMW(1, 'a'), mkRMW(2, 'b'), mkRMW(1, 'c')})
	mustRun(t, db, []*Txn{mkSet(1, []byte("v2"))})

	if got := o.EpochSnapshot().Count; got != 3 {
		t.Fatalf("epoch histogram count = %d, want 3", got)
	}
	for _, p := range []obs.Phase{obs.PhaseLog, obs.PhaseInit, obs.PhaseExec, obs.PhasePersist} {
		if got := o.PhaseSnapshot(p).Count; got != 3 {
			t.Fatalf("phase %v count = %d, want 3", p, got)
		}
	}
	if got := o.TxnSnapshot().Count; got != 6 {
		t.Fatalf("txn histogram count = %d, want 6", got)
	}
	// Epoch total equals the sum of its phases (RecordEpoch invariant).
	if e, ph := o.EpochSnapshot().Sum, o.PhaseSnapshot(obs.PhaseLog).Sum+
		o.PhaseSnapshot(obs.PhaseInit).Sum+o.PhaseSnapshot(obs.PhaseExec).Sum+
		o.PhaseSnapshot(obs.PhasePersist).Sum; e != ph {
		t.Fatalf("epoch sum %d != phase sum %d", e, ph)
	}

	spans := o.Tracer().Spans(0)
	perPhase := map[obs.Phase]int{}
	for _, s := range spans {
		perPhase[s.Phase]++
		// The four epoch phases are coordinator spans; GC spans may also
		// appear (epoch 3 minor-collects row 1) and carry worker cores.
		if s.Phase != obs.PhaseMinorGC && s.Phase != obs.PhaseMajorGC && s.Core != obs.CoordinatorCore {
			t.Fatalf("epoch-phase span not on the coordinator track: %+v", s)
		}
	}
	for _, p := range []obs.Phase{obs.PhaseLog, obs.PhaseInit, obs.PhaseExec, obs.PhasePersist} {
		if perPhase[p] != 3 {
			t.Fatalf("tracer spans for %v = %d, want 3", p, perPhase[p])
		}
	}

	d := o.Device()
	if d.Write.Snapshot().Count == 0 || d.Fence.Snapshot().Count == 0 {
		t.Fatal("device instruments stayed empty under an observed engine")
	}
	if d.FenceStallNanos() <= 0 {
		t.Fatal("fence stall did not accumulate")
	}
}

// TestObsGCSpans drives minor and major collections under observation.
func TestObsGCSpans(t *testing.T) {
	db, _, o := openObservedDB(t, 2)
	big := make([]byte, 400) // forces non-inline values -> major GC
	mustRun(t, db, []*Txn{mkInsert(1, big), mkInsert(2, []byte("s"))})
	for i := 0; i < 4; i++ {
		// Rewrite both rows: the big row queues major GC, the small row's
		// inline stale version goes through the minor collector.
		mustRun(t, db, []*Txn{mkSet(1, big), mkSet(2, []byte{byte(i)})})
	}
	if got := o.PhaseSnapshot(obs.PhaseMajorGC).Count; got == 0 {
		t.Fatal("no major-GC spans recorded")
	}
	if got := o.PhaseSnapshot(obs.PhaseMinorGC).Count; got == 0 {
		t.Fatal("no minor-GC spans recorded")
	}
	if db.Metrics().MinorGCs == 0 || db.Metrics().MajorGCs == 0 {
		t.Fatalf("metrics disagree with spans: %+v", db.Metrics())
	}
}

// TestObsRecoverySpans crashes an epoch at its final flush (after the input
// log is durable, before the epoch record commits) and recovers under
// observation: recovery must record its four stage spans and the replayed
// epoch its phase spans.
func TestObsRecoverySpans(t *testing.T) {
	// A twin database counts the flushes of the same workload so the
	// fail-point can be pinned to the crashed epoch's last flush.
	twin, tdev := openTestDB(t, 2)
	mustRun(t, twin, []*Txn{mkInsert(1, []byte("one"))})
	before := tdev.Stats().Flushes
	mustRun(t, twin, []*Txn{mkSet(1, []byte("v2"))})
	lastFlush := tdev.Stats().Flushes - before

	db, dev, _ := openObservedDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("one"))})
	dev.SetFailAfter(lastFlush)
	fired := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrInjectedCrash {
					panic(r)
				}
				fired = true
			}
		}()
		db.RunEpoch([]*Txn{mkSet(1, []byte("v2"))})
	}()
	if !fired {
		t.Fatalf("fail-point at flush %d never fired", lastFlush)
	}
	dev.Crash(nvm.CrashStrict, 1)

	o2 := obs.New(obs.Config{Hists: true, Trace: true, Cores: 2})
	opts := testOpts(2)
	opts.Obs = o2
	rdb, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := o2.PhaseSnapshot(obs.PhaseRecovery).Count; got != 4 {
		t.Fatalf("recovery spans = %d, want 4 (load/scan/revert/replay)", got)
	}
	if rep.ReplayedEpoch != 2 {
		t.Fatalf("ReplayedEpoch = %d, want 2", rep.ReplayedEpoch)
	}
	// The replayed epoch runs through RunEpoch and records its own spans.
	if got := o2.EpochSnapshot().Count; got != 1 {
		t.Fatalf("replayed-epoch histogram count = %d, want 1", got)
	}
	if v, ok := rdb.Get(tblKV, 1); !ok || string(v) != "v2" {
		t.Fatalf("recovered value = %q, %v", v, ok)
	}
}

// TestObsAriaEpochs covers the Aria flavour's phase recording.
func TestObsAriaEpochs(t *testing.T) {
	db, _, o := openObservedDB(t, 2)
	txn := func(key uint64, val string) *AriaTxn {
		return &AriaTxn{
			TypeID: 1,
			Exec: func(ctx *AriaCtx) {
				ctx.Write(tblKV, key, []byte(val))
			},
		}
	}
	// Logging requires an Aria registry only for recovery; epochs run fine.
	if _, err := db.RunEpochAria([]*AriaTxn{txn(1, "a"), txn(2, "b")}); err != nil {
		t.Fatal(err)
	}
	if got := o.EpochSnapshot().Count; got != 1 {
		t.Fatalf("epoch histogram count = %d, want 1", got)
	}
	for _, p := range []obs.Phase{obs.PhaseLog, obs.PhaseInit, obs.PhaseExec, obs.PhasePersist} {
		if got := o.PhaseSnapshot(p).Count; got != 1 {
			t.Fatalf("phase %v count = %d, want 1", p, got)
		}
	}
}

// TestObsNilIsInert pins that an unobserved DB records nothing and pays only
// nil checks: behaviour must be identical to the pre-obs engine.
func TestObsNilIsInert(t *testing.T) {
	db, _ := openTestDB(t, 2)
	if db.obs != nil {
		t.Fatal("default DB has an observer")
	}
	mustRun(t, db, []*Txn{mkInsert(1, []byte("one"))})
	mustRun(t, db, []*Txn{mkRMW(1, 'x')})
	wantGet(t, db, 1, []byte("onex"))
}
