package core

import (
	"fmt"

	"nvcaracal/internal/index"
	"nvcaracal/internal/obs"
)

// OpKind classifies a declared write-set operation.
type OpKind uint8

const (
	// OpUpdate rewrites an existing row.
	OpUpdate OpKind = iota
	// OpInsert creates a new row.
	OpInsert
	// OpDelete removes an existing row.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one entry of a transaction's declared write set. Deterministic
// databases require write sets before execution (paper §3.1.1); the
// initialization phase uses them to pre-create pending row versions.
type Op struct {
	Table uint32
	Key   uint64
	Kind  OpKind
}

// Txn is a one-shot deterministic transaction: all inputs are available at
// submission, the write set is declared up front, and Exec runs the logic
// against a Ctx during the execution phase. Exec must be deterministic
// given the database state and Input — it is re-run during recovery.
//
// User-level aborts (Ctx.Abort) must be issued before the first write,
// mirroring Caracal's restriction that transactions never abort after
// making writes visible.
type Txn struct {
	// TypeID identifies the transaction type in the input log.
	TypeID uint16
	// Input is the serialized parameters logged for replay. The registered
	// decoder must reconstruct an equivalent Txn from it.
	Input []byte
	// Ops is the declared write set.
	Ops []Op
	// Exec runs the transaction.
	Exec func(ctx *Ctx)

	sid     uint64
	aborted bool

	// span, when non-nil, is the sampled lifecycle record travelling with
	// the transaction. internal/submit attaches it at enqueue; unsampled
	// transactions (the vast majority) carry nil. The engine clears it when
	// the epoch finishes so re-submitted Txn values start fresh.
	span *obs.TxnSpan
	// spanConsidered means an entry path already offered this transaction
	// to the sampler (and may have lost the 1-in-N draw). Without it the
	// engine's hand-batch fallback would draw a second time for every
	// unsampled submit-path transaction, silently inflating the effective
	// sampling rate.
	spanConsidered bool
}

// SetSpan attaches a sampled lifecycle span — or records, when s is nil,
// that the sampler already declined this transaction. internal/submit calls
// it either way so the engine samples only transactions that truly bypassed
// a sampling entry path.
func (t *Txn) SetSpan(s *obs.TxnSpan) {
	t.span = s
	t.spanConsidered = true
}

// Span returns the attached lifecycle span (nil for unsampled txns).
func (t *Txn) Span() *obs.TxnSpan { return t.span }

// SID returns the serial id assigned for the current epoch (valid during
// and after RunEpoch).
func (t *Txn) SID() uint64 { return t.sid }

// Aborted reports whether the transaction issued a user-level abort during
// the last execution.
func (t *Txn) Aborted() bool { return t.aborted }

// Decoder reconstructs a transaction from its logged input. The DB is
// passed so decoders can reach engine-managed state such as persistent
// counters (used by TPC-C's order-id generation).
type Decoder func(data []byte, db *DB) (*Txn, error)

// Registry maps logged transaction type ids to decoders.
type Registry struct {
	decoders map[uint16]Decoder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{decoders: make(map[uint16]Decoder)}
}

// Register binds a decoder to a type id, replacing any previous binding.
func (r *Registry) Register(typeID uint16, d Decoder) {
	r.decoders[typeID] = d
}

// Decode reconstructs a transaction of the given type.
func (r *Registry) Decode(typeID uint16, data []byte, db *DB) (*Txn, error) {
	d, ok := r.decoders[typeID]
	if !ok {
		return nil, fmt.Errorf("core: no decoder registered for txn type %d", typeID)
	}
	return d(data, db)
}

// Ctx is the interface transactions use to access the database during the
// execution phase. A Ctx is bound to one transaction on one worker core and
// must not escape Exec.
type Ctx struct {
	db   *DB
	txn  *Txn
	core int
	// wrote tracks which declared ops have been performed, by Ops index.
	wrote []bool
}

// SID returns the executing transaction's serial id.
func (c *Ctx) SID() uint64 { return c.txn.sid }

// Abort marks the transaction as aborted by application logic. It must be
// called before any Write/Insert/Delete; all the transaction's pending
// versions are filled with IGNORE markers so readers skip them (paper §4.6).
func (c *Ctx) Abort() {
	for _, w := range c.wrote {
		if w {
			panic("core: Abort after a write violates the deterministic abort rule")
		}
	}
	c.txn.aborted = true
}

// Aborted reports whether Abort was called.
func (c *Ctx) Aborted() bool { return c.txn.aborted }

// Read returns the value of (table, key) visible at this transaction's
// serial id, or ok=false if the row does not exist at that point in the
// serial order. The returned slice must not be modified or retained.
func (c *Ctx) Read(table uint32, key uint64) ([]byte, bool) {
	return c.db.read(c, index.Key{Table: table, ID: key})
}

// Write stores val as this transaction's version of (table, key). The op
// must be in the declared write set as OpUpdate or OpInsert.
func (c *Ctx) Write(table uint32, key uint64, val []byte) {
	if c.txn.aborted {
		panic("core: Write after Abort")
	}
	c.markWrote(table, key, OpUpdate, OpInsert)
	c.db.write(c, index.Key{Table: table, ID: key}, val)
}

// Insert is Write for a row declared as OpInsert; provided for readability.
func (c *Ctx) Insert(table uint32, key uint64, val []byte) {
	if c.txn.aborted {
		panic("core: Insert after Abort")
	}
	c.markWrote(table, key, OpInsert)
	c.db.write(c, index.Key{Table: table, ID: key}, val)
}

// Delete removes (table, key). The op must be declared as OpDelete.
func (c *Ctx) Delete(table uint32, key uint64) {
	if c.txn.aborted {
		panic("core: Delete after Abort")
	}
	c.markWrote(table, key, OpDelete)
	c.db.writeDelete(c, index.Key{Table: table, ID: key})
}

// markWrote validates the op against the declared write set and records it.
func (c *Ctx) markWrote(table uint32, key uint64, kinds ...OpKind) {
	for i, op := range c.txn.Ops {
		if op.Table != table || op.Key != key {
			continue
		}
		for _, k := range kinds {
			if op.Kind == k {
				if c.wrote[i] {
					panic(fmt.Sprintf("core: double write to table %d key %d in one txn (use a private buffer)", table, key))
				}
				c.wrote[i] = true
				return
			}
		}
	}
	panic(fmt.Sprintf("core: write to table %d key %d not in declared write set", table, key))
}
