package core

import (
	"strings"
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
)

// TestScratchConfigValidation pins the config-level guard: modes that place
// transient versions in NVMM scratch must have a scratch region that can
// hold any value the engine accepts.
func TestScratchConfigValidation(t *testing.T) {
	mk := func(scratch int64) Options {
		l := pmem.Layout{
			Cores: 1, RowSize: 256, RowsPerCore: 64,
			ValueSize: 512, ValuesPerCore: 64, RingCap: 256,
			LogBytes: 1 << 16, ScratchPerCore: scratch,
		}
		if err := l.Finalize(); err != nil {
			t.Fatal(err)
		}
		return Options{Cores: 1, Mode: ModeHybrid, Layout: l}
	}

	opts := mk(0)
	dev := nvm.New(opts.Layout.TotalBytes())
	if _, err := Open(dev, opts); err == nil || !strings.Contains(err.Error(), "ScratchPerCore") {
		t.Fatalf("hybrid mode with no scratch: got err %v, want ScratchPerCore error", err)
	}

	opts = mk(256) // smaller than the 512-byte value class
	dev = nvm.New(opts.Layout.TotalBytes())
	if _, err := Open(dev, opts); err == nil || !strings.Contains(err.Error(), "largest value class") {
		t.Fatalf("hybrid mode with undersized scratch: got err %v, want value-class error", err)
	}

	opts = mk(512)
	dev = nvm.New(opts.Layout.TotalBytes())
	if _, err := Open(dev, opts); err != nil {
		t.Fatalf("hybrid mode with adequate scratch rejected: %v", err)
	}
}

// TestScratchAllocOversizePanics pins the runtime guard: a transient value
// that cannot fit the per-core scratch region even from offset zero —
// reachable for intermediate versions, which are not bounded by the value
// classes — must panic loudly instead of wrapping and overrunning into the
// next core's region.
func TestScratchAllocOversizePanics(t *testing.T) {
	opts := testOpts(2)
	opts.Mode = ModeHybrid
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Wrapping within bounds still works: two allocations that together
	// exceed the region wrap to offset 0.
	per := opts.Layout.ScratchPerCore
	a := db.scratchAlloc(0, int(per)-8)
	if got := db.scratchAlloc(0, 64); got != opts.Layout.ScratchOff(0) {
		t.Fatalf("wrap: second alloc at %d, want region base %d (first at %d)", got, opts.Layout.ScratchOff(0), a)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized scratch alloc did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "exceeds ScratchPerCore") {
			t.Fatalf("panic message %v lacks the oversize diagnostic", r)
		}
	}()
	db.scratchAlloc(0, int(per)+1)
}
