package core

import (
	"nvcaracal/internal/index"
)

// Get reads the latest committed value of (table, key) outside any
// transaction. It must only be called between epochs (e.g. for
// verification); it bypasses the cache and reads the persistent row.
func (db *DB) Get(table uint32, key uint64) ([]byte, bool) {
	rs, ok := db.idx.Get(index.Key{Table: table, ID: key})
	if !ok {
		return nil, false
	}
	r := db.rowRef(rs.nvOff)
	latest := db.rowLatest(r)
	if latest.isNull() {
		return nil, false
	}
	return r.readValue(latest), true
}

// MemoryBreakdown reports where the database's bytes live, reproducing the
// paper's Figure 8 categories.
type MemoryBreakdown struct {
	// DRAM.
	IndexBytes    int64 // row index
	TransientPeak int64 // transient pool high-water mark
	TransientFoot int64 // transient pool retained chunks
	CacheBytes    int64 // cached version payloads
	CacheEntries  int64
	// NVMM.
	RowBytes     int64 // persistent row pool usage (bump regions)
	ValueBytes   int64 // persistent value pool usage (bump regions)
	LogBytes     int64 // input-log region size (rewritten per epoch)
	ScratchBytes int64 // NVMM transient scratch (baseline modes only)
}

// DRAMTotal sums the DRAM categories.
func (m MemoryBreakdown) DRAMTotal() int64 {
	return m.IndexBytes + m.TransientPeak + m.CacheBytes
}

// NVMMTotal sums the NVMM categories.
func (m MemoryBreakdown) NVMMTotal() int64 {
	return m.RowBytes + m.ValueBytes + m.LogBytes + m.ScratchBytes
}

// Memory returns the current breakdown.
func (db *DB) Memory() MemoryBreakdown {
	var m MemoryBreakdown
	m.IndexBytes = db.idx.MemBytes()
	m.TransientPeak = int64(db.arenas.Peak())
	m.TransientFoot = int64(db.arenas.Footprint())
	snap := db.met.Snapshot()
	m.CacheBytes = snap.CacheBytes
	m.CacheEntries = snap.CacheEntries
	for c := 0; c < db.opts.Cores; c++ {
		m.RowBytes += db.rowPools[c].UsedBytes()
		for k := range db.valPools {
			m.ValueBytes += db.valPools[k][c].UsedBytes()
		}
	}
	m.LogBytes = db.layout.LogCap()
	m.ScratchBytes = int64(db.opts.Cores) * db.layout.ScratchPerCore
	return m
}

// LogBytesTotal returns cumulative input-log payload bytes written.
func (db *DB) LogBytesTotal() int64 { return db.logBytesTotal }
