package core

import (
	"sync/atomic"
	"testing"
)

// TestEpochReadDuringRunEpoch exercises the Epoch() read path concurrently
// with running epochs; under -race it fails if the epoch counter is not
// atomic (the front-end reads it while RunEpoch advances it).
func TestEpochReadDuringRunEpoch(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("seed"))})

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var last atomic.Uint64
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			e := db.Epoch()
			if prev := last.Load(); e < prev {
				t.Errorf("Epoch() went backwards: %d after %d", e, prev)
				return
			}
			last.Store(e)
		}
	}()
	for i := 0; i < 25; i++ {
		mustRun(t, db, []*Txn{mkSet(1, []byte{byte(i)})})
	}
	close(stop)
	<-readerDone
	if got := db.Epoch(); got != 26 {
		t.Fatalf("Epoch() = %d, want 26", got)
	}
}

// TestSIDBoundaries pins the SID packing at the serial-number boundary: the
// largest admissible serial must not bleed into the epoch bits.
func TestSIDBoundaries(t *testing.T) {
	sid := MakeSID(7, MaxTxnsPerEpoch)
	if got := SIDEpoch(sid); got != 7 {
		t.Fatalf("SIDEpoch(MakeSID(7, max)) = %d, want 7", got)
	}
	// One past the cap silently collides: serial 2^24 ORs into the epoch
	// bits and lands on serial 0 — the initial-version sentinel slot.
	if MakeSID(1, MaxTxnsPerEpoch+1) != MakeSID(1, 0) {
		t.Fatal("expected serial overflow to collide with serial 0")
	}
	if err := CheckBatchSize(MaxTxnsPerEpoch); err != nil {
		t.Fatalf("CheckBatchSize(max) = %v, want nil", err)
	}
	if err := CheckBatchSize(MaxTxnsPerEpoch + 1); err == nil {
		t.Fatal("CheckBatchSize(max+1) = nil, want error")
	}
}

// TestOversizedBatchRejected verifies both epoch flavours reject a batch
// one past MaxTxnsPerEpoch before assigning any SIDs, without advancing the
// epoch counter.
func TestOversizedBatchRejected(t *testing.T) {
	db, _ := openTestDB(t, 1)
	// The cap check runs before any element is touched, so nil entries are
	// fine and keep the oversized slices cheap.
	if _, err := db.RunEpoch(make([]*Txn, MaxTxnsPerEpoch+1)); err == nil {
		t.Fatal("RunEpoch accepted an oversized batch")
	}
	if _, err := db.RunEpochAria(make([]*AriaTxn, MaxTxnsPerEpoch+1)); err == nil {
		t.Fatal("RunEpochAria accepted an oversized batch")
	}
	if got := db.Epoch(); got != 0 {
		t.Fatalf("rejected batches advanced the epoch to %d", got)
	}
	// The engine stays usable after the rejection.
	mustRun(t, db, []*Txn{mkInsert(9, []byte("ok"))})
	if got := db.Epoch(); got != 1 {
		t.Fatalf("Epoch() = %d after one good epoch, want 1", got)
	}
}
