package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"nvcaracal/internal/index"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/wal"
)

// recoverTestDB reattaches to a crashed device.
func recoverTestDB(t *testing.T, dev *nvm.Device, cores int) (*DB, *RecoveryReport) {
	t.Helper()
	db, rep, err := Recover(dev, testOpts(cores))
	if err != nil {
		t.Fatal(err)
	}
	return db, rep
}

func TestRecoverCleanShutdown(t *testing.T) {
	db, dev := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("one")), mkInsert(2, []byte("two"))})
	mustRun(t, db, []*Txn{mkSet(1, []byte("uno"))})
	dev.Crash(nvm.CrashStrict, 1)

	db2, rep := recoverTestDB(t, dev, 2)
	if rep.CheckpointEpoch != 2 {
		t.Fatalf("checkpoint epoch = %d, want 2", rep.CheckpointEpoch)
	}
	if rep.ReplayedEpoch != 0 {
		t.Fatalf("unexpected replay of epoch %d", rep.ReplayedEpoch)
	}
	wantGet(t, db2, 1, []byte("uno"))
	wantGet(t, db2, 2, []byte("two"))
	if rep.RowsScanned != 2 {
		t.Fatalf("RowsScanned = %d", rep.RowsScanned)
	}
}

func TestRecoverReplaysCrashedEpoch(t *testing.T) {
	db, dev := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("a")), mkInsert(2, []byte("b"))})

	// Epoch 2: log the inputs, then crash before any execution effects are
	// fenced by simulating the crash right after the log write. Run the
	// epoch fully, then crash WITHOUT the checkpoint... RunEpoch
	// checkpoints internally, so instead we drive the crash through a
	// fail-point below. Here: crash after a completed epoch but mimic an
	// interrupted follow-up by writing the log manually is fragile, so use
	// the simplest real sequence: run epoch 2, crash strictly — epoch 2 is
	// checkpointed; then hand-roll epoch 3's log only.
	mustRun(t, db, []*Txn{mkSet(1, []byte("a2"))})

	// Hand-roll epoch 3: log inputs as RunEpoch would, then "crash" before
	// execution (no data writes at all).
	batch := []*Txn{mkSet(1, []byte("a3")), mkRMW(2, 'x')}
	recs := make([]struct{}, 0)
	_ = recs
	logTxns(t, db, 3, batch)
	dev.Crash(nvm.CrashStrict, 7)

	db2, rep := recoverTestDB(t, dev, 2)
	if rep.CheckpointEpoch != 2 || rep.ReplayedEpoch != 3 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.TxnsReplayed != 2 {
		t.Fatalf("TxnsReplayed = %d", rep.TxnsReplayed)
	}
	wantGet(t, db2, 1, []byte("a3"))
	wantGet(t, db2, 2, []byte("bx"))
	if db2.Epoch() != 3 {
		t.Fatalf("Epoch = %d", db2.Epoch())
	}
}

// logTxns writes an epoch's inputs to the log exactly as RunEpoch would,
// without executing anything — simulating a crash after logging.
func logTxns(t *testing.T, db *DB, epoch uint64, batch []*Txn) {
	t.Helper()
	recs := make([]wal.Record, len(batch))
	for i, txn := range batch {
		recs[i] = wal.Record{Type: txn.TypeID, Data: txn.Input}
	}
	if err := db.log.WriteEpoch(epoch, recs); err != nil {
		t.Fatal(err)
	}
}

// kvKey builds the index key for the test table.
func kvKey(k uint64) index.Key { return index.Key{Table: tblKV, ID: k} }

func TestCrashMidExecutionViaFailpoint(t *testing.T) {
	// Inject a device crash partway through epoch 2's persists, then
	// recover and verify the replay reproduces the exact committed state.
	for _, failAfter := range []int64{1, 3, 7, 15, 40} {
		t.Run(fmt.Sprintf("failAfter=%d", failAfter), func(t *testing.T) {
			db, dev := openTestDB(t, 2)
			var load []*Txn
			for i := uint64(0); i < 20; i++ {
				load = append(load, mkInsert(i, []byte{byte(i)}))
			}
			mustRun(t, db, load)

			var batch []*Txn
			for i := uint64(0); i < 20; i++ {
				batch = append(batch, mkRMW(i%5, byte('A'+i)))
			}
			fired := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r != nvm.ErrInjectedCrash {
							panic(r)
						}
						fired = true
					}
				}()
				dev.SetFailAfter(failAfter)
				if _, err := db.RunEpoch(batch); err != nil {
					t.Fatal(err)
				}
			}()
			dev.Crash(nvm.CrashStrict, failAfter)

			db2, rep := recoverTestDB(t, dev, 2)
			// Epoch-2 state, applied all-or-nothing.
			want := map[uint64][]byte{}
			for i := uint64(0); i < 20; i++ {
				want[i] = []byte{byte(i)}
			}
			epochApplied := !fired || rep.ReplayedEpoch == 2
			if !fired && rep.CheckpointEpoch != 2 {
				t.Fatalf("no crash but checkpoint = %d", rep.CheckpointEpoch)
			}
			if epochApplied {
				for i := uint64(0); i < 20; i++ {
					k := i % 5
					want[k] = append(want[k], byte('A'+i))
				}
			}
			for i := uint64(0); i < 20; i++ {
				wantGet(t, db2, i, want[i])
			}
		})
	}
}

func TestCrashDuringManyEpochsRandomized(t *testing.T) {
	// Run a workload for several epochs with a fail-point at a random
	// persist count; after recovery the state must match a shadow model
	// that applies epochs transactionally (all-or-nothing).
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db, dev := openTestDB(t, 2)
			model := map[uint64][]byte{}

			const keys = 12
			var load []*Txn
			for i := uint64(0); i < keys; i++ {
				v := []byte{byte(i)}
				load = append(load, mkInsert(i, v))
				model[i] = v
			}
			mustRun(t, db, load)

			crashed := false
			for ep := 0; ep < 6 && !crashed; ep++ {
				var batch []*Txn
				shadow := cloneModel(model)
				for j := 0; j < 10; j++ {
					k := uint64(rng.Intn(keys))
					b := byte('a' + rng.Intn(26))
					batch = append(batch, mkRMW(k, b))
					shadow[k] = append(shadow[k], b)
				}
				if ep == 3 {
					dev.SetFailAfter(int64(rng.Intn(40) + 1))
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							if r != nvm.ErrInjectedCrash {
								panic(r)
							}
							err = nvm.ErrInjectedCrash
						}
					}()
					_, e := db.RunEpoch(batch)
					return e
				}()
				if err == nvm.ErrInjectedCrash {
					crashed = true
					dev.Crash(nvm.CrashStrict, seed)
					db2, rep := recoverTestDB(t, dev, 2)
					// The epoch either replayed fully or not at all.
					if rep.ReplayedEpoch != 0 {
						model = shadow
					}
					for k, v := range model {
						wantGet(t, db2, k, v)
					}
					db = db2
				} else if err != nil {
					t.Fatal(err)
				} else {
					model = shadow
				}
			}
			if !crashed {
				t.Fatal("fail-point never fired; lower the threshold")
			}
		})
	}
}

func cloneModel(m map[uint64][]byte) map[uint64][]byte {
	c := make(map[uint64][]byte, len(m))
	for k, v := range m {
		c[k] = append([]byte(nil), v...)
	}
	return c
}

func TestRecoveryWithChaosEviction(t *testing.T) {
	// With chaos eviction, arbitrary lines become durable at arbitrary
	// times — including half-written version descriptors. Recovery must
	// repair them all.
	for seed := int64(1); seed <= 10; seed++ {
		opts := testOpts(2)
		dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithChaosEviction(3, seed))
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		var load []*Txn
		for i := uint64(0); i < 10; i++ {
			load = append(load, mkInsert(i, bytes.Repeat([]byte{byte(i)}, 100)))
		}
		if _, err := db.RunEpoch(load); err != nil {
			t.Fatal(err)
		}
		// A couple of committed epochs.
		for e := 0; e < 2; e++ {
			var batch []*Txn
			for i := uint64(0); i < 10; i++ {
				batch = append(batch, mkRMW(i, byte('0'+i)))
			}
			if _, err := db.RunEpoch(batch); err != nil {
				t.Fatal(err)
			}
		}
		// Log one more epoch, then crash before executing it.
		batch := []*Txn{mkSet(3, []byte("after")), mkDelete(7)}
		logTxns(t, db, 4, batch)
		dev.Crash(nvm.CrashRandom, seed)

		db2, rep := recoverTestDB(t, dev, 2)
		if rep.ReplayedEpoch != 4 {
			t.Fatalf("seed %d: replay = %d, want 4", seed, rep.ReplayedEpoch)
		}
		wantGet(t, db2, 3, []byte("after"))
		wantGet(t, db2, 7, nil)
		for i := uint64(0); i < 10; i++ {
			if i == 3 || i == 7 {
				continue
			}
			want := append(bytes.Repeat([]byte{byte(i)}, 100), byte('0'+i), byte('0'+i))
			wantGet(t, db2, i, want)
		}
	}
}

func TestRecoveryRepairsTornDescriptors(t *testing.T) {
	// Construct the §4.5 torn states by hand and verify repair.
	db, dev := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v1data"))})
	mustRun(t, db, []*Txn{mkSet(1, []byte("v2data"))})

	rs, _ := db.idx.Get(kvKey(1))
	r := db.rowRef(rs.nvOff)

	// Case 1: GC copied v2's SID into v1 but not the pointer. Simulate:
	// set v1.sid = v2.sid, persist, leave pointers differing. Repair must
	// complete the whole interrupted collection: v1 becomes v2's content
	// AND v2 is reset, so the row cannot be re-queued for a second
	// collection that would free the value v1 now references.
	v2 := r.readVersion(2)
	dev.Store64(r.verOff(1)+verSID, v2.sid)
	dev.Persist(r.verOff(1), 8)
	dev.Crash(nvm.CrashAll, 1)

	db2, rep := recoverTestDB(t, dev, 1)
	if rep.RowsRepaired != 1 {
		t.Fatalf("RowsRepaired = %d, want 1", rep.RowsRepaired)
	}
	rs2, _ := db2.idx.Get(kvKey(1))
	r2 := db2.rowRef(rs2.nvOff)
	nv1, nv2 := r2.readVersion(1), r2.readVersion(2)
	if nv1 != (version{sid: v2.sid, ptr: v2.ptr, size: v2.size}) {
		t.Fatalf("case 1 copy not finished: v1=%+v want %+v", nv1, v2)
	}
	if !nv2.isNull() || nv2.ptr != 0 || nv2.size != 0 {
		t.Fatalf("case 1 must complete the collection: v2=%+v, want null", nv2)
	}
	wantGet(t, db2, 1, []byte("v2data"))
}

func TestRecoveryRepairsHalfResetV2(t *testing.T) {
	// Case 2: GC reset v2.sid to null but crashed before clearing the
	// pointer.
	db, dev := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v1data"))})
	mustRun(t, db, []*Txn{mkSet(1, []byte("v2data"))})

	rs, _ := db.idx.Get(kvKey(1))
	r := db.rowRef(rs.nvOff)
	// First make v1 := v2 (completed copy), then half-reset v2.
	v2 := r.readVersion(2)
	r.writeVersion(1, v2)
	dev.Store64(r.verOff(2)+verSID, 0)
	dev.Persist(rs.nvOff, 64)
	dev.Crash(nvm.CrashAll, 1)

	db2, rep := recoverTestDB(t, dev, 1)
	if rep.RowsRepaired != 1 {
		t.Fatalf("RowsRepaired = %d", rep.RowsRepaired)
	}
	rs2, _ := db2.idx.Get(kvKey(1))
	r2 := db2.rowRef(rs2.nvOff)
	if nv2 := r2.readVersion(2); nv2.ptr != 0 || nv2.size != 0 {
		t.Fatalf("case 2 not repaired: %+v", nv2)
	}
	wantGet(t, db2, 1, []byte("v2data"))
}

func TestRecoverDeleteReplayed(t *testing.T) {
	db, dev := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x")), mkInsert(2, []byte("y"))})
	logTxns(t, db, 2, []*Txn{mkDelete(1)})
	dev.Crash(nvm.CrashStrict, 5)
	db2, rep := recoverTestDB(t, dev, 2)
	if rep.ReplayedEpoch != 2 {
		t.Fatalf("rep = %+v", rep)
	}
	wantGet(t, db2, 1, nil)
	wantGet(t, db2, 2, []byte("y"))
}

func TestRecoverInsertReverted(t *testing.T) {
	// Inserts of a crashed, unlogged epoch must vanish (allocator revert).
	db, dev := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x"))})
	// Simulate a crash mid-insert-step of epoch 2: allocate rows by
	// running the epoch with a fail-point armed early.
	fired := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrInjectedCrash {
					panic(r)
				}
				fired = true
			}
		}()
		dev.SetFailAfter(5) // inside the epoch-2 persists
		db.RunEpoch([]*Txn{mkInsert(50, []byte("ghost")), mkInsert(51, []byte("ghost2"))})
	}()
	if !fired {
		t.Fatal("fail-point never fired")
	}
	dev.Crash(nvm.CrashStrict, 2)
	db2, rep := recoverTestDB(t, dev, 2)
	wantGet(t, db2, 1, []byte("x"))
	switch rep.ReplayedEpoch {
	case 0:
		wantGet(t, db2, 50, nil)
		wantGet(t, db2, 51, nil)
	case 2:
		wantGet(t, db2, 50, []byte("ghost"))
		wantGet(t, db2, 51, []byte("ghost2"))
	}
}

func TestRecoverCounters(t *testing.T) {
	db, dev := openTestDB(t, 2)
	db.CounterAdd(3, 41)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x"))}) // checkpoint persists counters
	db.CounterAdd(3, 100)                            // not checkpointed
	dev.Crash(nvm.CrashStrict, 1)
	db2, _ := recoverTestDB(t, dev, 2)
	if got := db2.CounterGet(3); got != 41 {
		t.Fatalf("counter = %d, want 41 (checkpointed value)", got)
	}
}

func TestDoubleCrashDuringRecovery(t *testing.T) {
	// Crash, begin recovery replay, crash again mid-replay, recover again:
	// the final state must still be exact.
	db, dev := openTestDB(t, 2)
	var load []*Txn
	for i := uint64(0); i < 10; i++ {
		load = append(load, mkInsert(i, []byte{byte(i)}))
	}
	mustRun(t, db, load)
	batch := []*Txn{mkRMW(1, 'p'), mkRMW(2, 'q'), mkRMW(1, 'r')}
	logTxns(t, db, 2, batch)
	dev.Crash(nvm.CrashStrict, 11)

	// First recovery: crash during replay.
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvm.ErrInjectedCrash {
				panic(r)
			}
		}()
		dev.SetFailAfter(10)
		Recover(dev, testOpts(2))
	}()
	dev.Crash(nvm.CrashStrict, 12)

	// Second recovery must complete and produce the exact state.
	db2, rep := recoverTestDB(t, dev, 2)
	if rep.ReplayedEpoch != 2 {
		t.Fatalf("rep = %+v", rep)
	}
	wantGet(t, db2, 1, []byte{1, 'p', 'r'})
	wantGet(t, db2, 2, []byte{2, 'q'})
}

func TestRecoverLayoutMismatch(t *testing.T) {
	db, dev := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x"))})
	bad := testOpts(2)
	bad.Layout.RowsPerCore = 4096
	if err := bad.Layout.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev, bad); err == nil {
		t.Fatal("layout mismatch accepted")
	}
}

func TestRecoverUnformattedDevice(t *testing.T) {
	opts := testOpts(1)
	dev := nvm.New(opts.Layout.TotalBytes())
	if _, _, err := Recover(dev, opts); err == nil {
		t.Fatal("recover on unformatted device succeeded")
	}
}
