package core

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// TestWatchdogCommitterStallIntegration is the end-to-end anomaly-detection
// path: a pipelined engine with a commit-stall fail-point armed on the
// device, a watchdog driven synchronously with synthetic timestamps, and an
// incident file whose evidence must bracket the stall — the commit handoff
// entered the flight recorder before the trigger, and the durable publish
// lands after the committer finally drains.
func TestWatchdogCommitterStallIntegration(t *testing.T) {
	dir := t.TempDir()
	o := obs.New(obs.Config{Hists: true, TxnTrace: true, TxnSampleEvery: 1, Cores: 2})
	opts := testOpts(2)
	opts.Pipeline = true
	opts.Obs = o
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	mustRun(t, db, []*Txn{mkInsert(1, []byte("one")), mkInsert(2, []byte("two"))})
	mustRun(t, db, []*Txn{mkRMW(1, 'a')})
	db.WaitDurable()

	// Arm the stall: every commit fence now busy-waits, so the background
	// committer of the next epoch visibly falls behind.
	const stall = time.Second
	dev.SetCommitStall(stall)
	start := time.Now()
	mustRun(t, db, []*Txn{mkSet(2, []byte("v2"))})

	if db.Epoch() <= db.DurableEpoch() {
		t.Fatalf("stalled committer already durable: epoch %d durable %d", db.Epoch(), db.DurableEpoch())
	}

	// Drive the watchdog with a synthetic 3s gap while the committer is
	// mid-stall: the real window is the stall duration, the detector math
	// sees a 3s-old durable epoch.
	wd := o.NewWatchdog(obs.WatchConfig{
		MaxDurableLag: 100, // isolate the stall detector
		StallAfter:    2 * time.Second,
		IncidentDir:   dir,
		Cooldown:      time.Hour,
	}, obs.WatchTargets{Epoch: db.Epoch, DurableEpoch: db.DurableEpoch})
	t1 := time.Now()
	wd.Tick(t1)
	wd.Tick(t1.Add(3 * time.Second))

	incs := wd.Incidents()
	if len(incs) != 1 || incs[0].Reason != obs.ReasonCommitterStall {
		t.Fatalf("incidents = %+v, want one committer-stall", incs)
	}

	// Let the committer drain and confirm nothing was lost to the stall.
	dev.SetCommitStall(0)
	db.WaitDurable()
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("commit stall not charged: epoch drained in %v < %v", elapsed, stall)
	}
	if db.DurableEpoch() != db.Epoch() {
		t.Fatalf("durable epoch %d never caught up to %d", db.DurableEpoch(), db.Epoch())
	}
	wantGet(t, db, 2, []byte("v2"))

	// The incident file must parse back with the evidence snapshot.
	data, err := os.ReadFile(incs[0].File)
	if err != nil {
		t.Fatal(err)
	}
	var inc obs.Incident
	if err := json.Unmarshal(data, &inc); err != nil {
		t.Fatalf("incident file is not valid JSON: %v", err)
	}
	if inc.Reason != obs.ReasonCommitterStall || inc.Epoch <= inc.DurableEpoch {
		t.Fatalf("incident evidence inconsistent: %+v", inc)
	}
	if inc.EpochHist == nil || inc.EpochHist.Count == 0 {
		t.Fatal("incident lacks the epoch histogram")
	}
	if inc.Breakdown == nil || inc.Breakdown.Spans == 0 {
		t.Fatal("incident lacks the txn breakdown")
	}
	if len(inc.Flight) == 0 {
		t.Fatal("incident lacks the flight tail")
	}

	// Flight events bracket the stall: the handoff to the committer precedes
	// the watchdog trigger, and the durable publish of the stalled epoch
	// follows it.
	var handoffTS, triggerTS, publishTS int64
	stalledEpoch := db.Epoch()
	for _, e := range o.Flight().Events(0) {
		switch e.Type {
		case obs.EvCommitHandoff:
			if e.Epoch == stalledEpoch && handoffTS == 0 {
				handoffTS = e.TS
			}
		case obs.EvWatchTrigger:
			triggerTS = e.TS
		case obs.EvDurablePublish:
			if e.Epoch == stalledEpoch {
				publishTS = e.TS
			}
		}
	}
	if handoffTS == 0 || triggerTS == 0 || publishTS == 0 {
		t.Fatalf("flight missing bracketing events: handoff=%d trigger=%d publish=%d", handoffTS, triggerTS, publishTS)
	}
	if !(handoffTS < triggerTS && triggerTS < publishTS) {
		t.Fatalf("flight events out of order: handoff=%d trigger=%d publish=%d", handoffTS, triggerTS, publishTS)
	}

	// The stalled epoch completed with a visible durable lag.
	lag := o.DurableLagCounts()
	var lagged uint64
	for i := 1; i < len(lag); i++ {
		lagged += lag[i]
	}
	if lagged == 0 {
		t.Fatalf("durable-lag distribution never left bucket 0: %v", lag)
	}
}

// TestTxnLifecycleBreakdownIntegration runs observed epochs with 1-in-1
// sampling and checks the tail-latency decomposition is internally
// consistent: every published span carries a positive total, phase sums
// reconstruct span totals, and the sampled count matches the executed
// transactions.
func TestTxnLifecycleBreakdownIntegration(t *testing.T) {
	o := obs.New(obs.Config{Hists: true, TxnTrace: true, TxnSampleEvery: 1, Cores: 2})
	opts := testOpts(2)
	opts.AsyncPersist = true
	opts.Obs = o
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, db, []*Txn{mkInsert(1, []byte("one")), mkInsert(2, []byte("two"))})
	mustRun(t, db, []*Txn{mkRMW(1, 'a'), mkRMW(2, 'b'), mkRMW(1, 'c')})
	db.WaitDurable()

	tt := o.TxnTrace()
	if got := tt.PublishedCount(); got != 5 {
		t.Fatalf("published %d spans at 1-in-1 over 5 txns", got)
	}
	spans := tt.Spans()
	if len(spans) != 5 {
		t.Fatalf("retained %d spans, want 5", len(spans))
	}
	for _, s := range spans {
		if s.Total() <= 0 {
			t.Fatalf("span with non-positive total: %+v", s)
		}
		var sum int64
		for _, d := range s.Phases() {
			if d < 0 {
				t.Fatalf("negative phase in %+v", s)
			}
			sum += d
		}
		if sum != s.Total() {
			t.Fatalf("phases sum to %d, total %d: %+v", sum, s.Total(), s)
		}
		if s.Phases()[obs.TxnExecute] <= 0 {
			t.Fatalf("executed span with zero execute phase: %+v", s)
		}
		if s.Epoch == 0 {
			t.Fatalf("span never assigned an epoch: %+v", s)
		}
	}
	b := obs.Breakdown(spans)
	if b.Spans != 5 {
		t.Fatalf("breakdown folded %d spans, want 5", b.Spans)
	}
	if b.Total.MaxNS <= 0 {
		t.Fatalf("breakdown total empty: %+v", b.Total)
	}
	// Hand-batched RunEpoch stamps no submit queue: the queue phase must
	// read zero, not garbage.
	if q := b.Phases[obs.TxnQueue]; q.MaxNS != 0 {
		t.Fatalf("hand-batched spans accrued queue time: %+v", q)
	}
	if e := b.Phases[obs.TxnExecute]; e.P50NS <= 0 {
		t.Fatalf("execute phase percentile empty: %+v", e)
	}
}
