package core

import (
	"errors"
	"sync"
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// The depth-1 epoch pipeline (Options.Pipeline) hands epoch N's entire
// checkpoint — parallel pool staging, counters, index journal, checkpoint
// fence, epoch record — to a background committer while the caller runs
// epoch N+1. These tests pin the pipeline's contract: logical-state
// equivalence with the serial path, the staging-token and commit-join
// handoffs never reordering durability, recovery after WaitDurable, and an
// injected crash inside the committer surfacing (stickily) at the next
// barrier.

func pipelineOpts(cores int) Options {
	opts := testOpts(cores)
	opts.Pipeline = true
	return opts
}

// pipelineBatch exercises the allocator paths the pipeline overlaps:
// inserts (insertStep allocation behind the staging token), updates of
// pooled values (dual-version rewrites feeding major GC), and deletes
// (ring frees the committer stages and the next epoch adopts).
func pipelineBatch(e int) []*Txn {
	val := func(k uint64, tag byte) []byte {
		v := make([]byte, 200) // pooled (beyond the inline half), so GC runs
		v[0], v[1], v[2] = byte(k), byte(k>>8), tag
		return v
	}
	var b []*Txn
	for i := 0; i < 12; i++ {
		k := uint64(e*100 + i)
		b = append(b, mkInsert(k, val(k, byte(e))))
	}
	if e > 0 {
		for i := 0; i < 8; i++ {
			k := uint64((e-1)*100 + i)
			b = append(b, mkSet(k, val(k, byte(e)+1)))
		}
		for i := 8; i < 10; i++ {
			b = append(b, mkDelete(uint64((e-1)*100+i)))
		}
	}
	return b
}

func TestPipelineMatchesSerialState(t *testing.T) {
	run := func(opts Options) (uint64, uint64) {
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 6; e++ {
			mustRun(t, db, pipelineBatch(e))
		}
		db.WaitDurable()
		return db.LogicalDigest(), db.DurableEpoch()
	}
	serialDig, serialDur := run(testOpts(2))
	pipeDig, pipeDur := run(pipelineOpts(2))
	if serialDig != pipeDig {
		t.Fatalf("pipeline diverged from serial: %016x != %016x", pipeDig, serialDig)
	}
	if serialDur != pipeDur {
		t.Fatalf("durable epoch diverged: pipeline %d, serial %d", pipeDur, serialDur)
	}
}

func TestPipelineDurableEpochLagsAtMostOne(t *testing.T) {
	opts := pipelineOpts(2)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		mustRun(t, db, pipelineBatch(e))
		ep, dur := db.Epoch(), db.DurableEpoch()
		if dur > ep || ep-dur > 1 {
			t.Fatalf("epoch %d: durable epoch %d out of [epoch-1, epoch]", ep, dur)
		}
	}
	db.WaitDurable()
	if ep, dur := db.Epoch(), db.DurableEpoch(); dur != ep {
		t.Fatalf("after WaitDurable: durable epoch %d != epoch %d", dur, ep)
	}
}

func TestPipelineRecoversAfterWaitDurable(t *testing.T) {
	opts := pipelineOpts(2)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		mustRun(t, db, pipelineBatch(e))
	}
	db.WaitDurable()
	want := db.LogicalDigest()

	snap := dev.Snapshot()
	d2 := snap.NewDevice()
	d2.Crash(nvm.CrashStrict, 0)
	rdb, rep, err := Recover(d2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointEpoch != db.Epoch() {
		t.Fatalf("recovered checkpoint %d, want %d", rep.CheckpointEpoch, db.Epoch())
	}
	if got := rdb.LogicalDigest(); got != want {
		t.Fatalf("recovered digest %016x != %016x", got, want)
	}
	if err := rdb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineMidFlightRecovery crashes the device while epoch N's commit
// genuinely overlaps epoch N+1: after submitting N+1 without draining, the
// snapshot is taken post-WaitDurable and recovery must land on N+1 exactly.
func TestPipelineMidFlightRecovery(t *testing.T) {
	opts := pipelineOpts(1)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		mustRun(t, db, pipelineBatch(e))
	}
	// Two back-to-back epochs with no barrier between: 3's checkpoint runs
	// behind 4's front.
	mustRun(t, db, pipelineBatch(3))
	mustRun(t, db, pipelineBatch(4))
	db.WaitDurable()
	want := db.LogicalDigest()

	rdb, rep, err := Recover(dev.Snapshot().NewDevice(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := rdb.LogicalDigest(); got != want {
		t.Fatalf("recovered digest %016x != %016x (ckpt=%d replayed=%d)",
			got, want, rep.CheckpointEpoch, rep.ReplayedEpoch)
	}
}

func TestPipelineCrashInCommitSurfacesAtBarrier(t *testing.T) {
	opts := pipelineOpts(1)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, db, asyncBatch(0))
	db.WaitDurable()

	// Shape-identical epochs issue identical flush sequences; the last
	// flush of an epoch is the epoch record's write-back, issued by the
	// background committer.
	mustRun(t, db, asyncBatch(1))
	db.WaitDurable()
	dev.ResetStats()
	mustRun(t, db, asyncBatch(2))
	db.WaitDurable()
	flushesPerEpoch := dev.Stats().Flushes

	caught := func() (r any) {
		defer func() { r = recover() }()
		dev.SetFailAfter(flushesPerEpoch) // dies on the epoch record flush
		if _, err := db.RunEpoch(asyncBatch(3)); err != nil {
			t.Fatal(err)
		}
		db.WaitDurable()
		return nil
	}()
	dev.SetFailAfter(0)
	if caught == nil {
		t.Fatal("injected crash never surfaced")
	}
	err, ok := caught.(error)
	if !ok || !errors.Is(err, nvm.ErrInjectedCrash) {
		t.Fatalf("surfaced panic %v, want ErrInjectedCrash", caught)
	}
	// Sticky: every later barrier re-raises.
	second := func() (r any) {
		defer func() { r = recover() }()
		db.WaitDurable()
		return nil
	}()
	if second == nil {
		t.Fatal("persist panic was not sticky")
	}
}

// TestPipelineRaceStress drives many overlapped epochs across cores so the
// race detector can watch the handoffs: staging tokens vs insertStep/major
// GC allocation, the commit join vs initFence, and the committer's
// counter/journal stores vs the front's WAL writes. Run under -race in CI.
func TestPipelineRaceStress(t *testing.T) {
	opts := pipelineOpts(4)
	ov := obs.New(obs.Config{Cores: 4})
	opts.Obs = ov
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	epochs := 30
	if testing.Short() {
		epochs = 10
	}
	for e := 0; e < epochs; e++ {
		mustRun(t, db, pipelineBatch(e))
	}
	db.WaitDurable()
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Concurrent read-side observers must also be race-free against the
	// committer: stats and durable-epoch polling mirror what nvtop does.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = db.DurableEpoch()
				_ = ov.Stats()
			}
		}
	}()
	for e := epochs; e < epochs+6; e++ {
		mustRun(t, db, pipelineBatch(e))
	}
	db.WaitDurable()
	close(stop)
	wg.Wait()
}
