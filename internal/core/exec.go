package core

import (
	"fmt"
	"time"

	"nvcaracal/internal/index"
	"nvcaracal/internal/obs"
)

// read resolves a read at the transaction's serial id (§4.1):
//
//  1. If the row has a version array this epoch, binary-search the latest
//     version below the reader's sid, waiting out PENDING slots and
//     skipping IGNORE markers.
//  2. Otherwise serve from the cached version if present.
//  3. Otherwise read the persistent row from NVMM (at most one NVMM read
//     per row per epoch in the NVCaracal design, since the result is
//     cached).
func (db *DB) read(c *Ctx, key index.Key) ([]byte, bool) {
	rs, ok := db.idx.Get(key)
	if !ok {
		return nil, false
	}
	epoch := SIDEpoch(c.txn.sid)
	if va := rs.currentVA(epoch); va != nil {
		vv := va.resolveRead(c.txn.sid)
		return db.materialize(vv)
	}
	// No writes to this row in the epoch: serve from the committed state
	// (cached version or persistent row).
	return db.readCommittedRow(c.core, epoch, rs)
}

// materialize converts a transient version value into user-visible bytes.
func (db *DB) materialize(vv *versionVal) ([]byte, bool) {
	switch vv.kind {
	case vkData:
		if vv.nvOff >= 0 {
			// ModeAllNVMM: the value lives in NVMM scratch; every access is
			// a charged device read.
			return db.dev.Slice(vv.nvOff, int64(vv.nvLen)), true
		}
		return vv.data, true
	case vkDeleted, vkNotFound:
		return nil, false
	default:
		panic("core: materialize on ignore version")
	}
}

// write publishes the transaction's version of a row and, if this is the
// row's final write of the epoch, persists it to NVMM.
func (db *DB) write(c *Ctx, key index.Key, val []byte) {
	rs, va := db.lookupVA(c, key)
	slot := va.slotOf(c.txn.sid)

	// Copy the payload into the worker's transient arena: intermediate
	// versions live (and die) with the epoch.
	data := db.arenas.Core(c.core).Alloc(len(val))
	copy(data, val)
	if a := db.obs.Attrib(); a != nil {
		// Every logical row write, final or not; the counterfactual charges
		// the value lines plus one descriptor line, what a persist-every-
		// write design would pay for this update.
		a.AddLogicalWrite(c.core, int64(len(val)), int64(len(val)+nvLineSize-1)/nvLineSize+1)
	}
	vv := db.placeTransient(c.core, data)
	isFinal := c.txn.sid == va.maxSID
	if db.opts.Mode == ModeHybrid && !isFinal {
		// Hybrid baseline: every intermediate update is written to NVMM
		// immediately (the final write goes to the persistent row below),
		// though reads are served from DRAM — one NVMM write per update,
		// like Zen or WBL.
		off := db.scratchAlloc(c.core, len(val))
		td := db.dev.Tag(obs.CauseIntermediate)
		td.WriteAt(val, off)
		td.Flush(off, int64(len(val)))
	}
	va.vals[slot].Store(vv)

	if isFinal {
		db.finalize(c.core, rs, va, slot)
	} else {
		db.met.At(c.core).AddTransient()
	}
}

// writeDelete publishes a deletion version.
func (db *DB) writeDelete(c *Ctx, key index.Key) {
	rs, va := db.lookupVA(c, key)
	slot := va.slotOf(c.txn.sid)
	if a := db.obs.Attrib(); a != nil {
		a.AddLogicalWrite(c.core, 0, 1) // a persist-all design still writes the descriptor
	}
	va.vals[slot].Store(deletedVal)
	if c.txn.sid == va.maxSID {
		db.finalize(c.core, rs, va, slot)
	} else {
		db.met.At(c.core).AddTransient()
	}
}

// writeIgnore publishes an IGNORE marker for a declared write the
// transaction did not perform (user abort, §4.6, or an over-declared write
// set). If the ignored write was the row's final write, the latest
// non-ignored version of the epoch is persisted in its stead.
func (db *DB) writeIgnore(c *Ctx, key index.Key) {
	rs, va := db.lookupVA(c, key)
	slot := va.slotOf(c.txn.sid)
	va.vals[slot].Store(ignoreVal)
	if c.txn.sid == va.maxSID {
		db.finalize(c.core, rs, va, slot)
	}
}

func (db *DB) lookupVA(c *Ctx, key index.Key) (*rowState, *versionArray) {
	rs, ok := db.idx.Get(key)
	if !ok {
		panic(fmt.Sprintf("core: write to unindexed row table=%d key=%d", key.Table, key.ID))
	}
	va := rs.currentVA(SIDEpoch(c.txn.sid))
	if va == nil {
		panic("core: write without version array (append step missed the op)")
	}
	return rs, va
}

// finalize handles the epoch's final write to a row: it resolves which
// version is actually final (skipping trailing IGNOREs), updates the DRAM
// cached version, and writes the persistent row in NVMM with the
// dual-version protocol.
func (db *DB) finalize(core int, rs *rowState, va *versionArray, slot int) {
	idx, vv := va.latestCommitted(slot)
	if idx == 0 {
		// Everything after the initial version was ignored: the persistent
		// row keeps its previous state (§4.6). Restore the cached version
		// that the append step deleted.
		switch vv.kind {
		case vkData:
			if db.cacheOn() && db.shouldCache(va) {
				data, _ := db.materialize(vv)
				db.installCached(core, rs, data, va.epoch)
			}
		case vkNotFound:
			// The row was inserted this epoch and every write (including
			// the insert) aborted: the row must not exist.
			db.dropRow(core, rs)
		}
		return
	}
	sid := va.sids[idx]
	switch vv.kind {
	case vkDeleted:
		db.met.At(core).AddPersistent()
		db.dropRow(core, rs)
	case vkData:
		db.met.At(core).AddPersistent()
		data, _ := db.materialize(vv)
		if db.cacheOn() && db.shouldCache(va) {
			// Create the cached version before the persistent write so the
			// value is available from DRAM first (§4.1).
			db.installCached(core, rs, data, va.epoch)
		}
		db.persistFinal(core, rs, sid, data)
	default:
		panic("core: latestCommitted returned ignore")
	}
}

// shouldCache decides whether a final write creates a cached version. With
// CacheHotOnly (§7 extension), only rows the initialization phase could
// identify as hot qualify: multiple writers this epoch (version array
// longer than initial + one), or a row that was already cached.
func (db *DB) shouldCache(va *versionArray) bool {
	if !db.opts.CacheHotOnly {
		return true
	}
	return va.wasCached || len(va.sids) > 2
}

// installCached publishes a DRAM cached version for the row and queues it
// for epoch-based eviction. data is copied: cached versions outlive the
// transient pool.
func (db *DB) installCached(core int, rs *rowState, data []byte, epoch uint64) {
	cv := &cachedVersion{data: append([]byte(nil), data...)}
	cv.stamp.Store(epoch)
	// Swap keeps the byte accounting exact even when two readers race to
	// install a cached version for the same row.
	if old := rs.cached.Swap(cv); old != nil {
		db.met.At(core).CacheDrop(int64(len(old.data)))
	}
	db.met.At(core).CacheAdd(int64(len(cv.data)))
	if rs.onEvictList.CompareAndSwap(false, true) {
		db.evictBuf[core] = append(db.evictBuf[core], rs)
	}
}

// dropRow deletes a row: its persistent slot and any non-inline values are
// freed into the executing core's pools (revertible: a crash before the
// checkpoint replays the epoch and repeats the deletion), and the index
// entry is removed at the epoch boundary so in-flight readers still
// resolve.
func (db *DB) dropRow(core int, rs *rowState) {
	r := db.rowRefTag(rs.nvOff, obs.CausePersistFinal)
	for _, which := range [2]int{1, 2} {
		v := r.readVersion(which)
		if !v.isNull() && !v.isInline() && v.ptr != ptrNone {
			db.freeValue(core, int64(v.ptr))
		}
	}
	db.rowPools[core].Free(rs.nvOff)
	if cv := rs.cached.Load(); cv != nil {
		rs.cached.Store(nil)
		db.met.At(core).CacheDrop(int64(len(cv.data)))
	}
	db.deferredIndexDeletes[core] = append(db.deferredIndexDeletes[core],
		index.Key{Table: r.table(), ID: r.key()})
}

// persistFinal writes the final version of a row into its persistent slot
// using the dual-version protocol (§4.4–4.5):
//
//   - If v2 is empty, the new version goes there; v1 keeps the checkpoint.
//   - If v2 holds this sid already, we are replaying a crashed epoch whose
//     final write was (partially) persisted: overwrite it (repair case 3).
//   - Otherwise v2 holds the previous checkpoint. If v1 is empty, v2 is
//     copied down to v1 (preserving the checkpoint); if v1 holds an older
//     stale version, the minor collector reclaims it in place (inline
//     values swap slots; non-inline staleness is impossible here because
//     the major collector cleaned it during initialization).
//   - Finally the new version is placed: inline if it fits in the row's
//     inline heap, otherwise in a slot from the core's value pool.
func (db *DB) persistFinal(core int, rs *rowState, sid uint64, data []byte) {
	r := db.rowRefTag(rs.nvOff, obs.CausePersistFinal)
	v1 := r.readVersion(1)
	v2 := r.readVersion(2)

	replayOverwrite := v2.sid == sid
	if !replayOverwrite && !v2.isNull() {
		// v2 is the most recent checkpointed version; move it to v1.
		minor := !v1.isNull()
		if minor {
			// Minor GC: v1 is the stale version. It must be inline — the
			// major collector handles non-inline staleness during init.
			if !v1.isInline() && v1.ptr != ptrNone {
				panic(fmt.Sprintf("core: non-inline stale version reached the execution phase (row off=%d key=%d/%d v1{sid=%x ptr=%d} v2{sid=%x ptr=%d inline=%v} sid=%x)",
					rs.nvOff, r.table(), r.key(), v1.sid, v1.ptr, v2.sid, v2.ptr, v2.isInline(), sid))
			}
			db.met.At(core).AddMinorGC()
		}
		timed := minor && db.obs.On()
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		if minor {
			r.retag(obs.CauseMinorGC).writeVersion(1, v2)
		} else {
			r.writeVersion(1, v2)
		}
		if timed {
			db.obs.Span(core, SIDEpoch(sid), obs.PhaseMinorGC, t0)
		}
		v1 = v2
	}

	// Place the new value: inline slot not used by v1, or a value slot.
	var ptr uint64
	if int64(len(data)) <= r.inlineHalf() {
		ptr = freeInlineSlot(v1)
	} else {
		k := db.layout.ValueClassFor(int64(len(data)))
		if k < 0 {
			panic(fmt.Sprintf("core: value of %d bytes exceeds the largest value class %d", len(data), db.layout.MaxValueSize()))
		}
		off, err := db.valPools[k][core].Alloc()
		if err != nil {
			panic(fmt.Sprintf("core: value pool exhausted: %v", err))
		}
		ptr = uint64(off)
	}
	r.writeFinal(sid, ptr, data)
	if a := db.obs.Attrib(); a != nil {
		a.AddCommitted(core, int64(len(data)))
	}

	// If the stale first version is non-inline, queue the row for the
	// major collector; if the minor collector is disabled, all stale rows
	// go to the major list (Figure 9's ablation).
	v1 = r.readVersion(1)
	if !v1.isNull() && v2ReplacedNeedsGC(v1, db.opts.MinorGCEnabled) {
		db.gcPending[core] = append(db.gcPending[core], rs)
	}
}

// freeValue returns a persistent value slot to the freeing core's pool of
// the slot's size class.
func (db *DB) freeValue(core int, off int64) {
	k := db.layout.ValueClassOfOffset(off)
	if k < 0 {
		panic(fmt.Sprintf("core: freeing offset %d outside any value region", off))
	}
	db.valPools[k][core].Free(off)
}

// freeValueGC returns a persistent value slot to the freeing core's pool as
// a non-revertible stamped GC entry (see Pool.FreeGC): recovery re-adopts
// it even though the freeing epoch never checkpointed, because the major
// collector may already have overwritten the only pointer to the slot.
func (db *DB) freeValueGC(core int, off int64, epoch uint64) {
	k := db.layout.ValueClassOfOffset(off)
	if k < 0 {
		panic(fmt.Sprintf("core: freeing offset %d outside any value region", off))
	}
	db.valPools[k][core].FreeGC(off, epoch)
}

// v2ReplacedNeedsGC reports whether the stale first version requires the
// major collector next epoch.
func v2ReplacedNeedsGC(v1 version, minorEnabled bool) bool {
	if !minorEnabled {
		return true
	}
	return !v1.isInline() && v1.ptr != ptrNone
}
