package core

import (
	"fmt"

	"nvcaracal/internal/index"
)

// This file exports the two oracles of the crash-consistency model checker
// (internal/crashcheck): StateDigest summarizes the committed logical state
// so a recovered database can be compared against a crash-free reference
// run, and CheckInvariants verifies the structural invariants — index/row
// agreement, dual-version sanity, and allocator accounting — that hold
// between epochs regardless of workload.
//
// Both must be called between epochs (or right after Recover returns),
// with no epoch in flight.

// fnv64a is the 64-bit FNV-1a incremental hash.
type fnv64a uint64

const (
	fnvOffset64 fnv64a = 14695981039346656037
	fnvPrime64  fnv64a = 1099511628211
)

func (h *fnv64a) bytes(b []byte) {
	x := *h
	for _, c := range b {
		x = (x ^ fnv64a(c)) * fnvPrime64
	}
	*h = x
}

func (h *fnv64a) u64(v uint64) {
	x := *h
	for i := 0; i < 8; i++ {
		x = (x ^ fnv64a(byte(v))) * fnvPrime64
		v >>= 8
	}
	*h = x
}

func (h *fnv64a) u32(v uint32) {
	x := *h
	for i := 0; i < 4; i++ {
		x = (x ^ fnv64a(byte(v))) * fnvPrime64
		v >>= 8
	}
	*h = x
}

// StateDigest returns a digest of the committed state: every live row's
// key, version descriptors (SIDs and sizes), and value bytes, plus the
// persistent counters and per-pool allocation totals. Two databases that
// executed the same epochs — one crash-free, one crashed and recovered —
// must produce equal digests.
//
// Rows are combined order-independently (the index iterates in hash
// order), and value-slot offsets are deliberately excluded: Aria's commit
// phase assigns slots in map-iteration order, so offsets vary run to run
// while the logical state, the descriptor SIDs, and every per-pool total
// stay deterministic.
func (db *DB) StateDigest() uint64 {
	h := fnvOffset64
	db.logicalDigest(&h)
	for c := range db.rowPools {
		h.u64(uint64(db.rowPools[c].Bump()))
		h.u64(uint64(db.rowPools[c].FreeCount()))
	}
	for k := range db.valPools {
		for c := range db.valPools[k] {
			h.u64(uint64(db.valPools[k][c].Bump()))
			h.u64(uint64(db.valPools[k][c].FreeCount()))
		}
	}
	return uint64(h)
}

// LogicalDigest is StateDigest without the per-pool allocation totals:
// rows, version descriptors, value bytes, and persistent counters only.
//
// Under the epoch pipeline (Options.Pipeline) the totals are not
// replay-deterministic: freed ring slots become adoptable only once the
// previous epoch's checkpoint fence publishes the ring tail, so whether an
// overlapped allocation adopts a slot or bumps depends on how the
// committer interleaves with the front. The logical state is unaffected —
// crash checkers comparing pipelined runs digest with this and lean on
// CheckInvariants for allocator accounting.
func (db *DB) LogicalDigest() uint64 {
	h := fnvOffset64
	db.logicalDigest(&h)
	return uint64(h)
}

// logicalDigest folds the placement-independent state into h: every live
// row combined order-independently, then the persistent counters.
func (db *DB) logicalDigest(h *fnv64a) {
	var sum, xor, count uint64
	db.idx.Range(func(k index.Key, rs *rowState) bool {
		r := db.rowRef(rs.nvOff)
		rh := fnvOffset64
		rh.u32(k.Table)
		rh.u64(k.ID)
		for _, which := range [2]int{1, 2} {
			v := r.readVersion(which)
			rh.u64(v.sid)
			rh.u32(v.size)
			if !v.isNull() && v.size > 0 {
				rh.bytes(r.readValue(v))
			}
		}
		sum += uint64(rh)
		xor ^= uint64(rh)
		count++
		return true
	})
	h.u64(sum)
	h.u64(xor)
	h.u64(count)
	for i := range db.counters {
		h.u64(db.counters[i].Load())
	}
}

// CheckInvariants verifies the structural invariants of the between-epoch
// state and returns the first violation found:
//
//   - every free-list entry names a valid, unique slot (no double free);
//   - the index and a full row scan agree exactly: every live row slot is
//     indexed under its own header key, and every index entry resolves to
//     a live slot (no leaks, no dangling entries);
//   - dual-version descriptors are sane: v1 precedes v2, a completed
//     collection leaves no duplicate descriptor pair, inline versions
//     occupy distinct slots, and sizes fit their slots;
//   - every allocated value slot is referenced by exactly one version of
//     one live row, and no version references a free or unallocated slot
//     (no value leaks, no dangling pointers).
func (db *DB) CheckInvariants() error {
	// Row free lists: deletions free a slot into the executing core's pool,
	// so validity and duplicates are checked across the union.
	rowFree := make(map[int64]struct{})
	for c := range db.rowPools {
		for _, off := range db.rowPools[c].FreeList() {
			if err := db.checkRowSlot(off); err != nil {
				return fmt.Errorf("row free list (core %d): %w", c, err)
			}
			if _, dup := rowFree[off]; dup {
				return fmt.Errorf("row slot %d double-freed", off)
			}
			rowFree[off] = struct{}{}
		}
	}

	// Value free lists, same discipline. valFree doubles as the "currently
	// free" set for the dangling-pointer check below.
	valFree := make(map[int64]struct{})
	for k := range db.valPools {
		for c := range db.valPools[k] {
			for _, off := range db.valPools[k][c].FreeList() {
				if err := db.checkValSlot(off); err != nil {
					return fmt.Errorf("value free list (class %d, core %d): %w", k, c, err)
				}
				if _, dup := valFree[off]; dup {
					return fmt.Errorf("value slot %d double-freed", off)
				}
				valFree[off] = struct{}{}
			}
		}
	}

	// refs counts, per allocated value slot, how many row versions
	// reference it; it must end at exactly one for every slot.
	refs := make(map[int64]int)
	for k := range db.valPools {
		for c := range db.valPools[k] {
			pool := db.valPools[k][c]
			base := pool.DataBase()
			for i := int64(0); i < pool.Bump(); i++ {
				off := base + i*pool.SlotSize()
				if _, free := valFree[off]; !free {
					refs[off] = 0
				}
			}
		}
	}

	// Full row scan against the index.
	live := make(map[int64]index.Key)
	for c := range db.rowPools {
		pool := db.rowPools[c]
		base := db.layout.RowDataOff(c)
		for i := int64(0); i < pool.Bump(); i++ {
			off := base + i*db.layout.RowSize
			if _, free := rowFree[off]; free {
				continue
			}
			r := db.rowRef(off)
			key := index.Key{Table: r.table(), ID: r.key()}
			rs, ok := db.idx.Get(key)
			if !ok {
				return fmt.Errorf("row leak: live slot %d (key %v) not in index", off, key)
			}
			if rs.nvOff != off {
				return fmt.Errorf("duplicate key %v: index maps it to slot %d but a live row holds it at %d",
					key, rs.nvOff, off)
			}
			live[off] = key
			if err := db.checkRowVersions(r, key, refs, valFree); err != nil {
				return err
			}
		}
	}
	var idxErr error
	db.idx.Range(func(k index.Key, rs *rowState) bool {
		key, ok := live[rs.nvOff]
		if !ok {
			idxErr = fmt.Errorf("dangling index entry: key %v points at slot %d which is free or unallocated", k, rs.nvOff)
			return false
		}
		if key != k {
			idxErr = fmt.Errorf("index entry %v points at slot %d whose header says %v", k, rs.nvOff, key)
			return false
		}
		return true
	})
	if idxErr != nil {
		return idxErr
	}

	for off, n := range refs {
		switch {
		case n == 0:
			return fmt.Errorf("value leak: slot %d is allocated but no live row references it", off)
		case n > 1:
			return fmt.Errorf("value slot %d referenced by %d versions (aliasing)", off, n)
		}
	}
	return nil
}

// checkRowVersions validates one live row's descriptor pair and records
// its value references in refs.
func (db *DB) checkRowVersions(r rowRef, key index.Key, refs map[int64]int, valFree map[int64]struct{}) error {
	v1 := r.readVersion(1)
	v2 := r.readVersion(2)
	if !v1.isNull() && !v2.isNull() {
		if v1.sid >= v2.sid {
			return fmt.Errorf("row %v: version order violated: v1.sid=%d >= v2.sid=%d (an interrupted collection was not completed)",
				key, v1.sid, v2.sid)
		}
		if v1.isInline() && v2.isInline() && v1.ptr == v2.ptr {
			return fmt.Errorf("row %v: both versions occupy inline slot %d", key, v1.ptr)
		}
	}
	for _, which := range [2]int{1, 2} {
		v := r.readVersion(which)
		if v.isNull() {
			if v.ptr != 0 || v.size != 0 {
				return fmt.Errorf("row %v: null v%d has leftover ptr=%d size=%d (torn reset not repaired)",
					key, which, v.ptr, v.size)
			}
			continue
		}
		if v.isInline() {
			if int64(v.size) > r.inlineHalf() {
				return fmt.Errorf("row %v: v%d inline size %d exceeds slot %d", key, which, v.size, r.inlineHalf())
			}
			continue
		}
		if v.ptr == ptrNone {
			continue // explicit empty value (e.g. zero-length write)
		}
		off := int64(v.ptr)
		if err := db.checkValSlot(off); err != nil {
			return fmt.Errorf("row %v v%d: %w", key, which, err)
		}
		if _, free := valFree[off]; free {
			return fmt.Errorf("row %v v%d: dangling pointer: references freed value slot %d (use-after-free)",
				key, which, off)
		}
		n, allocated := refs[off]
		if !allocated {
			return fmt.Errorf("row %v v%d: references unallocated value slot %d (beyond bump)", key, which, off)
		}
		refs[off] = n + 1
		k := db.layout.ValueClassOfOffset(off)
		if pool := db.valPools[k][0]; int64(v.size) > pool.SlotSize() {
			return fmt.Errorf("row %v v%d: size %d exceeds class slot %d", key, which, v.size, pool.SlotSize())
		}
	}
	return nil
}

// checkRowSlot validates that off names a row slot inside some core's
// allocated (bump) region, slot-aligned.
func (db *DB) checkRowSlot(off int64) error {
	for c := range db.rowPools {
		base := db.layout.RowDataOff(c)
		end := base + db.rowPools[c].Bump()*db.layout.RowSize
		if off >= base && off < end {
			if (off-base)%db.layout.RowSize != 0 {
				return fmt.Errorf("row offset %d misaligned in core %d region", off, c)
			}
			return nil
		}
	}
	return fmt.Errorf("row offset %d outside every allocated row region", off)
}

// checkValSlot validates that off names a value slot inside some pool's
// allocated (bump) region, slot-aligned.
func (db *DB) checkValSlot(off int64) error {
	k := db.layout.ValueClassOfOffset(off)
	if k < 0 {
		return fmt.Errorf("value offset %d outside every value region", off)
	}
	for c := range db.valPools[k] {
		pool := db.valPools[k][c]
		base := pool.DataBase()
		end := base + pool.Bump()*pool.SlotSize()
		if off >= base && off < end {
			if (off-base)%pool.SlotSize() != 0 {
				return fmt.Errorf("value offset %d misaligned in class %d core %d region", off, k, c)
			}
			return nil
		}
	}
	return fmt.Errorf("value offset %d outside every allocated value region of class %d", off, k)
}
