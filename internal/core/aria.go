package core

import (
	"fmt"
	"time"

	"nvcaracal/internal/index"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/wal"
)

// This file implements the paper's §7 integration target: Aria-style
// deterministic concurrency control (Lu et al., VLDB 2020) on top of the
// same NVMM dual-version checkpointing substrate. Unlike the Caracal-style
// path (RunEpoch), Aria transactions do NOT declare write sets. Each epoch:
//
//  1. every transaction executes against a snapshot — the state as of the
//     previous epoch — buffering its writes and recording its read set;
//  2. a deterministic conflict-detection pass aborts any transaction that
//     read or wrote a key also written by a smaller-serial-id transaction
//     (RAW and WAW conflicts against the snapshot semantics);
//  3. the surviving transactions' writes are applied, at most one writer
//     per key, through the identical final-write path — one NVMM write per
//     row per epoch, dual-version checkpointing, logging, and recovery all
//     unchanged.
//
// Aborted transactions are returned for resubmission in a later epoch (the
// standard Aria discipline). Epochs of the two flavours can be freely
// interleaved on one database; the input log tags Aria epochs so recovery
// replays them with the same algorithm.

// AriaTxn is a deterministic transaction without a declared write set.
// Exec must be deterministic given the snapshot state and Input.
type AriaTxn struct {
	// TypeID identifies the transaction in the input log (namespaced
	// separately from Caracal-style types).
	TypeID uint16
	// Input is the logged parameter blob for replay.
	Input []byte
	// Exec runs the transaction against an AriaCtx.
	Exec func(ctx *AriaCtx)

	sid     uint64
	aborted bool
}

// SID returns the serial id assigned in the current epoch.
func (t *AriaTxn) SID() uint64 { return t.sid }

// Aborted reports whether the transaction issued a user-level abort during
// the last epoch it executed in. Conflict losers are not user aborts; they
// appear in AriaResult.Deferred instead.
func (t *AriaTxn) Aborted() bool { return t.aborted }

// AriaDecoder reconstructs an AriaTxn from its logged input.
type AriaDecoder func(data []byte, db *DB) (*AriaTxn, error)

// AriaRegistry maps Aria transaction types to decoders.
type AriaRegistry struct {
	decoders map[uint16]AriaDecoder
}

// NewAriaRegistry returns an empty registry.
func NewAriaRegistry() *AriaRegistry {
	return &AriaRegistry{decoders: make(map[uint16]AriaDecoder)}
}

// Register binds a decoder to a type id.
func (r *AriaRegistry) Register(typeID uint16, d AriaDecoder) {
	r.decoders[typeID] = d
}

// Decode reconstructs a transaction of the given type.
func (r *AriaRegistry) Decode(typeID uint16, data []byte, db *DB) (*AriaTxn, error) {
	d, ok := r.decoders[typeID]
	if !ok {
		return nil, fmt.Errorf("core: no aria decoder for txn type %d", typeID)
	}
	return d(data, db)
}

// ariaMarkerType is the reserved record type that tags an epoch's log as
// Aria-flavoured so recovery picks the right replay algorithm.
const ariaMarkerType = uint16(0xFFFF)

// ariaWrite is one buffered write.
type ariaWrite struct {
	data    []byte
	deleted bool
}

// AriaCtx is the execution context of an Aria transaction: reads observe
// the previous epoch's snapshot (plus the transaction's own writes), and
// writes buffer until the commit phase.
type AriaCtx struct {
	db      *DB
	txn     *AriaTxn
	core    int
	epoch   uint64
	aborted bool

	reads  map[index.Key]struct{}
	writes map[index.Key]ariaWrite
}

// SID returns the executing transaction's serial id.
func (c *AriaCtx) SID() uint64 { return c.txn.sid }

// Read returns the value visible in the snapshot, or the transaction's own
// buffered write.
func (c *AriaCtx) Read(table uint32, key uint64) ([]byte, bool) {
	k := index.Key{Table: table, ID: key}
	if w, ok := c.writes[k]; ok {
		if w.deleted {
			return nil, false
		}
		return w.data, true
	}
	c.reads[k] = struct{}{}
	return c.db.readCommitted(c.core, c.epoch, k)
}

// Write buffers an insert-or-update of (table, key).
func (c *AriaCtx) Write(table uint32, key uint64, val []byte) {
	c.writes[index.Key{Table: table, ID: key}] = ariaWrite{data: append([]byte(nil), val...)}
}

// Delete buffers a deletion of (table, key).
func (c *AriaCtx) Delete(table uint32, key uint64) {
	c.writes[index.Key{Table: table, ID: key}] = ariaWrite{deleted: true}
}

// Abort discards the transaction (user-level abort). Unlike the
// Caracal-style path, Aria places no ordering restriction on aborts: the
// write buffer is simply dropped.
func (c *AriaCtx) Abort() { c.aborted = true }

// AriaResult summarizes an Aria epoch.
type AriaResult struct {
	Epoch       uint64
	Committed   int
	UserAborted int
	// ConflictAborted transactions lost a RAW or WAW conflict and must be
	// resubmitted in a later epoch; they are returned in Deferred.
	ConflictAborted int
	Deferred        []*AriaTxn

	ExecTime    time.Duration
	CommitTime  time.Duration
	ElapsedTime time.Duration
}

// RunEpochAria processes one batch with Aria-style deterministic
// concurrency control (see the file comment). It may be interleaved with
// RunEpoch calls on the same database.
func (db *DB) RunEpochAria(batch []*AriaTxn) (AriaResult, error) {
	if err := CheckBatchSize(len(batch)); err != nil {
		return AriaResult{}, err
	}
	// Same commit barrier as RunEpoch: outside the pipeline the previous
	// epoch must be durable before its log region is rewritten or its pools
	// reopened; the pipeline defers the join to the pre-init-fence barrier
	// below and only surfaces a committer that died.
	if db.opts.Pipeline && !db.replaying {
		db.raisePersistPanic()
	} else {
		db.persistBarrier()
	}
	start := time.Now()
	epoch := db.epoch.Load() + 1
	res := AriaResult{Epoch: epoch}
	ptask := db.opts.Prof.EpochTask(epoch)
	defer ptask.End()
	db.abortFlag.Store(false)

	for i, t := range batch {
		t.sid = MakeSID(epoch, uint64(i+1))
		t.aborted = false
	}

	// Log inputs, tagged with the Aria marker; the single init fence below
	// makes them durable before any commit-phase write is visible.
	logStart := time.Now()
	endPhase := db.opts.Prof.Region(obs.PhaseLog.String())
	logged := false
	if db.opts.Mode.logs() && !db.replaying {
		recs := make([]wal.Record, 0, len(batch)+1)
		recs = append(recs, wal.Record{Type: ariaMarkerType})
		for _, t := range batch {
			recs = append(recs, wal.Record{Type: t.TypeID, Data: t.Input})
		}
		if err := db.log.WriteEpochNoFence(epoch, recs); err != nil {
			endPhase()
			return res, err
		}
		logged = true
		db.logBytesTotal += db.log.LastPayloadBytes()
	}
	endPhase()

	logTime := time.Since(logStart)

	// Initialization work shared with the Caracal path: collect last
	// epoch's garbage and evict stale cached versions, with the same
	// coalesced fence between GC phase 1 and phase 2.
	initStart := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhaseInit.String())
	gc := db.majorGCBegin(epoch)
	// Commit join (see RunEpoch): rows are dual-version, so no row write of
	// this epoch may land before the previous epoch's record is durable. The
	// Aria apply phase allocates and rewrites rows strictly after this
	// point. A no-op outside the pipeline.
	db.persistBarrier()
	db.initFence(epoch, logged, gc.pending)
	db.majorGCFinish(epoch, gc)
	db.evictCache(epoch)
	endPhase()
	initTime := time.Since(initStart)

	// Snapshot execution phase. The profiling region covers execution,
	// conflict detection, and the commit applies — the same slice
	// RecordEpoch below reports as the Aria execute phase.
	t1 := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhaseExec.String())
	ctxs := make([]*AriaCtx, len(batch))
	db.parallel(func(w int) {
		for i := w; i < len(batch); i += db.opts.Cores {
			t := batch[i]
			ctx := &AriaCtx{
				db: db, txn: t, core: w, epoch: epoch,
				reads:  make(map[index.Key]struct{}),
				writes: make(map[index.Key]ariaWrite),
			}
			if t.Exec != nil {
				t.Exec(ctx)
			}
			ctxs[i] = ctx
		}
	})
	res.ExecTime = time.Since(t1)

	// Deterministic conflict detection: reserve each written key for its
	// smallest-serial-id non-user-aborted writer, then abort every
	// transaction that read or wrote a key reserved by a smaller sid.
	t2 := time.Now()
	writeRes := make(map[index.Key]uint64)
	for i, ctx := range ctxs {
		if ctx.aborted {
			continue
		}
		sid := batch[i].sid
		for k := range ctx.writes {
			if cur, ok := writeRes[k]; !ok || sid < cur {
				writeRes[k] = sid
			}
		}
	}
	committed := make([]*AriaCtx, 0, len(batch))
	for i, ctx := range ctxs {
		if ctx.aborted {
			batch[i].aborted = true
			res.UserAborted++
			continue
		}
		sid := batch[i].sid
		conflicted := false
		for k := range ctx.writes {
			if writeRes[k] < sid {
				conflicted = true
				break
			}
		}
		if !conflicted {
			for k := range ctx.reads {
				if w, ok := writeRes[k]; ok && w < sid {
					conflicted = true
					break
				}
			}
		}
		if conflicted {
			res.ConflictAborted++
			res.Deferred = append(res.Deferred, batch[i])
			continue
		}
		committed = append(committed, ctx)
	}

	// Commit phase: apply each surviving write through the standard
	// final-write machinery, sharded by owner core. The WAW rule leaves at
	// most one committed writer per key.
	type applyOp struct {
		key index.Key
		sid uint64
		w   ariaWrite
	}
	byOwner := make([][]applyOp, db.opts.Cores)
	for _, ctx := range committed {
		for k, w := range ctx.writes {
			owner := db.ownerOf(k)
			byOwner[owner] = append(byOwner[owner], applyOp{key: k, sid: ctx.txn.sid, w: w})
		}
	}
	db.parallel(func(owner int) {
		for _, op := range byOwner[owner] {
			db.ariaApply(owner, epoch, op.key, op.sid, op.w)
		}
	})
	res.Committed = len(committed)
	res.CommitTime = time.Since(t2)
	endPhase()

	persistStart := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhasePersist.String())
	// Aria epochs carry no lifecycle spans: transactions enter via
	// SubmitAria's snapshot path and the breakdown's stage model (seal ->
	// assign -> execute) does not fit the execute-then-detect flow.
	db.checkpointEpoch(epoch, nil)
	db.releaseEpochState(epoch)
	endPhase()
	db.met.AddCommitted(int64(res.Committed))
	db.met.AddAborted(int64(res.UserAborted + res.ConflictAborted))
	db.epoch.Store(epoch)
	db.met.AddEpoch()
	res.ElapsedTime = time.Since(start)
	// Execution covers the snapshot run plus conflict detection and the
	// commit applies — the Aria analogue of the Caracal execute phase.
	db.obs.RecordEpoch(epoch, logStart, logTime, initTime,
		res.ExecTime+res.CommitTime, time.Since(persistStart))
	db.obs.Attrib().EpochEnd(epoch)
	return res, nil
}

// ariaApply installs one committed write: insert, update, or delete.
func (db *DB) ariaApply(owner int, epoch uint64, key index.Key, sid uint64, w ariaWrite) {
	rs, exists := db.idx.Get(key)
	if w.deleted {
		if !exists {
			return // deleting a nonexistent row is a no-op
		}
		db.met.At(owner).AddPersistent()
		db.dropRow(owner, rs)
		return
	}
	if !exists {
		off, err := db.rowPools[owner].Alloc()
		if err != nil {
			panic(fmt.Sprintf("core: aria insert: %v", err))
		}
		r := db.rowRefTag(off, obs.CauseAlloc)
		r.writeHeader(key.Table, key.ID)
		rs = &rowState{nvOff: off, owner: int32(owner)}
		db.idx.Put(key, rs)
		if db.idxLog != nil {
			db.idxPuts[owner] = append(db.idxPuts[owner], pmem.IndexEntry{
				Kind: pmem.IdxPut, Table: key.Table, Key: key.ID, RowOff: off,
			})
		}
	}
	db.met.At(owner).AddPersistent()
	if db.cacheOn() && (!db.opts.CacheHotOnly || rs.cached.Load() != nil) {
		db.installCached(owner, rs, w.data, epoch)
	}
	db.persistFinal(owner, rs, sid, w.data)
}

// readCommitted serves a read from the committed state — the cached
// version or the persistent row — ignoring any in-flight epoch. It is the
// snapshot read of the Aria path and the version-array miss path of the
// Caracal path.
func (db *DB) readCommitted(core int, epoch uint64, key index.Key) ([]byte, bool) {
	rs, ok := db.idx.Get(key)
	if !ok {
		return nil, false
	}
	return db.readCommittedRow(core, epoch, rs)
}

// readCommittedRow is readCommitted for an already-resolved row.
func (db *DB) readCommittedRow(core int, epoch uint64, rs *rowState) ([]byte, bool) {
	if db.cacheOn() {
		if cv := rs.cached.Load(); cv != nil {
			cv.stamp.Store(epoch)
			db.met.At(core).AddCacheHit()
			return cv.data, true
		}
		db.met.At(core).AddCacheMiss()
	}
	r := db.rowRef(rs.nvOff)
	latest := db.rowLatest(r)
	if latest.isNull() {
		return nil, false
	}
	data := r.readValue(latest)
	db.met.At(core).AddRowRead()
	if db.cacheOn() && db.opts.CacheOnRead {
		db.installCached(core, rs, data, epoch)
	}
	return data, true
}
