package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nvcaracal/internal/arena"
	"nvcaracal/internal/index"
	"nvcaracal/internal/metrics"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/wal"
)

// DB is a deterministic database instance bound to one NVMM device.
//
// All epoch processing goes through RunEpoch, which is not safe for
// concurrent calls: the engine parallelizes internally across its worker
// cores. Out-of-band reads (Get) are safe only between epochs.
type DB struct {
	dev    *nvm.Device
	opts   Options
	layout pmem.Layout

	rowPools []*pmem.Pool
	// valPools is indexed [size class][core] (§5.5's multi-pool extension;
	// a single class by default).
	valPools [][]*pmem.Pool
	log      *wal.Log
	epochRec *pmem.EpochRecord
	idx      *index.Map[*rowState]
	arenas   *arena.Group

	// epoch is the last completed (checkpointed) epoch. Epoch processing
	// itself is single-threaded (one RunEpoch/RunEpochAria at a time), but
	// concurrent front-ends read Epoch() while an epoch runs, so the
	// counter is atomic.
	epoch atomic.Uint64

	// counters mirrors the persistent counter slots in DRAM; flushed at
	// every checkpoint (TPC-C order ids, §6.2.3).
	counters []atomic.Uint64

	// scratch bump offsets per core for NVMM-resident transient values
	// (ModeHybrid / ModeAllNVMM), reset every epoch.
	scratch []int64

	// gcPending collects rows whose stale first version needs the major
	// collector, appended per worker during execution, drained at the next
	// epoch's initialization.
	gcPending [][]*rowState

	// evictRing and evictBuf implement the epoch-based LRU (§5.2):
	// per-worker buffers collect rows whose cached version was created this
	// epoch; at the epoch boundary they merge into the ring slot for the
	// epoch, and the init phase processes the slot of epoch-K-1.
	evictRing [][]*rowState
	evictBuf  [][]*rowState

	// deferredIndexDeletes holds rows deleted this epoch, per worker;
	// removing them from the index is deferred to the epoch boundary so
	// concurrent readers with smaller serial ids still resolve the row.
	deferredIndexDeletes [][]index.Key

	// idxLog is the optional persistent index journal (§7 extension);
	// idxPuts collects the rows created this epoch, per owner core, for
	// the journal's delta block.
	idxLog  *pmem.IndexLog
	idxPuts [][]pmem.IndexEntry

	// replay state: set while recovering the crashed epoch.
	replaying bool
	skipEpoch uint64 // persistent versions of this epoch are ignored by reads
	gcDupSet  map[int64]struct{}
	scanMu    sync.Mutex // guards RecoveryReport aggregation during the scan

	met metrics.Counters

	// obs receives phase spans and latency observations; nil (the default)
	// reduces every instrumentation site to a nil check.
	obs *obs.Obs

	// abortFlag, when set by a panicking worker, breaks other workers out
	// of version-array spin waits so the epoch unwinds instead of hanging.
	abortFlag atomic.Bool

	// Async-persist state (Options.AsyncPersist): persistWG tracks the
	// in-flight commit of the previous epoch, persistPanic carries a panic
	// (e.g. an injected crash) out of the commit goroutine to the next
	// barrier, and durableEpoch is the last epoch whose record is durable.
	persistWG    sync.WaitGroup
	persistPanic atomic.Pointer[any]
	durableEpoch atomic.Uint64

	// Pipeline state (Options.Pipeline): commitTokens[c] is closed once the
	// in-flight committer has finished staging core c's pools, letting epoch
	// N+1's init workers reopen them per core instead of joining the whole
	// commit. Written only by the epoch coordinator between epochs (the
	// spawn of the worker goroutines orders the write before their reads)
	// and never cleared: a retired commit leaves closed channels behind, so
	// the steady-state wait is one closed-channel receive. commitDur is the
	// duration of the most recently retired commit stage, reported through
	// EpochResult.CommitTime.
	commitTokens []chan struct{}
	commitDur    atomic.Int64

	logBytesTotal int64 // cumulative input-log bytes for accounting
}

// errEpochUnwound is the secondary panic raised by workers that were
// spinning when a sibling worker panicked; parallel() reports the sibling's
// original panic, not this one.
var errEpochUnwound = fmt.Errorf("core: epoch unwound after sibling worker panic")

// initWork is one declared write-set op routed to its owner core.
type initWork struct {
	key  index.Key
	sid  uint64
	kind OpKind
}

// Open formats a fresh device and returns a DB. Use Recover to attach to a
// device that already holds data.
func Open(dev *nvm.Device, opts Options) (*DB, error) {
	opts.applyDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	// Teach the attribution layer the layout's named regions before any
	// traffic (Format is the first) so the spatial breakdown is complete.
	opts.Obs.Attrib().SetRegions(opts.Layout.Regions())
	if err := pmem.Format(dev, opts.Layout); err != nil {
		return nil, err
	}
	return newDB(dev, opts), nil
}

func newDB(dev *nvm.Device, opts Options) *DB {
	c := opts.Cores
	db := &DB{
		dev:       dev,
		opts:      opts,
		layout:    opts.Layout,
		rowPools:  make([]*pmem.Pool, c),
		idx:       index.New[*rowState](c * 16),
		arenas:    arena.NewGroup(c),
		counters:  make([]atomic.Uint64, opts.Layout.Counters),
		scratch:   make([]int64, c),
		gcPending: make([][]*rowState, c),
		evictRing: make([][]*rowState, opts.CacheK+2),
		evictBuf:  make([][]*rowState, c),

		deferredIndexDeletes: make([][]index.Key, c),

		obs: opts.Obs,
	}
	for i := 0; i < c; i++ {
		db.rowPools[i] = pmem.RowPool(dev, opts.Layout, i)
	}
	classes := opts.Layout.ValueClasses()
	db.valPools = make([][]*pmem.Pool, len(classes))
	for k := range classes {
		db.valPools[k] = make([]*pmem.Pool, c)
		for i := 0; i < c; i++ {
			db.valPools[k][i] = pmem.ValuePool(dev, opts.Layout, k, i)
		}
	}
	db.log = wal.New(dev, opts.Layout.LogOff(), opts.Layout.LogCap())
	db.epochRec = pmem.NewEpochRecord(dev, opts.Layout)
	if opts.PersistIndex {
		db.idxLog = pmem.NewIndexLog(dev, opts.Layout)
		db.idxPuts = make([][]pmem.IndexEntry, c)
	}
	// Epoch-windowed profile captures ("profile the next N epochs") read the
	// engine's completed-epoch gauge.
	opts.Prof.SetEpochSource(db.Epoch)
	return db
}

// Cores returns the configured worker-core count.
func (db *DB) Cores() int { return db.opts.Cores }

// Epoch returns the last checkpointed epoch number. It is safe to call
// concurrently with a running epoch.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// Mode returns the storage mode.
func (db *DB) Mode() StorageMode { return db.opts.Mode }

// Device returns the underlying NVMM device (for stats and crash tests).
func (db *DB) Device() *nvm.Device { return db.dev }

// Metrics returns a snapshot of the engine counters.
func (db *DB) Metrics() metrics.Snapshot { return db.met.Snapshot() }

// Obs returns the attached observability layer (nil when none). Front-ends
// (internal/submit) use it to stamp txn lifecycle spans and record flight
// events of their own.
func (db *DB) Obs() *obs.Obs { return db.obs }

// RowCount returns the number of live rows in the index.
func (db *DB) RowCount() int { return db.idx.Len() }

// CounterAdd atomically adds delta to persistent counter slot i and returns
// the previous value. Counters are persisted at every epoch checkpoint and
// recovered after a crash.
func (db *DB) CounterAdd(i int, delta uint64) uint64 {
	return db.counters[i].Add(delta) - delta
}

// CounterGet returns the current value of persistent counter slot i.
func (db *DB) CounterGet(i int) uint64 { return db.counters[i].Load() }

// EpochResult summarizes one completed epoch.
type EpochResult struct {
	Epoch     uint64
	Committed int
	Aborted   int
	// Durations of the epoch's stages. SyncTime is the synchronous
	// (caller-side) part of the persist phase; CommitTime is the commit
	// stage — the checkpoint fence, the epoch record, the allocator
	// checkpoint release, and (under Options.Pipeline) the checkpoint
	// staging the committer took off the critical path. Under AsyncPersist
	// or Pipeline the commit runs in the background, so CommitTime reports
	// the most recently *retired* commit — trailing the epoch by one — which
	// keeps Total() an honest account of work performed instead of silently
	// dropping the overlapped stage.
	LogTime    time.Duration
	InitTime   time.Duration
	ExecTime   time.Duration
	SyncTime   time.Duration
	CommitTime time.Duration
}

// Total returns the wall-clock total of the epoch stages. Under an
// asynchronous commit mode the commit stage overlaps the next epoch, so
// Total() can exceed the epoch's critical-path latency — it measures work,
// not wall clock between RunEpoch calls.
func (r EpochResult) Total() time.Duration {
	return r.LogTime + r.InitTime + r.ExecTime + r.SyncTime + r.CommitTime
}

// RunEpoch processes one batch of transactions as an epoch: logs the
// inputs, runs the initialization phase (insert step, major GC, cache
// eviction, append step), executes the transactions, and checkpoints
// (Algorithm 1 of the paper). On return the epoch is durable (in logging
// mode) and all its writes are visible to subsequent epochs.
func (db *DB) RunEpoch(batch []*Txn) (EpochResult, error) {
	if err := CheckBatchSize(len(batch)); err != nil {
		return EpochResult{}, err
	}
	// Commit barrier. Outside the pipeline the previous epoch's (possibly
	// asynchronous) persist must complete before this epoch rewrites the log
	// region or allocates from the reopened pools. The pipeline removes both
	// dependencies — the log has dual epoch-parity slots and the pools hand
	// out per-core staging tokens — so entry only surfaces a committer that
	// died; the real join is the commit barrier before this epoch's init
	// fence.
	if db.opts.Pipeline && !db.replaying {
		db.raisePersistPanic()
	} else {
		db.persistBarrier()
	}
	epoch := db.epoch.Load() + 1
	res := EpochResult{Epoch: epoch}
	ptask := db.opts.Prof.EpochTask(epoch)
	defer ptask.End()
	db.abortFlag.Store(false)
	db.obs.Flight().Record(obs.EvEpochStart, obs.CoordinatorCore, epoch, int64(len(batch)), 0)

	// Assign serial ids in batch order: the predetermined serial order.
	// Transactions that arrived without a lifecycle span (hand-batched
	// loads that bypassed internal/submit) are sampled here, so every entry
	// path produces a tail-latency breakdown; replay re-runs old inputs and
	// is never sampled.
	tt := db.obs.TxnTrace()
	var spans []*obs.TxnSpan
	for i, t := range batch {
		t.sid = MakeSID(epoch, uint64(i+1))
		t.aborted = false
		if t.span == nil && !t.spanConsidered && tt != nil && !db.replaying {
			t.span = tt.Sample()
		}
		if t.span != nil {
			t.span.MarkAssign(epoch, t.sid)
			spans = append(spans, t.span)
		}
	}

	// Log transaction inputs: serialized and flushed here, made durable by
	// the single initialization fence below, before any execution-phase
	// write becomes visible (§4.3).
	t0 := time.Now()
	endPhase := db.opts.Prof.Region(obs.PhaseLog.String())
	logged := false
	if db.opts.Mode.logs() && !db.replaying {
		recs := make([]wal.Record, len(batch))
		for i, t := range batch {
			recs[i] = wal.Record{Type: t.TypeID, Data: t.Input}
		}
		if err := db.log.WriteEpochNoFence(epoch, recs); err != nil {
			endPhase()
			return res, err
		}
		logged = true
		db.logBytesTotal += db.log.LastPayloadBytes()
	}
	endPhase()
	res.LogTime = time.Since(t0)

	// Initialization phase. The init workers (insertStep, appendStep) are
	// spawned from this goroutine and inherit its "init" pprof label.
	t1 := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhaseInit.String())
	work := db.gatherWork(batch)
	if err := db.insertStep(epoch, work); err != nil {
		endPhase()
		return res, err
	}
	gc := db.majorGCBegin(epoch)
	// Commit join: persistent rows are dual-version (older/newer), not
	// epoch-parity, so no row write of this epoch — GC phase 2 rewrites or
	// execution finals — may land before the previous epoch's record is
	// durable; a crash would otherwise replay on top of half-new state. The
	// join also keeps this epoch's init fence from committing the previous
	// commit's staged lines early. A no-op outside the pipeline, where the
	// entry barrier already joined.
	db.persistBarrier()
	db.initFence(epoch, logged, gc.pending)
	db.majorGCFinish(epoch, gc)
	db.evictCache(epoch)
	db.appendStep(epoch, work)
	endPhase()
	res.InitTime = time.Since(t1)

	// Execution phase.
	t2 := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhaseExec.String())
	db.executePhase(epoch, batch)
	endPhase()
	res.ExecTime = time.Since(t2)

	// Checkpoint: fence all epoch writes, persist the epoch number, fence
	// again (inside Store), then release transient state.
	t3 := time.Now()
	endPhase = db.opts.Prof.Region(obs.PhasePersist.String())
	db.checkpointEpoch(epoch, spans)
	db.finishEpoch(epoch, batch, &res)
	endPhase()
	async := db.opts.AsyncPersist && !db.replaying
	res.CommitTime = time.Duration(db.commitDur.Load())
	if async {
		// The commit runs in the background: SyncTime is the caller-side
		// handoff only, and CommitTime reports the last retired commit.
		res.SyncTime = time.Since(t3)
	} else {
		res.SyncTime = time.Since(t3) - res.CommitTime
	}

	db.epoch.Store(epoch)
	db.met.AddEpoch()
	db.obs.ObserveDurableLag(epoch - db.durableEpoch.Load())
	// The phase durations are already in hand for EpochResult, so recording
	// them adds no clock reads to the epoch path. Under an asynchronous
	// commit the committer records its own PhaseCommit span; synchronously
	// the commit stays inside the persist span as before.
	persistSpan := res.SyncTime
	if !async {
		persistSpan += res.CommitTime
	}
	db.obs.RecordEpoch(epoch, t0, res.LogTime, res.InitTime, res.ExecTime, persistSpan)
	db.obs.Attrib().EpochEnd(epoch)
	// The epoch-end event carries the critical-path duration (excluding any
	// overlapped commit); the watchdog's outlier detector feeds on it.
	db.obs.Flight().Record(obs.EvEpochEnd, obs.CoordinatorCore, epoch,
		int64(res.LogTime+res.InitTime+res.ExecTime+res.SyncTime), int64(res.Committed))
	return res, nil
}

// initFence issues the epoch's single initialization fence: one ordering
// point committing the input log, the insert step's row headers, and the
// major collector's free-ring entries together, before GC phase 2 or the
// execution phase overwrites anything they cover. Replacing the per-source
// fences (log, GC ring, GC tail) with this one barrier is the fence diet's
// init-phase half; the fence is attributed to the cause that required it.
// When neither the log nor the collector wrote anything, nothing downstream
// consumes an ordering guarantee and the fence is skipped entirely.
func (db *DB) initFence(epoch uint64, logged, gcPending bool) {
	switch {
	case logged:
		db.obs.Flight().Record(obs.EvFence, obs.CoordinatorCore, epoch, int64(obs.CauseWALAppend), 0)
		db.dev.Tag(obs.CauseWALAppend).Fence()
	case gcPending:
		db.obs.Flight().Record(obs.EvFence, obs.CoordinatorCore, epoch, int64(obs.CauseMajorGC), 0)
		db.dev.Tag(obs.CauseMajorGC).Fence()
	}
}

// checkpointEpoch persists the epoch: counters, allocator control offsets,
// and the index-journal block are staged synchronously; then one fence
// covering everything, the epoch record (which carries its own trailing
// fence), and the allocator checkpoint release commit the epoch. With
// Options.AsyncPersist the commit tail runs on a background goroutine and
// overlaps the caller's between-epoch work; with Options.Pipeline the
// entire checkpoint — staging included — moves to the committer (see
// checkpointEpochPipelined). persistBarrier (at the next epoch's
// pre-init-fence join, or WaitDurable) joins the background stage.
//
// The synchronous staging order below — counters, then pools in core order
// (row pool first, then value classes), then the index journal — is part of
// the crash-test contract: committed reproducers index the device's flush
// sequence with FailAfter counts, so the serial path must not reorder ops.
func (db *DB) checkpointEpoch(epoch uint64, spans []*obs.TxnSpan) {
	if db.opts.Pipeline && !db.replaying {
		db.checkpointEpochPipelined(epoch, spans)
		return
	}
	for i := range db.counters {
		v := db.counters[i].Load()
		c := pmem.NewCounter(db.dev, db.layout, int64(i))
		c.Store(v, epoch)
		c.Flush()
	}
	for c := 0; c < db.opts.Cores; c++ {
		db.rowPools[c].Checkpoint(epoch)
		for k := range db.valPools {
			db.valPools[k][c].Checkpoint(epoch)
		}
	}
	db.appendIndexJournal(epoch)
	stampStaged(spans)

	commit := func() {
		start := time.Now()
		db.obs.Flight().Record(obs.EvFence, obs.CoordinatorCore, epoch, int64(obs.CausePersistFinal), 0)
		db.dev.Tag(obs.CausePersistFinal).Fence()
		db.epochRec.Store(epoch)
		for c := 0; c < db.opts.Cores; c++ {
			db.rowPools[c].Checkpointed()
			for k := range db.valPools {
				db.valPools[k][c].Checkpointed()
			}
		}
		db.durableEpoch.Store(epoch)
		db.commitDur.Store(int64(time.Since(start)))
		db.obs.Flight().Record(obs.EvDurablePublish, obs.CoordinatorCore, epoch, db.commitDur.Load(), 0)
		db.publishSpans(spans)
	}
	if db.opts.AsyncPersist && !db.replaying {
		db.persistWG.Add(1)
		go func() {
			start := time.Now()
			defer db.persistWG.Done()
			defer func() {
				if r := recover(); r != nil {
					v := r
					db.persistPanic.CompareAndSwap(nil, &v)
					db.obs.Flight().DumpOnCrash(fmt.Sprintf("async commit of epoch %d: %v", epoch, r))
				}
			}()
			// The goroutine inherited the coordinator's "persist" label;
			// relabel it as the commit phase it actually is.
			defer db.opts.Prof.Region(obs.PhaseCommit.String())()
			commit()
			db.obs.RecordCommit(epoch, start, time.Duration(db.commitDur.Load()))
		}()
		return
	}
	commit()
}

// stampStaged marks the checkpoint-staged instant on every sampled span of
// the epoch: all engine state is staged and only the checkpoint fence and
// epoch record separate the transactions from durability.
func stampStaged(spans []*obs.TxnSpan) {
	if len(spans) == 0 {
		return
	}
	now := time.Now().UnixNano()
	for _, s := range spans {
		s.StagedNS = now
	}
}

// publishSpans stamps durability and retires the epoch's sampled spans into
// the txn-trace rings.
func (db *DB) publishSpans(spans []*obs.TxnSpan) {
	tt := db.obs.TxnTrace()
	if tt == nil || len(spans) == 0 {
		return
	}
	now := time.Now().UnixNano()
	for _, s := range spans {
		s.DurableNS = now
		tt.Publish(s)
	}
}

// checkpointEpochPipelined hands epoch N's entire checkpoint to the
// background committer and returns as soon as the handoff state is
// captured, letting the caller proceed into epoch N+1's log serialization
// and init phase. Only state the next epoch consumes or mutates is captured
// synchronously:
//
//   - counter values (the caller may CounterAdd between epochs);
//   - the index-journal delta block's entries (idxPuts is drained here,
//     deferred deletions are applied by finishEpoch, gcPending is consumed
//     by N+1's major collector);
//   - when the delta block does not fit, the compaction itself — it walks
//     the live index, which N+1 mutates — and the journal checkpoint.
//
// Everything else — the parallel per-core pool staging, counter stores, the
// journal append, the checkpoint fence, the epoch record, and the allocator
// release — runs on the committer (commitEpoch).
func (db *DB) checkpointEpochPipelined(epoch uint64, spans []*obs.TxnSpan) {
	counterVals := make([]uint64, len(db.counters))
	for i := range db.counters {
		counterVals[i] = db.counters[i].Load()
	}
	var idxEntries []pmem.IndexEntry
	idxAsync := false
	if db.idxLog != nil {
		idxEntries = db.collectIndexEntries()
		if db.idxLog.Fits(len(idxEntries)) {
			idxAsync = true
		} else {
			db.compactIndexJournal(epoch)
			db.idxLog.Checkpoint(epoch)
		}
	}
	tokens := make([]chan struct{}, db.opts.Cores)
	for c := range tokens {
		tokens[c] = make(chan struct{})
	}
	db.commitTokens = tokens
	db.persistWG.Add(1)
	db.obs.Flight().Record(obs.EvCommitHandoff, obs.CoordinatorCore, epoch, 0, 0)
	go db.commitEpoch(epoch, tokens, counterVals, idxEntries, idxAsync, spans)
}

// commitEpoch is the pipelined committer stage: it stages epoch N's
// checkpoint — per-core pool checkpoints in parallel across the pool cores,
// counter parity-slot stores, and the index-journal block — then issues the
// checkpoint fence, persists the epoch record, and reopens the pools. Each
// core's staging token is closed as soon as that core's pools are staged,
// so epoch N+1's init workers resume per core without waiting for the
// fence. A panic anywhere (an injected crash, most usefully) still closes
// every token — N+1's workers must not deadlock — and surfaces, sticky, at
// the next persistBarrier.
func (db *DB) commitEpoch(epoch uint64, tokens []chan struct{}, counterVals []uint64, idxEntries []pmem.IndexEntry, idxAsync bool, spans []*obs.TxnSpan) {
	start := time.Now()
	// Relabel the committer (and, by inheritance, its per-core staging
	// goroutines) as the commit phase.
	defer db.opts.Prof.Region(obs.PhaseCommit.String())()
	defer db.persistWG.Done()
	defer func() {
		if r := recover(); r != nil {
			v := r
			db.persistPanic.CompareAndSwap(nil, &v)
			db.obs.Flight().DumpOnCrash(fmt.Sprintf("committer of epoch %d: %v", epoch, r))
		}
	}()
	var failed atomic.Pointer[any]
	var wg sync.WaitGroup
	// The staging join must survive a committer panic: if the counter or
	// journal flushes below hit an injected fail point, unwinding without
	// joining would leak staging goroutines that keep accessing the device
	// after persistWG reports the engine quiescent — racing a crash tester's
	// Device.Crash, its recovery, and even its next snapshot restore.
	defer wg.Wait()
	for c := 0; c < db.opts.Cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer close(tokens[c])
			defer func() {
				if r := recover(); r != nil {
					v := r
					failed.CompareAndSwap(nil, &v)
				}
			}()
			db.rowPools[c].Checkpoint(epoch)
			for k := range db.valPools {
				db.valPools[k][c].Checkpoint(epoch)
			}
		}(c)
	}
	for i, v := range counterVals {
		c := pmem.NewCounter(db.dev, db.layout, int64(i))
		c.Store(v, epoch)
		c.Flush()
	}
	if idxAsync {
		// Fits was checked at handoff and nothing else appends, so this
		// cannot fail; if it somehow does, the sticky overflow flag is
		// checkpointed below and recovery falls back to the row scan.
		db.idxLog.AppendEpoch(epoch, idxEntries)
		db.idxLog.Checkpoint(epoch)
	}
	wg.Wait()
	if p := failed.Load(); p != nil {
		panic(*p)
	}
	stampStaged(spans)
	db.obs.Flight().Record(obs.EvFence, obs.CoordinatorCore, epoch, int64(obs.CausePersistFinal), 0)
	db.dev.Tag(obs.CausePersistFinal).Fence()
	db.epochRec.Store(epoch)
	for c := 0; c < db.opts.Cores; c++ {
		db.rowPools[c].Checkpointed()
		for k := range db.valPools {
			db.valPools[k][c].Checkpointed()
		}
	}
	db.durableEpoch.Store(epoch)
	dur := time.Since(start)
	db.commitDur.Store(int64(dur))
	db.obs.Flight().Record(obs.EvDurablePublish, obs.CoordinatorCore, epoch, int64(dur), 0)
	db.publishSpans(spans)
	db.obs.RecordCommit(epoch, start, dur)
}

// waitPoolStaged blocks until the in-flight committer, if any, has finished
// staging core c's pools, making Alloc, FreeGC, and ring appends on them
// safe again. Retired commits leave closed channels behind, so outside the
// overlap window this is one closed-channel receive.
func (db *DB) waitPoolStaged(c int) {
	if t := db.commitTokens; t != nil {
		<-t[c]
	}
}

// persistBarrier joins the previous epoch's asynchronous commit, if one is
// in flight, and re-raises any panic it captured (an injected crash from
// the device's fail points, most usefully). The panic is sticky: once the
// commit goroutine died the device state is not trustworthy and every
// subsequent epoch attempt fails the same way.
func (db *DB) persistBarrier() {
	if db.obs.On() {
		t := time.Now()
		db.persistWG.Wait()
		// Only joins that actually blocked are evidence; sub-microsecond
		// returns are the steady-state no-op.
		if wait := time.Since(t); wait > time.Microsecond {
			db.obs.Flight().Record(obs.EvCommitJoin, obs.CoordinatorCore, db.epoch.Load(), int64(wait), 0)
		}
	} else {
		db.persistWG.Wait()
	}
	db.raisePersistPanic()
}

// raisePersistPanic re-raises a sticky committer panic without joining an
// in-flight commit. The pipeline's RunEpoch entry uses it: a healthy commit
// may legitimately overlap this epoch's front, but a committer that died
// must surface immediately, not at the mid-epoch join.
func (db *DB) raisePersistPanic() {
	if p := db.persistPanic.Load(); p != nil {
		panic(*p)
	}
}

// WaitDurable blocks until the most recently run epoch's record is durable.
// With AsyncPersist and Pipeline off it returns immediately. Call it before
// snapshotting the device, reading fence-exact stats, or handing the device
// to a crash tester.
func (db *DB) WaitDurable() { db.persistBarrier() }

// DurableEpoch returns the last epoch whose record is known durable. It
// trails Epoch() by at most one epoch while an asynchronous commit is in
// flight and equals it otherwise.
func (db *DB) DurableEpoch() uint64 { return db.durableEpoch.Load() }

// appendIndexJournal writes the epoch's index-delta block — row creations,
// deletions, and the rows queued for the next epoch's major collection —
// and checkpoints the journal's write offset. When the delta would not fit
// it compacts: the journal is rewound and a full index snapshot written in
// its place. A failed snapshot sets the sticky overflow flag and recovery
// falls back to the row scan.
func (db *DB) appendIndexJournal(epoch uint64) {
	if db.idxLog == nil {
		return
	}
	entries := db.collectIndexEntries()
	if !db.idxLog.AppendEpoch(epoch, entries) {
		// Compact: replace the journal's history with a snapshot of the
		// live index plus this epoch's pending GC rows. The deltas above
		// are already reflected in the index (and deferred deletions are
		// excluded below), so the snapshot subsumes them.
		db.compactIndexJournal(epoch)
	}
	db.idxLog.Checkpoint(epoch)
}

// collectIndexEntries drains the epoch's index deltas into one block: row
// creations (idxPuts is consumed), deferred deletions, and the rows queued
// for the next epoch's major collection. All three sources are consumed or
// mutated by the next epoch, so the pipelined checkpoint collects them
// synchronously before handing the block to the committer.
func (db *DB) collectIndexEntries() []pmem.IndexEntry {
	var entries []pmem.IndexEntry
	for c := range db.idxPuts {
		entries = append(entries, db.idxPuts[c]...)
		db.idxPuts[c] = db.idxPuts[c][:0]
	}
	for _, keys := range db.deferredIndexDeletes {
		for _, k := range keys {
			entries = append(entries, pmem.IndexEntry{Kind: pmem.IdxDel, Table: k.Table, Key: k.ID})
		}
	}
	for _, pend := range db.gcPending {
		for _, rs := range pend {
			entries = append(entries, pmem.IndexEntry{Kind: pmem.IdxGC, RowOff: rs.nvOff})
		}
	}
	return entries
}

func (db *DB) compactIndexJournal(epoch uint64) {
	deleted := make(map[index.Key]struct{})
	for _, keys := range db.deferredIndexDeletes {
		for _, k := range keys {
			deleted[k] = struct{}{}
		}
	}
	snap := make([]pmem.IndexEntry, 0, db.idx.Len())
	db.idx.Range(func(k index.Key, rs *rowState) bool {
		if _, gone := deleted[k]; gone {
			return true
		}
		snap = append(snap, pmem.IndexEntry{Kind: pmem.IdxPut, Table: k.Table, Key: k.ID, RowOff: rs.nvOff})
		return true
	})
	for _, pend := range db.gcPending {
		for _, rs := range pend {
			snap = append(snap, pmem.IndexEntry{Kind: pmem.IdxGC, RowOff: rs.nvOff})
		}
	}
	db.idxLog.ResetForSnapshot()
	db.idxLog.AppendEpoch(epoch, snap) // overflow stays sticky on failure
}

// finishEpoch releases transient state and merges per-worker buffers.
func (db *DB) finishEpoch(epoch uint64, batch []*Txn, res *EpochResult) {
	db.releaseEpochState(epoch)
	for _, t := range batch {
		if t.aborted {
			res.Aborted++
		} else {
			res.Committed++
		}
		// The span pointer now lives on in the checkpoint's spans slice;
		// detaching it here keeps a re-submitted Txn value from dragging a
		// retired span (or a stale sampling decision) into a later epoch.
		t.span = nil
		t.spanConsidered = false
	}
	db.met.AddCommitted(int64(res.Committed))
	db.met.AddAborted(int64(res.Aborted))
}

// releaseEpochState resets the transient pools, applies deferred index
// deletions, and merges the per-worker eviction buffers.
func (db *DB) releaseEpochState(epoch uint64) {
	db.arenas.ResetAll()
	for c := range db.scratch {
		db.scratch[c] = 0
	}
	// Deferred index deletions are now safe: no readers remain.
	for c, keys := range db.deferredIndexDeletes {
		for _, k := range keys {
			db.idx.Delete(k)
		}
		db.deferredIndexDeletes[c] = db.deferredIndexDeletes[c][:0]
	}
	// Merge cache-fill buffers into the eviction ring slot for this epoch.
	slot := int(epoch % uint64(len(db.evictRing)))
	for c := range db.evictBuf {
		db.evictRing[slot] = append(db.evictRing[slot], db.evictBuf[c]...)
		db.evictBuf[c] = db.evictBuf[c][:0]
	}
}

// gatherWork routes every declared write-set op to its owner core. Workers
// scan their share of the batch into per-(worker, owner) buckets; owners
// then consume all buckets destined for them without locking.
func (db *DB) gatherWork(batch []*Txn) [][][]initWork {
	c := db.opts.Cores
	buckets := make([][][]initWork, c) // [worker][owner][]
	db.parallel(func(w int) {
		local := make([][]initWork, c)
		for i := w; i < len(batch); i += c {
			t := batch[i]
			for _, op := range t.Ops {
				k := index.Key{Table: op.Table, ID: op.Key}
				owner := db.ownerOf(k)
				local[owner] = append(local[owner], initWork{key: k, sid: t.sid, kind: op.Kind})
			}
		}
		buckets[w] = local
	})
	return buckets
}

// ownerOf maps a key to the core that owns its init-phase processing and
// persistent row allocation.
func (db *DB) ownerOf(k index.Key) int {
	return int(index.Hash(k) % uint64(db.opts.Cores))
}

// insertStep creates persistent rows for this epoch's inserts (§4.1): rows
// are allocated in NVMM directly, with no transient data or cached version
// until they are accessed, so only hot rows occupy DRAM.
func (db *DB) insertStep(epoch uint64, work [][][]initWork) error {
	var firstErr atomic.Pointer[error]
	db.parallel(func(owner int) {
		// Under the pipeline the previous epoch's committer may still be
		// staging this core's pools; allocation reopens per core as soon as
		// its own staging token closes.
		db.waitPoolStaged(owner)
		pool := db.rowPools[owner]
		for w := 0; w < db.opts.Cores; w++ {
			for _, it := range work[w][owner] {
				if it.kind != OpInsert {
					continue
				}
				if _, ok := db.idx.Get(it.key); ok {
					continue // insert onto an existing row: behaves as update
				}
				off, err := pool.Alloc()
				if err != nil {
					e := fmt.Errorf("core: insert step: %w", err)
					firstErr.CompareAndSwap(nil, &e)
					return
				}
				r := db.rowRefTag(off, obs.CauseAlloc)
				r.writeHeader(it.key.Table, it.key.ID)
				rs := &rowState{nvOff: off, owner: int32(owner)}
				db.idx.Put(it.key, rs)
				if db.idxLog != nil {
					db.idxPuts[owner] = append(db.idxPuts[owner], pmem.IndexEntry{
						Kind: pmem.IdxPut, Table: it.key.Table, Key: it.key.ID, RowOff: off,
					})
				}
			}
		}
	})
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// appendStep builds the per-row version arrays for the epoch (§3.1.2): for
// every row written this epoch, a sorted array of pending versions plus an
// initial version holding the row's state entering the epoch. The first
// thread to append to a row copies the existing data from the cached
// version (deleting it, since it will be updated) or from the persistent
// row.
func (db *DB) appendStep(epoch uint64, work [][][]initWork) {
	db.parallel(func(owner int) {
		// Merge and sort this owner's ops by (table, key, sid).
		var ops []initWork
		for w := 0; w < db.opts.Cores; w++ {
			ops = append(ops, work[w][owner]...)
		}
		sort.Slice(ops, func(i, j int) bool {
			a, b := ops[i], ops[j]
			if a.key.Table != b.key.Table {
				return a.key.Table < b.key.Table
			}
			if a.key.ID != b.key.ID {
				return a.key.ID < b.key.ID
			}
			return a.sid < b.sid
		})
		for i := 0; i < len(ops); {
			j := i
			for j < len(ops) && ops[j].key == ops[i].key {
				j++
			}
			db.buildVersionArray(epoch, owner, ops[i].key, ops[i:j])
			i = j
		}
	})
}

// buildVersionArray constructs one row's version array from its sorted ops.
func (db *DB) buildVersionArray(epoch uint64, owner int, key index.Key, ops []initWork) {
	rs, ok := db.idx.Get(key)
	if !ok {
		// Update/delete of a nonexistent row: deterministic databases know
		// write sets up front, so this is a workload bug. Creating no array
		// would hang readers, so fail loudly.
		panic(fmt.Sprintf("core: write set references missing row table=%d key=%d", key.Table, key.ID))
	}
	sids := make([]uint64, 0, len(ops)+1)
	sids = append(sids, 0)
	for _, op := range ops {
		if len(sids) > 1 && sids[len(sids)-1] == op.sid {
			continue // duplicate op on same key in one txn
		}
		sids = append(sids, op.sid)
	}
	va := newVersionArray(epoch, sids, &db.abortFlag)

	// Materialize the initial version (slot 0).
	r := db.rowRef(rs.nvOff)
	latest := db.rowLatest(r)
	switch {
	case latest.isNull():
		// Row created this epoch (or never written): no prior state.
		va.vals[0].Store(notFoundVal)
	default:
		var init *versionVal
		if cv := rs.cached.Load(); cv != nil && db.cacheOn() {
			// Copy from the cached version, then delete it: it will be
			// rewritten by this epoch's final write (§4.1).
			data := db.arenas.Core(owner).Alloc(len(cv.data))
			copy(data, cv.data)
			init = &versionVal{kind: vkData, data: data, nvOff: -1}
			rs.cached.Store(nil)
			va.wasCached = true
			db.met.At(owner).CacheDrop(int64(len(cv.data)))
			db.met.At(owner).AddCacheHit()
		} else {
			// One NVMM read per written row per epoch.
			data := db.arenas.Core(owner).Alloc(int(latest.size))
			r.readValueInto(latest, data)
			init = db.placeTransient(owner, data)
			db.met.At(owner).AddRowRead()
			db.met.At(owner).AddCacheMiss()
		}
		va.vals[0].Store(init)
	}
	rs.va.Store(va)
}

// placeTransient wraps data as a transient version value. In ModeAllNVMM
// the bytes are copied into the core's NVMM scratch arena and re-read from
// the device on every access; otherwise they stay in DRAM.
func (db *DB) placeTransient(core int, data []byte) *versionVal {
	if db.opts.Mode == ModeAllNVMM {
		off := db.scratchAlloc(core, len(data))
		td := db.dev.Tag(obs.CauseIntermediate)
		td.WriteAt(data, off)
		td.Flush(off, int64(len(data)))
		return &versionVal{kind: vkData, nvOff: off, nvLen: len(data)}
	}
	return &versionVal{kind: vkData, data: data, nvOff: -1}
}

// scratchAlloc bumps the core's NVMM scratch arena.
func (db *DB) scratchAlloc(core int, n int) int64 {
	if db.layout.ScratchPerCore == 0 {
		panic("core: mode requires NVMM scratch but layout has none")
	}
	if int64(n) > db.layout.ScratchPerCore {
		// Wrapping cannot help: the value would overrun the region (and
		// scribble the next core's scratch) even from offset 0.
		panic(fmt.Sprintf("core: transient value of %d bytes exceeds ScratchPerCore %d",
			n, db.layout.ScratchPerCore))
	}
	off := db.scratch[core]
	if off+int64(n) > db.layout.ScratchPerCore {
		// Wrap: transient data is epoch-local and the oldest entries are
		// long consumed; wrapping models a ring of NVMM scratch.
		off = 0
	}
	db.scratch[core] = off + int64(n)
	return db.layout.ScratchOff(core) + off
}

// executePhase runs the batch on the worker cores. Worker w executes
// transactions w, w+C, w+2C, … in ascending serial order, which guarantees
// progress: the globally smallest unfinished transaction is always at the
// head of its worker's remaining queue, and waits only on finished
// transactions.
func (db *DB) executePhase(epoch uint64, batch []*Txn) {
	db.parallel(func(w int) {
		c := db.opts.Cores
		for i := w; i < len(batch); i += c {
			db.executeTxn(epoch, w, batch[i])
		}
	})
}

// executeTxn runs one transaction and publishes IGNORE markers for any
// declared-but-unperformed writes (covering user aborts and over-declared
// reconnaissance write sets).
func (db *DB) executeTxn(epoch uint64, w int, t *Txn) {
	timed := db.obs.TxnTimed() || t.span != nil
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	ctx := &Ctx{db: db, txn: t, core: w, wrote: make([]bool, len(t.Ops))}
	if t.Exec != nil {
		t.Exec(ctx)
	}
	for i, op := range t.Ops {
		if ctx.wrote[i] {
			continue
		}
		db.writeIgnore(ctx, index.Key{Table: op.Table, ID: op.Key})
	}
	if timed {
		d := time.Since(t0)
		db.obs.ObserveTxn(w, d)
		t.span.MarkExec(w, t0, d, t.aborted)
	}
}

// parallel runs f(core) on every core and waits. A panic on any worker —
// including an injected crash from the device's fail-points — is re-raised
// on the calling goroutine once all workers have stopped.
func (db *DB) parallel(f func(core int)) {
	var wg sync.WaitGroup
	var panicked atomic.Pointer[any]
	for c := 0; c < db.opts.Cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					db.abortFlag.Store(true)
					if r != errEpochUnwound {
						v := r
						panicked.CompareAndSwap(nil, &v)
					}
				}
			}()
			f(c)
		}(c)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
}

// rowRef returns an unattributed row handle (CauseOther): reads issued by
// transaction execution, digests, and stats. Paths that know their cause
// use rowRefTag.
func (db *DB) rowRef(off int64) rowRef {
	return db.rowRefTag(off, obs.CauseOther)
}

// rowRefTag returns a row handle crediting its device traffic to c.
func (db *DB) rowRefTag(off int64, c obs.Cause) rowRef {
	return rowRef{dev: db.dev.Tag(c), off: off, rowSize: db.layout.RowSize}
}

func (db *DB) cacheOn() bool {
	return db.opts.CacheEnabled && db.opts.Mode.caches()
}
