package core

import (
	"bytes"
	"fmt"
	"testing"

	"nvcaracal/internal/nvm"
)

// testOptsJournal returns testOpts with the persistent index journal on.
func testOptsJournal(cores int, journalBytes int64) Options {
	opts := testOpts(cores)
	opts.PersistIndex = true
	opts.Layout.IndexLogBytes = journalBytes
	if err := opts.Layout.Finalize(); err != nil {
		panic(err)
	}
	return opts
}

func openJournalDB(t *testing.T, cores int, journalBytes int64) (*DB, *nvm.Device, Options) {
	t.Helper()
	opts := testOptsJournal(cores, journalBytes)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, opts
}

func TestJournalRecoverySkipsScan(t *testing.T) {
	db, dev, opts := openJournalDB(t, 2, 1<<20)
	var load []*Txn
	for i := uint64(0); i < 50; i++ {
		load = append(load, mkInsert(i, []byte{byte(i)}))
	}
	mustRun(t, db, load)
	mustRun(t, db, []*Txn{mkSet(1, []byte("x")), mkDelete(2)})
	dev.Crash(nvm.CrashStrict, 1)

	db2, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedIndexJournal {
		t.Fatal("journal enabled but scan used")
	}
	if rep.RowsScanned != 0 {
		t.Fatalf("RowsScanned = %d with journal", rep.RowsScanned)
	}
	if rep.JournalEntries == 0 {
		t.Fatal("no journal entries replayed")
	}
	wantGet(t, db2, 1, []byte("x"))
	wantGet(t, db2, 2, nil)
	if db2.RowCount() != 49 {
		t.Fatalf("RowCount = %d, want 49", db2.RowCount())
	}
}

func TestJournalRecoveryMatchesScanRecovery(t *testing.T) {
	// Run the identical schedule against a journal DB and a scan DB,
	// crash both at the same fail-point, and require identical recovered
	// state.
	type variant struct {
		opts Options
		dev  *nvm.Device
		db   *DB
	}
	mk := func(journal bool) *variant {
		var opts Options
		if journal {
			opts = testOptsJournal(2, 1<<20)
		} else {
			opts = testOpts(2)
		}
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		return &variant{opts: opts, dev: dev, db: db}
	}
	for _, failAfter := range []int64{3, 9, 17, 31} {
		vs := []*variant{mk(false), mk(true)}
		for _, v := range vs {
			var load []*Txn
			for i := uint64(0); i < 20; i++ {
				load = append(load, mkInsert(i, []byte{byte(i)}))
			}
			mustRun(t, v.db, load)
			mustRun(t, v.db, []*Txn{mkSet(3, bigVal('q'))}) // non-inline + GC queue
			batch := []*Txn{mkRMW(0, 'a'), mkRMW(0, 'b'), mkSet(3, bigVal('r')), mkDelete(5), mkInsert(90, []byte("new"))}
			func() {
				defer func() {
					if r := recover(); r != nil && r != nvm.ErrInjectedCrash {
						panic(r)
					}
				}()
				v.dev.SetFailAfter(failAfter)
				v.db.RunEpoch(batch)
				v.dev.SetFailAfter(0)
			}()
			v.dev.Crash(nvm.CrashStrict, failAfter)
		}
		dbScan, repScan, err := Recover(vs[0].dev, vs[0].opts)
		if err != nil {
			t.Fatal(err)
		}
		dbJrn, repJrn, err := Recover(vs[1].dev, vs[1].opts)
		if err != nil {
			t.Fatal(err)
		}
		if !repJrn.UsedIndexJournal {
			t.Fatal("journal variant fell back to scan")
		}
		if repScan.ReplayedEpoch != repJrn.ReplayedEpoch {
			t.Fatalf("failAfter=%d: replay divergence scan=%d journal=%d",
				failAfter, repScan.ReplayedEpoch, repJrn.ReplayedEpoch)
		}
		for k := uint64(0); k < 95; k++ {
			v1, ok1 := dbScan.Get(tblKV, k)
			v2, ok2 := dbJrn.Get(tblKV, k)
			if ok1 != ok2 || !bytes.Equal(v1, v2) {
				t.Fatalf("failAfter=%d key=%d: scan %q/%v vs journal %q/%v",
					failAfter, k, v1, ok1, v2, ok2)
			}
		}
	}
}

func TestJournalCompaction(t *testing.T) {
	// A small journal forces snapshot compaction; recovery must still work.
	db, dev, opts := openJournalDB(t, 1, 8192)
	var load []*Txn
	for i := uint64(0); i < 30; i++ {
		load = append(load, mkInsert(i, []byte{byte(i)}))
	}
	mustRun(t, db, load) // ~30 puts = 654 B
	// Many epochs of churn to wrap the 8 KiB region repeatedly.
	for e := 0; e < 40; e++ {
		mustRun(t, db, []*Txn{
			mkSet(uint64(e%30), []byte{byte(e)}),
			mkDelete(uint64((e + 7) % 30)),
			mkInsert(uint64((e+7)%30), []byte{byte(e + 1)}),
		})
	}
	dev.Crash(nvm.CrashStrict, 2)
	db2, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedIndexJournal {
		t.Fatal("compacted journal did not validate")
	}
	if db2.RowCount() != 30 {
		t.Fatalf("RowCount = %d", db2.RowCount())
	}
}

func TestJournalOverflowFallsBackToScan(t *testing.T) {
	// A journal too small even for the snapshot goes sticky-overflow and
	// recovery must take the scan path with a correct result.
	db, dev, opts := openJournalDB(t, 1, 4096)
	var load []*Txn
	for i := uint64(0); i < 400; i++ { // snapshot needs 400*21 B > 4096
		load = append(load, mkInsert(i, []byte{byte(i)}))
	}
	mustRun(t, db, load)
	mustRun(t, db, []*Txn{mkSet(7, []byte("seven"))})
	dev.Crash(nvm.CrashStrict, 3)
	db2, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UsedIndexJournal {
		t.Fatal("overflowed journal was trusted")
	}
	if rep.RowsScanned != 400 {
		t.Fatalf("RowsScanned = %d", rep.RowsScanned)
	}
	wantGet(t, db2, 7, []byte("seven"))
}

func TestJournalCrashSweep(t *testing.T) {
	// The crash-sweep discipline with the journal enabled: every fail
	// point must recover to an exact epoch boundary.
	pre, post := journalReferenceStates(t)
	committed := false
	for failAfter := int64(1); !committed && failAfter < 5000; failAfter++ {
		db, dev, opts := openJournalDB(t, 2, 1<<20)
		journalLoad(t, db)
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					fired = true
				}
			}()
			dev.SetFailAfter(failAfter)
			db.RunEpoch(journalSweepBatch())
			dev.SetFailAfter(0)
		}()
		if !fired {
			committed = true
		}
		dev.Crash(nvm.CrashStrict, failAfter)
		db2, rep, err := Recover(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := post
		if fired && rep.ReplayedEpoch == 0 {
			want = pre
		}
		for k, v := range want {
			got, ok := db2.Get(tblKV, k)
			desc := fmt.Sprintf("failAfter=%d journal=%v", failAfter, rep.UsedIndexJournal)
			if v == nil {
				if ok {
					t.Fatalf("%s: key %d present", desc, k)
				}
				continue
			}
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("%s: key %d got %q want %q", desc, k, got, v)
			}
		}
	}
	if !committed {
		t.Fatal("sweep never completed")
	}
}

// journalSweepBatch mirrors the core_test crash-sweep batch with the
// package-internal builders (this file's registry decodes their type ids;
// the kit's ids would not replay here).
func journalSweepBatch() []*Txn {
	return []*Txn{
		mkRMW(0, 'a'),
		mkRMW(0, 'b'),
		mkSet(1, bytes.Repeat([]byte{0xEE}, 200)),
		mkDelete(2),
		mkInsert(50, []byte("fresh")),
		mkAbortSet(3, []byte("discard"), true),
		mkRMW(4, 'z'),
	}
}

func journalSnapshotKV(db *DB) map[uint64][]byte {
	m := map[uint64][]byte{}
	for k := uint64(0); k < 60; k++ {
		if v, ok := db.Get(tblKV, k); ok {
			m[k] = append([]byte(nil), v...)
		} else {
			m[k] = nil
		}
	}
	return m
}

func journalLoad(t *testing.T, db *DB) {
	t.Helper()
	var load []*Txn
	for i := uint64(0); i < 6; i++ {
		load = append(load, mkInsert(i, []byte{byte('A' + i)}))
	}
	mustRun(t, db, load)
	mustRun(t, db, []*Txn{
		mkSet(1, bytes.Repeat([]byte{0xDD}, 180)),
		mkRMW(0, 'x'),
	})
}

func journalReferenceStates(t *testing.T) (pre, post map[uint64][]byte) {
	t.Helper()
	db, _, _ := openJournalDB(t, 2, 1<<20)
	journalLoad(t, db)
	pre = journalSnapshotKV(db)
	mustRun(t, db, journalSweepBatch())
	post = journalSnapshotKV(db)
	return pre, post
}

func TestJournalValidateRequiresLoggingMode(t *testing.T) {
	opts := testOptsJournal(1, 1<<16)
	opts.Mode = ModeNoLogging
	dev := nvm.New(opts.Layout.TotalBytes())
	if _, err := Open(dev, opts); err == nil {
		t.Fatal("PersistIndex accepted without logging mode")
	}
	opts2 := testOpts(1)
	opts2.PersistIndex = true // but no journal region
	dev2 := nvm.New(opts2.Layout.TotalBytes())
	if _, err := Open(dev2, opts2); err == nil {
		t.Fatal("PersistIndex accepted without journal region")
	}
}

func TestJournalDisabledDeviceRecoveredWithScan(t *testing.T) {
	// A DB run WITHOUT journaling, recovered with a journal-less config,
	// still works (baseline sanity for the guard logic).
	db, dev := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v"))})
	dev.Crash(nvm.CrashStrict, 1)
	db2, rep := recoverTestDB(t, dev, 1)
	if rep.UsedIndexJournal {
		t.Fatal("no journal region but journal path used")
	}
	wantGet(t, db2, 1, []byte("v"))
}
