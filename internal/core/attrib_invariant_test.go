package core

import (
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// openAttrib opens a database with attribution attached.
func openAttrib(t *testing.T, cores int, mode StorageMode) (*DB, *nvm.Device, *obs.Attrib) {
	t.Helper()
	opts := testOpts(cores)
	opts.Mode = mode
	if mode == ModeAllNVMM {
		opts.CacheEnabled = false
	}
	o := obs.New(obs.Config{Attrib: true})
	opts.Obs = o
	a := o.Attrib()
	dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithAttrib(a))
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, a
}

// multiWriteBatch returns an epoch where every row receives several writes,
// so a persist-every-write design would pay multiple NVMM writes per row
// while the dual-version design persists only the final one.
func multiWriteBatch(rows int, round byte) []*Txn {
	var batch []*Txn
	for k := 0; k < rows; k++ {
		key := uint64(k)
		batch = append(batch,
			mkSet(key, smallVal(round)),
			mkRMW(key, round),
			mkRMW(key, round+1),
		)
	}
	return batch
}

// The paper's core claim, as an attribution invariant: in the dual-version
// modes, intermediate versions never touch NVMM — every one of the
// multi-write rows attributes exactly zero intermediate-persist line writes.
func TestInvariantDualVersionZeroIntermediateWrites(t *testing.T) {
	for _, mode := range []StorageMode{ModeNVCaracal, ModeNoLogging} {
		t.Run(mode.String(), func(t *testing.T) {
			db, _, a := openAttrib(t, 2, mode)
			var inserts []*Txn
			for k := 0; k < 50; k++ {
				inserts = append(inserts, mkInsert(uint64(k), smallVal('i')))
			}
			mustRun(t, db, inserts)
			for e := 0; e < 3; e++ {
				mustRun(t, db, multiWriteBatch(50, byte(e)))
			}
			if c := a.Counts(obs.CauseIntermediate); c.LineWrites != 0 || c.BytesWritten != 0 || c.Flushes != 0 {
				t.Fatalf("dual-version mode persisted intermediates: %+v", c)
			}
			// The write-amplification window must still have seen the logical
			// intermediate writes, or the counterfactual is meaningless.
			s := a.Snapshot()
			if s.LogicalWrites <= s.CommittedRows {
				t.Fatalf("logical writes %d not above committed rows %d for a multi-write workload",
					s.LogicalWrites, s.CommittedRows)
			}
			if s.CounterfactualLines == 0 {
				t.Fatal("counterfactual line count not accumulated")
			}
		})
	}
}

// The persist-every-write baselines must, by the same accounting, show
// nonzero intermediate traffic — otherwise the invariant above is vacuous.
func TestInvariantBaselinesPersistIntermediates(t *testing.T) {
	for _, mode := range []StorageMode{ModeHybrid, ModeAllNVMM} {
		t.Run(mode.String(), func(t *testing.T) {
			db, _, a := openAttrib(t, 2, mode)
			var inserts []*Txn
			for k := 0; k < 50; k++ {
				inserts = append(inserts, mkInsert(uint64(k), smallVal('i')))
			}
			mustRun(t, db, inserts)
			mustRun(t, db, multiWriteBatch(50, 1))
			if c := a.Counts(obs.CauseIntermediate); c.LineWrites == 0 {
				t.Fatalf("baseline %v attributed no intermediate writes", mode)
			}
		})
	}
}

// PersistAllRatio is the dual-version savings headline: with multiple writes
// per row per epoch it must exceed 1 (the counterfactual writes strictly
// more lines than the dual-version row path).
func TestInvariantPersistAllRatioAboveOne(t *testing.T) {
	db, _, a := openAttrib(t, 2, ModeNVCaracal)
	var inserts []*Txn
	for k := 0; k < 50; k++ {
		inserts = append(inserts, mkInsert(uint64(k), smallVal('i')))
	}
	mustRun(t, db, inserts)
	a.Reset() // measure steady-state epochs, not the load
	for e := 0; e < 3; e++ {
		mustRun(t, db, multiWriteBatch(50, byte(e)))
	}
	j := a.JSON()
	cum := j.WriteAmp.Cumulative
	if cum.PersistAllRatio <= 1 {
		t.Fatalf("persist-all ratio = %v, want > 1 (window %+v)", cum.PersistAllRatio, cum)
	}
	for _, w := range j.WriteAmp.Epochs {
		if w.PersistAllRatio <= 1 {
			t.Fatalf("epoch %d ratio = %v, want > 1", w.Epoch, w.PersistAllRatio)
		}
	}
}
