package core

import (
	"bytes"
	"fmt"
	"testing"

	"nvcaracal/internal/nvm"
)

// TestCrashSweepEveryPersistBoundary is the exhaustive crash test: it runs
// the same epoch repeatedly, each time injecting a power failure after one
// more flushed line, until the epoch finally commits. After every crash the
// database must recover to either the pre-epoch state (log not durable) or
// the complete post-epoch state (deterministic replay) — never anything in
// between.
func TestCrashSweepEveryPersistBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}

	// Build the reference states once.
	preState, postState := referenceStates(t)

	committedAt := int64(-1)
	for failAfter := int64(1); committedAt < 0; failAfter++ {
		if failAfter > 10_000 {
			t.Fatal("epoch never commits; sweep diverged")
		}
		db, dev := openTestDB(t, 2)
		loadSweepData(t, db)

		batch := sweepBatch()
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					fired = true
				}
			}()
			dev.SetFailAfter(failAfter)
			if _, err := db.RunEpoch(batch); err != nil {
				t.Fatal(err)
			}
			dev.SetFailAfter(0)
		}()
		if !fired {
			committedAt = failAfter
		}
		dev.Crash(nvm.CrashStrict, failAfter)

		db2, rep := recoverTestDB(t, dev, 2)
		want := preState
		if !fired || rep.ReplayedEpoch != 0 {
			// Epoch committed, or the log survived and was replayed.
			if rep.ReplayedEpoch != 0 || !fired {
				want = postState
			}
		}
		if fired && rep.ReplayedEpoch == 0 {
			want = preState
		}
		for k, v := range want {
			got, ok := db2.Get(tblKV, k)
			if v == nil {
				if ok {
					t.Fatalf("failAfter=%d: key %d present, want absent", failAfter, k)
				}
				continue
			}
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("failAfter=%d (fired=%v replayed=%d): key %d got %q want %q",
					failAfter, fired, rep.ReplayedEpoch, k, got, v)
			}
		}
	}
	t.Logf("epoch commits after %d flushed lines; every earlier crash point recovered exactly", committedAt)
}

// The sweep workload mixes all operation kinds: updates (inline and
// non-inline), an insert, a delete, RMW chains on a hot key, and an abort.
func sweepBatch() []*Txn {
	return []*Txn{
		mkRMW(0, 'a'),
		mkRMW(0, 'b'), // hot-key chain: intermediate version stays transient
		mkSet(1, bytes.Repeat([]byte{0xEE}, 200)), // non-inline value
		mkDelete(2),
		mkInsert(50, []byte("fresh")),
		mkAbortSet(3, []byte("discard"), true),
		mkRMW(4, 'z'),
	}
}

func loadSweepData(t *testing.T, db *DB) {
	t.Helper()
	var load []*Txn
	for i := uint64(0); i < 6; i++ {
		load = append(load, mkInsert(i, []byte{byte('A' + i)}))
	}
	mustRun(t, db, load)
	// A second epoch updating some rows, so persistent rows hold two
	// versions and the doomed epoch's GC has real work.
	mustRun(t, db, []*Txn{
		mkSet(1, bytes.Repeat([]byte{0xDD}, 180)), // non-inline: queued for major GC
		mkRMW(0, 'x'),
	})
}

// referenceStates computes the exact pre- and post-epoch states by running
// the schedule without any crash.
func referenceStates(t *testing.T) (pre, post map[uint64][]byte) {
	t.Helper()
	db, _ := openTestDB(t, 2)
	loadSweepData(t, db)
	pre = snapshotKV(db)
	mustRun(t, db, sweepBatch())
	post = snapshotKV(db)
	return pre, post
}

func snapshotKV(db *DB) map[uint64][]byte {
	m := map[uint64][]byte{}
	for k := uint64(0); k < 60; k++ {
		if v, ok := db.Get(tblKV, k); ok {
			m[k] = append([]byte(nil), v...)
		} else {
			m[k] = nil
		}
	}
	return m
}

// TestCrashSweepWithChaosEviction repeats a coarser sweep with chaos
// eviction enabled, so arbitrary lines become durable between the injected
// crash points — the worst case for torn descriptors.
func TestCrashSweepWithChaosEviction(t *testing.T) {
	preState, postState := referenceStates(t)
	for seed := int64(1); seed <= 8; seed++ {
		for _, failAfter := range []int64{2, 5, 9, 14, 20, 27, 35, 44} {
			opts := testOpts(2)
			dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithChaosEviction(4, seed))
			db, err := Open(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			loadSweepData(t, db)

			fired := false
			func() {
				defer func() {
					if r := recover(); r != nil {
						if r != nvm.ErrInjectedCrash {
							panic(r)
						}
						fired = true
					}
				}()
				dev.SetFailAfter(failAfter)
				db.RunEpoch(sweepBatch())
				dev.SetFailAfter(0)
			}()
			dev.Crash(nvm.CrashRandom, seed*1000+failAfter)

			db2, rep := recoverTestDB(t, dev, 2)
			// Three legal outcomes: the epoch committed before the crash
			// (or its epoch record reached the persistence domain via an
			// eviction — that IS the commit point, since all epoch data is
			// fenced before the record is written), the log survived and
			// the epoch replayed, or the epoch vanished entirely.
			want := postState
			epochCommitted := rep.CheckpointEpoch >= 3 || rep.ReplayedEpoch == 3
			if fired && !epochCommitted {
				want = preState
			}
			for k, v := range want {
				got, ok := db2.Get(tblKV, k)
				desc := fmt.Sprintf("seed=%d failAfter=%d fired=%v replayed=%d key=%d",
					seed, failAfter, fired, rep.ReplayedEpoch, k)
				if v == nil {
					if ok {
						t.Fatalf("%s: present, want absent", desc)
					}
					continue
				}
				if !ok || !bytes.Equal(got, v) {
					t.Fatalf("%s: got %q want %q", desc, got, v)
				}
			}
		}
	}
}
