// The exhaustive crash sweeps live in package core_test and drive the
// engine through the shared crash-test kit (internal/crashcheck/kit), the
// same scaffolding the crash-consistency model checker uses, so the sweep
// workload is recoverable by replay without this file carrying its own
// builders and registries.
package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
)

const (
	sweepCores  = 2
	sweepMaxKey = 64 // all sweep keys live below this
)

// sweepFlavour is one epoch shape swept over every persist boundary: warm
// runs the committed history, doom runs the epoch the crash lands in
// (epoch number doomed). Both build fresh transaction values on every call
// because the engine consumes Txn objects.
type sweepFlavour struct {
	name   string
	doomed uint64
	warm   func(t *testing.T, db *core.DB)
	doom   func(db *core.DB) (fired bool, err error)
}

func mustEpoch(t *testing.T, db *core.DB, batch []*core.Txn) {
	t.Helper()
	if _, err := db.RunEpoch(batch); err != nil {
		t.Fatal(err)
	}
}

// --- caracal flavour: mixed operation kinds, epochs 1-2 warm, epoch 3 doomed.

func sweepWarm(t *testing.T, db *core.DB) {
	t.Helper()
	var load []*core.Txn
	for i := uint64(0); i < 6; i++ {
		load = append(load, kit.MkInsert(i, []byte{byte('A' + i)}))
	}
	mustEpoch(t, db, load)
	// A second epoch updating some rows, so persistent rows hold two
	// versions and the doomed epoch's GC has real work.
	mustEpoch(t, db, []*core.Txn{
		kit.MkSet(1, bytes.Repeat([]byte{0xDD}, 180)), // non-inline: queued for major GC
		kit.MkRMW(0, 'x'),
	})
}

// sweepBatch mixes all operation kinds: updates (inline and non-inline),
// an insert, a delete, RMW chains on a hot key, and an abort.
func sweepBatch() []*core.Txn {
	return []*core.Txn{
		kit.MkRMW(0, 'a'),
		kit.MkRMW(0, 'b'), // hot-key chain: intermediate version stays transient
		kit.MkSet(1, bytes.Repeat([]byte{0xEE}, 200)), // non-inline value
		kit.MkDelete(2),
		kit.MkInsert(50, []byte("fresh")),
		kit.MkAbortSet(3, []byte("discard")),
		kit.MkRMW(4, 'z'),
	}
}

// --- aria flavour: same warm history, doomed epoch is Aria-flavoured, so
// the crash lands in snapshot execution and recovery replays through the
// aria marker path.

func ariaSweepBatch() []*core.AriaTxn {
	return []*core.AriaTxn{
		kit.AriaRMW(0, 'a'),
		kit.AriaSet(1, bytes.Repeat([]byte{0xEE}, 200)),
		kit.AriaDelete(2),
		kit.AriaSet(50, []byte("fresh")),
		kit.AriaTransfer(4, 5), // WAW-conflicts with the RMW below: deterministic abort
		kit.AriaRMW(4, 'z'),
	}
}

// --- major-gc flavour: every warm epoch overwrites a set of non-inline
// values, so the doomed epoch runs major GC with a full free ring — the
// crash points land inside the free-list persist phase (ring flush, fence,
// current-tail stage) as well as the usual log/row phases.

func gcVal(k uint64, e int) []byte {
	return bytes.Repeat([]byte{byte(0x10*e) ^ byte(k)}, 180+int(k%40))
}

func gcWarm(t *testing.T, db *core.DB) {
	t.Helper()
	var load []*core.Txn
	for i := uint64(0); i < 10; i++ {
		load = append(load, kit.MkInsert(i, gcVal(i, 0)))
	}
	mustEpoch(t, db, load)
	for e := 1; e <= 3; e++ {
		var b []*core.Txn
		for i := uint64(0); i < 10; i++ {
			b = append(b, kit.MkSet(i, gcVal(i, e)))
		}
		mustEpoch(t, db, b)
	}
}

func gcSweepBatch() []*core.Txn {
	var b []*core.Txn
	for i := uint64(0); i < 8; i++ {
		b = append(b, kit.MkSet(i, gcVal(i, 9)))
	}
	return append(b, kit.MkDelete(8), kit.MkInsert(60, []byte("gc-new")), kit.MkRMW(9, 'q'))
}

func sweepFlavours() []sweepFlavour {
	return []sweepFlavour{
		{
			name: "caracal", doomed: 3,
			warm: sweepWarm,
			doom: func(db *core.DB) (bool, error) { return kit.RunUntilCrash(db, sweepBatch()) },
		},
		{
			name: "aria", doomed: 3,
			warm: sweepWarm,
			doom: func(db *core.DB) (bool, error) { return kit.RunAriaUntilCrash(db, ariaSweepBatch()) },
		},
		{
			name: "major-gc", doomed: 5,
			warm: gcWarm,
			doom: func(db *core.DB) (bool, error) { return kit.RunUntilCrash(db, gcSweepBatch()) },
		},
	}
}

// refStates computes the flavour's exact pre- and post-epoch states by
// running the schedule without any crash.
func (fl sweepFlavour) refStates(t *testing.T) (pre, post map[uint64][]byte) {
	t.Helper()
	opts := kit.Options(sweepCores)
	db, err := core.Open(nvm.New(opts.Layout.TotalBytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	fl.warm(t, db)
	pre = kit.SnapshotKV(db, sweepMaxKey)
	if fired, err := fl.doom(db); fired || err != nil {
		t.Fatalf("crash-free reference run: fired=%v err=%v", fired, err)
	}
	post = kit.SnapshotKV(db, sweepMaxKey)
	return pre, post
}

func kvEqual(a, b map[uint64][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || !bytes.Equal(v, w) {
			return false
		}
	}
	return true
}

func diffKV(t *testing.T, desc string, db *core.DB, want map[uint64][]byte) {
	t.Helper()
	got := kit.SnapshotKV(db, sweepMaxKey)
	for k, v := range want {
		g, ok := got[k]
		if !ok || !bytes.Equal(g, v) {
			t.Fatalf("%s: key %d got %q (present=%v) want %q", desc, k, g, ok, v)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Fatalf("%s: key %d present (%q), want absent", desc, k, got[k])
		}
	}
}

// TestCrashSweepEveryPersistBoundary is the exhaustive crash test: for
// each epoch flavour it runs the same doomed epoch repeatedly, each time
// injecting a power failure after one more flushed line, until the epoch
// finally commits. After every crash the database must recover to either
// the pre-epoch state (log not durable) or the complete post-epoch state
// (deterministic replay) — never anything in between. The flavours cover
// Caracal execution, Aria snapshot execution (replayed through the aria
// marker path), and an epoch whose major GC has a full free ring.
func TestCrashSweepEveryPersistBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	for _, fl := range sweepFlavours() {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			pre, post := fl.refStates(t)
			if kvEqual(pre, post) {
				t.Fatal("doomed epoch is a no-op; the sweep would prove nothing")
			}
			committedAt := int64(-1)
			for failAfter := int64(1); committedAt < 0; failAfter++ {
				if failAfter > 20_000 {
					t.Fatal("epoch never commits; sweep diverged")
				}
				opts := kit.Options(sweepCores)
				dev := nvm.New(opts.Layout.TotalBytes())
				db, err := core.Open(dev, opts)
				if err != nil {
					t.Fatal(err)
				}
				fl.warm(t, db)

				dev.SetFailAfter(failAfter)
				fired, err := fl.doom(db)
				dev.SetFailAfter(0)
				if err != nil {
					t.Fatalf("failAfter=%d: %v", failAfter, err)
				}
				if !fired {
					committedAt = failAfter
				}
				dev.Crash(nvm.CrashStrict, failAfter)

				db2, rep, err := core.Recover(dev, kit.Options(sweepCores))
				if err != nil {
					t.Fatalf("failAfter=%d: recover: %v", failAfter, err)
				}
				committed := !fired || rep.CheckpointEpoch >= fl.doomed || rep.ReplayedEpoch == fl.doomed
				want := pre
				if committed {
					want = post
				}
				diffKV(t, fmt.Sprintf("%s failAfter=%d fired=%v ckpt=%d replayed=%d",
					fl.name, failAfter, fired, rep.CheckpointEpoch, rep.ReplayedEpoch), db2, want)
			}
			t.Logf("%s: epoch commits after %d flushed lines; every earlier crash point recovered exactly",
				fl.name, committedAt)
		})
	}
}

// TestCrashSweepWithChaosEviction repeats a coarser sweep with chaos
// eviction enabled, so arbitrary lines become durable between the injected
// crash points — the worst case for torn descriptors.
func TestCrashSweepWithChaosEviction(t *testing.T) {
	fl := sweepFlavours()[0] // caracal
	pre, post := fl.refStates(t)
	for seed := int64(1); seed <= 8; seed++ {
		for _, failAfter := range []int64{2, 5, 9, 14, 20, 27, 35, 44} {
			opts := kit.Options(sweepCores)
			dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithChaosEviction(4, seed))
			db, err := core.Open(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			fl.warm(t, db)

			dev.SetFailAfter(failAfter)
			fired, err := fl.doom(db)
			dev.SetFailAfter(0)
			if err != nil {
				t.Fatalf("seed=%d failAfter=%d: %v", seed, failAfter, err)
			}
			dev.Crash(nvm.CrashRandom, seed*1000+failAfter)

			db2, rep, err := core.Recover(dev, kit.Options(sweepCores))
			if err != nil {
				t.Fatalf("seed=%d failAfter=%d: recover: %v", seed, failAfter, err)
			}
			// Three legal outcomes: the epoch committed before the crash (or
			// its epoch record reached the persistence domain via an eviction
			// — that IS the commit point, since all epoch data is fenced
			// before the record is written), the log survived and the epoch
			// replayed, or the epoch vanished entirely.
			committed := !fired || rep.CheckpointEpoch >= fl.doomed || rep.ReplayedEpoch == fl.doomed
			want := pre
			if committed {
				want = post
			}
			diffKV(t, fmt.Sprintf("chaos seed=%d failAfter=%d fired=%v replayed=%d",
				seed, failAfter, fired, rep.ReplayedEpoch), db2, want)
		}
	}
}
