package core

import (
	"runtime"
	"sync/atomic"
)

// valueKind classifies a transient version value.
type valueKind uint8

const (
	// vkData is a regular value.
	vkData valueKind = iota
	// vkDeleted marks a row deletion at this serial id.
	vkDeleted
	// vkIgnore marks a version whose writer aborted; readers skip it
	// (paper §4.6).
	vkIgnore
	// vkNotFound is the initial version of a row that does not exist before
	// this epoch (i.e. the row is being inserted this epoch).
	vkNotFound
)

// versionVal is one materialized version value in the transient pool. The
// struct itself is immutable after publication through the version array's
// atomic slot.
type versionVal struct {
	kind valueKind
	data []byte
	// nvOff/nvLen locate the bytes on the NVMM device for ModeAllNVMM,
	// where transient values live in (and are re-read from) NVMM scratch.
	// -1 when the value lives in DRAM.
	nvOff int64
	nvLen int
}

var (
	ignoreVal   = &versionVal{kind: vkIgnore, nvOff: -1}
	deletedVal  = &versionVal{kind: vkDeleted, nvOff: -1}
	notFoundVal = &versionVal{kind: vkNotFound, nvOff: -1}
)

// versionArray holds all versions of one row within one epoch, sorted by
// serial id (paper §3.1.2): slot 0 is the initial version (the row's state
// entering the epoch), and the remaining slots are the pending versions
// pre-created by the initialization phase. Writers publish values into
// their pre-assigned slot with an atomic store; readers binary-search for
// the latest version below their own serial id and spin while it is
// pending (nil).
type versionArray struct {
	epoch  uint64
	sids   []uint64 // ascending; sids[0] == 0 is the initial version
	vals   []atomic.Pointer[versionVal]
	maxSID uint64 // sids[len-1]: the final writer, which persists to NVMM

	// abort, shared from the DB, breaks spin waits when a sibling worker
	// panicked (e.g. an injected crash) so the epoch can unwind.
	abort *atomic.Bool

	// wasCached notes that the row had a cached version entering this
	// epoch; with CacheHotOnly it marks the row as worth re-caching.
	wasCached bool
}

func newVersionArray(epoch uint64, sids []uint64, abort *atomic.Bool) *versionArray {
	va := &versionArray{
		epoch:  epoch,
		sids:   sids,
		vals:   make([]atomic.Pointer[versionVal], len(sids)),
		maxSID: sids[len(sids)-1],
		abort:  abort,
	}
	return va
}

// slotOf returns the index whose sid equals the writer's sid. The append
// step guarantees presence; a miss is an engine bug.
func (va *versionArray) slotOf(sid uint64) int {
	lo, hi := 1, len(va.sids)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case va.sids[mid] == sid:
			return mid
		case va.sids[mid] < sid:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	panic("core: writer sid not found in version array")
}

// readSlot returns the index of the latest version with sid strictly below
// the reader's sid. Index 0 (the initial version) is the floor.
func (va *versionArray) readSlot(sid uint64) int {
	lo, hi := 0, len(va.sids)-1
	ans := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if va.sids[mid] < sid {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans
}

// waitValue spins until slot i is published, then returns it. The
// deterministic serial order guarantees progress: a reader only ever waits
// on smaller serial ids, and the smallest unfinished transaction never
// waits (see engine.go's worker assignment).
func (va *versionArray) waitValue(i int) *versionVal {
	for spins := 0; ; spins++ {
		if v := va.vals[i].Load(); v != nil {
			return v
		}
		if spins < 64 {
			continue
		}
		if va.abort != nil && va.abort.Load() {
			panic(errEpochUnwound)
		}
		runtime.Gosched()
	}
}

// resolveRead walks down from the slot for the reader's sid, skipping
// IGNORE markers from aborted writers, and returns the first real value
// (which may be vkDeleted, vkNotFound, or slot 0's initial version).
func (va *versionArray) resolveRead(sid uint64) *versionVal {
	for i := va.readSlot(sid); ; i-- {
		v := va.waitValue(i)
		if v.kind != vkIgnore {
			return v
		}
		if i == 0 {
			panic("core: initial version marked ignore")
		}
	}
}

// latestCommitted returns the latest non-ignore version at or below slot
// hi, waiting out pending slots. Used by an aborted final writer to find
// the value that must be persisted in its stead (§4.6). Returns the slot
// index and value.
func (va *versionArray) latestCommitted(hi int) (int, *versionVal) {
	for i := hi; ; i-- {
		v := va.waitValue(i)
		if v.kind != vkIgnore {
			return i, v
		}
		if i == 0 {
			panic("core: initial version marked ignore")
		}
	}
}

// cachedVersion is the DRAM copy of a row's latest persistent value
// (paper §4.2). stamp is the last epoch that created or touched it, driving
// the K-epoch LRU eviction.
type cachedVersion struct {
	data    []byte
	deleted bool // cached "row does not exist" is never stored; kept for clarity
	stamp   atomic.Uint64
}

// rowState is the DRAM index entry for one row (Figure 3's row index).
type rowState struct {
	nvOff int64 // persistent row offset
	owner int32 // owner core: routes init-phase work and major GC

	// va is the row's version array for the current epoch, published by
	// the append step. Stale arrays from prior epochs are detected via
	// va.epoch (paper §5.1's stale-pointer trick).
	va atomic.Pointer[versionArray]

	// cached is the row's cached version, nil when evicted or invalidated.
	cached atomic.Pointer[cachedVersion]

	// onEvictList notes the row is already queued on some eviction list so
	// concurrent cache fills do not double-queue it.
	onEvictList atomic.Bool
}

// currentVA returns the row's version array if it belongs to epoch, else
// nil.
func (rs *rowState) currentVA(epoch uint64) *versionArray {
	va := rs.va.Load()
	if va != nil && va.epoch == epoch {
		return va
	}
	return nil
}
