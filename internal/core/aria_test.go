package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/wal"
)

// Aria test transaction types.
const (
	atSet uint16 = 0xA100 + iota
	atRMW
	atTransfer
	atDelete
	atAbort
)

func amkSet(key uint64, val []byte) *AriaTxn {
	in := binary.LittleEndian.AppendUint64(nil, key)
	in = append(in, val...)
	return &AriaTxn{
		TypeID: atSet, Input: in,
		Exec: func(ctx *AriaCtx) {
			ctx.Write(tblKV, key, val)
		},
	}
}

func amkRMW(key uint64, suffix byte) *AriaTxn {
	in := append(binary.LittleEndian.AppendUint64(nil, key), suffix)
	return &AriaTxn{
		TypeID: atRMW, Input: in,
		Exec: func(ctx *AriaCtx) {
			old, _ := ctx.Read(tblKV, key)
			ctx.Write(tblKV, key, append(append([]byte(nil), old...), suffix))
		},
	}
}

func amkTransfer(from, to uint64) *AriaTxn {
	in := binary.LittleEndian.AppendUint64(nil, from)
	in = binary.LittleEndian.AppendUint64(in, to)
	return &AriaTxn{
		TypeID: atTransfer, Input: in,
		Exec: func(ctx *AriaCtx) {
			f, _ := ctx.Read(tblKV, from)
			tv, _ := ctx.Read(tblKV, to)
			if len(f) == 0 {
				ctx.Abort()
				return
			}
			ctx.Write(tblKV, from, f[:len(f)-1])
			ctx.Write(tblKV, to, append(append([]byte(nil), tv...), f[len(f)-1]))
		},
	}
}

func amkDelete(key uint64) *AriaTxn {
	return &AriaTxn{
		TypeID: atDelete, Input: binary.LittleEndian.AppendUint64(nil, key),
		Exec: func(ctx *AriaCtx) {
			ctx.Delete(tblKV, key)
		},
	}
}

func ariaRegistry() *AriaRegistry {
	r := NewAriaRegistry()
	r.Register(atSet, func(d []byte, _ *DB) (*AriaTxn, error) {
		return amkSet(binary.LittleEndian.Uint64(d), d[8:]), nil
	})
	r.Register(atRMW, func(d []byte, _ *DB) (*AriaTxn, error) {
		return amkRMW(binary.LittleEndian.Uint64(d), d[8]), nil
	})
	r.Register(atTransfer, func(d []byte, _ *DB) (*AriaTxn, error) {
		return amkTransfer(binary.LittleEndian.Uint64(d), binary.LittleEndian.Uint64(d[8:])), nil
	})
	r.Register(atDelete, func(d []byte, _ *DB) (*AriaTxn, error) {
		return amkDelete(binary.LittleEndian.Uint64(d)), nil
	})
	return r
}

func openAriaDB(t *testing.T, cores int) (*DB, *nvm.Device, Options) {
	t.Helper()
	opts := testOpts(cores)
	opts.AriaRegistry = ariaRegistry()
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, opts
}

func mustAria(t *testing.T, db *DB, batch []*AriaTxn) AriaResult {
	t.Helper()
	res, err := db.RunEpochAria(batch)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAriaInsertAndRead(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	res := mustAria(t, db, []*AriaTxn{amkSet(1, []byte("one")), amkSet(2, []byte("two"))})
	if res.Committed != 2 || res.ConflictAborted != 0 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, []byte("one"))
	wantGet(t, db, 2, []byte("two"))
}

func TestAriaWAWConflict(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	// Two blind writes to the same key: the smaller serial id wins; the
	// other is deferred.
	res := mustAria(t, db, []*AriaTxn{amkSet(1, []byte("first")), amkSet(1, []byte("second"))})
	if res.Committed != 1 || res.ConflictAborted != 1 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, []byte("first"))
	if len(res.Deferred) != 1 {
		t.Fatalf("deferred = %d", len(res.Deferred))
	}
	// Resubmitting the loser commits it.
	res2 := mustAria(t, db, res.Deferred)
	if res2.Committed != 1 {
		t.Fatalf("res2 = %+v", res2)
	}
	wantGet(t, db, 1, []byte("second"))
}

func TestAriaRAWConflict(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("a"))})
	// T1 writes key 1; T2 reads key 1 (snapshot!) and writes key 2: T2
	// read a key written by a smaller sid, so T2 must abort.
	t2 := &AriaTxn{
		TypeID: atSet, Input: binary.LittleEndian.AppendUint64(nil, 2),
		Exec: func(ctx *AriaCtx) {
			v, _ := ctx.Read(tblKV, 1)
			ctx.Write(tblKV, 2, v)
		},
	}
	res := mustAria(t, db, []*AriaTxn{amkSet(1, []byte("new")), t2})
	if res.Committed != 1 || res.ConflictAborted != 1 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, []byte("new"))
	wantGet(t, db, 2, nil) // T2's write did not apply
}

func TestAriaSnapshotReads(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("old"))})
	var saw []byte
	reader := &AriaTxn{
		TypeID: atSet, Input: nil,
		Exec: func(ctx *AriaCtx) {
			v, _ := ctx.Read(tblKV, 1)
			saw = append([]byte(nil), v...)
		},
	}
	// Reader has a LARGER sid than the writer but still sees the snapshot.
	res := mustAria(t, db, []*AriaTxn{amkSet(1, []byte("new")), reader})
	if !bytes.Equal(saw, []byte("old")) {
		t.Fatalf("reader saw %q, want snapshot %q", saw, "old")
	}
	// The read-only reader has no writes: it commits despite the RAW-free
	// rule only applying to writers... it read a written key, so it aborts
	// under plain Aria.
	if res.ConflictAborted != 1 {
		t.Fatalf("res = %+v (reader should RAW-abort)", res)
	}
}

func TestAriaReadYourOwnWrites(t *testing.T) {
	db, _, _ := openAriaDB(t, 1)
	var saw []byte
	rw := &AriaTxn{
		TypeID: atSet, Input: nil,
		Exec: func(ctx *AriaCtx) {
			ctx.Write(tblKV, 5, []byte("mine"))
			v, _ := ctx.Read(tblKV, 5)
			saw = append([]byte(nil), v...)
			ctx.Delete(tblKV, 5)
			if _, ok := ctx.Read(tblKV, 5); ok {
				t.Error("read-own-delete returned a value")
			}
			ctx.Write(tblKV, 5, []byte("final"))
		},
	}
	mustAria(t, db, []*AriaTxn{rw})
	if !bytes.Equal(saw, []byte("mine")) {
		t.Fatalf("read-own-write = %q", saw)
	}
	wantGet(t, db, 5, []byte("final"))
}

func TestAriaUserAbort(t *testing.T) {
	db, _, _ := openAriaDB(t, 1)
	ab := &AriaTxn{
		TypeID: atAbort, Input: nil,
		Exec: func(ctx *AriaCtx) {
			ctx.Write(tblKV, 9, []byte("never"))
			ctx.Abort() // aria allows abort after writes: buffer is dropped
		},
	}
	res := mustAria(t, db, []*AriaTxn{ab})
	if res.UserAborted != 1 || res.Committed != 0 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 9, nil)
}

func TestAriaDeleteAndConvergence(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("x")), amkSet(2, []byte("y"))})
	res := mustAria(t, db, []*AriaTxn{amkDelete(1)})
	if res.Committed != 1 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, nil)
	wantGet(t, db, 2, []byte("y"))
}

func TestAriaDeferredConvergence(t *testing.T) {
	// Heavy contention: 16 RMWs on one key. Each round commits at least
	// one; resubmission must drain the rest in bounded rounds.
	db, _, _ := openAriaDB(t, 4)
	mustAria(t, db, []*AriaTxn{amkSet(1, nil)})
	batch := make([]*AriaTxn, 16)
	for i := range batch {
		batch[i] = amkRMW(1, byte('a'+i))
	}
	total := 0
	for round := 0; len(batch) > 0; round++ {
		if round > 20 {
			t.Fatal("aria did not converge")
		}
		res := mustAria(t, db, batch)
		total += res.Committed
		batch = res.Deferred
	}
	if total != 16 {
		t.Fatalf("committed %d of 16", total)
	}
	v, _ := db.Get(tblKV, 1)
	if len(v) != 16 {
		t.Fatalf("final value has %d bytes, want 16", len(v))
	}
}

func TestAriaInterleavedWithCaracalEpochs(t *testing.T) {
	db, _, _ := openAriaDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("c1"))})    // Caracal epoch
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("a1"))}) // Aria epoch
	mustRun(t, db, []*Txn{mkSet(1, []byte("c2"))})       // Caracal epoch
	res := mustAria(t, db, []*AriaTxn{amkRMW(1, '!')})   // Aria epoch
	if res.Committed != 1 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, []byte("c2!"))
	if db.Epoch() != 4 {
		t.Fatalf("epoch = %d", db.Epoch())
	}
}

func TestAriaCrashReplay(t *testing.T) {
	db, dev, opts := openAriaDB(t, 2)
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("ab")), amkSet(2, []byte("cd"))})

	// Log an aria epoch by hand (as RunEpochAria would) and crash before
	// execution.
	batch := []*AriaTxn{amkRMW(1, 'z'), amkTransfer(2, 1), amkDelete(3)}
	logAriaTxns(t, db, 2, batch)
	dev.Crash(nvm.CrashStrict, 5)

	db2, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedEpoch != 2 || rep.TxnsReplayed != 3 {
		t.Fatalf("rep = %+v", rep)
	}
	// Serial semantics: RMW(1,'z') -> "abz"; transfer moves 'd' from key 2
	// to key 1... but transfer reads the SNAPSHOT (key 1 = "ab", key 2 =
	// "cd") and writes key 1, conflicting with the RMW (smaller sid wins).
	// Transfer is deferred, delete(3) is a no-op commit.
	wantGet(t, db2, 1, []byte("abz"))
	wantGet(t, db2, 2, []byte("cd"))
}

// TestAriaCrashMidEpochReplayExact sweeps the fail-point across every
// persist boundary of an Aria epoch until it commits; each crash must
// recover to an exact epoch boundary.
func TestAriaCrashMidEpochReplayExact(t *testing.T) {
	committed := false
	for failAfter := int64(1); !committed; failAfter++ {
		if failAfter > 5000 {
			t.Fatal("aria epoch never commits")
		}
		db, dev, opts := openAriaDB(t, 2)
		var load []*AriaTxn
		for i := uint64(0); i < 12; i++ {
			load = append(load, amkSet(i, []byte{byte(i)}))
		}
		mustAria(t, db, load)

		batch := []*AriaTxn{amkRMW(1, 'p'), amkRMW(2, 'q'), amkRMW(1, 'r'), amkDelete(4)}
		fired := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if r != nvm.ErrInjectedCrash {
						panic(r)
					}
					fired = true
				}
			}()
			dev.SetFailAfter(failAfter)
			db.RunEpochAria(batch)
			dev.SetFailAfter(0)
		}()
		if !fired {
			committed = true
		}
		dev.Crash(nvm.CrashStrict, failAfter)
		db2, rep, err := Recover(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		applied := !fired || rep.ReplayedEpoch == 2
		if applied {
			wantGet(t, db2, 1, []byte{1, 'p'}) // rmw(1,'r') loses WAW to rmw(1,'p')
			wantGet(t, db2, 2, []byte{2, 'q'})
			wantGet(t, db2, 4, nil)
		} else {
			wantGet(t, db2, 1, []byte{1})
			wantGet(t, db2, 2, []byte{2})
			wantGet(t, db2, 4, []byte{4})
		}
	}
}

// logAriaTxns writes an aria epoch's log as RunEpochAria would.
func logAriaTxns(t *testing.T, db *DB, epoch uint64, batch []*AriaTxn) {
	t.Helper()
	recs := []wal.Record{{Type: ariaMarkerType}}
	for _, txn := range batch {
		recs = append(recs, wal.Record{Type: txn.TypeID, Data: txn.Input})
	}
	if err := db.log.WriteEpoch(epoch, recs); err != nil {
		t.Fatal(err)
	}
}

func TestAriaRecoveryWithoutRegistryFails(t *testing.T) {
	db, dev, opts := openAriaDB(t, 1)
	mustAria(t, db, []*AriaTxn{amkSet(1, []byte("x"))})
	logAriaTxns(t, db, 2, []*AriaTxn{amkRMW(1, 'z')})
	dev.Crash(nvm.CrashStrict, 1)
	bad := opts
	bad.AriaRegistry = nil
	if _, _, err := Recover(dev, bad); err == nil {
		t.Fatal("aria epoch recovered without AriaRegistry")
	}
}

// TestAriaMatchesSerialModel: committed transactions must be equivalent to
// executing the commit-order subset serially against the snapshot.
func TestAriaMatchesSerialModel(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db, _, _ := openAriaDB(t, 4)
		model := map[uint64][]byte{}
		var load []*AriaTxn
		for i := uint64(0); i < 10; i++ {
			v := []byte{byte(i)}
			load = append(load, amkSet(i, v))
			model[i] = v
		}
		mustAria(t, db, load)

		for e := 0; e < 5; e++ {
			type op struct {
				key    uint64
				suffix byte
			}
			var batch []*AriaTxn
			var ops []op
			for i := 0; i < 12; i++ {
				o := op{key: uint64(rng.Intn(10)), suffix: byte('a' + rng.Intn(26))}
				ops = append(ops, o)
				batch = append(batch, amkRMW(o.key, o.suffix))
			}
			res := mustAria(t, db, batch)
			// Model: the FIRST writer of each key commits against the
			// snapshot; later writers of the same key conflict-abort.
			firstWriter := map[uint64]int{}
			for i, o := range ops {
				if _, ok := firstWriter[o.key]; !ok {
					firstWriter[o.key] = i
				}
			}
			if res.Committed != len(firstWriter) {
				t.Fatalf("seed %d epoch %d: committed %d, model %d",
					seed, e, res.Committed, len(firstWriter))
			}
			for k, i := range firstWriter {
				model[k] = append(model[k], ops[i].suffix)
			}
			for k := uint64(0); k < 10; k++ {
				got, _ := db.Get(tblKV, k)
				if !bytes.Equal(got, model[k]) {
					t.Fatalf("seed %d epoch %d key %d: %q != %q", seed, e, k, got, model[k])
				}
			}
		}
	}
}
