// Package core implements the paper's primary contribution: a deterministic,
// epoch-based, multi-versioned database engine with NVMM-backed dual-version
// checkpointing (NVCaracal).
//
// Transactions are batched into epochs. Each epoch runs an initialization
// phase (insert step, major GC, cache eviction, append step) that performs
// all concurrency control, followed by an execution phase that runs the
// transactions against pre-created version arrays. Only the final write to
// each row in an epoch is persisted to NVMM; every intermediate version
// lives in a DRAM transient pool that is discarded wholesale at the epoch
// boundary. Failure recovery replays the crashed epoch's logged inputs on
// top of the previous epoch's checkpoint, which the dual-version persistent
// rows provide in place.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"nvcaracal/internal/obs"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/prof"
)

// StorageMode selects where versions live and what is persisted, matching
// the designs compared in the paper's evaluation (Figures 7 and 10).
type StorageMode int

const (
	// ModeNVCaracal is the paper's design: input logging, transient
	// intermediate versions in DRAM, final write per row per epoch to NVMM,
	// dual-version checkpointing.
	ModeNVCaracal StorageMode = iota
	// ModeNoLogging is NVCaracal without input logging. It cannot recover
	// from failures; it isolates the logging overhead (Figure 10).
	ModeNoLogging
	// ModeHybrid keeps version arrays in DRAM but writes every update —
	// intermediate or final — to NVMM immediately, like Zen or WBL, and
	// omits the input log (Figure 7's "hybrid").
	ModeHybrid
	// ModeAllNVMM stores version arrays and all version values in NVMM and
	// disables the DRAM cache: the naive baseline (Figure 7's "all-NVMM").
	ModeAllNVMM
	// ModeAllDRAM is the NVCaracal code path without logging, intended to
	// be run against a zero-latency device: the all-DRAM upper bound
	// (Figure 10). It cannot recover from failures.
	ModeAllDRAM
)

func (m StorageMode) String() string {
	switch m {
	case ModeNVCaracal:
		return "nvcaracal"
	case ModeNoLogging:
		return "no-logging"
	case ModeHybrid:
		return "hybrid"
	case ModeAllNVMM:
		return "all-nvmm"
	case ModeAllDRAM:
		return "all-dram"
	default:
		return fmt.Sprintf("StorageMode(%d)", int(m))
	}
}

// logs reports whether the mode persists an input log each epoch.
func (m StorageMode) logs() bool { return m == ModeNVCaracal }

// persistsIntermediates reports whether every version write goes to NVMM.
func (m StorageMode) persistsIntermediates() bool {
	return m == ModeHybrid || m == ModeAllNVMM
}

// caches reports whether the DRAM cached-version optimization applies.
func (m StorageMode) caches() bool { return m != ModeAllNVMM }

// Options configures a DB.
type Options struct {
	// Cores is the number of worker cores (and per-core pools). Defaults to
	// GOMAXPROCS.
	Cores int
	// Mode selects the storage design. Default ModeNVCaracal.
	Mode StorageMode
	// Layout describes the NVMM region. Zero value selects a default layout
	// sized by pmem.DefaultLayout for 1<<16 rows and values per core.
	Layout pmem.Layout
	// CacheEnabled turns on DRAM cached versions (paper §4.2). ModeAllNVMM
	// forces it off.
	CacheEnabled bool
	// CacheK is the eviction horizon: cached versions not accessed in the
	// last K epochs are evicted. Paper default 20.
	CacheK int
	// CacheOnRead creates a cached version when a read misses the cache and
	// falls through to NVMM, keeping hot read-only rows in DRAM.
	CacheOnRead bool
	// CacheHotOnly implements the paper's §7 caching extension: final
	// writes create a cached version only for rows identified as hot from
	// the epoch's write-set information — rows written more than once this
	// epoch, or rows that were already cached. Cold single-write rows skip
	// the cached-version cost that Figure 9 shows can be a net loss.
	CacheHotOnly bool
	// MinorGCEnabled enables the minor collector for rows whose stale
	// version is inline (paper §4.4/§5.3). When off, every collected row
	// goes through the major collector, as in the Figure 9 ablation.
	MinorGCEnabled bool
	// RevertOnRecovery enables the TPC-C recovery variant (paper §6.2.3):
	// persistent versions written by the crashed epoch are reverted during
	// the recovery scan because replay may write them under different keys.
	RevertOnRecovery bool
	// PersistIndex enables the persistent index journal (paper §7 future
	// work): index deltas are batched to NVMM at every epoch checkpoint so
	// recovery replays the journal instead of scanning every persistent
	// row. Requires Layout.IndexLogBytes > 0 and a logging mode. The
	// journal is strictly an accelerator: any validation failure falls
	// back to the scan.
	PersistIndex bool
	// AsyncPersist overlaps the tail of the persist phase — the checkpoint
	// fence, the epoch-record persist, and the allocator checkpoint release
	// — with whatever the caller does between epochs. RunEpoch then returns
	// after the epoch's writes are staged but before they are durable; the
	// next RunEpoch (or WaitDurable) blocks until the previous epoch has
	// committed, because the log region is rewritten and the checkpointed
	// pools are reopened for allocation only once the epoch record is
	// durable. Recovery replay always persists synchronously. Default off.
	AsyncPersist bool
	// Pipeline deepens AsyncPersist into a depth-1 epoch pipeline: a
	// background committer stage owns epoch N's *entire* checkpoint — the
	// per-core pool checkpoints (staged in parallel across the pool cores),
	// the counter parity-slot stores, the index-journal block, the
	// checkpoint fence, and the epoch record — while the caller's next
	// RunEpoch proceeds straight into epoch N+1's log serialization, insert
	// step, and major-GC phase 1. N+1 synchronizes only where correctness
	// requires it: each init worker waits for the committer to finish
	// staging its own core's pools before allocating or freeing from them
	// (the per-pool staging token), and N+1's init fence waits for N's
	// commit to retire entirely — rows are dual-version, not epoch-parity,
	// so no row write of N+1 may land before N's record is durable, and the
	// wait also keeps N+1's fences out of N's staged flush groups. Implies
	// AsyncPersist's return semantics (WaitDurable before snapshotting the
	// device); dual WAL parity slots make the overlapped log append safe.
	// Recovery replay always persists synchronously. Default off.
	Pipeline bool
	// Registry maps logged transaction type ids to decoders, required for
	// recovery replay when Mode logs.
	Registry *Registry
	// AriaRegistry maps Aria transaction type ids to decoders; required to
	// recover a crash during an Aria-flavoured epoch (RunEpochAria).
	AriaRegistry *AriaRegistry
	// Obs, when non-nil, receives epoch/phase/transaction latency
	// observations and trace spans. Nil (the default) leaves only nil-check
	// stubs on the hot paths; see internal/obs.
	Obs *obs.Obs
	// Prof, when non-nil, attaches the profiling hooks: every epoch phase
	// runs under a runtime/trace region plus a pprof "phase" goroutine
	// label, and the profiler's epoch-windowed captures read this engine's
	// epoch gauge. Nil (the default) costs one pointer check per phase; see
	// internal/prof.
	Prof *prof.Profiler
}

func (o *Options) applyDefaults() {
	if o.Cores <= 0 {
		o.Cores = runtime.GOMAXPROCS(0)
	}
	if o.CacheK <= 0 {
		o.CacheK = 20
	}
	if o.Layout.Cores == 0 {
		o.Layout = pmem.DefaultLayout(o.Cores, 1<<16, 1<<16)
	}
	if o.Mode == ModeAllNVMM {
		o.CacheEnabled = false
	}
	if o.Pipeline {
		// The pipeline subsumes the async tail; a single flag selects the
		// commit path in the engine.
		o.AsyncPersist = true
	}
}

func (o *Options) validate() error {
	if o.Layout.Cores != o.Cores {
		return fmt.Errorf("core: layout is for %d cores, options say %d", o.Layout.Cores, o.Cores)
	}
	if o.Mode.logs() && o.Registry == nil {
		return errors.New("core: logging mode requires a transaction Registry for replay")
	}
	if o.PersistIndex {
		if o.Layout.IndexLogBytes == 0 {
			return errors.New("core: PersistIndex requires Layout.IndexLogBytes > 0")
		}
		if !o.Mode.logs() {
			return errors.New("core: PersistIndex requires a logging mode")
		}
	}
	if o.Mode.persistsIntermediates() {
		// Intermediate versions land in the per-core NVMM scratch ring; any
		// value the engine accepts (up to the largest value class) must fit,
		// or scratchAlloc would have to overrun the core's region.
		if o.Layout.ScratchPerCore <= 0 {
			return fmt.Errorf("core: mode %v requires Layout.ScratchPerCore > 0", o.Mode)
		}
		if max := o.Layout.MaxValueSize(); max > 0 && o.Layout.ScratchPerCore < max {
			return fmt.Errorf("core: Layout.ScratchPerCore %d cannot hold the largest value class %d",
				o.Layout.ScratchPerCore, max)
		}
	}
	return nil
}

// epochBits is the shift separating the epoch from the intra-epoch serial
// number within a SID. Epochs are strictly ordered; serial numbers order
// transactions within an epoch.
const epochBits = 24

// MakeSID composes a serial id from an epoch and a 1-based serial number.
func MakeSID(epoch uint64, serial uint64) uint64 { return epoch<<epochBits | serial }

// SIDEpoch extracts the epoch from a serial id.
func SIDEpoch(sid uint64) uint64 { return sid >> epochBits }

// MaxTxnsPerEpoch is the largest batch RunEpoch and RunEpochAria accept:
// serial numbers are 1-based and occupy the low epochBits of a SID, so a
// larger batch would overflow the serial field into the epoch bits and
// collide SIDs silently.
const MaxTxnsPerEpoch = 1<<epochBits - 1

// CheckBatchSize validates that an n-transaction batch fits in one epoch.
// Both epoch flavours apply it before assigning SIDs; batching front-ends
// use it to size batches (including any resubmitted conflict losers).
func CheckBatchSize(n int) error {
	if n > MaxTxnsPerEpoch {
		return fmt.Errorf("core: batch of %d exceeds max %d txns per epoch", n, MaxTxnsPerEpoch)
	}
	return nil
}
