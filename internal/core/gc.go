package core

import (
	"time"

	"nvcaracal/internal/obs"
)

// majorGC runs the major collector during the initialization phase of an
// epoch (§4.4, §5.5): every row queued last epoch with a non-inline stale
// first version has that version's value freed and the checkpointed second
// version copied down.
//
// The collection is crash-safe in two phases:
//
//	Phase 1 appends all value frees to the per-core free-list rings, fences
//	them durable, and only then persists the non-revertible current-tail
//	offsets (with a second fence). The order matters: recovery adopts the
//	ring entries the current-tail slot names, so the slot must never be
//	durable while the entries it covers are not — a crash between the two
//	flushes would otherwise let a partial persistence land the pointer
//	without the data, and recovery would adopt stale ring bytes as free
//	slots. A crash before the second fence reverts everything (full redo);
//	a crash after it keeps every free durable.
//	Phase 2 rewrites the rows (copy v2→v1, reset v2) with the
//	SID-before-pointer ordering; a crash mid-phase leaves rows that the
//	recovery scan re-queues, and the duplicate-suppression set (built from
//	the ring entries beyond the checkpointed tail) prevents double frees.
func (db *DB) majorGC(epoch uint64) {
	// Shard the pending rows to their owner cores so each core frees into
	// its own value pool.
	byOwner := make([][]*rowState, db.opts.Cores)
	for w := range db.gcPending {
		for _, rs := range db.gcPending[w] {
			byOwner[rs.owner] = append(byOwner[rs.owner], rs)
		}
		db.gcPending[w] = db.gcPending[w][:0]
	}

	pending := false
	for _, l := range byOwner {
		if len(l) > 0 {
			pending = true
			break
		}
	}

	// Only collections that actually rewrite rows get a span: an empty
	// pending set is a queue check, not a GC.
	var gcStart time.Time
	if pending && db.obs.On() {
		gcStart = time.Now()
		defer func() { db.obs.Span(obs.CoordinatorCore, epoch, obs.PhaseMajorGC, gcStart) }()
	}

	// Phase 1: append frees and flush the ring lines.
	db.parallel(func(owner int) {
		for _, rs := range byOwner[owner] {
			r := db.rowRefTag(rs.nvOff, obs.CauseMajorGC)
			v1 := r.readVersion(1)
			if v1.isNull() || v1.isInline() || v1.ptr == ptrNone {
				continue // inline staleness frees nothing
			}
			if db.replaying {
				if _, dup := db.gcDupSet[int64(v1.ptr)]; dup {
					continue // already durably freed by the crashed epoch
				}
			}
			db.freeValue(owner, int64(v1.ptr))
		}
		if pending {
			for k := range db.valPools {
				db.valPools[k][owner].FlushRing()
			}
		}
	})
	if pending {
		// Ring entries must be durable before the current-tail slots that
		// name them; skipped when nothing was queued (the current-tail
		// update is then a no-op range and needs no ordering).
		db.dev.Fence()
	}
	db.parallel(func(owner int) {
		for k := range db.valPools {
			db.valPools[k][owner].StageCurrentTail(epoch)
		}
	})
	db.dev.Fence()

	// Phase 2: rewrite rows.
	db.parallel(func(owner int) {
		for _, rs := range byOwner[owner] {
			r := db.rowRefTag(rs.nvOff, obs.CauseMajorGC)
			v2 := r.readVersion(2)
			if v2.isNull() {
				// Already collected (replay of a crashed collection that
				// completed this row).
				continue
			}
			r.writeVersion(1, v2)
			r.resetVersion(2)
			db.met.At(owner).AddMajorGC()
		}
	})
}

// evictCache drops cached versions that have not been created or accessed
// in the last K epochs (§4.2, §5.2). It runs during initialization, when no
// transactions execute, so no synchronization with row accesses is needed.
// Entries touched more recently than the target epoch are forwarded to the
// ring slot of their last-access epoch instead of being evicted.
func (db *DB) evictCache(epoch uint64) {
	k := uint64(db.opts.CacheK)
	if epoch <= k+1 {
		return
	}
	target := epoch - k - 1
	ringLen := uint64(len(db.evictRing))
	slot := int(target % ringLen)
	list := db.evictRing[slot]
	db.evictRing[slot] = nil
	for _, rs := range list {
		cv := rs.cached.Load()
		if cv == nil {
			rs.onEvictList.Store(false)
			continue
		}
		stamp := cv.stamp.Load()
		if stamp <= target {
			rs.cached.Store(nil)
			rs.onEvictList.Store(false)
			db.met.CacheDrop(int64(len(cv.data)))
			continue
		}
		db.evictRing[stamp%ringLen] = append(db.evictRing[stamp%ringLen], rs)
	}
}
