package core

import (
	"time"

	"nvcaracal/internal/obs"
)

// majorGCState carries a major collection across the epoch's init fence:
// majorGCBegin runs phase 1 (frees + ring flushes, no fence of its own),
// the caller issues the epoch's single initialization fence, and
// majorGCFinish runs phase 2 (row rewrites).
type majorGCState struct {
	byOwner [][]*rowState
	pending bool
	start   time.Time
}

// majorGCBegin runs phase 1 of the major collector during the
// initialization phase of an epoch (§4.4, §5.5): every row queued last
// epoch with a non-inline stale first version has that version's value
// appended to its owner core's free ring as a stamped GC entry
// (Pool.FreeGC), and the touched ring lines are flushed.
//
// The collection is crash-safe in two phases:
//
//	Phase 1 appends all value frees to the per-core free-list rings as
//	self-validating stamped entries and flushes the touched lines. It
//	issues no fence: the epoch's single init fence (issued by the caller
//	between Begin and Finish) makes the entries durable before any row is
//	rewritten. Recovery adopts durably-landed GC entries by verifying
//	their stamps, so no separate non-revertible current-tail persist (and
//	no second fence) is needed. A crash before the init fence can land any
//	subset of entries; the replayed collection's duplicate-suppression set
//	(built from the adopted entries) prevents double frees.
//	Phase 2 (majorGCFinish) rewrites the rows (copy v2→v1, reset v2) with
//	the SID-before-pointer ordering; a crash mid-phase leaves rows that
//	the recovery scan re-queues. Any row observed collected (v2 null)
//	implies its free is durable: row rewrites only start after the init
//	fence, which committed every GC ring entry.
func (db *DB) majorGCBegin(epoch uint64) majorGCState {
	// Shard the pending rows to their owner cores so each core frees into
	// its own value pool.
	byOwner := make([][]*rowState, db.opts.Cores)
	for w := range db.gcPending {
		for _, rs := range db.gcPending[w] {
			byOwner[rs.owner] = append(byOwner[rs.owner], rs)
		}
		db.gcPending[w] = db.gcPending[w][:0]
	}

	pending := false
	for _, l := range byOwner {
		if len(l) > 0 {
			pending = true
			break
		}
	}

	st := majorGCState{byOwner: byOwner, pending: pending}
	// Only collections that actually rewrite rows get a span: an empty
	// pending set is a queue check, not a GC.
	if pending && db.obs.On() {
		st.start = time.Now()
		n := 0
		for _, l := range byOwner {
			n += len(l)
		}
		db.obs.Flight().Record(obs.EvGCBegin, obs.CoordinatorCore, epoch, int64(n), 0)
	}
	if !pending {
		return st
	}

	// Phase 1: append frees as stamped GC entries and flush the ring lines.
	// The collector runs inside the init phase on the coordinator, so the
	// profiling region is nested: end restores the "init" label.
	defer db.opts.Prof.RegionNested(obs.PhaseMajorGC.String(), obs.PhaseInit.String())()
	db.parallel(func(owner int) {
		// Under the pipeline the previous epoch's committer may still be
		// staging this core's pools; frees reopen per core as soon as its
		// own staging token closes.
		db.waitPoolStaged(owner)
		for _, rs := range byOwner[owner] {
			r := db.rowRefTag(rs.nvOff, obs.CauseMajorGC)
			v1 := r.readVersion(1)
			if v1.isNull() || v1.isInline() || v1.ptr == ptrNone {
				continue // inline staleness frees nothing
			}
			if db.replaying {
				if _, dup := db.gcDupSet[int64(v1.ptr)]; dup {
					continue // already durably freed by the crashed epoch
				}
			}
			db.freeValueGC(owner, int64(v1.ptr), epoch)
		}
		for k := range db.valPools {
			db.valPools[k][owner].FlushRing()
		}
	})
	return st
}

// majorGCFinish runs phase 2 of the major collector: rewriting the queued
// rows. The caller must have issued a fence after majorGCBegin — phase 2
// must never overwrite a stale version whose free is not yet durable.
func (db *DB) majorGCFinish(epoch uint64, st majorGCState) {
	if !st.pending {
		return
	}
	defer db.opts.Prof.RegionNested(obs.PhaseMajorGC.String(), obs.PhaseInit.String())()
	db.parallel(func(owner int) {
		for _, rs := range st.byOwner[owner] {
			r := db.rowRefTag(rs.nvOff, obs.CauseMajorGC)
			v2 := r.readVersion(2)
			if v2.isNull() {
				// Already collected (replay of a crashed collection that
				// completed this row).
				continue
			}
			r.writeVersion(1, v2)
			r.resetVersion(2)
			db.met.At(owner).AddMajorGC()
		}
	})
	if !st.start.IsZero() {
		db.obs.Span(obs.CoordinatorCore, epoch, obs.PhaseMajorGC, st.start)
		db.obs.Flight().Record(obs.EvGCEnd, obs.CoordinatorCore, epoch, int64(time.Since(st.start)), 0)
	}
}

// evictCache drops cached versions that have not been created or accessed
// in the last K epochs (§4.2, §5.2). It runs during initialization, when no
// transactions execute, so no synchronization with row accesses is needed.
// Entries touched more recently than the target epoch are forwarded to the
// ring slot of their last-access epoch instead of being evicted.
func (db *DB) evictCache(epoch uint64) {
	k := uint64(db.opts.CacheK)
	if epoch <= k+1 {
		return
	}
	target := epoch - k - 1
	ringLen := uint64(len(db.evictRing))
	slot := int(target % ringLen)
	list := db.evictRing[slot]
	db.evictRing[slot] = nil
	for _, rs := range list {
		cv := rs.cached.Load()
		if cv == nil {
			rs.onEvictList.Store(false)
			continue
		}
		stamp := cv.stamp.Load()
		if stamp <= target {
			rs.cached.Store(nil)
			rs.onEvictList.Store(false)
			db.met.CacheDrop(int64(len(cv.data)))
			continue
		}
		db.evictRing[stamp%ringLen] = append(db.evictRing[stamp%ringLen], rs)
	}
}
