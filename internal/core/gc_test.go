package core

import (
	"bytes"
	"fmt"
	"testing"

	"nvcaracal/internal/nvm"
)

// bigVal returns a value too large to inline (inline half is 96 bytes for
// 256-byte rows).
func bigVal(b byte) []byte { return bytes.Repeat([]byte{b}, 200) }

// smallVal returns a value that inlines.
func smallVal(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }

func TestMinorGCInlineRows(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, smallVal('a'))})
	before := db.Metrics()
	// Two more updates: the second finds two inline versions and collects
	// the stale one in place.
	mustRun(t, db, []*Txn{mkSet(1, smallVal('b'))})
	mustRun(t, db, []*Txn{mkSet(1, smallVal('c'))})
	d := db.Metrics().Sub(before)
	if d.MinorGCs == 0 {
		t.Fatalf("MinorGCs = 0, want > 0")
	}
	if d.MajorGCs != 0 {
		t.Fatalf("MajorGCs = %d, want 0 for inline rows", d.MajorGCs)
	}
	wantGet(t, db, 1, smallVal('c'))
}

func TestMajorGCNonInlineRows(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, bigVal('a'))})
	mustRun(t, db, []*Txn{mkSet(1, bigVal('b'))}) // queues row for major GC
	before := db.Metrics()
	mustRun(t, db, []*Txn{mkSet(1, bigVal('c'))}) // major GC runs at init
	d := db.Metrics().Sub(before)
	if d.MajorGCs != 1 {
		t.Fatalf("MajorGCs = %d, want 1", d.MajorGCs)
	}
	wantGet(t, db, 1, bigVal('c'))
}

func TestMajorGCRecyclesValueSlots(t *testing.T) {
	// Updating one non-inline row for many epochs must not leak value
	// slots: the pool's bump should stabilize once the free list cycles.
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, bigVal('a'))})
	for i := 0; i < 30; i++ {
		mustRun(t, db, []*Txn{mkSet(1, bigVal(byte('a'+i%26)))})
	}
	bump := db.valPools[0][0].Bump()
	for i := 0; i < 30; i++ {
		mustRun(t, db, []*Txn{mkSet(1, bigVal(byte('A'+i%26)))})
	}
	if got := db.valPools[0][0].Bump(); got != bump {
		t.Fatalf("value pool bump grew %d -> %d: slots leak", bump, got)
	}
}

func TestRowSlotsRecycledAfterDelete(t *testing.T) {
	db, _ := openTestDB(t, 1)
	for round := 0; round < 5; round++ {
		mustRun(t, db, []*Txn{mkInsert(uint64(round), smallVal('x'))})
		mustRun(t, db, []*Txn{mkDelete(uint64(round))})
		// Let the free list checkpoint so slots become allocatable.
		mustRun(t, db, nil)
	}
	if bump := db.rowPools[0].Bump(); bump > 3 {
		t.Fatalf("row pool bump = %d after churn; slots not recycled", bump)
	}
}

func TestMinorGCDisabledRoutesToMajor(t *testing.T) {
	opts := testOpts(1)
	opts.MinorGCEnabled = false
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(txns ...*Txn) {
		if _, err := db.RunEpoch(txns); err != nil {
			t.Fatal(err)
		}
	}
	run(mkInsert(1, smallVal('a')))
	run(mkSet(1, smallVal('b')))
	run(mkSet(1, smallVal('c')))
	m := db.Metrics()
	if m.MinorGCs != 0 {
		t.Fatalf("MinorGCs = %d with minor GC disabled", m.MinorGCs)
	}
	if m.MajorGCs == 0 {
		t.Fatal("MajorGCs = 0: stale versions never collected")
	}
	got, _ := db.Get(tblKV, 1)
	if !bytes.Equal(got, smallVal('c')) {
		t.Fatalf("value = %q", got)
	}
}

func TestCacheHitAvoidsNVMMRead(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, smallVal('a'))})
	// Update creates a cached version.
	mustRun(t, db, []*Txn{mkSet(1, smallVal('b'))})
	before := db.Metrics()
	// A read-only epoch: the read must hit the cache, not NVMM.
	readTxn := &Txn{
		TypeID: ttInsert, Input: encSet(99, nil),
		Ops: []Op{{Table: tblKV, Key: 99, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			if v, ok := ctx.Read(tblKV, 1); !ok || !bytes.Equal(v, smallVal('b')) {
				t.Errorf("read through cache got %q", v)
			}
			ctx.Insert(tblKV, 99, nil)
		},
	}
	mustRun(t, db, []*Txn{readTxn})
	d := db.Metrics().Sub(before)
	if d.CacheHits == 0 {
		t.Fatal("no cache hit recorded")
	}
	if d.RowReads != 0 {
		t.Fatalf("RowReads = %d, want 0 (cache should serve)", d.RowReads)
	}
}

func TestCacheEvictionAfterKEpochs(t *testing.T) {
	db, _ := openTestDB(t, 1) // CacheK = 4 in testOpts
	mustRun(t, db, []*Txn{mkInsert(1, smallVal('a'))})
	mustRun(t, db, []*Txn{mkSet(1, smallVal('b'))}) // cached at epoch 2
	if db.Metrics().CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1", db.Metrics().CacheEntries)
	}
	// Run K+2 idle epochs: the cached version must be evicted.
	for i := 0; i < 7; i++ {
		mustRun(t, db, nil)
	}
	if got := db.Metrics().CacheEntries; got != 0 {
		t.Fatalf("CacheEntries = %d after idle epochs, want 0", got)
	}
	// The data must still be readable from NVMM.
	wantGet(t, db, 1, smallVal('b'))
}

func TestCacheKeptWhileAccessed(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, smallVal('a')), mkInsert(2, nil)})
	mustRun(t, db, []*Txn{mkSet(1, smallVal('b'))})
	// Touch the row every epoch for 10 epochs: it must stay cached.
	for i := 0; i < 10; i++ {
		touch := &Txn{
			TypeID: ttSet, Input: encSet(2, nil),
			Ops: []Op{{Table: tblKV, Key: 2, Kind: OpUpdate}},
			Exec: func(ctx *Ctx) {
				ctx.Read(tblKV, 1)
				ctx.Write(tblKV, 2, nil)
			},
		}
		mustRun(t, db, []*Txn{touch})
	}
	if got := db.Metrics().CacheEntries; got < 1 {
		t.Fatalf("hot row evicted: CacheEntries = %d", got)
	}
}

func TestCacheDisabled(t *testing.T) {
	opts := testOpts(1)
	opts.CacheEnabled = false
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	db.RunEpoch([]*Txn{mkInsert(1, smallVal('a'))})
	db.RunEpoch([]*Txn{mkSet(1, smallVal('b'))})
	if db.Metrics().CacheEntries != 0 {
		t.Fatalf("CacheEntries = %d with cache disabled", db.Metrics().CacheEntries)
	}
	got, _ := db.Get(tblKV, 1)
	if !bytes.Equal(got, smallVal('b')) {
		t.Fatalf("value = %q", got)
	}
}

// runModeEpochs exercises a workload in a given storage mode and returns
// the db for verification.
func runModeEpochs(t *testing.T, mode StorageMode) *DB {
	t.Helper()
	opts := testOpts(2)
	opts.Mode = mode
	if mode == ModeAllNVMM {
		opts.CacheEnabled = false
	}
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var load []*Txn
	for i := uint64(0); i < 20; i++ {
		load = append(load, mkInsert(i, smallVal(byte(i))))
	}
	if _, err := db.RunEpoch(load); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		var batch []*Txn
		for i := uint64(0); i < 20; i++ {
			batch = append(batch, mkRMW(i%4, byte('a'+i)))
		}
		if _, err := db.RunEpoch(batch); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAllStorageModesProduceSameState(t *testing.T) {
	var want map[uint64][]byte
	for _, mode := range []StorageMode{ModeNVCaracal, ModeNoLogging, ModeHybrid, ModeAllNVMM, ModeAllDRAM} {
		t.Run(mode.String(), func(t *testing.T) {
			db := runModeEpochs(t, mode)
			got := map[uint64][]byte{}
			for i := uint64(0); i < 20; i++ {
				v, ok := db.Get(tblKV, i)
				if !ok {
					t.Fatalf("key %d missing", i)
				}
				got[i] = append([]byte(nil), v...)
			}
			if want == nil {
				want = got
				return
			}
			for k, v := range want {
				if !bytes.Equal(got[k], v) {
					t.Fatalf("mode %v key %d: %q != %q", mode, k, got[k], v)
				}
			}
		})
	}
}

func TestHybridWritesMoreNVMMThanNVCaracal(t *testing.T) {
	// Under contention, hybrid persists every intermediate update while
	// NVCaracal persists only finals: hybrid must write more NVMM bytes
	// during execution (NVCaracal's log bytes are separate).
	measure := func(mode StorageMode) int64 {
		opts := testOpts(2)
		opts.Mode = mode
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		var load []*Txn
		for i := uint64(0); i < 4; i++ {
			load = append(load, mkInsert(i, smallVal(byte(i))))
		}
		db.RunEpoch(load)
		dev.ResetStats()
		var batch []*Txn
		for i := 0; i < 64; i++ {
			batch = append(batch, mkRMW(uint64(i%4), byte(i)))
		}
		db.RunEpoch(batch)
		return dev.Stats().BytesWritten
	}
	hybrid := measure(ModeHybrid)
	nvc := measure(ModeNoLogging) // exclude log bytes for a fair comparison
	if hybrid <= nvc {
		t.Fatalf("hybrid wrote %d bytes <= nvcaracal %d under contention", hybrid, nvc)
	}
}

func TestMemoryBreakdown(t *testing.T) {
	db, _ := openTestDB(t, 2)
	var load []*Txn
	for i := uint64(0); i < 50; i++ {
		load = append(load, mkInsert(i, bigVal(byte(i))))
	}
	mustRun(t, db, load)
	var upd []*Txn
	for i := uint64(0); i < 50; i++ {
		upd = append(upd, mkSet(i, bigVal(byte(i+1))))
	}
	mustRun(t, db, upd)
	m := db.Memory()
	if m.IndexBytes == 0 {
		t.Error("IndexBytes = 0")
	}
	if m.RowBytes < 50*256 {
		t.Errorf("RowBytes = %d, want >= %d", m.RowBytes, 50*256)
	}
	if m.ValueBytes == 0 {
		t.Error("ValueBytes = 0 for non-inline values")
	}
	if m.TransientPeak == 0 {
		t.Error("TransientPeak = 0")
	}
	if m.CacheBytes == 0 {
		t.Error("CacheBytes = 0 with caching on")
	}
	if m.DRAMTotal() <= 0 || m.NVMMTotal() <= 0 {
		t.Error("totals not positive")
	}
}

func TestTransientShareGrowsWithContention(t *testing.T) {
	// The paper's central claim: higher contention → more intermediate
	// writes absorbed by DRAM.
	share := func(hot int) float64 {
		opts := testOpts(2)
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		var load []*Txn
		for i := uint64(0); i < 100; i++ {
			load = append(load, mkInsert(i, smallVal(byte(i))))
		}
		db.RunEpoch(load)
		before := db.Metrics()
		var batch []*Txn
		for i := 0; i < 200; i++ {
			var k uint64
			if i%10 < hot {
				k = uint64(i % 2) // hot set of 2 rows
			} else {
				k = uint64(10 + i%90)
			}
			batch = append(batch, mkRMW(k, byte(i)))
		}
		db.RunEpoch(batch)
		return db.Metrics().Sub(before).TransientShare()
	}
	low := share(0)
	high := share(7)
	if high <= low {
		t.Fatalf("transient share did not grow with contention: low=%.2f high=%.2f", low, high)
	}
	if high < 0.3 {
		t.Fatalf("high-contention transient share %.2f implausibly low", high)
	}
}

func TestEpochResultTimings(t *testing.T) {
	db, _ := openTestDB(t, 2)
	res := mustRun(t, db, []*Txn{mkInsert(1, smallVal('a'))})
	if res.Total() <= 0 {
		t.Fatalf("Total = %v", res.Total())
	}
	if res.Epoch != 1 {
		t.Fatalf("Epoch = %d", res.Epoch)
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[StorageMode]string{
		ModeNVCaracal: "nvcaracal",
		ModeNoLogging: "no-logging",
		ModeHybrid:    "hybrid",
		ModeAllNVMM:   "all-nvmm",
		ModeAllDRAM:   "all-dram",
	} {
		if m.String() != want {
			t.Errorf("%v", m)
		}
	}
	if fmt.Sprint(StorageMode(99)) == "" {
		t.Error("unknown mode prints empty")
	}
}

func TestSIDHelpers(t *testing.T) {
	sid := MakeSID(7, 42)
	if SIDEpoch(sid) != 7 {
		t.Fatalf("SIDEpoch = %d", SIDEpoch(sid))
	}
	if MakeSID(1, 1) >= MakeSID(2, 1) {
		t.Fatal("epoch ordering broken")
	}
	if MakeSID(1, 1) >= MakeSID(1, 2) {
		t.Fatal("serial ordering broken")
	}
}
