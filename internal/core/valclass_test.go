package core

import (
	"bytes"
	"testing"

	"nvcaracal/internal/nvm"
)

// testOptsMultiClass returns testOpts with power-of-two value size classes
// (§5.5's multi-pool extension).
func testOptsMultiClass(cores int) Options {
	opts := testOpts(cores)
	opts.Layout.ValueSize = 1024
	opts.Layout.ValueSizes = []int64{128, 256, 512}
	if err := opts.Layout.Finalize(); err != nil {
		panic(err)
	}
	return opts
}

func openMultiClassDB(t *testing.T, cores int) (*DB, *nvm.Device, Options) {
	t.Helper()
	opts := testOptsMultiClass(cores)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev, opts
}

func TestValueClassResolution(t *testing.T) {
	opts := testOptsMultiClass(1)
	classes := opts.Layout.ValueClasses()
	want := []int64{128, 256, 512, 1024}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v", classes)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
	if k := opts.Layout.ValueClassFor(100); classes[k] != 128 {
		t.Fatalf("100 B -> class %d", classes[k])
	}
	if k := opts.Layout.ValueClassFor(512); classes[k] != 512 {
		t.Fatalf("512 B -> class %d", classes[k])
	}
	if k := opts.Layout.ValueClassFor(2000); k != -1 {
		t.Fatalf("oversized mapped to class %d", k)
	}
}

func TestMultiClassMixedSizes(t *testing.T) {
	db, _, _ := openMultiClassDB(t, 2)
	sizes := []int{100, 200, 400, 900} // each lands in a different class
	var load []*Txn
	for i, n := range sizes {
		load = append(load, mkInsert(uint64(i), bytes.Repeat([]byte{byte('a' + i)}, n)))
	}
	mustRun(t, db, load)
	for i, n := range sizes {
		want := bytes.Repeat([]byte{byte('a' + i)}, n)
		wantGet(t, db, uint64(i), want)
	}
	// Each class's pool must have been used exactly once.
	for k := range db.valPools {
		var bump int64
		for c := range db.valPools[k] {
			bump += db.valPools[k][c].Bump()
		}
		if bump != 1 {
			t.Fatalf("class %d bump = %d, want 1", k, bump)
		}
	}
}

func TestMultiClassGCRecyclesWithinClass(t *testing.T) {
	db, _, _ := openMultiClassDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, bytes.Repeat([]byte{1}, 200))})
	// Alternate between two classes: each class's slots must recycle
	// without growing its bump, and frees must never cross classes.
	for i := 0; i < 30; i++ {
		n := 200
		if i%2 == 1 {
			n = 400
		}
		mustRun(t, db, []*Txn{mkSet(1, bytes.Repeat([]byte{byte(i)}, n))})
	}
	for k := range db.valPools {
		if bump := db.valPools[k][0].Bump(); bump > 3 {
			t.Fatalf("class %d bump = %d: slots leak across classes", k, bump)
		}
	}
	wantGet(t, db, 1, bytes.Repeat([]byte{29}, 400))
}

func TestMultiClassCrashRecovery(t *testing.T) {
	db, dev, opts := openMultiClassDB(t, 2)
	var load []*Txn
	for i := uint64(0); i < 8; i++ {
		load = append(load, mkInsert(i, bytes.Repeat([]byte{byte(i)}, 100+int(i)*120)))
	}
	mustRun(t, db, load)
	batch := []*Txn{
		mkSet(0, bytes.Repeat([]byte{0xAA}, 300)),
		mkSet(7, bytes.Repeat([]byte{0xBB}, 1000)),
		mkDelete(3),
	}
	logTxns(t, db, 2, batch)
	dev.Crash(nvm.CrashStrict, 11)
	db2, rep, err := Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReplayedEpoch != 2 {
		t.Fatalf("rep = %+v", rep)
	}
	wantGet(t, db2, 0, bytes.Repeat([]byte{0xAA}, 300))
	wantGet(t, db2, 7, bytes.Repeat([]byte{0xBB}, 1000))
	wantGet(t, db2, 3, nil)
	wantGet(t, db2, 1, bytes.Repeat([]byte{1}, 220))
}

func TestMultiClassAttachValidation(t *testing.T) {
	_, dev, opts := openMultiClassDB(t, 1)
	// Attaching with a different class list must fail.
	bad := testOpts(1)
	bad.Layout.ValueSizes = []int64{64}
	if err := bad.Layout.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dev, bad); err == nil {
		t.Fatal("class-list mismatch accepted")
	}
	_ = opts
}

func TestTooManyValueClasses(t *testing.T) {
	opts := testOpts(1)
	opts.Layout.ValueSizes = []int64{1, 2, 4, 8, 16, 32, 64}
	if err := opts.Layout.Finalize(); err == nil {
		t.Fatal("7 classes accepted")
	}
}
