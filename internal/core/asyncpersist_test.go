package core

import (
	"errors"
	"testing"

	"nvcaracal/internal/nvm"
)

// Async persist overlaps the epoch-commit tail (checkpoint fence, epoch
// record, allocator release) with the caller's between-epoch work. These
// tests pin its contract: state equivalence with the synchronous path,
// DurableEpoch lagging by at most one epoch until WaitDurable, and an
// injected crash inside the background commit surfacing as a panic at the
// next barrier instead of being swallowed.

func asyncBatch(e int) []*Txn {
	var b []*Txn
	for i := 0; i < 20; i++ {
		k := uint64(e*100 + i)
		b = append(b, mkInsert(k, []byte{byte(k), byte(k >> 8), byte(e)}))
	}
	return b
}

func TestAsyncPersistMatchesSyncState(t *testing.T) {
	run := func(async bool) (uint64, uint64) {
		opts := testOpts(2)
		opts.AsyncPersist = async
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 5; e++ {
			mustRun(t, db, asyncBatch(e))
		}
		db.WaitDurable()
		return db.StateDigest(), db.DurableEpoch()
	}
	syncDig, syncDur := run(false)
	asyncDig, asyncDur := run(true)
	if syncDig != asyncDig {
		t.Fatalf("async persist diverged from sync: %016x != %016x", asyncDig, syncDig)
	}
	if syncDur != asyncDur {
		t.Fatalf("durable epoch diverged: async %d, sync %d", asyncDur, syncDur)
	}
}

func TestAsyncPersistDurableEpochLagsAtMostOne(t *testing.T) {
	opts := testOpts(1)
	opts.AsyncPersist = true
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		mustRun(t, db, asyncBatch(e))
		ep, dur := db.Epoch(), db.DurableEpoch()
		if dur > ep || ep-dur > 1 {
			t.Fatalf("epoch %d: durable epoch %d out of [epoch-1, epoch]", ep, dur)
		}
	}
	db.WaitDurable()
	if ep, dur := db.Epoch(), db.DurableEpoch(); dur != ep {
		t.Fatalf("after WaitDurable: durable epoch %d != epoch %d", dur, ep)
	}
}

func TestAsyncPersistRecoversAfterWaitDurable(t *testing.T) {
	opts := testOpts(1)
	opts.AsyncPersist = true
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		mustRun(t, db, asyncBatch(e))
	}
	db.WaitDurable()
	want := db.StateDigest()

	// The drained device must recover to the identical state, even across
	// a strict crash: WaitDurable means everything is fenced.
	snap := dev.Snapshot()
	d2 := snap.NewDevice()
	d2.Crash(nvm.CrashStrict, 0)
	rdb, rep, err := Recover(d2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointEpoch != db.Epoch() {
		t.Fatalf("recovered checkpoint %d, want %d", rep.CheckpointEpoch, db.Epoch())
	}
	if got := rdb.StateDigest(); got != want {
		t.Fatalf("recovered digest %016x != %016x", got, want)
	}
}

func TestAsyncPersistCrashInCommitSurfacesAtBarrier(t *testing.T) {
	opts := testOpts(1)
	opts.AsyncPersist = true
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, db, asyncBatch(0))
	db.WaitDurable()

	// Measure one steady-state epoch's flush count; asyncBatch epochs are
	// shape-identical (same txn count and value sizes, fresh keys, no GC),
	// so the next epoch issues the same sequence. Its LAST flush is the
	// epoch record's own write-back, which runs inside the background
	// commit goroutine.
	mustRun(t, db, asyncBatch(1))
	db.WaitDurable()
	dev.ResetStats()
	mustRun(t, db, asyncBatch(2))
	db.WaitDurable()
	flushesPerEpoch := dev.Stats().Flushes

	caught := func() (r any) {
		defer func() { r = recover() }()
		dev.SetFailAfter(flushesPerEpoch) // dies on the epoch record flush
		if _, err := db.RunEpoch(asyncBatch(3)); err != nil {
			t.Fatal(err)
		}
		db.WaitDurable()
		return nil
	}()
	dev.SetFailAfter(0)
	if caught == nil {
		t.Fatal("injected crash never surfaced")
	}
	err, ok := caught.(error)
	if !ok || !errors.Is(err, nvm.ErrInjectedCrash) {
		t.Fatalf("surfaced panic %v, want ErrInjectedCrash", caught)
	}
	// Sticky: every later barrier re-raises.
	second := func() (r any) {
		defer func() { r = recover() }()
		db.WaitDurable()
		return nil
	}()
	if second == nil {
		t.Fatal("persist panic was not sticky")
	}
}
