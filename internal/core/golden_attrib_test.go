package core

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Per-cause golden attribution counts. Like TestGoldenAccessCounts, these
// pin the scientific output — here the *decomposition* of the device traffic
// by cause — for fixed seeded workloads. Any drift is a bug or a deliberate
// model change that must update the literals (GOLDEN_PRINT=1 to regenerate).

type attribGoldenCase struct {
	name     string
	cores    int
	mode     StorageMode
	workload func(*testing.T, *DB)
	perCause map[obs.Cause]obs.CauseCounts
}

// ycsbGoldenWorkload is a seeded YCSB-flavoured workload: a uniform-key
// read/update mix with a hot-key skew component, several updates landing on
// the same row per epoch so the dual-version design's final-write collapse
// is visible in the attribution.
func ycsbGoldenWorkload(t *testing.T, db *DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(54321))
	const rows = 300
	val := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return b
	}
	var batch []*Txn
	for k := uint64(0); k < rows; k++ {
		batch = append(batch, mkInsert(k, val(64+int(k%128))))
	}
	mustRun(t, db, batch)

	for e := 0; e < 5; e++ {
		batch = batch[:0]
		for i := 0; i < 400; i++ {
			var k uint64
			if rng.Intn(10) < 4 {
				k = uint64(rng.Intn(8)) // hot set: repeated writers per epoch
			} else {
				k = uint64(rng.Intn(rows))
			}
			if rng.Intn(2) == 0 {
				batch = append(batch, mkSet(k, val(64+int(k%128))))
			} else {
				batch = append(batch, mkRMW(k, byte(i)))
			}
		}
		mustRun(t, db, batch)
	}
}

func attribGoldenCases() []attribGoldenCase {
	return []attribGoldenCase{
		{
			name: "kv-nvcaracal-1core", cores: 1, mode: ModeNVCaracal, workload: goldenWorkload,
			perCause: map[obs.Cause]obs.CauseCounts{
				obs.CauseOther:        {LineReads: 3347, LineWrites: 56, BytesRead: 22925, BytesWritten: 448, Flushes: 56},
				obs.CausePersistFinal: {LineReads: 6979, LineWrites: 4272, BytesRead: 46400, BytesWritten: 97393, Flushes: 2556, Fences: 14},
				obs.CauseWALAppend:    {LineReads: 0, LineWrites: 1508, BytesRead: 0, BytesWritten: 96097, Flushes: 1508, Fences: 7},
				obs.CauseMinorGC:      {LineReads: 0, LineWrites: 657, BytesRead: 0, BytesWritten: 4380, Flushes: 219},
				obs.CauseMajorGC:      {LineReads: 666, LineWrites: 666, BytesRead: 4440, BytesWritten: 4440, Flushes: 222},
				obs.CauseAlloc:        {LineReads: 123, LineWrites: 734, BytesRead: 984, BytesWritten: 18416, Flushes: 307},
			},
		},
		{
			name: "kv-hybrid-2core", cores: 2, mode: ModeHybrid, workload: goldenWorkload,
			perCause: map[obs.Cause]obs.CauseCounts{
				obs.CauseOther:        {LineReads: 3347, LineWrites: 56, BytesRead: 22925, BytesWritten: 448, Flushes: 56},
				obs.CausePersistFinal: {LineReads: 6979, LineWrites: 4272, BytesRead: 46400, BytesWritten: 97393, Flushes: 2556, Fences: 14},
				obs.CauseIntermediate: {LineReads: 0, LineWrites: 912, BytesRead: 0, BytesWritten: 31942, Flushes: 912},
				obs.CauseMinorGC:      {LineReads: 0, LineWrites: 657, BytesRead: 0, BytesWritten: 4380, Flushes: 219},
				obs.CauseMajorGC:      {LineReads: 666, LineWrites: 666, BytesRead: 4440, BytesWritten: 4440, Flushes: 222, Fences: 5},
				obs.CauseAlloc:        {LineReads: 123, LineWrites: 776, BytesRead: 984, BytesWritten: 18752, Flushes: 336},
			},
		},
		{
			name: "ycsb-nvcaracal-2core", cores: 2, mode: ModeNVCaracal, workload: ycsbGoldenWorkload,
			perCause: map[obs.Cause]obs.CauseCounts{
				obs.CauseOther:        {LineReads: 5496, LineWrites: 48, BytesRead: 37039, BytesWritten: 384, Flushes: 48},
				obs.CausePersistFinal: {LineReads: 10575, LineWrites: 7227, BytesRead: 70500, BytesWritten: 169613, Flushes: 4291, Fences: 12},
				obs.CauseWALAppend:    {LineReads: 0, LineWrites: 2652, BytesRead: 0, BytesWritten: 169273, Flushes: 2652, Fences: 6},
				obs.CauseMinorGC:      {LineReads: 0, LineWrites: 684, BytesRead: 0, BytesWritten: 4560, Flushes: 228},
				obs.CauseMajorGC:      {LineReads: 2616, LineWrites: 2616, BytesRead: 17440, BytesWritten: 17440, Flushes: 872},
				obs.CauseAlloc:        {LineReads: 316, LineWrites: 1244, BytesRead: 2528, BytesWritten: 26752, Flushes: 438},
			},
		},
	}
}

func TestGoldenAttribCounts(t *testing.T) {
	for _, gc := range attribGoldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			opts := testOpts(gc.cores)
			opts.Mode = gc.mode
			o := obs.New(obs.Config{Attrib: true})
			opts.Obs = o
			a := o.Attrib()
			dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithAttrib(a))
			db, err := Open(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.ResetStats()
			a.Reset() // exclude Format, like the device goldens
			gc.workload(t, db)

			snap := a.Snapshot()
			if os.Getenv("GOLDEN_PRINT") != "" {
				fmt.Printf("%s:\n", gc.name)
				for c := obs.Cause(0); c < obs.NumCauses; c++ {
					cc := snap.PerCause[c]
					if cc == (obs.CauseCounts{}) {
						continue
					}
					fmt.Printf("  obs.%s: {LineReads: %d, LineWrites: %d, BytesRead: %d, BytesWritten: %d, Flushes: %d, FlushesElided: %d, Fences: %d},\n",
						causeIdents[c], cc.LineReads, cc.LineWrites, cc.BytesRead, cc.BytesWritten, cc.Flushes, cc.FlushesElided, cc.Fences)
				}
				return
			}

			for c := obs.Cause(0); c < obs.NumCauses; c++ {
				want := gc.perCause[c]
				if got := snap.PerCause[c]; got != want {
					t.Errorf("cause %s drifted:\n got  %+v\n want %+v", c, got, want)
				}
			}
			// The decomposition must tile the device's own counters exactly.
			st := dev.Stats()
			var rw, rr, bw, br, fl, el, fe int64
			for c := obs.Cause(0); c < obs.NumCauses; c++ {
				cc := snap.PerCause[c]
				rw += cc.LineWrites
				rr += cc.LineReads
				bw += cc.BytesWritten
				br += cc.BytesRead
				fl += cc.Flushes
				el += cc.FlushesElided
				fe += cc.Fences
			}
			if rw != st.LineWrites || rr != st.LineReads || bw != st.BytesWritten || br != st.BytesRead {
				t.Errorf("attribution does not tile Stats: r=%d/%d w=%d/%d br=%d/%d bw=%d/%d",
					rr, st.LineReads, rw, st.LineWrites, br, st.BytesRead, bw, st.BytesWritten)
			}
			if fl > st.Flushes {
				t.Errorf("attributed flushes %d exceed device write-backs %d", fl, st.Flushes)
			}
			// Fences and elided flushes are recorded at the device layer with
			// the issuing cause, so they must tile the device totals exactly.
			if fe != st.Fences {
				t.Errorf("attributed fences %d do not tile device fences %d", fe, st.Fences)
			}
			if el != st.FlushesElided {
				t.Errorf("attributed elided flushes %d do not tile device count %d", el, st.FlushesElided)
			}
		})
	}
}

// causeIdents maps causes to their Go identifiers for GOLDEN_PRINT output.
var causeIdents = map[obs.Cause]string{
	obs.CauseOther:        "CauseOther",
	obs.CausePersistFinal: "CausePersistFinal",
	obs.CauseIntermediate: "CauseIntermediate",
	obs.CauseWALAppend:    "CauseWALAppend",
	obs.CauseIdxJournal:   "CauseIdxJournal",
	obs.CauseMinorGC:      "CauseMinorGC",
	obs.CauseMajorGC:      "CauseMajorGC",
	obs.CauseRecovery:     "CauseRecovery",
	obs.CauseAlloc:        "CauseAlloc",
}
