package core

import (
	"fmt"
	"time"

	"nvcaracal/internal/index"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/wal"
)

// RecoveryReport breaks down a recovery the way Figure 11 of the paper
// does: loading logged transactions, scanning persistent rows and
// rebuilding the index, reverting crashed-epoch changes (TPC-C variant),
// and replaying the failed epoch.
type RecoveryReport struct {
	CheckpointEpoch  uint64
	ReplayedEpoch    uint64 // 0 when there was nothing to replay
	TxnsReplayed     int
	RowsScanned      int
	RowsRepaired     int // torn dual-version descriptors fixed (§4.5)
	RowsReverted     int // crashed-epoch versions reset (TPC-C, §6.2.3)
	GCListRebuilt    int // rows re-queued for the major collector
	CountersRestored int // persistent counter slots restored from parity

	// UsedIndexJournal reports that the index was rebuilt from the
	// persistent index journal (§7 extension) instead of the row scan;
	// JournalEntries counts the replayed journal records.
	UsedIndexJournal bool
	JournalEntries   int

	LoadTime   time.Duration
	ScanTime   time.Duration
	RevertTime time.Duration
	ReplayTime time.Duration
}

// Total returns the end-to-end recovery time.
func (r RecoveryReport) Total() time.Duration {
	return r.LoadTime + r.ScanTime + r.RevertTime + r.ReplayTime
}

// Recover attaches to a device that holds a formatted database, restores
// the allocator and counter state of the last checkpointed epoch, rebuilds
// the DRAM row index by scanning the persistent rows, repairs torn
// dual-version descriptors, and — if the crashed epoch's inputs are in the
// log — deterministically replays that epoch. On return the database is
// consistent with having executed every epoch up to and including the
// replayed one.
func Recover(dev *nvm.Device, opts Options) (*DB, *RecoveryReport, error) {
	opts.applyDefaults()
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	// Register the layout's region map before any attributed traffic so the
	// spatial heatmap can resolve recovery reads to named regions.
	opts.Obs.Attrib().SetRegions(opts.Layout.Regions())
	if _, err := pmem.Attach(dev, opts.Layout); err != nil {
		return nil, nil, err
	}
	db := newDB(dev, opts)
	rep := &RecoveryReport{}
	// Every recovery stage (scan, repair, replay) runs under one profiling
	// region; replay's RunEpoch nests the usual per-phase regions inside it.
	defer db.opts.Prof.Region(obs.PhaseRecovery.String())()

	ckpt := db.epochRec.Load()
	rep.CheckpointEpoch = ckpt
	db.epoch.Store(ckpt)
	db.durableEpoch.Store(ckpt)
	crashed := ckpt + 1

	// Peek at the log first: whether the crashed epoch's inputs were fully
	// persisted — i.e. whether replay will happen — decides whether the
	// crashed epoch's durable GC frees are adopted below. Decoding is
	// deferred until allocators and counters are restored: decoders may
	// consult and mutate engine state (the TPC-C variant re-assigns order
	// and history IDs from the persistent counters at decode time, §6.2.3),
	// so they must see exactly the checkpointed state.
	t0 := time.Now()
	var recs []wal.Record
	willReplay := false
	if opts.Mode.logs() {
		recs, willReplay = db.log.ReadEpoch(crashed)
	}

	// Restore allocator state; collect the crashed epoch's durable GC
	// frees for duplicate suppression when the collection is redone.
	// Adoption is gated on replay: if the crashed epoch's log never became
	// durable, its init fence cannot have completed, so no row rewrite
	// landed and the epoch's landed ring entries must vanish with it (see
	// Pool.Recover).
	db.gcDupSet = make(map[int64]struct{})
	for c := 0; c < opts.Cores; c++ {
		db.rowPools[c].Recover(ckpt, willReplay)
		for k := range db.valPools {
			for _, off := range db.valPools[k][c].Recover(ckpt, willReplay) {
				db.gcDupSet[off] = struct{}{}
			}
		}
	}
	// Restore persistent counters from the checkpointed parity slots; the
	// crashed epoch wrote the other parity, so values it may have flushed
	// before its epoch record committed are ignored and replay re-applies
	// every increment exactly once.
	for i := range db.counters {
		db.counters[i].Store(pmem.NewCounter(dev, db.layout, int64(i)).Load(ckpt))
	}
	rep.CountersRestored = len(db.counters)

	// Decode the replay batch against the restored checkpoint state. An
	// Aria marker as the first record selects the Aria replay algorithm.
	var batch []*Txn
	var ariaBatch []*AriaTxn
	ariaEpoch := false
	if willReplay {
		if len(recs) > 0 && recs[0].Type == ariaMarkerType {
			ariaEpoch = true
			if opts.AriaRegistry == nil {
				return nil, nil, fmt.Errorf("core: crashed epoch %d is Aria-flavoured but no AriaRegistry configured", crashed)
			}
			ariaBatch = make([]*AriaTxn, len(recs)-1)
			for i, rec := range recs[1:] {
				t, err := opts.AriaRegistry.Decode(rec.Type, rec.Data, db)
				if err != nil {
					return nil, nil, fmt.Errorf("core: aria recovery decode: %w", err)
				}
				ariaBatch[i] = t
			}
		} else {
			batch = make([]*Txn, len(recs))
			for i, rec := range recs {
				t, err := opts.Registry.Decode(rec.Type, rec.Data, db)
				if err != nil {
					return nil, nil, fmt.Errorf("core: recovery decode: %w", err)
				}
				batch[i] = t
			}
		}
	}
	rep.LoadTime = time.Since(t0)
	// Per-stage flight events make long recoveries observable while they
	// run; B carries each stage's progress count.
	db.obs.Flight().Record(obs.EvRecoveryStage, obs.CoordinatorCore, crashed,
		int64(obs.RecoveryLoad), int64(len(recs)))

	// Fast path: rebuild the index from the persistent index journal (§7
	// extension) when it is enabled and validates; otherwise scan. An Aria
	// crashed epoch always scans: without declared write sets there is no
	// bound on which rows need torn-descriptor repair before replay reads.
	t1 := time.Now()
	var revertCandidates []*rowState
	if !ariaEpoch {
		if reverts, ok := db.recoverIndexFromJournal(crashed, batch, rep); ok {
			rep.ScanTime = time.Since(t1)
			db.obs.Flight().Record(obs.EvRecoveryStage, obs.CoordinatorCore, crashed,
				int64(obs.RecoveryScan), int64(rep.JournalEntries))
			return db.finishRecovery(batch, ariaBatch, crashed, rep, reverts, t1)
		}
	}

	// Scan the persistent rows, rebuild the index, repair torn versions,
	// and rebuild the major-GC list (§4.3, §5.5).
	// Deletions free a row slot into the *executing* core's pool, which
	// need not be the pool whose data region holds the slot, so the scan
	// must skip the union of all pools' free lists.
	free := make(map[int64]struct{})
	for c := 0; c < opts.Cores; c++ {
		for off := range db.rowPools[c].FreeSet() {
			free[off] = struct{}{}
		}
	}
	db.parallel(func(c int) {
		pool := db.rowPools[c]
		base := db.layout.RowDataOff(c)
		var scanned, repaired, gcRebuilt int
		var cands []*rowState
		for i := int64(0); i < pool.Bump(); i++ {
			off := base + i*db.layout.RowSize
			if _, isFree := free[off]; isFree {
				continue
			}
			r := db.rowRefTag(off, obs.CauseRecovery)
			scanned++
			if r.repair(crashed) {
				repaired++
			}
			key := index.Key{Table: r.table(), ID: r.key()}
			rs := &rowState{nvOff: off, owner: int32(db.ownerOf(key))}
			db.idx.Put(key, rs)

			v1 := r.readVersion(1)
			v2 := r.readVersion(2)
			if opts.RevertOnRecovery && !v2.isNull() && SIDEpoch(v2.sid) == crashed {
				cands = append(cands, rs)
				continue
			}
			// Re-queue rows whose pending major collection did not finish.
			// Rows whose v2 belongs to the crashed epoch are excluded: that
			// version is replayed, and collecting it now would overwrite
			// the checkpoint with un-fenced data.
			if !v2.isNull() && SIDEpoch(v2.sid) != crashed && !v1.isNull() &&
				v2ReplacedNeedsGC(v1, opts.MinorGCEnabled) {
				db.gcPending[c] = append(db.gcPending[c], rs)
				gcRebuilt++
			}
		}
		db.scanMu.Lock()
		rep.RowsScanned += scanned
		rep.RowsRepaired += repaired
		rep.GCListRebuilt += gcRebuilt
		revertCandidates = append(revertCandidates, cands...)
		db.scanMu.Unlock()
	})
	rep.ScanTime = time.Since(t1)
	db.obs.Flight().Record(obs.EvRecoveryStage, obs.CoordinatorCore, crashed,
		int64(obs.RecoveryScan), int64(rep.RowsScanned))
	return db.finishRecovery(batch, ariaBatch, crashed, rep, revertCandidates, t1)
}

// finishRecovery runs the revert pass and deterministic replay shared by
// the scan and journal recovery paths.
func (db *DB) finishRecovery(batch []*Txn, ariaBatch []*AriaTxn, crashed uint64, rep *RecoveryReport,
	revertCandidates []*rowState, _ time.Time) (*DB, *RecoveryReport, error) {
	// TPC-C variant: reset versions written by the crashed epoch, since the
	// replay may assign them different keys (§6.2.3).
	t2 := time.Now()
	for _, rs := range revertCandidates {
		r := db.rowRefTag(rs.nvOff, obs.CauseRecovery)
		if r.revertCrashedVersion(crashed) {
			rep.RowsReverted++
		}
	}
	rep.RevertTime = time.Since(t2)
	db.obs.Flight().Record(obs.EvRecoveryStage, obs.CoordinatorCore, crashed,
		int64(obs.RecoveryRevert), int64(rep.RowsReverted))

	// Replay the crashed epoch deterministically.
	t3 := time.Now()
	if batch != nil || ariaBatch != nil {
		db.replaying = true
		db.skipEpoch = crashed
		var err error
		if ariaBatch != nil {
			_, err = db.RunEpochAria(ariaBatch)
			rep.TxnsReplayed = len(ariaBatch)
		} else {
			_, err = db.RunEpoch(batch)
			rep.TxnsReplayed = len(batch)
		}
		db.replaying = false
		db.skipEpoch = 0
		db.gcDupSet = nil
		if err != nil {
			return nil, nil, fmt.Errorf("core: replay: %w", err)
		}
		rep.ReplayedEpoch = crashed
	}
	rep.ReplayTime = time.Since(t3)
	db.obs.Flight().Record(obs.EvRecoveryStage, obs.CoordinatorCore, crashed,
		int64(obs.RecoveryReplay), int64(rep.TxnsReplayed))
	if db.obs.On() {
		// One recovery span per stage (load, scan/journal, revert, replay),
		// laid end to end on the coordinator track. Replay of the crashed
		// epoch also records its own log/init/execute/persist spans via
		// RunEpoch, nested inside the replay stage's interval.
		t := time.Now().Add(-rep.Total())
		for _, d := range []time.Duration{rep.LoadTime, rep.ScanTime, rep.RevertTime, rep.ReplayTime} {
			db.obs.SpanAt(obs.CoordinatorCore, crashed, obs.PhaseRecovery, t, d)
			t = t.Add(d)
		}
	}
	return db, rep, nil
}

// recoverIndexFromJournal attempts the journal fast path: rebuild the index
// and major-GC list from the persistent index journal, repair the rows the
// crashed epoch could have touched (the journaled GC list and the replay
// batch's write sets), and collect the TPC-C revert candidates from the
// batch's write sets. Returns false — with the index left empty — when the
// journal is absent or does not validate, in which case the caller scans.
func (db *DB) recoverIndexFromJournal(crashed uint64, batch []*Txn, rep *RecoveryReport) ([]*rowState, bool) {
	if db.idxLog == nil {
		return nil, false
	}
	ckpt := crashed - 1
	var entries []pmem.IndexEntry
	var epochs []uint64
	if !db.idxLog.Recover(ckpt, func(ep uint64, e pmem.IndexEntry) {
		entries = append(entries, e)
		epochs = append(epochs, ep)
	}) {
		return nil, false
	}
	// Apply in order. revMap resolves GC entries (which carry only a row
	// offset) to the rowState that currently owns the slot.
	revMap := make(map[int64]*rowState)
	var gcRows []*rowState
	for i, e := range entries {
		switch e.Kind {
		case pmem.IdxPut:
			key := index.Key{Table: e.Table, ID: e.Key}
			rs := &rowState{nvOff: e.RowOff, owner: int32(db.ownerOf(key))}
			db.idx.Put(key, rs)
			revMap[e.RowOff] = rs
		case pmem.IdxDel:
			key := index.Key{Table: e.Table, ID: e.Key}
			if rs, ok := db.idx.Get(key); ok {
				delete(revMap, rs.nvOff)
			}
			db.idx.Delete(key)
		case pmem.IdxGC:
			// Only the final checkpointed epoch's GC list is pending; lists
			// from earlier epochs were consumed by their successor.
			if epochs[i] == ckpt {
				if rs, ok := revMap[e.RowOff]; ok {
					gcRows = append(gcRows, rs)
				}
			}
		}
	}
	rep.UsedIndexJournal = true
	rep.JournalEntries = len(entries)

	// Repair torn descriptors on every row the crashed epoch could have
	// modified: the pending GC list (major-GC copies, §4.5 cases 1-2) and
	// the replay batch's declared write sets (final writes and minor-GC
	// copies). Execution cannot have touched anything else, and nothing
	// executes before the input log is durable.
	for _, rs := range gcRows {
		r := db.rowRefTag(rs.nvOff, obs.CauseRecovery)
		if r.repair(crashed) {
			rep.RowsRepaired++
		}
		// Re-queue only rows whose collection is still pending, under the
		// same condition as the scan path: repair completes collections the
		// crash interrupted mid-copy, and blindly re-queuing a completed row
		// would free the value its surviving version references.
		v1, v2 := r.readVersion(1), r.readVersion(2)
		if !v2.isNull() && SIDEpoch(v2.sid) != crashed && !v1.isNull() &&
			v2ReplacedNeedsGC(v1, db.opts.MinorGCEnabled) {
			db.gcPending[rs.owner] = append(db.gcPending[rs.owner], rs)
			rep.GCListRebuilt++
		}
	}
	var reverts []*rowState
	seen := make(map[index.Key]struct{})
	for _, t := range batch {
		for _, op := range t.Ops {
			key := index.Key{Table: op.Table, ID: op.Key}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			rs, ok := db.idx.Get(key)
			if !ok {
				continue // row created by the crashed epoch: reverted by the allocators
			}
			r := db.rowRefTag(rs.nvOff, obs.CauseRecovery)
			if r.repair(crashed) {
				rep.RowsRepaired++
			}
			if db.opts.RevertOnRecovery {
				v2 := r.readVersion(2)
				if !v2.isNull() && SIDEpoch(v2.sid) == crashed {
					reverts = append(reverts, rs)
				}
			}
		}
	}
	return reverts, true
}

// rowLatest resolves the latest committed persistent version of a row,
// skipping versions written by the epoch currently being replayed: those
// are un-fenced crashed-epoch data that the replay itself will overwrite,
// and replayed reads must observe the checkpoint instead.
func (db *DB) rowLatest(r rowRef) version {
	v2 := r.readVersion(2)
	if !v2.isNull() && SIDEpoch(v2.sid) != db.skipEpoch {
		return v2
	}
	return r.readVersion(1)
}
