package core

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"nvcaracal/internal/nvm"
)

// The golden access-count test pins the device and engine counters for a
// fixed seeded workload. The counters are the reproduction's scientific
// output — every figure in the paper is a function of how many NVMM line
// accesses each design performs — so any change to the device or engine
// that shifts them is either a bug or a deliberate model change that must
// update these goldens with justification (see DESIGN.md, "Counter
// invariance").
//
// Run with GOLDEN_PRINT=1 to print the literals for updating.

type goldenCase struct {
	name  string
	cores int
	mode  StorageMode
	stats nvm.Stats
	met   goldenMetrics
}

// goldenMetrics is the subset of metrics.Snapshot that is deterministic for
// a fixed workload (all of it is, for this workload).
type goldenMetrics struct {
	TxnsCommitted, TxnsAborted, Epochs           int64
	TransientVersions, PersistentVersions        int64
	RowReads, CacheHits, CacheMisses             int64
	CacheBytes, CacheEntries, MinorGCs, MajorGCs int64
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "nvcaracal-1core", cores: 1, mode: ModeNVCaracal,
			stats: nvm.Stats{LineReads: 11115, LineWrites: 7893, BytesRead: 74749, BytesWritten: 221174, Flushes: 4868, Fences: 21, LinesFenced: 4275},
			met:   goldenMetrics{TxnsCommitted: 1210, TxnsAborted: 15, Epochs: 7, TransientVersions: 425, PersistentVersions: 786, RowReads: 5, CacheHits: 562, CacheMisses: 5, CacheBytes: 15389, CacheEntries: 126, MinorGCs: 219, MajorGCs: 111},
		},
		{
			name: "nvcaracal-4core", cores: 4, mode: ModeNVCaracal,
			stats: nvm.Stats{LineReads: 11114, LineWrites: 8019, BytesRead: 74741, BytesWritten: 222182, Flushes: 4937, Fences: 21, LinesFenced: 4344},
			met:   goldenMetrics{TxnsCommitted: 1210, TxnsAborted: 15, Epochs: 7, TransientVersions: 425, PersistentVersions: 786, RowReads: 5, CacheHits: 562, CacheMisses: 5, CacheBytes: 15389, CacheEntries: 126, MinorGCs: 219, MajorGCs: 111},
		},
		{
			name: "hybrid-2core", cores: 2, mode: ModeHybrid,
			stats: nvm.Stats{LineReads: 11115, LineWrites: 7339, BytesRead: 74749, BytesWritten: 157355, Flushes: 4301, Fences: 19, LinesFenced: 3101},
			met:   goldenMetrics{TxnsCommitted: 1210, TxnsAborted: 15, Epochs: 7, TransientVersions: 425, PersistentVersions: 786, RowReads: 5, CacheHits: 562, CacheMisses: 5, CacheBytes: 15389, CacheEntries: 126, MinorGCs: 219, MajorGCs: 111},
		},
		{
			name: "all-nvmm-2core", cores: 2, mode: ModeAllNVMM,
			stats: nvm.Stats{LineReads: 15283, LineWrites: 10829, BytesRead: 252923, BytesWritten: 302512, Flushes: 7791, Fences: 19, LinesFenced: 5370},
			met:   goldenMetrics{TxnsCommitted: 1210, TxnsAborted: 15, Epochs: 7, TransientVersions: 425, PersistentVersions: 786, RowReads: 567, CacheHits: 0, CacheMisses: 567, CacheBytes: 0, CacheEntries: 0, MinorGCs: 219, MajorGCs: 111},
		},
	}
}

// goldenWorkload drives a deterministic mixed workload: inserts of varying
// value sizes (inline and pooled), updates, multi-writer rows, RMWs, user
// aborts, and deletes, across enough epochs to exercise minor and major GC
// and cache eviction.
func goldenWorkload(t *testing.T, db *DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(12345))
	val := func(key uint64, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256)) ^ byte(key)
		}
		return b
	}
	// Value size alternates inline (<= 96) and pooled (> 96, <= 512).
	size := func(key uint64) int {
		if key%3 == 0 {
			return 200 + int(key%300)
		}
		return 8 + int(key%80)
	}

	const rows = 200
	live := make([]bool, rows)
	// Epoch 1: create the table.
	var batch []*Txn
	for k := uint64(0); k < rows; k++ {
		batch = append(batch, mkInsert(k, val(k, size(k))))
		live[k] = true
	}
	mustRun(t, db, batch)

	// Epochs 2..7: mixed updates. deleted/inserted track keys whose index
	// entry changes this epoch so ops stay consistent within and across
	// epochs (a deterministic database knows its write set is valid).
	for e := 0; e < 6; e++ {
		batch = batch[:0]
		deleted := make(map[uint64]bool)
		inserted := make(map[uint64]bool)
		for i := 0; i < rows; i++ {
			k := uint64(rng.Intn(rows))
			op := rng.Intn(10)
			switch {
			case op < 4:
				if live[k] && !deleted[k] {
					batch = append(batch, mkSet(k, val(k, size(k+uint64(e)))))
				}
			case op < 7:
				if live[k] && !deleted[k] {
					batch = append(batch, mkRMW(k, byte(i)))
				}
			case op == 7:
				if live[k] && !deleted[k] {
					batch = append(batch, mkAbortSet(k, val(k, 16), i%5 == 0))
				}
			case op == 8:
				// Multi-writer hot row: two more writers on a fixed key.
				if live[7] && !deleted[7] {
					batch = append(batch, mkSet(7, val(7, 40)), mkRMW(7, byte(e)))
				}
			default:
				if live[k] && !deleted[k] && !inserted[k] {
					batch = append(batch, mkDelete(k))
					deleted[k] = true
				} else if !live[k] && !deleted[k] && !inserted[k] {
					batch = append(batch, mkInsert(k, val(k, size(k))))
					inserted[k] = true
				}
			}
		}
		mustRun(t, db, batch)
		for k := range deleted {
			live[k] = false
		}
		for k := range inserted {
			live[k] = true
		}
	}
}

func TestGoldenAccessCounts(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			opts := testOpts(gc.cores)
			opts.Mode = gc.mode
			if gc.mode == ModeAllNVMM {
				opts.CacheEnabled = false
			}
			dev := nvm.New(opts.Layout.TotalBytes())
			db, err := Open(dev, opts)
			if err != nil {
				t.Fatal(err)
			}
			dev.ResetStats() // exclude Format: pin the workload's accesses only
			goldenWorkload(t, db)

			st := dev.Stats()
			m := db.Metrics()
			got := goldenMetrics{
				TxnsCommitted: m.TxnsCommitted, TxnsAborted: m.TxnsAborted, Epochs: m.Epochs,
				TransientVersions: m.TransientVersions, PersistentVersions: m.PersistentVersions,
				RowReads: m.RowReads, CacheHits: m.CacheHits, CacheMisses: m.CacheMisses,
				CacheBytes: m.CacheBytes, CacheEntries: m.CacheEntries,
				MinorGCs: m.MinorGCs, MajorGCs: m.MajorGCs,
			}
			if os.Getenv("GOLDEN_PRINT") != "" {
				fmt.Printf("%s:\n  stats: nvm.Stats{LineReads: %d, LineWrites: %d, BytesRead: %d, BytesWritten: %d, Flushes: %d, Fences: %d, LinesFenced: %d},\n  met:   goldenMetrics{TxnsCommitted: %d, TxnsAborted: %d, Epochs: %d, TransientVersions: %d, PersistentVersions: %d, RowReads: %d, CacheHits: %d, CacheMisses: %d, CacheBytes: %d, CacheEntries: %d, MinorGCs: %d, MajorGCs: %d},\n",
					gc.name, st.LineReads, st.LineWrites, st.BytesRead, st.BytesWritten, st.Flushes, st.Fences, st.LinesFenced,
					got.TxnsCommitted, got.TxnsAborted, got.Epochs, got.TransientVersions, got.PersistentVersions,
					got.RowReads, got.CacheHits, got.CacheMisses, got.CacheBytes, got.CacheEntries, got.MinorGCs, got.MajorGCs)
				return
			}
			if st != gc.stats {
				t.Errorf("device stats drifted:\n got  %+v\n want %+v", st, gc.stats)
			}
			if got != gc.met {
				t.Errorf("engine metrics drifted:\n got  %+v\n want %+v", got, gc.met)
			}
		})
	}
}
