package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

func newRowRef(t *testing.T, rowSize int64) (rowRef, *nvm.Device) {
	t.Helper()
	dev := nvm.New(rowSize * 4)
	return rowRef{dev: dev.Tag(obs.CauseOther), off: rowSize, rowSize: rowSize}, dev
}

func TestRowHeaderRoundTrip(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(7, 0xDEADBEEF)
	if r.table() != 7 || r.key() != 0xDEADBEEF {
		t.Fatalf("header = %d/%d", r.table(), r.key())
	}
	// Header write must clear stale version descriptors.
	if v := r.readVersion(1); !v.isNull() || v.ptr != 0 {
		t.Fatalf("v1 not cleared: %+v", v)
	}
	if v := r.readVersion(2); !v.isNull() {
		t.Fatalf("v2 not cleared: %+v", v)
	}
}

func TestRowHeaderClearsRecycledSlot(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeVersion(2, version{sid: 99, ptr: 4096, size: 10})
	r.writeHeader(1, 1)
	if v := r.readVersion(2); !v.isNull() || v.ptr != 0 || v.size != 0 {
		t.Fatalf("recycled slot kept stale version: %+v", v)
	}
}

func TestVersionRoundTrip(t *testing.T) {
	r, _ := newRowRef(t, 256)
	want := version{sid: MakeSID(3, 7), ptr: ptrInlineB, size: 42}
	r.writeVersion(2, want)
	if got := r.readVersion(2); got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestInlineOffsets(t *testing.T) {
	r, _ := newRowRef(t, 256)
	half := r.inlineHalf()
	if half != (256-64)/2 {
		t.Fatalf("inlineHalf = %d", half)
	}
	a := r.inlineOff(ptrInlineA)
	b := r.inlineOff(ptrInlineB)
	if a != r.off+64 || b != a+half {
		t.Fatalf("inline offsets a=%d b=%d", a, b)
	}
}

func TestInlineSlotsDoNotOverlap(t *testing.T) {
	r, _ := newRowRef(t, 256)
	half := int(r.inlineHalf())
	va := version{ptr: ptrInlineA, size: uint32(half)}
	vb := version{ptr: ptrInlineB, size: uint32(half)}
	r.writeValue(ptrInlineA, bytes.Repeat([]byte{0xAA}, half))
	r.writeValue(ptrInlineB, bytes.Repeat([]byte{0xBB}, half))
	if !bytes.Equal(r.readValue(va), bytes.Repeat([]byte{0xAA}, half)) {
		t.Fatal("slot A corrupted by slot B write")
	}
	if !bytes.Equal(r.readValue(vb), bytes.Repeat([]byte{0xBB}, half)) {
		t.Fatal("slot B corrupted")
	}
}

func TestFreeInlineSlot(t *testing.T) {
	if freeInlineSlot(version{ptr: ptrInlineA}) != ptrInlineB {
		t.Fatal("A -> want B")
	}
	if freeInlineSlot(version{ptr: ptrInlineB}) != ptrInlineA {
		t.Fatal("B -> want A")
	}
	if freeInlineSlot(version{ptr: 4096}) != ptrInlineA {
		t.Fatal("non-inline -> want A")
	}
	if freeInlineSlot(version{}) != ptrInlineA {
		t.Fatal("null -> want A")
	}
}

func TestLatestPrefersV2(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(1, 1)
	if !r.latest().isNull() {
		t.Fatal("fresh row has a latest version")
	}
	v1 := version{sid: MakeSID(1, 1), ptr: ptrInlineA, size: 4}
	r.writeVersion(1, v1)
	if r.latest() != v1 {
		t.Fatal("latest != v1 when v2 empty")
	}
	v2 := version{sid: MakeSID(2, 1), ptr: ptrInlineB, size: 4}
	r.writeVersion(2, v2)
	if r.latest() != v2 {
		t.Fatal("latest != v2")
	}
}

func TestRepairCase1FinishesGCCopy(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(1, 1)
	// GC intended: v1 <- v2. Crash left v1.sid updated, pointer stale.
	v2 := version{sid: MakeSID(4, 9), ptr: 8192, size: 100}
	r.writeVersion(2, v2)
	r.writeVersion(1, version{sid: v2.sid, ptr: ptrInlineA, size: 7}) // torn copy
	if !r.repair(6) {
		t.Fatal("repair did not fire")
	}
	if got := r.readVersion(1); got != v2 {
		t.Fatalf("v1 = %+v, want %+v", got, v2)
	}
}

func TestRepairCase1SkipsCrashedEpochSIDs(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(1, 1)
	sid := MakeSID(6, 1) // the crashed epoch itself
	r.writeVersion(2, version{sid: sid, ptr: 8192, size: 10})
	r.writeVersion(1, version{sid: sid, ptr: ptrInlineA, size: 7})
	if r.repair(6) {
		t.Fatal("repair fired on crashed-epoch sids (case 3 belongs to replay)")
	}
}

func TestRepairCase2FinishesReset(t *testing.T) {
	r, dev := newRowRef(t, 256)
	r.writeHeader(1, 1)
	r.writeVersion(1, version{sid: MakeSID(2, 1), ptr: ptrInlineA, size: 4})
	// Torn reset: sid cleared, pointer remains.
	dev.Store64(r.verOff(2)+verSID, 0)
	dev.Store64(r.verOff(2)+verPtr, 8192)
	dev.Store32(r.verOff(2)+verSize, 55)
	if !r.repair(6) {
		t.Fatal("repair did not fire")
	}
	if got := r.readVersion(2); got.ptr != 0 || got.size != 0 {
		t.Fatalf("v2 not reset: %+v", got)
	}
}

func TestRepairNoopOnConsistentRows(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(1, 1)
	r.writeVersion(1, version{sid: MakeSID(2, 1), ptr: ptrInlineA, size: 4})
	r.writeVersion(2, version{sid: MakeSID(3, 1), ptr: ptrInlineB, size: 4})
	if r.repair(6) {
		t.Fatal("repair modified a consistent row")
	}
}

func TestRevertCrashedVersion(t *testing.T) {
	r, _ := newRowRef(t, 256)
	r.writeHeader(1, 1)
	r.writeVersion(1, version{sid: MakeSID(2, 1), ptr: ptrInlineA, size: 4})
	r.writeVersion(2, version{sid: MakeSID(6, 3), ptr: ptrInlineB, size: 4})
	if !r.revertCrashedVersion(6) {
		t.Fatal("revert did not fire for crashed-epoch v2")
	}
	if !r.readVersion(2).isNull() {
		t.Fatal("v2 not reverted")
	}
	// Idempotent / selective.
	if r.revertCrashedVersion(6) {
		t.Fatal("revert fired twice")
	}
	r.writeVersion(2, version{sid: MakeSID(5, 1), ptr: ptrInlineB, size: 4})
	if r.revertCrashedVersion(6) {
		t.Fatal("revert fired on a committed version")
	}
}

func TestValueRoundTripNonInline(t *testing.T) {
	r, _ := newRowRef(t, 256)
	data := []byte("external value data")
	ptr := uint64(768) // elsewhere on the device
	r.writeValue(ptr, data)
	v := version{sid: 1, ptr: ptr, size: uint32(len(data))}
	if !bytes.Equal(r.readValue(v), data) {
		t.Fatal("non-inline value corrupted")
	}
	dst := make([]byte, len(data))
	r.readValueInto(v, dst)
	if !bytes.Equal(dst, data) {
		t.Fatal("readValueInto mismatch")
	}
}

func TestQuickVersionDescriptorRoundTrip(t *testing.T) {
	r, _ := newRowRef(t, 256)
	f := func(sid, ptr uint64, size uint32, which bool) bool {
		w := 1
		if which {
			w = 2
		}
		want := version{sid: sid, ptr: ptr, size: size}
		r.writeVersion(w, want)
		return r.readVersion(w) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- version array unit tests ---

func mkVA(sids ...uint64) *versionArray {
	all := append([]uint64{0}, sids...)
	return newVersionArray(1, all, nil)
}

func TestVASlotOf(t *testing.T) {
	va := mkVA(5, 9, 12, 40)
	for i, sid := range []uint64{5, 9, 12, 40} {
		if got := va.slotOf(sid); got != i+1 {
			t.Fatalf("slotOf(%d) = %d, want %d", sid, got, i+1)
		}
	}
}

func TestVASlotOfMissingPanics(t *testing.T) {
	va := mkVA(5, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	va.slotOf(7)
}

func TestVAReadSlot(t *testing.T) {
	va := mkVA(5, 9, 12)
	cases := map[uint64]int{
		1:  0, // below all writers: initial
		5:  0, // own writer sees predecessors only
		6:  1,
		9:  1,
		10: 2,
		12: 2,
		13: 3,
		99: 3,
	}
	for sid, want := range cases {
		if got := va.readSlot(sid); got != want {
			t.Fatalf("readSlot(%d) = %d, want %d", sid, got, want)
		}
	}
}

func TestVAResolveSkipsIgnores(t *testing.T) {
	va := mkVA(5, 9, 12)
	va.vals[0].Store(&versionVal{kind: vkData, data: []byte("init"), nvOff: -1})
	va.vals[1].Store(&versionVal{kind: vkData, data: []byte("v5"), nvOff: -1})
	va.vals[2].Store(ignoreVal)
	va.vals[3].Store(ignoreVal)
	got := va.resolveRead(99)
	if !bytes.Equal(got.data, []byte("v5")) {
		t.Fatalf("resolveRead skipped to %q", got.data)
	}
	if got := va.resolveRead(9); !bytes.Equal(got.data, []byte("v5")) {
		t.Fatalf("resolveRead(9) = %q", got.data)
	}
	if got := va.resolveRead(5); !bytes.Equal(got.data, []byte("init")) {
		t.Fatalf("resolveRead(5) = %q", got.data)
	}
}

func TestVALatestCommitted(t *testing.T) {
	va := mkVA(5, 9)
	va.vals[0].Store(notFoundVal)
	va.vals[1].Store(&versionVal{kind: vkData, data: []byte("x"), nvOff: -1})
	va.vals[2].Store(ignoreVal)
	idx, vv := va.latestCommitted(2)
	if idx != 1 || vv.kind != vkData {
		t.Fatalf("latestCommitted = %d/%v", idx, vv.kind)
	}
}

func TestCacheHotOnly(t *testing.T) {
	opts := testOpts(1)
	opts.CacheHotOnly = true
	opts.CacheOnRead = false
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	run := func(txns ...*Txn) {
		if _, err := db.RunEpoch(txns); err != nil {
			t.Fatal(err)
		}
	}
	run(mkInsert(1, smallVal('a')), mkInsert(2, smallVal('b')))
	// Cold: single write per row -> no cached version.
	run(mkSet(1, smallVal('c')))
	if n := db.Metrics().CacheEntries; n != 0 {
		t.Fatalf("cold row cached: entries = %d", n)
	}
	// Hot: two writes to the same row in one epoch -> cached.
	run(mkRMW(2, 'x'), mkRMW(2, 'y'))
	if n := db.Metrics().CacheEntries; n != 1 {
		t.Fatalf("hot row not cached: entries = %d", n)
	}
	// Previously cached rows stay cached even with one write.
	run(mkSet(2, smallVal('z')))
	if n := db.Metrics().CacheEntries; n != 1 {
		t.Fatalf("wasCached row dropped: entries = %d", n)
	}
	wantGet(t, db, 1, smallVal('c'))
	wantGet(t, db, 2, smallVal('z'))
}
