package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/wal"
)

// modelDB is a sequential reference implementation: transactions applied
// one at a time in serial order.
type modelDB map[uint64][]byte

func (m modelDB) apply(op modelOp) {
	switch op.kind {
	case mInsert, mSet:
		m[op.key] = append([]byte(nil), op.val...)
	case mDelete:
		delete(m, op.key)
	case mRMW:
		m[op.key] = append(append([]byte(nil), m[op.key]...), op.suffix)
	case mAbort:
		// no effect
	}
}

type modelKind int

const (
	mInsert modelKind = iota
	mSet
	mDelete
	mRMW
	mAbort
)

type modelOp struct {
	kind   modelKind
	key    uint64
	val    []byte
	suffix byte
}

// genOp produces a random operation valid against the model's current
// state (updates/deletes target live keys; inserts target dead keys).
func genOp(rng *rand.Rand, live map[uint64]bool, maxKey uint64) (modelOp, bool) {
	pickLive := func() (uint64, bool) {
		if len(live) == 0 {
			return 0, false
		}
		// Deterministic order irrelevant for validity.
		n := rng.Intn(len(live))
		for k := range live {
			if n == 0 {
				return k, true
			}
			n--
		}
		return 0, false
	}
	switch rng.Intn(10) {
	case 0, 1: // insert
		k := uint64(rng.Int63n(int64(maxKey)))
		if live[k] {
			return modelOp{}, false
		}
		v := make([]byte, rng.Intn(120))
		rng.Read(v)
		return modelOp{kind: mInsert, key: k, val: v}, true
	case 2: // delete
		k, ok := pickLive()
		if !ok {
			return modelOp{}, false
		}
		return modelOp{kind: mDelete, key: k}, true
	case 3, 4, 5: // set
		k, ok := pickLive()
		if !ok {
			return modelOp{}, false
		}
		v := make([]byte, rng.Intn(300))
		rng.Read(v)
		return modelOp{kind: mSet, key: k, val: v}, true
	case 6: // abort
		k, ok := pickLive()
		if !ok {
			return modelOp{}, false
		}
		return modelOp{kind: mAbort, key: k}, true
	default: // rmw
		k, ok := pickLive()
		if !ok {
			return modelOp{}, false
		}
		return modelOp{kind: mRMW, key: k, suffix: byte(rng.Intn(256))}, true
	}
}

func opToTxn(op modelOp) *Txn {
	switch op.kind {
	case mInsert:
		return mkInsert(op.key, op.val)
	case mSet:
		return mkSet(op.key, op.val)
	case mDelete:
		return mkDelete(op.key)
	case mRMW:
		return mkRMW(op.key, op.suffix)
	case mAbort:
		return mkAbortSet(op.key, []byte("discarded"), true)
	}
	panic("bad op")
}

// TestQuickEngineMatchesModel runs random multi-epoch schedules on several
// core counts and compares the full database against the sequential model
// after every epoch.
func TestQuickEngineMatchesModel(t *testing.T) {
	f := func(seed int64, coreSel uint8) bool {
		cores := []int{1, 2, 4}[int(coreSel)%3]
		rng := rand.New(rand.NewSource(seed))
		opts := testOpts(cores)
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		model := modelDB{}
		live := map[uint64]bool{}
		const maxKey = 40

		epochs := 3 + rng.Intn(4)
		for e := 0; e < epochs; e++ {
			var batch []*Txn
			nOps := rng.Intn(30)
			usedThisEpoch := map[uint64]bool{}
			for len(batch) < nOps {
				op, ok := genOp(rng, live, maxKey)
				if !ok {
					break
				}
				// One write per key per epoch keeps the model trivially
				// sequential w.r.t. inserts/deletes changing liveness
				// mid-epoch; cross-epoch coverage is what matters here
				// (intra-epoch chains are covered by dedicated tests).
				if usedThisEpoch[op.key] {
					continue
				}
				usedThisEpoch[op.key] = true
				batch = append(batch, opToTxn(op))
				model.apply(op)
				switch op.kind {
				case mInsert:
					live[op.key] = true
				case mDelete:
					delete(live, op.key)
				}
			}
			if _, err := db.RunEpoch(batch); err != nil {
				t.Logf("seed %d epoch %d: %v", seed, e, err)
				return false
			}
			// Full-state comparison.
			for k := uint64(0); k < maxKey; k++ {
				got, ok := db.Get(tblKV, k)
				want, wok := model[k]
				if ok != wok || (ok && !bytes.Equal(got, want)) {
					t.Logf("seed %d epoch %d key %d: got %v/%v want %v/%v",
						seed, e, k, got, ok, want, wok)
					return false
				}
			}
		}
		// Crash and recover: state must be identical (all epochs
		// checkpointed, nothing to replay).
		dev.Crash(nvm.CrashStrict, seed)
		db2, _, err := Recover(dev, opts)
		if err != nil {
			t.Logf("seed %d: recover: %v", seed, err)
			return false
		}
		for k := uint64(0); k < maxKey; k++ {
			got, ok := db2.Get(tblKV, k)
			want, wok := model[k]
			if ok != wok || (ok && !bytes.Equal(got, want)) {
				t.Logf("seed %d post-recovery key %d mismatch", seed, k)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashReplayMatchesModel crashes after logging a random epoch and
// checks the replayed state equals the model.
func TestQuickCrashReplayMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := testOpts(2)
		dev := nvm.New(opts.Layout.TotalBytes())
		db, err := Open(dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		model := modelDB{}
		live := map[uint64]bool{}
		const maxKey = 20

		// A few committed epochs.
		for e := 0; e < 2+rng.Intn(3); e++ {
			var batch []*Txn
			used := map[uint64]bool{}
			for i := 0; i < 15; i++ {
				op, ok := genOp(rng, live, maxKey)
				if !ok || used[op.key] {
					continue
				}
				used[op.key] = true
				batch = append(batch, opToTxn(op))
				model.apply(op)
				switch op.kind {
				case mInsert:
					live[op.key] = true
				case mDelete:
					delete(live, op.key)
				}
			}
			if _, err := db.RunEpoch(batch); err != nil {
				return false
			}
		}
		// One logged-but-crashed epoch.
		var batch []*Txn
		used := map[uint64]bool{}
		for i := 0; i < 12; i++ {
			op, ok := genOp(rng, live, maxKey)
			if !ok || used[op.key] {
				continue
			}
			used[op.key] = true
			batch = append(batch, opToTxn(op))
			model.apply(op)
		}
		crashedEpoch := db.Epoch() + 1
		logTxnsQ(db, crashedEpoch, batch)
		dev.Crash(nvm.CrashStrict, seed)

		db2, rep, err := Recover(dev, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(batch) > 0 && rep.ReplayedEpoch != crashedEpoch {
			t.Logf("seed %d: replayed %d, want %d", seed, rep.ReplayedEpoch, crashedEpoch)
			return false
		}
		for k := uint64(0); k < maxKey; k++ {
			got, ok := db2.Get(tblKV, k)
			want, wok := model[k]
			if ok != wok || (ok && !bytes.Equal(got, want)) {
				t.Logf("seed %d key %d: got %q/%v want %q/%v", seed, k, got, ok, want, wok)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// logTxnsQ is logTxns without a *testing.T, for quick.Check properties.
func logTxnsQ(db *DB, epoch uint64, batch []*Txn) {
	recs := make([]wal.Record, len(batch))
	for i, txn := range batch {
		recs[i] = wal.Record{Type: txn.TypeID, Data: txn.Input}
	}
	if err := db.log.WriteEpoch(epoch, recs); err != nil {
		panic(err)
	}
}
