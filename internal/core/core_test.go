package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
)

// --- test workload: a tiny key-value store with loggable transactions ---

const tblKV = uint32(1)

const (
	ttSet uint16 = iota + 1
	ttInsert
	ttDelete
	ttRMW      // read, append a byte, write back
	ttTransfer // move one byte of "balance" between two rows
	ttAbortSet // aborts before writing if flag set
)

func encSet(key uint64, val []byte) []byte {
	b := binary.LittleEndian.AppendUint64(nil, key)
	return append(b, val...)
}

func mkSet(key uint64, val []byte) *Txn {
	return &Txn{
		TypeID: ttSet,
		Input:  encSet(key, val),
		Ops:    []Op{{Table: tblKV, Key: key, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			ctx.Write(tblKV, key, val)
		},
	}
}

func mkInsert(key uint64, val []byte) *Txn {
	return &Txn{
		TypeID: ttInsert,
		Input:  encSet(key, val),
		Ops:    []Op{{Table: tblKV, Key: key, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			ctx.Insert(tblKV, key, val)
		},
	}
}

func mkDelete(key uint64) *Txn {
	return &Txn{
		TypeID: ttDelete,
		Input:  binary.LittleEndian.AppendUint64(nil, key),
		Ops:    []Op{{Table: tblKV, Key: key, Kind: OpDelete}},
		Exec: func(ctx *Ctx) {
			ctx.Delete(tblKV, key)
		},
	}
}

func mkRMW(key uint64, suffix byte) *Txn {
	return &Txn{
		TypeID: ttRMW,
		Input:  append(binary.LittleEndian.AppendUint64(nil, key), suffix),
		Ops:    []Op{{Table: tblKV, Key: key, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			old, ok := ctx.Read(tblKV, key)
			if !ok {
				old = nil
			}
			ctx.Write(tblKV, key, append(append([]byte(nil), old...), suffix))
		},
	}
}

func mkAbortSet(key uint64, val []byte, abort bool) *Txn {
	in := append(binary.LittleEndian.AppendUint64(nil, key), b2b(abort))
	in = append(in, val...)
	return &Txn{
		TypeID: ttAbortSet,
		Input:  in,
		Ops:    []Op{{Table: tblKV, Key: key, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			if abort {
				ctx.Abort()
				return
			}
			ctx.Write(tblKV, key, val)
		},
	}
}

func b2b(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register(ttSet, func(d []byte, _ *DB) (*Txn, error) {
		return mkSet(binary.LittleEndian.Uint64(d), d[8:]), nil
	})
	r.Register(ttInsert, func(d []byte, _ *DB) (*Txn, error) {
		return mkInsert(binary.LittleEndian.Uint64(d), d[8:]), nil
	})
	r.Register(ttDelete, func(d []byte, _ *DB) (*Txn, error) {
		return mkDelete(binary.LittleEndian.Uint64(d)), nil
	})
	r.Register(ttRMW, func(d []byte, _ *DB) (*Txn, error) {
		return mkRMW(binary.LittleEndian.Uint64(d), d[8]), nil
	})
	r.Register(ttAbortSet, func(d []byte, _ *DB) (*Txn, error) {
		return mkAbortSet(binary.LittleEndian.Uint64(d), d[9:], d[8] == 1), nil
	})
	return r
}

// testOpts returns small-but-real options for unit tests.
func testOpts(cores int) Options {
	l := pmem.Layout{
		Cores:          cores,
		RowSize:        256,
		RowsPerCore:    2048,
		ValueSize:      512,
		ValuesPerCore:  2048,
		RingCap:        8192,
		LogBytes:       1 << 20,
		Counters:       8,
		ScratchPerCore: 1 << 20,
	}
	if err := l.Finalize(); err != nil {
		panic(err)
	}
	return Options{
		Cores:          cores,
		Mode:           ModeNVCaracal,
		Layout:         l,
		CacheEnabled:   true,
		CacheK:         4,
		CacheOnRead:    true,
		MinorGCEnabled: true,
		Registry:       testRegistry(),
	}
}

func openTestDB(t *testing.T, cores int) (*DB, *nvm.Device) {
	t.Helper()
	opts := testOpts(cores)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, dev
}

func mustRun(t *testing.T, db *DB, batch []*Txn) EpochResult {
	t.Helper()
	res, err := db.RunEpoch(batch)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func wantGet(t *testing.T, db *DB, key uint64, want []byte) {
	t.Helper()
	got, ok := db.Get(tblKV, key)
	if want == nil {
		if ok {
			t.Fatalf("key %d: got %q, want absent", key, got)
		}
		return
	}
	if !ok {
		t.Fatalf("key %d: absent, want %q", key, want)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("key %d: got %q, want %q", key, got, want)
	}
}

// --- tests ---

func TestInsertAndGet(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{
		mkInsert(1, []byte("one")),
		mkInsert(2, []byte("two")),
	})
	wantGet(t, db, 1, []byte("one"))
	wantGet(t, db, 2, []byte("two"))
	wantGet(t, db, 3, nil)
	if db.RowCount() != 2 {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
}

func TestUpdateAcrossEpochs(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("v1"))})
	mustRun(t, db, []*Txn{mkSet(1, []byte("v2"))})
	wantGet(t, db, 1, []byte("v2"))
	mustRun(t, db, []*Txn{mkSet(1, []byte("v3"))})
	wantGet(t, db, 1, []byte("v3"))
}

func TestSerialOrderWithinEpoch(t *testing.T) {
	// Three RMWs on one key in one epoch must apply in serial order.
	db, _ := openTestDB(t, 4)
	mustRun(t, db, []*Txn{mkInsert(7, []byte("x"))})
	mustRun(t, db, []*Txn{mkRMW(7, 'a'), mkRMW(7, 'b'), mkRMW(7, 'c')})
	wantGet(t, db, 7, []byte("xabc"))
}

func TestIntermediateWritesStayTransient(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(7, []byte("x"))})
	before := db.Metrics()
	mustRun(t, db, []*Txn{mkRMW(7, 'a'), mkRMW(7, 'b'), mkRMW(7, 'c')})
	d := db.Metrics().Sub(before)
	if d.PersistentVersions != 1 {
		t.Fatalf("PersistentVersions = %d, want 1 (only the final write)", d.PersistentVersions)
	}
	if d.TransientVersions != 2 {
		t.Fatalf("TransientVersions = %d, want 2", d.TransientVersions)
	}
}

func TestReadsSeeEarlierWritesInEpoch(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("init"))})
	var t2Saw []byte
	read := &Txn{
		TypeID: ttSet, Input: encSet(99, nil),
		Ops: []Op{{Table: tblKV, Key: 99, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			v, _ := ctx.Read(tblKV, 1)
			t2Saw = append([]byte(nil), v...)
			ctx.Insert(tblKV, 99, v)
		},
	}
	mustRun(t, db, []*Txn{mkSet(1, []byte("new")), read})
	if !bytes.Equal(t2Saw, []byte("new")) {
		t.Fatalf("reader saw %q, want %q (the earlier write in the epoch)", t2Saw, "new")
	}
}

func TestReadsDoNotSeeLaterWrites(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("old"))})
	var saw []byte
	read := &Txn{
		TypeID: ttSet, Input: encSet(99, nil),
		Ops: []Op{{Table: tblKV, Key: 99, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			v, _ := ctx.Read(tblKV, 1)
			saw = append([]byte(nil), v...)
			ctx.Insert(tblKV, 99, v)
		},
	}
	// Reader (sid 1) before writer (sid 2): must see the pre-epoch value.
	mustRun(t, db, []*Txn{read, mkSet(1, []byte("new"))})
	if !bytes.Equal(saw, []byte("old")) {
		t.Fatalf("reader saw %q, want %q", saw, "old")
	}
}

func TestDelete(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x")), mkInsert(2, []byte("y"))})
	mustRun(t, db, []*Txn{mkDelete(1)})
	wantGet(t, db, 1, nil)
	wantGet(t, db, 2, []byte("y"))
	if db.RowCount() != 1 {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("a"))})
	mustRun(t, db, []*Txn{mkDelete(1)})
	mustRun(t, db, []*Txn{mkInsert(1, []byte("b"))})
	wantGet(t, db, 1, []byte("b"))
}

func TestInsertAndDeleteSameEpoch(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(5, []byte("temp")), mkDelete(5)})
	wantGet(t, db, 5, nil)
	if db.RowCount() != 0 {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
}

func TestDeleteVisibilityWithinEpoch(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x"))})
	var sawBefore, sawAfter bool
	readBefore := &Txn{
		TypeID: ttSet, Input: encSet(90, nil),
		Ops: []Op{{Table: tblKV, Key: 90, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			_, sawBefore = ctx.Read(tblKV, 1)
			ctx.Insert(tblKV, 90, nil)
		},
	}
	readAfter := &Txn{
		TypeID: ttSet, Input: encSet(91, nil),
		Ops: []Op{{Table: tblKV, Key: 91, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			_, sawAfter = ctx.Read(tblKV, 1)
			ctx.Insert(tblKV, 91, nil)
		},
	}
	mustRun(t, db, []*Txn{readBefore, mkDelete(1), readAfter})
	if !sawBefore {
		t.Error("reader before delete did not see the row")
	}
	if sawAfter {
		t.Error("reader after delete saw the row")
	}
}

func TestAbortLeavesOldValue(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("keep"))})
	res := mustRun(t, db, []*Txn{mkAbortSet(1, []byte("discard"), true)})
	if res.Aborted != 1 || res.Committed != 0 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 1, []byte("keep"))
}

func TestAbortSkippedByReaders(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("base"))})
	var saw []byte
	read := &Txn{
		TypeID: ttSet, Input: encSet(92, nil),
		Ops: []Op{{Table: tblKV, Key: 92, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			v, _ := ctx.Read(tblKV, 1)
			saw = append([]byte(nil), v...)
			ctx.Insert(tblKV, 92, nil)
		},
	}
	// writer(ok) < aborter < reader: reader must see writer's value.
	mustRun(t, db, []*Txn{
		mkAbortSet(1, []byte("first"), false),
		mkAbortSet(1, []byte("aborted"), true),
		read,
	})
	if !bytes.Equal(saw, []byte("first")) {
		t.Fatalf("reader saw %q, want %q", saw, "first")
	}
	wantGet(t, db, 1, []byte("first"))
}

func TestAbortedFinalWritePersistsPredecessor(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("base"))})
	// The final (highest-sid) writer aborts; the middle writer's value must
	// become the epoch's persistent version.
	mustRun(t, db, []*Txn{
		mkAbortSet(1, []byte("mid"), false),
		mkAbortSet(1, []byte("final"), true),
	})
	wantGet(t, db, 1, []byte("mid"))
}

func TestFullyAbortedInsertVanishes(t *testing.T) {
	db, _ := openTestDB(t, 2)
	abortIns := &Txn{
		TypeID: ttInsert, Input: encSet(42, []byte("x")),
		Ops: []Op{{Table: tblKV, Key: 42, Kind: OpInsert}},
		Exec: func(ctx *Ctx) {
			ctx.Abort()
		},
	}
	res := mustRun(t, db, []*Txn{abortIns})
	if res.Aborted != 1 {
		t.Fatalf("res = %+v", res)
	}
	wantGet(t, db, 42, nil)
	if db.RowCount() != 0 {
		t.Fatalf("RowCount = %d", db.RowCount())
	}
}

func TestManyTxnsManyCores(t *testing.T) {
	db, _ := openTestDB(t, 4)
	const n = 500
	var load []*Txn
	for i := uint64(0); i < n; i++ {
		load = append(load, mkInsert(i, []byte(fmt.Sprintf("v%d", i))))
	}
	mustRun(t, db, load)
	var upd []*Txn
	for i := uint64(0); i < n; i++ {
		upd = append(upd, mkSet(i, []byte(fmt.Sprintf("u%d", i))))
	}
	mustRun(t, db, upd)
	for i := uint64(0); i < n; i++ {
		wantGet(t, db, i, []byte(fmt.Sprintf("u%d", i)))
	}
}

func TestContendedRMWChain(t *testing.T) {
	// 64 RMWs on one hot key across 4 cores: final value must reflect all
	// of them in serial order.
	db, _ := openTestDB(t, 4)
	mustRun(t, db, []*Txn{mkInsert(1, nil)})
	var batch []*Txn
	want := make([]byte, 0, 64)
	for i := 0; i < 64; i++ {
		b := byte('a' + i%26)
		batch = append(batch, mkRMW(1, b))
		want = append(want, b)
	}
	mustRun(t, db, batch)
	wantGet(t, db, 1, want)
}

func TestLargeValuesUseValuePool(t *testing.T) {
	db, _ := openTestDB(t, 2)
	big := bytes.Repeat([]byte{0xAB}, 300) // > inline half (96), < ValueSize
	mustRun(t, db, []*Txn{mkInsert(1, big)})
	wantGet(t, db, 1, big)
	mustRun(t, db, []*Txn{mkSet(1, bytes.Repeat([]byte{0xCD}, 200))})
	wantGet(t, db, 1, bytes.Repeat([]byte{0xCD}, 200))
}

func TestValueTooLargePanics(t *testing.T) {
	db, _ := openTestDB(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized value")
		}
	}()
	db.RunEpoch([]*Txn{mkInsert(1, make([]byte, 4096))})
}

func TestEmptyEpoch(t *testing.T) {
	db, _ := openTestDB(t, 2)
	res := mustRun(t, db, nil)
	if res.Epoch != 1 || res.Committed != 0 {
		t.Fatalf("res = %+v", res)
	}
	if db.Epoch() != 1 {
		t.Fatalf("Epoch = %d", db.Epoch())
	}
}

func TestEmptyValue(t *testing.T) {
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte{})})
	got, ok := db.Get(tblKV, 1)
	if !ok || len(got) != 0 {
		t.Fatalf("Get = %v,%v", got, ok)
	}
}

func TestCounters(t *testing.T) {
	db, _ := openTestDB(t, 2)
	if v := db.CounterAdd(0, 5); v != 0 {
		t.Fatalf("first add returned %d", v)
	}
	if v := db.CounterAdd(0, 3); v != 5 {
		t.Fatalf("second add returned %d", v)
	}
	if db.CounterGet(0) != 8 {
		t.Fatalf("CounterGet = %d", db.CounterGet(0))
	}
}

func TestWriteOutsideDeclaredSetPanics(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x")), mkInsert(2, []byte("y"))})
	bad := &Txn{
		TypeID: ttSet, Input: encSet(1, nil),
		Ops: []Op{{Table: tblKV, Key: 1, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			ctx.Write(tblKV, 2, []byte("oops")) // not declared
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.RunEpoch([]*Txn{bad})
}

func TestAbortAfterWritePanics(t *testing.T) {
	db, _ := openTestDB(t, 1)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("x"))})
	bad := &Txn{
		TypeID: ttSet, Input: encSet(1, nil),
		Ops: []Op{{Table: tblKV, Key: 1, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {
			ctx.Write(tblKV, 1, []byte("w"))
			ctx.Abort()
		},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.RunEpoch([]*Txn{bad})
}

func TestUnperformedDeclaredWriteIsNoop(t *testing.T) {
	// Over-declared write sets (reconnaissance) must not disturb the row.
	db, _ := openTestDB(t, 2)
	mustRun(t, db, []*Txn{mkInsert(1, []byte("keep"))})
	lazy := &Txn{
		TypeID: ttSet, Input: encSet(1, nil),
		Ops:  []Op{{Table: tblKV, Key: 1, Kind: OpUpdate}},
		Exec: func(ctx *Ctx) {}, // declares but never writes
	}
	mustRun(t, db, []*Txn{lazy})
	wantGet(t, db, 1, []byte("keep"))
}

func TestBatchTooLarge(t *testing.T) {
	db, _ := openTestDB(t, 1)
	huge := make([]*Txn, MaxTxnsPerEpoch+1)
	if _, err := db.RunEpoch(huge); err == nil {
		t.Fatal("oversized batch accepted")
	}
}
