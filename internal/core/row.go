package core

import (
	"sync/atomic"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Persistent row layout (fixed size, default 256 bytes; paper §5.3). The
// header and both version descriptors share the first cache line so the
// dual-version update protocol persists in one line write-back:
//
//	 0  table   uint32
//	 4  (reserved)
//	 8  key     uint64
//	16  v1.sid  uint64   ── the older version; invariant v1.sid < v2.sid
//	24  v1.ptr  uint64      (when both are non-zero)
//	32  v1.size uint32
//	40  v2.sid  uint64   ── the newer version
//	48  v2.ptr  uint64
//	56  v2.size uint32
//	64  inline heap: two slots of (rowSize-64)/2 bytes each
//
// ptr encoding: 0 = no value; ptrInlineA / ptrInlineB = the value lives in
// the corresponding inline slot; any other value = absolute device offset
// of a persistent value-pool slot.
const (
	rowHdrTable = 0
	rowHdrKey   = 8
	rowV1       = 16
	rowV2       = 40
	verSID      = 0
	verPtr      = 8
	verSize     = 16
	rowInline   = 64

	ptrNone    = uint64(0)
	ptrInlineA = uint64(1)
	ptrInlineB = uint64(2)
)

// nvLineSize aliases the device line size for write-amplification
// accounting (the persist-every-write counterfactual in exec.go).
const nvLineSize = nvm.LineSize

// version is the in-DRAM decoding of one persistent version descriptor.
type version struct {
	sid  uint64
	ptr  uint64
	size uint32
}

func (v version) isNull() bool   { return v.sid == 0 }
func (v version) isInline() bool { return v.ptr == ptrInlineA || v.ptr == ptrInlineB }

// rowRef is a handle to one persistent row on the device. The handle
// carries the attribution cause of the access path that built it (see
// DB.rowRefTag); all device traffic it issues is credited there.
type rowRef struct {
	dev     nvm.Tagged
	off     int64
	rowSize int64
}

// retag returns the same row handle crediting a different cause — used
// where one call path does work on behalf of another (persistFinal's
// inline minor GC).
func (r rowRef) retag(c obs.Cause) rowRef {
	r.dev = r.dev.Retag(c)
	return r
}

// inlineHalf returns the size of each of the two inline slots.
func (r rowRef) inlineHalf() int64 { return (r.rowSize - rowInline) / 2 }

// inlineOff returns the device offset of inline slot ptrInlineA/B.
func (r rowRef) inlineOff(ptr uint64) int64 {
	if ptr == ptrInlineA {
		return r.off + rowInline
	}
	return r.off + rowInline + r.inlineHalf()
}

// valueOff resolves a version's data location on the device.
func (r rowRef) valueOff(v version) int64 {
	if v.isInline() {
		return r.inlineOff(v.ptr)
	}
	return int64(v.ptr)
}

func (r rowRef) table() uint32 { return r.dev.Load32(r.off + rowHdrTable) }
func (r rowRef) key() uint64   { return r.dev.Load64(r.off + rowHdrKey) }

// writeHeader initializes a freshly allocated row: table, key, and both
// version descriptors cleared (the slot may be recycled and hold stale
// descriptors). One line store + flush; durability comes from the epoch
// fence.
func (r rowRef) writeHeader(table uint32, key uint64) {
	var line [rowInline]byte
	putU32(line[rowHdrTable:], table)
	putU64(line[rowHdrKey:], key)
	r.dev.WriteAt(line[:], r.off)
	r.dev.Flush(r.off, rowInline)
}

func (r rowRef) verOff(which int) int64 {
	if which == 1 {
		return r.off + rowV1
	}
	return r.off + rowV2
}

// readVersion loads version descriptor 1 or 2.
func (r rowRef) readVersion(which int) version {
	off := r.verOff(which)
	return version{
		sid:  r.dev.Load64(off + verSID),
		ptr:  r.dev.Load64(off + verPtr),
		size: r.dev.Load32(off + verSize),
	}
}

// persistOrderBroken, when set, reverses the SID-before-pointer store
// order of writeVersion and writeFinal: pointer and size are stored first,
// the SID last. It exists solely so the crash-consistency model checker
// can demonstrate that the §4.5 ordering is load-bearing — with the order
// broken, a torn descriptor write-back can pair an old SID with a new
// pointer, recovery misclassifies the version, and the checker must
// surface an invariant violation. Never set outside tests and nvtorture's
// -break-persist-order mode.
var persistOrderBroken atomic.Bool

// SetPersistOrderBroken toggles the deliberately broken persist ordering
// (see persistOrderBroken). For crash-consistency testing only.
func SetPersistOrderBroken(on bool) { persistOrderBroken.Store(on) }

// versionFields builds the descriptor field stores in protocol order:
// SID before pointer (§4.5), unless the broken-order test hook is armed.
func versionFields(off int64, sid, ptr, size []byte) []nvm.FieldWrite {
	if persistOrderBroken.Load() {
		return []nvm.FieldWrite{
			{Off: off + verPtr, Data: ptr},
			{Off: off + verSize, Data: size},
			{Off: off + verSID, Data: sid},
		}
	}
	return []nvm.FieldWrite{
		{Off: off + verSID, Data: sid},
		{Off: off + verPtr, Data: ptr},
		{Off: off + verSize, Data: size},
	}
}

// writeVersion stores a descriptor with the crash-consistency ordering of
// §4.5: the SID is stored before the pointer, so a partial write-back is
// detectable by comparing SIDs. The line is flushed afterwards; the fence
// comes from the epoch boundary (or replay makes the outcome irrelevant).
// The three field stores and the flush go through one vectored device call;
// WriteFields preserves field store order, so the SID-first protocol holds.
func (r rowRef) writeVersion(which int, v version) {
	off := r.verOff(which)
	var sid, ptr [8]byte
	var size [4]byte
	putU64(sid[:], v.sid)
	putU64(ptr[:], v.ptr)
	putU32(size[:], v.size)
	r.dev.WriteFields(versionFields(off, sid[:], ptr[:], size[:]),
		[]nvm.Range{{Off: r.off, N: rowInline}})
}

// resetVersion nulls a descriptor, SID first (repair case 2 relies on
// seeing sid==0 with a leftover pointer).
func (r rowRef) resetVersion(which int) {
	r.writeVersion(which, version{})
}

// latest returns the most recent version: v2 if present, else v1, which
// may itself be null for a row inserted but never written.
func (r rowRef) latest() version {
	if v2 := r.readVersion(2); !v2.isNull() {
		return v2
	}
	return r.readVersion(1)
}

// readValue copies a version's data out of the device.
func (r rowRef) readValue(v version) []byte {
	buf := make([]byte, v.size)
	if v.size > 0 {
		r.dev.ReadAt(buf, r.valueOff(v))
	}
	return buf
}

// readValueInto reads a version's data into dst (which must be size bytes).
func (r rowRef) readValueInto(v version, dst []byte) {
	if v.size > 0 {
		r.dev.ReadAt(dst[:v.size], r.valueOff(v))
	}
}

// writeValue stores data at the location a descriptor with (ptr,size) will
// reference, flushing the touched lines.
func (r rowRef) writeValue(ptr uint64, data []byte) {
	if len(data) == 0 {
		return
	}
	off := r.valueOff(version{ptr: ptr, size: uint32(len(data))})
	r.dev.WriteAt(data, off)
	r.dev.Flush(off, int64(len(data)))
}

// writeFinal is the vectored hot path of persistFinal: the value bytes, the
// v2 descriptor fields, and both flushes go to the device as one call. The
// value lines (inline heap or value pool) are disjoint from the descriptor
// line, and the field order keeps every individual store and flush exactly
// where the unvectored sequence (writeValue then writeVersion) put it, so
// access counters, chaos-eviction rolls, and fail-point positions are
// unchanged — the call only drops the per-operation device round trips.
func (r rowRef) writeFinal(sid uint64, ptr uint64, data []byte) {
	off := r.verOff(2)
	var sidB, ptrB [8]byte
	var sizeB [4]byte
	putU64(sidB[:], sid)
	putU64(ptrB[:], ptr)
	putU32(sizeB[:], uint32(len(data)))
	fields := make([]nvm.FieldWrite, 0, 4)
	flushes := make([]nvm.Range, 0, 2)
	if len(data) > 0 {
		valOff := r.valueOff(version{ptr: ptr, size: uint32(len(data))})
		fields = append(fields, nvm.FieldWrite{Off: valOff, Data: data})
		flushes = append(flushes, nvm.Range{Off: valOff, N: int64(len(data))})
	}
	fields = append(fields, versionFields(off, sidB[:], ptrB[:], sizeB[:])...)
	flushes = append(flushes, nvm.Range{Off: r.off, N: rowInline})
	r.dev.WriteFields(fields, flushes)
}

// freeInlineSlot picks the inline slot not referenced by v (or slot A when
// v is not inline), i.e. the slot a new inline version may safely occupy.
func freeInlineSlot(v version) uint64 {
	if v.ptr == ptrInlineA {
		return ptrInlineB
	}
	return ptrInlineA
}

// repair fixes torn version descriptors after a crash, implementing the
// three situations of §4.5. crashedEpoch is the epoch that did not
// checkpoint. It returns true if the row was modified.
//
//	Case 1: GC was collecting the row — matching sids mean the copy of v2
//	        into v1 at least began — so complete the whole collection:
//	        finish the copy if it tore, then reset v2. Leaving v2 in place
//	        (as repair once did) is unsound: recovery re-queues the row,
//	        and the redone collection frees the pointer now shared by both
//	        versions — the row's only value — which a later epoch then
//	        reallocates out from under it.
//	Case 2: GC was resetting v2; sid is null but the pointer is not →
//	        finish the reset.
//	Case 3: v2.sid belongs to the crashed epoch → left as is; the replayed
//	        final write detects the match and overwrites the descriptor.
func (r rowRef) repair(crashedEpoch uint64) bool {
	v1 := r.readVersion(1)
	v2 := r.readVersion(2)
	if !v1.isNull() && !v2.isNull() && v1.sid == v2.sid && SIDEpoch(v1.sid) != crashedEpoch {
		if v1.ptr != v2.ptr || v1.size != v2.size {
			r.writeVersion(1, version{sid: v2.sid, ptr: v2.ptr, size: v2.size})
		}
		r.resetVersion(2)
		return true
	}
	if v2.isNull() && (v2.ptr != 0 || v2.size != 0) {
		r.resetVersion(2)
		return true
	}
	return false
}

// revertCrashedVersion implements the TPC-C recovery variant (§6.2.3):
// if v2 was written during the crashed epoch, reset it so the replay —
// which may assign different keys — starts from the clean checkpoint.
// Returns true if a version was reverted.
func (r rowRef) revertCrashedVersion(crashedEpoch uint64) bool {
	v2 := r.readVersion(2)
	if !v2.isNull() && SIDEpoch(v2.sid) == crashedEpoch {
		r.resetVersion(2)
		return true
	}
	return false
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
