// Engine-level device-contract tests live in nvm_test so they can drive a
// real engine through the shared crash-test kit (internal/crashcheck/kit)
// on top of the device: the crash-consistency model checker leans on the
// properties pinned here — snapshot/restore isolation, single-core flush
// determinism, and fail-point/fence accounting seen from above the engine.
package nvm_test

import (
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
)

func engineWarm(t *testing.T, db *core.DB) {
	t.Helper()
	var load []*core.Txn
	for i := uint64(0); i < 12; i++ {
		load = append(load, kit.MkInsert(i, []byte{byte(i), byte(i >> 8)}))
	}
	if _, err := db.RunEpoch(load); err != nil {
		t.Fatal(err)
	}
}

func engineProbe() []*core.Txn {
	return []*core.Txn{
		kit.MkRMW(0, 'p'),
		kit.MkSet(1, make([]byte, 200)), // non-inline value
		kit.MkDelete(2),
		kit.MkInsert(40, []byte("probe")),
	}
}

// TestEngineSnapshotReplicaDeterminism pins the property the model checker's
// oracle depends on: replay the identical recover-then-epoch sequence on two
// devices built from one snapshot and (at one core) the device observes the
// identical access trace — same flush count, same fence marks, same stats.
// Fail-point N therefore names the same crash state on every replica.
func TestEngineSnapshotReplicaDeterminism(t *testing.T) {
	opts := kit.Options(1)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	engineWarm(t, db)
	snap := dev.Snapshot()

	run := func() (nvm.Stats, []int64) {
		d := snap.NewDevice()
		rdb, _, err := core.Recover(d, kit.Options(1))
		if err != nil {
			t.Fatal(err)
		}
		d.ResetStats()
		d.TraceFences(true)
		if _, err := rdb.RunEpoch(engineProbe()); err != nil {
			t.Fatal(err)
		}
		d.TraceFences(false)
		return d.Stats(), d.FenceMarks()
	}

	stA, marksA := run()
	stB, marksB := run()
	if stA != stB {
		t.Fatalf("replica stats diverged:\n A %+v\n B %+v", stA, stB)
	}
	if len(marksA) != len(marksB) {
		t.Fatalf("fence mark count diverged: %d vs %d", len(marksA), len(marksB))
	}
	for i := range marksA {
		if marksA[i] != marksB[i] {
			t.Fatalf("fence mark %d diverged: %d vs %d", i, marksA[i], marksB[i])
		}
	}
	if stA.Flushes == 0 || len(marksA) == 0 {
		t.Fatalf("probe epoch issued no flushes/fences (stats %+v, %d marks)", stA, len(marksA))
	}
	if last := marksA[len(marksA)-1]; last <= 0 || last > stA.Flushes {
		t.Fatalf("final fence mark %d outside (0, %d]", last, stA.Flushes)
	}
}

// TestEngineRestoreIsolatesCrashPoints reuses one device across crash
// points via Restore, the way a checker worker does, and verifies each
// exploration starts from the pristine snapshot: the injected crash and
// recovery of one point must not leak into the next. Every point must
// recover to exactly the pre-probe or post-probe state.
func TestEngineRestoreIsolatesCrashPoints(t *testing.T) {
	opts := kit.Options(1)
	dev := nvm.New(opts.Layout.TotalBytes())
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	engineWarm(t, db)
	pre := kit.SnapshotKV(db, 64)
	snap := dev.Snapshot()

	// Reference post state and the probe's flush budget, on a replica.
	refDev := snap.NewDevice()
	refDB, _, err := core.Recover(refDev, kit.Options(1))
	if err != nil {
		t.Fatal(err)
	}
	refDev.ResetStats()
	if _, err := refDB.RunEpoch(engineProbe()); err != nil {
		t.Fatal(err)
	}
	post := kit.SnapshotKV(refDB, 64)
	flushes := refDev.Stats().Flushes

	worker := snap.NewDevice()
	for _, fa := range []int64{1, flushes / 3, flushes / 2, flushes - 1, flushes} {
		if fa < 1 {
			continue
		}
		worker.Restore(snap)
		wdb, _, err := core.Recover(worker, kit.Options(1))
		if err != nil {
			t.Fatalf("failAfter=%d: pre-probe recover: %v", fa, err)
		}
		probeEpoch := wdb.Epoch() + 1
		worker.SetFailAfter(fa)
		fired, err := kit.RunUntilCrash(wdb, engineProbe())
		worker.SetFailAfter(0)
		if err != nil {
			t.Fatalf("failAfter=%d: %v", fa, err)
		}
		worker.Crash(nvm.CrashRandom, 1000+fa)

		rdb, rep, err := core.Recover(worker, kit.Options(1))
		if err != nil {
			t.Fatalf("failAfter=%d: recover: %v", fa, err)
		}
		// Committed either by replay or because the crash fired at the epoch
		// record's own flush and the randomized crash landed the staged
		// record line — the checkpoint fence before it already made every
		// epoch write durable, so that case is a genuine commit (the same
		// predicate the model checker's oracle uses).
		committed := !fired || rep.ReplayedEpoch != 0 || rep.CheckpointEpoch >= probeEpoch
		want := pre
		if committed {
			want = post
		}
		got := kit.SnapshotKV(rdb, 64)
		if len(got) != len(want) {
			t.Fatalf("failAfter=%d fired=%v: %d rows, want %d", fa, fired, len(got), len(want))
		}
		for k, v := range want {
			if g, ok := got[k]; !ok || string(g) != string(v) {
				t.Fatalf("failAfter=%d fired=%v: key %d got %q (present=%v) want %q",
					fa, fired, k, g, ok, v)
			}
		}
	}
}
