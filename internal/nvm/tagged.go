package nvm

import "nvcaracal/internal/obs"

// Tagged is a context-free attributed view of a Device: a value pairing the
// device with the obs.Cause every access through it is credited to. Call
// sites that know why they touch NVMM (persisting a final version,
// appending the WAL, running GC) hold a Tagged instead of the raw *Device
// and the attribution layer decomposes the device traffic per cause.
//
// Tagged is two words, copied by value, and allocates nothing: engines
// embed it in their per-access handles (core's rowRef) or construct it
// inline per call (wal). With no attribution attached (WithAttrib unset or
// nil) a Tagged access is the plain device access plus one nil pointer
// check; Stats, durability state, and the latency model are identical
// either way.
type Tagged struct {
	d     *Device
	cause obs.Cause
}

// Tag returns an attributed view of the device crediting accesses to c.
func (d *Device) Tag(c obs.Cause) Tagged { return Tagged{d: d, cause: c} }

// Device returns the underlying device.
func (t Tagged) Device() *Device { return t.d }

// Cause returns the cause this view credits accesses to.
func (t Tagged) Cause() obs.Cause { return t.cause }

// Retag returns a view of the same device crediting a different cause.
func (t Tagged) Retag(c obs.Cause) Tagged { return Tagged{d: t.d, cause: c} }

// Size returns the device capacity in bytes.
func (t Tagged) Size() int64 { return t.d.Size() }

// ReadAt is Device.ReadAt attributed to the view's cause.
func (t Tagged) ReadAt(p []byte, off int64) { t.d.readAt(p, off, t.cause) }

// Slice is Device.Slice attributed to the view's cause.
func (t Tagged) Slice(off, n int64) []byte { return t.d.slice(off, n, t.cause) }

// WriteAt is Device.WriteAt attributed to the view's cause.
func (t Tagged) WriteAt(p []byte, off int64) { t.d.writeAt(p, off, t.cause) }

// Zero is Device.Zero attributed to the view's cause.
func (t Tagged) Zero(off, n int64) { t.d.zero(off, n, t.cause) }

// Load64 is Device.Load64 attributed to the view's cause.
func (t Tagged) Load64(off int64) uint64 { return t.d.load64(off, t.cause) }

// Store64 is Device.Store64 attributed to the view's cause.
func (t Tagged) Store64(off int64, v uint64) { t.d.store64(off, v, t.cause) }

// Load32 is Device.Load32 attributed to the view's cause.
func (t Tagged) Load32(off int64) uint32 { return t.d.load32(off, t.cause) }

// Store32 is Device.Store32 attributed to the view's cause.
func (t Tagged) Store32(off int64, v uint32) { t.d.store32(off, v, t.cause) }

// WriteFields is Device.WriteFields attributed to the view's cause.
func (t Tagged) WriteFields(fields []FieldWrite, flushes []Range) {
	t.d.writeFields(fields, flushes, t.cause)
}

// Flush is Device.Flush attributed to the view's cause.
func (t Tagged) Flush(off, n int64) { t.d.flush(off, n, t.cause) }

// Persist is Device.Persist attributed to the view's cause.
func (t Tagged) Persist(off, n int64) { t.d.persist(off, n, t.cause) }

// PersistRange is Device.PersistRange attributed to the view's cause.
func (t Tagged) PersistRange(ranges ...Range) { t.d.persistRange(t.cause, ranges...) }

// Fence is Device.Fence attributed to the view's cause. A fence drains
// previously issued write-backs from every cause at once, so the
// attribution records who *ordered* (paid for) the fence, not whose lines
// it happened to commit — which is exactly the ledger a fence diet needs.
func (t Tagged) Fence() { t.d.fence(t.cause) }
