package nvm

import (
	"fmt"
	"os"
	"testing"

	"nvcaracal/internal/obs"
)

func TestDeviceObserverRecords(t *testing.T) {
	o := obs.NewDeviceObs(true)
	d := New(1<<16, WithObserver(o))

	var buf [256]byte
	d.WriteAt(buf[:], 0)
	d.Store64(512, 7)
	d.Store32(1024, 7)
	d.Zero(2048, 128)
	d.WriteFields([]FieldWrite{{Off: 4096, Data: buf[:8]}}, []Range{{Off: 4096, N: 8}})
	d.ReadAt(buf[:], 0)
	d.Slice(512, 64)
	d.Load64(512)
	d.Load32(1024)
	d.Fence()

	if got := o.Read.Snapshot().Count; got != 4 {
		t.Fatalf("read observations = %d, want 4", got)
	}
	// WriteAt + Store64 + Store32 + Zero + WriteFields store portion.
	if got := o.Write.Snapshot().Count; got != 5 {
		t.Fatalf("write observations = %d, want 5", got)
	}
	// Only WriteFields issued a flush of dirty lines.
	if got := o.Flush.Snapshot().Count; got != 1 {
		t.Fatalf("flush observations = %d, want 1", got)
	}
	if got := o.Fence.Snapshot().Count; got != 1 {
		t.Fatalf("fence observations = %d, want 1", got)
	}
	if o.FenceStallNanos() <= 0 {
		t.Fatal("fence stall did not accumulate")
	}

	// A flush over clean lines is a hardware no-op and must not be recorded.
	d.Flush(0, 256) // lines staged by nothing: everything above is dirty...
	d.Fence()
	before := o.Flush.Snapshot().Count
	d.Flush(0, 256) // now clean
	if got := o.Flush.Snapshot().Count; got != before {
		t.Fatalf("clean flush recorded: %d -> %d", before, got)
	}
}

func TestDeviceObserverDisabledAndNil(t *testing.T) {
	// Attached-but-disabled and absent observers must change nothing.
	for _, d := range []*Device{
		New(1<<12, WithObserver(obs.NewDeviceObs(false))),
		New(1 << 12),
	} {
		var buf [64]byte
		d.WriteAt(buf[:], 0)
		d.Persist(0, 64)
		d.ReadAt(buf[:], 0)
		if s := d.Stats(); s.LineWrites != 1 || s.LineReads != 1 || s.Fences != 1 {
			t.Fatalf("stats with inert observer: %+v", s)
		}
	}
}

// TestDisabledObserverOverhead asserts the compiled-in-but-off budget: an
// attached-but-disabled observer must cost < 2% versus no observer at all on
// the device contention workload. Timing-sensitive, so it only runs when
// OBS_OVERHEAD=1 (CI runs it in a dedicated non-gating job); results land in
// DESIGN.md's observability section.
func TestDisabledObserverOverhead(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD") == "" {
		t.Skip("set OBS_OVERHEAD=1 to run the disabled-observer overhead check")
	}
	const cores, ops, rounds = 4, 30000, 5
	// Warm up, then take the best of several rounds for each variant:
	// min-of-N is robust against scheduler noise in shared CI runners.
	RunDeviceBench(cores, ops)
	best := func(opts ...Option) float64 {
		var b float64
		for i := 0; i < rounds; i++ {
			if r := RunDeviceBench(cores, ops, opts...); r.OpsSec > b {
				b = r.OpsSec
			}
		}
		return b
	}
	base := best()
	off := best(WithObserver(obs.NewDeviceObs(false)))
	overhead := (base - off) / base
	t.Logf("base=%.0f ops/s disabled-observer=%.0f ops/s overhead=%.2f%%", base, off, overhead*100)
	if overhead >= 0.02 {
		t.Fatalf("disabled observer overhead %.2f%% >= 2%%", overhead*100)
	}
	fmt.Printf("OBS_OVERHEAD_RESULT base=%.0f disabled=%.0f overhead_pct=%.2f\n", base, off, overhead*100)
}
