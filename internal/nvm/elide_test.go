package nvm

import (
	"bytes"
	"math/rand"
	"testing"
)

// Redundant-flush elision tests. The device elides the write-back of a
// line that is clean since its last snapshot (durable, or staged with the
// same content a second write-back would produce), and the accounting
// guarantees every line a Flush visits lands in exactly one of Flushes or
// FlushesElided. The invariant the crash-consistency of the whole engine
// rests on: elision may only ever skip a CLEAN line — a line dirtied after
// its last flush must always be written back again.

func TestFlushElisionCountsCleanSkips(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte("x"), 0)

	base := d.Stats()
	d.Flush(0, LineSize)
	s := d.Stats().Sub(base)
	if s.Flushes != 1 || s.FlushesElided != 0 {
		t.Fatalf("first flush: flushes=%d elided=%d, want 1/0", s.Flushes, s.FlushesElided)
	}

	// Same line again before the fence: content already staged, elide.
	base = d.Stats()
	d.Flush(0, LineSize)
	s = d.Stats().Sub(base)
	if s.Flushes != 0 || s.FlushesElided != 1 {
		t.Fatalf("redundant flush: flushes=%d elided=%d, want 0/1", s.Flushes, s.FlushesElided)
	}

	// After the fence the line is durable and still clean: elide again.
	d.Fence()
	base = d.Stats()
	d.Flush(0, LineSize)
	s = d.Stats().Sub(base)
	if s.Flushes != 0 || s.FlushesElided != 1 {
		t.Fatalf("post-fence clean flush: flushes=%d elided=%d, want 0/1", s.Flushes, s.FlushesElided)
	}

	// Re-dirtied: the write-back is mandatory, not elidable.
	d.WriteAt([]byte("y"), 0)
	base = d.Stats()
	d.Flush(0, LineSize)
	s = d.Stats().Sub(base)
	if s.Flushes != 1 || s.FlushesElided != 0 {
		t.Fatalf("re-dirtied flush: flushes=%d elided=%d, want 1/0", s.Flushes, s.FlushesElided)
	}
}

func TestFlushTilesRangeAcrossFlushedAndElided(t *testing.T) {
	const lines = 8
	d := New(lines * LineSize)
	// Dirty every other line; the rest stay clean.
	for l := int64(0); l < lines; l += 2 {
		d.WriteAt([]byte{byte(l + 1)}, l*LineSize)
	}
	base := d.Stats()
	d.Flush(0, lines*LineSize)
	s := d.Stats().Sub(base)
	if s.Flushes+s.FlushesElided != lines {
		t.Fatalf("flush visited %d lines but accounted %d+%d", int64(lines), s.Flushes, s.FlushesElided)
	}
	if s.Flushes != lines/2 || s.FlushesElided != lines/2 {
		t.Fatalf("flushes=%d elided=%d, want %d/%d", s.Flushes, s.FlushesElided, lines/2, lines/2)
	}
}

// TestFlushElisionNeverSkipsDirtyLine drives a random write/flush/fence
// history and checks, at every strict crash, that elision never cost us a
// write-back a dirty line needed: after flush+fence the latest flushed
// content must be durable even when earlier flushes of the same line were
// elided.
func TestFlushElisionNeverSkipsDirtyLine(t *testing.T) {
	const lines = 16
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 50; round++ {
		d := New(lines * LineSize)
		fenced := make(map[int64][]byte) // line -> content guaranteed durable
		for step := 0; step < 40; step++ {
			l := int64(rng.Intn(lines))
			switch rng.Intn(4) {
			case 0, 1: // write + flush (possibly twice: the second elides)
				val := make([]byte, LineSize)
				rng.Read(val)
				d.WriteAt(val, l*LineSize)
				d.Flush(l*LineSize, LineSize)
				if rng.Intn(2) == 0 {
					d.Flush(l*LineSize, LineSize) // redundant: must be a pure no-op
				}
			case 2: // flush a line that may be clean (elision candidate)
				d.Flush(l*LineSize, LineSize)
			case 3:
				d.Fence()
				// Everything staged so far is durable now.
				for ln := int64(0); ln < lines; ln++ {
					buf := make([]byte, LineSize)
					d.ReadAt(buf, ln*LineSize)
					if d.state[ln].Load()&stDirty == 0 {
						fenced[ln] = buf
					}
				}
			}
		}
		d.Fence()
		for ln := int64(0); ln < lines; ln++ {
			buf := make([]byte, LineSize)
			d.ReadAt(buf, ln*LineSize)
			if d.state[ln].Load()&stDirty == 0 {
				fenced[ln] = buf
			}
		}
		d.Crash(CrashStrict, 0)
		for ln, want := range fenced {
			got := make([]byte, LineSize)
			d.ReadAt(got, ln*LineSize)
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d: line %d lost flushed+fenced content after strict crash (elision skipped a dirty line?)", round, ln)
			}
		}
	}
}
