package nvm

import (
	"fmt"
	"testing"
)

// BenchmarkDeviceContention measures raw device-op throughput as worker
// goroutines scale, with the latency model off: it isolates the simulated
// device's own synchronization cost, which must stay far below the
// engine's work per access for scalability curves to reflect the design
// under test rather than the simulator (see DESIGN.md, "Device performance
// model"). BENCH_device.json commits the same measurement via nvbench.
func BenchmarkDeviceContention(b *testing.B) {
	for _, cores := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			opsPerCore := b.N
			r := RunDeviceBench(cores, opsPerCore)
			b.ReportMetric(r.OpsSec, "devops/s")
		})
	}
}

// BenchmarkStoreFlushFence is the single-goroutine baseline of the same
// pattern, for profiling the per-op cost without contention.
func BenchmarkStoreFlushFence(b *testing.B) {
	d := New(1 << 20)
	var val [128]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%4096) * 256
		d.Store64(off, uint64(i))
		d.WriteAt(val[:], off+64)
		d.Flush(off, 192)
		if i%256 == 255 {
			d.Fence()
		}
	}
}
