// Package nvm simulates a byte-addressable non-volatile main memory (NVMM)
// device such as Intel Optane Persistent Memory.
//
// The simulation tracks durability at CPU cache-line (64 byte) granularity,
// which is the unit at which real hardware moves data between the CPU caches
// and the persistence domain:
//
//   - Stores (WriteAt and friends) update the "live" image, the bytes that
//     loads observe, and mark the touched lines dirty.
//   - Flush (CLWB/CLFLUSHOPT) snapshots the current content of a line into a
//     staging area. The snapshot is not yet durable.
//   - Fence (SFENCE) commits all staged snapshots to the durable image.
//
// Crash discards the live image and rebuilds it from the durable image,
// optionally letting some un-fenced lines survive (CrashRandom) the way a
// real cache eviction can write back a dirty line at any time. Code that is
// crash-consistent on this model — in particular under the adversarial
// CrashStrict and CrashRandom modes — is crash-consistent on ADR hardware.
//
// The device also keeps precise access statistics and can charge a
// configurable latency per line read/write so that benchmark results
// reproduce the DRAM/NVMM performance gap of real hardware.
package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// LineSize is the simulated cache line size in bytes, the granularity of
// durability tracking.
const LineSize = 64

// shardCount is the number of locks sharding the dirty/staged line sets.
const shardCount = 64

// CrashMode selects how un-persisted lines behave across a simulated crash.
type CrashMode int

const (
	// CrashStrict drops every line that was not flushed AND fenced. This is
	// the adversarial model: nothing the program did not explicitly persist
	// survives.
	CrashStrict CrashMode = iota
	// CrashRandom lets each non-durable line independently survive with 50%
	// probability, modelling cache evictions that write back dirty lines
	// before a power failure. Recovery code must be correct for every
	// outcome, so tests drive this with many seeds.
	CrashRandom
	// CrashAll persists everything, modelling a flush of all caches on the
	// failure path (eADR hardware). Useful as a control in tests.
	CrashAll
)

// ErrInjectedCrash is the panic value raised when a fail-point installed
// with SetFailAfter triggers. Engine code does not recover from it; tests
// catch it at the top of the epoch loop to simulate a crash at an arbitrary
// persist boundary.
var ErrInjectedCrash = errors.New("nvm: injected crash")

// Stats holds cumulative access counters for a device. All counts are in
// units of line accesses except the byte totals.
type Stats struct {
	LineReads    int64 // lines touched by loads
	LineWrites   int64 // lines touched by stores
	BytesRead    int64
	BytesWritten int64
	Flushes      int64 // Flush calls (line writebacks issued)
	Fences       int64 // Fence calls
	LinesFenced  int64 // lines made durable by fences
}

// Sub returns s - o, useful for measuring an interval.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LineReads:    s.LineReads - o.LineReads,
		LineWrites:   s.LineWrites - o.LineWrites,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		Flushes:      s.Flushes - o.Flushes,
		Fences:       s.Fences - o.Fences,
		LinesFenced:  s.LinesFenced - o.LinesFenced,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d flushes=%d fences=%d bytesR=%d bytesW=%d",
		s.LineReads, s.LineWrites, s.Flushes, s.Fences, s.BytesRead, s.BytesWritten)
}

// Option configures a Device.
type Option func(*Device)

// WithLatency charges the given busy-wait latency per line read and write.
// Zero (the default) disables the latency model; unit tests run with it off
// and benchmarks turn it on to reproduce the DRAM/NVMM gap.
func WithLatency(read, write time.Duration) Option {
	return func(d *Device) {
		d.readLatency = read
		d.writeLatency = write
	}
}

// WithFenceLatency charges a busy-wait drain latency per Fence, modelling
// the cost of waiting for issued write-backs to reach the persistence
// domain (SFENCE after CLWB on Optane is several hundred nanoseconds under
// load). Engines that fence per transaction pay it per transaction;
// epoch-based engines amortize it across the batch.
func WithFenceLatency(d time.Duration) Option {
	return func(dev *Device) {
		dev.fenceLatency = d
	}
}

// WithChaosEviction makes the device behave like a real CPU cache: after
// any store, the just-written line may be evicted — written back to the
// persistence domain — with probability 1/denom. An eviction between two
// stores to the same line makes the first store durable without the second,
// which is exactly the torn-update hazard the engine's SID-before-pointer
// protocol and recovery repair must handle. Deterministic given the seed.
func WithChaosEviction(denom int, seed int64) Option {
	return func(d *Device) {
		if denom > 0 {
			d.chaosDenom = denom
			d.chaosState.Store(uint64(seed)*2862933555777941757 + 3037000493)
		}
	}
}

// lineShard guards a subset of the dirty/staged line sets.
type lineShard struct {
	mu     sync.Mutex
	dirty  map[int64]struct{} // written since last made durable
	staged map[int64][]byte   // flushed snapshot awaiting a fence
}

// Device is a simulated NVMM region. It is safe for concurrent use provided
// concurrent accesses do not overlap byte ranges (the same discipline real
// memory requires); metadata updates are internally synchronized.
type Device struct {
	size    int64
	live    []byte // what loads/stores observe
	durable []byte // what survives a crash

	shards [shardCount]lineShard

	readLatency  time.Duration
	writeLatency time.Duration
	fenceLatency time.Duration

	stats struct {
		lineReads    atomic.Int64
		lineWrites   atomic.Int64
		bytesRead    atomic.Int64
		bytesWritten atomic.Int64
		flushes      atomic.Int64
		fences       atomic.Int64
		linesFenced  atomic.Int64
	}

	// failAfter, when positive, counts down on every flushed line; reaching
	// zero panics with ErrInjectedCrash. Disabled when zero or negative.
	failAfter atomic.Int64

	// Chaos eviction state (see WithChaosEviction).
	chaosDenom int
	chaosState atomic.Uint64

	// fenceMu serializes Fence against Flush so a fence commits a consistent
	// snapshot set.
	fenceMu sync.Mutex
}

// New creates a device of the given size in bytes, rounded up to a whole
// number of lines. The initial contents are zero and durable.
func New(size int64, opts ...Option) *Device {
	if size <= 0 {
		panic("nvm: non-positive device size")
	}
	size = (size + LineSize - 1) / LineSize * LineSize
	d := &Device{
		size:    size,
		live:    make([]byte, size),
		durable: make([]byte, size),
	}
	for i := range d.shards {
		d.shards[i].dirty = make(map[int64]struct{})
		d.shards[i].staged = make(map[int64][]byte)
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

func (d *Device) check(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of bounds (size %d)", off, off+n, d.size))
	}
}

func lineOf(off int64) int64 { return off / LineSize }

func (d *Device) shardFor(line int64) *lineShard {
	return &d.shards[line%shardCount]
}

// spin busy-waits for roughly dur. Busy waiting (rather than sleeping) keeps
// the latency model accurate at the sub-microsecond scale of memory access.
func spin(dur time.Duration) {
	if dur <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < dur {
	}
}

func (d *Device) chargeRead(lines int64) {
	if d.readLatency > 0 {
		spin(time.Duration(lines) * d.readLatency)
	}
}

func (d *Device) chargeWrite(lines int64) {
	if d.writeLatency > 0 {
		spin(time.Duration(lines) * d.writeLatency)
	}
}

func linesSpanned(off, n int64) int64 {
	if n == 0 {
		return 0
	}
	return lineOf(off+n-1) - lineOf(off) + 1
}

// ReadAt copies len(p) bytes starting at off from the live image into p.
func (d *Device) ReadAt(p []byte, off int64) {
	n := int64(len(p))
	d.check(off, n)
	copy(p, d.live[off:off+n])
	lines := linesSpanned(off, n)
	d.stats.lineReads.Add(lines)
	d.stats.bytesRead.Add(n)
	d.chargeRead(lines)
}

// Slice returns a read-only view of the live image. The caller must not
// mutate it and must not hold it across a Crash. It charges a read for the
// spanned lines, making it equivalent to ReadAt without the copy.
func (d *Device) Slice(off, n int64) []byte {
	d.check(off, n)
	lines := linesSpanned(off, n)
	d.stats.lineReads.Add(lines)
	d.stats.bytesRead.Add(n)
	d.chargeRead(lines)
	return d.live[off : off+n : off+n]
}

// seqWriteFactor discounts the latency of large contiguous writes: Optane's
// sequential write bandwidth is several times its random-write bandwidth,
// and a multi-line WriteAt models a streaming store sequence (e.g. the
// input log). Only the latency model is affected; line counts in Stats stay
// exact.
const seqWriteFactor = 4

// WriteAt stores p at off in the live image and marks the spanned lines
// dirty. The data is not durable until it is flushed and fenced.
func (d *Device) WriteAt(p []byte, off int64) {
	n := int64(len(p))
	d.check(off, n)
	copy(d.live[off:off+n], p)
	d.markDirty(off, n)
	lines := linesSpanned(off, n)
	d.stats.lineWrites.Add(lines)
	d.stats.bytesWritten.Add(n)
	if lines >= seqWriteFactor {
		d.chargeWrite((lines + seqWriteFactor - 1) / seqWriteFactor)
	} else {
		d.chargeWrite(lines)
	}
}

// Zero clears n bytes at off, with store semantics.
func (d *Device) Zero(off, n int64) {
	d.check(off, n)
	clear(d.live[off : off+n])
	d.markDirty(off, n)
	lines := linesSpanned(off, n)
	d.stats.lineWrites.Add(lines)
	d.stats.bytesWritten.Add(n)
	d.chargeWrite(lines)
}

func (d *Device) markDirty(off, n int64) {
	first, last := lineOf(off), lineOf(off+n-1)
	for l := first; l <= last; l++ {
		sh := d.shardFor(l)
		sh.mu.Lock()
		if d.chaosDenom > 0 && d.chaosRoll() {
			// Spontaneous eviction: the line, including this store, reaches
			// the persistence domain immediately (ADR), no fence required.
			copy(d.durable[l*LineSize:(l+1)*LineSize], d.live[l*LineSize:(l+1)*LineSize])
			delete(sh.dirty, l)
			delete(sh.staged, l)
		} else {
			sh.dirty[l] = struct{}{}
		}
		// A store after a flush invalidates the staged snapshot: real
		// hardware would need a second CLWB to persist the new content.
		// Keeping the stale snapshot models exactly that.
		sh.mu.Unlock()
	}
}

// chaosRoll advances a xorshift PRNG and reports a 1/denom hit. The state
// is a single atomic so concurrent stores from different shards stay
// race-free; a lost update only perturbs the random sequence.
func (d *Device) chaosRoll() bool {
	x := d.chaosState.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.chaosState.Store(x)
	return x%uint64(d.chaosDenom) == 0
}

// Load64 reads a little-endian uint64 at off.
func (d *Device) Load64(off int64) uint64 {
	d.check(off, 8)
	b := d.live[off : off+8]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	d.stats.lineReads.Add(linesSpanned(off, 8))
	d.stats.bytesRead.Add(8)
	d.chargeRead(linesSpanned(off, 8))
	return v
}

// Store64 writes a little-endian uint64 at off with store semantics.
func (d *Device) Store64(off int64, v uint64) {
	d.check(off, 8)
	b := d.live[off : off+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
	d.markDirty(off, 8)
	d.stats.lineWrites.Add(linesSpanned(off, 8))
	d.stats.bytesWritten.Add(8)
	d.chargeWrite(linesSpanned(off, 8))
}

// Load32 reads a little-endian uint32 at off.
func (d *Device) Load32(off int64) uint32 {
	d.check(off, 4)
	b := d.live[off : off+4]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	d.stats.lineReads.Add(1)
	d.stats.bytesRead.Add(4)
	d.chargeRead(1)
	return v
}

// Store32 writes a little-endian uint32 at off with store semantics.
func (d *Device) Store32(off int64, v uint32) {
	d.check(off, 4)
	b := d.live[off : off+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	d.markDirty(off, 4)
	d.stats.lineWrites.Add(1)
	d.stats.bytesWritten.Add(4)
	d.chargeWrite(1)
}

// Flush issues a write-back for every line in [off, off+n). Each flushed
// line's current content is snapshotted; a subsequent Fence makes the
// snapshots durable. Flushing a clean line is a no-op (as on hardware).
func (d *Device) Flush(off, n int64) {
	if n == 0 {
		return
	}
	d.check(off, n)
	first, last := lineOf(off), lineOf(off+n-1)
	for l := first; l <= last; l++ {
		sh := d.shardFor(l)
		sh.mu.Lock()
		if _, ok := sh.dirty[l]; ok {
			snap := make([]byte, LineSize)
			copy(snap, d.live[l*LineSize:(l+1)*LineSize])
			sh.staged[l] = snap
			delete(sh.dirty, l)
			d.stats.flushes.Add(1)
			if d.failAfter.Load() > 0 && d.failAfter.Add(-1) == 0 {
				sh.mu.Unlock()
				panic(ErrInjectedCrash)
			}
		}
		sh.mu.Unlock()
	}
}

// Persist is Flush followed by Fence: the range is durable on return.
func (d *Device) Persist(off, n int64) {
	d.Flush(off, n)
	d.Fence()
}

// Fence commits every staged line snapshot to the durable image. It models
// SFENCE on an ADR platform: previously issued write-backs are now in the
// persistence domain.
func (d *Device) Fence() {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	d.stats.fences.Add(1)
	spin(d.fenceLatency)
	var committed int64
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		for l, snap := range sh.staged {
			copy(d.durable[l*LineSize:(l+1)*LineSize], snap)
			delete(sh.staged, l)
			committed++
		}
		sh.mu.Unlock()
	}
	d.stats.linesFenced.Add(committed)
}

// Crash simulates a power failure: the live image is rebuilt from the
// durable image. mode controls the fate of non-durable lines; seed drives
// CrashRandom. All staged and dirty state is cleared. Statistics survive.
func (d *Device) Crash(mode CrashMode, seed int64) {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		switch mode {
		case CrashStrict:
			// Neither dirty nor merely-staged lines survive.
		case CrashAll:
			for l := range sh.dirty {
				copy(d.durable[l*LineSize:(l+1)*LineSize], d.live[l*LineSize:(l+1)*LineSize])
			}
			for l, snap := range sh.staged {
				copy(d.durable[l*LineSize:(l+1)*LineSize], snap)
			}
		case CrashRandom:
			for l := range sh.dirty {
				if rng.Intn(2) == 0 {
					copy(d.durable[l*LineSize:(l+1)*LineSize], d.live[l*LineSize:(l+1)*LineSize])
				}
			}
			for l, snap := range sh.staged {
				if rng.Intn(2) == 0 {
					copy(d.durable[l*LineSize:(l+1)*LineSize], snap)
				}
			}
		}
		clear(sh.dirty)
		clear(sh.staged)
		sh.mu.Unlock()
	}
	copy(d.live, d.durable)
	d.failAfter.Store(0)
}

// SetFailAfter installs a fail-point: after n more flushed lines the device
// panics with ErrInjectedCrash. n <= 0 disables the fail-point.
func (d *Device) SetFailAfter(n int64) { d.failAfter.Store(n) }

// Stats returns a snapshot of the cumulative access counters.
func (d *Device) Stats() Stats {
	return Stats{
		LineReads:    d.stats.lineReads.Load(),
		LineWrites:   d.stats.lineWrites.Load(),
		BytesRead:    d.stats.bytesRead.Load(),
		BytesWritten: d.stats.bytesWritten.Load(),
		Flushes:      d.stats.flushes.Load(),
		Fences:       d.stats.fences.Load(),
		LinesFenced:  d.stats.linesFenced.Load(),
	}
}

// ResetStats zeroes all counters.
func (d *Device) ResetStats() {
	d.stats.lineReads.Store(0)
	d.stats.lineWrites.Store(0)
	d.stats.bytesRead.Store(0)
	d.stats.bytesWritten.Store(0)
	d.stats.flushes.Store(0)
	d.stats.fences.Store(0)
	d.stats.linesFenced.Store(0)
}

// DirtyLines reports how many lines are dirty or staged (not yet durable).
// Intended for tests and diagnostics.
func (d *Device) DirtyLines() int {
	var n int
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		n += len(sh.dirty) + len(sh.staged)
		sh.mu.Unlock()
	}
	return n
}
