// Package nvm simulates a byte-addressable non-volatile main memory (NVMM)
// device such as Intel Optane Persistent Memory.
//
// The simulation tracks durability at CPU cache-line (64 byte) granularity,
// which is the unit at which real hardware moves data between the CPU caches
// and the persistence domain:
//
//   - Stores (WriteAt and friends) update the "live" image, the bytes that
//     loads observe, and mark the touched lines dirty.
//   - Flush (CLWB/CLFLUSHOPT) snapshots the current content of a line into a
//     staging area. The snapshot is not yet durable.
//   - Fence (SFENCE) commits all staged snapshots to the durable image.
//
// Crash discards the live image and rebuilds it from the durable image,
// optionally letting some un-fenced lines survive (CrashRandom) the way a
// real cache eviction can write back a dirty line at any time. Code that is
// crash-consistent on this model — in particular under the adversarial
// CrashStrict and CrashRandom modes — is crash-consistent on ADR hardware.
//
// The device also keeps precise access statistics and can charge a
// configurable latency per line read/write so that benchmark results
// reproduce the DRAM/NVMM performance gap of real hardware.
//
// # Concurrency design
//
// The engine's scalability curves are only meaningful if the simulator's
// own synchronization stays off the hot path, so durability metadata is
// tracked per line in an atomic state word over preallocated arrays:
//
//   - Stores mark lines dirty with a lock-free CAS; no mutex is taken.
//   - Flush snapshots the line into a preallocated staging image (no
//     allocation) and records the line once in a striped touched-line
//     journal, so Fence commits exactly the flushed lines instead of
//     sweeping every possible line under a global lock.
//   - Access statistics go to striped counter cells, folded on Stats(),
//     so concurrent workers do not contend on one cache line of counters.
//
// The device is safe for concurrent use provided concurrent accesses do not
// overlap byte ranges (the same discipline real memory requires). Crash
// additionally requires that no accesses are in flight, which holds for the
// engine (an injected crash unwinds all workers before Crash is called).
package nvm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nvcaracal/internal/obs"
)

// LineSize is the simulated cache line size in bytes, the granularity of
// durability tracking.
const LineSize = 64

// stripeCount is the number of journal stripes (and their locks) sharding
// the flushed-line journals. Stores never take these locks; only Flush,
// Fence, and chaos evictions do, and only for the stripe of the line.
const stripeCount = 64

// statStripes is the number of striped statistic cells.
const statStripes = 64

// Per-line durability state bits.
const (
	// stDirty: stored since last made durable; content only in the live
	// image.
	stDirty = uint32(1) << iota
	// stStaged: a flush snapshotted the line into the staging image; the
	// snapshot awaits a fence.
	stStaged
	// stJournaled: the line has an entry in a journal buffer awaiting the
	// next fence. Invariant: stStaged implies stJournaled.
	stJournaled
)

// CrashMode selects how un-persisted lines behave across a simulated crash.
type CrashMode int

const (
	// CrashStrict drops every line that was not flushed AND fenced. This is
	// the adversarial model: nothing the program did not explicitly persist
	// survives.
	CrashStrict CrashMode = iota
	// CrashRandom lets each non-durable line independently survive with 50%
	// probability, modelling cache evictions that write back dirty lines
	// before a power failure. Recovery code must be correct for every
	// outcome, so tests drive this with many seeds.
	CrashRandom
	// CrashAll persists everything, modelling a flush of all caches on the
	// failure path (eADR hardware). Useful as a control in tests.
	CrashAll
)

// ErrInjectedCrash is the panic value raised when a fail-point installed
// with SetFailAfter triggers. Engine code does not recover from it; tests
// catch it at the top of the epoch loop to simulate a crash at an arbitrary
// persist boundary.
var ErrInjectedCrash = errors.New("nvm: injected crash")

// Stats holds cumulative access counters for a device. All counts are in
// units of line accesses except the byte totals.
type Stats struct {
	LineReads    int64 // lines touched by loads
	LineWrites   int64 // lines touched by stores
	BytesRead    int64
	BytesWritten int64
	Flushes       int64 // line write-backs issued (dirty lines snapshotted)
	FlushesElided int64 // lines a Flush visited but skipped because already clean
	Fences        int64 // Fence calls
	LinesFenced   int64 // lines made durable by fences
}

// Sub returns s - o, useful for measuring an interval.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		LineReads:     s.LineReads - o.LineReads,
		LineWrites:    s.LineWrites - o.LineWrites,
		BytesRead:     s.BytesRead - o.BytesRead,
		BytesWritten:  s.BytesWritten - o.BytesWritten,
		Flushes:       s.Flushes - o.Flushes,
		FlushesElided: s.FlushesElided - o.FlushesElided,
		Fences:        s.Fences - o.Fences,
		LinesFenced:   s.LinesFenced - o.LinesFenced,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d writes=%d flushes=%d elided=%d fences=%d bytesR=%d bytesW=%d",
		s.LineReads, s.LineWrites, s.Flushes, s.FlushesElided, s.Fences, s.BytesRead, s.BytesWritten)
}

// Option configures a Device.
type Option func(*Device)

// WithLatency charges the given busy-wait latency per line read and write.
// Zero (the default) disables the latency model; unit tests run with it off
// and benchmarks turn it on to reproduce the DRAM/NVMM gap.
func WithLatency(read, write time.Duration) Option {
	return func(d *Device) {
		d.readLatency = read
		d.writeLatency = write
	}
}

// WithFenceLatency charges a busy-wait drain latency per Fence, modelling
// the cost of waiting for issued write-backs to reach the persistence
// domain (SFENCE after CLWB on Optane is several hundred nanoseconds under
// load). Engines that fence per transaction pay it per transaction;
// epoch-based engines amortize it across the batch.
func WithFenceLatency(d time.Duration) Option {
	return func(dev *Device) {
		dev.fenceLatency = d
	}
}

// WithChaosEviction makes the device behave like a real CPU cache: after
// any store, the just-written line may be evicted — written back to the
// persistence domain — with probability 1/denom. An eviction between two
// stores to the same line makes the first store durable without the second,
// which is exactly the torn-update hazard the engine's SID-before-pointer
// protocol and recovery repair must handle. Deterministic given the seed.
func WithChaosEviction(denom int, seed int64) Option {
	return func(d *Device) {
		if denom > 0 {
			d.chaosDenom = denom
			d.chaosState.Store(uint64(seed)*2862933555777941757 + 3037000493)
		}
	}
}

// WithObserver attaches a device observer recording per-call latency
// histograms for the read/write/flush/fence paths plus a fence-stall
// counter. A nil or disabled observer leaves only a single predicate check
// on each path; see obs.DeviceObs.
func WithObserver(o *obs.DeviceObs) Option {
	return func(d *Device) {
		d.obs = o
	}
}

// WithAttrib attaches an access-attribution instrument: every access is
// credited to the obs.Cause its call site carries (via Tag; untagged calls
// count as CauseOther), feeding per-cause counters, the spatial heatmap,
// and write-amplification accounting. Attribution is purely observational:
// it never changes Stats, durability state, or the latency model. Nil
// leaves only a pointer check on each path.
func WithAttrib(a *obs.Attrib) Option {
	return func(d *Device) {
		d.attrib = a
	}
}

// journalStripe holds one shard of the flushed-line journal: the lines
// staged since the last fence whose line number maps to this stripe. The
// two buffers alternate so Fence can drain one while flushes append to the
// other without reallocating.
type journalStripe struct {
	mu    sync.Mutex
	lines []int64
	spare []int64
	_     [64 - 8]byte // keep stripes off each other's cache lines
}

// statCell is one stripe of the access counters. Exactly one cache line so
// cells do not false-share.
type statCell struct {
	lineReads     atomic.Int64
	lineWrites    atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	flushes       atomic.Int64
	flushesElided atomic.Int64
	fences        atomic.Int64
	linesFenced   atomic.Int64
}

// FieldWrite is one store of a vectored multi-field write (WriteFields).
type FieldWrite struct {
	Off  int64
	Data []byte
}

// Range is a byte range of the device, for vectored flush/persist calls.
type Range struct {
	Off, N int64
}

// Device is a simulated NVMM region. See the package comment for the
// concurrency contract.
type Device struct {
	size    int64
	nLines  int64
	live    []byte // what loads/stores observe
	durable []byte // what survives a crash
	staging []byte // flushed snapshots awaiting a fence, indexed by line

	// state holds the per-line durability state machine (stDirty,
	// stStaged, stJournaled).
	state []atomic.Uint32

	stripes [stripeCount]journalStripe

	readLatency  time.Duration
	writeLatency time.Duration
	fenceLatency time.Duration

	cells [statStripes]statCell

	// failAfter, when positive, counts down on every flushed line; reaching
	// zero panics with ErrInjectedCrash. Disabled when zero or negative.
	failAfter atomic.Int64

	// commitStall, when positive, adds that many nanoseconds of spin to
	// every fence tagged CausePersistFinal — the checkpoint fence — without
	// touching any other fence. A stall fail-point for the anomaly watchdog:
	// the committer slows, durable lag persists, and nothing crashes.
	commitStall atomic.Int64

	// Chaos eviction state (see WithChaosEviction).
	chaosDenom int
	chaosState atomic.Uint64

	// fenceMu serializes Fence (and Crash) so each fence commits a
	// consistent snapshot set.
	fenceMu sync.Mutex

	// Fence-mark tracing (see TraceFences). Guarded by fenceMu.
	traceFences bool
	fenceMarks  []int64

	// obs, when attached and enabled, records per-call latency histograms
	// and the fence-stall counter. Nil-safe: every path asks obs.On() once.
	obs *obs.DeviceObs

	// attrib, when attached, credits every access to its call site's
	// obs.Cause (see Tag / WithAttrib). Nil-safe: one pointer check per
	// path.
	attrib *obs.Attrib
}

// New creates a device of the given size in bytes, rounded up to a whole
// number of lines. The initial contents are zero and durable.
func New(size int64, opts ...Option) *Device {
	if size <= 0 {
		panic("nvm: non-positive device size")
	}
	size = (size + LineSize - 1) / LineSize * LineSize
	d := &Device{
		size:    size,
		nLines:  size / LineSize,
		live:    make([]byte, size),
		durable: make([]byte, size),
		staging: make([]byte, size),
		state:   make([]atomic.Uint32, size/LineSize),
	}
	for _, o := range opts {
		o(d)
	}
	d.attrib.InitSpace(d.nLines)
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

func (d *Device) check(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("nvm: access [%d,%d) out of bounds (size %d)", off, off+n, d.size))
	}
}

func lineOf(off int64) int64 { return off / LineSize }

func (d *Device) stripeFor(line int64) *journalStripe {
	return &d.stripes[line%stripeCount]
}

// cellFor picks the statistics stripe for an access starting at the given
// line. Disjoint working sets (per-core pools) land on different cells.
func (d *Device) cellFor(line int64) *statCell {
	return &d.cells[uint64(line)%statStripes]
}

// spin busy-waits for roughly dur. Busy waiting (rather than sleeping) keeps
// the latency model accurate at the sub-microsecond scale of memory access.
func spin(dur time.Duration) {
	if dur <= 0 {
		return
	}
	start := time.Now()
	for time.Since(start) < dur {
	}
}

func (d *Device) chargeRead(lines int64) {
	if d.readLatency > 0 {
		spin(time.Duration(lines) * d.readLatency)
	}
}

func (d *Device) chargeWrite(lines int64) {
	if d.writeLatency > 0 {
		spin(time.Duration(lines) * d.writeLatency)
	}
}

func linesSpanned(off, n int64) int64 {
	if n == 0 {
		return 0
	}
	return lineOf(off+n-1) - lineOf(off) + 1
}

// ReadAt copies len(p) bytes starting at off from the live image into p.
func (d *Device) ReadAt(p []byte, off int64) { d.readAt(p, off, obs.CauseOther) }

func (d *Device) readAt(p []byte, off int64, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	n := int64(len(p))
	d.check(off, n)
	copy(p, d.live[off:off+n])
	lines := linesSpanned(off, n)
	cell := d.cellFor(lineOf(off))
	cell.lineReads.Add(lines)
	cell.bytesRead.Add(n)
	if a := d.attrib; a != nil {
		a.RecordRead(c, lineOf(off), lines, n)
	}
	d.chargeRead(lines)
	if on {
		d.obs.Read.Observe(time.Since(t0))
	}
}

// Slice returns a read-only view of the live image. The caller must not
// mutate it and must not hold it across a Crash. It charges a read for the
// spanned lines, making it equivalent to ReadAt without the copy.
func (d *Device) Slice(off, n int64) []byte { return d.slice(off, n, obs.CauseOther) }

func (d *Device) slice(off, n int64, c obs.Cause) []byte {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, n)
	lines := linesSpanned(off, n)
	cell := d.cellFor(lineOf(off))
	cell.lineReads.Add(lines)
	cell.bytesRead.Add(n)
	if a := d.attrib; a != nil {
		a.RecordRead(c, lineOf(off), lines, n)
	}
	d.chargeRead(lines)
	if on {
		d.obs.Read.Observe(time.Since(t0))
	}
	return d.live[off : off+n : off+n]
}

// seqWriteFactor discounts the latency of large contiguous writes: Optane's
// sequential write bandwidth is several times its random-write bandwidth,
// and a multi-line WriteAt models a streaming store sequence (e.g. the
// input log). Only the latency model is affected; line counts in Stats stay
// exact.
const seqWriteFactor = 4

// chargedWriteLines applies the sequential-write discount to the latency
// model (not the counters) for a store spanning the given line count.
func chargedWriteLines(lines int64) int64 {
	if lines >= seqWriteFactor {
		return (lines + seqWriteFactor - 1) / seqWriteFactor
	}
	return lines
}

// WriteAt stores p at off in the live image and marks the spanned lines
// dirty. The data is not durable until it is flushed and fenced.
func (d *Device) WriteAt(p []byte, off int64) { d.writeAt(p, off, obs.CauseOther) }

func (d *Device) writeAt(p []byte, off int64, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	n := int64(len(p))
	d.check(off, n)
	copy(d.live[off:off+n], p)
	d.markDirty(off, n)
	lines := linesSpanned(off, n)
	cell := d.cellFor(lineOf(off))
	cell.lineWrites.Add(lines)
	cell.bytesWritten.Add(n)
	if a := d.attrib; a != nil {
		a.RecordWrite(c, lineOf(off), lines, n)
	}
	d.chargeWrite(chargedWriteLines(lines))
	if on {
		d.obs.Write.Observe(time.Since(t0))
	}
}

// Zero clears n bytes at off, with store semantics. Like WriteAt it models
// a streaming store sequence, so large contiguous zeroing (e.g. pool
// initialization) gets the same sequential-write latency discount.
func (d *Device) Zero(off, n int64) { d.zero(off, n, obs.CauseOther) }

func (d *Device) zero(off, n int64, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, n)
	clear(d.live[off : off+n])
	d.markDirty(off, n)
	lines := linesSpanned(off, n)
	cell := d.cellFor(lineOf(off))
	cell.lineWrites.Add(lines)
	cell.bytesWritten.Add(n)
	if a := d.attrib; a != nil {
		a.RecordWrite(c, lineOf(off), lines, n)
	}
	d.chargeWrite(chargedWriteLines(lines))
	if on {
		d.obs.Write.Observe(time.Since(t0))
	}
}

// markDirty transitions the spanned lines to dirty with a lock-free CAS per
// line. With chaos eviction enabled, a line may instead be written back to
// the persistence domain immediately.
func (d *Device) markDirty(off, n int64) {
	first, last := lineOf(off), lineOf(off+n-1)
	for l := first; l <= last; l++ {
		if d.chaosDenom > 0 && d.chaosRoll() {
			d.evictLine(l)
			continue
		}
		st := &d.state[l]
		for {
			s := st.Load()
			if s&stDirty != 0 || st.CompareAndSwap(s, s|stDirty) {
				break
			}
		}
	}
}

// evictLine models a spontaneous cache eviction: the line, including the
// store that triggered the roll, reaches the persistence domain immediately
// (ADR), no fence required. Any staged snapshot is dropped; a journal entry
// left behind is skipped by the next fence.
func (d *Device) evictLine(l int64) {
	sp := d.stripeFor(l)
	sp.mu.Lock()
	copy(d.durable[l*LineSize:(l+1)*LineSize], d.live[l*LineSize:(l+1)*LineSize])
	st := &d.state[l]
	for {
		s := st.Load()
		if st.CompareAndSwap(s, s&^(stDirty|stStaged)) {
			break
		}
	}
	sp.mu.Unlock()
}

// chaosRoll advances a xorshift PRNG and reports a 1/denom hit. The state
// is a single atomic so concurrent stores stay race-free; a lost update
// only perturbs the random sequence.
func (d *Device) chaosRoll() bool {
	x := d.chaosState.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	d.chaosState.Store(x)
	return x%uint64(d.chaosDenom) == 0
}

// Load64 reads a little-endian uint64 at off.
func (d *Device) Load64(off int64) uint64 { return d.load64(off, obs.CauseOther) }

func (d *Device) load64(off int64, c obs.Cause) uint64 {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, 8)
	b := d.live[off : off+8]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	lines := linesSpanned(off, 8)
	cell := d.cellFor(lineOf(off))
	cell.lineReads.Add(lines)
	cell.bytesRead.Add(8)
	if a := d.attrib; a != nil {
		a.RecordRead(c, lineOf(off), lines, 8)
	}
	d.chargeRead(lines)
	if on {
		d.obs.Read.Observe(time.Since(t0))
	}
	return v
}

// Store64 writes a little-endian uint64 at off with store semantics.
func (d *Device) Store64(off int64, v uint64) { d.store64(off, v, obs.CauseOther) }

func (d *Device) store64(off int64, v uint64, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, 8)
	b := d.live[off : off+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
	d.markDirty(off, 8)
	lines := linesSpanned(off, 8)
	cell := d.cellFor(lineOf(off))
	cell.lineWrites.Add(lines)
	cell.bytesWritten.Add(8)
	if a := d.attrib; a != nil {
		a.RecordWrite(c, lineOf(off), lines, 8)
	}
	d.chargeWrite(lines)
	if on {
		d.obs.Write.Observe(time.Since(t0))
	}
}

// Load32 reads a little-endian uint32 at off.
func (d *Device) Load32(off int64) uint32 { return d.load32(off, obs.CauseOther) }

func (d *Device) load32(off int64, c obs.Cause) uint32 {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, 4)
	b := d.live[off : off+4]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	cell := d.cellFor(lineOf(off))
	cell.lineReads.Add(1)
	cell.bytesRead.Add(4)
	if a := d.attrib; a != nil {
		a.RecordRead(c, lineOf(off), 1, 4)
	}
	d.chargeRead(1)
	if on {
		d.obs.Read.Observe(time.Since(t0))
	}
	return v
}

// Store32 writes a little-endian uint32 at off with store semantics.
func (d *Device) Store32(off int64, v uint32) { d.store32(off, v, obs.CauseOther) }

func (d *Device) store32(off int64, v uint32, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, 4)
	b := d.live[off : off+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	d.markDirty(off, 4)
	cell := d.cellFor(lineOf(off))
	cell.lineWrites.Add(1)
	cell.bytesWritten.Add(4)
	if a := d.attrib; a != nil {
		a.RecordWrite(c, lineOf(off), 1, 4)
	}
	d.chargeWrite(1)
	if on {
		d.obs.Write.Observe(time.Since(t0))
	}
}

// WriteFields applies a vector of stores, then flushes the given ranges,
// in one device call: the engine's per-row final write (value bytes plus
// the version descriptor fields) and the WAL's epoch append (payload plus
// header) each become a single call instead of a store-flush round trip
// per field.
//
// Counting is identical to issuing every store and flush individually —
// each field charges its own spanned lines, exactly as a separate WriteAt
// or StoreN would — so substituting WriteFields at a call site never moves
// an access counter. Store order (and therefore chaos-eviction rolls and
// the SID-before-pointer crash protocol) is the slice order; flushes run
// after all stores, which leaves every per-range dirty set unchanged as
// long as the flush ranges do not overlap lines stored by later fields at
// the original call site (the engine's call sites flush disjoint ranges).
func (d *Device) WriteFields(fields []FieldWrite, flushes []Range) {
	d.writeFields(fields, flushes, obs.CauseOther)
}

func (d *Device) writeFields(fields []FieldWrite, flushes []Range, c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	var lines, chargedLines, bytes int64
	var cell *statCell
	a := d.attrib
	for _, f := range fields {
		n := int64(len(f.Data))
		if n == 0 {
			continue
		}
		d.check(f.Off, n)
		copy(d.live[f.Off:f.Off+n], f.Data)
		d.markDirty(f.Off, n)
		ln := linesSpanned(f.Off, n)
		lines += ln
		chargedLines += chargedWriteLines(ln)
		bytes += n
		if cell == nil {
			cell = d.cellFor(lineOf(f.Off))
		}
		if a != nil {
			// Per field, not per call: a vectored write's fields may land in
			// different regions of the address space (value heap vs. row
			// descriptor), and the heatmap wants each span.
			a.RecordWrite(c, lineOf(f.Off), ln, n)
		}
	}
	if cell != nil {
		cell.lineWrites.Add(lines)
		cell.bytesWritten.Add(bytes)
		d.chargeWrite(chargedLines)
	}
	if on {
		// Store portion only; the flushes below record into the Flush
		// histogram themselves.
		d.obs.Write.Observe(time.Since(t0))
	}
	for _, r := range flushes {
		d.flush(r.Off, r.N, c)
	}
}

// Flush issues a write-back for every line in [off, off+n). Each flushed
// line's current content is snapshotted; a subsequent Fence makes the
// snapshots durable. Flushing a clean line is a no-op (as on hardware) and
// takes no lock; the elision pass counts every such skip, so each line a
// Flush visits lands in exactly one of Flushes or FlushesElided.
func (d *Device) Flush(off, n int64) { d.flush(off, n, obs.CauseOther) }

func (d *Device) flush(off, n int64, c obs.Cause) {
	if n == 0 {
		return
	}
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.check(off, n)
	touched := false
	var elided int64
	first, last := lineOf(off), lineOf(off+n-1)
	for l := first; l <= last; l++ {
		if d.state[l].Load()&stDirty == 0 {
			// Clean since the last fence (durable, or staged with the same
			// content a second write-back would snapshot): elide.
			elided++
			if a := d.attrib; a != nil {
				a.RecordFlushElided(c, l)
			}
			continue
		}
		if d.flushLine(l) {
			if a := d.attrib; a != nil {
				a.RecordFlush(c, l)
			}
		} else {
			// The dirty bit vanished under us (chaos eviction won the race):
			// the line is durable, the write-back is unnecessary.
			elided++
			if a := d.attrib; a != nil {
				a.RecordFlushElided(c, l)
			}
		}
		touched = true
	}
	if elided > 0 {
		d.cellFor(first).flushesElided.Add(elided)
	}
	// Clean-range flushes are hardware no-ops; recording them would drown
	// the histogram in zeros.
	if on && touched {
		d.obs.Flush.Observe(time.Since(t0))
	}
}

// flushLine snapshots one dirty line into the staging image and journals it
// for the next fence. The stripe lock excludes a concurrent fence commit or
// chaos eviction of the same line; stores stay lock-free, so the state CAS
// can race with a concurrent markDirty — on CAS failure the snapshot is
// retaken so a dirty marking is only ever cleared by a snapshot that
// includes its bytes.
func (d *Device) flushLine(l int64) bool {
	sp := d.stripeFor(l)
	sp.mu.Lock()
	st := &d.state[l]
	for {
		s := st.Load()
		if s&stDirty == 0 {
			sp.mu.Unlock()
			return false
		}
		copy(d.staging[l*LineSize:(l+1)*LineSize], d.live[l*LineSize:(l+1)*LineSize])
		if st.CompareAndSwap(s, s&^stDirty|stStaged|stJournaled) {
			if s&stJournaled == 0 {
				sp.lines = append(sp.lines, l)
			}
			break
		}
	}
	d.cellFor(l).flushes.Add(1)
	if d.failAfter.Load() > 0 && d.failAfter.Add(-1) == 0 {
		sp.mu.Unlock()
		panic(ErrInjectedCrash)
	}
	sp.mu.Unlock()
	return true
}

// Persist is Flush followed by Fence: the range is durable on return.
func (d *Device) Persist(off, n int64) {
	d.Flush(off, n)
	d.Fence()
}

func (d *Device) persist(off, n int64, c obs.Cause) {
	d.flush(off, n, c)
	d.fence(c)
}

// PersistRange flushes every given range and issues one fence: a vectored
// Persist for call sites that previously flushed several regions and
// fenced once (or fenced per region, where a single trailing fence is
// equivalent because the final durable state is identical).
func (d *Device) PersistRange(ranges ...Range) {
	d.persistRange(obs.CauseOther, ranges...)
}

func (d *Device) persistRange(c obs.Cause, ranges ...Range) {
	for _, r := range ranges {
		d.flush(r.Off, r.N, c)
	}
	d.fence(c)
}

// Fence commits every staged line snapshot to the durable image. It models
// SFENCE on an ADR platform: previously issued write-backs are now in the
// persistence domain. Only the journaled lines are visited — the cost is
// proportional to the lines flushed since the last fence, not to the
// device size or a fixed shard count.
func (d *Device) Fence() { d.fence(obs.CauseOther) }

func (d *Device) fence(c obs.Cause) {
	on := d.obs.On()
	var t0 time.Time
	if on {
		t0 = time.Now()
	}
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	d.cells[0].fences.Add(1)
	if a := d.attrib; a != nil {
		a.RecordFence(c)
	}
	if d.traceFences {
		d.fenceMarks = append(d.fenceMarks, d.foldFlushes())
	}
	spin(d.fenceLatency)
	if c == obs.CausePersistFinal {
		if stall := d.commitStall.Load(); stall > 0 {
			spin(time.Duration(stall))
		}
	}
	var committed int64
	for i := range d.stripes {
		sp := &d.stripes[i]
		sp.mu.Lock()
		batch := sp.lines
		sp.lines, sp.spare = sp.spare[:0], batch
		for _, l := range batch {
			st := &d.state[l]
			for {
				s := st.Load()
				if st.CompareAndSwap(s, s&^(stStaged|stJournaled)) {
					if s&stStaged != 0 {
						copy(d.durable[l*LineSize:(l+1)*LineSize], d.staging[l*LineSize:(l+1)*LineSize])
						committed++
					}
					break
				}
			}
		}
		sp.mu.Unlock()
	}
	d.cells[0].linesFenced.Add(committed)
	if on {
		// Includes the wait for fenceMu: contending fences stall each other,
		// and that serialization is exactly what the stall counter surfaces.
		dur := time.Since(t0)
		d.obs.Fence.Observe(dur)
		d.obs.AddFenceStall(dur)
	}
}

// Crash simulates a power failure: the live image is rebuilt from the
// durable image. mode controls the fate of non-durable lines; seed drives
// CrashRandom. All staged and dirty state is cleared. Statistics survive.
// The caller must ensure no accesses are in flight.
func (d *Device) Crash(mode CrashMode, seed int64) {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	rng := rand.New(rand.NewSource(seed))
	for l := int64(0); l < d.nLines; l++ {
		s := d.state[l].Load()
		if s&(stDirty|stStaged) != 0 {
			lo, hi := l*LineSize, (l+1)*LineSize
			switch mode {
			case CrashStrict:
				// Neither dirty nor merely-staged lines survive.
			case CrashAll:
				// A staged snapshot models an issued write-back: it is what
				// the failure-path cache flush finds in flight. A line dirty
				// on top of a stale snapshot keeps the snapshot (the second
				// store was never written back).
				if s&stStaged != 0 {
					copy(d.durable[lo:hi], d.staging[lo:hi])
				} else {
					copy(d.durable[lo:hi], d.live[lo:hi])
				}
			case CrashRandom:
				// Each non-durable image rolls independently, mirroring the
				// eviction lottery of real caches: a dirty line may be
				// written back, and an issued-but-unfenced write-back may
				// have landed.
				if s&stDirty != 0 && rng.Intn(2) == 0 {
					copy(d.durable[lo:hi], d.live[lo:hi])
				}
				if s&stStaged != 0 && rng.Intn(2) == 0 {
					copy(d.durable[lo:hi], d.staging[lo:hi])
				}
			}
		}
		if s != 0 {
			d.state[l].Store(0)
		}
	}
	for i := range d.stripes {
		sp := &d.stripes[i]
		sp.lines = sp.lines[:0]
		sp.spare = sp.spare[:0]
	}
	copy(d.live, d.durable)
	d.failAfter.Store(0)
}

// SetFailAfter installs a fail-point: after n more flushed lines the device
// panics with ErrInjectedCrash. n <= 0 disables the fail-point. Flushes of
// clean lines are no-ops and do not count.
//
// Torn-prefix semantics under vectored calls: when the fail-point fires
// inside a WriteFields or PersistRange call, every field store of the call
// has already reached the live image (stores precede flushes), the firing
// line and every line flushed before it are staged (write-backs issued),
// and later flush ranges are dirty-only. No trailing fence has run, so
// under CrashStrict nothing from the interrupted call survives; under
// CrashAll/CrashRandom the staged prefix may land while the dirty suffix
// may only land via the live image — exactly the outcomes an interrupted
// CLWB sequence permits on real hardware. A fail-point therefore never
// splits an individual field store, only the flush sequence.
func (d *Device) SetFailAfter(n int64) { d.failAfter.Store(n) }

// SetCommitStall is a runtime fault-injection knob: every subsequent fence
// tagged CausePersistFinal (the epoch's checkpoint fence) spins an extra d
// on top of the configured fence latency, while all other fences run at
// normal speed. It slows the committer without crashing anything, so the
// durable epoch lags and the anomaly watchdog's committer-stall and
// durable-lag detectors can be exercised deterministically. Zero disables.
func (d *Device) SetCommitStall(stall time.Duration) { d.commitStall.Store(int64(stall)) }

// Stats returns a snapshot of the cumulative access counters, folding the
// striped cells.
func (d *Device) Stats() Stats {
	var s Stats
	for i := range d.cells {
		c := &d.cells[i]
		s.LineReads += c.lineReads.Load()
		s.LineWrites += c.lineWrites.Load()
		s.BytesRead += c.bytesRead.Load()
		s.BytesWritten += c.bytesWritten.Load()
		s.Flushes += c.flushes.Load()
		s.FlushesElided += c.flushesElided.Load()
		s.Fences += c.fences.Load()
		s.LinesFenced += c.linesFenced.Load()
	}
	return s
}

// ResetStats zeroes all counters.
func (d *Device) ResetStats() {
	for i := range d.cells {
		c := &d.cells[i]
		c.lineReads.Store(0)
		c.lineWrites.Store(0)
		c.bytesRead.Store(0)
		c.bytesWritten.Store(0)
		c.flushes.Store(0)
		c.flushesElided.Store(0)
		c.fences.Store(0)
		c.linesFenced.Store(0)
	}
}

// DirtyLines reports how many lines are dirty or staged (not yet durable).
// Intended for tests and diagnostics.
func (d *Device) DirtyLines() int {
	var n int
	for l := int64(0); l < d.nLines; l++ {
		if d.state[l].Load()&(stDirty|stStaged) != 0 {
			n++
		}
	}
	return n
}
