package nvm

import (
	"sync"
	"time"
)

// DeviceBenchResult reports one contention measurement: total device store
// operations per second achieved by `Cores` goroutines hammering disjoint
// regions with the engine's hot-path access pattern.
type DeviceBenchResult struct {
	Cores  int     `json:"cores"`
	Ops    int64   `json:"ops"`
	Secs   float64 `json:"secs"`
	OpsSec float64 `json:"ops_per_sec"`
}

// RunDeviceBench measures device-op throughput at the given core count with
// the latency model disabled, isolating the simulator's own synchronization
// overhead (the quantity BenchmarkDeviceContention tracks and
// BENCH_device.json commits as the perf trajectory).
//
// Each worker owns a disjoint 1 MiB region and repeats the engine's
// per-row persist pattern: three small stores and a value store into one
// row-sized block, a flush of the touched lines, and a periodic fence —
// the same shape persistFinal issues per final write.
func RunDeviceBench(cores int, opsPerCore int, opts ...Option) DeviceBenchResult {
	const regionPerCore = 1 << 20
	d := New(int64(cores)*regionPerCore, opts...)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cores; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := int64(c) * regionPerCore
			var val [128]byte
			for i := 0; i < opsPerCore; i++ {
				off := base + int64(i%4096)*256
				d.Store64(off, uint64(i))
				d.Store64(off+8, uint64(i)+1)
				d.Store32(off+16, uint32(i))
				d.WriteAt(val[:], off+64)
				d.Flush(off, 192)
				if i%256 == 255 {
					d.Fence()
				}
			}
		}(c)
	}
	wg.Wait()
	secs := time.Since(start).Seconds()
	ops := int64(cores) * int64(opsPerCore) * 5 // 4 stores + 1 flush per iteration
	return DeviceBenchResult{Cores: cores, Ops: ops, Secs: secs, OpsSec: float64(ops) / secs}
}
