package nvm

import (
	"testing"

	"nvcaracal/internal/obs"
)

// obs duplicates the device line size (it sits below nvm in the import
// graph); this pin keeps the two constants from drifting apart.
func TestAttribLineSizePinned(t *testing.T) {
	if obs.AttribLineSize != LineSize {
		t.Fatalf("obs.AttribLineSize = %d, nvm.LineSize = %d", obs.AttribLineSize, LineSize)
	}
}

func newAttribDevice(t *testing.T, size int64) (*Device, *obs.Attrib) {
	t.Helper()
	a := obs.NewAttrib(0)
	return New(size, WithAttrib(a)), a
}

func TestTaggedAttributionPerCause(t *testing.T) {
	d, a := newAttribDevice(t, 1<<16)
	wal := d.Tag(obs.CauseWALAppend)
	gc := d.Tag(obs.CauseMajorGC)

	buf := make([]byte, 3*LineSize)
	wal.WriteAt(buf, 0)
	wal.Flush(0, int64(len(buf)))
	gc.Store64(4096, 7)
	gc.Flush(4096, 8)
	d.Fence()

	w := a.Counts(obs.CauseWALAppend)
	if w.LineWrites != 3 || w.BytesWritten != int64(len(buf)) || w.Flushes != 3 {
		t.Fatalf("wal counts = %+v", w)
	}
	g := a.Counts(obs.CauseMajorGC)
	if g.LineWrites != 1 || g.BytesWritten != 8 || g.Flushes != 1 {
		t.Fatalf("gc counts = %+v", g)
	}

	// Reads attribute too, and untagged device calls land in CauseOther.
	rec := d.Tag(obs.CauseRecovery)
	rec.ReadAt(buf, 0)
	if r := a.Counts(obs.CauseRecovery); r.LineReads != 3 || r.BytesRead != int64(len(buf)) {
		t.Fatalf("recovery counts = %+v", r)
	}
	if v := d.Load64(4096); v != 7 {
		t.Fatalf("Load64 = %d", v)
	}
	if o := a.Counts(obs.CauseOther); o.LineReads != 1 {
		t.Fatalf("untagged read not credited to other: %+v", o)
	}
}

func TestTaggedRetag(t *testing.T) {
	d, a := newAttribDevice(t, 1<<12)
	td := d.Tag(obs.CauseIdxJournal)
	if td.Cause() != obs.CauseIdxJournal || td.Device() != d {
		t.Fatal("tagged view identity")
	}
	rd := td.Retag(obs.CauseRecovery)
	rd.Store64(0, 1)
	if td.Cause() != obs.CauseIdxJournal {
		t.Fatal("Retag mutated the original view")
	}
	if c := a.Counts(obs.CauseRecovery); c.LineWrites != 1 {
		t.Fatalf("retagged write = %+v", c)
	}
	if c := a.Counts(obs.CauseIdxJournal); c != (obs.CauseCounts{}) {
		t.Fatalf("original cause charged: %+v", c)
	}
}

// Attribution must count only lines actually journaled for write-back: a
// second flush of an already-staged (or clean) line is a no-op in the
// durability machine and must not inflate the per-cause flush counters.
func TestAttribFlushCountsActualFlushesOnly(t *testing.T) {
	d, a := newAttribDevice(t, 1<<12)
	td := d.Tag(obs.CausePersistFinal)
	td.Store64(0, 1)
	td.Flush(0, 8)
	td.Flush(0, 8) // line already staged: no new write-back
	if c := a.Counts(obs.CausePersistFinal); c.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", c.Flushes)
	}
	if st := d.Stats(); st.Flushes != 1 {
		t.Fatalf("device write-backs = %d, want 1", st.Flushes)
	}
}

func TestAttribWriteFieldsPerField(t *testing.T) {
	d, a := newAttribDevice(t, 1<<12)
	td := d.Tag(obs.CausePersistFinal)
	td.WriteFields([]FieldWrite{
		{Off: 0, Data: make([]byte, 8)},
		{Off: 8, Data: make([]byte, 8)},
		{Off: 128, Data: make([]byte, 4)},
	}, []Range{{Off: 0, N: 16}, {Off: 128, N: 4}})
	c := a.Counts(obs.CausePersistFinal)
	if c.LineWrites != 3 || c.BytesWritten != 20 {
		t.Fatalf("writeFields attribution = %+v", c)
	}
	if c.Flushes != 2 {
		t.Fatalf("writeFields flushes = %d, want 2", c.Flushes)
	}
}

// Attribution is purely observational: a device with an Attrib attached must
// produce byte-identical Stats to one without, for an identical op sequence.
func TestStatsUnchangedByAttrib(t *testing.T) {
	plain := New(1 << 14)
	tagged, a := newAttribDevice(t, 1<<14)
	drive := func(d *Device) {
		td := d.Tag(obs.CauseWALAppend)
		buf := make([]byte, 200)
		for i := range buf {
			buf[i] = byte(i)
		}
		td.WriteAt(buf, 64)
		td.Flush(64, 200)
		td.Fence()
		d.Store64(1024, 9)
		d.Persist(1024, 8)
		d.WriteFields([]FieldWrite{{Off: 2048, Data: buf[:8]}}, []Range{{Off: 2048, N: 8}})
		out := make([]byte, 200)
		td.ReadAt(out, 64)
		_ = d.Load64(1024)
		d.PersistRange(Range{Off: 64, N: 200}, Range{Off: 2048, N: 8})
	}
	drive(plain)
	drive(tagged)
	if ps, ts := plain.Stats(), tagged.Stats(); ps != ts {
		t.Fatalf("Stats diverge with attribution attached:\nplain : %+v\ntagged: %+v", ps, ts)
	}
	// And the attribution totals must agree with the device's own counters.
	st := tagged.Stats()
	var rw, rr, bw, br int64
	for c := obs.Cause(0); c < obs.NumCauses; c++ {
		cc := a.Counts(c)
		rw += cc.LineWrites
		rr += cc.LineReads
		bw += cc.BytesWritten
		br += cc.BytesRead
	}
	if rw != st.LineWrites || rr != st.LineReads || bw != st.BytesWritten || br != st.BytesRead {
		t.Fatalf("attribution totals (r=%d w=%d br=%d bw=%d) != Stats %+v", rr, rw, br, bw, st)
	}
}

func TestAttribHeatmapSizedAtConstruction(t *testing.T) {
	a := obs.NewAttrib(8)
	d := New(8 * 64 * 64, WithAttrib(a)) // 512 lines -> 64 lines/bucket
	d.Tag(obs.CauseOther).Store64(0, 1)
	j := a.JSON()
	if j.Heatmap.LinesPerBucket != 64 || len(j.Heatmap.BucketLineWrites) != 8 {
		t.Fatalf("heatmap geometry = %d lines/bucket x %d buckets",
			j.Heatmap.LinesPerBucket, len(j.Heatmap.BucketLineWrites))
	}
	if j.Heatmap.BucketLineWrites[0] != 1 {
		t.Fatalf("bucket 0 = %d", j.Heatmap.BucketLineWrites[0])
	}
}
