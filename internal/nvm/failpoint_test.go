package nvm

import (
	"bytes"
	"testing"
)

// catchCrash runs f and reports whether it panicked with ErrInjectedCrash.
func catchCrash(t *testing.T, f func()) (fired bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if r != ErrInjectedCrash {
				panic(r)
			}
			fired = true
		}
	}()
	f()
	return false
}

// TestFailPointTornPrefix pins the vectored-call fail-point contract
// documented on SetFailAfter: when the fail-point fires inside a
// WriteFields call, all field stores are already in the live image, the
// flushed prefix (up to and including the firing line) is staged, and the
// unflushed suffix is dirty-only.
func TestFailPointTornPrefix(t *testing.T) {
	dev := New(4 * LineSize)
	// Two disjoint lines with old durable content.
	oldA := bytes.Repeat([]byte{0xA0}, LineSize)
	oldB := bytes.Repeat([]byte{0xB0}, LineSize)
	dev.WriteAt(oldA, 0)
	dev.WriteAt(oldB, LineSize)
	dev.Persist(0, 2*LineSize)

	newA := bytes.Repeat([]byte{0xA1}, LineSize)
	newB := bytes.Repeat([]byte{0xB1}, LineSize)
	dev.SetFailAfter(1) // fire on the first flushed line of the call
	fired := catchCrash(t, func() {
		dev.WriteFields([]FieldWrite{
			{Off: 0, Data: newA},
			{Off: LineSize, Data: newB},
		}, []Range{
			{Off: 0, N: LineSize},
			{Off: LineSize, N: LineSize},
		})
	})
	if !fired {
		t.Fatal("fail-point did not fire")
	}

	// All stores reached the live image before the crash fired.
	got := make([]byte, LineSize)
	dev.ReadAt(got, 0)
	if !bytes.Equal(got, newA) {
		t.Fatal("store A missing from live image after mid-call crash")
	}
	dev.ReadAt(got, LineSize)
	if !bytes.Equal(got, newB) {
		t.Fatal("store B missing from live image after mid-call crash")
	}

	// The firing line is staged (write-back issued), the suffix dirty-only:
	// a fence commits exactly the staged prefix, then a strict crash drops
	// the rest.
	dev.Fence()
	dev.Crash(CrashStrict, 1)
	dev.ReadAt(got, 0)
	if !bytes.Equal(got, newA) {
		t.Fatal("flushed prefix was not staged: fence did not commit line A")
	}
	dev.ReadAt(got, LineSize)
	if !bytes.Equal(got, oldB) {
		t.Fatal("unflushed suffix survived a strict crash")
	}
}

// TestFailPointTornPrefixStrictLosesAll: with no fence between the
// fail-point and the crash, CrashStrict drops the entire interrupted call —
// staged prefix included.
func TestFailPointTornPrefixStrictLosesAll(t *testing.T) {
	dev := New(4 * LineSize)
	oldA := bytes.Repeat([]byte{0xA0}, LineSize)
	oldB := bytes.Repeat([]byte{0xB0}, LineSize)
	dev.WriteAt(oldA, 0)
	dev.WriteAt(oldB, LineSize)
	dev.Persist(0, 2*LineSize)

	dev.SetFailAfter(2) // fire on the call's second flushed line
	fired := catchCrash(t, func() {
		dev.WriteFields([]FieldWrite{
			{Off: 0, Data: bytes.Repeat([]byte{0xA1}, LineSize)},
			{Off: LineSize, Data: bytes.Repeat([]byte{0xB1}, LineSize)},
		}, []Range{
			{Off: 0, N: LineSize},
			{Off: LineSize, N: LineSize},
		})
	})
	if !fired {
		t.Fatal("fail-point did not fire")
	}
	dev.Crash(CrashStrict, 1)
	got := make([]byte, LineSize)
	dev.ReadAt(got, 0)
	if !bytes.Equal(got, oldA) {
		t.Fatal("unfenced staged line survived CrashStrict")
	}
	dev.ReadAt(got, LineSize)
	if !bytes.Equal(got, oldB) {
		t.Fatal("unfenced staged line survived CrashStrict")
	}
}

// TestFailPointNeverTearsAField: a fail-point crash can interrupt a flush
// sequence but never an individual field store — a multi-line store either
// fully precedes the crash in the live image or the call never ran.
func TestFailPointNeverTearsAField(t *testing.T) {
	dev := New(8 * LineSize)
	big := bytes.Repeat([]byte{0x7E}, 3*LineSize) // one field spanning 3 lines
	dev.SetFailAfter(1)
	fired := catchCrash(t, func() {
		dev.WriteFields([]FieldWrite{{Off: 0, Data: big}},
			[]Range{{Off: 0, N: int64(len(big))}})
	})
	if !fired {
		t.Fatal("fail-point did not fire")
	}
	got := make([]byte, len(big))
	dev.ReadAt(got, 0)
	if !bytes.Equal(got, big) {
		t.Fatal("field store torn by fail-point: live image has a partial store")
	}
}

// TestFailPointPersistRangeSkipsFence: a fail-point firing inside
// PersistRange must prevent the trailing fence entirely.
func TestFailPointPersistRangeSkipsFence(t *testing.T) {
	dev := New(4 * LineSize)
	dev.WriteAt(bytes.Repeat([]byte{1}, LineSize), 0)
	dev.WriteAt(bytes.Repeat([]byte{2}, LineSize), LineSize)
	fences := dev.Stats().Fences
	dev.SetFailAfter(2)
	fired := catchCrash(t, func() {
		dev.PersistRange(Range{Off: 0, N: LineSize}, Range{Off: LineSize, N: LineSize})
	})
	if !fired {
		t.Fatal("fail-point did not fire")
	}
	if got := dev.Stats().Fences; got != fences {
		t.Fatalf("fence ran despite mid-call crash: %d fences, want %d", got, fences)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	dev := New(16 * LineSize)
	dev.WriteAt(bytes.Repeat([]byte{0x11}, LineSize), 0)
	dev.Persist(0, LineSize)
	dev.WriteAt(bytes.Repeat([]byte{0x22}, LineSize), LineSize)
	dev.Flush(LineSize, LineSize) // staged, unfenced
	dev.WriteAt(bytes.Repeat([]byte{0x33}, LineSize), 2*LineSize) // dirty

	snap := dev.Snapshot()
	statsAt := dev.Stats()
	dirtyAt := dev.DirtyLines()

	// Diverge: overwrite everything and make it durable.
	dev.WriteAt(bytes.Repeat([]byte{0xFF}, 3*LineSize), 0)
	dev.Persist(0, 3*LineSize)

	dev.Restore(snap)
	if got := dev.Stats(); got != statsAt {
		t.Fatalf("stats after restore = %+v, want %+v", got, statsAt)
	}
	if got := dev.DirtyLines(); got != dirtyAt {
		t.Fatalf("dirty lines after restore = %d, want %d", got, dirtyAt)
	}
	// The staged-but-unfenced line must still be fence-committable.
	dev.Fence()
	dev.Crash(CrashStrict, 1)
	got := make([]byte, LineSize)
	dev.ReadAt(got, LineSize)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x22}, LineSize)) {
		t.Fatal("restored staged line lost its snapshot")
	}
	dev.ReadAt(got, 2*LineSize)
	if !bytes.Equal(got, make([]byte, LineSize)) {
		t.Fatal("restored dirty line survived a strict crash")
	}
}

func TestSnapshotNewDeviceIsIndependent(t *testing.T) {
	dev := New(8 * LineSize)
	dev.WriteAt(bytes.Repeat([]byte{0x5A}, LineSize), 0)
	dev.Persist(0, LineSize)
	snap := dev.Snapshot()

	rep := snap.NewDevice()
	rep.WriteAt(bytes.Repeat([]byte{0xEE}, LineSize), 0)
	rep.Persist(0, LineSize)

	got := make([]byte, LineSize)
	dev.ReadAt(got, 0)
	if !bytes.Equal(got, bytes.Repeat([]byte{0x5A}, LineSize)) {
		t.Fatal("replica mutation leaked into the original device")
	}
	rep.Crash(CrashStrict, 1)
	rep.ReadAt(got, 0)
	if !bytes.Equal(got, bytes.Repeat([]byte{0xEE}, LineSize)) {
		t.Fatal("replica lost its own durable write")
	}
}

// TestSnapshotRestoreDeterminism: after a restore, an identical operation
// sequence — including chaos-eviction rolls and a fail-point — produces an
// identical crash state. This is the property the model checker's
// replica-per-worker exploration depends on.
func TestSnapshotRestoreDeterminism(t *testing.T) {
	run := func(dev *Device) []byte {
		dev.SetFailAfter(7)
		catchCrash(t, func() {
			for i := int64(0); i < 16; i++ {
				off := (i % 8) * LineSize
				dev.WriteAt(bytes.Repeat([]byte{byte(i)}, LineSize), off)
				dev.Flush(off, LineSize)
				if i%4 == 3 {
					dev.Fence()
				}
			}
		})
		dev.Crash(CrashRandom, 99)
		img := make([]byte, dev.Size())
		dev.ReadAt(img, 0)
		return img
	}

	base := New(8*LineSize, WithChaosEviction(3, 42))
	base.WriteAt(bytes.Repeat([]byte{0xAB}, LineSize), 0)
	base.Persist(0, LineSize)
	snap := base.Snapshot()

	img1 := run(snap.NewDevice())
	img2 := run(snap.NewDevice())
	base.Restore(snap)
	img3 := run(base)
	if !bytes.Equal(img1, img2) || !bytes.Equal(img1, img3) {
		t.Fatal("identical op sequences diverged after snapshot restore")
	}
}

func TestFenceMarks(t *testing.T) {
	dev := New(8 * LineSize)
	dev.TraceFences(true)
	for i := int64(0); i < 3; i++ {
		dev.WriteAt(bytes.Repeat([]byte{byte(i + 1)}, LineSize), i*LineSize)
		dev.Flush(i*LineSize, LineSize)
		dev.Fence()
	}
	marks := dev.FenceMarks()
	if len(marks) != 3 {
		t.Fatalf("marks = %v, want 3 entries", marks)
	}
	for i, m := range marks {
		if m != int64(i+1) {
			t.Fatalf("mark[%d] = %d, want %d", i, m, i+1)
		}
	}
	// Disabling stops recording but keeps the trace readable; re-enabling
	// starts a fresh one.
	dev.TraceFences(false)
	dev.Fence()
	if got := dev.FenceMarks(); len(got) != 3 {
		t.Fatalf("marks after disabling = %v, want the 3 recorded", got)
	}
	dev.TraceFences(true)
	if got := dev.FenceMarks(); len(got) != 0 {
		t.Fatalf("marks after re-enabling = %v, want empty", got)
	}
}
