package nvm

import (
	"sync"
	"testing"
)

// TestDeviceStressRace hammers the device from concurrent workers on
// disjoint regions — stores, flushes, and fences racing each other and a
// dedicated fencer goroutine — then quiesces, persists, and crashes. Run
// under -race it validates the lock-free line-state protocol: dirty marks
// are CAS transitions, flush snapshots go to the shared staging image, and
// fences drain the striped journals, all while workers keep storing.
func TestDeviceStressRace(t *testing.T) {
	const (
		workers   = 8
		regionPer = 1 << 16
		slots     = 64
		slotSize  = 256
		iters     = 2000
	)
	d := New(workers * regionPer)
	for round := 0; round < 3; round++ {
		stop := make(chan struct{})
		var fencer sync.WaitGroup
		fencer.Add(1)
		go func() {
			defer fencer.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.Fence()
				}
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := int64(w * regionPer)
				buf := make([]byte, 128)
				for i := 0; i < iters; i++ {
					off := base + int64(i%slots)*slotSize
					for j := range buf {
						buf[j] = byte(w ^ i ^ j ^ round)
					}
					d.WriteAt(buf, off)
					d.Store64(off+128, uint64(i))
					d.Flush(off, 136)
					if i%64 == 63 {
						d.Fence()
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		fencer.Wait()

		// Quiesced: capture the final live state, make everything durable,
		// crash strictly, and confirm the persisted state survived intact.
		want := make([]byte, d.Size())
		d.ReadAt(want, 0)
		d.Persist(0, d.Size())
		if dl := d.DirtyLines(); dl != 0 {
			t.Fatalf("round %d: %d lines still non-durable after full persist", round, dl)
		}
		d.Crash(CrashStrict, int64(round))
		got := make([]byte, d.Size())
		d.ReadAt(got, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: byte %d lost across crash: got %#x want %#x", round, i, got[i], want[i])
			}
		}

		st := d.Stats()
		if st.LinesFenced > st.Flushes {
			t.Fatalf("round %d: fenced more lines (%d) than were flushed (%d)", round, st.LinesFenced, st.Flushes)
		}
	}
}

// TestDeviceStressChaos runs the same concurrent pattern with chaos
// eviction enabled, so spontaneous write-backs race flushes and fences on
// the same lines. Evicted lines are durable without a fence, so the only
// invariant checked is that a full persist still converges and survives a
// strict crash.
func TestDeviceStressChaos(t *testing.T) {
	const (
		workers   = 4
		regionPer = 1 << 15
	)
	d := New(int64(workers*regionPer), WithChaosEviction(64, 7))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * regionPer)
			buf := make([]byte, 96)
			for i := 0; i < 3000; i++ {
				off := base + int64(i%128)*256
				for j := range buf {
					buf[j] = byte(w + i + j)
				}
				d.WriteAt(buf, off)
				d.Flush(off, int64(len(buf)))
				if i%128 == 127 {
					d.Fence()
				}
			}
		}(w)
	}
	wg.Wait()

	want := make([]byte, d.Size())
	d.ReadAt(want, 0)
	d.Persist(0, d.Size())
	d.Crash(CrashStrict, 99)
	got := make([]byte, d.Size())
	d.ReadAt(got, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d lost across crash after chaos run", i)
		}
	}
}

// TestWriteFieldsCounterEquivalence pins the vectored write's accounting to
// the unvectored sequence it replaces: issuing the same stores and flushes
// through WriteFields must move every Stats counter by exactly the same
// amount. This is the per-op guarantee behind the engine-level golden test.
func TestWriteFieldsCounterEquivalence(t *testing.T) {
	mkVal := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		return b
	}
	for _, tc := range []struct {
		name  string
		value int // value bytes stored at off 1024 (0 = none)
	}{
		{"descriptor-only", 0},
		{"inline-value", 80},
		{"pooled-value", 700},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := New(1 << 20)
			b := New(1 << 20)
			val := mkVal(tc.value)

			// Device a: the unvectored sequence (writeValue + writeVersion).
			if len(val) > 0 {
				a.WriteAt(val, 1024)
				a.Flush(1024, int64(len(val)))
			}
			a.Store64(40, 7)
			a.Store64(48, 1024)
			a.Store32(56, uint32(len(val)))
			a.Flush(0, 64)
			a.Fence()

			// Device b: the same ops as one vectored call.
			var sid, ptr [8]byte
			var size [4]byte
			putU64 := func(dst []byte, v uint64) {
				for i := range dst {
					dst[i] = byte(v >> (8 * i))
				}
			}
			putU64(sid[:], 7)
			putU64(ptr[:], 1024)
			putU64(size[:], uint64(len(val)))
			fields := make([]FieldWrite, 0, 4)
			flushes := make([]Range, 0, 2)
			if len(val) > 0 {
				fields = append(fields, FieldWrite{Off: 1024, Data: val})
				flushes = append(flushes, Range{Off: 1024, N: int64(len(val))})
			}
			fields = append(fields,
				FieldWrite{Off: 40, Data: sid[:]},
				FieldWrite{Off: 48, Data: ptr[:]},
				FieldWrite{Off: 56, Data: size[:]},
			)
			flushes = append(flushes, Range{Off: 0, N: 64})
			b.WriteFields(fields, flushes)
			b.Fence()

			if sa, sb := a.Stats(), b.Stats(); sa != sb {
				t.Fatalf("counter drift:\n unvectored %+v\n vectored   %+v", sa, sb)
			}
			// The durable images must match too.
			a.Crash(CrashStrict, 1)
			b.Crash(CrashStrict, 1)
			ia, ib := make([]byte, 2048), make([]byte, 2048)
			a.ReadAt(ia, 0)
			b.ReadAt(ib, 0)
			for i := range ia {
				if ia[i] != ib[i] {
					t.Fatalf("durable image drift at byte %d", i)
				}
			}
		})
	}
}

// TestPersistRangeEquivalence checks PersistRange against per-range
// Flush+Fence: same durable outcome, one fence instead of N.
func TestPersistRangeEquivalence(t *testing.T) {
	a := New(1 << 16)
	b := New(1 << 16)
	ranges := []Range{{Off: 0, N: 64}, {Off: 4096, N: 200}, {Off: 8192, N: 64}}
	fill := func(d *Device) {
		for i, r := range ranges {
			buf := make([]byte, r.N)
			for j := range buf {
				buf[j] = byte(i + j)
			}
			d.WriteAt(buf, r.Off)
		}
	}
	fill(a)
	for _, r := range ranges {
		a.Persist(r.Off, r.N)
	}
	fill(b)
	b.PersistRange(ranges...)

	if fa, fb := a.Stats().Fences, b.Stats().Fences; fb != 1 || fa != int64(len(ranges)) {
		t.Fatalf("fence counts: per-range %d, vectored %d (want %d and 1)", fa, fb, len(ranges))
	}
	if fa, fb := a.Stats().Flushes, b.Stats().Flushes; fa != fb {
		t.Fatalf("flush counts differ: %d vs %d", fa, fb)
	}
	a.Crash(CrashStrict, 5)
	b.Crash(CrashStrict, 5)
	for _, r := range ranges {
		ba, bb := make([]byte, r.N), make([]byte, r.N)
		a.ReadAt(ba, r.Off)
		b.ReadAt(bb, r.Off)
		if string(ba) != string(bb) {
			t.Fatalf("durable range at %d differs", r.Off)
		}
	}
}

// TestZeroSequentialDiscount pins the Zero latency fix: zeroing a large
// region must charge the same discounted line count as an equally sized
// sequential WriteAt, not the full random-write cost. The latency model is
// time-based, so the check compares the only observable that does not
// depend on wall-clock precision: both paths share chargedWriteLines.
func TestZeroSequentialDiscount(t *testing.T) {
	for _, lines := range []int64{1, 3, 4, 16, 1000} {
		got := chargedWriteLines(lines)
		want := lines
		if lines >= seqWriteFactor {
			want = (lines + seqWriteFactor - 1) / seqWriteFactor
		}
		if got != want {
			t.Fatalf("chargedWriteLines(%d) = %d, want %d", lines, got, want)
		}
	}
	// And Zero still counts exact line writes in Stats (the discount is
	// latency-only).
	d := New(1 << 16)
	d.Zero(0, 64*100)
	if st := d.Stats(); st.LineWrites != 100 {
		t.Fatalf("Zero(6400B) counted %d line writes, want 100", st.LineWrites)
	}
}

// TestWriteFieldsOutOfBoundsPanics covers the vectored call's bounds guard:
// a field past the device end must panic like the store it replaces.
func TestWriteFieldsOutOfBoundsPanics(t *testing.T) {
	d := New(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds WriteFields did not panic")
		}
	}()
	d.WriteFields([]FieldWrite{{Off: 4090, Data: make([]byte, 16)}}, nil)
}
