package nvm

import (
	"fmt"
	"time"
)

// Snapshot is a deep copy of a device's full simulation state: the three
// byte images, the per-line durability state words, the flushed-line
// journals, the access counters, the chaos-eviction PRNG, and the latency
// configuration. It is the restart mechanism of the crash-consistency
// model checker: capture one snapshot after the (expensive) workload
// prefix, then Restore before each explored crash point instead of
// re-running the prefix, or NewDevice a replica per worker so points are
// explored in parallel.
//
// Snapshot and Restore require the same quiescence as Crash: no accesses
// in flight.
type Snapshot struct {
	size    int64
	live    []byte
	durable []byte
	staging []byte
	state   []uint32

	journals [stripeCount][]int64

	cells [statStripes][8]int64

	chaosDenom int
	chaosState uint64
	failAfter  int64

	readLatency  time.Duration
	writeLatency time.Duration
	fenceLatency time.Duration
}

// Size returns the capacity of the snapshotted device in bytes.
func (s *Snapshot) Size() int64 { return s.size }

// Snapshot captures the device's complete state. The caller must ensure no
// accesses are in flight (the same contract as Crash).
func (d *Device) Snapshot() *Snapshot {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	s := &Snapshot{
		size:         d.size,
		live:         append([]byte(nil), d.live...),
		durable:      append([]byte(nil), d.durable...),
		staging:      append([]byte(nil), d.staging...),
		state:        make([]uint32, len(d.state)),
		chaosDenom:   d.chaosDenom,
		chaosState:   d.chaosState.Load(),
		failAfter:    d.failAfter.Load(),
		readLatency:  d.readLatency,
		writeLatency: d.writeLatency,
		fenceLatency: d.fenceLatency,
	}
	for l := range d.state {
		s.state[l] = d.state[l].Load()
	}
	for i := range d.stripes {
		sp := &d.stripes[i]
		sp.mu.Lock()
		s.journals[i] = append([]int64(nil), sp.lines...)
		sp.mu.Unlock()
	}
	for i := range d.cells {
		c := &d.cells[i]
		s.cells[i] = [8]int64{
			c.lineReads.Load(), c.lineWrites.Load(),
			c.bytesRead.Load(), c.bytesWritten.Load(),
			c.flushes.Load(), c.flushesElided.Load(),
			c.fences.Load(), c.linesFenced.Load(),
		}
	}
	return s
}

// Restore rewinds the device to a previously captured snapshot, including
// images, durability state, journals, counters, chaos PRNG, and fail-point
// counter. Fence-mark traces are cleared. The snapshot must come from a
// device of the same size. The caller must ensure no accesses are in
// flight.
func (d *Device) Restore(s *Snapshot) {
	if s.size != d.size {
		panic(fmt.Sprintf("nvm: restore of %d-byte snapshot onto %d-byte device", s.size, d.size))
	}
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	copy(d.live, s.live)
	copy(d.durable, s.durable)
	copy(d.staging, s.staging)
	for l := range d.state {
		d.state[l].Store(s.state[l])
	}
	for i := range d.stripes {
		sp := &d.stripes[i]
		sp.mu.Lock()
		sp.lines = append(sp.lines[:0], s.journals[i]...)
		sp.spare = sp.spare[:0]
		sp.mu.Unlock()
	}
	for i := range d.cells {
		c := &d.cells[i]
		c.lineReads.Store(s.cells[i][0])
		c.lineWrites.Store(s.cells[i][1])
		c.bytesRead.Store(s.cells[i][2])
		c.bytesWritten.Store(s.cells[i][3])
		c.flushes.Store(s.cells[i][4])
		c.flushesElided.Store(s.cells[i][5])
		c.fences.Store(s.cells[i][6])
		c.linesFenced.Store(s.cells[i][7])
	}
	d.chaosDenom = s.chaosDenom
	d.chaosState.Store(s.chaosState)
	d.failAfter.Store(s.failAfter)
	d.fenceMarks = d.fenceMarks[:0]
}

// NewDevice builds an independent device replica from the snapshot. The
// replica carries the snapshot's latency and chaos configuration and is
// indistinguishable from the original at capture time; mutations of one
// never affect the other.
func (s *Snapshot) NewDevice() *Device {
	d := New(s.size)
	d.readLatency = s.readLatency
	d.writeLatency = s.writeLatency
	d.fenceLatency = s.fenceLatency
	d.Restore(s)
	return d
}

// TraceFences enables (or disables) fence-mark tracing. While enabled,
// every Fence appends the cumulative flushed-line count observed at the
// fence to an internal trace, so a crash-free rehearsal of a workload
// yields the persist-phase boundaries of its flush sequence — the
// positions the model checker's stratified sampler biases toward.
// Enabling clears any previous trace.
func (d *Device) TraceFences(on bool) {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	d.traceFences = on
	if on {
		d.fenceMarks = d.fenceMarks[:0]
	}
}

// FenceMarks returns a copy of the fence trace: one cumulative flush count
// per Fence issued since tracing was enabled.
func (d *Device) FenceMarks() []int64 {
	d.fenceMu.Lock()
	defer d.fenceMu.Unlock()
	return append([]int64(nil), d.fenceMarks...)
}

// foldFlushes sums the striped flush counters.
func (d *Device) foldFlushes() int64 {
	var n int64
	for i := range d.cells {
		n += d.cells[i].flushes.Load()
	}
	return n
}
