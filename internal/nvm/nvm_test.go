package nvm

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewRoundsUpToLine(t *testing.T) {
	d := New(1)
	if d.Size() != LineSize {
		t.Fatalf("size = %d, want %d", d.Size(), LineSize)
	}
	d = New(LineSize + 1)
	if d.Size() != 2*LineSize {
		t.Fatalf("size = %d, want %d", d.Size(), 2*LineSize)
	}
}

func TestNewPanicsOnNonPositiveSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(4096)
	data := []byte("hello, persistent world")
	d.WriteAt(data, 100)
	got := make([]byte, len(data))
	d.ReadAt(got, 100)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New(128)
	cases := []func(){
		func() { d.ReadAt(make([]byte, 8), 125) },
		func() { d.WriteAt(make([]byte, 8), -1) },
		func() { d.Load64(121) },
		func() { d.Store64(128, 1) },
		func() { d.Slice(120, 16) },
		func() { d.Flush(64, 65) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUnpersistedWritesLostOnStrictCrash(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{1, 2, 3, 4}, 0)
	d.Crash(CrashStrict, 1)
	got := make([]byte, 4)
	d.ReadAt(got, 0)
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("unpersisted write survived strict crash: %v", got)
	}
}

func TestPersistedWritesSurviveCrash(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{9, 8, 7}, 64)
	d.Persist(64, 3)
	d.Crash(CrashStrict, 1)
	got := make([]byte, 3)
	d.ReadAt(got, 64)
	if !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Fatalf("persisted write lost: %v", got)
	}
}

func TestFlushWithoutFenceLostOnStrictCrash(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{5}, 0)
	d.Flush(0, 1)
	// No fence: strict crash must lose it.
	d.Crash(CrashStrict, 1)
	got := make([]byte, 1)
	d.ReadAt(got, 0)
	if got[0] != 0 {
		t.Fatalf("flushed-but-unfenced write survived strict crash")
	}
}

func TestWriteAfterFlushNeedsSecondFlush(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{1}, 0)
	d.Flush(0, 1)
	d.WriteAt([]byte{2}, 0) // dirties the line again after the snapshot
	d.Fence()               // commits the snapshot containing 1
	d.Crash(CrashStrict, 1)
	got := make([]byte, 1)
	d.ReadAt(got, 0)
	if got[0] != 1 {
		t.Fatalf("got %d, want 1 (the flushed snapshot)", got[0])
	}
}

func TestCrashAllPersistsEverything(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{42}, 10)
	d.Crash(CrashAll, 1)
	got := make([]byte, 1)
	d.ReadAt(got, 10)
	if got[0] != 42 {
		t.Fatalf("CrashAll lost a dirty line")
	}
}

func TestCrashRandomIsSubsetSemantics(t *testing.T) {
	// Every line must hold either its old durable content or its new
	// content in full — never a torn mix.
	for seed := int64(0); seed < 32; seed++ {
		d := New(4 * LineSize)
		old := bytes.Repeat([]byte{0xAA}, LineSize)
		for l := int64(0); l < 4; l++ {
			d.WriteAt(old, l*LineSize)
		}
		d.Persist(0, 4*LineSize)
		newc := bytes.Repeat([]byte{0xBB}, LineSize)
		for l := int64(0); l < 4; l++ {
			d.WriteAt(newc, l*LineSize)
		}
		d.Flush(0, 2*LineSize) // stage first two lines only
		d.Crash(CrashRandom, seed)
		for l := int64(0); l < 4; l++ {
			got := make([]byte, LineSize)
			d.ReadAt(got, l*LineSize)
			if !bytes.Equal(got, old) && !bytes.Equal(got, newc) {
				t.Fatalf("seed %d line %d: torn content %v", seed, l, got[:4])
			}
		}
	}
}

func TestLoadStore64(t *testing.T) {
	d := New(4096)
	const v = uint64(0xDEADBEEFCAFEF00D)
	d.Store64(256, v)
	if got := d.Load64(256); got != v {
		t.Fatalf("got %#x, want %#x", got, v)
	}
	d.Persist(256, 8)
	d.Crash(CrashStrict, 1)
	if got := d.Load64(256); got != v {
		t.Fatalf("after crash: got %#x, want %#x", got, v)
	}
}

func TestLoadStore32(t *testing.T) {
	d := New(4096)
	const v = 0xFEEDFACE
	d.Store32(100, v)
	if got := d.Load32(100); got != v {
		t.Fatalf("got %#x, want %#x", got, v)
	}
}

func TestZero(t *testing.T) {
	d := New(4096)
	d.WriteAt(bytes.Repeat([]byte{0xFF}, 128), 0)
	d.Zero(32, 64)
	got := make([]byte, 128)
	d.ReadAt(got, 0)
	for i, b := range got {
		want := byte(0xFF)
		if i >= 32 && i < 96 {
			want = 0
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestSliceSeesLiveData(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{1, 2, 3}, 0)
	s := d.Slice(0, 3)
	if !bytes.Equal(s, []byte{1, 2, 3}) {
		t.Fatalf("slice = %v", s)
	}
}

func TestStatsCounting(t *testing.T) {
	d := New(4096)
	base := d.Stats()
	d.WriteAt(make([]byte, LineSize), 0) // exactly one line
	d.WriteAt(make([]byte, LineSize+1), LineSize)
	d.ReadAt(make([]byte, 8), 0)
	d.Flush(0, LineSize)
	d.Fence()
	s := d.Stats().Sub(base)
	if s.LineWrites != 3 { // 1 + 2 (spans two lines)
		t.Errorf("LineWrites = %d, want 3", s.LineWrites)
	}
	if s.LineReads != 1 {
		t.Errorf("LineReads = %d, want 1", s.LineReads)
	}
	if s.BytesWritten != int64(2*LineSize+1) {
		t.Errorf("BytesWritten = %d", s.BytesWritten)
	}
	if s.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", s.Flushes)
	}
	if s.Fences != 1 {
		t.Errorf("Fences = %d, want 1", s.Fences)
	}
	if s.LinesFenced != 1 {
		t.Errorf("LinesFenced = %d, want 1", s.LinesFenced)
	}
}

func TestFlushCleanLineIsNoop(t *testing.T) {
	d := New(4096)
	before := d.Stats()
	d.Flush(0, LineSize)
	if got := d.Stats().Sub(before).Flushes; got != 0 {
		t.Fatalf("flushing clean line counted %d flushes", got)
	}
}

func TestResetStats(t *testing.T) {
	d := New(4096)
	d.WriteAt([]byte{1}, 0)
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestDirtyLines(t *testing.T) {
	d := New(4096)
	if d.DirtyLines() != 0 {
		t.Fatal("fresh device has dirty lines")
	}
	d.WriteAt([]byte{1}, 0)
	d.WriteAt([]byte{1}, LineSize)
	if got := d.DirtyLines(); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	d.Persist(0, 2*LineSize)
	if got := d.DirtyLines(); got != 0 {
		t.Fatalf("DirtyLines after persist = %d, want 0", got)
	}
}

func TestFailAfterInjectsCrash(t *testing.T) {
	d := New(4096)
	d.SetFailAfter(2)
	d.WriteAt([]byte{1}, 0)
	d.Flush(0, 1) // first flushed line
	d.WriteAt([]byte{2}, LineSize)
	defer func() {
		if r := recover(); r != ErrInjectedCrash {
			t.Fatalf("recover = %v, want ErrInjectedCrash", r)
		}
	}()
	d.Flush(LineSize, 1) // second flushed line: boom
	t.Fatal("unreachable")
}

func TestConcurrentDisjointWrites(t *testing.T) {
	d := New(1 << 20)
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := []byte{byte(w + 1)}
			for i := 0; i < per; i++ {
				off := int64(w*per+i) * LineSize % d.Size()
				d.WriteAt(buf, off)
				d.Flush(off, 1)
			}
		}(w)
	}
	wg.Wait()
	d.Fence()
	d.Crash(CrashStrict, 1)
	// Every written line should have survived.
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			off := int64(w*per+i) * LineSize % d.Size()
			got := make([]byte, 1)
			d.ReadAt(got, off)
			if got[0] == 0 {
				t.Fatalf("worker %d slot %d lost", w, i)
			}
		}
	}
}

func TestLatencyModelCharges(t *testing.T) {
	d := New(4096, WithLatency(0, 200*time.Microsecond))
	start := time.Now()
	d.WriteAt(make([]byte, LineSize), 0)
	if el := time.Since(start); el < 150*time.Microsecond {
		t.Fatalf("latency model did not charge: %v", el)
	}
}

func TestFenceLatencyCharges(t *testing.T) {
	d := New(4096, WithFenceLatency(200*time.Microsecond))
	start := time.Now()
	d.Fence()
	if el := time.Since(start); el < 150*time.Microsecond {
		t.Fatalf("fence latency not charged: %v", el)
	}
}

// TestQuickPersistRoundTrip property: any sequence of (write, persist) pairs
// is fully recovered after a strict crash.
func TestQuickPersistRoundTrip(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(1 << 16)
		type rec struct {
			off  int64
			data []byte
		}
		var recs []rec
		for i := 0; i < int(nOps%40)+1; i++ {
			n := int64(rng.Intn(200) + 1)
			off := rng.Int63n(d.Size() - n)
			data := make([]byte, n)
			rng.Read(data)
			d.WriteAt(data, off)
			d.Persist(off, n)
			recs = append(recs, rec{off, data})
		}
		d.Crash(CrashStrict, seed)
		// Later writes can overlap earlier ones; replay forward to compute
		// the expected image.
		img := make([]byte, d.Size())
		for _, r := range recs {
			copy(img[r.off:], r.data)
		}
		for _, r := range recs {
			got := make([]byte, len(r.data))
			d.ReadAt(got, r.off)
			if !bytes.Equal(got, img[r.off:r.off+int64(len(r.data))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrashNeverTears property: under any crash mode each line is
// either entirely old or entirely new.
func TestQuickCrashNeverTears(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		d := New(8 * LineSize)
		oldLine := bytes.Repeat([]byte{0x11}, LineSize)
		for l := int64(0); l < 8; l++ {
			d.WriteAt(oldLine, l*LineSize)
		}
		d.Persist(0, 8*LineSize)
		rng := rand.New(rand.NewSource(seed))
		newLine := bytes.Repeat([]byte{0x22}, LineSize)
		for l := int64(0); l < 8; l++ {
			if rng.Intn(2) == 0 {
				d.WriteAt(newLine, l*LineSize)
			}
			if rng.Intn(2) == 0 {
				d.Flush(l*LineSize, LineSize)
			}
		}
		d.Crash(CrashMode(mode%3), seed)
		for l := int64(0); l < 8; l++ {
			got := make([]byte, LineSize)
			d.ReadAt(got, l*LineSize)
			if !bytes.Equal(got, oldLine) && !bytes.Equal(got, newLine) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
