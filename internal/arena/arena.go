// Package arena implements per-core DRAM bump allocators backing the
// transient pool of the deterministic database.
//
// All intermediate row versions produced within an epoch live in the
// transient pool and are discarded wholesale at the end of the epoch, so
// allocation is a pointer bump and deallocation is a single offset reset —
// no per-object free, no garbage-collector pressure proportional to the
// number of versions.
package arena

import "fmt"

// chunkSize is the size of each slab a core arena grows by. Allocations
// larger than this get a dedicated slab.
const chunkSize = 1 << 20 // 1 MiB

// Arena is a single-owner bump allocator. It is NOT safe for concurrent
// use: the engine gives each worker core its own Arena, which is the whole
// point of the per-core design.
type Arena struct {
	chunks [][]byte // fixed-size slabs, reused across Resets
	big    [][]byte // oversized dedicated slabs, dropped on Reset
	cur    int      // index of the chunk being bumped
	off    int      // bump offset within chunks[cur]
	peak   int      // high-water mark of total allocated bytes, across resets
	used   int      // bytes handed out since the last Reset
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{cur: -1}
}

// Alloc returns a zeroed byte slice of length n carved from the arena.
// The slice is valid until the next Reset.
func (a *Arena) Alloc(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("arena: negative allocation %d", n))
	}
	if n > chunkSize {
		s := make([]byte, n)
		a.big = append(a.big, s)
		a.used += n
		if a.used > a.peak {
			a.peak = a.used
		}
		return s
	}
	if a.cur < 0 || a.off+n > len(a.chunks[a.cur]) {
		a.grow()
	}
	s := a.chunks[a.cur][a.off : a.off+n : a.off+n]
	a.off += n
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	// Chunks are reused across epochs; zero the handed-out region so stale
	// epoch data can never leak into a new version.
	clear(s)
	return s
}

func (a *Arena) grow() {
	// Reuse an already-grown chunk if Reset left one available.
	if a.cur+1 < len(a.chunks) {
		a.cur++
		a.off = 0
		return
	}
	a.chunks = append(a.chunks, make([]byte, chunkSize))
	a.cur = len(a.chunks) - 1
	a.off = 0
}

// Reset discards every allocation in O(1), retaining chunk memory for reuse
// by later epochs. Dedicated oversized slabs are dropped so they can be
// garbage collected.
func (a *Arena) Reset() {
	a.big = nil
	if len(a.chunks) > 0 {
		a.cur = 0
	} else {
		a.cur = -1
	}
	a.off = 0
	a.used = 0
}

// Used returns the bytes handed out since the last Reset.
func (a *Arena) Used() int { return a.used }

// Peak returns the high-water mark of bytes handed out within any epoch.
func (a *Arena) Peak() int { return a.peak }

// Footprint returns the total bytes of retained chunk memory plus any live
// oversized slabs.
func (a *Arena) Footprint() int {
	var n int
	for _, c := range a.chunks {
		n += len(c)
	}
	for _, c := range a.big {
		n += len(c)
	}
	return n
}

// Group is a set of per-core arenas plus aggregate accounting.
type Group struct {
	arenas []*Arena
}

// NewGroup creates n per-core arenas.
func NewGroup(n int) *Group {
	g := &Group{arenas: make([]*Arena, n)}
	for i := range g.arenas {
		g.arenas[i] = New()
	}
	return g
}

// Core returns core i's arena.
func (g *Group) Core(i int) *Arena { return g.arenas[i] }

// ResetAll resets every arena.
func (g *Group) ResetAll() {
	for _, a := range g.arenas {
		a.Reset()
	}
}

// Used sums Used across cores.
func (g *Group) Used() int {
	var n int
	for _, a := range g.arenas {
		n += a.Used()
	}
	return n
}

// Peak sums Peak across cores.
func (g *Group) Peak() int {
	var n int
	for _, a := range g.arenas {
		n += a.Peak()
	}
	return n
}

// Footprint sums retained memory across cores.
func (g *Group) Footprint() int {
	var n int
	for _, a := range g.arenas {
		n += a.Footprint()
	}
	return n
}
