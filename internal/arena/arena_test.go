package arena

import (
	"testing"
	"testing/quick"
)

func TestAllocReturnsZeroedRequestedSize(t *testing.T) {
	a := New()
	s := a.Alloc(100)
	if len(s) != 100 {
		t.Fatalf("len = %d, want 100", len(s))
	}
	for i, b := range s {
		if b != 0 {
			t.Fatalf("byte %d not zero", i)
		}
	}
}

func TestAllocationsAreDisjoint(t *testing.T) {
	a := New()
	s1 := a.Alloc(64)
	s2 := a.Alloc(64)
	for i := range s1 {
		s1[i] = 0xAA
	}
	for _, b := range s2 {
		if b != 0 {
			t.Fatal("allocations overlap")
		}
	}
}

func TestAllocGrowsAcrossChunks(t *testing.T) {
	a := New()
	// Allocate more than one chunk's worth.
	total := 0
	for total < chunkSize*2+100 {
		s := a.Alloc(1000)
		total += len(s)
	}
	if a.Used() != total {
		t.Fatalf("Used = %d, want %d", a.Used(), total)
	}
}

func TestOversizedAllocation(t *testing.T) {
	a := New()
	s := a.Alloc(chunkSize + 1)
	if len(s) != chunkSize+1 {
		t.Fatalf("len = %d", len(s))
	}
	a.Reset()
	if a.Used() != 0 {
		t.Fatal("Used after reset != 0")
	}
}

func TestResetReusesChunksAndZeroesNewAllocs(t *testing.T) {
	a := New()
	s := a.Alloc(128)
	for i := range s {
		s[i] = 0xFF
	}
	foot := a.Footprint()
	a.Reset()
	if a.Footprint() != foot {
		t.Fatalf("footprint changed across reset: %d -> %d", foot, a.Footprint())
	}
	s2 := a.Alloc(128)
	for i, b := range s2 {
		if b != 0 {
			t.Fatalf("stale data leaked at byte %d", i)
		}
	}
}

func TestPeakAcrossResets(t *testing.T) {
	a := New()
	a.Alloc(500)
	a.Reset()
	a.Alloc(100)
	if a.Peak() != 500 {
		t.Fatalf("Peak = %d, want 500", a.Peak())
	}
	a.Alloc(900)
	if a.Peak() != 1000 {
		t.Fatalf("Peak = %d, want 1000", a.Peak())
	}
}

func TestNegativeAllocPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Alloc(-1)
}

func TestZeroAlloc(t *testing.T) {
	a := New()
	s := a.Alloc(0)
	if len(s) != 0 {
		t.Fatalf("len = %d, want 0", len(s))
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(4)
	for i := 0; i < 4; i++ {
		g.Core(i).Alloc(100)
	}
	if g.Used() != 400 {
		t.Fatalf("group Used = %d, want 400", g.Used())
	}
	g.ResetAll()
	if g.Used() != 0 {
		t.Fatalf("group Used after reset = %d", g.Used())
	}
	if g.Peak() != 400 {
		t.Fatalf("group Peak = %d, want 400", g.Peak())
	}
	if g.Footprint() == 0 {
		t.Fatal("group Footprint = 0 after allocations")
	}
}

// Property: sizes requested always equal sizes returned and Used tracks the
// running sum, regardless of the allocation pattern.
func TestQuickAllocSizes(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := New()
		sum := 0
		for _, raw := range sizes {
			n := int(raw)
			s := a.Alloc(n)
			if len(s) != n {
				return false
			}
			sum += n
		}
		return a.Used() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
