package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeTargets returns watch targets reading from the given pointers.
func fakeTargets(epoch, durable *uint64) WatchTargets {
	return WatchTargets{
		Epoch:        func() uint64 { return *epoch },
		DurableEpoch: func() uint64 { return *durable },
	}
}

func TestWatchdogDurableLag(t *testing.T) {
	o := New(Config{Hists: true})
	epoch, durable := uint64(10), uint64(6)
	wd := o.NewWatchdog(WatchConfig{MaxDurableLag: 3, Cooldown: time.Hour}, fakeTargets(&epoch, &durable))
	wd.Tick(time.Now())

	incs := wd.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	inc := incs[0]
	if inc.Reason != ReasonDurableLag {
		t.Fatalf("reason = %q, want %q", inc.Reason, ReasonDurableLag)
	}
	if inc.Epoch != 10 || inc.DurableEpoch != 6 {
		t.Fatalf("incident epochs %d/%d, want 10/6", inc.Epoch, inc.DurableEpoch)
	}
	// The trigger itself must land in the flight recorder.
	var triggers int
	for _, e := range o.Flight().Events(0) {
		if e.Type == EvWatchTrigger {
			triggers++
		}
	}
	if triggers != 1 {
		t.Fatalf("flight has %d watch-trigger events, want 1", triggers)
	}
	// Healthy lag: no second incident even past the cooldown.
	durable = 9
	wd2 := o.NewWatchdog(WatchConfig{MaxDurableLag: 3}, fakeTargets(&epoch, &durable))
	wd2.Tick(time.Now())
	if n := len(wd2.Incidents()); n != 0 {
		t.Fatalf("healthy lag fired %d incidents", n)
	}
}

func TestWatchdogCommitterStall(t *testing.T) {
	o := New(Config{})
	epoch, durable := uint64(5), uint64(3)
	cfg := WatchConfig{
		MaxDurableLag: 100, // keep the lag detector quiet
		StallAfter:    2 * time.Second,
		Cooldown:      time.Minute,
	}
	wd := o.NewWatchdog(cfg, fakeTargets(&epoch, &durable))

	t0 := time.Now()
	wd.Tick(t0) // establishes durableSince
	wd.Tick(t0.Add(time.Second))
	if n := len(wd.Incidents()); n != 0 {
		t.Fatalf("stall fired after 1s with a 2s threshold (%d incidents)", n)
	}
	wd.Tick(t0.Add(3 * time.Second))
	incs := wd.Incidents()
	if len(incs) != 1 || incs[0].Reason != ReasonCommitterStall {
		t.Fatalf("incidents = %+v, want one committer-stall", incs)
	}

	// The durable epoch advancing resets the stall clock: no fire right
	// after the advance, a second fire once it sticks again past the
	// cooldown, and none at all once the committer catches up.
	durable = 4
	wd.Tick(t0.Add(4 * time.Second))
	wd.Tick(t0.Add(100 * time.Second))
	durable = 5
	epoch = 5
	wd.Tick(t0.Add(200 * time.Second))
	if n := len(wd.Incidents()); n != 2 {
		t.Fatalf("got %d incidents, want 2", n)
	}
}

func TestWatchdogEpochOutlier(t *testing.T) {
	o := New(Config{})
	epoch, durable := uint64(30), uint64(30)
	cfg := WatchConfig{
		MaxDurableLag:      100,
		EpochOutlierFactor: 10,
		MinEpochSamples:    16,
		Cooldown:           time.Hour,
	}
	wd := o.NewWatchdog(cfg, fakeTargets(&epoch, &durable))

	for i := 0; i < 20; i++ {
		o.Flight().Record(EvEpochEnd, CoordinatorCore, uint64(i), int64(time.Millisecond), 100)
	}
	wd.Tick(time.Now())
	if n := len(wd.Incidents()); n != 0 {
		t.Fatalf("uniform epochs fired %d incidents", n)
	}

	o.Flight().Record(EvEpochEnd, CoordinatorCore, 21, int64(100*time.Millisecond), 100)
	wd.Tick(time.Now())
	incs := wd.Incidents()
	if len(incs) != 1 || incs[0].Reason != ReasonEpochOutlier {
		t.Fatalf("incidents = %+v, want one epoch-outlier", incs)
	}
}

// TestWatchdogIncidentFile checks the JSON evidence snapshot on disk: the
// histograms, breakdown, and flight tail must parse back.
func TestWatchdogIncidentFile(t *testing.T) {
	dir := t.TempDir()
	o := New(Config{Hists: true, TxnTrace: true, TxnSampleEvery: 1})
	o.ObserveTxn(0, time.Millisecond)
	o.RecordEpoch(7, time.Now().Add(-time.Millisecond), 100*time.Microsecond, 100*time.Microsecond, 700*time.Microsecond, 100*time.Microsecond)
	sp := o.TxnTrace().Sample()
	sp.MarkAssign(7, 0)
	sp.MarkExec(0, time.Now(), time.Millisecond, false)
	o.TxnTrace().Publish(sp)
	o.Flight().Record(EvEpochStart, CoordinatorCore, 7, 10, 0)

	var hooked []Incident
	epoch, durable := uint64(9), uint64(2)
	cfg := WatchConfig{
		MaxDurableLag: 3,
		IncidentDir:   dir,
		OnIncident:    func(i Incident) { hooked = append(hooked, i) },
	}
	wd := o.NewWatchdog(cfg, fakeTargets(&epoch, &durable))
	wd.Tick(time.Now())

	incs := wd.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	if len(hooked) != 1 || hooked[0].Reason != incs[0].Reason {
		t.Fatalf("OnIncident hook saw %+v", hooked)
	}
	if incs[0].File == "" {
		t.Fatal("incident not written to a file")
	}
	if filepath.Dir(incs[0].File) != dir {
		t.Fatalf("incident written to %s, want under %s", incs[0].File, dir)
	}

	data, err := os.ReadFile(incs[0].File)
	if err != nil {
		t.Fatal(err)
	}
	var got Incident
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("incident file is not valid JSON: %v", err)
	}
	if got.Reason != ReasonDurableLag || got.Epoch != 9 || got.DurableEpoch != 2 {
		t.Fatalf("incident payload mangled: %+v", got)
	}
	if got.EpochHist == nil || got.EpochHist.Count != 1 {
		t.Fatalf("epoch hist missing from evidence: %+v", got.EpochHist)
	}
	if got.TxnHist == nil || got.TxnHist.Count != 1 {
		t.Fatalf("txn hist missing from evidence: %+v", got.TxnHist)
	}
	if got.Breakdown == nil || got.Breakdown.Spans != 1 {
		t.Fatalf("txn breakdown missing from evidence: %+v", got.Breakdown)
	}
	if len(got.Flight) == 0 {
		t.Fatal("flight tail missing from evidence")
	}
	if len(got.DurableLag) != MaxDurableLag {
		t.Fatalf("durable lag distribution has %d buckets, want %d", len(got.DurableLag), MaxDurableLag)
	}
}

func TestWatchdogCooldown(t *testing.T) {
	o := New(Config{})
	epoch, durable := uint64(10), uint64(1)
	// StallAfter is pushed out so only the lag detector speaks; the
	// cooldown is per reason, and a stall firing here would muddy the count.
	cfg := WatchConfig{MaxDurableLag: 3, Cooldown: time.Hour, StallAfter: 1000 * time.Hour}
	wd := o.NewWatchdog(cfg, fakeTargets(&epoch, &durable))
	t0 := time.Now()
	wd.Tick(t0)
	wd.Tick(t0.Add(time.Minute))
	if n := len(wd.Incidents()); n != 1 {
		t.Fatalf("cooldown let %d incidents through, want 1", n)
	}
	wd.Tick(t0.Add(2 * time.Hour))
	if n := len(wd.Incidents()); n != 2 {
		t.Fatalf("after cooldown expiry got %d incidents, want 2", n)
	}
}

// TestStartWatchGuards pins the nil/arming contract: StartWatch arms only
// with a config and complete targets, and Stop is safe everywhere.
func TestStartWatchGuards(t *testing.T) {
	var nilObs *Obs
	e := func() uint64 { return 0 }
	if wd := nilObs.StartWatch(WatchTargets{Epoch: e, DurableEpoch: e}); wd != nil {
		t.Fatal("nil obs armed a watchdog")
	}
	o := New(Config{}) // no Watch config
	if wd := o.StartWatch(WatchTargets{Epoch: e, DurableEpoch: e}); wd != nil {
		t.Fatal("watchdog armed without a watch config")
	}
	ow := New(Config{Watch: &WatchConfig{}})
	if wd := ow.StartWatch(WatchTargets{Epoch: e}); wd != nil {
		t.Fatal("watchdog armed with incomplete targets")
	}
	wd := ow.StartWatch(WatchTargets{Epoch: e, DurableEpoch: e})
	if wd == nil {
		t.Fatal("watchdog did not arm")
	}
	wd.Stop()
	wd.Stop() // idempotent
	var nilWd *Watchdog
	nilWd.Stop()
	nilWd.Tick(time.Now())
	if nilWd.Incidents() != nil {
		t.Fatal("nil watchdog returned incidents")
	}
}

// TestWatchdogCaptureProfile pins the incident-profile contract: the hook is
// called with the configured duration, its bytes land on the incident (and
// survive the JSON round trip base64-encoded), and a failing hook drops only
// the attachment.
func TestWatchdogCaptureProfile(t *testing.T) {
	o := New(Config{Hists: true})
	epoch, durable := uint64(10), uint64(2)
	var gotDur time.Duration
	fake := []byte{0x1f, 0x8b, 0xde, 0xad}
	dir := t.TempDir()
	wd := o.NewWatchdog(WatchConfig{
		MaxDurableLag:   3,
		Cooldown:        time.Hour,
		IncidentDir:     dir,
		ProfileDuration: 123 * time.Millisecond,
		CaptureProfile: func(d time.Duration) ([]byte, error) {
			gotDur = d
			return fake, nil
		},
	}, fakeTargets(&epoch, &durable))
	wd.Tick(time.Now())

	incs := wd.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incidents, want 1", len(incs))
	}
	if gotDur != 123*time.Millisecond {
		t.Fatalf("capture duration = %v, want 123ms", gotDur)
	}
	if string(incs[0].CPUProfile) != string(fake) {
		t.Fatalf("incident profile = %x", incs[0].CPUProfile)
	}
	// The written file round-trips the profile through base64.
	files, _ := filepath.Glob(filepath.Join(dir, "incident-*.json"))
	if len(files) != 1 {
		t.Fatalf("incident files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var back Incident
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("incident file: %v", err)
	}
	if string(back.CPUProfile) != string(fake) {
		t.Fatalf("round-tripped profile = %x", back.CPUProfile)
	}

	// A failing hook must not suppress the incident itself.
	epoch2, durable2 := uint64(10), uint64(2)
	wd2 := o.NewWatchdog(WatchConfig{
		MaxDurableLag: 3,
		Cooldown:      time.Hour,
		CaptureProfile: func(time.Duration) ([]byte, error) {
			return nil, os.ErrDeadlineExceeded
		},
	}, fakeTargets(&epoch2, &durable2))
	wd2.Tick(time.Now())
	incs = wd2.Incidents()
	if len(incs) != 1 {
		t.Fatalf("failing hook: got %d incidents, want 1", len(incs))
	}
	if incs[0].CPUProfile != nil {
		t.Fatal("failing hook attached a profile")
	}
}
