package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerRecordAndFilter(t *testing.T) {
	tr := NewTracer(2, 16)
	base := time.Now()
	for e := uint64(1); e <= 5; e++ {
		tr.Record(CoordinatorCore, e, PhaseInit, base, time.Millisecond)
		tr.Record(0, e, PhaseExec, base.Add(time.Millisecond), 2*time.Millisecond)
		tr.Record(1, e, PhaseExec, base.Add(time.Millisecond), 2*time.Millisecond)
		base = base.Add(10 * time.Millisecond)
	}
	all := tr.Spans(0)
	if len(all) != 15 {
		t.Fatalf("spans = %d, want 15", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].Start {
			t.Fatalf("spans not sorted at %d", i)
		}
	}
	last2 := tr.Spans(2)
	if len(last2) != 6 {
		t.Fatalf("last-2-epochs spans = %d, want 6", len(last2))
	}
	for _, s := range last2 {
		if s.Epoch < 4 {
			t.Fatalf("epoch %d leaked into last-2 filter", s.Epoch)
		}
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(1, 8)
	for e := uint64(1); e <= 100; e++ {
		tr.Record(0, e, PhaseExec, time.Now(), time.Microsecond)
	}
	spans := tr.Spans(0)
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want ring size 8", len(spans))
	}
	for _, s := range spans {
		if s.Epoch <= 92 {
			t.Fatalf("ring retained stale epoch %d", s.Epoch)
		}
	}
}

func TestTracerOutOfRangeCoreAndNil(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Record(99, 1, PhaseExec, time.Now(), time.Microsecond) // clamps to coordinator ring
	tr.Record(CoordinatorCore, 1, PhaseInit, time.Now(), time.Microsecond)
	if got := len(tr.Spans(0)); got != 2 {
		t.Fatalf("spans = %d, want 2", got)
	}
	var nilTr *Tracer
	nilTr.Record(0, 1, PhaseExec, time.Now(), time.Microsecond)
	if s := nilTr.Spans(0); s != nil {
		t.Fatalf("nil tracer returned spans: %v", s)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(4, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Record(w, uint64(i), PhaseExec, time.Now(), time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		tr.Spans(4) // concurrent readers must be safe
	}
	wg.Wait()
	if got := len(tr.Spans(0)); got != 4*64 {
		t.Fatalf("retained %d spans, want %d", got, 4*64)
	}
}

// TestChromeTraceShape validates the exported JSON is a loadable
// trace_event document: a traceEvents array whose "X" events carry
// name/ts/dur/pid/tid and whose threads are named via "M" metadata.
func TestChromeTraceShape(t *testing.T) {
	tr := NewTracer(2, 16)
	now := time.Now()
	tr.Record(CoordinatorCore, 7, PhaseInit, now, time.Millisecond)
	tr.Record(0, 7, PhaseExec, now.Add(time.Millisecond), 2*time.Millisecond)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans(0)); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if ev["name"] == "" || ev["ts"] == nil || ev["pid"] == nil || ev["tid"] == nil {
				t.Fatalf("malformed X event: %v", ev)
			}
			args, ok := ev["args"].(map[string]any)
			if !ok || args["epoch"] != float64(7) {
				t.Fatalf("X event missing epoch arg: %v", ev)
			}
		case "M":
			mEvents++
		default:
			t.Fatalf("unexpected ph %v", ev["ph"])
		}
	}
	if xEvents != 2 || mEvents != 2 {
		t.Fatalf("events: %d X, %d M; want 2 and 2", xEvents, mEvents)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("want empty (non-null) traceEvents, got %v", doc.TraceEvents)
	}
}
