package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactPercentileRank mirrors HistSnapshot.Percentile's rank convention:
// rank = ceil(p/100 * n), 1-based.
func exactPercentileRank(n int, p float64) int {
	rank := int(float64(n) * p / 100)
	if float64(rank) < float64(n)*p/100 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// TestPercentileMatchesExact cross-checks the bucketed percentiles against
// exact sorted-slice percentiles on random workloads. Bucketing is a
// monotonic map, so the bucket of the exact k-th order statistic must equal
// the bucket the histogram reports for the same rank.
func TestPercentileMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		h := NewHist()
		vals := make([]time.Duration, n)
		for i := range vals {
			// Mix of scales: ns noise, µs txns, ms epochs.
			switch rng.Intn(3) {
			case 0:
				vals[i] = time.Duration(rng.Intn(1000))
			case 1:
				vals[i] = time.Duration(rng.Intn(1_000_000))
			default:
				vals[i] = time.Duration(rng.Intn(100_000_000))
			}
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		s := h.Snapshot()
		if s.Count != int64(n) {
			t.Fatalf("count = %d, want %d", s.Count, n)
		}
		for _, p := range []float64{50, 95, 99, 100} {
			exact := vals[exactPercentileRank(n, p)-1]
			wantBucket := bucketOf(exact)
			gotBucket := s.PercentileBucket(p)
			if gotBucket != wantBucket {
				t.Fatalf("trial %d p%v: bucket %d, want %d (exact %v)", trial, p, gotBucket, wantBucket, exact)
			}
			// The reported upper bound must bracket the exact value.
			upper := s.Percentile(p)
			if int64(exact) >= upper || int64(exact) < BucketLower(gotBucket) {
				t.Fatalf("trial %d p%v: exact %d outside [%d, %d)", trial, p, exact, BucketLower(gotBucket), upper)
			}
		}
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Percentile(50); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
	if got := empty.PercentileBucket(99); got != -1 {
		t.Fatalf("empty bucket = %d, want -1", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Fatalf("empty mean = %d, want 0", got)
	}

	// Single bucket: every observation identical.
	h := NewHist()
	for i := 0; i < 100; i++ {
		h.Observe(700 * time.Nanosecond) // bucket [512, 1024)
	}
	s := h.Snapshot()
	for _, p := range []float64{50, 95, 99, 100} {
		if got := s.Percentile(p); got != 1024 {
			t.Fatalf("p%v = %d, want 1024", p, got)
		}
	}
	if s.Max != 700 || s.Sum != 70000 {
		t.Fatalf("sum/max: %+v", s)
	}

	// Zero and negative durations land in bucket 0 with upper bound 1.
	h2 := NewHist()
	h2.Observe(0)
	h2.Observe(-5 * time.Nanosecond)
	s2 := h2.Snapshot()
	if s2.Buckets[0] != 2 || s2.Percentile(50) != 1 {
		t.Fatalf("zero bucket: %+v p50=%d", s2.Buckets[:2], s2.Percentile(50))
	}
}

func TestMergeAndSub(t *testing.T) {
	a, b := NewHist(), NewHist()
	for i := 0; i < 300; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	m := sa.Merge(sb)
	if m.Count != 600 || m.Sum != sa.Sum+sb.Sum || m.Max != sb.Max {
		t.Fatalf("merge: %+v", m)
	}
	// Merge must equal observing everything into one histogram.
	both := NewHist()
	for i := 0; i < 300; i++ {
		both.Observe(time.Duration(i) * time.Microsecond)
		both.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := both.Snapshot(); got.Buckets != m.Buckets {
		t.Fatalf("merged buckets diverge:\n got %v\nwant %v", got.Buckets, m.Buckets)
	}
	// Sub recovers the other operand's monotonic fields.
	d := m.Sub(sa)
	if d.Count != sb.Count || d.Sum != sb.Sum || d.Buckets != sb.Buckets {
		t.Fatalf("sub: %+v vs %+v", d, sb)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := NewHist()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(rng.Intn(10_000_000)))
	}
	s := h.Snapshot()
	back := s.JSON().Snapshot()
	if back.Count != s.Count || back.Sum != s.Sum || back.Max != s.Max || back.Buckets != s.Buckets {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", back, s)
	}
}

func TestNilHistSafe(t *testing.T) {
	var h *Hist
	h.Observe(time.Second)
	h.ObserveCore(3, time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot: %+v", s)
	}
}

func TestConcurrentObserve(t *testing.T) {
	h := NewHist()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveCore(w, time.Duration(i)*time.Nanosecond)
				h.Observe(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per*2 {
		t.Fatalf("count = %d, want %d", s.Count, workers*per*2)
	}
}
