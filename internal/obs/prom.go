package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition (format version 0.0.4) of the obs-owned
// instruments, so the future network serving layer is scrapeable out of the
// box. The endpoint renders only what the Obs itself owns — histograms,
// durable lag, attribution causes, device latency, txn-trace and flight
// counters — not host-registered Extra sources, which stay JSON-only on the
// stats endpoint. Histograms keep their native power-of-two bucket bounds,
// converted to cumulative `le` seconds as the exposition format requires.

// promHist writes one histogram family in exposition format.
func promHist(w io.Writer, name, help string, j HistJSON) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for _, b := range j.Buckets {
		cum += b.N
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n",
			name, strconv.FormatFloat(float64(b.LtNanos)/1e9, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, j.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(float64(j.SumNS)/1e9, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, j.Count)
}

func promCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func promGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
		name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
}

// WritePromMetrics renders the full exposition. Safe on a nil Obs (serves
// only the uptime-free constant families, i.e. nothing).
func (o *Obs) WritePromMetrics(w io.Writer) {
	if o == nil {
		return
	}
	s := o.Stats()
	promGauge(w, "nvcaracal_uptime_seconds", "Seconds since the obs layer started or was reset.", s.UptimeSeconds)
	promHist(w, "nvcaracal_txn_exec_seconds", "Per-transaction execution latency.", s.TxnExec)
	promHist(w, "nvcaracal_epoch_seconds", "Epoch end-to-end latency.", s.Epoch)

	phases := make([]string, 0, len(s.Phases))
	for ph := range s.Phases {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	fmt.Fprintf(w, "# HELP nvcaracal_phase_seconds Per-phase epoch latency.\n# TYPE nvcaracal_phase_seconds histogram\n")
	for _, ph := range phases {
		j := s.Phases[ph]
		var cum int64
		for _, b := range j.Buckets {
			cum += b.N
			fmt.Fprintf(w, "nvcaracal_phase_seconds_bucket{phase=%q,le=\"%s\"} %d\n",
				ph, strconv.FormatFloat(float64(b.LtNanos)/1e9, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "nvcaracal_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", ph, j.Count)
		fmt.Fprintf(w, "nvcaracal_phase_seconds_sum{phase=%q} %s\n", ph, strconv.FormatFloat(float64(j.SumNS)/1e9, 'g', -1, 64))
		fmt.Fprintf(w, "nvcaracal_phase_seconds_count{phase=%q} %d\n", ph, j.Count)
	}

	fmt.Fprintf(w, "# HELP nvcaracal_durable_lag_epochs Completed epochs by durable lag at completion.\n# TYPE nvcaracal_durable_lag_epochs counter\n")
	for i, n := range s.DurableLag {
		fmt.Fprintf(w, "nvcaracal_durable_lag_epochs{lag=\"%d\"} %d\n", i, n)
	}

	if s.Device != nil {
		promHist(w, "nvcaracal_device_read_seconds", "NVMM device read latency.", s.Device.Read)
		promHist(w, "nvcaracal_device_write_seconds", "NVMM device write latency.", s.Device.Write)
		promHist(w, "nvcaracal_device_flush_seconds", "NVMM device line-flush latency.", s.Device.Flush)
		promHist(w, "nvcaracal_device_fence_seconds", "NVMM device fence latency.", s.Device.Fence)
		promCounter(w, "nvcaracal_device_fence_stall_nanoseconds_total", "Cumulative time spent stalled in fences.", s.Device.FenceStallNanos)
	}

	if a := o.Attrib(); a != nil {
		snap := a.Snapshot()
		fmt.Fprintf(w, "# HELP nvcaracal_nvmm_line_writes_total NVMM line writes by attributed cause.\n# TYPE nvcaracal_nvmm_line_writes_total counter\n")
		for c := Cause(0); c < NumCauses; c++ {
			fmt.Fprintf(w, "nvcaracal_nvmm_line_writes_total{cause=%q} %d\n", c.String(), snap.PerCause[c].LineWrites)
		}
		fmt.Fprintf(w, "# HELP nvcaracal_nvmm_flushes_total NVMM line flushes by attributed cause.\n# TYPE nvcaracal_nvmm_flushes_total counter\n")
		for c := Cause(0); c < NumCauses; c++ {
			fmt.Fprintf(w, "nvcaracal_nvmm_flushes_total{cause=%q} %d\n", c.String(), snap.PerCause[c].Flushes)
		}
		fmt.Fprintf(w, "# HELP nvcaracal_nvmm_fences_total NVMM fences by attributed cause.\n# TYPE nvcaracal_nvmm_fences_total counter\n")
		for c := Cause(0); c < NumCauses; c++ {
			fmt.Fprintf(w, "nvcaracal_nvmm_fences_total{cause=%q} %d\n", c.String(), snap.PerCause[c].Fences)
		}
		promCounter(w, "nvcaracal_nvmm_logical_bytes_total", "Logical bytes written by transactions.", snap.LogicalBytes)
		promCounter(w, "nvcaracal_nvmm_committed_bytes_total", "Bytes of committed row payloads.", snap.CommittedBytes)
	}

	if tt := o.TxnTrace(); tt != nil {
		promCounter(w, "nvcaracal_txn_spans_sampled_total", "Transactions selected for lifecycle tracing.", int64(tt.SampledCount()))
		promCounter(w, "nvcaracal_txn_spans_published_total", "Lifecycle spans retired into the rings.", int64(tt.PublishedCount()))
	}
	promCounter(w, "nvcaracal_flight_events_retained", "Flight-recorder events currently retained.", int64(len(o.Flight().Events(0))))
}
