package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Phase classifies an epoch-processing span. The set mirrors where the
// paper says epoch time goes: initialization, execution, the persistence
// fences of the checkpoint, the two collectors, and recovery.
type Phase uint8

const (
	PhaseLog Phase = iota // input-log append + persist
	PhaseInit
	PhaseExec
	PhasePersist // checkpoint: counter/pool/journal flushes, fences, epoch record
	PhaseMinorGC
	PhaseMajorGC
	PhaseRecovery
	// PhaseCommit is the asynchronous committer stage of a pipelined epoch:
	// parallel pool-checkpoint staging, counter and index-journal stores,
	// the checkpoint fence, and the epoch record. Under a synchronous
	// commit this work is inside PhasePersist instead.
	PhaseCommit
	// NumPhases bounds phase-indexed iteration: valid phases are
	// Phase(0) <= p < NumPhases.
	NumPhases
)

// PhaseNames lists every phase label in enum order, the schema the stats
// payload and cmd/nvtop report against.
var PhaseNames = []string{"log", "init", "execute", "persist", "minor-gc", "major-gc", "recovery", "commit"}

func (p Phase) String() string {
	if int(p) < len(PhaseNames) {
		return PhaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// CoordinatorCore is the core hint for spans recorded by the epoch
// coordinator (the goroutine driving RunEpoch) rather than a worker core.
const CoordinatorCore = -1

// Span is one recorded phase interval.
type Span struct {
	Epoch uint64
	Phase Phase
	Core  int32 // CoordinatorCore for the epoch coordinator
	Start int64 // wall clock, nanoseconds since the Unix epoch
	Dur   int64 // nanoseconds
}

// traceRing is one core's fixed-size span ring. Records and snapshot reads
// are serialized by a per-ring mutex; rings are effectively single-writer
// (one engine worker), so the lock is uncontended on the record path.
type traceRing struct {
	mu      sync.Mutex
	spans   []Span
	next    int
	wrapped bool
	_       [40]byte // keep neighbouring rings off each other's line
}

func (r *traceRing) record(s Span) {
	r.mu.Lock()
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

func (r *traceRing) collect(out []Span) []Span {
	r.mu.Lock()
	if r.wrapped {
		out = append(out, r.spans[r.next:]...)
	}
	out = append(out, r.spans[:r.next]...)
	r.mu.Unlock()
	return out
}

// Tracer keeps one fixed-size span ring per worker core plus one for the
// epoch coordinator. Recording into a nil *Tracer is a no-op.
type Tracer struct {
	rings []traceRing // [0..cores-1] workers, [cores] coordinator
}

// NewTracer returns a tracer for the given worker-core count holding up to
// spansPerCore spans per ring (default 4096 when <= 0).
func NewTracer(cores, spansPerCore int) *Tracer {
	if cores < 1 {
		cores = 1
	}
	if spansPerCore <= 0 {
		spansPerCore = 4096
	}
	t := &Tracer{rings: make([]traceRing, cores+1)}
	for i := range t.rings {
		t.rings[i].spans = make([]Span, spansPerCore)
	}
	return t
}

// Reset discards every retained span.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		r.next = 0
		r.wrapped = false
		r.mu.Unlock()
	}
}

// Record stores one span. core selects the ring: worker cores index their
// own ring (modulo the ring count), anything out of range — including
// CoordinatorCore — lands in the coordinator ring.
func (t *Tracer) Record(core int, epoch uint64, phase Phase, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	workers := len(t.rings) - 1
	idx := core
	if core < 0 || core >= workers {
		idx = workers
	}
	t.rings[idx].record(Span{
		Epoch: epoch,
		Phase: phase,
		Core:  int32(core),
		Start: start.UnixNano(),
		Dur:   int64(dur),
	})
}

// Spans returns the retained spans of the last n epochs (all retained
// epochs when n <= 0), ordered by start time.
func (t *Tracer) Spans(n int) []Span {
	if t == nil {
		return nil
	}
	var all []Span
	for i := range t.rings {
		all = t.rings[i].collect(all)
	}
	if n > 0 {
		var maxEpoch uint64
		for _, s := range all {
			if s.Epoch > maxEpoch {
				maxEpoch = s.Epoch
			}
		}
		var low uint64
		if maxEpoch > uint64(n) {
			low = maxEpoch - uint64(n) + 1
		}
		kept := all[:0]
		for _, s := range all {
			if s.Epoch >= low {
				kept = append(kept, s)
			}
		}
		all = kept
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
	return all
}

// chromeEvent is one entry of the Chrome trace_event format ("X" complete
// events plus "M" thread-name metadata), loadable by chrome://tracing and
// Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the spans as Chrome trace_event JSON. Worker
// spans map to tid = core+1; coordinator spans map to tid 0.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	tids := map[int]bool{}
	for _, s := range spans {
		tid := 0
		if s.Core >= 0 {
			tid = int(s.Core) + 1
		}
		if !tids[tid] {
			tids[tid] = true
			name := "coordinator"
			if tid > 0 {
				name = fmt.Sprintf("core %d", tid-1)
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Phase.String(),
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"epoch": s.Epoch},
		})
	}
	return writeChrome(w, tr)
}

func writeChrome(w io.Writer, tr chromeTrace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
