package obs

import (
	"sync/atomic"
	"time"
)

// DeviceObs carries the device-level instruments internal/nvm records into:
// latency histograms for the read/write/flush/fence paths and a fence-stall
// counter accumulating the nanoseconds spent draining fences. It makes the
// simulated DRAM:NVMM gap visible — charged latency shows up in these
// histograms, not just in wall-clock totals.
//
// The observer is attached-but-disabled when built with NewDeviceObs(false):
// the device keeps its instrumentation call sites wired while On() short-
// circuits, which is what the disabled-overhead budget benchmarks measure
// against a device with no observer at all.
type DeviceObs struct {
	on bool

	Read  *Hist // ReadAt / Slice / Load64 / Load32
	Write *Hist // WriteAt / Zero / Store64 / Store32 / WriteFields
	Flush *Hist // Flush calls that touched at least one line
	Fence *Hist

	fenceStall atomic.Int64 // nanoseconds spent inside Fence
}

// NewDeviceObs returns a device observer; on=false yields the
// attached-but-disabled configuration.
func NewDeviceObs(on bool) *DeviceObs {
	o := &DeviceObs{on: on}
	if on {
		o.Read = NewHist()
		o.Write = NewHist()
		o.Flush = NewHist()
		o.Fence = NewHist()
	}
	return o
}

// On reports whether the observer records; nil-safe, and the only check the
// device's hot paths make.
func (o *DeviceObs) On() bool { return o != nil && o.on }

// AddFenceStall accumulates fence-drain time.
func (o *DeviceObs) AddFenceStall(d time.Duration) {
	if o == nil {
		return
	}
	o.fenceStall.Add(int64(d))
}

// FenceStallNanos returns the accumulated fence-drain nanoseconds.
func (o *DeviceObs) FenceStallNanos() int64 {
	if o == nil {
		return 0
	}
	return o.fenceStall.Load()
}

// Reset clears the device histograms and the fence-stall counter.
func (o *DeviceObs) Reset() {
	if o == nil {
		return
	}
	o.Read.Reset()
	o.Write.Reset()
	o.Flush.Reset()
	o.Fence.Reset()
	o.fenceStall.Store(0)
}

// DeviceJSON is the serving form of the device observer.
type DeviceJSON struct {
	Read            HistJSON `json:"read"`
	Write           HistJSON `json:"write"`
	Flush           HistJSON `json:"flush"`
	Fence           HistJSON `json:"fence"`
	FenceStallNanos int64    `json:"fence_stall_ns"`
}

// JSON folds the device histograms into their serving form; nil when the
// observer is absent or disabled.
func (o *DeviceObs) JSON() *DeviceJSON {
	if !o.On() {
		return nil
	}
	return &DeviceJSON{
		Read:            o.Read.Snapshot().JSON(),
		Write:           o.Write.Snapshot().JSON(),
		Flush:           o.Flush.Snapshot().JSON(),
		Fence:           o.Fence.Snapshot().JSON(),
		FenceStallNanos: o.FenceStallNanos(),
	}
}
