package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The anomaly watchdog is the third leg of the diagnosis stack: the flight
// recorder captures what happened, txn tracing captures where latency went,
// and the watchdog decides — while the process is still alive — that
// something is wrong and snapshots both, plus the histograms and NVMM
// attribution, into a JSON incident file. It is off by default
// (Config.Watch) and runs as one background goroutine sampling cheap
// engine-published gauges; it never touches the epoch hot path.

// Watch reasons, the stable `reason` strings of incident files.
const (
	ReasonDurableLag     = "durable-lag"
	ReasonCommitterStall = "committer-stall"
	ReasonEpochOutlier   = "epoch-outlier"
	ReasonFenceStall     = "fence-stall"
)

// WatchConfig arms the anomaly watchdog. The zero value of each field picks
// the documented default; a nil *WatchConfig in Config leaves the watchdog
// off entirely.
type WatchConfig struct {
	// Interval between evaluations (default 250ms).
	Interval time.Duration
	// MaxDurableLag is the durable-lag ceiling in epochs: an observed
	// Epoch()-DurableEpoch() at or above it triggers ReasonDurableLag
	// (default MaxDurableLag-1, i.e. 3 — beyond any healthy depth-1
	// pipeline).
	MaxDurableLag uint64
	// StallAfter triggers ReasonCommitterStall when the durable epoch has
	// not advanced for this long while at least one epoch is waiting to
	// become durable (default 2s).
	StallAfter time.Duration
	// EpochOutlierFactor triggers ReasonEpochOutlier when an epoch's
	// duration exceeds factor x the rolling median of recent epochs
	// (default 16; needs MinEpochSamples priors).
	EpochOutlierFactor float64
	// MinEpochSamples is the minimum rolling-window population before
	// outlier detection arms (default 16).
	MinEpochSamples int
	// FenceStallCeiling triggers ReasonFenceStall when the device's
	// cumulative fence-stall time grows by more than this much during one
	// interval (default 0: disabled; needs device observability).
	FenceStallCeiling time.Duration
	// IncidentDir receives incident JSON files; empty disables file output
	// (OnIncident still fires).
	IncidentDir string
	// Cooldown suppresses repeat incidents of the same reason (default 10s).
	Cooldown time.Duration
	// OnIncident, when non-nil, observes every incident (tests; hosts that
	// want to page instead of writing files).
	OnIncident func(Incident)
	// CaptureProfile, when non-nil, is invoked at incident time with
	// ProfileDuration and its result (a gzipped pprof CPU profile of the
	// anomaly in progress) is attached to the incident as cpu_profile. The
	// obs layer stays decoupled from the profiler: hosts wire
	// prof.Profiler.CaptureCPUBytes here (cmd/nvload does). Capture errors
	// — including a concurrent capture already holding the CPU profiler —
	// drop the attachment, never the incident.
	CaptureProfile func(time.Duration) ([]byte, error)
	// ProfileDuration bounds the incident profile capture (default 250ms —
	// long enough for ~25 samples at the default 100Hz, short enough not to
	// delay the incident file noticeably).
	ProfileDuration time.Duration
}

func (c WatchConfig) withDefaults() WatchConfig {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.MaxDurableLag == 0 {
		c.MaxDurableLag = MaxDurableLag - 1
	}
	if c.StallAfter <= 0 {
		c.StallAfter = 2 * time.Second
	}
	if c.EpochOutlierFactor <= 0 {
		c.EpochOutlierFactor = 16
	}
	if c.MinEpochSamples <= 0 {
		c.MinEpochSamples = 16
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.ProfileDuration <= 0 {
		c.ProfileDuration = 250 * time.Millisecond
	}
	return c
}

// WatchTargets are the engine gauges the watchdog samples. Hosts wire the
// engine's Epoch and DurableEpoch accessors here.
type WatchTargets struct {
	Epoch        func() uint64
	DurableEpoch func() uint64
}

// Incident is one watchdog trigger with its evidence snapshot.
type Incident struct {
	TSNanos      int64             `json:"ts_ns"`
	Seq          uint64            `json:"seq"`
	Reason       string            `json:"reason"`
	Detail       string            `json:"detail"`
	Epoch        uint64            `json:"epoch"`
	DurableEpoch uint64            `json:"durable_epoch"`
	DurableLag   []uint64          `json:"durable_lag"`
	EpochHist    *HistJSON         `json:"epoch_hist,omitempty"`
	TxnHist      *HistJSON         `json:"txn_hist,omitempty"`
	Attrib       *AttribJSON       `json:"attrib,omitempty"`
	Breakdown    *TxnBreakdownJSON `json:"txn_breakdown,omitempty"`
	Flight       []FlightEventJSON `json:"flight"`
	// CPUProfile is a gzipped pprof CPU profile captured while the anomaly
	// was live (WatchConfig.CaptureProfile; base64 in the JSON encoding).
	// Feed it to `go tool pprof` or `nvprof top` directly.
	CPUProfile []byte `json:"cpu_profile,omitempty"`
	File       string `json:"-"` // where the incident was written
}

// Watchdog is a running anomaly monitor. Obtain one via Obs.StartWatch.
type Watchdog struct {
	o       *Obs
	cfg     WatchConfig
	targets WatchTargets

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu        sync.Mutex
	seq       uint64
	lastFire  map[string]time.Time
	incidents []Incident

	// committer-stall tracking
	lastDurable   uint64
	durableSince  time.Time
	lastFenceNS   int64
	lastEpochTS   int64 // newest EvEpochEnd timestamp already considered
	epochDursNS   []int64
	epochDursNext int
	epochDursFull bool
}

// StartWatch arms the watchdog configured by Config.Watch against the given
// targets and starts its background loop. It returns nil — and arms nothing
// — when o is nil, no watch config was given, or targets are incomplete.
func (o *Obs) StartWatch(targets WatchTargets) *Watchdog {
	if o == nil || o.watchCfg == nil || targets.Epoch == nil || targets.DurableEpoch == nil {
		return nil
	}
	w := o.NewWatchdog(*o.watchCfg, targets)
	go w.run()
	return w
}

// NewWatchdog builds a watchdog without starting its loop; tests drive it
// synchronously via Tick.
func (o *Obs) NewWatchdog(cfg WatchConfig, targets WatchTargets) *Watchdog {
	return &Watchdog{
		o:        o,
		cfg:      cfg.withDefaults(),
		targets:  targets,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastFire: map[string]time.Time{},
	}
}

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			w.Tick(now)
		}
	}
}

// Stop terminates the background loop (nil-safe; idempotent; a Watchdog
// built by NewWatchdog and never started stops immediately too).
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
}

// Incidents returns the incidents fired so far, oldest first.
func (w *Watchdog) Incidents() []Incident {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Incident(nil), w.incidents...)
}

// Tick evaluates every armed detector once at the given instant. Exported so
// tests can drive the watchdog deterministically.
func (w *Watchdog) Tick(now time.Time) {
	if w == nil {
		return
	}
	epoch := w.targets.Epoch()
	durable := w.targets.DurableEpoch()

	// Durable-lag ceiling.
	if epoch > durable {
		if lag := epoch - durable; lag >= w.cfg.MaxDurableLag {
			w.fire(now, ReasonDurableLag, epoch, durable,
				fmt.Sprintf("durable lag %d epochs >= ceiling %d", lag, w.cfg.MaxDurableLag))
		}
	}

	// Committer stall: the durable epoch stopped advancing while work is
	// waiting to become durable.
	w.mu.Lock()
	if durable != w.lastDurable || w.durableSince.IsZero() {
		w.lastDurable = durable
		w.durableSince = now
	}
	stalled := epoch > durable && now.Sub(w.durableSince) >= w.cfg.StallAfter
	stallFor := now.Sub(w.durableSince)
	w.mu.Unlock()
	if stalled {
		w.fire(now, ReasonCommitterStall, epoch, durable,
			fmt.Sprintf("durable epoch %d unchanged for %v with epoch %d complete", durable, stallFor.Round(time.Millisecond), epoch))
	}

	// Epoch-duration outliers against a rolling median of recent epochs,
	// fed from the flight recorder's EvEpochEnd durations.
	if out, dur, med := w.scanEpochDurations(); out {
		w.fire(now, ReasonEpochOutlier, epoch, durable,
			fmt.Sprintf("epoch took %v vs rolling median %v (factor %.0f)", time.Duration(dur), time.Duration(med), w.cfg.EpochOutlierFactor))
	}

	// Fence-stall growth per interval.
	if w.cfg.FenceStallCeiling > 0 {
		if dev := w.o.Device(); dev != nil {
			cur := dev.FenceStallNanos()
			w.mu.Lock()
			delta := cur - w.lastFenceNS
			w.lastFenceNS = cur
			w.mu.Unlock()
			if delta > int64(w.cfg.FenceStallCeiling) {
				w.fire(now, ReasonFenceStall, epoch, durable,
					fmt.Sprintf("fence stall grew %v in one interval (ceiling %v)", time.Duration(delta), w.cfg.FenceStallCeiling))
			}
		}
	}
}

// scanEpochDurations folds EvEpochEnd events newer than the last scan into
// the rolling window and reports whether the newest duration is an outlier
// against the window median.
func (w *Watchdog) scanEpochDurations() (outlier bool, durNS, medianNS int64) {
	fl := w.o.Flight()
	if fl == nil {
		return false, 0, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.epochDursNS == nil {
		w.epochDursNS = make([]int64, 64)
	}
	evs := fl.Events(w.lastEpochTS + 1)
	for _, e := range evs {
		if e.Type != EvEpochEnd {
			continue
		}
		w.lastEpochTS = e.TS
		n := 0
		if w.epochDursFull {
			n = len(w.epochDursNS)
		} else {
			n = w.epochDursNext
		}
		if n >= w.cfg.MinEpochSamples {
			med := medianOf(w.epochDursNS, n)
			if med > 0 && float64(e.A) > w.cfg.EpochOutlierFactor*float64(med) {
				outlier, durNS, medianNS = true, e.A, med
			}
		}
		w.epochDursNS[w.epochDursNext] = e.A
		w.epochDursNext++
		if w.epochDursNext == len(w.epochDursNS) {
			w.epochDursNext = 0
			w.epochDursFull = true
		}
	}
	return outlier, durNS, medianNS
}

func medianOf(ring []int64, n int) int64 {
	tmp := make([]int64, n)
	copy(tmp, ring[:n])
	// insertion sort: n <= 64
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[len(tmp)/2]
}

// fire builds the incident (histograms + attribution + txn breakdown +
// flight tail), honors the per-reason cooldown, records an EvWatchTrigger
// flight event, writes the JSON file, and invokes the hook.
func (w *Watchdog) fire(now time.Time, reason string, epoch, durable uint64, detail string) {
	w.mu.Lock()
	if last, ok := w.lastFire[reason]; ok && now.Sub(last) < w.cfg.Cooldown {
		w.mu.Unlock()
		return
	}
	w.lastFire[reason] = now
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	w.o.Flight().Record(EvWatchTrigger, CoordinatorCore, epoch, int64(seq), 0)

	// Profile first, evidence second: the capture window samples the anomaly
	// while it is still in progress, and the flight tail snapshotted after it
	// then also covers the captured window.
	var cpuProfile []byte
	if w.cfg.CaptureProfile != nil {
		if b, err := w.cfg.CaptureProfile(w.cfg.ProfileDuration); err == nil {
			cpuProfile = b
		} else {
			fmt.Fprintf(os.Stderr, "watchdog: incident profile capture: %v\n", err)
		}
	}

	inc := Incident{
		TSNanos:      now.UnixNano(),
		Seq:          seq,
		Reason:       reason,
		Detail:       detail,
		Epoch:        epoch,
		DurableEpoch: durable,
		Flight:       w.o.Flight().JSON(10 * time.Second).Events,
		CPUProfile:   cpuProfile,
	}
	lag := w.o.DurableLagCounts()
	inc.DurableLag = lag[:]
	if s := w.o.EpochSnapshot(); s.Count > 0 {
		j := s.JSON()
		inc.EpochHist = &j
	}
	if s := w.o.TxnSnapshot(); s.Count > 0 {
		j := s.JSON()
		inc.TxnHist = &j
	}
	if a := w.o.Attrib(); a != nil {
		inc.Attrib = a.JSON()
	}
	if tt := w.o.TxnTrace(); tt != nil {
		b := Breakdown(tt.Spans())
		inc.Breakdown = &b
	}

	if w.cfg.IncidentDir != "" {
		name := fmt.Sprintf("incident-%s-%03d-%s.json",
			now.Format("20060102T150405.000"), seq, reason)
		path := filepath.Join(w.cfg.IncidentDir, name)
		if data, err := json.MarshalIndent(inc, "", "  "); err == nil {
			if err := os.WriteFile(path, data, 0o644); err == nil {
				inc.File = path
			} else {
				fmt.Fprintf(os.Stderr, "watchdog: writing incident: %v\n", err)
			}
		}
	}

	w.mu.Lock()
	w.incidents = append(w.incidents, inc)
	w.mu.Unlock()

	if w.cfg.OnIncident != nil {
		w.cfg.OnIncident(inc)
	}
}
