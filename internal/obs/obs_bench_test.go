package obs

import (
	"testing"
	"time"
)

// The disabled-instrumentation budget: a nil Obs / disabled DeviceObs must
// cost a few ns per call site at most, since the engine and device keep
// their instrumentation wired unconditionally.

func BenchmarkNilObsObserveTxn(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.ObserveTxn(i&63, time.Microsecond)
	}
}

func BenchmarkNilObsSpan(b *testing.B) {
	var o *Obs
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Span(i&63, uint64(i), PhaseExec, now)
	}
}

func BenchmarkDeviceObsOffCheck(b *testing.B) {
	off := NewDeviceObs(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if off.On() {
			b.Fatal("disabled observer reported on")
		}
	}
}

func BenchmarkNilDeviceObsCheck(b *testing.B) {
	var o *DeviceObs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if o.On() {
			b.Fatal("nil observer reported on")
		}
	}
}

// Enabled-path costs, for the docs: striped Observe and a traced span.

func BenchmarkHistObserveCore(b *testing.B) {
	h := NewHist()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.ObserveCore(i&63, time.Microsecond)
			i++
		}
	})
}

func BenchmarkHistObserveStriped(b *testing.B) {
	h := NewHist()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Microsecond)
		}
	})
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(8, 4096)
	now := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			tr.Record(i&7, uint64(i), PhaseExec, now, time.Microsecond)
			i++
		}
	})
}

func BenchmarkEnabledObsSpan(b *testing.B) {
	o := New(Config{Hists: true, Trace: true, Cores: 8})
	now := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Span(i&7, uint64(i), PhaseExec, now)
	}
}
