package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTxnTraceSamplingRatio(t *testing.T) {
	tt := NewTxnTrace(2, 4, 64)
	var hits int
	for i := 0; i < 100; i++ {
		if sp := tt.Sample(); sp != nil {
			hits++
			tt.Publish(sp)
		}
	}
	if hits != 25 {
		t.Fatalf("sampled %d of 100 at 1-in-4, want 25", hits)
	}
	if got := tt.SampledCount(); got != 25 {
		t.Fatalf("SampledCount = %d, want 25", got)
	}
	if got := tt.PublishedCount(); got != 25 {
		t.Fatalf("PublishedCount = %d, want 25", got)
	}
}

// TestTxnSpanPhases pins the decomposition and the zero-timestamp
// inheritance rule: a hand-batched txn with no submitter stamps must read
// zero queue/epoch-wait cost, not garbage.
func TestTxnSpanPhases(t *testing.T) {
	base := time.Now().UnixNano()
	s := TxnSpan{
		SubmitNS:  base,
		SealNS:    base + 10,
		AssignNS:  base + 30,
		ExecStart: base + 50,
		ExecEnd:   base + 150,
		StagedNS:  base + 250,
		DurableNS: base + 400,
	}
	ph := s.Phases()
	want := [NumTxnPhases]int64{10, 40, 100, 100, 150}
	if ph != want {
		t.Fatalf("phases = %v, want %v", ph, want)
	}
	if got := s.Total(); got != 400 {
		t.Fatalf("total = %d, want 400", got)
	}

	// Hand-batched: no submit/seal stamps. queue and the submit-side of
	// epoch-wait collapse to zero.
	h := TxnSpan{AssignNS: base, ExecStart: base + 20, ExecEnd: base + 70, StagedNS: base + 90, DurableNS: base + 100}
	hp := h.Phases()
	if hp[TxnQueue] != 0 {
		t.Fatalf("hand-batched queue phase = %d, want 0", hp[TxnQueue])
	}
	// epoch-wait must measure assign -> exec start, never exec-start minus
	// a zero seal stamp (that reads as a raw wall-clock timestamp and
	// overflows the breakdown's mean accumulator).
	if hp[TxnEpochWait] != 20 {
		t.Fatalf("hand-batched epoch-wait = %d, want 20", hp[TxnEpochWait])
	}
	if hp[TxnExecute] != 50 || hp[TxnEpochTail] != 20 || hp[TxnCommitLag] != 10 {
		t.Fatalf("hand-batched phases = %v", hp)
	}
	if got := h.Total(); got != 100 {
		t.Fatalf("hand-batched total = %d, want 100", got)
	}

	// A backwards timestamp (cross-core clock skew) clamps, never negative.
	b := TxnSpan{AssignNS: base, ExecStart: base - 5, ExecEnd: base + 10}
	for i, d := range b.Phases() {
		if d < 0 {
			t.Fatalf("phase %d negative under skew: %d", i, d)
		}
	}
}

func TestTxnTraceSpansOrderAndRings(t *testing.T) {
	tt := NewTxnTrace(2, 1, 4)
	for i := 0; i < 6; i++ {
		sp := tt.Sample()
		if sp == nil {
			t.Fatal("1-in-1 sampling returned nil")
		}
		sp.MarkAssign(uint64(1+i/3), uint64(i%3))
		sp.MarkExec(i%2, time.Now(), time.Microsecond, false)
		tt.Publish(sp)
	}
	spans := tt.Spans()
	if len(spans) != 6 {
		t.Fatalf("retained %d spans, want 6", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.Epoch > b.Epoch || (a.Epoch == b.Epoch && a.SID > b.SID) {
			t.Fatalf("spans out of (epoch, sid) order: %+v before %+v", a, b)
		}
	}
}

// TestTxnTraceConcurrent publishes from concurrent submitters while a reader
// drains the serving surface; the race detector is the assertion.
func TestTxnTraceConcurrent(t *testing.T) {
	tt := NewTxnTrace(4, 2, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := tt.Sample()
				sp.MarkSubmit()
				sp.MarkSeal()
				sp.MarkAssign(uint64(i), uint64(w))
				sp.MarkExec(w, time.Now(), time.Microsecond, i%7 == 0)
				tt.Publish(sp)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			j := tt.JSON()
			if j.Published < uint64(len(j.Spans)) {
				t.Errorf("published %d < served spans %d", j.Published, len(j.Spans))
				return
			}
			_ = Breakdown(tt.Spans())
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if tt.PublishedCount() == 0 {
		t.Fatal("nothing published under load")
	}
}

func TestBreakdownPercentiles(t *testing.T) {
	base := time.Now().UnixNano()
	var spans []TxnSpan
	for i := 1; i <= 100; i++ {
		spans = append(spans, TxnSpan{
			AssignNS:  base,
			ExecStart: base,
			ExecEnd:   base + int64(i)*1000, // 1µs..100µs execute
			StagedNS:  base + int64(i)*1000,
			DurableNS: base + int64(i)*1000,
		})
	}
	b := Breakdown(spans)
	if b.Spans != 100 {
		t.Fatalf("breakdown spans = %d, want 100", b.Spans)
	}
	exec := b.Phases[TxnExecute]
	if exec.Phase != "execute" {
		t.Fatalf("phase order broken: %+v", b.Phases)
	}
	if exec.P50NS != 50_000 || exec.MaxNS != 100_000 {
		t.Fatalf("execute stats off: %+v", exec)
	}
	if b.Total.P99NS < b.Total.P50NS {
		t.Fatalf("total percentiles inverted: %+v", b.Total)
	}
}

func TestTxnsJSONServingCap(t *testing.T) {
	tt := NewTxnTrace(1, 1, maxServedSpans*2)
	for i := 0; i < maxServedSpans+10; i++ {
		sp := tt.Sample()
		sp.MarkAssign(1, uint64(i))
		sp.MarkExec(0, time.Now(), time.Microsecond, false)
		tt.Publish(sp)
	}
	j := tt.JSON()
	if len(j.Spans) != maxServedSpans {
		t.Fatalf("served %d spans, want the cap %d", len(j.Spans), maxServedSpans)
	}
	if j.Breakdown.Spans != maxServedSpans+10 {
		t.Fatalf("breakdown folded %d spans, want all %d", j.Breakdown.Spans, maxServedSpans+10)
	}
}

func TestWriteChromeTraceWithTxns(t *testing.T) {
	base := time.Now()
	spans := []Span{{Core: CoordinatorCore, Epoch: 1, Phase: PhaseExec, Start: base.UnixNano(), Dur: int64(time.Millisecond)}}
	txns := []TxnSpan{{
		SID: 3, Epoch: 1, Core: 1,
		SubmitNS:  base.UnixNano(),
		SealNS:    base.Add(10 * time.Microsecond).UnixNano(),
		AssignNS:  base.Add(20 * time.Microsecond).UnixNano(),
		ExecStart: base.Add(30 * time.Microsecond).UnixNano(),
		ExecEnd:   base.Add(80 * time.Microsecond).UnixNano(),
		StagedNS:  base.Add(100 * time.Microsecond).UnixNano(),
		DurableNS: base.Add(200 * time.Microsecond).UnixNano(),
	}}
	var buf bytes.Buffer
	if err := WriteChromeTraceWithTxns(&buf, spans, txns); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var txnEvents, epochEvents, metas int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			metas++
		case ev.Ph == "X" && ev.Name == "txn-execute":
			txnEvents++
			if ev.Tid != 1001 {
				t.Fatalf("txn lane tid = %d, want 1001 (1000+core)", ev.Tid)
			}
		case ev.Ph == "X" && ev.Name == PhaseExec.String():
			epochEvents++
		}
	}
	if txnEvents != 1 || epochEvents != 1 || metas == 0 {
		t.Fatalf("trace shape off: txn=%d epoch=%d metas=%d\n%s", txnEvents, epochEvents, metas, buf.String())
	}
}

func TestNilTxnTrace(t *testing.T) {
	var tt *TxnTrace
	if sp := tt.Sample(); sp != nil {
		t.Fatal("nil tracer sampled")
	}
	tt.Publish(&TxnSpan{})
	tt.Publish(nil)
	tt.Reset()
	if tt.SampledCount() != 0 || tt.PublishedCount() != 0 || tt.SampleEvery() != 0 {
		t.Fatal("nil tracer counters non-zero")
	}
	if s := tt.Spans(); s != nil {
		t.Fatalf("nil tracer returned spans: %v", s)
	}
	var sp *TxnSpan
	sp.MarkSubmit()
	sp.MarkSeal()
	sp.MarkAssign(1, 2)
	sp.MarkExec(0, time.Now(), time.Second, true)
}

// BenchmarkNilTxnTraceSample is part of the disabled-overhead CI budget.
func BenchmarkNilTxnTraceSample(b *testing.B) {
	var tt *TxnTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := tt.Sample(); sp != nil {
			b.Fatal("nil tracer sampled")
		}
	}
}

func BenchmarkTxnTraceSampleMiss(b *testing.B) {
	tt := NewTxnTrace(4, 64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sp := tt.Sample(); sp != nil {
			tt.Publish(sp)
		}
	}
}
