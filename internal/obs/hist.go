package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// nBuckets is the number of power-of-two latency buckets. Bucket 0 holds
// zero-duration observations; bucket i (i >= 1) holds durations in
// [2^(i-1), 2^i) nanoseconds. 48 buckets cover up to ~3.9 days, far beyond
// any latency this engine produces.
const nBuckets = 48

// histStripes is the number of per-core histogram cells. Like
// metrics.Counters, observations from a known worker core go to that core's
// cell (modulo stripes); observations without a core hint pick a cell with a
// cheap per-thread random so concurrent recorders do not share a cache line.
const histStripes = 64

// bucketOf maps a duration to its bucket index. The mapping is monotonic
// non-decreasing, so order statistics of bucketed values equal the buckets
// of the raw order statistics — the property the percentile tests pin.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= nBuckets {
		return nBuckets - 1
	}
	return b
}

// BucketLower returns the inclusive lower bound of bucket i in nanoseconds.
func BucketLower(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketUpper returns the exclusive upper bound of bucket i in nanoseconds.
func BucketUpper(i int) int64 { return 1 << i }

// histCell is one stripe of a histogram.
type histCell struct {
	counts [nBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

func (c *histCell) observe(ns int64, bucket int) {
	c.counts[bucket].Add(1)
	c.sum.Add(ns)
	for {
		m := c.max.Load()
		if ns <= m || c.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// Hist is a striped, lock-free latency histogram with power-of-two buckets.
// All methods are safe for concurrent use and nil-safe: recording into a
// nil *Hist is a no-op costing a couple of nanoseconds, so instrumentation
// can stay compiled in and wired while disabled.
type Hist struct {
	cells [histStripes]histCell
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{} }

// Observe records one duration, picking a stripe with a cheap per-thread
// random source. Use ObserveCore when the caller knows its worker core.
func (h *Hist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.cells[rand.Uint64N(histStripes)].observe(int64(d), bucketOf(d))
}

// ObserveCore records one duration into the given core's stripe.
func (h *Hist) ObserveCore(core int, d time.Duration) {
	if h == nil {
		return
	}
	h.cells[uint(core)%histStripes].observe(int64(d), bucketOf(d))
}

// Reset clears every stripe. Not atomic with respect to concurrent
// Observe calls — observations racing a reset may land on either side —
// which is fine for its use (discarding a load phase before measuring).
func (h *Hist) Reset() {
	if h == nil {
		return
	}
	for i := range h.cells {
		c := &h.cells[i]
		for b := range c.counts {
			c.counts[b].Store(0)
		}
		c.sum.Store(0)
		c.max.Store(0)
	}
}

// Snapshot folds the stripes into an immutable snapshot.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.cells {
		c := &h.cells[i]
		for b := 0; b < nBuckets; b++ {
			n := c.counts[b].Load()
			s.Buckets[b] += n
			s.Count += n
		}
		s.Sum += c.sum.Load()
		if m := c.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// HistSnapshot is a folded, mergeable copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Max     int64 // nanoseconds
	Buckets [nBuckets]int64
}

// Merge returns the element-wise sum of two snapshots.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	return s
}

// Sub returns s - o for interval measurement of the monotonic fields. Max
// is not differentiable; the minuend's value is kept.
func (s HistSnapshot) Sub(o HistSnapshot) HistSnapshot {
	s.Count -= o.Count
	s.Sum -= o.Sum
	for i := range s.Buckets {
		s.Buckets[i] -= o.Buckets[i]
	}
	return s
}

// Percentile returns an upper bound (in nanoseconds) for the p-th
// percentile (0 < p <= 100): the exclusive upper edge of the bucket holding
// the rank-ceil(p/100*Count) smallest observation. The true value lies in
// [BucketLower(b), returned). Returns 0 for an empty snapshot.
func (s HistSnapshot) Percentile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(float64(s.Count) * p / 100)
	if float64(rank) < float64(s.Count)*p/100 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for b := 0; b < nBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			return BucketUpper(b)
		}
	}
	return BucketUpper(nBuckets - 1)
}

// PercentileBucket returns the bucket index holding the p-th percentile,
// mirroring Percentile's rank convention. Returns -1 for an empty snapshot.
func (s HistSnapshot) PercentileBucket(p float64) int {
	if s.Count == 0 {
		return -1
	}
	rank := int64(float64(s.Count) * p / 100)
	if float64(rank) < float64(s.Count)*p/100 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for b := 0; b < nBuckets; b++ {
		cum += s.Buckets[b]
		if cum >= rank {
			return b
		}
	}
	return nBuckets - 1
}

// Mean returns the mean observation in nanoseconds, or 0 when empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// HistBucket is one non-empty bucket in the JSON form.
type HistBucket struct {
	GeNanos int64 `json:"ge_ns"` // inclusive lower bound
	LtNanos int64 `json:"lt_ns"` // exclusive upper bound
	N       int64 `json:"n"`
}

// HistJSON is the serving-surface form of a histogram snapshot. Buckets
// carry only the non-empty cells so interval reporters (cmd/nvtop) can
// rebuild and difference full snapshots.
type HistJSON struct {
	Count   int64        `json:"count"`
	SumNS   int64        `json:"sum_ns"`
	MaxNS   int64        `json:"max_ns"`
	P50NS   int64        `json:"p50_ns"`
	P95NS   int64        `json:"p95_ns"`
	P99NS   int64        `json:"p99_ns"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// JSON converts a snapshot to its serving form.
func (s HistSnapshot) JSON() HistJSON {
	j := HistJSON{
		Count: s.Count,
		SumNS: s.Sum,
		MaxNS: s.Max,
		P50NS: s.Percentile(50),
		P95NS: s.Percentile(95),
		P99NS: s.Percentile(99),
	}
	for b, n := range s.Buckets {
		if n != 0 {
			j.Buckets = append(j.Buckets, HistBucket{GeNanos: BucketLower(b), LtNanos: BucketUpper(b), N: n})
		}
	}
	return j
}

// Snapshot rebuilds a HistSnapshot from the JSON form (percentile fields
// are recomputed from the buckets on demand).
func (j HistJSON) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: j.Count, Sum: j.SumNS, Max: j.MaxNS}
	for _, b := range j.Buckets {
		i := bucketOf(time.Duration(b.GeNanos))
		s.Buckets[i] += b.N
	}
	return s
}
