package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-transaction lifecycle tracing answers the question the aggregate
// histograms cannot: where does one slow transaction's latency actually go?
// A sampled transaction (1-in-N, default 1/64) carries a TxnSpan from the
// submitter's enqueue through batch seal, epoch assignment, execution, the
// checkpoint staging point, and finally the durable-epoch publish. The span
// travels with the transaction itself, so each stage stamps it without any
// shared-state coordination — the only synchronized structure is the
// per-core publish ring, written once per retired sampled transaction.
//
// The lifecycle decomposes into five phases:
//
//	queue      submit-enqueue -> batch seal   (waiting in the submitter)
//	epoch-wait batch seal     -> execute start (waiting for the epoch's turn)
//	execute    execute start  -> execute end
//	epoch-tail execute end    -> checkpoint staged (the epoch's other txns +
//	           checkpoint staging: the cost of epoch-batched commit)
//	commit-lag checkpoint staged -> durable (fence + epoch record; grows when
//	           the pipelined committer falls behind)
//
// Transactions injected below the submitter (hand-batched loads) have no
// submit/seal stamps; missing timestamps inherit the previous stage's, so
// their early phases read as zero rather than garbage.

// TxnSpan is one sampled transaction's lifecycle record. All timestamps are
// wall-clock nanoseconds since the Unix epoch; zero means "stage not seen".
type TxnSpan struct {
	SID       uint64
	Epoch     uint64
	Core      int32 // executing core; CoordinatorCore before execution
	Aborted   bool
	SubmitNS  int64 // enqueued at the submitter
	SealNS    int64 // batch sealed for dispatch
	AssignNS  int64 // SID assigned at epoch start
	ExecStart int64
	ExecEnd   int64
	StagedNS  int64 // checkpoint state staged, pre-fence
	DurableNS int64 // epoch record durable, durable epoch published
}

// MarkSubmit stamps the submit-enqueue time. Nil-safe, like every Mark.
func (s *TxnSpan) MarkSubmit() {
	if s != nil {
		s.SubmitNS = time.Now().UnixNano()
	}
}

// MarkSeal stamps the batch-seal time.
func (s *TxnSpan) MarkSeal() {
	if s != nil {
		s.SealNS = time.Now().UnixNano()
	}
}

// MarkAssign stamps epoch assignment.
func (s *TxnSpan) MarkAssign(epoch, sid uint64) {
	if s != nil {
		s.AssignNS = time.Now().UnixNano()
		s.Epoch = epoch
		s.SID = sid
	}
}

// MarkExec stamps the execution interval from its worker core.
func (s *TxnSpan) MarkExec(core int, start time.Time, dur time.Duration, aborted bool) {
	if s != nil {
		s.Core = int32(core)
		s.ExecStart = start.UnixNano()
		s.ExecEnd = s.ExecStart + int64(dur)
		s.Aborted = aborted
	}
}

// TxnPhase indexes the lifecycle decomposition.
type TxnPhase int

const (
	TxnQueue TxnPhase = iota
	TxnEpochWait
	TxnExecute
	TxnEpochTail
	TxnCommitLag
	NumTxnPhases
)

// TxnPhaseNames is the stable serving-surface order.
var TxnPhaseNames = [NumTxnPhases]string{
	"queue", "epoch-wait", "execute", "epoch-tail", "commit-lag",
}

func (p TxnPhase) String() string {
	if int(p) < len(TxnPhaseNames) {
		return TxnPhaseNames[p]
	}
	return fmt.Sprintf("txn-phase(%d)", int(p))
}

// Phases decomposes the span into per-phase durations. A zero timestamp
// inherits the previous stage's, so the missing phase contributes zero; the
// clamp guards against cross-core clock skew producing negative phases.
func (s TxnSpan) Phases() [NumTxnPhases]int64 {
	stamps := [...]int64{s.SubmitNS, s.SealNS, s.AssignNS, s.ExecStart, s.ExecEnd, s.StagedNS, s.DurableNS}
	// Leading zeros inherit the first observed stamp, not zero: a span that
	// entered the lifecycle late (hand-batched, no submit queue) must read
	// zero for the stages it skipped rather than a raw wall-clock epoch.
	prev := int64(0)
	for _, ts := range stamps {
		if ts != 0 {
			prev = ts
			break
		}
	}
	for i, ts := range stamps {
		if ts == 0 || ts < prev {
			stamps[i] = prev
		} else {
			prev = ts
		}
	}
	var out [NumTxnPhases]int64
	out[TxnQueue] = stamps[1] - stamps[0]
	out[TxnEpochWait] = stamps[3] - stamps[1] // seal -> exec start, spanning assignment
	out[TxnExecute] = stamps[4] - stamps[3]
	out[TxnEpochTail] = stamps[5] - stamps[4]
	out[TxnCommitLag] = stamps[6] - stamps[5]
	return out
}

// Total is the span's end-to-end latency from its first observed stage.
func (s TxnSpan) Total() int64 {
	var total int64
	for _, d := range s.Phases() {
		total += d
	}
	return total
}

// txnRing is one core's publish ring, same discipline as traceRing.
type txnRing struct {
	mu      sync.Mutex
	spans   []TxnSpan
	next    int
	wrapped bool
	_       [40]byte
}

func (r *txnRing) record(s TxnSpan) {
	r.mu.Lock()
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

func (r *txnRing) collect(out []TxnSpan) []TxnSpan {
	r.mu.Lock()
	if r.wrapped {
		out = append(out, r.spans[r.next:]...)
	}
	out = append(out, r.spans[:r.next]...)
	r.mu.Unlock()
	return out
}

// DefaultTxnSampleEvery is the default sampling period: 1 in 64.
const DefaultTxnSampleEvery = 64

// TxnTrace samples and retains transaction lifecycle spans. All methods are
// nil-safe.
type TxnTrace struct {
	every     uint64
	counter   atomic.Uint64
	sampled   atomic.Uint64
	published atomic.Uint64
	rings     []txnRing // [0..cores-1] workers, [cores] coordinator/unknown
}

// NewTxnTrace returns a tracer sampling 1-in-every transactions (default
// DefaultTxnSampleEvery when <= 0; 1 samples everything) and retaining up to
// perCore spans per ring (default 1024 when <= 0).
func NewTxnTrace(cores, every, perCore int) *TxnTrace {
	if cores < 1 {
		cores = 1
	}
	if every <= 0 {
		every = DefaultTxnSampleEvery
	}
	if perCore <= 0 {
		perCore = 1024
	}
	t := &TxnTrace{every: uint64(every), rings: make([]txnRing, cores+1)}
	for i := range t.rings {
		t.rings[i].spans = make([]TxnSpan, perCore)
	}
	return t
}

// SampleEvery returns the sampling period N (0 when t is nil).
func (t *TxnTrace) SampleEvery() uint64 {
	if t == nil {
		return 0
	}
	return t.every
}

// Sample decides whether the next transaction is traced. It returns a fresh
// span for 1-in-N callers and nil for the rest (and always nil on a nil
// receiver); the caller threads the span through the transaction's life and
// finally hands it back via Publish.
func (t *TxnTrace) Sample() *TxnSpan {
	if t == nil {
		return nil
	}
	if t.counter.Add(1)%t.every != 0 {
		return nil
	}
	t.sampled.Add(1)
	return &TxnSpan{Core: CoordinatorCore}
}

// Publish retires a completed span into its core's ring. Nil spans (the
// unsampled majority) are ignored, so call sites stay unconditional.
func (t *TxnTrace) Publish(s *TxnSpan) {
	if t == nil || s == nil {
		return
	}
	workers := len(t.rings) - 1
	idx := int(s.Core)
	if idx < 0 || idx >= workers {
		idx = workers
	}
	t.rings[idx].record(*s)
	t.published.Add(1)
}

// SampledCount returns how many transactions were selected for tracing.
func (t *TxnTrace) SampledCount() uint64 {
	if t == nil {
		return 0
	}
	return t.sampled.Load()
}

// PublishedCount returns how many spans were retired into the rings.
func (t *TxnTrace) PublishedCount() uint64 {
	if t == nil {
		return 0
	}
	return t.published.Load()
}

// Reset discards retained spans and counters; the sampling counter keeps
// running.
func (t *TxnTrace) Reset() {
	if t == nil {
		return
	}
	t.sampled.Store(0)
	t.published.Store(0)
	for i := range t.rings {
		r := &t.rings[i]
		r.mu.Lock()
		r.next = 0
		r.wrapped = false
		r.mu.Unlock()
	}
}

// Spans returns the retained spans ordered by epoch then SID. Slots never
// written (zero value: no stamps at all) are excluded.
func (t *TxnTrace) Spans() []TxnSpan {
	if t == nil {
		return nil
	}
	var all []TxnSpan
	for i := range t.rings {
		all = t.rings[i].collect(all)
	}
	kept := all[:0]
	for _, s := range all {
		if s.SubmitNS != 0 || s.AssignNS != 0 || s.ExecStart != 0 {
			kept = append(kept, s)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Epoch != kept[j].Epoch {
			return kept[i].Epoch < kept[j].Epoch
		}
		return kept[i].SID < kept[j].SID
	})
	return kept
}

// TxnPhaseStatJSON is one phase's latency summary in the breakdown.
type TxnPhaseStatJSON struct {
	Phase  string `json:"phase"`
	MeanNS int64  `json:"mean_ns"`
	P50NS  int64  `json:"p50_ns"`
	P95NS  int64  `json:"p95_ns"`
	P99NS  int64  `json:"p99_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// TxnBreakdownJSON is the tail-latency breakdown: where sampled transactions
// spend their time, phase by phase, plus the end-to-end summary.
type TxnBreakdownJSON struct {
	Spans  int                `json:"spans"`
	Phases []TxnPhaseStatJSON `json:"phases"`
	Total  TxnPhaseStatJSON   `json:"total"`
}

func phaseStat(name string, ds []int64) TxnPhaseStatJSON {
	st := TxnPhaseStatJSON{Phase: name}
	if len(ds) == 0 {
		return st
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	var sum int64
	for _, d := range ds {
		sum += d
	}
	pick := func(q float64) int64 {
		i := int(q * float64(len(ds)-1))
		return ds[i]
	}
	st.MeanNS = sum / int64(len(ds))
	st.P50NS = pick(0.50)
	st.P95NS = pick(0.95)
	st.P99NS = pick(0.99)
	st.MaxNS = ds[len(ds)-1]
	return st
}

// Breakdown folds the given spans into the tail-latency breakdown. Aborted
// transactions are included: their lifecycle cost is real.
func Breakdown(spans []TxnSpan) TxnBreakdownJSON {
	var per [NumTxnPhases][]int64
	var totals []int64
	for _, s := range spans {
		ph := s.Phases()
		for i, d := range ph {
			per[i] = append(per[i], d)
		}
		totals = append(totals, s.Total())
	}
	out := TxnBreakdownJSON{Spans: len(spans)}
	for p := TxnPhase(0); p < NumTxnPhases; p++ {
		out.Phases = append(out.Phases, phaseStat(p.String(), per[p]))
	}
	out.Total = phaseStat("total", totals)
	return out
}

// TxnSpanJSON is one span on the serving surface.
type TxnSpanJSON struct {
	SID       uint64 `json:"sid"`
	Epoch     uint64 `json:"epoch"`
	Core      int32  `json:"core"`
	Aborted   bool   `json:"aborted,omitempty"`
	SubmitNS  int64  `json:"submit_ns,omitempty"`
	SealNS    int64  `json:"seal_ns,omitempty"`
	AssignNS  int64  `json:"assign_ns,omitempty"`
	ExecStart int64  `json:"exec_start_ns,omitempty"`
	ExecEnd   int64  `json:"exec_end_ns,omitempty"`
	StagedNS  int64  `json:"staged_ns,omitempty"`
	DurableNS int64  `json:"durable_ns,omitempty"`
	TotalNS   int64  `json:"total_ns"`
}

// TxnsJSON is the /debug/nvcaracal/txns payload.
type TxnsJSON struct {
	SampleEvery uint64           `json:"sample_every"`
	Sampled     uint64           `json:"sampled"`
	Published   uint64           `json:"published"`
	Breakdown   TxnBreakdownJSON `json:"breakdown"`
	Spans       []TxnSpanJSON    `json:"spans"`
}

// maxServedSpans caps the raw spans included in the JSON payload; the
// breakdown still folds every retained span.
const maxServedSpans = 256

// JSON builds the serving payload from the current rings.
func (t *TxnTrace) JSON() TxnsJSON {
	spans := t.Spans()
	out := TxnsJSON{
		SampleEvery: t.SampleEvery(),
		Sampled:     t.SampledCount(),
		Published:   t.PublishedCount(),
		Breakdown:   Breakdown(spans),
	}
	serve := spans
	if len(serve) > maxServedSpans {
		serve = serve[len(serve)-maxServedSpans:]
	}
	out.Spans = make([]TxnSpanJSON, 0, len(serve))
	for _, s := range serve {
		out.Spans = append(out.Spans, TxnSpanJSON{
			SID: s.SID, Epoch: s.Epoch, Core: s.Core, Aborted: s.Aborted,
			SubmitNS: s.SubmitNS, SealNS: s.SealNS, AssignNS: s.AssignNS,
			ExecStart: s.ExecStart, ExecEnd: s.ExecEnd,
			StagedNS: s.StagedNS, DurableNS: s.DurableNS, TotalNS: s.Total(),
		})
	}
	return out
}

// WriteChromeTraceWithTxns writes epoch-phase spans and sampled transaction
// lifecycles into one Chrome trace_event JSON stream. Each txn lifecycle
// renders as consecutive "X" events on a per-core "txn core N" lane (tid =
// 1000+core; 999 for pre-execution/unknown), named by lifecycle phase, so a
// sampled transaction's queue/epoch-wait/execute/epoch-tail/commit-lag path
// lines up under the epoch-phase lanes it traversed.
func WriteChromeTraceWithTxns(w io.Writer, spans []Span, txns []TxnSpan) error {
	tr := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	tids := map[int]bool{}
	meta := func(tid int, name string) {
		if !tids[tid] {
			tids[tid] = true
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": name},
			})
		}
	}
	for _, s := range spans {
		tid := 0
		name := "coordinator"
		if s.Core >= 0 {
			tid = int(s.Core) + 1
			name = fmt.Sprintf("core %d", s.Core)
		}
		meta(tid, name)
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Phase.String(), Ph: "X",
			Ts: float64(s.Start) / 1e3, Dur: float64(s.Dur) / 1e3,
			Pid: 1, Tid: tid,
			Args: map[string]any{"epoch": s.Epoch},
		})
	}
	for _, t := range txns {
		tid := 999
		name := "txn (unassigned)"
		if t.Core >= 0 {
			tid = 1000 + int(t.Core)
			name = fmt.Sprintf("txn core %d", t.Core)
		}
		meta(tid, name)
		stamps := [...]int64{t.SubmitNS, t.SealNS, t.AssignNS, t.ExecStart, t.ExecEnd, t.StagedNS, t.DurableNS}
		prev := int64(0)
		for i, ts := range stamps {
			if ts == 0 || ts < prev {
				stamps[i] = prev
			} else {
				prev = ts
			}
		}
		phaseEnds := [NumTxnPhases]int64{stamps[1], stamps[3], stamps[4], stamps[5], stamps[6]}
		start := stamps[0]
		for p := TxnPhase(0); p < NumTxnPhases; p++ {
			end := phaseEnds[p]
			if end <= start {
				start = end
				continue
			}
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "txn-" + p.String(), Ph: "X",
				Ts: float64(start) / 1e3, Dur: float64(end-start) / 1e3,
				Pid: 1, Tid: tid,
				Args: map[string]any{"epoch": t.Epoch, "sid": t.SID},
			})
			start = end
		}
	}
	return writeChrome(w, tr)
}
