package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecordAndEvents(t *testing.T) {
	f := NewFlight(16)
	f.Record(EvEpochStart, CoordinatorCore, 1, 100, 0)
	f.Record(EvFence, CoordinatorCore, 1, int64(CausePersistFinal), 0)
	f.Record(EvEpochEnd, CoordinatorCore, 1, 12345, 99)
	f.Record(EvGCBegin, 3, 2, 7, 0)

	evs := f.Events(0)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not sorted by timestamp: %v then %v", evs[i-1].TS, evs[i].TS)
		}
	}
	byType := map[EventType]FlightEvent{}
	for _, e := range evs {
		byType[e.Type] = e
	}
	if e := byType[EvEpochEnd]; e.Epoch != 1 || e.A != 12345 || e.B != 99 {
		t.Fatalf("epoch-end payload mangled: %+v", e)
	}
	if e := byType[EvGCBegin]; e.Core != 3 || e.Epoch != 2 || e.A != 7 {
		t.Fatalf("gc-begin payload mangled: %+v", e)
	}
}

// TestFlightEventsSince checks the incremental read path the watchdog uses.
func TestFlightEventsSince(t *testing.T) {
	f := NewFlight(16)
	f.Record(EvEpochEnd, CoordinatorCore, 1, 10, 0)
	first := f.Events(0)
	if len(first) != 1 {
		t.Fatalf("got %d events, want 1", len(first))
	}
	f.Record(EvEpochEnd, CoordinatorCore, 2, 20, 0)
	later := f.Events(first[0].TS + 1)
	if len(later) != 1 || later[0].Epoch != 2 {
		t.Fatalf("incremental read returned %+v, want just epoch 2", later)
	}
}

// TestFlightWraparound overflows one stripe and checks the ring keeps the
// newest events.
func TestFlightWraparound(t *testing.T) {
	const per = 8
	f := NewFlight(per)
	// CoordinatorCore always lands in stripe 0.
	for i := 0; i < 3*per; i++ {
		f.Record(EvEpochStart, CoordinatorCore, uint64(i), 0, 0)
	}
	evs := f.Events(0)
	if len(evs) != per {
		t.Fatalf("retained %d events, want the stripe cap %d", len(evs), per)
	}
	for i, e := range evs {
		want := uint64(2*per + i)
		if e.Epoch != want {
			t.Fatalf("slot %d holds epoch %d, want %d (oldest must be evicted)", i, e.Epoch, want)
		}
	}
}

// TestFlightDumpUnderLoad hammers every stripe from concurrent writers while
// readers drain Dump and JSON; the race detector is the assertion.
func TestFlightDumpUnderLoad(t *testing.T) {
	f := NewFlight(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.Record(EventType(i%int(NumEvents)), w, uint64(i), int64(i), 0)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				f.Dump(&sb, time.Second)
				_ = f.JSON(time.Second)
				_ = f.Events(0)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if len(f.Events(0)) == 0 {
		t.Fatal("no events retained after load")
	}
}

func TestFlightDumpOnCrash(t *testing.T) {
	f := NewFlight(32)
	var sb strings.Builder
	f.SetCrashWriter(&sb)
	f.Record(EvEpochStart, CoordinatorCore, 9, 0, 0)
	f.DumpOnCrash("committer of epoch 9: boom")

	out := sb.String()
	if !strings.Contains(out, "committer of epoch 9: boom") {
		t.Fatalf("crash dump lacks the reason:\n%s", out)
	}
	if !strings.Contains(out, "epoch-start") {
		t.Fatalf("crash dump lacks the recorded events:\n%s", out)
	}
	var panics int
	for _, e := range f.Events(0) {
		if e.Type == EvPanic {
			panics++
		}
	}
	if panics != 1 {
		t.Fatalf("DumpOnCrash recorded %d panic events, want 1", panics)
	}
}

func TestFlightJSONPayload(t *testing.T) {
	f := NewFlight(32)
	f.Record(EvDurablePublish, CoordinatorCore, 4, 1000, 0)
	j := f.JSON(0)
	if len(j.Events) != 1 {
		t.Fatalf("got %d JSON events, want 1", len(j.Events))
	}
	e := j.Events[0]
	if e.Type != "durable-publish" || e.Epoch != 4 || e.TSNanos == 0 {
		t.Fatalf("JSON event mangled: %+v", e)
	}
	if e.Detail == "" {
		t.Fatal("JSON event has no rendered detail")
	}
}

// TestNilFlight pins the nil-safety contract every engine call site relies
// on.
func TestNilFlight(t *testing.T) {
	var f *Flight
	f.Record(EvEpochStart, 0, 1, 0, 0)
	f.Reset()
	f.DumpOnCrash("nothing")
	if evs := f.Events(0); evs != nil {
		t.Fatalf("nil flight returned events: %v", evs)
	}
	var sb strings.Builder
	f.Dump(&sb, time.Second)
	if j := f.JSON(0); len(j.Events) != 0 {
		t.Fatalf("nil flight JSON has events: %+v", j)
	}
}

// BenchmarkNilFlightRecord is part of the disabled-overhead CI budget: the
// nil path must stay a few nanoseconds.
func BenchmarkNilFlightRecord(b *testing.B) {
	var f *Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EvEpochStart, 0, 1, 0, 0)
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(EvEpochStart, 0, uint64(i), 0, 0)
	}
}
