// Package obs is the engine's observability layer: striped lock-free
// latency histograms, an epoch-phase span tracer exportable as Chrome
// trace_event JSON, device-level latency observability for internal/nvm,
// and an HTTP serving surface (/debug/nvcaracal/...).
//
// The layer is compiled in but off by default. Every recording entry point
// is nil-safe — a nil *Obs, *Hist, *Tracer, or *DeviceObs no-ops in a few
// nanoseconds — so the engine carries the instrumentation unconditionally
// and hosts opt in by passing an *Obs through core.Options / the facade
// Config. The paper's analysis is entirely about where epoch time goes
// (init vs execution vs persistence fences vs GC); this package is how the
// repo answers that question for its own numbers.
package obs

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Config selects which instruments an Obs carries. The zero value enables
// nothing; New(Config{}) still returns a usable (all-disabled) Obs.
type Config struct {
	// Hists enables the transaction-execution, epoch end-to-end, and
	// per-phase latency histograms.
	Hists bool
	// Trace enables the epoch-phase span tracer.
	Trace bool
	// TraceSpansPerCore caps each per-core span ring (default 4096).
	TraceSpansPerCore int
	// Device enables device-level latency histograms and the fence-stall
	// counter; wire the result to the device with nvm.WithObserver.
	Device bool
	// Attrib enables NVMM access attribution (per-cause counters, spatial
	// heatmap, write-amplification accounting); wire the result to the
	// device with nvm.WithAttrib.
	Attrib bool
	// AttribHeatBuckets caps the attribution heatmap resolution
	// (DefaultHeatBuckets when zero).
	AttribHeatBuckets int
	// TxnTrace enables sampled per-transaction lifecycle tracing.
	TxnTrace bool
	// TxnSampleEvery traces 1-in-N transactions (default
	// DefaultTxnSampleEvery; 1 traces everything).
	TxnSampleEvery int
	// TxnSpansPerCore caps each per-core txn-span ring (default 1024).
	TxnSpansPerCore int
	// FlightPerStripe caps each flight-recorder stripe (default 2048). The
	// flight recorder itself is always on: any Obs carries one.
	FlightPerStripe int
	// Watch arms the anomaly watchdog once a host calls StartWatch; nil
	// (the default) leaves it off.
	Watch *WatchConfig
	// Cores sizes the tracer's ring set (default GOMAXPROCS).
	Cores int
}

// MaxDurableLag bounds the durable-lag distribution: lags of MaxDurableLag
// or more epochs fold into the last bucket. A depth-1 pipeline never lags
// more than one epoch, so anything beyond is itself a finding.
const MaxDurableLag = 4

// Obs bundles the instruments of one engine instance.
type Obs struct {
	// startNS is the uptime-clock origin in UnixNano; atomic because Reset
	// (bench harnesses discarding a load phase) races live /stats and
	// /metrics scrapes.
	startNS atomic.Int64
	txn     *Hist // per-transaction execution latency
	epoch  *Hist // epoch end-to-end latency
	phases [NumPhases]*Hist
	tracer *Tracer
	dev    *DeviceObs
	attrib *Attrib

	// flight is the always-on event recorder; txns the sampled lifecycle
	// tracer (nil unless Config.TxnTrace); watchCfg the armed-but-idle
	// watchdog configuration consumed by StartWatch.
	flight   *Flight
	txns     *TxnTrace
	watchCfg *WatchConfig

	// durableLag counts completed epochs by Epoch()−DurableEpoch() at
	// completion time: bucket 0 when the commit retired in line, bucket 1
	// while an asynchronous or pipelined commit was still in flight.
	durableLag [MaxDurableLag]atomic.Uint64
	lagOn      bool
}

// New builds an Obs per the config.
func New(cfg Config) *Obs {
	if cfg.Cores <= 0 {
		cfg.Cores = runtime.GOMAXPROCS(0)
	}
	o := &Obs{}
	o.startNS.Store(time.Now().UnixNano())
	if cfg.Hists {
		o.txn = NewHist()
		o.epoch = NewHist()
		for i := range o.phases {
			o.phases[i] = NewHist()
		}
		o.lagOn = true
	}
	if cfg.Trace {
		o.tracer = NewTracer(cfg.Cores, cfg.TraceSpansPerCore)
	}
	if cfg.Device {
		o.dev = NewDeviceObs(true)
	}
	if cfg.Attrib {
		o.attrib = NewAttrib(cfg.AttribHeatBuckets)
	}
	o.flight = NewFlight(cfg.FlightPerStripe)
	if cfg.TxnTrace {
		o.txns = NewTxnTrace(cfg.Cores, cfg.TxnSampleEvery, cfg.TxnSpansPerCore)
	}
	o.watchCfg = cfg.Watch
	return o
}

// Flight returns the flight recorder (nil only when o is nil: every built
// Obs carries one).
func (o *Obs) Flight() *Flight {
	if o == nil {
		return nil
	}
	return o.flight
}

// TxnTrace returns the sampled transaction lifecycle tracer (nil when txn
// tracing is off or o is nil).
func (o *Obs) TxnTrace() *TxnTrace {
	if o == nil {
		return nil
	}
	return o.txns
}

// On reports whether any instrumentation is attached. The nil receiver
// returns false; engine hot paths gate their time.Now() calls on it.
func (o *Obs) On() bool { return o != nil }

// Device returns the device observer, or nil when device observability is
// off (or o is nil). Pass it to nvm.WithObserver.
func (o *Obs) Device() *DeviceObs {
	if o == nil {
		return nil
	}
	return o.dev
}

// Tracer returns the span tracer (nil when tracing is off or o is nil).
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// TxnTimed reports whether per-transaction latency is being recorded, so
// the execution loop only pays for time.Now() when it is.
func (o *Obs) TxnTimed() bool { return o != nil && o.txn != nil }

// ObserveTxn records one transaction's execution latency from its worker
// core.
func (o *Obs) ObserveTxn(core int, d time.Duration) {
	if o == nil {
		return
	}
	o.txn.ObserveCore(core, d)
}

// Span records one completed phase interval ending now: a tracer span plus
// the phase's histogram. Nil-safe.
func (o *Obs) Span(core int, epoch uint64, phase Phase, start time.Time) {
	if o == nil {
		return
	}
	o.spanAt(core, epoch, phase, start, time.Since(start))
}

// SpanAt records a phase interval with an explicit duration, for callers
// that already timed the interval (recovery stages, replayed epochs).
func (o *Obs) SpanAt(core int, epoch uint64, phase Phase, start time.Time, dur time.Duration) {
	if o == nil {
		return
	}
	o.spanAt(core, epoch, phase, start, dur)
}

func (o *Obs) spanAt(core int, epoch uint64, phase Phase, start time.Time, dur time.Duration) {
	o.tracer.Record(core, epoch, phase, start, dur)
	if h := o.phases[phase]; h != nil {
		if core >= 0 {
			h.ObserveCore(core, dur)
		} else {
			h.Observe(dur)
		}
	}
}

// RecordEpoch records one completed epoch from the coordinator: four
// consecutive phase spans (log, init, execute, persist) starting at start,
// the per-phase histograms, and the epoch end-to-end histogram. The engine
// already times each phase for EpochResult, so this call adds no clock
// reads to the epoch path.
func (o *Obs) RecordEpoch(epoch uint64, start time.Time, log, init, exec, persist time.Duration) {
	if o == nil {
		return
	}
	t := start
	for _, p := range []struct {
		phase Phase
		dur   time.Duration
	}{{PhaseLog, log}, {PhaseInit, init}, {PhaseExec, exec}, {PhasePersist, persist}} {
		o.spanAt(CoordinatorCore, epoch, p.phase, t, p.dur)
		t = t.Add(p.dur)
	}
	o.epoch.Observe(log + init + exec + persist)
}

// RecordCommit records one retired asynchronous commit stage — a committer
// span plus the commit-phase histogram. Safe to call from the committer
// goroutine concurrently with the coordinator's RecordEpoch.
func (o *Obs) RecordCommit(epoch uint64, start time.Time, dur time.Duration) {
	if o == nil {
		return
	}
	o.spanAt(CoordinatorCore, epoch, PhaseCommit, start, dur)
}

// ObserveDurableLag records one completed epoch's durable lag — the
// engine's Epoch()−DurableEpoch() sampled right after the epoch completed.
func (o *Obs) ObserveDurableLag(lag uint64) {
	if o == nil || !o.lagOn {
		return
	}
	if lag >= MaxDurableLag {
		lag = MaxDurableLag - 1
	}
	o.durableLag[lag].Add(1)
}

// DurableLagCounts returns the durable-lag distribution: index i counts
// epochs that completed with a lag of i (the last bucket folds overflows).
func (o *Obs) DurableLagCounts() [MaxDurableLag]uint64 {
	var c [MaxDurableLag]uint64
	if o == nil {
		return c
	}
	for i := range c {
		c[i] = o.durableLag[i].Load()
	}
	return c
}

// Reset clears every attached instrument and restarts the uptime clock.
// Hosts use it to discard a data-loading phase before a measured run
// (internal/bench's obs report). Racing recorders are tolerated, not
// synchronized — see Hist.Reset.
func (o *Obs) Reset() {
	if o == nil {
		return
	}
	o.startNS.Store(time.Now().UnixNano())
	o.txn.Reset()
	o.epoch.Reset()
	for _, h := range o.phases {
		h.Reset()
	}
	for i := range o.durableLag {
		o.durableLag[i].Store(0)
	}
	o.tracer.Reset()
	o.dev.Reset()
	o.attrib.Reset()
	o.flight.Reset()
	o.txns.Reset()
}

// PhaseSnapshot returns the folded histogram of one phase.
func (o *Obs) PhaseSnapshot(p Phase) HistSnapshot {
	if o == nil {
		return HistSnapshot{}
	}
	return o.phases[p].Snapshot()
}

// TxnSnapshot returns the folded transaction-latency histogram.
func (o *Obs) TxnSnapshot() HistSnapshot {
	if o == nil {
		return HistSnapshot{}
	}
	return o.txn.Snapshot()
}

// EpochSnapshot returns the folded epoch end-to-end histogram.
func (o *Obs) EpochSnapshot() HistSnapshot {
	if o == nil {
		return HistSnapshot{}
	}
	return o.epoch.Snapshot()
}
