package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildPromObs assembles an Obs with every instrument armed and a little
// traffic through each, so the exposition exercises all families.
func buildPromObs(t *testing.T) *Obs {
	t.Helper()
	o := New(Config{Hists: true, Device: true, Attrib: true, TxnTrace: true, TxnSampleEvery: 1, Cores: 2})
	o.ObserveTxn(0, 2*time.Millisecond)
	o.ObserveTxn(1, 4*time.Millisecond)
	o.RecordEpoch(3, time.Now().Add(-time.Millisecond), 100*time.Microsecond, 100*time.Microsecond, 700*time.Microsecond, 100*time.Microsecond)
	o.ObserveDurableLag(1)
	d := o.Device()
	d.Read.Observe(200 * time.Nanosecond)
	d.Write.Observe(400 * time.Nanosecond)
	d.Flush.Observe(600 * time.Nanosecond)
	d.Fence.Observe(800 * time.Nanosecond)
	d.AddFenceStall(time.Microsecond)
	a := o.Attrib()
	a.InitSpace(1024)
	a.RecordWrite(CauseWALAppend, 1, 2, 128)
	a.RecordFlush(CauseWALAppend, 1)
	a.RecordFence(CausePersistFinal)
	a.AddLogicalWrite(0, 64, 1)
	a.AddCommitted(0, 64)
	sp := o.TxnTrace().Sample()
	sp.MarkAssign(3, 0)
	sp.MarkExec(0, time.Now(), time.Millisecond, false)
	o.TxnTrace().Publish(sp)
	o.Flight().Record(EvEpochEnd, CoordinatorCore, 3, int64(time.Millisecond), 10)
	return o
}

// TestPromGoldenParse holds the whole exposition to the 0.0.4 text format:
// every non-comment line is `name[{labels}] value` with a parseable float,
// every family is declared by a TYPE comment before its samples, and all
// names carry the nvcaracal_ namespace.
func TestPromGoldenParse(t *testing.T) {
	var sb strings.Builder
	buildPromObs(t).WritePromMetrics(&sb)
	out := sb.String()

	typed := map[string]string{} // family -> type
	var samples int
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("malformed comment line: %q", line)
			}
			if f[1] == "TYPE" {
				typed[f[2]] = f[3]
			}
			continue
		}
		samples++
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("sample line is not `name value`: %q", line)
		}
		if _, err := strconv.ParseFloat(f[1], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		name := f[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		if !strings.HasPrefix(name, "nvcaracal_") {
			t.Fatalf("sample outside the namespace: %q", line)
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if h := strings.TrimSuffix(name, suf); h != name && typed[h] == "histogram" {
				family = h
			}
		}
		if _, ok := typed[family]; !ok {
			t.Fatalf("sample %q has no preceding TYPE declaration", line)
		}
	}
	if samples == 0 {
		t.Fatal("exposition is empty")
	}
	for _, want := range []string{
		"nvcaracal_uptime_seconds", "nvcaracal_txn_exec_seconds",
		"nvcaracal_epoch_seconds", "nvcaracal_phase_seconds",
		"nvcaracal_durable_lag_epochs", "nvcaracal_device_fence_seconds",
		"nvcaracal_nvmm_line_writes_total", "nvcaracal_txn_spans_published_total",
		"nvcaracal_flight_events_retained",
	} {
		if _, ok := typed[want]; !ok {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}

// TestPromHistogramShape checks the exposition's histogram invariants:
// cumulative le buckets are monotonic, and the +Inf bucket equals _count.
func TestPromHistogramShape(t *testing.T) {
	var sb strings.Builder
	buildPromObs(t).WritePromMetrics(&sb)

	const fam = "nvcaracal_txn_exec_seconds"
	var prev int64 = -1
	var inf, count int64 = -1, -1
	var sum string
	for _, line := range strings.Split(sb.String(), "\n") {
		switch {
		case strings.HasPrefix(line, fam+"_bucket{le=\"+Inf\"}"):
			inf, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		case strings.HasPrefix(line, fam+"_bucket"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("cumulative buckets went backwards at %q (prev %d)", line, prev)
			}
			// The le bound itself must be a float Prometheus accepts.
			le := line[strings.Index(line, `le="`)+4:]
			le = le[:strings.IndexByte(le, '"')]
			if _, err := strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("unparseable le bound in %q: %v", line, err)
			}
			prev = v
		case strings.HasPrefix(line, fam+"_sum"):
			sum = strings.Fields(line)[1]
		case strings.HasPrefix(line, fam+"_count"):
			count, _ = strconv.ParseInt(strings.Fields(line)[1], 10, 64)
		}
	}
	if count != 2 {
		t.Fatalf("%s_count = %d, want 2 observations", fam, count)
	}
	if inf != count {
		t.Fatalf("+Inf bucket %d != count %d", inf, count)
	}
	if s, err := strconv.ParseFloat(sum, 64); err != nil || s <= 0 {
		t.Fatalf("%s_sum = %q, want positive float", fam, sum)
	}
}

func TestPromNilObs(t *testing.T) {
	var o *Obs
	var sb strings.Builder
	o.WritePromMetrics(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil obs wrote an exposition:\n%s", sb.String())
	}
}
