package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testObs() *Obs {
	o := New(Config{Hists: true, Trace: true, Device: true, Cores: 2})
	start := time.Now().Add(-10 * time.Millisecond)
	o.RecordEpoch(3, start, time.Millisecond, 2*time.Millisecond, 5*time.Millisecond, 2*time.Millisecond)
	o.ObserveTxn(0, 40*time.Microsecond)
	o.ObserveTxn(1, 60*time.Microsecond)
	o.Span(0, 3, PhaseMinorGC, time.Now().Add(-time.Microsecond))
	o.Device().Fence.Observe(time.Microsecond)
	o.Device().AddFenceStall(time.Microsecond)
	return o
}

func TestStatsPayload(t *testing.T) {
	o := testObs()
	p := o.Stats()
	if p.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", p.UptimeSeconds)
	}
	if p.Epoch.Count != 1 || p.TxnExec.Count != 2 {
		t.Fatalf("epoch/txn counts: %+v %+v", p.Epoch, p.TxnExec)
	}
	for _, name := range []string{"log", "init", "execute", "persist"} {
		if p.Phases[name].Count != 1 {
			t.Fatalf("phase %s count = %d, want 1", name, p.Phases[name].Count)
		}
	}
	if p.Phases["minor-gc"].Count != 1 {
		t.Fatalf("minor-gc count = %d", p.Phases["minor-gc"].Count)
	}
	if p.Device == nil || p.Device.Fence.Count != 1 || p.Device.FenceStallNanos != 1000 {
		t.Fatalf("device: %+v", p.Device)
	}
	// Epoch total must equal the sum of the four epoch phases.
	if p.Epoch.SumNS != 10_000_000 {
		t.Fatalf("epoch sum = %d, want 10ms", p.Epoch.SumNS)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	h := NewHandler(testObs())
	h.AddSource("engine", func() any { return map[string]int{"rows": 42} })

	// Stats endpoint round-trips through the published schema.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", StatsPath, nil))
	if rec.Code != 200 {
		t.Fatalf("stats status %d", rec.Code)
	}
	var p StatsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("stats not schema-valid: %v", err)
	}
	if p.Epoch.Count != 1 || len(p.Phases) == 0 {
		t.Fatalf("payload: %+v", p)
	}
	var engine map[string]int
	if err := json.Unmarshal(p.Extra["engine"], &engine); err != nil || engine["rows"] != 42 {
		t.Fatalf("extra source: %v %v", engine, err)
	}

	// Trace endpoint serves a valid trace_event document, filtered.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", TracePath+"?epochs=5", nil))
	if rec.Code != 200 {
		t.Fatalf("trace status %d", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Attrib endpoint serves the attribution payload when the instrument is
	// attached.
	ao := New(Config{Attrib: true})
	ao.Attrib().InitSpace(128)
	ao.Attrib().SetRegions([]Region{{Name: "wal", Off: 0, Len: 64 * 128}})
	ao.Attrib().RecordWrite(CauseWALAppend, 3, 2, 100)
	ao.Attrib().RecordFlush(CauseWALAppend, 3)
	ah := NewHandler(ao)
	rec = httptest.NewRecorder()
	ah.ServeHTTP(rec, httptest.NewRequest("GET", AttribPath, nil))
	if rec.Code != 200 {
		t.Fatalf("attrib status %d", rec.Code)
	}
	var aj AttribJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &aj); err != nil {
		t.Fatalf("attrib not schema-valid: %v", err)
	}
	if aj.PerCause["wal-append"].LineWrites != 2 {
		t.Fatalf("attrib payload: %+v", aj.PerCause)
	}
	if len(aj.Heatmap.Regions) != 1 || aj.Heatmap.Regions[0].LineWrites != 2 {
		t.Fatalf("attrib heatmap: %+v", aj.Heatmap)
	}

	// Bad query and unknown path.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", TracePath+"?epochs=x", nil))
	if rec.Code != 400 {
		t.Fatalf("bad epochs: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/nvcaracal/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path: status %d, want 404", rec.Code)
	}
}

func TestHandlerNilObs(t *testing.T) {
	h := NewHandler(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", StatsPath, nil))
	if rec.Code != 200 {
		t.Fatalf("nil-obs stats status %d", rec.Code)
	}
	var p StatsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", TracePath, nil))
	if rec.Code != 200 {
		t.Fatalf("nil-obs trace status %d", rec.Code)
	}
	// Attrib endpoint degrades to a null document without the instrument.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", AttribPath, nil))
	if rec.Code != 200 {
		t.Fatalf("nil-obs attrib status %d", rec.Code)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("nil-obs attrib not valid JSON: %v", err)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	h := NewHandler(testObs())
	h.PublishExpvar("nvcaracal-test")
	h.PublishExpvar("nvcaracal-test") // second publish must not panic
}

func TestNilObsAccessors(t *testing.T) {
	var o *Obs
	if o.On() || o.TxnTimed() {
		t.Fatal("nil obs reports enabled")
	}
	o.ObserveTxn(0, time.Second)
	o.Span(0, 1, PhaseExec, time.Now())
	o.RecordEpoch(1, time.Now(), 1, 1, 1, 1)
	if o.Device() != nil || o.Tracer() != nil {
		t.Fatal("nil obs returned instruments")
	}
	if s := o.Stats(); s.Epoch.Count != 0 {
		t.Fatalf("nil stats: %+v", s)
	}
	if s := o.TxnSnapshot(); s.Count != 0 {
		t.Fatalf("nil txn snapshot: %+v", s)
	}
}

// TestHandlerErrorPaths covers the failure branches the smoke jobs lean on:
// unknown endpoints must 404 (not fall through to an empty 200), malformed
// query parameters must 400 with a usable message, and well-formed edge
// values must not.
func TestHandlerErrorPaths(t *testing.T) {
	h := NewHandler(testObs())
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	for _, path := range []string{
		"/debug/nvcaracal/nosuch",
		StatsPath + "/extra",
		"/debug/nvcaracal/",
		"/",
	} {
		if rec := get(path); rec.Code != 404 {
			t.Fatalf("%s: status %d, want 404", path, rec.Code)
		}
	}

	for _, path := range []string{
		TracePath + "?epochs=abc",
		TracePath + "?epochs=1.5",
		TracePath + "?epochs=", // empty value parses as unset? no: "" means absent
		FlightPath + "?last=abc",
		FlightPath + "?last=5", // bare number is not a duration
	} {
		rec := get(path)
		want := 400
		if path == TracePath+"?epochs=" {
			// An empty parameter means "unfiltered", same as omitting it.
			want = 200
		}
		if rec.Code != want {
			t.Fatalf("%s: status %d, want %d", path, rec.Code, want)
		}
	}

	// Edge values that must parse: zero and negative epochs select "all",
	// large values are harmlessly clamped by the ring.
	for _, path := range []string{
		TracePath + "?epochs=0",
		TracePath + "?epochs=-1",
		TracePath + "?epochs=999999",
		FlightPath + "?last=0s",
	} {
		if rec := get(path); rec.Code != 200 {
			t.Fatalf("%s: status %d, want 200 (%s)", path, rec.Code, rec.Body.String())
		}
	}
}

// TestHandlerConcurrentReset scrapes /metrics (and the JSON endpoints) while
// Reset and the recording paths run concurrently: the handler must stay
// race-free and keep serving parseable documents. Run under -race in CI.
func TestHandlerConcurrentReset(t *testing.T) {
	o := testObs()
	h := NewHandler(o)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o.RecordEpoch(uint64(i), time.Now().Add(-time.Millisecond), 1, 1, 1, 1)
			o.ObserveTxn(i%2, time.Microsecond)
			if i%7 == 0 {
				o.Reset()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			o.Reset()
		}
	}()
	for i := 0; i < 50; i++ {
		for _, path := range []string{MetricsPath, StatsPath, TracePath} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != 200 {
				t.Fatalf("%s during reset: status %d", path, rec.Code)
			}
			if path == MetricsPath {
				for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
					if line == "" || strings.HasPrefix(line, "#") {
						continue
					}
					if len(strings.Fields(line)) != 2 {
						t.Fatalf("malformed metrics line during reset: %q", line)
					}
				}
			} else {
				var v any
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					t.Fatalf("%s during reset: invalid JSON: %v", path, err)
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}
