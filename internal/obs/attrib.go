package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Cause classifies why an NVMM device access happened. The engine threads a
// Cause through every device call site (via nvm.Tagged), so the attribution
// layer can decompose raw line traffic into the paper's categories: final
// version persists vs. WAL epoch appends vs. GC rewrites vs. recovery
// replay. CauseOther is the catch-all for untagged sites (checkpoint
// metadata such as the persistent counters and the epoch record, digests,
// reads issued by transaction execution).
type Cause uint8

const (
	CauseOther Cause = iota
	// CausePersistFinal: persisting a row's final committed version for the
	// epoch (row descriptor + value writes in persistFinal / dropRow).
	CausePersistFinal
	// CauseIntermediate: persisting an intermediate (non-final) version —
	// zero in dual-version modes by construction; nonzero only in the
	// persist-every-write counterfactual modes (Hybrid, AllNVMM scratch).
	CauseIntermediate
	// CauseWALAppend: the per-epoch write-ahead log append.
	CauseWALAppend
	// CauseIdxJournal: index-journal epoch appends and checkpoint control.
	CauseIdxJournal
	// CauseMinorGC: inline minor GC — shifting a row's v2 descriptor into
	// the v1 slot before installing the new final version.
	CauseMinorGC
	// CauseMajorGC: the epoch-boundary major GC pass over deferred
	// version frees.
	CauseMajorGC
	// CauseRecovery: post-crash work — WAL reads, the recovery row scan,
	// repairs, version reverts, index-journal recovery.
	CauseRecovery
	// CauseAlloc: allocator and format traffic — device formatting, row
	// header initialization, free-ring reads/writes, pool checkpoints.
	CauseAlloc

	NumCauses = iota
)

var causeNames = [NumCauses]string{
	"other",
	"persist-final",
	"intermediate-persist",
	"wal-append",
	"index-journal",
	"minor-gc",
	"major-gc",
	"recovery",
	"alloc",
}

// String returns the stable JSON/report name of the cause.
func (c Cause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "invalid"
}

// AttribLineSize mirrors nvm.LineSize. obs sits below nvm in the import
// graph, so the constant is duplicated; internal/nvm pins the two equal
// with a test.
const AttribLineSize = 64

// attribStripes is the stripe count for the per-cause cells and the
// write-amplification cells, matching the device's own stat striping.
const attribStripes = 64

// DefaultHeatBuckets is the heatmap resolution used when Config
// leaves AttribHeatBuckets zero.
const DefaultHeatBuckets = 256

// maxEpochWindows bounds the per-epoch write-amplification ring.
const maxEpochWindows = 64

// causeCell is one stripe's counters for one cause, padded to a cache line
// so stripes don't false-share.
type causeCell struct {
	lineReads     atomic.Int64
	lineWrites    atomic.Int64
	bytesRead     atomic.Int64
	bytesWritten  atomic.Int64
	flushes       atomic.Int64
	flushesElided atomic.Int64
	fences        atomic.Int64
	_             [1]int64
}

// wampCell is one core stripe of the logical-write accounting the engine
// reports from its commit path.
type wampCell struct {
	logicalBytes        atomic.Int64 // value bytes of every row write (incl. intermediates)
	logicalWrites       atomic.Int64 // row writes (incl. intermediates)
	committedBytes      atomic.Int64 // value bytes of final versions persisted
	committedRows       atomic.Int64 // final versions persisted
	counterfactualLines atomic.Int64 // lines a persist-every-write design would write
	_                   [3]int64
}

type heatState struct {
	bucketLines int64
	counts      []atomic.Int64
}

type regionEntry struct {
	name       string
	start, end int64 // line numbers, [start, end)
}

type regionTable struct {
	entries  []regionEntry
	writes   []atomic.Int64 // parallel to entries
	unmapped atomic.Int64
}

// Region names a byte range of the device address space (a pmem layout
// region). Attrib maps line writes back onto these for the spatial
// breakdown; per-core regions may share a name and are merged at export.
type Region struct {
	Name string
	Off  int64 // bytes
	Len  int64 // bytes
}

// Attrib is the NVMM access-attribution instrument: striped per-cause
// line/byte/flush counters, a spatial line-write heatmap over the device
// address space with a named-region mapping, and write-amplification
// accounting (logical row bytes vs. lines actually written, per epoch and
// cumulative, plus the persist-every-write counterfactual). All entry
// points are nil-safe; the device and engine carry a possibly-nil *Attrib
// and pay a nil check when it is off.
type Attrib struct {
	heatBuckets int

	cells [attribStripes][NumCauses]causeCell
	wamp  [attribStripes]wampCell

	heat    atomic.Pointer[heatState]
	regions atomic.Pointer[regionTable]

	mu      sync.Mutex
	lastTot wampTotals
	epochs  []WampWindow
}

// NewAttrib builds an attribution instrument. heatBuckets caps the heatmap
// resolution (DefaultHeatBuckets when <= 0); the bucket width in lines is
// fixed once the device size is known via InitSpace.
func NewAttrib(heatBuckets int) *Attrib {
	if heatBuckets <= 0 {
		heatBuckets = DefaultHeatBuckets
	}
	return &Attrib{heatBuckets: heatBuckets}
}

// Attrib returns the attribution instrument, or nil when attribution is off
// (or o is nil). Pass it to nvm.WithAttrib.
func (o *Obs) Attrib() *Attrib {
	if o == nil {
		return nil
	}
	return o.attrib
}

// InitSpace sizes the heatmap for a device of nLines lines. The device
// calls it at construction; calling again (reopening a device on the same
// instrument) re-sizes and clears the heatmap.
func (a *Attrib) InitSpace(nLines int64) {
	if a == nil || nLines <= 0 {
		return
	}
	per := (nLines + int64(a.heatBuckets) - 1) / int64(a.heatBuckets)
	if per < 1 {
		per = 1
	}
	n := (nLines + per - 1) / per
	a.heat.Store(&heatState{bucketLines: per, counts: make([]atomic.Int64, n)})
}

// SetRegions installs the named-region map (byte offsets, converted to
// lines internally). Regions must not overlap; entries sharing a name
// (per-core pools) are merged in the exported breakdown. Replaces any
// previous table and its counts.
func (a *Attrib) SetRegions(rs []Region) {
	if a == nil {
		return
	}
	t := &regionTable{}
	for _, r := range rs {
		if r.Len <= 0 {
			continue
		}
		t.entries = append(t.entries, regionEntry{
			name:  r.Name,
			start: r.Off / AttribLineSize,
			end:   (r.Off + r.Len + AttribLineSize - 1) / AttribLineSize,
		})
	}
	sort.Slice(t.entries, func(i, j int) bool { return t.entries[i].start < t.entries[j].start })
	t.writes = make([]atomic.Int64, len(t.entries))
	a.regions.Store(t)
}

// RecordRead attributes a device read of the given line span.
func (a *Attrib) RecordRead(c Cause, firstLine, lines, bytes int64) {
	if a == nil {
		return
	}
	cell := &a.cells[firstLine%attribStripes][c]
	cell.lineReads.Add(lines)
	cell.bytesRead.Add(bytes)
}

// RecordWrite attributes a device write of the given line span, and feeds
// the spatial heatmap and region breakdown.
func (a *Attrib) RecordWrite(c Cause, firstLine, lines, bytes int64) {
	if a == nil {
		return
	}
	cell := &a.cells[firstLine%attribStripes][c]
	cell.lineWrites.Add(lines)
	cell.bytesWritten.Add(bytes)
	a.recordSpace(firstLine, lines)
}

// RecordFlush attributes one actually-flushed (made-durable) line.
func (a *Attrib) RecordFlush(c Cause, line int64) {
	if a == nil {
		return
	}
	a.cells[line%attribStripes][c].flushes.Add(1)
}

// RecordFlushElided attributes one line a Flush visited but skipped because
// the durability state machine showed it already clean — a write-back the
// cause would have paid for without the elision pass.
func (a *Attrib) RecordFlushElided(c Cause, line int64) {
	if a == nil {
		return
	}
	a.cells[line%attribStripes][c].flushesElided.Add(1)
}

// RecordFence attributes one fence to the cause that ordered it.
func (a *Attrib) RecordFence(c Cause) {
	if a == nil {
		return
	}
	a.cells[0][c].fences.Add(1)
}

func (a *Attrib) recordSpace(firstLine, lines int64) {
	if h := a.heat.Load(); h != nil {
		first := firstLine / h.bucketLines
		last := (firstLine + lines - 1) / h.bucketLines
		if first < 0 {
			first = 0
		}
		if max := int64(len(h.counts)) - 1; last > max {
			last = max
		}
		if first == last {
			h.counts[first].Add(lines)
		} else {
			// Spans crossing a bucket boundary are rare (buckets are many
			// lines wide); split the span exactly.
			for l := firstLine; l < firstLine+lines; l++ {
				b := l / h.bucketLines
				if b >= 0 && b < int64(len(h.counts)) {
					h.counts[b].Add(1)
				}
			}
		}
	}
	if t := a.regions.Load(); t != nil {
		i := sort.Search(len(t.entries), func(i int) bool { return t.entries[i].start > firstLine }) - 1
		if i >= 0 && firstLine < t.entries[i].end {
			t.writes[i].Add(lines)
		} else {
			t.unmapped.Add(lines)
		}
	}
}

// AddLogicalWrite records one logical row write from a transaction
// (including intermediates that dual-version modes never persist), plus the
// line count a persist-every-write design would have written for it.
func (a *Attrib) AddLogicalWrite(core int, bytes, counterfactualLines int64) {
	if a == nil {
		return
	}
	w := &a.wamp[core%attribStripes]
	w.logicalBytes.Add(bytes)
	w.logicalWrites.Add(1)
	w.counterfactualLines.Add(counterfactualLines)
}

// AddCommitted records one final version persisted (bytes of row value
// actually committed durable this epoch).
func (a *Attrib) AddCommitted(core int, bytes int64) {
	if a == nil {
		return
	}
	w := &a.wamp[core%attribStripes]
	w.committedBytes.Add(bytes)
	w.committedRows.Add(1)
}

// wampTotals is one folded reading of every counter feeding the
// write-amplification windows.
type wampTotals struct {
	logicalBytes        int64
	logicalWrites       int64
	committedBytes      int64
	committedRows       int64
	counterfactualLines int64
	rowLines            int64 // row-traffic line write-backs (persist-final + minor/major GC + intermediate)
	totalLines          int64 // line write-backs, all causes
	totalBytes          int64
}

// foldTotals measures physical write volume in *flushed* lines (write-backs
// the durability machine actually issued), not per-store line touches:
// several stores to one line cost one NVMM write, and the persist-every-write
// counterfactual is denominated in the same unit.
func (a *Attrib) foldTotals() wampTotals {
	var t wampTotals
	for s := range a.cells {
		for c := Cause(0); c < NumCauses; c++ {
			fl := a.cells[s][c].flushes.Load()
			t.totalLines += fl
			t.totalBytes += a.cells[s][c].bytesWritten.Load()
			switch c {
			case CausePersistFinal, CauseMinorGC, CauseMajorGC, CauseIntermediate:
				t.rowLines += fl
			}
		}
	}
	for s := range a.wamp {
		w := &a.wamp[s]
		t.logicalBytes += w.logicalBytes.Load()
		t.logicalWrites += w.logicalWrites.Load()
		t.committedBytes += w.committedBytes.Load()
		t.committedRows += w.committedRows.Load()
		t.counterfactualLines += w.counterfactualLines.Load()
	}
	return t
}

func (t wampTotals) sub(o wampTotals) wampTotals {
	return wampTotals{
		logicalBytes:        t.logicalBytes - o.logicalBytes,
		logicalWrites:       t.logicalWrites - o.logicalWrites,
		committedBytes:      t.committedBytes - o.committedBytes,
		committedRows:       t.committedRows - o.committedRows,
		counterfactualLines: t.counterfactualLines - o.counterfactualLines,
		rowLines:            t.rowLines - o.rowLines,
		totalLines:          t.totalLines - o.totalLines,
		totalBytes:          t.totalBytes - o.totalBytes,
	}
}

func (t wampTotals) window(epoch uint64) WampWindow {
	w := WampWindow{
		Epoch:               epoch,
		LogicalBytes:        t.logicalBytes,
		LogicalWrites:       t.logicalWrites,
		CommittedBytes:      t.committedBytes,
		CommittedRows:       t.committedRows,
		CounterfactualLines: t.counterfactualLines,
		RowLines:            t.rowLines,
		TotalLines:          t.totalLines,
		TotalBytes:          t.totalBytes,
	}
	if t.committedBytes > 0 {
		w.WriteAmp = float64(t.totalLines*AttribLineSize) / float64(t.committedBytes)
		w.RowWriteAmp = float64(t.rowLines*AttribLineSize) / float64(t.committedBytes)
	}
	if t.rowLines > 0 {
		w.PersistAllRatio = float64(t.counterfactualLines) / float64(t.rowLines)
	}
	return w
}

// EpochEnd closes one epoch's write-amplification window: the delta of
// every counter since the previous EpochEnd, kept in a bounded ring of
// recent epochs. The coordinator calls it once per epoch after the persist
// phase; it folds all stripes, so it is an epoch-granularity cost, not a
// per-access one.
func (a *Attrib) EpochEnd(epoch uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	tot := a.foldTotals()
	win := tot.sub(a.lastTot).window(epoch)
	a.lastTot = tot
	a.epochs = append(a.epochs, win)
	if len(a.epochs) > maxEpochWindows {
		a.epochs = a.epochs[len(a.epochs)-maxEpochWindows:]
	}
}

// Reset clears every counter, the heatmap, the region counts, and the
// epoch ring (the heatmap geometry and region map are kept). Racing
// recorders are tolerated, not synchronized, like Hist.Reset.
func (a *Attrib) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for s := range a.cells {
		for c := range a.cells[s] {
			cell := &a.cells[s][c]
			cell.lineReads.Store(0)
			cell.lineWrites.Store(0)
			cell.bytesRead.Store(0)
			cell.bytesWritten.Store(0)
			cell.flushes.Store(0)
			cell.flushesElided.Store(0)
			cell.fences.Store(0)
		}
	}
	for s := range a.wamp {
		w := &a.wamp[s]
		w.logicalBytes.Store(0)
		w.logicalWrites.Store(0)
		w.committedBytes.Store(0)
		w.committedRows.Store(0)
		w.counterfactualLines.Store(0)
	}
	if h := a.heat.Load(); h != nil {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
	}
	if t := a.regions.Load(); t != nil {
		for i := range t.writes {
			t.writes[i].Store(0)
		}
		t.unmapped.Store(0)
	}
	a.lastTot = wampTotals{}
	a.epochs = nil
}

// CauseCounts is the folded counters of one cause.
type CauseCounts struct {
	LineReads     int64 `json:"line_reads"`
	LineWrites    int64 `json:"line_writes"`
	BytesRead     int64 `json:"bytes_read"`
	BytesWritten  int64 `json:"bytes_written"`
	Flushes       int64 `json:"flushes"`
	FlushesElided int64 `json:"flushes_elided,omitempty"`
	Fences        int64 `json:"fences,omitempty"`
}

// AttribSnapshot is a consistent-enough (per-counter atomic) fold of the
// attribution state, for tests and reports.
type AttribSnapshot struct {
	PerCause            [NumCauses]CauseCounts
	LogicalBytes        int64
	LogicalWrites       int64
	CommittedBytes      int64
	CommittedRows       int64
	CounterfactualLines int64
}

// Snapshot folds every stripe.
func (a *Attrib) Snapshot() AttribSnapshot {
	var s AttribSnapshot
	if a == nil {
		return s
	}
	for st := range a.cells {
		for c := Cause(0); c < NumCauses; c++ {
			cell := &a.cells[st][c]
			s.PerCause[c].LineReads += cell.lineReads.Load()
			s.PerCause[c].LineWrites += cell.lineWrites.Load()
			s.PerCause[c].BytesRead += cell.bytesRead.Load()
			s.PerCause[c].BytesWritten += cell.bytesWritten.Load()
			s.PerCause[c].Flushes += cell.flushes.Load()
			s.PerCause[c].FlushesElided += cell.flushesElided.Load()
			s.PerCause[c].Fences += cell.fences.Load()
		}
	}
	for st := range a.wamp {
		w := &a.wamp[st]
		s.LogicalBytes += w.logicalBytes.Load()
		s.LogicalWrites += w.logicalWrites.Load()
		s.CommittedBytes += w.committedBytes.Load()
		s.CommittedRows += w.committedRows.Load()
		s.CounterfactualLines += w.counterfactualLines.Load()
	}
	return s
}

// Counts returns the folded counters of one cause.
func (a *Attrib) Counts(c Cause) CauseCounts {
	if a == nil {
		return CauseCounts{}
	}
	var out CauseCounts
	for st := range a.cells {
		cell := &a.cells[st][c]
		out.LineReads += cell.lineReads.Load()
		out.LineWrites += cell.lineWrites.Load()
		out.BytesRead += cell.bytesRead.Load()
		out.BytesWritten += cell.bytesWritten.Load()
		out.Flushes += cell.flushes.Load()
		out.FlushesElided += cell.flushesElided.Load()
		out.Fences += cell.fences.Load()
	}
	return out
}

// RegionJSON is one named region's share of line writes.
type RegionJSON struct {
	Name       string `json:"name"`
	Lines      int64  `json:"lines"`
	LineWrites int64  `json:"line_writes"`
}

// HeatmapJSON is the spatial breakdown: raw per-bucket line-write counts
// over the device address space plus the named-region rollup.
type HeatmapJSON struct {
	LinesPerBucket   int64        `json:"lines_per_bucket"`
	BucketLineWrites []int64      `json:"bucket_line_writes"`
	Regions          []RegionJSON `json:"regions"`
	UnmappedWrites   int64        `json:"unmapped_line_writes"`
}

// WampWindow is one write-amplification accounting window (one epoch, or
// the cumulative run). Line counts are flushed lines — write-backs the
// durability machine actually issued, the physical NVMM write volume.
// WriteAmp = bytes of all lines written back / committed row bytes;
// RowWriteAmp restricts the numerator to row traffic (persist-final + GC +
// intermediate); PersistAllRatio = lines a persist-every-write design would
// write back / row lines actually written back — the paper's dual-version
// savings, > 1 whenever rows see multiple writes per epoch.
type WampWindow struct {
	Epoch               uint64  `json:"epoch,omitempty"`
	LogicalBytes        int64   `json:"logical_bytes"`
	LogicalWrites       int64   `json:"logical_writes"`
	CommittedBytes      int64   `json:"committed_bytes"`
	CommittedRows       int64   `json:"committed_rows"`
	CounterfactualLines int64   `json:"counterfactual_lines"`
	RowLines            int64   `json:"row_lines"`
	TotalLines          int64   `json:"total_lines"`
	TotalBytes          int64   `json:"total_bytes"`
	WriteAmp            float64 `json:"write_amp"`
	RowWriteAmp         float64 `json:"row_write_amp"`
	PersistAllRatio     float64 `json:"persist_all_ratio"`
}

// WriteAmpJSON carries the cumulative window plus the recent per-epoch
// ring.
type WriteAmpJSON struct {
	Cumulative WampWindow   `json:"cumulative"`
	Epochs     []WampWindow `json:"epochs"`
}

// AttribJSON is the attribution endpoint payload
// (/debug/nvcaracal/attrib).
type AttribJSON struct {
	PerCause map[string]CauseCounts `json:"per_cause"`
	Heatmap  HeatmapJSON            `json:"heatmap"`
	WriteAmp WriteAmpJSON           `json:"write_amp"`
}

// JSON folds the full attribution state into the serving payload. Returns
// nil when a is nil so hosts can `omitempty` it.
func (a *Attrib) JSON() *AttribJSON {
	if a == nil {
		return nil
	}
	snap := a.Snapshot()
	out := &AttribJSON{PerCause: map[string]CauseCounts{}}
	for c := Cause(0); c < NumCauses; c++ {
		if snap.PerCause[c] != (CauseCounts{}) {
			out.PerCause[c.String()] = snap.PerCause[c]
		}
	}
	if h := a.heat.Load(); h != nil {
		out.Heatmap.LinesPerBucket = h.bucketLines
		out.Heatmap.BucketLineWrites = make([]int64, len(h.counts))
		for i := range h.counts {
			out.Heatmap.BucketLineWrites[i] = h.counts[i].Load()
		}
	}
	if t := a.regions.Load(); t != nil {
		byName := map[string]*RegionJSON{}
		var order []string
		for i, e := range t.entries {
			r, ok := byName[e.name]
			if !ok {
				r = &RegionJSON{Name: e.name}
				byName[e.name] = r
				order = append(order, e.name)
			}
			r.Lines += e.end - e.start
			r.LineWrites += t.writes[i].Load()
		}
		for _, name := range order {
			out.Heatmap.Regions = append(out.Heatmap.Regions, *byName[name])
		}
		out.Heatmap.UnmappedWrites = t.unmapped.Load()
	}
	a.mu.Lock()
	out.WriteAmp.Cumulative = a.foldTotals().window(0)
	out.WriteAmp.Cumulative.Epoch = 0
	out.WriteAmp.Epochs = append([]WampWindow(nil), a.epochs...)
	a.mu.Unlock()
	return out
}
