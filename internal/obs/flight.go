package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// The flight recorder is the engine's always-on evidence trail: a bounded,
// striped ring of small structured events (epoch transitions, fence issues,
// GC, committer handoff and durable publish, recovery stages, submit
// backpressure) with nanosecond timestamps and two-word payloads. Unlike the
// histograms (aggregates) and the span tracer (per-phase durations), the
// flight recorder answers "what was the system doing at 14:02:03.123" after
// the fact — it is dumped automatically when a committer dies on a sticky
// panic, by crashcheck reproducer failures, and on demand via
// /debug/nvcaracal/flight. Recording is a few tens of nanoseconds (one
// uncontended mutex per stripe) and events are per-epoch scale, not per-txn,
// so it stays inside the disabled-overhead budget whenever an Obs is
// attached at all.

// EventType classifies one flight-recorder event. The set mirrors the
// engine's coarse control flow; arguments A and B carry type-specific
// payloads documented per constant.
type EventType uint8

const (
	// EvEpochStart: an epoch began. A = batch size.
	EvEpochStart EventType = iota
	// EvEpochEnd: an epoch completed. A = duration ns, B = committed txns.
	EvEpochEnd
	// EvFence: an engine-level ordering fence was issued. A = Cause.
	EvFence
	// EvGCBegin: major collection phase 1 started. A = pending rows.
	EvGCBegin
	// EvGCEnd: major collection phase 2 finished. A = duration ns.
	EvGCEnd
	// EvCommitHandoff: the pipelined checkpoint was handed to the committer.
	EvCommitHandoff
	// EvCommitJoin: a caller joined the in-flight commit (WaitDurable or the
	// mid-epoch barrier). A = wait ns.
	EvCommitJoin
	// EvDurablePublish: an epoch's record became durable. A = commit stage
	// duration ns.
	EvDurablePublish
	// EvRecoveryStage: one recovery stage finished. A = RecoveryStage,
	// B = stage-specific count (txns decoded, rows scanned, rows reverted,
	// txns replayed).
	EvRecoveryStage
	// EvBackpressure: the submit queue was full when a client arrived.
	// A = queue capacity.
	EvBackpressure
	// EvPanic: a committer or epoch goroutine captured a panic.
	EvPanic
	// EvWatchTrigger: the anomaly watchdog fired. A = incident ordinal.
	EvWatchTrigger
	// NumEvents bounds event-indexed iteration.
	NumEvents
)

// EventNames lists the stable serving-surface names, in enum order.
var EventNames = [NumEvents]string{
	"epoch-start", "epoch-end", "fence", "gc-begin", "gc-end",
	"commit-handoff", "commit-join", "durable-publish", "recovery-stage",
	"backpressure", "panic", "watch-trigger",
}

func (t EventType) String() string {
	if int(t) < len(EventNames) {
		return EventNames[t]
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// RecoveryStage enumerates the A argument of EvRecoveryStage events.
type RecoveryStage int64

const (
	RecoveryLoad RecoveryStage = iota
	RecoveryScan
	RecoveryRevert
	RecoveryReplay
)

var recoveryStageNames = []string{"load", "scan", "revert", "replay"}

func (s RecoveryStage) String() string {
	if int(s) >= 0 && int(s) < len(recoveryStageNames) {
		return recoveryStageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int64(s))
}

// FlightEvent is one recorded event.
type FlightEvent struct {
	TS    int64 // wall clock, nanoseconds since the Unix epoch
	Epoch uint64
	A, B  int64
	Type  EventType
	Core  int32 // CoordinatorCore for coordinator/committer events
}

// Describe renders the event's payload as a short human string.
func (e FlightEvent) Describe() string {
	switch e.Type {
	case EvEpochStart:
		return fmt.Sprintf("batch=%d", e.A)
	case EvEpochEnd:
		return fmt.Sprintf("dur=%v committed=%d", time.Duration(e.A), e.B)
	case EvFence:
		return fmt.Sprintf("cause=%v", Cause(e.A))
	case EvGCBegin:
		return fmt.Sprintf("pending=%d", e.A)
	case EvGCEnd:
		return fmt.Sprintf("dur=%v", time.Duration(e.A))
	case EvCommitJoin:
		return fmt.Sprintf("wait=%v", time.Duration(e.A))
	case EvDurablePublish:
		return fmt.Sprintf("commit=%v", time.Duration(e.A))
	case EvRecoveryStage:
		return fmt.Sprintf("stage=%v n=%d", RecoveryStage(e.A), e.B)
	case EvBackpressure:
		return fmt.Sprintf("queue-cap=%d", e.A)
	case EvWatchTrigger:
		return fmt.Sprintf("incident=%d", e.A)
	default:
		if e.A != 0 || e.B != 0 {
			return fmt.Sprintf("a=%d b=%d", e.A, e.B)
		}
		return ""
	}
}

// flightStripes is the number of event rings. Events from a known worker
// core go to that core's stripe (modulo); coordinator events share stripe 0,
// which is fine — they are serialized by the epoch loop anyway.
const flightStripes = 8

// flightRing is one stripe. Like the span tracer's rings, records and reads
// are serialized by a per-stripe mutex: the record path is effectively
// single-writer per stripe and events are per-epoch scale, so the lock is
// uncontended where it matters and keeps Dump-under-load exact.
type flightRing struct {
	mu      sync.Mutex
	events  []FlightEvent
	next    int
	wrapped bool
	_       [40]byte
}

func (r *flightRing) record(e FlightEvent) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

func (r *flightRing) collect(out []FlightEvent) []FlightEvent {
	r.mu.Lock()
	if r.wrapped {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	r.mu.Unlock()
	return out
}

// Flight is the recorder. Recording into a nil *Flight is a no-op, so
// engine call sites stay unconditional.
type Flight struct {
	rings  [flightStripes]flightRing
	crashW io.Writer // destination of DumpOnCrash; os.Stderr by default
}

// NewFlight returns a recorder retaining up to perStripe events in each of
// its stripes (default 2048 when <= 0).
func NewFlight(perStripe int) *Flight {
	if perStripe <= 0 {
		perStripe = 2048
	}
	f := &Flight{crashW: os.Stderr}
	for i := range f.rings {
		f.rings[i].events = make([]FlightEvent, perStripe)
	}
	return f
}

// SetCrashWriter redirects DumpOnCrash output (tests use a buffer).
func (f *Flight) SetCrashWriter(w io.Writer) {
	if f != nil {
		f.crashW = w
	}
}

// Record stores one event stamped now.
func (f *Flight) Record(t EventType, core int, epoch uint64, a, b int64) {
	if f == nil {
		return
	}
	idx := 0
	if core > 0 {
		idx = core % flightStripes
	}
	f.rings[idx].record(FlightEvent{
		TS: time.Now().UnixNano(), Epoch: epoch, A: a, B: b,
		Type: t, Core: int32(core),
	})
}

// Reset discards every retained event.
func (f *Flight) Reset() {
	if f == nil {
		return
	}
	for i := range f.rings {
		r := &f.rings[i]
		r.mu.Lock()
		r.next = 0
		r.wrapped = false
		r.mu.Unlock()
	}
}

// Events returns the retained events with TS >= since (all when since <= 0),
// ordered by timestamp. Zero-TS slots (never written) are excluded.
func (f *Flight) Events(since int64) []FlightEvent {
	if f == nil {
		return nil
	}
	var all []FlightEvent
	for i := range f.rings {
		all = f.rings[i].collect(all)
	}
	kept := all[:0]
	for _, e := range all {
		if e.TS != 0 && e.TS >= since {
			kept = append(kept, e)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].TS < kept[j].TS })
	return kept
}

// Tail returns the events of the last d (all retained when d <= 0).
func (f *Flight) Tail(d time.Duration) []FlightEvent {
	if f == nil {
		return nil
	}
	var since int64
	if d > 0 {
		since = time.Now().Add(-d).UnixNano()
	}
	return f.Events(since)
}

// Dump renders the events of the last d (all retained when d <= 0) as a
// human-readable table, newest last.
func (f *Flight) Dump(w io.Writer, d time.Duration) {
	if f == nil {
		fmt.Fprintln(w, "flight recorder: not attached")
		return
	}
	evs := f.Tail(d)
	if len(evs) == 0 {
		fmt.Fprintln(w, "flight recorder: no events retained")
		return
	}
	fmt.Fprintf(w, "flight recorder: %d events\n", len(evs))
	for _, e := range evs {
		core := "coord"
		if e.Core >= 0 {
			core = fmt.Sprintf("core%d", e.Core)
		}
		fmt.Fprintf(w, "  %s %-6s epoch=%-6d %-16s %s\n",
			time.Unix(0, e.TS).Format("15:04:05.000000"), core, e.Epoch,
			e.Type, e.Describe())
	}
}

// DumpOnCrash records an EvPanic event and dumps the last few seconds of
// evidence to the crash writer (stderr by default). The engine calls it from
// the committer's sticky-panic capture; crashcheck calls it when a
// reproducer fails.
func (f *Flight) DumpOnCrash(reason string) {
	if f == nil {
		return
	}
	f.Record(EvPanic, CoordinatorCore, 0, 0, 0)
	w := f.crashW
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, "flight recorder: dumping last 5s on crash: %s\n", reason)
	f.Dump(w, 5*time.Second)
}

// FlightEventJSON is the serving form of one event.
type FlightEventJSON struct {
	TSNanos int64  `json:"ts_ns"`
	Type    string `json:"type"`
	Epoch   uint64 `json:"epoch"`
	Core    int32  `json:"core"`
	A       int64  `json:"a"`
	B       int64  `json:"b"`
	Detail  string `json:"detail,omitempty"`
}

// FlightJSON is the /debug/nvcaracal/flight payload.
type FlightJSON struct {
	Events []FlightEventJSON `json:"events"`
}

// JSON folds the last d (all when d <= 0) into the serving payload.
func (f *Flight) JSON(d time.Duration) FlightJSON {
	evs := f.Tail(d)
	out := FlightJSON{Events: make([]FlightEventJSON, 0, len(evs))}
	for _, e := range evs {
		out.Events = append(out.Events, FlightEventJSON{
			TSNanos: e.TS, Type: e.Type.String(), Epoch: e.Epoch,
			Core: e.Core, A: e.A, B: e.B, Detail: e.Describe(),
		})
	}
	return out
}
