package obs

import (
	"sync"
	"testing"
)

func TestCauseNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for c := Cause(0); c < NumCauses; c++ {
		n := c.String()
		if n == "" || n == "invalid" {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate cause name %q", n)
		}
		seen[n] = true
	}
	if Cause(NumCauses).String() != "invalid" {
		t.Fatal("out-of-range cause must stringify as invalid")
	}
}

func TestAttribNilSafe(t *testing.T) {
	var a *Attrib
	a.InitSpace(100)
	a.SetRegions([]Region{{Name: "x", Off: 0, Len: 64}})
	a.RecordRead(CauseOther, 0, 1, 64)
	a.RecordWrite(CausePersistFinal, 0, 1, 64)
	a.RecordFlush(CauseWALAppend, 3)
	a.AddLogicalWrite(0, 100, 3)
	a.AddCommitted(0, 100)
	a.EpochEnd(1)
	a.Reset()
	if a.Snapshot() != (AttribSnapshot{}) {
		t.Fatal("nil snapshot not zero")
	}
	if a.Counts(CauseOther) != (CauseCounts{}) {
		t.Fatal("nil counts not zero")
	}
	if a.JSON() != nil {
		t.Fatal("nil Attrib must serialize as nil")
	}
	var o *Obs
	if o.Attrib() != nil {
		t.Fatal("nil Obs must expose nil Attrib")
	}
}

func TestAttribPerCauseCounts(t *testing.T) {
	a := NewAttrib(0)
	a.RecordWrite(CausePersistFinal, 0, 2, 80)
	a.RecordWrite(CausePersistFinal, 65, 1, 8) // different stripe, same cause
	a.RecordWrite(CauseWALAppend, 1, 3, 160)
	a.RecordRead(CauseRecovery, 7, 4, 256)
	a.RecordFlush(CausePersistFinal, 0)
	a.RecordFlush(CausePersistFinal, 65)

	pf := a.Counts(CausePersistFinal)
	if pf.LineWrites != 3 || pf.BytesWritten != 88 || pf.Flushes != 2 {
		t.Fatalf("persist-final counts = %+v", pf)
	}
	if w := a.Counts(CauseWALAppend); w.LineWrites != 3 || w.BytesWritten != 160 {
		t.Fatalf("wal counts = %+v", w)
	}
	if r := a.Counts(CauseRecovery); r.LineReads != 4 || r.BytesRead != 256 {
		t.Fatalf("recovery counts = %+v", r)
	}
	if g := a.Counts(CauseMajorGC); g != (CauseCounts{}) {
		t.Fatalf("untouched cause nonzero: %+v", g)
	}
	s := a.Snapshot()
	if s.PerCause[CausePersistFinal] != pf {
		t.Fatal("snapshot disagrees with Counts")
	}
}

func TestAttribHeatmapBuckets(t *testing.T) {
	a := NewAttrib(4)
	a.InitSpace(16) // 4 lines per bucket
	a.RecordWrite(CauseOther, 0, 2, 128)  // bucket 0
	a.RecordWrite(CauseOther, 5, 1, 64)   // bucket 1
	a.RecordWrite(CauseOther, 3, 2, 128)  // crosses buckets 0/1: split exactly
	a.RecordWrite(CauseOther, 15, 4, 256) // clamped at the last bucket

	j := a.JSON()
	if j.Heatmap.LinesPerBucket != 4 {
		t.Fatalf("lines per bucket = %d", j.Heatmap.LinesPerBucket)
	}
	want := []int64{3, 2, 0, 4}
	for i, w := range want {
		if got := j.Heatmap.BucketLineWrites[i]; got != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got, w, j.Heatmap.BucketLineWrites)
		}
	}
}

func TestAttribRegions(t *testing.T) {
	a := NewAttrib(0)
	a.InitSpace(1000)
	a.SetRegions([]Region{
		{Name: "row-heap", Off: 0, Len: 64 * 10},
		{Name: "wal", Off: 64 * 10, Len: 64 * 10},
		{Name: "row-heap", Off: 64 * 20, Len: 64 * 10}, // second core, same name
	})
	a.RecordWrite(CausePersistFinal, 2, 1, 64)  // first row-heap
	a.RecordWrite(CauseWALAppend, 12, 2, 128)   // wal
	a.RecordWrite(CausePersistFinal, 25, 1, 64) // second row-heap
	a.RecordWrite(CauseOther, 500, 1, 64)       // outside all regions

	j := a.JSON()
	byName := map[string]RegionJSON{}
	for _, r := range j.Heatmap.Regions {
		byName[r.Name] = r
	}
	if r := byName["row-heap"]; r.LineWrites != 2 || r.Lines != 20 {
		t.Fatalf("row-heap = %+v", r)
	}
	if r := byName["wal"]; r.LineWrites != 2 {
		t.Fatalf("wal = %+v", r)
	}
	if j.Heatmap.UnmappedWrites != 1 {
		t.Fatalf("unmapped = %d", j.Heatmap.UnmappedWrites)
	}
}

func TestAttribWriteAmpWindows(t *testing.T) {
	a := NewAttrib(0)
	// Epoch 1: 3 logical writes to one row (128 B each), one final persist
	// flushing 3 lines; persist-all would have written 3*(2+1)=9 lines.
	// Line volume is counted in write-backs (RecordFlush), not store touches.
	for i := 0; i < 3; i++ {
		a.AddLogicalWrite(0, 128, 3)
	}
	a.AddCommitted(0, 128)
	a.RecordWrite(CausePersistFinal, 0, 3, 136)
	for l := int64(0); l < 3; l++ {
		a.RecordFlush(CausePersistFinal, l)
	}
	a.RecordWrite(CauseWALAppend, 100, 4, 200)
	for l := int64(100); l < 104; l++ {
		a.RecordFlush(CauseWALAppend, l)
	}
	a.EpochEnd(1)

	// Epoch 2: one logical write, one commit, one line written back.
	a.AddLogicalWrite(1, 32, 2)
	a.AddCommitted(1, 32)
	a.RecordWrite(CausePersistFinal, 7, 1, 40)
	a.RecordFlush(CausePersistFinal, 7)
	a.EpochEnd(2)

	j := a.JSON()
	if len(j.WriteAmp.Epochs) != 2 {
		t.Fatalf("epoch windows = %d", len(j.WriteAmp.Epochs))
	}
	e1 := j.WriteAmp.Epochs[0]
	if e1.Epoch != 1 || e1.LogicalWrites != 3 || e1.CommittedRows != 1 {
		t.Fatalf("epoch 1 window = %+v", e1)
	}
	if e1.RowLines != 3 || e1.TotalLines != 7 || e1.CounterfactualLines != 9 {
		t.Fatalf("epoch 1 lines = %+v", e1)
	}
	if want := 9.0 / 3.0; e1.PersistAllRatio != want {
		t.Fatalf("epoch 1 persist-all ratio = %v, want %v", e1.PersistAllRatio, want)
	}
	if want := float64(7*64) / 128; e1.WriteAmp != want {
		t.Fatalf("epoch 1 write amp = %v, want %v", e1.WriteAmp, want)
	}
	e2 := j.WriteAmp.Epochs[1]
	if e2.LogicalWrites != 1 || e2.RowLines != 1 || e2.CounterfactualLines != 2 {
		t.Fatalf("epoch 2 window = %+v (must be the delta, not cumulative)", e2)
	}
	cum := j.WriteAmp.Cumulative
	if cum.LogicalWrites != 4 || cum.RowLines != 4 || cum.TotalLines != 8 {
		t.Fatalf("cumulative = %+v", cum)
	}
}

func TestAttribEpochRingBounded(t *testing.T) {
	a := NewAttrib(0)
	for e := uint64(1); e <= maxEpochWindows+10; e++ {
		a.AddCommitted(0, 1)
		a.EpochEnd(e)
	}
	j := a.JSON()
	if len(j.WriteAmp.Epochs) != maxEpochWindows {
		t.Fatalf("ring length = %d, want %d", len(j.WriteAmp.Epochs), maxEpochWindows)
	}
	if first := j.WriteAmp.Epochs[0].Epoch; first != 11 {
		t.Fatalf("ring head epoch = %d, want 11", first)
	}
}

func TestAttribReset(t *testing.T) {
	a := NewAttrib(0)
	a.InitSpace(100)
	a.SetRegions([]Region{{Name: "x", Off: 0, Len: 6400}})
	a.RecordWrite(CausePersistFinal, 0, 5, 320)
	a.AddLogicalWrite(0, 64, 2)
	a.AddCommitted(0, 64)
	a.EpochEnd(1)
	a.Reset()
	if s := a.Snapshot(); s != (AttribSnapshot{}) {
		t.Fatalf("snapshot after reset = %+v", s)
	}
	j := a.JSON()
	for i, b := range j.Heatmap.BucketLineWrites {
		if b != 0 {
			t.Fatalf("heat bucket %d = %d after reset", i, b)
		}
	}
	if len(j.Heatmap.Regions) == 0 || j.Heatmap.Regions[0].LineWrites != 0 {
		t.Fatalf("region counts survive reset: %+v", j.Heatmap.Regions)
	}
	if len(j.WriteAmp.Epochs) != 0 || j.WriteAmp.Cumulative.TotalLines != 0 {
		t.Fatalf("write-amp state survives reset: %+v", j.WriteAmp)
	}
}

func TestAttribJSONSkipsZeroCauses(t *testing.T) {
	a := NewAttrib(0)
	a.RecordWrite(CauseWALAppend, 0, 1, 64)
	j := a.JSON()
	if len(j.PerCause) != 1 {
		t.Fatalf("per-cause map = %v, want only wal-append", j.PerCause)
	}
	if _, ok := j.PerCause["wal-append"]; !ok {
		t.Fatalf("missing wal-append: %v", j.PerCause)
	}
}

func TestAttribConcurrent(t *testing.T) {
	a := NewAttrib(0)
	a.InitSpace(1 << 12)
	a.SetRegions([]Region{{Name: "all", Off: 0, Len: 64 << 12}})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				line := int64((w*per + i) % (1 << 12))
				a.RecordWrite(Cause(i%int(NumCauses)), line, 1, 64)
				a.RecordRead(CauseOther, line, 1, 64)
				a.RecordFlush(CauseOther, line)
				a.AddLogicalWrite(w, 64, 2)
				if i%4 == 0 {
					a.AddCommitted(w, 64)
				}
				if i%100 == 0 {
					a.EpochEnd(uint64(i / 100))
				}
			}
		}(w)
	}
	wg.Wait()
	s := a.Snapshot()
	var totalWrites int64
	for c := Cause(0); c < NumCauses; c++ {
		totalWrites += s.PerCause[c].LineWrites
	}
	if totalWrites != workers*per {
		t.Fatalf("line writes = %d, want %d", totalWrites, workers*per)
	}
	if s.LogicalWrites != workers*per {
		t.Fatalf("logical writes = %d", s.LogicalWrites)
	}
	j := a.JSON()
	var heat int64
	for _, b := range j.Heatmap.BucketLineWrites {
		heat += b
	}
	if heat != workers*per {
		t.Fatalf("heatmap total = %d, want %d", heat, workers*per)
	}
	if got := j.Heatmap.Regions[0].LineWrites + j.Heatmap.UnmappedWrites; got != workers*per {
		t.Fatalf("region total = %d, want %d", got, workers*per)
	}
}

// The nil-path benchmarks guard the disabled-attribution overhead budget:
// attribution off must cost one pointer nil check per device access, like
// the other obs instruments (run with the obs-overhead CI job's regex).

func BenchmarkNilAttribRecordWrite(b *testing.B) {
	var a *Attrib
	for i := 0; i < b.N; i++ {
		a.RecordWrite(CausePersistFinal, int64(i), 1, 64)
	}
}

func BenchmarkNilAttribAddLogicalWrite(b *testing.B) {
	var a *Attrib
	for i := 0; i < b.N; i++ {
		a.AddLogicalWrite(i, 64, 2)
	}
}

func BenchmarkAttribRecordWrite(b *testing.B) {
	a := NewAttrib(0)
	a.InitSpace(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RecordWrite(CausePersistFinal, int64(i%(1<<16)), 1, 64)
	}
}
