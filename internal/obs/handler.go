package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The debug endpoints Handler serves.
const (
	StatsPath   = "/debug/nvcaracal/stats"
	TracePath   = "/debug/nvcaracal/trace"
	AttribPath  = "/debug/nvcaracal/attrib"
	TxnsPath    = "/debug/nvcaracal/txns"
	FlightPath  = "/debug/nvcaracal/flight"
	MetricsPath = "/debug/nvcaracal/metrics"
)

// StatsPayload is the JSON schema of the stats endpoint. cmd/nvtop and the
// CI smoke validate against this struct, so additions are fine but renames
// are schema breaks.
type StatsPayload struct {
	UptimeSeconds float64             `json:"uptime_seconds"`
	TxnExec       HistJSON            `json:"txn_exec"`
	Epoch         HistJSON            `json:"epoch"`
	Phases        map[string]HistJSON `json:"phases"`
	// DurableLag counts completed epochs by Epoch()−DurableEpoch() at
	// completion time; index i is a lag of i epochs (last bucket folds
	// overflows). All zero unless an async/pipelined commit mode ran.
	DurableLag []uint64    `json:"durable_lag,omitempty"`
	Device     *DeviceJSON `json:"device,omitempty"`
	// Extra carries host-registered sources (engine counters, memory
	// breakdown, raw device stats) keyed by source name.
	Extra map[string]json.RawMessage `json:"extra,omitempty"`
}

// Stats folds every instrument into the serving payload (without Extra).
func (o *Obs) Stats() StatsPayload {
	p := StatsPayload{Phases: map[string]HistJSON{}}
	if o == nil {
		return p
	}
	p.UptimeSeconds = time.Since(time.Unix(0, o.startNS.Load())).Seconds()
	p.TxnExec = o.txn.Snapshot().JSON()
	p.Epoch = o.epoch.Snapshot().JSON()
	for ph := Phase(0); ph < NumPhases; ph++ {
		p.Phases[ph.String()] = o.phases[ph].Snapshot().JSON()
	}
	lag := o.DurableLagCounts()
	p.DurableLag = lag[:]
	p.Device = o.dev.JSON()
	return p
}

// Handler serves the live introspection endpoints for one Obs:
//
//	GET /debug/nvcaracal/stats            JSON StatsPayload snapshot
//	GET /debug/nvcaracal/trace?epochs=N   Chrome trace_event JSON of the
//	                                      last N epochs (all retained when
//	                                      omitted or <= 0)
//	GET /debug/nvcaracal/attrib           JSON AttribJSON snapshot (null
//	                                      when attribution is off)
//	GET /debug/nvcaracal/txns             JSON TxnsJSON: sampled txn
//	                                      lifecycle spans + tail-latency
//	                                      breakdown
//	GET /debug/nvcaracal/flight?last=5s   JSON FlightJSON: flight-recorder
//	                                      events of the last duration (all
//	                                      retained when omitted)
//	GET /debug/nvcaracal/metrics          Prometheus text exposition of the
//	                                      obs-owned instruments
//
// Hosts register additional snapshot sources (engine counters, memory,
// device stats) with AddSource; each is marshalled fresh per request.
type Handler struct {
	o *Obs

	mu      sync.Mutex
	sources map[string]func() any
}

// NewHandler returns a handler for o (which may be nil: the endpoints then
// serve empty payloads, keeping probes robust).
func NewHandler(o *Obs) *Handler {
	return &Handler{o: o, sources: map[string]func() any{}}
}

// AddSource registers a named extra snapshot source included in the stats
// payload. Safe to call concurrently with serving.
func (h *Handler) AddSource(name string, f func() any) {
	h.mu.Lock()
	h.sources[name] = f
	h.mu.Unlock()
}

func (h *Handler) payload() StatsPayload {
	p := h.o.Stats()
	h.mu.Lock()
	sources := make(map[string]func() any, len(h.sources))
	for k, f := range h.sources {
		sources[k] = f
	}
	h.mu.Unlock()
	if len(sources) > 0 {
		p.Extra = map[string]json.RawMessage{}
		for name, f := range sources {
			b, err := json.Marshal(f())
			if err != nil {
				b, _ = json.Marshal(fmt.Sprintf("marshal error: %v", err))
			}
			p.Extra[name] = b
		}
	}
	return p
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case StatsPath:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.payload())
	case TracePath:
		n := 0
		if q := r.URL.Query().Get("epochs"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil {
				http.Error(w, "epochs must be an integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, h.o.Tracer().Spans(n))
	case AttribPath:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.o.Attrib().JSON())
	case TxnsPath:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.o.TxnTrace().JSON())
	case FlightPath:
		d := time.Duration(0)
		if q := r.URL.Query().Get("last"); q != "" {
			v, err := time.ParseDuration(q)
			if err != nil {
				http.Error(w, "last must be a duration (e.g. 5s)", http.StatusBadRequest)
				return
			}
			d = v
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.o.Flight().JSON(d))
	case MetricsPath:
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		h.o.WritePromMetrics(w)
	default:
		http.NotFound(w, r)
	}
}

// expvarOnce guards against double publication: expvar.Publish panics on a
// duplicate name, and tests (or a host restarting its obs layer) may build
// more than one handler per process.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the stats payload under the given expvar name
// (default "nvcaracal" when empty), making it visible on the standard
// /debug/vars endpoint alongside the dedicated handler. Publishing a name
// twice is a no-op (the first handler stays bound): expvar has no rebind.
func (h *Handler) PublishExpvar(name string) {
	if name == "" {
		name = "nvcaracal"
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return h.payload() }))
}
