package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"nvcaracal"
	"nvcaracal/internal/crashcheck/kit"
)

// The pipeline benchmark contrasts the three epoch-commit modes the engine
// offers — serial (the commit tail on the caller's critical path), async
// (AsyncPersist: checkpoint fence + epoch record in the background), and
// pipeline (Pipeline: the entire checkpoint, including parallel pool
// staging, overlapped with the next epoch) — across worker counts and
// workloads. The committed BENCH_pipeline.json is the regression artifact
// for the overlap: mode deltas shrinking toward 1.0 mean the commit tail
// crept back onto the critical path.

// PipelineCell is one (workload, mode, workers) run.
type PipelineCell struct {
	Workload string `json:"workload"`
	// Mode is "serial", "async", or "pipeline".
	Mode      string  `json:"mode"`
	Workers   int     `json:"workers"`
	Epochs    int     `json:"epochs"`
	EpochTxns int     `json:"epoch_txns"`
	KTPS      float64 `json:"ktps"`
	// EpochMS is the mean wall-clock per epoch over the whole measured
	// run, INCLUDING the final WaitDurable drain — async and pipeline may
	// not bank an undrained tail.
	EpochMS float64 `json:"epoch_ms"`
	// SpeedupVsSerial is this cell's serial-mode EpochMS divided by its
	// own, for the same workload and worker count (1.0 for serial cells).
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// Note annotates known-anomalous cells so the committed artifact is not
	// misread as a regression (see EXPERIMENTS.md).
	Note string `json:"note,omitempty"`
}

// lowWorkerOverlapNote explains sub-1.0 speedups at low worker counts —
// profiled in EXPERIMENTS.md ("The async-at-1-worker anomaly"): the commit
// tail is too short to hide at this scale, and the background committer's
// busy-wait device accesses interfere with the next epoch's workers.
const lowWorkerOverlapNote = "expected at low worker counts: the commit tail is " +
	"shorter than the overlap machinery costs, and the committer's busy-wait device " +
	"model contends with the next epoch's workers (EXPERIMENTS.md: async-at-1-worker anomaly)"

// PipelineReport is the schema of BENCH_pipeline.json.
type PipelineReport struct {
	Benchmark  string         `json:"benchmark"`
	Go         string         `json:"go"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      string         `json:"scale"`
	Cells      []PipelineCell `json:"cells"`
}

// pipelineModes maps mode names onto the engine knobs.
var pipelineModes = []struct {
	name            string
	async, pipeline bool
}{
	{"serial", false, false},
	{"async", true, false},
	{"pipeline", true, true},
}

// RunPipelineReport sweeps serial/async/pipeline across 1/2/4/8 workers on
// the kv, ycsb (medium contention), and smallbank (low contention)
// workloads.
func RunPipelineReport(o Options) (PipelineReport, error) {
	s := o.Scale
	rep := PipelineReport{
		Benchmark:  "epoch-pipeline",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      s.Name,
	}
	for _, workload := range []string{"kv", "ycsb", "smallbank"} {
		for _, workers := range []int{1, 2, 4, 8} {
			var serialMS float64
			for _, mode := range pipelineModes {
				sc := s
				sc.Cores = workers
				m, err := sc.runPipelineCell(workload, mode.async, mode.pipeline, o.Seed)
				if err != nil {
					return rep, fmt.Errorf("%s/%s/%dw: %w", workload, mode.name, workers, err)
				}
				c := PipelineCell{
					Workload:  workload,
					Mode:      mode.name,
					Workers:   workers,
					Epochs:    m.epochs,
					EpochTxns: s.EpochTxns,
					KTPS:      m.tps / 1000,
					EpochMS:   m.epochMS,
				}
				if mode.name == "serial" {
					serialMS = m.epochMS
				}
				if serialMS > 0 {
					c.SpeedupVsSerial = serialMS / m.epochMS
				}
				if mode.name != "serial" && workers <= 2 && c.SpeedupVsSerial < 1 {
					c.Note = lowWorkerOverlapNote
				}
				rep.Cells = append(rep.Cells, c)
				o.logf("pipeline-bench %-9s %dw %-8s %8.1f ktps, epoch %6.2fms (%.2fx serial)",
					workload, workers, mode.name, c.KTPS, c.EpochMS, c.SpeedupVsSerial)
				freeMem()
			}
		}
	}
	return rep, nil
}

// pipelineMeasured is a drained whole-run measurement.
type pipelineMeasured struct {
	epochs  int
	tps     float64
	epochMS float64
}

// runPipelineCell sets up one workload instance with the given commit mode
// and times rounds of s.Epochs back-to-back epochs. Within a round there is
// deliberately no drain — that is where the pipeline overlaps — and the
// clock stops only after the round's WaitDurable, so every mode pays for
// its full commit work. Batches are pre-generated outside the clock (they
// model the client side), and short rounds repeat until the window clears
// the timer noise floor, like runNVC.
func (s Scale) runPipelineCell(workload string, async, pipeline bool, seed int64) (pipelineMeasured, error) {
	db, gen, err := s.setupPipelineWorkload(workload, async, pipeline, seed)
	if err != nil {
		return pipelineMeasured{}, err
	}
	// Two unmeasured warmup epochs: the first epochs after a load pay
	// one-off allocator and major-GC ramp costs that otherwise skew
	// whichever cell of the sweep runs first (profiling showed the skew
	// reached tens of percent on the 1-worker cells). The epoch-index
	// cursor advances through the warmup so churn-keyed generators never
	// see a reused index.
	const warmup = 2
	for e := 0; e < warmup; e++ {
		if _, err := db.RunEpoch(gen(e)); err != nil {
			return pipelineMeasured{}, err
		}
	}
	db.WaitDurable()
	var total time.Duration
	committed, ran := 0, 0
	for round := 0; round == 0 || (total < minMeasure && round < 50); round++ {
		batches := make([][]*nvcaracal.Txn, s.Epochs)
		for i := range batches {
			batches[i] = gen(warmup + ran + i)
		}
		start := time.Now()
		for _, b := range batches {
			res, err := db.RunEpoch(b)
			if err != nil {
				return pipelineMeasured{}, err
			}
			committed += res.Committed + res.Aborted
		}
		db.WaitDurable()
		total += time.Since(start)
		ran += len(batches)
	}
	return pipelineMeasured{
		epochs:  ran,
		tps:     float64(committed) / total.Seconds(),
		epochMS: total.Seconds() * 1000 / float64(ran),
	}, nil
}

// setupPipelineWorkload builds a loaded database plus a per-epoch batch
// generator for one of the three swept workloads.
func (s Scale) setupPipelineWorkload(workload string, async, pipeline bool, seed int64) (*nvcaracal.DB, func(int) []*nvcaracal.Txn, error) {
	z := sizing{mode: nvcaracal.ModeNVCaracal, asyncP: async, pipeline: pipeline}
	switch workload {
	case "kv":
		return s.setupPipelineKV(z, seed)
	case "ycsb":
		// Medium contention (4 hot ops) — the tentpole's acceptance workload.
		setup, err := s.setupYCSBNVC(s.YCSBRows, 4, false, false, z)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		return setup.db, func(int) []*nvcaracal.Txn { return setup.w.GenBatch(rng, s.EpochTxns) }, nil
	case "smallbank":
		// Low contention, the mode where throughput is commit-bound.
		setup, err := s.setupSmallBankNVC(s.SBCustomers, s.SBCustomers/s.SBHotLowDiv, z)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		return setup.db, func(int) []*nvcaracal.Txn { return setup.w.GenBatch(rng, s.EpochTxns) }, nil
	default:
		return nil, nil, fmt.Errorf("unknown pipeline workload %q", workload)
	}
}

// setupPipelineKV loads an update-heavy key-value workload: 160-byte
// pooled values over a fixed row set, three quarters overwrites and one
// quarter insert-new/delete-old churn. It reuses the crashcheck kit's
// transaction types, so the same registry serves recovery.
func (s Scale) setupPipelineKV(z sizing, seed int64) (*nvcaracal.DB, func(int) []*nvcaracal.Txn, error) {
	const valBytes = 160
	rows := s.YCSBRows / 2
	z.registry = kit.Registry()
	// The loader pushes 4*EpochTxns-transaction insert batches with full
	// values; budget the WAL for those, not the default 256 B/txn.
	z.logPerTxn = 2048
	z.rows = int64(rows) + int64(s.EpochTxns)
	z.rowSize = 256
	z.valueSize = alignRow(valBytes)
	z.values = int64(rows) + int64(s.EpochTxns)
	fcfg := s.nvcConfig(z)
	db, err := nvcaracal.Open(fcfg)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	val := func() []byte {
		v := make([]byte, valBytes)
		rng.Read(v)
		return v
	}
	// Load the base rows in epoch-sized batches.
	var batch []*nvcaracal.Txn
	for k := 0; k < rows; k++ {
		batch = append(batch, kit.MkInsert(uint64(k), val()))
		if len(batch) == s.EpochTxns*4 || k == rows-1 {
			if _, err := db.RunEpoch(batch); err != nil {
				return nil, nil, err
			}
			batch = nil
		}
	}
	db.WaitDurable()
	insBase := uint64(1) << 40 // churn keys, far above the base rows
	gen := func(e int) []*nvcaracal.Txn {
		out := make([]*nvcaracal.Txn, 0, s.EpochTxns)
		for i := 0; i < s.EpochTxns; i++ {
			switch {
			case i%4 != 0:
				out = append(out, kit.MkSet(uint64(rng.Intn(rows)), val()))
			default:
				k := insBase + uint64(e*s.EpochTxns+i)
				out = append(out, kit.MkInsert(k, val()))
				if e > 0 {
					out = append(out, kit.MkDelete(insBase+uint64((e-1)*s.EpochTxns+i)))
				}
			}
		}
		return out
	}
	return db, gen, nil
}
