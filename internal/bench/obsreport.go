package bench

import (
	"fmt"
	"runtime"
	"time"

	"nvcaracal"
	"nvcaracal/internal/obs"
)

// ObsCell is one observed workload run in BENCH_obs.json: throughput plus
// the full latency breakdown the obs layer collects — the end-to-end epoch
// histogram, the per-phase histograms with each phase's share of epoch
// time, transaction execution latency, and the device instruments.
type ObsCell struct {
	Workload   string  `json:"workload"`
	Contention string  `json:"contention"`
	Epochs     int64   `json:"epochs"`
	EpochTxns  int     `json:"epoch_txns"`
	KTPS       float64 `json:"ktps"`

	Epoch         obs.HistJSON            `json:"epoch"`
	Phases        map[string]obs.HistJSON `json:"phases"`
	PhaseSharePct map[string]float64      `json:"phase_share_pct"`
	TxnExec       obs.HistJSON            `json:"txn_exec"`
	Device        *obs.DeviceJSON         `json:"device,omitempty"`
	// TxnBreakdown is the sampled per-transaction lifecycle breakdown
	// (queue/epoch-wait/execute/epoch-tail/commit-lag); the obs-bench cells
	// run hand-batched epochs, so the pre-assignment phases read as zero and
	// the interesting split is execute vs epoch-tail vs commit-lag.
	TxnBreakdown *obs.TxnBreakdownJSON `json:"txn_breakdown,omitempty"`
}

// ObsReport is the schema of BENCH_obs.json.
type ObsReport struct {
	Benchmark  string    `json:"benchmark"`
	Go         string    `json:"go"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Scale      string    `json:"scale"`
	Cells      []ObsCell `json:"cells"`
}

// RunObsReport runs the YCSB and SmallBank contention cells with the full
// observability layer attached and folds each run's instruments into an
// ObsCell. This is the committed phase-breakdown artifact: it shows where
// epoch time goes (log vs init vs execute vs persist, plus GC) for each
// workload, so perf changes surface as phase-share shifts in review.
func RunObsReport(o Options) (ObsReport, error) {
	s := o.Scale
	rep := ObsReport{
		Benchmark:  "obs-phase-breakdown",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      s.Name,
	}

	newObs := func() *nvcaracal.Obs {
		return nvcaracal.NewObs(nvcaracal.ObsConfig{Hists: true, Device: true, TxnTrace: true, Cores: s.cores()})
	}
	cell := func(workload, contention string, ov *nvcaracal.Obs, m measured) ObsCell {
		c := ObsCell{
			Workload:      workload,
			Contention:    contention,
			EpochTxns:     s.EpochTxns,
			KTPS:          kTPS(m),
			Phases:        map[string]obs.HistJSON{},
			PhaseSharePct: map[string]float64{},
		}
		ep := ov.EpochSnapshot()
		c.Epochs = ep.Count
		c.Epoch = ep.JSON()
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			ps := ov.PhaseSnapshot(ph)
			if ps.Count == 0 {
				continue
			}
			c.Phases[ph.String()] = ps.JSON()
			if ep.Sum > 0 {
				c.PhaseSharePct[ph.String()] = 100 * float64(ps.Sum) / float64(ep.Sum)
			}
		}
		c.TxnExec = ov.TxnSnapshot().JSON()
		c.Device = ov.Device().JSON()
		if spans := ov.TxnTrace().Spans(); len(spans) > 0 {
			b := obs.Breakdown(spans)
			c.TxnBreakdown = &b
		}
		return c
	}

	// YCSB at the paper's three contention levels.
	for _, hotOps := range []int{0, 4, 8} {
		ov := newObs()
		setup, err := s.setupYCSBNVC(s.YCSBRows, hotOps, false, false, sizing{mode: nvcaracal.ModeNVCaracal, obsv: ov})
		if err != nil {
			return rep, fmt.Errorf("ycsb %s setup: %w", contentionName(hotOps), err)
		}
		// Loading ran under observation too; reset so the cell reports only
		// the measured epochs. Fault injection arms after the load for the
		// same reason.
		ov.Reset()
		if o.CommitStall > 0 {
			setup.db.Device().SetCommitStall(o.CommitStall)
		}
		m, err := s.runYCSBNVC(setup, o.Seed)
		if err != nil {
			return rep, fmt.Errorf("ycsb %s run: %w", contentionName(hotOps), err)
		}
		rep.Cells = append(rep.Cells, cell("ycsb", contentionName(hotOps), ov, m))
		o.logf("obs-bench ycsb/%-4s %8.1f ktps, epoch p50 %v", contentionName(hotOps), kTPS(m),
			histP50(ov.EpochSnapshot()))
		freeMem()
	}

	// SmallBank at low and high contention.
	for _, hc := range []struct {
		name    string
		hotspot int
	}{{"low", s.SBCustomers / s.SBHotLowDiv}, {"high", s.SBHotHigh}} {
		ov := newObs()
		setup, err := s.setupSmallBankNVC(s.SBCustomers, hc.hotspot, sizing{mode: nvcaracal.ModeNVCaracal, obsv: ov})
		if err != nil {
			return rep, fmt.Errorf("smallbank %s setup: %w", hc.name, err)
		}
		ov.Reset()
		if o.CommitStall > 0 {
			setup.db.Device().SetCommitStall(o.CommitStall)
		}
		m, err := s.runSmallBankNVC(setup, o.Seed)
		if err != nil {
			return rep, fmt.Errorf("smallbank %s run: %w", hc.name, err)
		}
		rep.Cells = append(rep.Cells, cell("smallbank", hc.name, ov, m))
		o.logf("obs-bench smallbank/%-4s %8.1f ktps, epoch p50 %v", hc.name, kTPS(m),
			histP50(ov.EpochSnapshot()))
		freeMem()
	}

	return rep, nil
}

// histP50 renders an epoch-latency p50 bound for progress lines.
func histP50(s obs.HistSnapshot) string {
	return fmt.Sprintf("<%v", time.Duration(s.Percentile(50)))
}
