package regress

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// HistoryEntry is one append-only record in BENCH_history.jsonl: the
// environment, the comparison summary with every non-ok delta, and the
// medianed metric set of the run (so trends — especially the non-gating
// time class — can be read across commits without re-running anything).
type HistoryEntry struct {
	Time       string `json:"time"` // RFC3339
	Go         string `json:"go"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      string `json:"scale"`
	Repeats    int    `json:"repeats"`

	Reports     []string `json:"reports"`
	Compared    int      `json:"compared"`
	Warns       int      `json:"warns"`
	Fails       int      `json:"fails"`
	GatingFails int      `json:"gating_fails"`
	// Deltas keeps only non-ok comparisons, bounding entry growth.
	Deltas []Delta `json:"deltas,omitempty"`
	// Metrics is the run's medianed metric set.
	Metrics []Metric `json:"metrics"`
}

// Fold accumulates one report's outcome into the entry.
func (e *HistoryEntry) Fold(r Report) {
	e.Reports = append(e.Reports, r.Baseline)
	e.Compared += r.Compared
	e.Warns += r.Warns
	e.Fails += r.Fails
	e.GatingFails += r.GatingFails
	for _, d := range r.Deltas {
		if d.Verdict != VerdictOK {
			e.Deltas = append(e.Deltas, d)
		}
	}
}

// AppendHistory appends one entry as a single JSON line. The file is
// opened O_APPEND so concurrent writers interleave whole lines, and it is
// never rewritten — the history is the audit trail.
func AppendHistory(path string, e HistoryEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadHistory parses a BENCH_history.jsonl file. Blank lines are skipped;
// a malformed line is an error (the file is append-only and
// machine-written, so corruption should be loud).
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	ln := 0
	for sc.Scan() {
		ln++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
