package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"nvcaracal/internal/bench"
	"nvcaracal/internal/nvm"
)

// Extraction turns each committed BENCH_*.json schema into a flat,
// comparable metric list. Only scale-free shapes (shares, ratios) and the
// wall-clock trend metrics are extracted — raw event counts from measured
// runs are NOT, because the harness repeats epochs until a minimum
// measurement window and the absolute counts therefore depend on machine
// speed. Anything count-classed here must be deterministic per cell.

// FromObsReport extracts the phase-breakdown shape: per-cell phase shares
// of epoch time (the paper's where-does-epoch-time-go claim), plus
// throughput and epoch-latency trend metrics.
func FromObsReport(r bench.ObsReport) []Metric {
	var ms []Metric
	for _, c := range r.Cells {
		pre := fmt.Sprintf("obs/%s/%s/", c.Workload, c.Contention)
		ms = append(ms,
			Metric{Key: pre + "ktps", Value: c.KTPS, Class: ClassTime, Better: HigherBetter},
			Metric{Key: pre + "epoch_p50_ms", Value: float64(c.Epoch.P50NS) / 1e6, Class: ClassTime, Better: LowerBetter},
		)
		// Deterministic order for stable reports.
		phases := make([]string, 0, len(c.PhaseSharePct))
		for ph := range c.PhaseSharePct {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		for _, ph := range phases {
			ms = append(ms, Metric{
				Key:    pre + "share/" + ph,
				Value:  c.PhaseSharePct[ph],
				Class:  ClassShare,
				Better: Exact,
			})
		}
	}
	return ms
}

// FromAttribReport extracts the NVMM write-reduction shape: per-cell
// write-amplification and persist-all ratios, per-cause flush shares, and
// the headline dual-vs-persist-all comparisons. All scale-free.
func FromAttribReport(r bench.AttribReport) []Metric {
	var ms []Metric
	for _, c := range r.Cells {
		pre := fmt.Sprintf("attrib/%s/%s/%s/", c.Workload, c.Contention, c.Mode)
		ms = append(ms,
			Metric{Key: pre + "ktps", Value: c.KTPS, Class: ClassTime, Better: HigherBetter},
			Metric{Key: pre + "write_amp", Value: c.WriteAmp.WriteAmp, Class: ClassRatio, Better: LowerBetter},
		)
		if c.WriteAmp.PersistAllRatio > 0 {
			ms = append(ms, Metric{Key: pre + "persist_all_ratio",
				Value: c.WriteAmp.PersistAllRatio, Class: ClassRatio, Better: HigherBetter})
		}
		var total int64
		for _, cc := range c.PerCause {
			total += cc.Flushes
		}
		if total > 0 {
			causes := make([]string, 0, len(c.PerCause))
			for cause := range c.PerCause {
				causes = append(causes, cause)
			}
			sort.Strings(causes)
			for _, cause := range causes {
				ms = append(ms, Metric{
					Key:    pre + "flush_share/" + cause,
					Value:  100 * float64(c.PerCause[cause].Flushes) / float64(total),
					Class:  ClassShare,
					Better: Exact,
				})
			}
		}
	}
	for _, cmp := range r.Comparisons {
		pre := fmt.Sprintf("attrib/%s/%s/", cmp.Workload, cmp.Contention)
		ms = append(ms,
			Metric{Key: pre + "measured_ratio", Value: cmp.MeasuredRatio, Class: ClassRatio, Better: HigherBetter},
			Metric{Key: pre + "counterfactual_ratio", Value: cmp.CounterfactualRatio, Class: ClassRatio, Better: HigherBetter},
		)
	}
	return ms
}

// FromPipelineReport extracts the epoch-commit overlap shape: per-cell
// speedup over serial (the regression target — deltas shrinking toward 1.0
// mean the commit tail crept back onto the critical path) plus throughput
// trends.
func FromPipelineReport(r bench.PipelineReport) []Metric {
	var ms []Metric
	for _, c := range r.Cells {
		pre := fmt.Sprintf("pipeline/%s/%s/%dw/", c.Workload, c.Mode, c.Workers)
		ms = append(ms, Metric{Key: pre + "ktps", Value: c.KTPS, Class: ClassTime, Better: HigherBetter})
		if c.Mode != "serial" {
			ms = append(ms, Metric{Key: pre + "speedup_vs_serial",
				Value: c.SpeedupVsSerial, Class: ClassRatio, Better: HigherBetter})
		}
	}
	return ms
}

// DeviceBenchReport mirrors cmd/nvbench's BENCH_device.json schema (the
// writer keeps its own unexported copy; the fields are the contract).
type DeviceBenchReport struct {
	Benchmark string                  `json:"benchmark"`
	Go        string                  `json:"go"`
	CPU       int                     `json:"gomaxprocs"`
	OpsCore   int                     `json:"ops_per_core"`
	Results   []nvm.DeviceBenchResult `json:"results"`
}

// FromDeviceReport extracts raw device-op throughput per core count —
// wall-clock, trend-only.
func FromDeviceReport(r DeviceBenchReport) []Metric {
	var ms []Metric
	for _, res := range r.Results {
		ms = append(ms, Metric{
			Key:    fmt.Sprintf("device/%dcores/ops_per_sec", res.Cores),
			Value:  res.OpsSec,
			Class:  ClassTime,
			Better: HigherBetter,
		})
	}
	return ms
}

// LoadObsBaseline reads a committed BENCH_obs.json into metrics.
func LoadObsBaseline(path string) ([]Metric, bench.ObsReport, error) {
	var r bench.ObsReport
	err := readJSON(path, &r)
	if err != nil {
		return nil, r, err
	}
	return FromObsReport(r), r, nil
}

// LoadAttribBaseline reads a committed BENCH_attrib.json into metrics.
func LoadAttribBaseline(path string) ([]Metric, bench.AttribReport, error) {
	var r bench.AttribReport
	err := readJSON(path, &r)
	if err != nil {
		return nil, r, err
	}
	return FromAttribReport(r), r, nil
}

// LoadPipelineBaseline reads a committed BENCH_pipeline.json into metrics.
func LoadPipelineBaseline(path string) ([]Metric, bench.PipelineReport, error) {
	var r bench.PipelineReport
	err := readJSON(path, &r)
	if err != nil {
		return nil, r, err
	}
	return FromPipelineReport(r), r, nil
}

// LoadDeviceBaseline reads a committed BENCH_device.json into metrics.
func LoadDeviceBaseline(path string) ([]Metric, DeviceBenchReport, error) {
	var r DeviceBenchReport
	err := readJSON(path, &r)
	if err != nil {
		return nil, r, err
	}
	return FromDeviceReport(r), r, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
