package regress

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nvcaracal/internal/bench"
)

func TestCompareVerdicts(t *testing.T) {
	base := []Metric{
		{Key: "share/persist", Value: 20, Class: ClassShare, Better: Exact},
		{Key: "ratio/speedup", Value: 1.5, Class: ClassRatio, Better: HigherBetter},
		{Key: "ratio/write_amp", Value: 2.0, Class: ClassRatio, Better: LowerBetter},
		{Key: "time/ktps", Value: 100, Class: ClassTime, Better: HigherBetter},
		{Key: "gone/metric", Value: 7, Class: ClassRatio, Better: HigherBetter},
	}
	cur := []Metric{
		// +25 points: beyond the share Fail band (20) — gating fail.
		{Key: "share/persist", Value: 45, Class: ClassShare, Better: Exact},
		// Higher is better: a big improvement never trips.
		{Key: "ratio/speedup", Value: 3.0, Class: ClassRatio, Better: HigherBetter},
		// +20% where lower is better: beyond Warn (15%), below Fail (35%).
		{Key: "ratio/write_amp", Value: 2.4, Class: ClassRatio, Better: LowerBetter},
		// -70%: beyond the time Fail band, but time never gates.
		{Key: "time/ktps", Value: 30, Class: ClassTime, Better: HigherBetter},
		{Key: "new/metric", Value: 1, Class: ClassTime, Better: HigherBetter},
	}
	rep := Compare("test", base, cur, nil)
	if !rep.Failed() {
		t.Fatalf("expected gating failure, got %+v", rep)
	}
	want := map[string]string{
		"share/persist":   VerdictFail,
		"ratio/speedup":   VerdictOK,
		"ratio/write_amp": VerdictWarn,
		"time/ktps":       VerdictFail,
		"gone/metric":     VerdictGone,
		"new/metric":      VerdictNew,
	}
	gating := map[string]bool{"share/persist": true, "gone/metric": true}
	for _, d := range rep.Deltas {
		if v, ok := want[d.Key]; !ok || d.Verdict != v {
			t.Errorf("%s: verdict %s, want %s", d.Key, d.Verdict, v)
		}
		if d.Gating != gating[d.Key] {
			t.Errorf("%s: gating %v, want %v", d.Key, d.Gating, gating[d.Key])
		}
	}
	// Exactly the share fail and the gone metric gate; the time fail does not.
	if rep.GatingFails != 2 || rep.Fails != 3 || rep.Warns != 1 {
		t.Fatalf("summary gating=%d fails=%d warns=%d, want 2/3/1", rep.GatingFails, rep.Fails, rep.Warns)
	}
}

func TestCompareAbsFloor(t *testing.T) {
	// A 1-point share wiggle and a sub-floor count wiggle stay ok even
	// though the relative move is huge.
	base := []Metric{
		{Key: "s", Value: 0.5, Class: ClassShare, Better: Exact},
		{Key: "c", Value: 10, Class: ClassCount, Better: Exact},
	}
	cur := []Metric{
		{Key: "s", Value: 1.5, Class: ClassShare, Better: Exact},
		{Key: "c", Value: 40, Class: ClassCount, Better: Exact},
	}
	rep := Compare("floor", base, cur, nil)
	if rep.Failed() || rep.Fails != 0 || rep.Warns != 0 {
		t.Fatalf("floor should absorb small absolute moves: %+v", rep)
	}
}

func TestMedianOfRuns(t *testing.T) {
	runs := [][]Metric{
		{{Key: "a", Value: 10, Class: ClassTime, Better: HigherBetter}},
		{{Key: "a", Value: 30, Class: ClassTime, Better: HigherBetter}, {Key: "b", Value: 5, Class: ClassRatio, Better: Exact}},
		{{Key: "a", Value: 20, Class: ClassTime, Better: HigherBetter}},
	}
	med := MedianOfRuns(runs)
	if len(med) != 2 {
		t.Fatalf("want 2 metrics, got %+v", med)
	}
	if med[0].Key != "a" || med[0].Value != 20 {
		t.Fatalf("median of 10/30/20 should be 20: %+v", med[0])
	}
	if med[1].Key != "b" || med[1].Value != 5 {
		t.Fatalf("singleton key should pass through: %+v", med[1])
	}
}

func TestExtractObsAndSelfCompare(t *testing.T) {
	r := bench.ObsReport{Cells: []bench.ObsCell{{
		Workload:   "ycsb",
		Contention: "low",
		KTPS:       12.5,
		PhaseSharePct: map[string]float64{
			"execute": 60, "persist": 25, "init": 10, "log": 5,
		},
	}}}
	ms := FromObsReport(r)
	keys := map[string]bool{}
	for _, m := range ms {
		keys[m.Key] = true
	}
	for _, want := range []string{
		"obs/ycsb/low/ktps",
		"obs/ycsb/low/epoch_p50_ms",
		"obs/ycsb/low/share/persist",
		"obs/ycsb/low/share/execute",
	} {
		if !keys[want] {
			t.Errorf("missing metric %s in %v", want, keys)
		}
	}
	// A report compared against itself is clean.
	rep := Compare("self", ms, ms, nil)
	if rep.Failed() || rep.Fails != 0 || rep.Warns != 0 {
		t.Fatalf("self-compare must be clean: %+v", rep)
	}
}

func TestLoadCommittedBaselines(t *testing.T) {
	// The committed artifacts at the repo root must stay loadable — they are
	// the CI baselines.
	root := "../../.."
	if _, err := os.Stat(filepath.Join(root, "BENCH_obs.json")); err != nil {
		t.Skip("committed baselines not present")
	}
	obsMs, _, err := LoadObsBaseline(filepath.Join(root, "BENCH_obs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(obsMs) == 0 {
		t.Fatal("no metrics from BENCH_obs.json")
	}
	attribMs, _, err := LoadAttribBaseline(filepath.Join(root, "BENCH_attrib.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(attribMs) == 0 {
		t.Fatal("no metrics from BENCH_attrib.json")
	}
	pipeMs, _, err := LoadPipelineBaseline(filepath.Join(root, "BENCH_pipeline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var speedups int
	for _, m := range pipeMs {
		if strings.HasSuffix(m.Key, "speedup_vs_serial") {
			speedups++
			if m.Class != ClassRatio {
				t.Errorf("%s classed %s, want ratio", m.Key, m.Class)
			}
		}
	}
	if speedups == 0 {
		t.Fatal("no speedup metrics from BENCH_pipeline.json")
	}
	devMs, _, err := LoadDeviceBaseline(filepath.Join(root, "BENCH_device.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range devMs {
		if m.Class != ClassTime {
			t.Errorf("device metric %s classed %s, want time (non-gating)", m.Key, m.Class)
		}
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	e1 := HistoryEntry{Time: "2026-08-08T00:00:00Z", Scale: "quick", Repeats: 3,
		Metrics: []Metric{{Key: "a", Value: 1, Class: ClassTime, Better: HigherBetter}}}
	e1.Fold(Report{Baseline: "BENCH_obs.json", Compared: 10, Warns: 1,
		Deltas: []Delta{{Key: "a", Verdict: VerdictWarn}, {Key: "b", Verdict: VerdictOK}}})
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, HistoryEntry{Time: "2026-08-08T01:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 entries, got %d", len(got))
	}
	if got[0].Compared != 10 || got[0].Warns != 1 {
		t.Fatalf("fold lost summary: %+v", got[0])
	}
	// Only the non-ok delta is retained.
	if len(got[0].Deltas) != 1 || got[0].Deltas[0].Key != "a" {
		t.Fatalf("history must keep only non-ok deltas: %+v", got[0].Deltas)
	}
	// Appends must not rewrite: the file grows by whole lines.
	data, _ := os.ReadFile(path)
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("want 2 lines, got %d", n)
	}
}

// TestCommitStallTripsObsGate is the acceptance check in miniature: a tiny
// observed run with an injected commit-fence stall must shift the persist
// phase share beyond the gating band relative to the same run unstalled.
func TestCommitStallTripsObsGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two observed bench cells")
	}
	s := bench.QuickScale()
	// Shrink far below QuickScale: two cells of the smallest usable shape.
	s.YCSBRows = 2000
	s.SBCustomers = 2000
	s.EpochTxns = 400
	s.Epochs = 3
	clean, err := bench.RunObsReport(bench.Options{Scale: s, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := bench.RunObsReport(bench.Options{Scale: s, Seed: 7, CommitStall: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep := Compare("injected-stall", FromObsReport(clean), FromObsReport(stalled), nil)
	if !rep.Failed() {
		rep.Format(os.Stderr, true)
		t.Fatal("a 30ms commit stall must trip the persist-share gate")
	}
}
