// Package regress compares freshly-run bench reports against the committed
// BENCH_*.json baselines with noise-aware tolerance bands, so perf and
// shape regressions surface in CI instead of in review archaeology.
//
// The core problem with gating on benchmark output is that most of it is
// wall-clock and therefore machine- and load-dependent. The package solves
// this by classing every metric:
//
//   - count: deterministic event counts — tight bands, gating
//   - share: percentage splits (phase shares, cause shares) — absolute
//     point bands, gating; these encode the paper's shape claims
//   - ratio: scale-free ratios (write-amp, pipeline speedup) — relative
//     bands, gating; mostly machine-independent
//   - time: wall-clock (ktps, latencies) — wide bands, NON-gating by
//     default; tracked as a trend in the history file, never a CI failure
//
// Noise is further reduced by running each report several times and taking
// the per-metric median (MedianOfRuns) before comparing, and by an absolute
// slack floor per class so microscopic baselines cannot trip on rounding.
package regress

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Class is a metric's noise/semantics class; it selects the tolerance band
// and whether a failure gates.
type Class string

const (
	ClassCount Class = "count"
	ClassShare Class = "share"
	ClassRatio Class = "ratio"
	ClassTime  Class = "time"
)

// Direction says which way a metric is allowed to move freely.
type Direction string

const (
	// HigherBetter gates only on decreases (throughput, speedups).
	HigherBetter Direction = "higher"
	// LowerBetter gates only on increases (latencies, write-amp).
	LowerBetter Direction = "lower"
	// Exact gates on movement in either direction — the metric encodes a
	// shape claim (a phase share, a deterministic count), and drift either
	// way means the shape changed.
	Exact Direction = "exact"
)

// Metric is one comparable scalar extracted from a bench report.
type Metric struct {
	Key    string    `json:"key"`
	Value  float64   `json:"value"`
	Class  Class     `json:"class"`
	Better Direction `json:"better"`
}

// Band is one class's tolerance: Warn and Fail thresholds (relative
// fractions of the baseline for count/ratio/time; absolute percentage
// points for share), an absolute slack floor below which a delta never
// trips, and whether a Fail gates the check.
type Band struct {
	Warn     float64
	Fail     float64
	AbsFloor float64
	Gate     bool
}

// DefaultBands returns the per-class tolerances used by nvbench
// -check-regress. Time is deliberately non-gating: wall-clock numbers in
// the committed baselines describe the reference machine, and CI machines
// differ; the history file carries the trend instead.
func DefaultBands() map[Class]Band {
	return map[Class]Band{
		ClassCount: {Warn: 0.05, Fail: 0.20, AbsFloor: 64, Gate: true},
		ClassShare: {Warn: 8, Fail: 20, AbsFloor: 3, Gate: true},
		ClassRatio: {Warn: 0.15, Fail: 0.35, AbsFloor: 0.05, Gate: true},
		ClassTime:  {Warn: 0.25, Fail: 0.60, AbsFloor: 0, Gate: false},
	}
}

// Verdict values for one compared metric.
const (
	VerdictOK   = "ok"
	VerdictWarn = "warn"
	VerdictFail = "fail"
	// VerdictGone marks a baseline metric the current run no longer
	// produces — a schema or coverage regression, gating when its class is.
	VerdictGone = "gone"
	// VerdictNew marks a current metric absent from the baseline —
	// informational only (the baseline predates the metric).
	VerdictNew = "new"
)

// Delta is one compared metric.
type Delta struct {
	Key     string  `json:"key"`
	Class   Class   `json:"class"`
	Base    float64 `json:"base"`
	Cur     float64 `json:"cur"`
	Delta   float64 `json:"delta"`
	RelPct  float64 `json:"rel_pct"`
	Verdict string  `json:"verdict"`
	Gating  bool    `json:"gating"`
}

// Report is the outcome of one baseline comparison.
type Report struct {
	Baseline    string  `json:"baseline"`
	Compared    int     `json:"compared"`
	Warns       int     `json:"warns"`
	Fails       int     `json:"fails"`
	GatingFails int     `json:"gating_fails"`
	Deltas      []Delta `json:"deltas"`
}

// Failed reports whether the comparison should fail the check.
func (r Report) Failed() bool { return r.GatingFails > 0 }

// Compare evaluates current metrics against a baseline under the given
// bands (DefaultBands when nil). Baseline metrics missing from cur become
// VerdictGone; cur metrics missing from the baseline become VerdictNew.
func Compare(baseline string, base, cur []Metric, bands map[Class]Band) Report {
	if bands == nil {
		bands = DefaultBands()
	}
	curBy := make(map[string]Metric, len(cur))
	for _, m := range cur {
		curBy[m.Key] = m
	}
	rep := Report{Baseline: baseline}
	seen := make(map[string]bool, len(base))
	for _, b := range base {
		seen[b.Key] = true
		band := bands[b.Class]
		c, ok := curBy[b.Key]
		if !ok {
			d := Delta{Key: b.Key, Class: b.Class, Base: b.Value, Cur: math.NaN(),
				Verdict: VerdictGone, Gating: band.Gate}
			rep.Deltas = append(rep.Deltas, d)
			rep.Fails++
			if band.Gate {
				rep.GatingFails++
			}
			continue
		}
		rep.Compared++
		d := Delta{Key: b.Key, Class: b.Class, Base: b.Value, Cur: c.Value, Delta: c.Value - b.Value}
		if b.Value != 0 {
			d.RelPct = 100 * d.Delta / math.Abs(b.Value)
		}
		d.Verdict, d.Gating = verdict(b, c.Value, band)
		switch d.Verdict {
		case VerdictWarn:
			rep.Warns++
		case VerdictFail:
			rep.Fails++
			if d.Gating {
				rep.GatingFails++
			}
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, m := range cur {
		if !seen[m.Key] {
			rep.Deltas = append(rep.Deltas, Delta{Key: m.Key, Class: m.Class,
				Base: math.NaN(), Cur: m.Value, Verdict: VerdictNew})
		}
	}
	sort.SliceStable(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Key < rep.Deltas[j].Key })
	return rep
}

// verdict classifies one metric's movement. The regression direction is
// taken from the metric's Direction; movements the direction allows (an
// improvement) never trip, except for Exact metrics where any movement
// counts.
func verdict(base Metric, cur float64, band Band) (string, bool) {
	delta := cur - base.Value
	regressing := false
	switch base.Better {
	case HigherBetter:
		regressing = delta < 0
	case LowerBetter:
		regressing = delta > 0
	default: // Exact
		regressing = delta != 0
	}
	if !regressing {
		return VerdictOK, false
	}
	mag := math.Abs(delta)
	if mag <= band.AbsFloor {
		return VerdictOK, false
	}
	// Share bands are absolute percentage points; the rest are relative to
	// the baseline magnitude.
	if base.Class != ClassShare {
		denom := math.Abs(base.Value)
		if denom == 0 {
			// A zero baseline with a beyond-floor move: treat as failure —
			// relative scaling is undefined and the floor already passed.
			return VerdictFail, band.Gate
		}
		mag /= denom
	}
	switch {
	case mag >= band.Fail:
		return VerdictFail, band.Gate
	case mag >= band.Warn:
		return VerdictWarn, false
	}
	return VerdictOK, false
}

// MedianOfRuns folds repeated extractions into one metric set: the
// per-key median of values. Keys absent from some runs use the median of
// the runs that produced them. Class/direction come from the first
// occurrence.
func MedianOfRuns(runs [][]Metric) []Metric {
	type acc struct {
		m    Metric
		vals []float64
	}
	order := []string{}
	by := map[string]*acc{}
	for _, run := range runs {
		for _, m := range run {
			a, ok := by[m.Key]
			if !ok {
				a = &acc{m: m}
				by[m.Key] = a
				order = append(order, m.Key)
			}
			a.vals = append(a.vals, m.Value)
		}
	}
	out := make([]Metric, 0, len(order))
	for _, k := range order {
		a := by[k]
		sort.Float64s(a.vals)
		n := len(a.vals)
		med := a.vals[n/2]
		if n%2 == 0 {
			med = (a.vals[n/2-1] + a.vals[n/2]) / 2
		}
		m := a.m
		m.Value = med
		out = append(out, m)
	}
	return out
}

// Format writes a human-readable comparison. With verbose false only
// non-ok deltas print (plus a summary line); with verbose true everything
// does.
func (r Report) Format(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "regress %s: %d compared, %d warn, %d fail (%d gating)\n",
		r.Baseline, r.Compared, r.Warns, r.Fails, r.GatingFails)
	for _, d := range r.Deltas {
		if !verbose && d.Verdict == VerdictOK {
			continue
		}
		gate := ""
		if d.Verdict == VerdictFail && d.Gating {
			gate = " GATING"
		} else if d.Verdict == VerdictFail {
			gate = " (non-gating)"
		}
		switch d.Verdict {
		case VerdictGone:
			fmt.Fprintf(w, "  %-5s %-7s %-60s base %.4g, missing from current run%s\n",
				d.Verdict, d.Class, d.Key, d.Base, gate)
		case VerdictNew:
			fmt.Fprintf(w, "  %-5s %-7s %-60s %.4g (no baseline)\n", d.Verdict, d.Class, d.Key, d.Cur)
		default:
			fmt.Fprintf(w, "  %-5s %-7s %-60s %.4g -> %.4g (%+.1f%%)%s\n",
				d.Verdict, d.Class, d.Key, d.Base, d.Cur, d.RelPct, gate)
		}
	}
}
