package bench

import (
	"fmt"
	"runtime"

	"nvcaracal"
	"nvcaracal/internal/obs"
)

// AttribCell is one attributed workload run in BENCH_attrib.json: throughput
// plus the full NVMM access attribution — per-cause line/byte/flush counters
// and the cumulative write-amplification window for the measured epochs
// (loading is excluded by an instrument reset).
type AttribCell struct {
	Workload   string  `json:"workload"`
	Contention string  `json:"contention"`
	Mode       string  `json:"mode"`
	EpochTxns  int     `json:"epoch_txns"`
	KTPS       float64 `json:"ktps"`

	PerCause map[string]obs.CauseCounts `json:"per_cause"`
	WriteAmp obs.WampWindow             `json:"write_amp"`
	Regions  []obs.RegionJSON           `json:"regions,omitempty"`
}

// AttribComparison contrasts the dual-version design against
// persist-every-write for one workload/contention point, two ways: the
// measured ratio (row-traffic write-backs of an actual hybrid-mode run over
// the dual-version run's) and the counterfactual ratio the dual-version run
// computes against itself (lines a persist-every-write design would have
// written for the same logical writes). Both are > 1 whenever rows see more
// than one write per epoch — the paper's NVMM write-reduction claim.
type AttribComparison struct {
	Workload            string  `json:"workload"`
	Contention          string  `json:"contention"`
	DualRowLines        int64   `json:"dual_row_lines"`
	PersistAllRowLines  int64   `json:"persist_all_row_lines"`
	MeasuredRatio       float64 `json:"measured_ratio"`
	CounterfactualRatio float64 `json:"counterfactual_ratio"`
}

// AttribReport is the schema of BENCH_attrib.json.
type AttribReport struct {
	Benchmark   string             `json:"benchmark"`
	Go          string             `json:"go"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Scale       string             `json:"scale"`
	LineSize    int                `json:"line_size"`
	Cells       []AttribCell       `json:"cells"`
	Comparisons []AttribComparison `json:"comparisons"`
}

// attribModes maps the report's mode labels to storage modes: the
// dual-version design under test and the persist-every-write baseline
// (hybrid mode, which persists every intermediate version in place).
var attribModes = []struct {
	label string
	mode  nvcaracal.StorageMode
}{
	{"dual-version", nvcaracal.ModeNVCaracal},
	{"persist-every-write", nvcaracal.ModeHybrid},
}

// RunAttribReport runs the YCSB and SmallBank contention cells twice each —
// dual-version and persist-every-write — with the attribution instrument
// attached, and folds each run's per-cause counters and write-amplification
// windows into the committed artifact. The Comparisons section is the
// paper's headline: how many NVMM line write-backs the dual-version design
// saves over persisting every write, measured and counterfactual.
func RunAttribReport(o Options) (AttribReport, error) {
	s := o.Scale
	rep := AttribReport{
		Benchmark:  "nvmm-access-attribution",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      s.Name,
		LineSize:   obs.AttribLineSize,
	}

	newObs := func() *nvcaracal.Obs {
		return nvcaracal.NewObs(nvcaracal.ObsConfig{Attrib: true, Cores: s.cores()})
	}
	cell := func(workload, contention, mode string, ov *nvcaracal.Obs, m measured) AttribCell {
		j := ov.Attrib().JSON()
		return AttribCell{
			Workload:   workload,
			Contention: contention,
			Mode:       mode,
			EpochTxns:  s.EpochTxns,
			KTPS:       kTPS(m),
			PerCause:   j.PerCause,
			WriteAmp:   j.WriteAmp.Cumulative,
			Regions:    j.Heatmap.Regions,
		}
	}
	compare := func(cells []AttribCell) {
		// cells holds the dual-version run first, then persist-every-write.
		dual, pall := cells[len(cells)-2], cells[len(cells)-1]
		cmp := AttribComparison{
			Workload:            dual.Workload,
			Contention:          dual.Contention,
			DualRowLines:        dual.WriteAmp.RowLines,
			PersistAllRowLines:  pall.WriteAmp.RowLines,
			CounterfactualRatio: dual.WriteAmp.PersistAllRatio,
		}
		if cmp.DualRowLines > 0 {
			cmp.MeasuredRatio = float64(cmp.PersistAllRowLines) / float64(cmp.DualRowLines)
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
		o.logf("attrib-bench %s/%-4s persist-all ratio: measured %.2fx, counterfactual %.2fx",
			cmp.Workload, cmp.Contention, cmp.MeasuredRatio, cmp.CounterfactualRatio)
	}

	// YCSB at the paper's three contention levels, both modes.
	for _, hotOps := range []int{0, 4, 8} {
		for _, am := range attribModes {
			ov := newObs()
			setup, err := s.setupYCSBNVC(s.YCSBRows, hotOps, false, false, sizing{mode: am.mode, obsv: ov})
			if err != nil {
				return rep, fmt.Errorf("ycsb %s %s setup: %w", contentionName(hotOps), am.label, err)
			}
			// Loading ran under attribution too; reset so the cell reports
			// only the measured epochs.
			ov.Reset()
			m, err := s.runYCSBNVC(setup, o.Seed)
			if err != nil {
				return rep, fmt.Errorf("ycsb %s %s run: %w", contentionName(hotOps), am.label, err)
			}
			c := cell("ycsb", contentionName(hotOps), am.label, ov, m)
			rep.Cells = append(rep.Cells, c)
			o.logf("attrib-bench ycsb/%-4s %-19s %8.1f ktps, %d row write-backs, write-amp %.2fx",
				contentionName(hotOps), am.label, kTPS(m), c.WriteAmp.RowLines, c.WriteAmp.WriteAmp)
			freeMem()
		}
		compare(rep.Cells)
	}

	// SmallBank at low and high contention, both modes.
	for _, hc := range []struct {
		name    string
		hotspot int
	}{{"low", s.SBCustomers / s.SBHotLowDiv}, {"high", s.SBHotHigh}} {
		for _, am := range attribModes {
			ov := newObs()
			setup, err := s.setupSmallBankNVC(s.SBCustomers, hc.hotspot, sizing{mode: am.mode, obsv: ov})
			if err != nil {
				return rep, fmt.Errorf("smallbank %s %s setup: %w", hc.name, am.label, err)
			}
			ov.Reset()
			m, err := s.runSmallBankNVC(setup, o.Seed)
			if err != nil {
				return rep, fmt.Errorf("smallbank %s %s run: %w", hc.name, am.label, err)
			}
			c := cell("smallbank", hc.name, am.label, ov, m)
			rep.Cells = append(rep.Cells, c)
			o.logf("attrib-bench smallbank/%-4s %-19s %8.1f ktps, %d row write-backs, write-amp %.2fx",
				hc.name, am.label, kTPS(m), c.WriteAmp.RowLines, c.WriteAmp.WriteAmp)
			freeMem()
		}
		compare(rep.Cells)
	}

	return rep, nil
}
