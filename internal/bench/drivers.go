package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"nvcaracal"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/workload/smallbank"
	"nvcaracal/internal/workload/tpcc"
	"nvcaracal/internal/workload/ycsb"
	"nvcaracal/internal/zen"
)

func (s Scale) cores() int {
	if s.Cores > 0 {
		return s.Cores
	}
	return runtime.GOMAXPROCS(0)
}

// alignRow rounds a row size up to the 64-byte line multiple the engine
// requires.
func alignRow(n int64) int64 { return (n + 63) / 64 * 64 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// inlineRowSize returns the row size that inlines both versions of values
// up to valueSize (the "optimal row size" of Table 4).
func inlineRowSize(valueSize int64) int64 { return alignRow(64 + 2*valueSize) }

// nvcConfig builds a facade config sized for a workload.
type sizing struct {
	rows      int64 // expected live row count
	values    int64 // expected live non-inline value count (0 if all inline)
	rowSize   int64
	valueSize int64
	counters  int64
	mode      nvcaracal.StorageMode
	noCache   bool
	hotOnly   bool
	noMinorGC bool
	revert    bool
	pidx      bool // enable the persistent index journal (§7 extension)
	registry  *nvcaracal.Registry
	dram      bool // run the device at DRAM speed regardless of Scale
	obsv      *nvcaracal.Obs
	asyncP    bool // AsyncPersist: background checkpoint fence + epoch record
	pipeline  bool // Pipeline: depth-1 epoch pipeline (implies AsyncPersist)
	// logPerTxn overrides the default 256-byte per-transaction WAL budget
	// for workloads whose inputs carry large values (the region is split in
	// two so consecutive epochs can be in flight; size for the biggest
	// single batch).
	logPerTxn int64
}

func (s Scale) nvcConfig(z sizing) nvcaracal.Config {
	cores := int64(s.cores())
	cfg := nvcaracal.Config{
		Cores:            int(cores),
		Mode:             z.mode,
		RowSize:          z.rowSize,
		ValueSize:        z.valueSize,
		RowsPerCore:      z.rows*2/cores + 4096,
		ValuesPerCore:    z.values*3/cores + 4096,
		Counters:         z.counters,
		CacheK:           20,
		DisableCache:     z.noCache,
		CacheHotOnly:     z.hotOnly,
		DisableMinorGC:   z.noMinorGC,
		RevertOnRecovery: z.revert,
		PersistIndex:     z.pidx,
		Registry:         z.registry,
		LogBytes:         int64(s.EpochTxns)*max64(z.logPerTxn, 256) + (1 << 20),
		Obs:              z.obsv,
		AsyncPersist:     z.asyncP,
		Pipeline:         z.pipeline,
	}
	if !z.dram && z.mode != nvcaracal.ModeAllDRAM {
		cfg.NVMMReadLatency = s.ReadLatency
		cfg.NVMMWriteLatency = s.WriteLatency
		cfg.NVMMFenceLatency = s.FenceLatency
	}
	return cfg
}

// loadNVC populates a database from loader batches.
func loadNVC(db *nvcaracal.DB, batches [][]*nvcaracal.Txn) error {
	for _, b := range batches {
		if _, err := db.RunEpoch(b); err != nil {
			return err
		}
	}
	return nil
}

// measured captures a timed run.
type measured struct {
	TPS       float64
	EpochLat  time.Duration // mean epoch latency
	Committed int
	Aborted   int
}

// minMeasure is the minimum accumulated measurement window: short epochs
// repeat until it is reached, keeping single-digit-millisecond workloads
// out of the timer noise floor.
const minMeasure = 400 * time.Millisecond

// runNVC times epochs of pre-generated batches. Generation is excluded
// from the measurement (it models the client side). After the planned
// epochs it keeps running until the measurement window is long enough to
// be stable.
func runNVC(db *nvcaracal.DB, gen func(epoch int) []*nvcaracal.Txn, epochs int) (measured, error) {
	return runNVCN(db, gen, epochs, 50)
}

// runNVCN is runNVC with an explicit cap on the measurement-window epoch
// multiplier; workloads whose datasets grow per epoch (TPC-C) use a small
// cap matched to their pool sizing.
func runNVCN(db *nvcaracal.DB, gen func(epoch int) []*nvcaracal.Txn, epochs, extraFactor int) (measured, error) {
	var m measured
	var total time.Duration
	ran := 0
	for e := 0; e < epochs || (total < minMeasure && ran < epochs*extraFactor); e++ {
		batch := gen(e)
		start := time.Now()
		res, err := db.RunEpoch(batch)
		if err != nil {
			return m, err
		}
		total += time.Since(start)
		m.Committed += res.Committed
		m.Aborted += res.Aborted
		ran++
	}
	if total > 0 {
		m.TPS = float64(m.Committed+m.Aborted) / total.Seconds()
	}
	m.EpochLat = total / time.Duration(ran)
	return m, nil
}

// runZen times totalTxns executed by `cores` workers, repeating rounds
// until the measurement window is long enough to be stable.
func runZen(db *zen.DB, run func(rng *rand.Rand) error, cores, totalTxns int, seed int64) (measured, error) {
	var total time.Duration
	executed := 0
	for round := 0; round == 0 || (total < minMeasure && round < 50); round++ {
		var wg sync.WaitGroup
		errCh := make(chan error, cores)
		start := time.Now()
		for w := 0; w < cores; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(round*1009+w)*7919))
				n := totalTxns / cores
				if w < totalTxns%cores {
					n++
				}
				for i := 0; i < n; i++ {
					if err := run(rng); err != nil {
						errCh <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		total += time.Since(start)
		executed += totalTxns
		select {
		case err := <-errCh:
			return measured{}, err
		default:
		}
	}
	s := db.Stats()
	return measured{
		TPS:       float64(executed) / total.Seconds(),
		Committed: int(s.Commits),
		Aborted:   int(s.Aborts),
	}, nil
}

// --- YCSB setups ---

type ycsbSetup struct {
	w   *ycsb.Workload
	db  *nvcaracal.DB
	cfg nvcaracal.Config
}

// setupYCSBNVC loads a YCSB instance on the deterministic engine.
// inlineRows selects the Table 4 "optimal" row size that inlines values;
// otherwise the paper-default 256-byte rows with a value pool are used.
func (s Scale) setupYCSBNVC(rows, hotOps int, smallrow, inlineRows bool, z sizing) (*ycsbSetup, error) {
	cfg := ycsb.DefaultConfig(rows)
	if smallrow {
		cfg = ycsb.SmallRowConfig(rows)
	}
	cfg.HotOps = hotOps
	w, err := ycsb.New(cfg)
	if err != nil {
		return nil, err
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	z.registry = reg
	z.rows = int64(rows)
	z.valueSize = alignRow(int64(cfg.ValueSize))
	if inlineRows {
		z.rowSize = inlineRowSize(int64(cfg.ValueSize))
		z.values = 0
	} else {
		z.rowSize = 256
		if int64(cfg.ValueSize) > (256-64)/2 {
			z.values = int64(rows)
		}
	}
	fcfg := s.nvcConfig(z)
	db, err := nvcaracal.Open(fcfg)
	if err != nil {
		return nil, err
	}
	if err := loadNVC(db, w.LoadBatches(s.EpochTxns*4)); err != nil {
		return nil, err
	}
	return &ycsbSetup{w: w, db: db, cfg: fcfg}, nil
}

// setupYCSBZen loads the same dataset on Zen.
func (s Scale) setupYCSBZen(rows, hotOps int, smallrow bool) (*ycsb.Workload, *zen.DB, error) {
	cfg := ycsb.DefaultConfig(rows)
	if smallrow {
		cfg = ycsb.SmallRowConfig(rows)
	}
	cfg.HotOps = hotOps
	w, err := ycsb.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	zcfg := zen.Config{
		TupleSize:    32 + int64(cfg.ValueSize), // Table 4: 1024-ish for YCSB
		Capacity:     int64(rows) + int64(s.cores())*ycsb.OpsPerTxn*4 + 1024,
		CacheEntries: rows, // Table 4: cache entries = row count
	}
	dev := nvm.New(zcfg.DeviceSize(),
		nvm.WithLatency(s.ReadLatency, s.WriteLatency), nvm.WithFenceLatency(s.FenceLatency))
	zdb, err := zen.Open(dev, zcfg)
	if err != nil {
		return nil, nil, err
	}
	if err := w.LoadZen(zdb); err != nil {
		return nil, nil, err
	}
	return w, zdb, nil
}

// --- SmallBank setups ---

func (s Scale) smallbankConfig(customers, hotspot int) smallbank.Config {
	return smallbank.DefaultConfig(customers, hotspot)
}

type smallbankSetup struct {
	w   *smallbank.Workload
	db  *nvcaracal.DB
	cfg nvcaracal.Config
}

func (s Scale) setupSmallBankNVC(customers, hotspot int, z sizing) (*smallbankSetup, error) {
	w, err := smallbank.New(s.smallbankConfig(customers, hotspot))
	if err != nil {
		return nil, err
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	z.registry = reg
	z.rows = int64(customers) * 3
	if z.rowSize == 0 {
		z.rowSize = 128 // Table 4: SmallBank persistent row size
	}
	z.valueSize = 64
	cfg := s.nvcConfig(z)
	db, err := nvcaracal.Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := loadNVC(db, w.LoadBatches(s.EpochTxns*4)); err != nil {
		return nil, err
	}
	return &smallbankSetup{w: w, db: db, cfg: cfg}, nil
}

func (s Scale) setupSmallBankZen(customers, hotspot int) (*smallbank.Workload, *zen.DB, error) {
	w, err := smallbank.New(s.smallbankConfig(customers, hotspot))
	if err != nil {
		return nil, nil, err
	}
	zcfg := zen.Config{
		TupleSize:    64, // Table 4: 32-byte rows rounded to a line
		Capacity:     int64(customers)*3 + int64(s.cores())*16 + 1024,
		CacheEntries: customers / 3, // Table 4 ratio: fewer entries than rows
	}
	dev := nvm.New(zcfg.DeviceSize(),
		nvm.WithLatency(s.ReadLatency, s.WriteLatency), nvm.WithFenceLatency(s.FenceLatency))
	zdb, err := zen.Open(dev, zcfg)
	if err != nil {
		return nil, nil, err
	}
	if err := w.LoadZen(zdb); err != nil {
		return nil, nil, err
	}
	return w, zdb, nil
}

// --- TPC-C setup ---

func (s Scale) tpccConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig(warehouses)
	// Keep the dataset proportionate at quick scale.
	if s.EpochTxns <= 2000 {
		cfg.CustomersPerDistrict = 60
		cfg.Items = 500
	}
	return cfg
}

type tpccSetup struct {
	w   *tpcc.Workload
	db  *nvcaracal.DB
	cfg nvcaracal.Config
}

func (s Scale) setupTPCC(warehouses int, z sizing) (*tpccSetup, error) {
	wcfg := s.tpccConfig(warehouses)
	w, err := tpcc.New(wcfg)
	if err != nil {
		return nil, err
	}
	reg := nvcaracal.NewRegistry()
	w.Register(reg)
	z.registry = reg
	z.counters = wcfg.RequiredCounters()
	z.revert = true
	base := int64(wcfg.Items + wcfg.Warehouses*(1+wcfg.Items) +
		wcfg.Warehouses*wcfg.Districts*(2+2*wcfg.CustomersPerDistrict))
	// NewOrder inserts + History grow per epoch; size for the measurement
	// measured epoch count (TPC-C runs a fixed window; see runTPCC).
	grown := int64(s.Epochs+4) * int64(s.EpochTxns) * 8
	z.rows = base + grown
	if z.rowSize == 0 {
		z.rowSize = 256
	}
	z.valueSize = 256
	cfg := s.nvcConfig(z)
	db, err := nvcaracal.Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := loadNVC(db, w.LoadBatches(s.EpochTxns*4)); err != nil {
		return nil, err
	}
	return &tpccSetup{w: w, db: db, cfg: cfg}, nil
}

// --- common runner fragments ---

func (s Scale) runYCSBNVC(setup *ycsbSetup, seed int64) (measured, error) {
	rng := rand.New(rand.NewSource(seed))
	return runNVC(setup.db, func(int) []*nvcaracal.Txn {
		return setup.w.GenBatch(rng, s.EpochTxns)
	}, s.Epochs)
}

func (s Scale) runSmallBankNVC(setup *smallbankSetup, seed int64) (measured, error) {
	rng := rand.New(rand.NewSource(seed))
	return runNVC(setup.db, func(int) []*nvcaracal.Txn {
		return setup.w.GenBatch(rng, s.EpochTxns)
	}, s.Epochs)
}

func (s Scale) runTPCC(setup *tpccSetup, seed int64) (measured, error) {
	rng := rand.New(rand.NewSource(seed))
	return runNVCN(setup.db, func(int) []*nvcaracal.Txn {
		return setup.w.GenBatch(rng, setup.db, s.EpochTxns)
	}, s.Epochs, 1)
}

// contentionName maps YCSB hot-op counts to the paper's labels.
func contentionName(hotOps int) string {
	switch hotOps {
	case 0:
		return "low"
	case 4:
		return "med"
	default:
		return "high"
	}
}

// kTPS converts a measured run to the figure metric.
func kTPS(m measured) float64 { return m.TPS / 1000 }

// must wraps experiment-internal errors: the harness treats them as fatal
// misconfigurations.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}

// freeMem nudges the runtime between heavyweight experiment cells.
func freeMem() {
	runtime.GC()
}
