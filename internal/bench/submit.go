package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nvcaracal"
)

// RunSubmit measures the concurrent group-commit front-end (a reproduction
// extension, not a paper figure): N submitter goroutines pushing SmallBank
// transactions through nvcaracal.Submitter versus one caller hand-assembling
// the same epochs. The front-end adds queueing and batch-forming work on the
// epoch path, so the comparison bounds what serving real clients costs over
// the paper's hand-batched measurement loop.
func RunSubmit(o Options) []Result {
	s := o.Scale
	hot := s.SBCustomers / s.SBHotLowDiv
	var rs []Result

	o.logf("submit: SmallBank %d customers, hand-batched baseline", s.SBCustomers)
	setup, err := s.setupSmallBankNVC(s.SBCustomers, hot, sizing{mode: nvcaracal.ModeNVCaracal})
	must(err)
	base, err := s.runSmallBankNVC(setup, o.Seed)
	must(err)
	rs = append(rs, Result{
		Exp:    "submit",
		Labels: []Label{L("frontend", "hand-batched")},
		Value:  kTPS(base),
		Unit:   "ktps",
	})
	freeMem()

	for _, n := range []int{2, 8} {
		o.logf("submit: %d concurrent submitters", n)
		setup, err := s.setupSmallBankNVC(s.SBCustomers, hot, sizing{mode: nvcaracal.ModeNVCaracal})
		must(err)
		m, err := s.runSubmitNVC(setup, n, o.Seed)
		must(err)
		rs = append(rs, Result{
			Exp:    "submit",
			Labels: []Label{L("frontend", fmt.Sprintf("submit-%d", n))},
			Value:  kTPS(m),
			Unit:   "ktps",
		})
		freeMem()
	}

	o.emit(rs)
	if o.Out != nil && len(rs) >= 2 && rs[0].Value > 0 {
		o.logf("  submit-8/hand-batched = %.2fx", Ratio(rs[len(rs)-1].Value, rs[0].Value))
	}
	return rs
}

// runSubmitNVC times pre-generated SmallBank transactions pushed through a
// Submitter by `submitters` goroutines. Generation stays outside the timed
// window (it models the client side), matching runNVC; rounds repeat until
// the measurement window is long enough to be stable.
func (s Scale) runSubmitNVC(setup *smallbankSetup, submitters int, seed int64) (measured, error) {
	rng := rand.New(rand.NewSource(seed))
	var m measured
	var total time.Duration
	epochsUsed := uint64(0)
	for round := 0; round == 0 || (total < minMeasure && round < 50); round++ {
		txns := make([]*nvcaracal.Txn, 0, s.Epochs*s.EpochTxns)
		for e := 0; e < s.Epochs; e++ {
			txns = append(txns, setup.w.GenBatch(rng, s.EpochTxns)...)
		}
		epochBase := setup.db.Epoch()
		futs := make([]*nvcaracal.Future, len(txns))
		errCh := make(chan error, submitters)
		start := time.Now()
		sub := nvcaracal.NewSubmitter(setup.db, nvcaracal.SubmitterConfig{
			MaxBatch: s.EpochTxns,
			MaxDelay: 2 * time.Millisecond,
		})
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(txns); i += submitters {
					f, err := sub.Submit(txns[i])
					if err != nil {
						errCh <- err
						return
					}
					futs[i] = f
				}
			}(g)
		}
		wg.Wait()
		if err := sub.Close(); err != nil {
			return m, err
		}
		total += time.Since(start)
		select {
		case err := <-errCh:
			return m, err
		default:
		}
		for _, f := range futs {
			r := f.Wait()
			if r.Err != nil {
				return m, r.Err
			}
			if r.Committed {
				m.Committed++
			} else {
				m.Aborted++
			}
		}
		epochsUsed += setup.db.Epoch() - epochBase
	}
	if total > 0 {
		m.TPS = float64(m.Committed+m.Aborted) / total.Seconds()
	}
	if epochsUsed > 0 {
		m.EpochLat = total / time.Duration(epochsUsed)
	}
	return m, nil
}
