package bench

import (
	"os"
	"testing"
	"time"

	"nvcaracal"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/prof"
)

// TestKVAsync1WorkerProfile is an investigation harness, not an assertion:
// it reproduces the BENCH_pipeline.json kv/async/1w cell next to kv/serial/1w
// under the CPU profiler and prints both, so `go test -run KVAsync1Worker -v`
// regenerates the profiles behind the EXPERIMENTS.md anomaly writeup.
// Skipped unless NVC_ANOMALY_PROFILE=1.
func TestKVAsync1WorkerProfile(t *testing.T) {
	if os.Getenv("NVC_ANOMALY_PROFILE") != "1" {
		t.Skip("set NVC_ANOMALY_PROFILE=1 to run the anomaly reproduction")
	}
	s := QuickScale()
	s.Cores = 1
	p := prof.New(prof.Config{})
	for _, mode := range []struct {
		name  string
		async bool
		out   string
	}{
		{"serial", false, "/tmp/kv_serial_1w.pb.gz"},
		{"async", true, "/tmp/kv_async_1w.pb.gz"},
	} {
		f, err := os.Create(mode.out)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.StartCPU(f); err != nil {
			t.Fatal(err)
		}
		m, err := s.runPipelineCell("kv", mode.async, false, 42)
		p.StopCPU()
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("kv/%s/1w: %.1f ktps, epoch %.2fms (%d epochs) -> %s",
			mode.name, m.tps/1000, m.epochMS, m.epochs, mode.out)
	}

	// Second angle: instrumented runs of both modes. The flight recorder's
	// commit-join events carry the persist-barrier waits (epoch N+1's init
	// joining epoch N's commit); the phase histograms show which phase the
	// extra wall time lands in.
	for _, asyncP := range []bool{false, true} {
		ov := nvcaracal.NewObs(nvcaracal.ObsConfig{Hists: true, Cores: 1})
		z := sizing{mode: nvcaracal.ModeNVCaracal, asyncP: asyncP, obsv: ov}
		db, gen, err := s.setupPipelineKV(z, 42)
		if err != nil {
			t.Fatal(err)
		}
		ov.Reset()
		start := time.Now()
		epochs := 20
		for e := 0; e < epochs; e++ {
			if _, err := db.RunEpoch(gen(e)); err != nil {
				t.Fatal(err)
			}
		}
		db.WaitDurable()
		wall := time.Since(start)
		var joinWait, commitDur time.Duration
		var joins int
		for _, ev := range ov.Flight().Events(0) {
			switch ev.Type {
			case obs.EvCommitJoin:
				joins++
				joinWait += time.Duration(ev.A)
			case obs.EvDurablePublish:
				commitDur += time.Duration(ev.A)
			}
		}
		name := "serial"
		if asyncP {
			name = "async"
		}
		t.Logf("kv/%s/1w instrumented: wall %v over %d epochs; %d barrier joins blocking %v (%.0f%% of wall); commit stages sum %v",
			name, wall.Round(time.Millisecond), epochs, joins, joinWait.Round(time.Millisecond),
			100*float64(joinWait)/float64(wall), commitDur.Round(time.Millisecond))
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			s := ov.PhaseSnapshot(ph)
			if s.Count == 0 {
				continue
			}
			t.Logf("  %-9s sum %8v over %d", ph, time.Duration(s.Sum).Round(time.Millisecond), s.Count)
		}
	}
}
