package bench

import (
	"fmt"
	"math/rand"

	"nvcaracal"
)

// RunTables echoes the benchmark and engine configurations in the shape of
// the paper's Tables 1-4, instantiated at the selected scale.
func RunTables(o Options) []Result {
	s := o.Scale
	rows := []Result{
		{Exp: "table1", Labels: []Label{L("param", "ycsb-rows")}, Value: float64(s.YCSBRows), Unit: "rows"},
		{Exp: "table1", Labels: []Label{L("param", "ycsb-large-rows")}, Value: float64(s.YCSBLargeRows), Unit: "rows"},
		{Exp: "table1", Labels: []Label{L("param", "ycsb-value-size")}, Value: 1000, Unit: "B"},
		{Exp: "table1", Labels: []Label{L("param", "ycsb-smallrow-value")}, Value: 64, Unit: "B"},
		{Exp: "table1", Labels: []Label{L("param", "ycsb-hot-rows")}, Value: 256, Unit: "rows"},
		{Exp: "table2", Labels: []Label{L("param", "smallbank-customers")}, Value: float64(s.SBCustomers), Unit: "accts"},
		{Exp: "table2", Labels: []Label{L("param", "smallbank-large")}, Value: float64(s.SBLargeCustomers), Unit: "accts"},
		{Exp: "table2", Labels: []Label{L("param", "smallbank-hot-low")}, Value: float64(s.SBCustomers / s.SBHotLowDiv), Unit: "accts"},
		{Exp: "table2", Labels: []Label{L("param", "smallbank-hot-high")}, Value: float64(s.SBHotHigh), Unit: "accts"},
		{Exp: "table3", Labels: []Label{L("param", "tpcc-warehouses-low")}, Value: float64(s.TPCCWarehousesLow), Unit: "wh"},
		{Exp: "table3", Labels: []Label{L("param", "tpcc-warehouses-high")}, Value: float64(s.TPCCWarehousesHigh), Unit: "wh"},
		{Exp: "table4", Labels: []Label{L("param", "nvc-ycsb-row-size")}, Value: float64(inlineRowSize(1000)), Unit: "B"},
		{Exp: "table4", Labels: []Label{L("param", "zen-ycsb-row-size")}, Value: 1032, Unit: "B"},
		{Exp: "table4", Labels: []Label{L("param", "nvc-smallbank-row-size")}, Value: 128, Unit: "B"},
		{Exp: "table4", Labels: []Label{L("param", "zen-smallbank-row-size")}, Value: 64, Unit: "B"},
		{Exp: "table4", Labels: []Label{L("param", "epoch-txns")}, Value: float64(s.EpochTxns), Unit: "txns"},
		{Exp: "table4", Labels: []Label{L("param", "epochs")}, Value: float64(s.Epochs), Unit: ""},
	}
	o.emit(rows)
	return rows
}

// RunFig5 reproduces Figure 5: YCSB throughput of NVCaracal vs Zen at the
// default and larger-than-DRAM dataset sizes across contention levels.
// Paper shape: Zen wins under low contention (NVCaracal pays input logging
// plus the final write); NVCaracal overtakes Zen by ~45-56% under high
// contention because 70% of its version writes stay in DRAM.
func RunFig5(o Options) []Result {
	var rs []Result
	s := o.Scale
	for _, variant := range []struct {
		name string
		rows int
	}{{"default", s.YCSBRows}, {"large", s.YCSBLargeRows}} {
		for _, hot := range []int{0, 4, 7} {
			cont := contentionName(hot)
			setup, err := s.setupYCSBNVC(variant.rows, hot, false, true, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			m, err := s.runYCSBNVC(setup, o.Seed+1)
			must(err)
			rs = append(rs, Result{Exp: "fig5", Labels: []Label{
				L("dataset", variant.name), L("contention", cont), L("system", "nvcaracal"),
			}, Value: kTPS(m), Unit: "ktps"})
			o.logf("fig5 %s/%s nvcaracal: %.1f ktps (transient share %.2f)",
				variant.name, cont, kTPS(m), setup.db.Metrics().TransientShare())
			freeMem()

			w, zdb, err := s.setupYCSBZen(variant.rows, hot, false)
			must(err)
			mz, err := runZen(zdb, func(rng *rand.Rand) error { return w.RunZen(zdb, rng) },
				s.cores(), s.EpochTxns*s.Epochs, o.Seed+2)
			must(err)
			rs = append(rs, Result{Exp: "fig5", Labels: []Label{
				L("dataset", variant.name), L("contention", cont), L("system", "zen"),
			}, Value: kTPS(mz), Unit: "ktps"})
			o.logf("fig5 %s/%s zen: %.1f ktps", variant.name, cont, kTPS(mz))
			freeMem()
		}
	}
	o.emit(rs)
	summarizePairs(o, rs, "system", "nvcaracal", "zen")
	return rs
}

// RunFig6 reproduces Figure 6: SmallBank throughput of NVCaracal vs Zen.
// Paper shape: NVCaracal wins at both contention levels (small inputs make
// logging cheap), by a wider margin under high contention.
func RunFig6(o Options) []Result {
	var rs []Result
	s := o.Scale
	for _, variant := range []struct {
		name      string
		customers int
	}{{"default", s.SBCustomers}, {"large", s.SBLargeCustomers}} {
		for _, cont := range []string{"low", "high"} {
			hot := variant.customers / s.SBHotLowDiv
			if cont == "high" {
				hot = s.SBHotHigh
			}
			sb, err := s.setupSmallBankNVC(variant.customers, hot, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			m, err := s.runSmallBankNVC(sb, o.Seed+3)
			must(err)
			rs = append(rs, Result{Exp: "fig6", Labels: []Label{
				L("dataset", variant.name), L("contention", cont), L("system", "nvcaracal"),
			}, Value: kTPS(m), Unit: "ktps"})
			o.logf("fig6 %s/%s nvcaracal: %.1f ktps", variant.name, cont, kTPS(m))
			freeMem()

			wz, zdb, err := s.setupSmallBankZen(variant.customers, hot)
			must(err)
			mz, err := runZen(zdb, func(rng *rand.Rand) error { return wz.RunZen(zdb, rng) },
				s.cores(), s.EpochTxns*s.Epochs, o.Seed+4)
			must(err)
			rs = append(rs, Result{Exp: "fig6", Labels: []Label{
				L("dataset", variant.name), L("contention", cont), L("system", "zen"),
			}, Value: kTPS(mz), Unit: "ktps"})
			o.logf("fig6 %s/%s zen: %.1f ktps", variant.name, cont, kTPS(mz))
			freeMem()
		}
	}
	o.emit(rs)
	summarizePairs(o, rs, "system", "nvcaracal", "zen")
	return rs
}

// fig7Cell runs one (workload, contention, mode) cell for Figures 7, 9 and
// 10, which share workloads and the default 256-byte row size.
func (s Scale) fig7Cell(o Options, workload, cont string, z sizing, seed int64) measured {
	switch workload {
	case "tpcc":
		wh := s.TPCCWarehousesLow
		if cont == "high" {
			wh = s.TPCCWarehousesHigh
		}
		setup, err := s.setupTPCC(wh, z)
		must(err)
		m, err := s.runTPCC(setup, seed)
		must(err)
		return m
	case "ycsb", "ycsb-smallrow":
		hot := 0
		if cont == "high" {
			hot = 7
		}
		setup, err := s.setupYCSBNVC(s.YCSBRows, hot, workload == "ycsb-smallrow", false, z)
		must(err)
		m, err := s.runYCSBNVC(setup, seed)
		must(err)
		return m
	case "smallbank":
		hot := s.SBCustomers / s.SBHotLowDiv
		if cont == "high" {
			hot = s.SBHotHigh
		}
		z2 := z
		z2.rowSize = 256 // Figure 7 uses the default row size everywhere
		setup, err := s.setupSmallBankNVC(s.SBCustomers, hot, z2)
		must(err)
		m, err := s.runSmallBankNVC(setup, seed)
		must(err)
		return m
	}
	panic("bench: unknown workload " + workload)
}

var fig7Workloads = []string{"tpcc", "ycsb", "ycsb-smallrow", "smallbank"}

// RunFig7 reproduces Figure 7: NVCaracal vs the all-NVMM and hybrid Caracal
// baselines with the default 256-byte persistent rows. Paper shape:
// all-NVMM is always worst; NVCaracal ~= hybrid at low contention and wins
// at high contention; the gap vs all-NVMM is largest for large values
// (YCSB, ~2.9x) and smallest for small values (SmallBank, ~1.38x).
func RunFig7(o Options) []Result {
	var rs []Result
	s := o.Scale
	for _, workload := range fig7Workloads {
		for _, cont := range []string{"low", "high"} {
			for _, mode := range []nvcaracal.StorageMode{
				nvcaracal.ModeNVCaracal, nvcaracal.ModeHybrid, nvcaracal.ModeAllNVMM,
			} {
				m := s.fig7Cell(o, workload, cont, sizing{mode: mode}, o.Seed+5)
				rs = append(rs, Result{Exp: "fig7", Labels: []Label{
					L("workload", workload), L("contention", cont), L("system", mode.String()),
				}, Value: kTPS(m), Unit: "ktps"})
				o.logf("fig7 %s/%s %s: %.1f ktps", workload, cont, mode, kTPS(m))
				freeMem()
			}
		}
	}
	o.emit(rs)
	summarizePairs(o, rs, "system", "nvcaracal", "all-nvmm")
	summarizePairs(o, rs, "system", "nvcaracal", "hybrid")
	return rs
}

// RunFig8 reproduces Figure 8: the DRAM and NVMM consumption breakdown per
// benchmark under NVCaracal. Paper shape: most storage is NVMM; index +
// transient pool average ~12% of total; YCSB's cache is large but optional.
func RunFig8(o Options) []Result {
	var rs []Result
	s := o.Scale
	add := func(workload string, m nvcaracal.MemoryBreakdown) {
		cells := []struct {
			name string
			tier string
			v    int64
		}{
			{"index", "dram", m.IndexBytes},
			{"transient-pool", "dram", m.TransientPeak},
			{"cached-versions", "dram", m.CacheBytes},
			{"persistent-rows", "nvmm", m.RowBytes},
			{"persistent-values", "nvmm", m.ValueBytes},
			{"input-log", "nvmm", m.LogBytes},
		}
		for _, c := range cells {
			rs = append(rs, Result{Exp: "fig8", Labels: []Label{
				L("workload", workload), L("tier", c.tier), L("structure", c.name),
			}, Value: float64(c.v) / (1 << 20), Unit: "MiB"})
		}
		dramPct := 100 * Ratio(float64(m.IndexBytes+m.TransientPeak), float64(m.DRAMTotal()+m.NVMMTotal()))
		o.logf("fig8 %s: required DRAM (index+transient) = %.1f%% of total", workload, dramPct)
	}
	for _, workload := range fig7Workloads {
		var mem nvcaracal.MemoryBreakdown
		switch workload {
		case "tpcc":
			setup, err := s.setupTPCC(s.TPCCWarehousesLow, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			_, err = s.runTPCC(setup, o.Seed+6)
			must(err)
			mem = setup.db.Memory()
		case "ycsb", "ycsb-smallrow":
			setup, err := s.setupYCSBNVC(s.YCSBRows, 4, workload == "ycsb-smallrow", false, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			_, err = s.runYCSBNVC(setup, o.Seed+6)
			must(err)
			mem = setup.db.Memory()
		case "smallbank":
			setup, err := s.setupSmallBankNVC(s.SBCustomers, s.SBHotHigh, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			_, err = s.runSmallBankNVC(setup, o.Seed+6)
			must(err)
			mem = setup.db.Memory()
		}
		add(workload, mem)
		freeMem()
	}
	o.emit(rs)
	return rs
}

// RunFig9 reproduces Figure 9: the impact of the minor-GC and
// cached-version optimizations. Paper shape: minor GC is the larger win
// where it applies (inline values; not plain YCSB); cached versions help
// most for YCSB reads and can slightly hurt small-row workloads.
func RunFig9(o Options) []Result {
	var rs []Result
	s := o.Scale
	variants := []struct {
		name string
		z    sizing
	}{
		{"full", sizing{mode: nvcaracal.ModeNVCaracal}},
		{"no-minor-gc", sizing{mode: nvcaracal.ModeNVCaracal, noMinorGC: true}},
		{"no-cache", sizing{mode: nvcaracal.ModeNVCaracal, noCache: true}},
		// §7 extension: selective caching of hot rows only.
		{"hot-only-cache", sizing{mode: nvcaracal.ModeNVCaracal, hotOnly: true}},
	}
	for _, workload := range fig7Workloads {
		for _, cont := range []string{"low", "high"} {
			for _, v := range variants {
				m := s.fig7Cell(o, workload, cont, v.z, o.Seed+7)
				rs = append(rs, Result{Exp: "fig9", Labels: []Label{
					L("workload", workload), L("contention", cont), L("variant", v.name),
				}, Value: kTPS(m), Unit: "ktps"})
				o.logf("fig9 %s/%s %s: %.1f ktps", workload, cont, v.name, kTPS(m))
				freeMem()
			}
		}
	}
	o.emit(rs)
	summarizePairs(o, rs, "variant", "full", "no-minor-gc")
	summarizePairs(o, rs, "variant", "full", "no-cache")
	return rs
}

// RunFig10 reproduces Figure 10: the cost of supporting failure recovery.
// Paper shape: logging costs ~2% for TPC-C (small inputs) and 4-17% for
// YCSB/SmallBank; NVCaracal stays within 2x of all-DRAM, and within 1.26x
// for contended SmallBank.
func RunFig10(o Options) []Result {
	var rs []Result
	s := o.Scale
	variants := []struct {
		name string
		z    sizing
	}{
		{"nvcaracal", sizing{mode: nvcaracal.ModeNVCaracal}},
		{"no-logging", sizing{mode: nvcaracal.ModeNoLogging}},
		{"all-dram", sizing{mode: nvcaracal.ModeAllDRAM, dram: true}},
	}
	for _, workload := range fig7Workloads {
		for _, cont := range []string{"low", "high"} {
			for _, v := range variants {
				m := s.fig7Cell(o, workload, cont, v.z, o.Seed+8)
				rs = append(rs, Result{Exp: "fig10", Labels: []Label{
					L("workload", workload), L("contention", cont), L("system", v.name),
				}, Value: kTPS(m), Unit: "ktps"})
				o.logf("fig10 %s/%s %s: %.1f ktps", workload, cont, v.name, kTPS(m))
				freeMem()
			}
		}
	}
	o.emit(rs)
	summarizePairs(o, rs, "system", "no-logging", "nvcaracal")
	summarizePairs(o, rs, "system", "all-dram", "nvcaracal")
	return rs
}

// RunFig12 reproduces Figure 12: throughput and epoch latency across epoch
// sizes. Paper shape: larger epochs raise throughput (less epoch
// synchronization, more transient absorption) at the cost of epoch latency.
func RunFig12(o Options) []Result {
	var rs []Result
	s := o.Scale
	base := s.EpochTxns
	sizes := []int{base / 4, base / 2, base, base * 2, base * 4}
	cells := []struct {
		workload string
		cont     string
	}{
		{"ycsb", "low"}, {"ycsb", "high"},
		{"smallbank", "low"}, {"smallbank", "high"},
	}
	for _, cell := range cells {
		for _, epochTxns := range sizes {
			s2 := s
			s2.EpochTxns = epochTxns
			// Keep total transactions constant across sizes.
			s2.Epochs = maxInt(1, base*s.Epochs/epochTxns)
			var m measured
			switch cell.workload {
			case "ycsb":
				hot := 0
				if cell.cont == "high" {
					hot = 7
				}
				setup, err := s2.setupYCSBNVC(s.YCSBRows, hot, false, true, sizing{mode: nvcaracal.ModeNVCaracal})
				must(err)
				m, err = s2.runYCSBNVC(setup, o.Seed+9)
				must(err)
			case "smallbank":
				hot := s.SBCustomers / s.SBHotLowDiv
				if cell.cont == "high" {
					hot = s.SBHotHigh
				}
				setup, err := s2.setupSmallBankNVC(s.SBCustomers, hot, sizing{mode: nvcaracal.ModeNVCaracal})
				must(err)
				m, err = s2.runSmallBankNVC(setup, o.Seed+9)
				must(err)
			}
			rs = append(rs,
				Result{Exp: "fig12", Labels: []Label{
					L("workload", cell.workload), L("contention", cell.cont),
					L("epoch-txns", fmt.Sprint(epochTxns)), L("metric", "throughput"),
				}, Value: kTPS(m), Unit: "ktps"},
				Result{Exp: "fig12", Labels: []Label{
					L("workload", cell.workload), L("contention", cell.cont),
					L("epoch-txns", fmt.Sprint(epochTxns)), L("metric", "epoch-latency"),
				}, Value: float64(m.EpochLat.Microseconds()) / 1000, Unit: "ms"},
			)
			o.logf("fig12 %s/%s epoch=%d: %.1f ktps, %.2f ms/epoch",
				cell.workload, cell.cont, epochTxns, kTPS(m), float64(m.EpochLat.Microseconds())/1000)
			freeMem()
		}
	}
	o.emit(rs)
	return rs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
