package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// tinyScale completes each experiment in roughly a second.
func tinyScale() Scale {
	return Scale{
		Name:               "tiny",
		YCSBRows:           2_000,
		YCSBLargeRows:      4_000,
		SBCustomers:        2_000,
		SBLargeCustomers:   4_000,
		SBHotLowDiv:        18,
		SBHotHigh:          16,
		TPCCWarehousesLow:  2,
		TPCCWarehousesHigh: 1,
		EpochTxns:          150,
		Epochs:             2,
		ReadLatency:        20 * time.Nanosecond,
		WriteLatency:       80 * time.Nanosecond,
		Cores:              2,
	}
}

func tinyOpts() Options {
	return Options{Scale: tinyScale(), Seed: 1}
}

func findResult(t *testing.T, rs []Result, want map[string]string) Result {
	t.Helper()
outer:
	for _, r := range rs {
		for k, v := range want {
			if r.Get(k) != v {
				continue outer
			}
		}
		return r
	}
	t.Fatalf("no result matching %v in %d results", want, len(rs))
	return Result{}
}

func TestExperimentRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(names))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("nonsense"); ok {
		t.Fatal("ByName accepted junk")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Exp: "figX", Labels: []Label{L("a", "b")}, Value: 1.5, Unit: "ktps"}
	s := r.String()
	if !strings.Contains(s, "figX") || !strings.Contains(s, "a=b") || !strings.Contains(s, "ktps") {
		t.Fatalf("String() = %q", s)
	}
	if r.Get("a") != "b" || r.Get("zzz") != "" {
		t.Fatal("Get broken")
	}
}

func TestScalesAreValid(t *testing.T) {
	for _, s := range []Scale{QuickScale(), PaperScale(), tinyScale()} {
		if s.YCSBRows <= 256+10 {
			t.Errorf("%s: YCSB rows too small for hot set", s.Name)
		}
		if s.EpochTxns <= 0 || s.Epochs <= 0 {
			t.Errorf("%s: bad epoch shape", s.Name)
		}
	}
}

// retryShape reruns a measured-throughput comparison when it fails: the
// directional claims hold deterministically on an idle machine, but the
// suite's packages run in parallel and a loaded box can flip a close
// margin. check returns "" on success or the failure detail; the test
// fails only if every attempt does.
func retryShape(t *testing.T, attempts int, check func() string) {
	t.Helper()
	var last string
	for i := 0; i < attempts; i++ {
		if last = check(); last == "" {
			return
		}
	}
	t.Error(last)
}

func TestRunTables(t *testing.T) {
	rs := RunTables(tinyOpts())
	if len(rs) < 10 {
		t.Fatalf("tables emitted %d rows", len(rs))
	}
	r := findResult(t, rs, map[string]string{"param": "ycsb-rows"})
	if r.Value != 2000 {
		t.Fatalf("ycsb-rows = %v", r.Value)
	}
}

func TestRunFig5Shape(t *testing.T) {
	retryShape(t, 3, func() string {
		rs := RunFig5(tinyOpts())
		// 2 datasets x 3 contentions x 2 systems.
		if len(rs) != 12 {
			t.Fatalf("fig5 emitted %d rows, want 12", len(rs))
		}
		for _, r := range rs {
			if r.Value <= 0 {
				t.Fatalf("non-positive throughput: %s", r)
			}
		}
		// The paper's headline: NVCaracal beats Zen under high contention.
		nvc := findResult(t, rs, map[string]string{"dataset": "default", "contention": "high", "system": "nvcaracal"})
		zen := findResult(t, rs, map[string]string{"dataset": "default", "contention": "high", "system": "zen"})
		if nvc.Value <= zen.Value {
			return fmt.Sprintf("high contention: nvcaracal %.1f <= zen %.1f (paper: nvcaracal wins)", nvc.Value, zen.Value)
		}
		return ""
	})
}

func TestRunFig6Shape(t *testing.T) {
	rs := RunFig6(tinyOpts())
	if len(rs) != 8 {
		t.Fatalf("fig6 emitted %d rows, want 8", len(rs))
	}
	for _, r := range rs {
		if r.Value <= 0 {
			t.Errorf("non-positive throughput: %s", r)
		}
	}
}

func TestRunFig7Shape(t *testing.T) {
	retryShape(t, 3, func() string {
		rs := RunFig7(tinyOpts())
		if len(rs) != 24 { // 4 workloads x 2 contentions x 3 systems
			t.Fatalf("fig7 emitted %d rows, want 24", len(rs))
		}
		// all-NVMM must be the worst design under high contention for YCSB
		// (large values): the paper's strongest separation.
		nvc := findResult(t, rs, map[string]string{"workload": "ycsb", "contention": "high", "system": "nvcaracal"})
		all := findResult(t, rs, map[string]string{"workload": "ycsb", "contention": "high", "system": "all-nvmm"})
		if nvc.Value <= all.Value {
			return fmt.Sprintf("ycsb high: nvcaracal %.1f <= all-nvmm %.1f", nvc.Value, all.Value)
		}
		return ""
	})
}

func TestRunFig8Shape(t *testing.T) {
	rs := RunFig8(tinyOpts())
	if len(rs) != 24 { // 4 workloads x 6 structures
		t.Fatalf("fig8 emitted %d rows, want 24", len(rs))
	}
	rows := findResult(t, rs, map[string]string{"workload": "ycsb", "structure": "persistent-rows"})
	if rows.Value <= 0 {
		t.Error("ycsb persistent rows = 0 MiB")
	}
}

func TestRunFig9Shape(t *testing.T) {
	rs := RunFig9(tinyOpts())
	if len(rs) != 32 { // 4 workloads x 2 contentions x 4 variants
		t.Fatalf("fig9 emitted %d rows, want 32", len(rs))
	}
}

func TestRunFig10Shape(t *testing.T) {
	retryShape(t, 3, func() string {
		rs := RunFig10(tinyOpts())
		if len(rs) != 24 {
			t.Fatalf("fig10 emitted %d rows, want 24", len(rs))
		}
		// all-DRAM must beat NVCaracal (it pays no NVMM latency and no log).
		dram := findResult(t, rs, map[string]string{"workload": "ycsb", "contention": "low", "system": "all-dram"})
		nvc := findResult(t, rs, map[string]string{"workload": "ycsb", "contention": "low", "system": "nvcaracal"})
		if dram.Value < nvc.Value {
			return fmt.Sprintf("all-dram %.1f < nvcaracal %.1f at low contention", dram.Value, nvc.Value)
		}
		return ""
	})
}

func TestRunFig11Shape(t *testing.T) {
	retryShape(t, 3, func() string {
		rs := RunFig11(tinyOpts())
		if len(rs) != 20 { // 5 workloads x 4 stages
			t.Fatalf("fig11 emitted %d rows, want 20", len(rs))
		}
		// The persistent index journal must beat the scan for the same
		// workload.
		scan := findResult(t, rs, map[string]string{"workload": "smallbank", "stage": "scan-rebuild"})
		jrn := findResult(t, rs, map[string]string{"workload": "smallbank+pidx", "stage": "scan-rebuild"})
		if scan.Value <= 0 {
			t.Fatal("scan time = 0")
		}
		if jrn.Value >= scan.Value {
			return fmt.Sprintf("journal rebuild %.2fms >= scan %.2fms", jrn.Value, scan.Value)
		}
		return ""
	})
}

func TestRunFig12Shape(t *testing.T) {
	rs := RunFig12(tinyOpts())
	if len(rs) != 40 { // 4 cells x 5 sizes x 2 metrics
		t.Fatalf("fig12 emitted %d rows, want 40", len(rs))
	}
	for _, r := range rs {
		if r.Get("metric") == "throughput" && r.Value <= 0 {
			t.Errorf("non-positive throughput: %s", r)
		}
	}
}
