package bench

import (
	"fmt"
	"math/rand"

	"nvcaracal"
	"nvcaracal/internal/nvm"
)

// RunFig11 reproduces Figure 11: the recovery-time breakdown. For each
// workload the harness loads the dataset, runs committed epochs, crashes
// the device partway through one more epoch's persists, recovers, and
// reports the load / scan+rebuild / revert / replay split. Paper shape:
// scanning the persistent rows dominates and scales with dataset size;
// replay is bounded by the epoch size; the TPC-C revert pass costs extra
// under low contention and almost nothing under high contention.
func RunFig11(o Options) []Result {
	var rs []Result
	s := o.Scale
	add := func(workload string, rep *nvcaracal.RecoveryReport) {
		cells := []struct {
			stage string
			ms    float64
		}{
			{"load-txns", float64(rep.LoadTime.Microseconds()) / 1000},
			{"scan-rebuild", float64(rep.ScanTime.Microseconds()) / 1000},
			{"revert", float64(rep.RevertTime.Microseconds()) / 1000},
			{"replay", float64(rep.ReplayTime.Microseconds()) / 1000},
		}
		for _, c := range cells {
			rs = append(rs, Result{Exp: "fig11", Labels: []Label{
				L("workload", workload), L("stage", c.stage),
			}, Value: c.ms, Unit: "ms"})
		}
		how := fmt.Sprintf("scanned %d rows", rep.RowsScanned)
		if rep.UsedIndexJournal {
			how = fmt.Sprintf("journal: %d entries", rep.JournalEntries)
		}
		o.logf("fig11 %s: total %.1f ms (%s, repaired %d, reverted %d, replayed %d txns)",
			workload, float64(rep.Total().Microseconds())/1000,
			how, rep.RowsRepaired, rep.RowsReverted, rep.TxnsReplayed)
	}

	// The +pidx variants run the same crash with the persistent index
	// journal (§7 extension): recovery replays journaled index deltas
	// instead of scanning every persistent row.
	for _, workload := range []string{"ycsb", "smallbank", "smallbank+pidx", "tpcc-low", "tpcc-high"} {
		rng := rand.New(rand.NewSource(o.Seed + 11))
		var db *nvcaracal.DB
		var cfg nvcaracal.Config
		var gen func() []*nvcaracal.Txn

		switch workload {
		case "ycsb":
			setup, err := s.setupYCSBNVC(s.YCSBRows, 4, false, true, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			db, cfg = setup.db, setup.cfg
			gen = func() []*nvcaracal.Txn { return setup.w.GenBatch(rng, s.EpochTxns) }
		case "smallbank", "smallbank+pidx":
			setup, err := s.setupSmallBankNVC(s.SBCustomers, s.SBHotHigh,
				sizing{mode: nvcaracal.ModeNVCaracal, pidx: workload == "smallbank+pidx"})
			must(err)
			db, cfg = setup.db, setup.cfg
			gen = func() []*nvcaracal.Txn { return setup.w.GenBatch(rng, s.EpochTxns) }
		case "tpcc-low", "tpcc-high":
			wh := s.TPCCWarehousesLow
			if workload == "tpcc-high" {
				wh = s.TPCCWarehousesHigh
			}
			setup, err := s.setupTPCC(wh, sizing{mode: nvcaracal.ModeNVCaracal})
			must(err)
			db, cfg = setup.db, setup.cfg
			gen = func() []*nvcaracal.Txn { return setup.w.GenBatch(rng, setup.db, s.EpochTxns) }
		}
		dev := db.Device()

		// Probe: run committed epochs and measure how many line flushes one
		// epoch issues, so the fail-point can be placed reliably inside the
		// doomed epoch's execution phase — after the input log is durable
		// (exercising replay) but before the checkpoint.
		before := dev.Stats()
		for e := 0; e < 2; e++ {
			_, err := db.RunEpoch(gen())
			must(err)
		}
		perEpoch := dev.Stats().Sub(before).Flushes / 2

		fired := false
		after := perEpoch * 3 / 4
		for attempt := 0; attempt < 8 && !fired; attempt++ {
			fired = crashMidEpoch(db, dev, gen(), maxInt64(1, after))
			after = after * 3 / 4
		}
		// CrashRandom models ADR hardware: cache evictions may have made any
		// un-fenced line durable, so some of the crashed epoch's version
		// writes survive — the state the repair and TPC-C revert passes
		// exist for.
		dev.Crash(nvm.CrashRandom, o.Seed)

		_, rep, err := nvcaracal.Recover(dev, cfg)
		must(err)
		add(workload, rep)
		freeMem()
	}
	o.emit(rs)
	return rs
}

// crashMidEpoch runs one epoch with a fail-point armed, reporting whether
// the injected crash fired before the epoch committed.
func crashMidEpoch(db *nvcaracal.DB, dev *nvcaracal.Device, batch []*nvcaracal.Txn, after int64) (fired bool) {
	defer func() {
		if r := recover(); r != nil {
			if r != nvm.ErrInjectedCrash {
				panic(r)
			}
			fired = true
		}
	}()
	dev.SetFailAfter(after)
	if _, err := db.RunEpoch(batch); err != nil {
		must(err)
	}
	dev.SetFailAfter(0)
	return false
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
