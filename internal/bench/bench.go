// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§6), each printing the same rows/series the
// paper reports. Absolute numbers differ from the paper (the substrate is
// a simulator, not an 8-core Optane testbed), but the shapes — who wins,
// by roughly what factor, where the crossovers fall — are the reproduction
// target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Scale groups every knob that trades fidelity for runtime. PaperScale
// approaches the paper's configuration; QuickScale runs each experiment in
// seconds for CI and development.
type Scale struct {
	Name string

	// YCSB (paper: 16M rows default, 64M large; 100K txns/epoch, 49 epochs).
	YCSBRows      int
	YCSBLargeRows int

	// SmallBank (paper: 18M customers, 180M large; hotspots 1M / 10K).
	SBCustomers      int
	SBLargeCustomers int
	SBHotLowDiv      int // low-contention hotspot = customers / SBHotLowDiv
	SBHotHigh        int // high-contention hotspot size

	// TPC-C (paper: 256 warehouses low contention, 1 high).
	TPCCWarehousesLow  int
	TPCCWarehousesHigh int

	// Epoch shape.
	EpochTxns int
	Epochs    int

	// NVMM latency model (zero = DRAM speed).
	ReadLatency  time.Duration
	WriteLatency time.Duration
	FenceLatency time.Duration

	// Cores for the engines (0 = GOMAXPROCS).
	Cores int
}

// QuickScale returns a scale that runs every experiment in seconds while
// preserving the paper's contention structure.
func QuickScale() Scale {
	return Scale{
		Name:               "quick",
		YCSBRows:           20_000,
		YCSBLargeRows:      80_000,
		SBCustomers:        30_000,
		SBLargeCustomers:   120_000,
		SBHotLowDiv:        18,
		SBHotHigh:          64,
		TPCCWarehousesLow:  8,
		TPCCWarehousesHigh: 1,
		EpochTxns:          1_000,
		Epochs:             5,
		ReadLatency:        60 * time.Nanosecond,
		WriteLatency:       250 * time.Nanosecond,
		FenceLatency:       300 * time.Nanosecond,
	}
}

// PaperScale returns a scale closer to the paper's configuration. Running
// all experiments at this scale takes tens of minutes and several GiB.
func PaperScale() Scale {
	return Scale{
		Name:               "paper",
		YCSBRows:           1_000_000,
		YCSBLargeRows:      4_000_000,
		SBCustomers:        1_800_000,
		SBLargeCustomers:   7_200_000,
		SBHotLowDiv:        18,
		SBHotHigh:          1_000,
		TPCCWarehousesLow:  64,
		TPCCWarehousesHigh: 1,
		EpochTxns:          20_000,
		Epochs:             10,
		ReadLatency:        300 * time.Nanosecond,
		WriteLatency:       1200 * time.Nanosecond,
		FenceLatency:       700 * time.Nanosecond,
	}
}

// Result is one data point of an experiment: an ordered set of labels and
// a primary metric.
type Result struct {
	Exp    string
	Labels []Label
	Value  float64
	Unit   string
}

// Label is one ordered key/value annotation on a Result.
type Label struct {
	Key, Val string
}

// L builds a label.
func L(k, v string) Label { return Label{Key: k, Val: v} }

func (r Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", r.Exp)
	for _, l := range r.Labels {
		fmt.Fprintf(&sb, " %s=%-14s", l.Key, l.Val)
	}
	fmt.Fprintf(&sb, " %14.1f %s", r.Value, r.Unit)
	return sb.String()
}

// Get returns the value of a label key, or "".
func (r Result) Get(key string) string {
	for _, l := range r.Labels {
		if l.Key == key {
			return l.Val
		}
	}
	return ""
}

// Options configures an experiment run.
type Options struct {
	Scale   Scale
	Out     io.Writer // progress and result rows; nil silences output
	Seed    int64
	Verbose bool
	// CommitStall injects a fault into observed runs: every commit
	// (persist-final) fence of the measured phase stalls by this much.
	// nvbench -check-regress uses it to prove the regression gate trips;
	// zero (the default) injects nothing.
	CommitStall time.Duration
}

func (o Options) logf(format string, args ...any) {
	if o.Out != nil {
		fmt.Fprintf(o.Out, format+"\n", args...)
	}
}

func (o Options) emit(rs []Result) {
	if o.Out == nil {
		return
	}
	for _, r := range rs {
		fmt.Fprintln(o.Out, r.String())
	}
}

// Experiment is a named, runnable reproduction of one table or figure.
type Experiment struct {
	Name  string
	Title string
	Run   func(Options) []Result
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"tables", "Tables 1-4: benchmark and engine configurations", RunTables},
		{"fig5", "Figure 5: YCSB throughput, NVCaracal vs Zen", RunFig5},
		{"fig6", "Figure 6: SmallBank throughput, NVCaracal vs Zen", RunFig6},
		{"fig7", "Figure 7: throughput vs alternative NVMM designs", RunFig7},
		{"fig8", "Figure 8: DRAM and NVMM consumption", RunFig8},
		{"fig9", "Figure 9: impact of optimizations", RunFig9},
		{"fig10", "Figure 10: failure-recovery support overhead", RunFig10},
		{"fig11", "Figure 11: recovery time breakdown", RunFig11},
		{"fig12", "Figure 12: effect of epoch size", RunFig12},
		{"submit", "Group-commit front-end: concurrent Submit vs hand-batched epochs", RunSubmit},
	}
}

// ByName returns the experiment with the given name.
func ByName(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists experiment names in order.
func Names() []string {
	var ns []string
	for _, e := range Experiments() {
		ns = append(ns, e.Name)
	}
	return ns
}

// Ratio computes a/b guarding division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// summarizePairs prints "A vs B" ratios grouped by shared labels, used by
// the figure runners to surface the paper's headline comparisons.
func summarizePairs(o Options, rs []Result, sysKey, sysA, sysB string) {
	if o.Out == nil {
		return
	}
	type key string
	group := map[key][2]float64{}
	var keys []key
	for _, r := range rs {
		var parts []string
		for _, l := range r.Labels {
			if l.Key == sysKey {
				continue
			}
			parts = append(parts, l.Key+"="+l.Val)
		}
		k := key(strings.Join(parts, " "))
		pair := group[k]
		switch r.Get(sysKey) {
		case sysA:
			pair[0] = r.Value
		case sysB:
			pair[1] = r.Value
		default:
			continue
		}
		if _, seen := group[k]; !seen {
			keys = append(keys, k)
		}
		group[k] = pair
	}
	if len(keys) == 0 {
		for k := range group {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		p := group[k]
		if p[0] == 0 || p[1] == 0 {
			continue
		}
		o.logf("  %s: %s/%s = %.2fx", k, sysA, sysB, p[0]/p[1])
	}
}
