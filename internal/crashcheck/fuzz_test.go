package crashcheck

import (
	"strings"
	"testing"
)

// FuzzRecover lets the fuzzer drive the crash-point space directly: it
// decodes a workload spec and a single crash point from the fuzz input,
// builds the crash-free oracle, injects the crash, recovers, and fails on
// any violated check. The seed corpus (testdata/fuzz/FuzzRecover) covers
// every workload, all three crash modes, and double faults; without -fuzz
// the seeds alone run as regression tests.
func FuzzRecover(f *testing.F) {
	//          wl  rows warm txns failAfter mode crashSeed refail
	f.Add(uint8(0), uint16(8), uint8(1), uint8(4), uint16(7), uint8(0), int64(1), uint8(0))    // kv strict
	f.Add(uint8(0), uint16(20), uint8(2), uint8(8), uint16(33), uint8(2), int64(99), uint8(5)) // kv random + double fault
	f.Add(uint8(1), uint16(3), uint8(1), uint8(6), uint16(12), uint8(1), int64(7), uint8(0))   // ycsb all
	f.Add(uint8(2), uint16(9), uint8(1), uint8(6), uint16(21), uint8(2), int64(13), uint8(9))  // smallbank random + double
	f.Add(uint8(3), uint16(0), uint8(1), uint8(4), uint16(50), uint8(0), int64(5), uint8(0))   // tpcc strict
	f.Add(uint8(4), uint16(14), uint8(2), uint8(8), uint16(18), uint8(1), int64(3), uint8(0))  // kv aria all

	f.Fuzz(func(t *testing.T, wl uint8, rows uint16, warm, txns uint8, failAfter uint16, mode uint8, crashSeed int64, refail uint8) {
		spec := DefaultSpec()
		spec.Cores = 1
		spec.WarmEpochs = int(warm % 3)
		spec.TxnsPerEpoch = 1 + int(txns%16)
		spec.Seed = 1 + (crashSeed&0x7fffffff)%17
		switch wl % 5 {
		case 0:
			spec.Workload, spec.Rows = "kv", 8+int(rows%40)
		case 1:
			spec.Workload, spec.Rows = "ycsb", 16+int(rows%32)
		case 2:
			spec.Workload, spec.Rows = "smallbank", 4+int(rows%28)
		case 3:
			spec.Workload, spec.Rows = "tpcc", 1+int(rows%2)
		case 4:
			spec.Workload, spec.Rows, spec.Aria = "kv", 8+int(rows%40), true
		}
		if err := spec.Validate(); err != nil {
			t.Skip(err)
		}
		sess, err := newSession(spec)
		if err != nil {
			t.Skip(err)
		}
		o, err := buildOracle(sess)
		if err != nil {
			// The only benign oracle failure is a probe epoch that happens
			// not to change the digest; anything else is a real bug.
			if strings.Contains(err.Error(), "left the digest unchanged") {
				t.Skip(err)
			}
			t.Fatal(err)
		}
		pt := Point{
			FailAfter: 1 + int64(failAfter)%o.flushes,
			Mode:      []string{"strict", "all", "random"}[mode%3],
			CrashSeed: crashSeed,
		}
		if refail > 0 {
			pt.DoubleFailAfter = 1 + int64(refail)%97
		}
		dev := o.snap.NewDevice()
		if v := o.explore(dev, pt, newFlightObs()); v != nil {
			t.Fatalf("crash-consistency violation: %s\n%s", v, v.FlightTail)
		}
	})
}
