// Package crashcheck is a deterministic crash-consistency model checker
// for the engine. Given a seeded workload spec, it first runs crash-free
// to capture oracle digests of the state before and after a probe epoch,
// then explores the crash-point space of that epoch — a device fail-point
// after every flushed line for small workloads, stratified sampling biased
// toward persist-phase (fence) boundaries for large ones, crossed with the
// three crash modes and with double faults during recovery — recovering at
// every point and checking that the recovered state matches the oracle and
// satisfies the engine's structural invariants.
//
// Exploration restarts from a device snapshot taken at the probe boundary
// (nvm.Snapshot), so each point costs one recovery plus one partial epoch
// instead of a full workload re-run, and runs on a pool of workers with
// one device replica each. Violations carry the exact crash point; the
// minimizer shrinks the workload spec while the violation still
// reproduces and emits a JSON reproducer replayable by cmd/nvtorture.
package crashcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

// Spec is a seeded, fully deterministic workload description. Two runs of
// the same spec produce identical epochs, flush sequences, and digests.
type Spec struct {
	// Workload selects the generator: "kv" (built-in mixed KV with GC
	// pressure, deletes, inserts, and aborts), "ycsb", "smallbank", or
	// "tpcc" (the engine's workload packages).
	Workload string `json:"workload"`
	// Aria runs the warm and probe epochs with Aria-style concurrency
	// control instead of declared write sets. Supported for "kv".
	Aria bool `json:"aria,omitempty"`
	// Cores is the engine core count (and device pool split).
	Cores int `json:"cores"`
	// Seed drives every random choice of the generator.
	Seed int64 `json:"seed"`
	// Rows scales the dataset: KV keys, YCSB rows, SmallBank customers, or
	// TPC-C warehouses.
	Rows int `json:"rows"`
	// WarmEpochs is how many committed epochs run between the initial load
	// and the probe epoch (the epoch whose crash points are explored).
	WarmEpochs int `json:"warm_epochs"`
	// TxnsPerEpoch sizes each warm and probe batch.
	TxnsPerEpoch int `json:"txns_per_epoch"`
	// ValueBytes is the KV payload size; above the inline threshold
	// (96 bytes at the default 256-byte row) values go to the pools and the
	// major collector runs. Ignored by the other workloads.
	ValueBytes int `json:"value_bytes,omitempty"`
	// MinorGC enables the minor collector.
	MinorGC bool `json:"minor_gc"`
	// ChaosDenom, when positive, enables chaos eviction with probability
	// 1/ChaosDenom per store — required to exercise intra-line torn
	// descriptors (§4.5 repair).
	ChaosDenom int `json:"chaos_denom,omitempty"`
	// PersistIndex enables the persistent index journal (§7 extension), so
	// exploration covers the journal fast path of recovery.
	PersistIndex bool `json:"persist_index,omitempty"`
	// AsyncPersist overlaps each epoch's commit tail (checkpoint fence and
	// epoch record) with the next epoch's work. The checker drains the
	// in-flight commit (core.DB.WaitDurable) before every digest, snapshot,
	// or injected crash, so fail points still index a deterministic flush
	// sequence.
	AsyncPersist bool `json:"async_persist,omitempty"`
	// Pipeline runs the engine's depth-1 epoch pipeline (core.Options.
	// Pipeline, which implies AsyncPersist): epoch N's entire checkpoint —
	// parallel pool staging, counters, the index-journal block, the
	// checkpoint fence, and the epoch record — runs on a background
	// committer while epoch N+1's front proceeds. The probe window then
	// spans TWO overlapped engine epochs (P and P+1, no drain between), so
	// fail points land inside the overlap: in P's committer while P+1
	// serializes, inits, or executes, or in P+1's front while P commits.
	// The committer's staging goroutines interleave with the front
	// nondeterministically even on one core, so a pipeline sweep samples
	// one interleaving per point (Report.Deterministic records this); the
	// recovered-state checks are interleaving-independent and still apply
	// at every point. A fail point fires on exactly one goroutine — the
	// checker drains the surviving side before cutting the device, matching
	// real hardware, where the power failure (not the crashed thread)
	// stops the other cores' stores mid-flight via the crash mode's
	// line-granular lottery.
	Pipeline bool `json:"pipeline,omitempty"`
}

// DefaultSpec returns a small KV spec whose probe epoch exercises final
// writes (inline and pooled), RMW chains, inserts, deletes, aborts, and an
// active major collector — small enough to sweep exhaustively.
//
// It is single-core on purpose: with one core the engine's epoch and
// recovery phases run sequentially, so the flush sequence — and therefore
// the crash state reached by fail-point N — is a pure function of the
// spec, making the exhaustive sweep and any minimized reproducer exactly
// replayable. Multi-core specs are still valid and every check still
// applies (any reachable crash prefix must recover correctly), but each
// fail-point then samples one scheduler interleaving instead of pinning
// a unique crash state; Report.Deterministic records which case ran.
func DefaultSpec() Spec {
	return Spec{
		Workload:     "kv",
		Cores:        1,
		Seed:         1,
		Rows:         48,
		WarmEpochs:   3,
		TxnsPerEpoch: 24,
		ValueBytes:   160,
		MinorGC:      true,
		ChaosDenom:   4,
	}
}

// Validate checks the spec for structural errors.
func (s Spec) Validate() error {
	switch s.Workload {
	case "kv":
	case "ycsb", "smallbank", "tpcc":
		if s.Aria {
			return fmt.Errorf("crashcheck: aria epochs are only supported for the kv workload, not %q", s.Workload)
		}
	default:
		return fmt.Errorf("crashcheck: unknown workload %q", s.Workload)
	}
	if s.Cores < 1 || s.Cores > 64 {
		return fmt.Errorf("crashcheck: cores %d out of range [1,64]", s.Cores)
	}
	minRows := 4
	switch s.Workload {
	case "ycsb":
		minRows = 16 // leaves room for a hot set below the total
	case "tpcc":
		minRows = 1 // rows means warehouses
	}
	if s.Rows < minRows || s.Rows > 1<<20 {
		return fmt.Errorf("crashcheck: rows %d out of range [%d,1M] for %s", s.Rows, minRows, s.Workload)
	}
	if s.WarmEpochs < 0 || s.WarmEpochs > 64 {
		return fmt.Errorf("crashcheck: warm epochs %d out of range [0,64]", s.WarmEpochs)
	}
	if s.TxnsPerEpoch < 1 || s.TxnsPerEpoch > 1<<16 {
		return fmt.Errorf("crashcheck: txns per epoch %d out of range [1,64K]", s.TxnsPerEpoch)
	}
	if s.ValueBytes < 0 || s.ValueBytes > 4096 {
		return fmt.Errorf("crashcheck: value bytes %d out of range [0,4096]", s.ValueBytes)
	}
	if s.ChaosDenom < 0 {
		return fmt.Errorf("crashcheck: negative chaos denominator")
	}
	return nil
}

// LoadSpec reads a JSON spec from a file.
func LoadSpec(path string) (Spec, error) {
	var s Spec
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("crashcheck: parse spec %s: %w", path, err)
	}
	return s, s.Validate()
}
