package crashcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Repro is a minimized, self-contained reproducer for one violation:
// replaying the spec's oracle run and then the single crash point
// reproduces the failed check. Serialized as JSON so CI can attach it as
// an artifact and cmd/nvtorture -repro can replay it.
type Repro struct {
	Spec   Spec   `json:"spec"`
	Point  Point  `json:"point"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
	// BrokenPersistOrder records that the run had the deliberate
	// SID-before-pointer ordering break enabled (core.SetPersistOrderBroken),
	// so Replay can reinstate it.
	BrokenPersistOrder bool `json:"broken_persist_order,omitempty"`
}

// WriteFile serializes the reproducer as indented JSON.
func (r Repro) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadRepro reads a JSON reproducer.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("crashcheck: parse repro %s: %w", path, err)
	}
	return r, r.Spec.Validate()
}

// Replay re-executes exactly the reproducer's crash point: oracle run,
// restore, crash, recover, checks. It returns the violation it reproduces,
// or nil if the build no longer exhibits it.
func Replay(r Repro) (*Violation, error) {
	sess, err := newSession(r.Spec)
	if err != nil {
		return nil, err
	}
	o, err := buildOracle(sess)
	if err != nil {
		return nil, err
	}
	dev := o.snap.NewDevice()
	return o.explore(dev, r.Point, newFlightObs()), nil
}

// Minimize greedily shrinks the spec while a bounded exploration still
// finds a violation, then returns a reproducer for the surviving
// violation on the smallest spec. seed is the starting violation from the
// original run; budget bounds the whole minimization (each probe run gets
// a slice of it). The reduction order tries the biggest structural cuts
// first: fewer warm epochs, fewer transactions, fewer rows, fewer cores,
// then chaos off.
func Minimize(spec Spec, seed Violation, cfg Config, budget time.Duration) Repro {
	deadline := time.Now().Add(budget)
	probe := cfg.withDefaults()
	probe.DoubleFaults = true
	if probe.MaxPoints <= 0 || probe.MaxPoints > 600 {
		probe.MaxPoints = 600
	}
	probe.Log = nil

	// check runs a bounded exploration of s and returns its first
	// violation. The per-probe budget keeps a pathological candidate from
	// eating the whole minimization window.
	check := func(s Spec) *Violation {
		if err := s.Validate(); err != nil {
			return nil
		}
		c := probe
		if remain := time.Until(deadline); remain <= 0 {
			return nil
		} else if c.Budget == 0 || c.Budget > remain/2 {
			c.Budget = remain / 2
		}
		rep, err := Run(s, c)
		if err != nil || len(rep.Violations) == 0 {
			return nil
		}
		return &rep.Violations[0]
	}

	cur, vio := spec, seed
	for time.Now().Before(deadline) {
		improved := false
		for _, cand := range reductions(cur) {
			if time.Now().After(deadline) {
				break
			}
			if v := check(cand); v != nil {
				cur, vio = cand, *v
				improved = true
				break // restart the reduction ladder from the smaller spec
			}
		}
		if !improved {
			break
		}
	}
	return Repro{Spec: cur, Point: vio.Point, Kind: vio.Kind, Detail: vio.Detail}
}

// reductions yields candidate smaller specs, biggest cuts first.
func reductions(s Spec) []Spec {
	var out []Spec
	add := func(c Spec) {
		if c != s && c.Validate() == nil {
			out = append(out, c)
		}
	}
	if s.WarmEpochs > 0 {
		c := s
		c.WarmEpochs /= 2
		add(c)
	}
	if s.TxnsPerEpoch > 1 {
		c := s
		c.TxnsPerEpoch /= 2
		if c.TxnsPerEpoch < 1 {
			c.TxnsPerEpoch = 1
		}
		add(c)
	}
	if s.Rows > 4 {
		c := s
		c.Rows /= 2
		add(c)
	}
	if s.Cores > 1 {
		c := s
		c.Cores = 1
		add(c)
	}
	if s.ChaosDenom > 0 {
		c := s
		c.ChaosDenom = 0
		add(c)
	}
	if s.PersistIndex {
		c := s
		c.PersistIndex = false
		add(c)
	}
	return out
}
