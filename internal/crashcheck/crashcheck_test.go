package crashcheck

import (
	"testing"
	"time"

	"nvcaracal/internal/core"
)

// smallSpec is DefaultSpec shrunk so an exhaustive sweep of every flushed
// line, all modes, with double faults, stays inside unit-test time.
func smallSpec() Spec {
	s := DefaultSpec()
	s.Rows = 32
	s.WarmEpochs = 2
	s.TxnsPerEpoch = 16
	return s
}

func mustRun(t *testing.T, spec Spec, cfg Config) *Report {
	t.Helper()
	rep, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	for i, v := range rep.Violations {
		if i >= 5 {
			t.Errorf("... and %d more", len(rep.Violations)-5)
			break
		}
		t.Errorf("violation: %v", v)
	}
	if rep.PointsExplored != rep.PointsPlanned {
		t.Errorf("explored %d of %d planned points", rep.PointsExplored, rep.PointsPlanned)
	}
}

func TestExhaustiveSweepKV(t *testing.T) {
	rep := mustRun(t, smallSpec(), Config{})
	assertClean(t, rep)
	if !rep.Exhaustive {
		t.Errorf("expected an exhaustive plan for the small spec")
	}
	if !rep.Deterministic {
		t.Errorf("expected a single-core spec to be deterministic")
	}
	if rep.FlushPoints < 16 {
		t.Errorf("suspiciously few flush points: %d", rep.FlushPoints)
	}
	if rep.FenceCount < 2 {
		t.Errorf("suspiciously few fences: %d", rep.FenceCount)
	}
	t.Logf("swept %d points over %d flushes (%d fences) in %dms",
		rep.PointsExplored, rep.FlushPoints, rep.FenceCount, rep.ElapsedMS)
}

func TestExhaustiveSweepAria(t *testing.T) {
	s := smallSpec()
	s.Aria = true
	rep := mustRun(t, s, Config{})
	assertClean(t, rep)
	if !rep.Exhaustive {
		t.Errorf("expected an exhaustive plan")
	}
}

func TestSweepPersistIndex(t *testing.T) {
	s := smallSpec()
	s.PersistIndex = true
	rep := mustRun(t, s, Config{})
	assertClean(t, rep)
}

// TestSweepAsyncPersist explores the same space with the epoch-commit tail
// running on a background goroutine: the checker drains it before every
// snapshot, crash, and digest, so fail points that land inside the commit
// (checkpoint fence, epoch record) are still explored deterministically.
func TestSweepAsyncPersist(t *testing.T) {
	s := smallSpec()
	s.AsyncPersist = true
	rep := mustRun(t, s, Config{})
	assertClean(t, rep)
	if !rep.Exhaustive {
		t.Errorf("expected an exhaustive plan for the small spec")
	}
}

// TestSweepPipeline explores the two-epoch overlapped window of the depth-1
// epoch pipeline: fail points land inside epoch P's background commit
// (parallel pool staging, counters, index journal, checkpoint fence, epoch
// record) while epoch P+1's front serializes, inits, and executes — and
// vice versa. The committer interleaves with the front nondeterministically
// even on one core, so the sweep does not assert Deterministic; every
// recovered state must still land on exactly the pre-, mid-, or post-window
// oracle digest.
func TestSweepPipeline(t *testing.T) {
	s := smallSpec()
	s.Pipeline = true
	rep := mustRun(t, s, Config{})
	assertClean(t, rep)
	if rep.WindowEpochs != 2 {
		t.Errorf("pipeline window spans %d epochs, want 2", rep.WindowEpochs)
	}
	if rep.DigestMid == "" || rep.DigestMid == rep.DigestPost || rep.DigestMid == rep.DigestPre {
		t.Errorf("mid-window digest %q not distinct from pre %q / post %q", rep.DigestMid, rep.DigestPre, rep.DigestPost)
	}
}

// TestSweepPipelinePersistIndex adds the index journal, so the committer's
// delta-block append and journal checkpoint run inside the overlap (or the
// front compacts inline when the block would not fit).
func TestSweepPipelinePersistIndex(t *testing.T) {
	s := smallSpec()
	s.Pipeline = true
	s.PersistIndex = true
	rep := mustRun(t, s, Config{MaxPoints: 300})
	assertClean(t, rep)
}

// TestSweepPipelineAria covers the Aria flavour's pre-init commit join.
func TestSweepPipelineAria(t *testing.T) {
	s := smallSpec()
	s.Pipeline = true
	s.Aria = true
	rep := mustRun(t, s, Config{MaxPoints: 300})
	assertClean(t, rep)
}

// TestSweepMajorGCHeavy pins the single-fence major-GC protocol: with the
// minor collector off and every value pooled, each probe epoch carries ring
// appends, phase-1 frees, and phase-2 row rewrites, all ordered by the one
// init fence (the collector itself issues none). The sweep would surface a
// lost free, a premature rewrite, or a mis-adopted ring entry at any of the
// crash points.
func TestSweepMajorGCHeavy(t *testing.T) {
	s := smallSpec()
	s.MinorGC = false
	s.TxnsPerEpoch = 24 // all updates of pooled values -> heavy major GC
	rep := mustRun(t, s, Config{MaxPoints: 300})
	assertClean(t, rep)
}

func TestSweepMultiCoreSampled(t *testing.T) {
	s := smallSpec()
	s.Cores = 2
	rep := mustRun(t, s, Config{MaxPoints: 200})
	assertClean(t, rep)
}

func TestSweepWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweeps are slow")
	}
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"ycsb", Spec{Workload: "ycsb", Cores: 1, Seed: 2, Rows: 32, WarmEpochs: 1, TxnsPerEpoch: 8, MinorGC: true, ChaosDenom: 5}},
		{"smallbank", Spec{Workload: "smallbank", Cores: 1, Seed: 3, Rows: 16, WarmEpochs: 1, TxnsPerEpoch: 8, MinorGC: true, ChaosDenom: 5}},
		{"tpcc", Spec{Workload: "tpcc", Cores: 1, Seed: 4, Rows: 1, WarmEpochs: 1, TxnsPerEpoch: 6, MinorGC: true, ChaosDenom: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustRun(t, tc.spec, Config{MaxPoints: 150})
			assertClean(t, rep)
		})
	}
}

func TestStratifiedPlanCoversFences(t *testing.T) {
	sess, err := newSession(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	o, err := buildOracle(sess)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxPoints: 60}.withDefaults()
	pts, exhaustive := plan(o, cfg)
	if exhaustive {
		t.Fatalf("a %d-point cap over %d flushes should not be exhaustive", cfg.MaxPoints, o.flushes)
	}
	if len(pts) == 0 || len(pts) > cfg.MaxPoints {
		t.Fatalf("planned %d points under a cap of %d", len(pts), cfg.MaxPoints)
	}
	has := make(map[int64]bool)
	for _, pt := range pts {
		has[pt.FailAfter] = true
	}
	if !has[1] || !has[o.flushes] {
		t.Errorf("stratified plan misses the first or last flush")
	}
	covered := 0
	for _, m := range o.fenceMarks {
		if has[m] || has[m+1] {
			covered++
		}
	}
	if covered < len(o.fenceMarks)/2 {
		t.Errorf("stratified plan covers only %d of %d fence boundaries", covered, len(o.fenceMarks))
	}
}

// TestCommittedReprosStayFixed replays the reproducers committed for
// ordering bugs the sweeps surfaced. Each must come back clean: a non-nil
// violation means the bug regressed. The tpcc reproducer pins the
// decode-after-restore ordering in recovery — the TPC-C decoder mutates the
// persistent counters at decode time (§6.2.3 ID re-assignment), so decoding
// the crashed epoch's WAL batch before the counter-parity restore shifts
// every counter-derived key during replay.
func TestCommittedReprosStayFixed(t *testing.T) {
	for _, name := range []string{"repro-tpcc-decode-counters.json"} {
		t.Run(name, func(t *testing.T) {
			r, err := LoadRepro("testdata/" + name)
			if err != nil {
				t.Fatalf("LoadRepro: %v", err)
			}
			if r.BrokenPersistOrder {
				t.Fatalf("fixed-bug reproducer unexpectedly wants the sabotage build")
			}
			v, err := Replay(r)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if v != nil {
				t.Fatalf("committed reproducer replays again — the bug regressed: %v", v)
			}
		})
	}
}

// TestSabotageReproStillReplays is the counterpart harness check: the
// committed minimized reproducer from the -break-persist-order self-test
// must still reproduce its violation when the deliberate ordering break is
// reinstated. This proves Replay actually exercises the recorded crash
// point (so the clean replays above mean "fixed", not "harness inert").
func TestSabotageReproStillReplays(t *testing.T) {
	r, err := LoadRepro("testdata/repro-broken-persist-order.json")
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if !r.BrokenPersistOrder {
		t.Fatalf("sabotage reproducer lost its broken_persist_order flag")
	}
	core.SetPersistOrderBroken(true)
	defer core.SetPersistOrderBroken(false)
	v, err := Replay(r)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if v == nil {
		t.Fatalf("sabotage reproducer no longer replays: %+v", r)
	}
	if v.Kind != r.Kind {
		t.Errorf("replayed kind %q, recorded %q", v.Kind, r.Kind)
	}
}

// TestBrokenPersistOrderCaught is the checker's own end-to-end test: with
// the SID-before-pointer store ordering deliberately inverted, chaos
// eviction can tear a descriptor between its fields, and the sweep must
// catch the resulting corruption and minimize it to a replayable
// reproducer.
func TestBrokenPersistOrderCaught(t *testing.T) {
	core.SetPersistOrderBroken(true)
	defer core.SetPersistOrderBroken(false)

	s := smallSpec()
	s.Seed = 7
	rep := mustRun(t, s, Config{})
	if len(rep.Violations) == 0 {
		t.Fatalf("broken persist ordering survived a %d-point exhaustive sweep", rep.PointsExplored)
	}
	t.Logf("caught %d violations; first: %v", len(rep.Violations), rep.Violations[0])

	repro := Minimize(s, rep.Violations[0], Config{}, 30*time.Second)
	repro.BrokenPersistOrder = true
	if repro.Spec.Rows > s.Rows || repro.Spec.TxnsPerEpoch > s.TxnsPerEpoch {
		t.Errorf("minimization grew the spec: %+v", repro.Spec)
	}
	v, err := Replay(repro)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if v == nil {
		t.Fatalf("minimized reproducer does not replay: %+v", repro)
	}
	t.Logf("minimized to %+v, replays as %v", repro.Spec, v)
}
