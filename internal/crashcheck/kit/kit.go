// Package kit is the shared workload-and-crash scaffolding used by the
// crash-consistency model checker (internal/crashcheck) and by the crash
// tests across internal/core, internal/submit, and internal/nvm, which
// previously each carried their own copy of the same KV transaction
// builders, registries, and crash-catching run helpers.
//
// The kit speaks a single logged KV schema: every builder has a decoder
// registered under its type id, so any workload assembled from kit
// transactions is recoverable by replay. Both epoch flavours are covered —
// the Caracal-style declared-write-set builders (Mk*) and Aria-style
// snapshot-execution builders (Aria*).
package kit

import (
	"encoding/binary"
	"fmt"

	"nvcaracal/internal/core"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
)

// Table is the KV table id used by all kit transactions.
const Table = uint32(1)

// Logged transaction type ids (Caracal-style namespace).
const (
	TypeSet uint16 = 0x4B00 + iota
	TypeInsert
	TypeDelete
	TypeRMW
	TypeAbortSet
	TypeTransfer
)

// Aria transaction type ids (separate namespace, same encodings).
const (
	AriaTypeSet uint16 = 0xA400 + iota
	AriaTypeDelete
	AriaTypeRMW
	AriaTypeTransfer
)

func encKV(key uint64, val []byte) []byte {
	b := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(b, key)
	copy(b[8:], val)
	return b
}

func decKV(d []byte) (uint64, []byte, error) {
	if len(d) < 8 {
		return 0, nil, fmt.Errorf("kit: short KV input (%d bytes)", len(d))
	}
	return binary.LittleEndian.Uint64(d), d[8:], nil
}

func encPair(a, b uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, a)
	binary.LittleEndian.PutUint64(buf[8:], b)
	return buf
}

func decPair(d []byte) (uint64, uint64, error) {
	if len(d) != 16 {
		return 0, 0, fmt.Errorf("kit: bad pair input (%d bytes)", len(d))
	}
	return binary.LittleEndian.Uint64(d), binary.LittleEndian.Uint64(d[8:]), nil
}

// MkSet updates key to val (the row must exist).
func MkSet(key uint64, val []byte) *core.Txn {
	return &core.Txn{
		TypeID: TypeSet,
		Input:  encKV(key, val),
		Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpUpdate}},
		Exec: func(ctx *core.Ctx) {
			ctx.Write(Table, key, val)
		},
	}
}

// MkInsert creates key with val.
func MkInsert(key uint64, val []byte) *core.Txn {
	return &core.Txn{
		TypeID: TypeInsert,
		Input:  encKV(key, val),
		Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpInsert}},
		Exec: func(ctx *core.Ctx) {
			ctx.Insert(Table, key, val)
		},
	}
}

// MkDelete removes key.
func MkDelete(key uint64) *core.Txn {
	return &core.Txn{
		TypeID: TypeDelete,
		Input:  encKV(key, nil),
		Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpDelete}},
		Exec: func(ctx *core.Ctx) {
			ctx.Delete(Table, key)
		},
	}
}

// MkRMW appends suffix to key's current value (read-modify-write; creates
// a one-byte value if the row is missing its value but exists).
func MkRMW(key uint64, suffix byte) *core.Txn {
	return &core.Txn{
		TypeID: TypeRMW,
		Input:  encKV(key, []byte{suffix}),
		Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpUpdate}},
		Exec: func(ctx *core.Ctx) {
			cur, _ := ctx.Read(Table, key)
			next := make([]byte, 0, len(cur)+1)
			next = append(next, cur...)
			next = append(next, suffix)
			ctx.Write(Table, key, next)
		},
	}
}

// MkAbortSet declares a write to key but aborts before performing it,
// exercising the deterministic-abort (IGNORE marker) path.
func MkAbortSet(key uint64, val []byte) *core.Txn {
	return &core.Txn{
		TypeID: TypeAbortSet,
		Input:  encKV(key, val),
		Ops:    []core.Op{{Table: Table, Key: key, Kind: core.OpUpdate}},
		Exec: func(ctx *core.Ctx) {
			ctx.Abort()
		},
	}
}

// MkTransfer moves the last byte of from's value onto to's value; it
// aborts when from is empty or either row is missing.
func MkTransfer(from, to uint64) *core.Txn {
	return &core.Txn{
		TypeID: TypeTransfer,
		Input:  encPair(from, to),
		Ops: []core.Op{
			{Table: Table, Key: from, Kind: core.OpUpdate},
			{Table: Table, Key: to, Kind: core.OpUpdate},
		},
		Exec: func(ctx *core.Ctx) {
			src, okS := ctx.Read(Table, from)
			dst, okD := ctx.Read(Table, to)
			if !okS || !okD || len(src) == 0 {
				ctx.Abort()
				return
			}
			moved := src[len(src)-1]
			ctx.Write(Table, from, src[:len(src)-1])
			next := make([]byte, 0, len(dst)+1)
			next = append(next, dst...)
			next = append(next, moved)
			ctx.Write(Table, to, next)
		},
	}
}

// Registry returns a registry with decoders for every kit builder, as
// recovery replay requires.
func Registry() *core.Registry {
	reg := core.NewRegistry()
	reg.Register(TypeSet, func(d []byte, _ *core.DB) (*core.Txn, error) {
		key, val, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return MkSet(key, val), nil
	})
	reg.Register(TypeInsert, func(d []byte, _ *core.DB) (*core.Txn, error) {
		key, val, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return MkInsert(key, val), nil
	})
	reg.Register(TypeDelete, func(d []byte, _ *core.DB) (*core.Txn, error) {
		key, _, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return MkDelete(key), nil
	})
	reg.Register(TypeRMW, func(d []byte, _ *core.DB) (*core.Txn, error) {
		key, val, err := decKV(d)
		if err != nil || len(val) != 1 {
			return nil, fmt.Errorf("kit: bad RMW input: %v", err)
		}
		return MkRMW(key, val[0]), nil
	})
	reg.Register(TypeAbortSet, func(d []byte, _ *core.DB) (*core.Txn, error) {
		key, val, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return MkAbortSet(key, val), nil
	})
	reg.Register(TypeTransfer, func(d []byte, _ *core.DB) (*core.Txn, error) {
		from, to, err := decPair(d)
		if err != nil {
			return nil, err
		}
		return MkTransfer(from, to), nil
	})
	return reg
}

// AriaSet inserts-or-updates key to val.
func AriaSet(key uint64, val []byte) *core.AriaTxn {
	return &core.AriaTxn{
		TypeID: AriaTypeSet,
		Input:  encKV(key, val),
		Exec: func(ctx *core.AriaCtx) {
			ctx.Write(Table, key, val)
		},
	}
}

// AriaDelete removes key.
func AriaDelete(key uint64) *core.AriaTxn {
	return &core.AriaTxn{
		TypeID: AriaTypeDelete,
		Input:  encKV(key, nil),
		Exec: func(ctx *core.AriaCtx) {
			ctx.Delete(Table, key)
		},
	}
}

// AriaRMW appends suffix to key's snapshot value.
func AriaRMW(key uint64, suffix byte) *core.AriaTxn {
	return &core.AriaTxn{
		TypeID: AriaTypeRMW,
		Input:  encKV(key, []byte{suffix}),
		Exec: func(ctx *core.AriaCtx) {
			cur, _ := ctx.Read(Table, key)
			next := make([]byte, 0, len(cur)+1)
			next = append(next, cur...)
			next = append(next, suffix)
			ctx.Write(Table, key, next)
		},
	}
}

// AriaTransfer moves the last byte of from's value onto to's value,
// aborting when impossible.
func AriaTransfer(from, to uint64) *core.AriaTxn {
	return &core.AriaTxn{
		TypeID: AriaTypeTransfer,
		Input:  encPair(from, to),
		Exec: func(ctx *core.AriaCtx) {
			src, okS := ctx.Read(Table, from)
			dst, okD := ctx.Read(Table, to)
			if !okS || !okD || len(src) == 0 {
				ctx.Abort()
				return
			}
			moved := src[len(src)-1]
			ctx.Write(Table, from, src[:len(src)-1])
			next := make([]byte, 0, len(dst)+1)
			next = append(next, dst...)
			next = append(next, moved)
			ctx.Write(Table, to, next)
		},
	}
}

// AriaRegistry returns decoders for the Aria builders.
func AriaRegistry() *core.AriaRegistry {
	reg := core.NewAriaRegistry()
	reg.Register(AriaTypeSet, func(d []byte, _ *core.DB) (*core.AriaTxn, error) {
		key, val, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return AriaSet(key, val), nil
	})
	reg.Register(AriaTypeDelete, func(d []byte, _ *core.DB) (*core.AriaTxn, error) {
		key, _, err := decKV(d)
		if err != nil {
			return nil, err
		}
		return AriaDelete(key), nil
	})
	reg.Register(AriaTypeRMW, func(d []byte, _ *core.DB) (*core.AriaTxn, error) {
		key, val, err := decKV(d)
		if err != nil || len(val) != 1 {
			return nil, fmt.Errorf("kit: bad aria RMW input: %v", err)
		}
		return AriaRMW(key, val[0]), nil
	})
	reg.Register(AriaTypeTransfer, func(d []byte, _ *core.DB) (*core.AriaTxn, error) {
		from, to, err := decPair(d)
		if err != nil {
			return nil, err
		}
		return AriaTransfer(from, to), nil
	})
	return reg
}

// Layout returns a small engine layout sized for crash tests: rows and
// values per core, 256-byte rows, one 512-byte value class.
func Layout(cores int, rowsPerCore, valuesPerCore int64) pmem.Layout {
	lay := pmem.Layout{
		Cores:          cores,
		RowSize:        256,
		RowsPerCore:    rowsPerCore,
		ValueSize:      512,
		ValuesPerCore:  valuesPerCore,
		RingCap:        4 * (rowsPerCore + valuesPerCore),
		LogBytes:       1 << 20,
		Counters:       8,
		ScratchPerCore: 1 << 16,
	}
	if err := lay.Finalize(); err != nil {
		panic(fmt.Sprintf("kit: layout: %v", err))
	}
	return lay
}

// Options returns engine options for crash tests: NVCaracal mode, cache and
// minor GC on, both kit registries installed.
func Options(cores int) core.Options {
	return OptionsSized(cores, 2048, 2048)
}

// OptionsSized is Options with explicit per-core pool sizing.
func OptionsSized(cores int, rowsPerCore, valuesPerCore int64) core.Options {
	return core.Options{
		Cores:          cores,
		Mode:           core.ModeNVCaracal,
		Layout:         Layout(cores, rowsPerCore, valuesPerCore),
		CacheEnabled:   true,
		CacheK:         4,
		CacheOnRead:    true,
		MinorGCEnabled: true,
		Registry:       Registry(),
		AriaRegistry:   AriaRegistry(),
	}
}

// RunUntilCrash runs one Caracal-style epoch, converting an injected
// device crash into a clean return: fired reports whether the fail-point
// fired before the epoch completed. The epoch's asynchronous commit tail
// (if Options.AsyncPersist is on) is drained inside the protected region,
// so a fail point landing there also reports fired.
func RunUntilCrash(db *core.DB, batch []*core.Txn) (fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r != nvm.ErrInjectedCrash {
				panic(r)
			}
			fired = true
			err = nil
		}
	}()
	_, err = db.RunEpoch(batch)
	db.WaitDurable()
	return false, err
}

// RunFuncUntilCrash runs f with injected-crash conversion: a device
// fail-point panic raised on the calling goroutine — or re-raised there by
// a durability barrier joining the engine's background committer — reports
// fired instead of propagating. It generalizes RunUntilCrash to multi-epoch
// windows, e.g. the pipelined probe window of two overlapped epochs.
func RunFuncUntilCrash(f func() error) (fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r != nvm.ErrInjectedCrash {
				panic(r)
			}
			fired = true
			err = nil
		}
	}()
	return false, f()
}

// Quiesce drains the engine's background commit stage, swallowing the
// sticky re-raised injected crash if the committer was the side that hit
// the fail-point. Call it after a caught injected crash and before
// nvm.Device.Crash: the fail-point fires on exactly one goroutine, and
// under an overlapped commit the surviving side keeps issuing device
// accesses until joined.
func Quiesce(db *core.DB) {
	defer func() {
		if r := recover(); r != nil && r != nvm.ErrInjectedCrash {
			panic(r)
		}
	}()
	db.WaitDurable()
}

// RunAriaUntilCrash is RunUntilCrash for an Aria-flavoured epoch.
func RunAriaUntilCrash(db *core.DB, batch []*core.AriaTxn) (fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r != nvm.ErrInjectedCrash {
				panic(r)
			}
			fired = true
			err = nil
		}
	}()
	_, err = db.RunEpochAria(batch)
	db.WaitDurable()
	return false, err
}

// RecoverUntilCrash attempts a recovery that may itself hit an armed
// fail-point (a double fault). On a clean finish it returns the recovered
// database; fired reports an injected crash interrupted it.
func RecoverUntilCrash(dev *nvm.Device, opts core.Options) (db *core.DB, rep *core.RecoveryReport, fired bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			if r != nvm.ErrInjectedCrash {
				panic(r)
			}
			db, rep, err = nil, nil, nil
			fired = true
		}
	}()
	db, rep, err = core.Recover(dev, opts)
	return db, rep, false, err
}

// SnapshotKV reads keys [0, maxKey) of the kit table from committed state,
// omitting absent rows.
func SnapshotKV(db *core.DB, maxKey uint64) map[uint64][]byte {
	m := make(map[uint64][]byte)
	for k := uint64(0); k < maxKey; k++ {
		if v, ok := db.Get(Table, k); ok {
			m[k] = v
		}
	}
	return m
}
