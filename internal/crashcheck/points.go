package crashcheck

import (
	"math/rand"
	"sort"
)

// dfOffsets are the recovery-relative fail-point positions used for
// double-fault variants: early (header/pool restore), mid (scan/repair),
// and later (replay) phases of recovery.
var dfOffsets = [...]int64{3, 7, 17, 41, 97}

// plan enumerates the crash points to explore. With no MaxPoints cap — or
// when the full cross product fits under it — every fail-point in
// [1, flushes] is planned (exhaustive). Otherwise fail-points are sampled,
// stratified toward the persist-phase boundaries the fence marks identify:
// the flushes immediately around each fence are where checkpoint ordering
// bugs live, so each mark contributes its neighborhood [m-1, m+2] before
// the remaining budget spreads uniformly.
func plan(o *oracle, cfg Config) ([]Point, bool) {
	variantsPerFA := 0
	for _, m := range cfg.Modes {
		if m == "random" {
			variantsPerFA += cfg.RandomSeeds
		} else {
			variantsPerFA++
		}
	}
	if variantsPerFA == 0 {
		return nil, false
	}

	F := o.flushes
	budget := int64(0)
	if cfg.MaxPoints > 0 {
		budget = int64(cfg.MaxPoints)
		if cfg.DoubleFaults {
			// Double-fault variants ride on top of every DoubleEvery-th
			// point; reserve their share of the budget.
			budget = budget * int64(cfg.DoubleEvery) / int64(cfg.DoubleEvery+1)
		}
	}

	var fas []int64
	exhaustive := budget == 0 || F*int64(variantsPerFA) <= budget
	if exhaustive {
		fas = make([]int64, 0, F)
		for fa := int64(1); fa <= F; fa++ {
			fas = append(fas, fa)
		}
	} else {
		maxFAs := budget / int64(variantsPerFA)
		if maxFAs < 1 {
			maxFAs = 1
		}
		picked := make(map[int64]struct{})
		add := func(fa int64) {
			if fa >= 1 && fa <= F && int64(len(picked)) < maxFAs {
				picked[fa] = struct{}{}
			}
		}
		add(1)
		add(F)
		for _, m := range o.fenceMarks {
			for fa := m - 1; fa <= m+2; fa++ {
				add(fa)
			}
		}
		rng := rand.New(rand.NewSource(o.sess.spec.Seed ^ 0x5DEECE66D))
		for int64(len(picked)) < maxFAs {
			add(rng.Int63n(F) + 1)
		}
		fas = make([]int64, 0, len(picked))
		for fa := range picked {
			fas = append(fas, fa)
		}
		sort.Slice(fas, func(i, j int) bool { return fas[i] < fas[j] })
	}

	pts := make([]Point, 0, int64(len(fas))*int64(variantsPerFA))
	for _, fa := range fas {
		for _, m := range cfg.Modes {
			seeds := 1
			if m == "random" {
				seeds = cfg.RandomSeeds
			}
			for s := 0; s < seeds; s++ {
				pts = append(pts, Point{
					FailAfter: fa,
					Mode:      m,
					CrashSeed: o.sess.spec.Seed*31 + fa*1009 + int64(s),
				})
			}
		}
	}

	if cfg.DoubleFaults {
		n := len(pts)
		for i := 0; i < n; i += cfg.DoubleEvery {
			pt := pts[i]
			pt.DoubleFailAfter = dfOffsets[(i/cfg.DoubleEvery)%len(dfOffsets)]
			pts = append(pts, pt)
		}
	}
	if cfg.MaxPoints > 0 && len(pts) > cfg.MaxPoints {
		pts = pts[:cfg.MaxPoints]
		exhaustive = false
	}
	return pts, exhaustive
}
