package crashcheck

import (
	"fmt"
	"math/rand"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/workload/smallbank"
	"nvcaracal/internal/workload/tpcc"
	"nvcaracal/internal/workload/ycsb"
)

// kvInsBase is the first key used by generated KV inserts; base rows live
// in [0, Rows) and Validate caps Rows at 1<<20, so the ranges never meet.
const kvInsBase = uint64(1) << 20

// loadBatchSize bounds the initial-load epochs for every workload.
const loadBatchSize = 512

// session turns a Spec into a runnable engine configuration plus a
// deterministic stream of epoch batches. Batches are regenerated from the
// seed on every call — core.Txn objects carry per-run state and must not
// be submitted twice — so the oracle run and every checker worker observe
// identical epochs.
type session struct {
	spec Spec
	opts core.Options
	// loadEpochs is how many engine epochs the initial load consumes; the
	// probe epoch is engine epoch loadEpochs+WarmEpochs+1.
	loadEpochs int

	y  *ycsb.Workload
	sb *smallbank.Workload
	tp *tpcc.Workload
}

func newSession(spec Spec) (*session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s := &session{spec: spec}
	var err error
	switch spec.Workload {
	case "kv":
		err = s.initKV()
	case "ycsb":
		err = s.initYCSB()
	case "smallbank":
		err = s.initSmallBank()
	case "tpcc":
		err = s.initTPCC()
	}
	if err != nil {
		return nil, err
	}
	s.opts.MinorGCEnabled = spec.MinorGC
	s.opts.PersistIndex = spec.PersistIndex
	s.opts.AsyncPersist = spec.AsyncPersist
	s.opts.Pipeline = spec.Pipeline
	if err := s.opts.Layout.Finalize(); err != nil {
		return nil, fmt.Errorf("crashcheck: layout: %w", err)
	}
	s.loadEpochs = (s.datasetRows() + loadBatchSize - 1) / loadBatchSize
	return s, nil
}

// datasetRows is how many load transactions the workload's initial load
// issues (the load runs loadBatchSize of them per epoch).
func (s *session) datasetRows() int {
	switch s.spec.Workload {
	case "kv":
		return s.spec.Rows
	case "ycsb":
		return s.spec.Rows
	case "smallbank":
		return 2 * s.spec.Rows // checking + savings per customer
	default:
		n := 0
		for _, b := range s.tp.LoadBatches(loadBatchSize) {
			n += len(b)
		}
		return n
	}
}

// pow2At rounds need up to a power of two no smaller than min.
func pow2At(min, need int64) int64 {
	s := min
	for s < need {
		s <<= 1
	}
	return s
}

// baseLayout fills the fields every workload shares; callers set the
// row/value geometry. Pools are sized at the spec's full requirement per
// core rather than divided by cores: allocation follows the executing
// core, which can be arbitrarily skewed.
func baseLayout(spec Spec, rowSize, rowsPerCore, valueSize, valuesPerCore, counters int64) pmem.Layout {
	lay := pmem.Layout{
		Cores:          spec.Cores,
		RowSize:        rowSize,
		RowsPerCore:    rowsPerCore,
		ValueSize:      valueSize,
		ValuesPerCore:  valuesPerCore,
		RingCap:        4 * (rowsPerCore + valuesPerCore),
		LogBytes:       pow2At(1<<16, int64(spec.TxnsPerEpoch)*int64(spec.ValueBytes+128)*4),
		Counters:       counters,
		ScratchPerCore: 1 << 16,
	}
	if spec.PersistIndex {
		lay.IndexLogBytes = 1 << 16
	}
	return lay
}

func (s *session) initKV() error {
	spec := s.spec
	// Base rows plus every insert the warm and probe epochs can issue.
	rows := int64(spec.Rows + (spec.WarmEpochs+2)*spec.TxnsPerEpoch + 64)
	// RMW and transfer append one byte per touch, so values grow past
	// ValueBytes over the run; size the slot for the worst case.
	growth := int64((spec.WarmEpochs + 2) * spec.TxnsPerEpoch)
	slot := pow2At(256, int64(spec.ValueBytes)+growth+16)
	s.opts = core.Options{
		Cores:        spec.Cores,
		Mode:         core.ModeNVCaracal,
		Layout:       baseLayout(spec, 256, rows, slot, rows*3, 8),
		CacheEnabled: true,
		CacheK:       4,
		CacheOnRead:  true,
		Registry:     kit.Registry(),
		AriaRegistry: kit.AriaRegistry(),
	}
	return nil
}

func (s *session) initYCSB() error {
	spec := s.spec
	vb := spec.ValueBytes
	if vb == 0 {
		vb = 120
	}
	cfg := ycsb.Config{
		Rows:      spec.Rows,
		ValueSize: vb,
		UpdateBytes: func() int {
			if vb < 100 {
				return vb
			}
			return 100
		}(),
		HotRows: max(4, spec.Rows/8),
		HotOps:  4,
	}
	w, err := ycsb.New(cfg)
	if err != nil {
		return err
	}
	s.y = w
	reg := core.NewRegistry()
	w.Register(reg)
	rows := int64(spec.Rows + 64)
	s.opts = core.Options{
		Cores:        spec.Cores,
		Mode:         core.ModeNVCaracal,
		Layout:       baseLayout(spec, 256, rows, pow2At(256, int64(vb)+8), rows*3, 4),
		CacheEnabled: true,
		CacheK:       4,
		CacheOnRead:  true,
		Registry:     reg,
	}
	return nil
}

func (s *session) initSmallBank() error {
	spec := s.spec
	w, err := smallbank.New(smallbank.DefaultConfig(spec.Rows, max(2, spec.Rows/8)))
	if err != nil {
		return err
	}
	s.sb = w
	reg := core.NewRegistry()
	w.Register(reg)
	rows := int64(spec.Rows)*3 + 64
	s.opts = core.Options{
		Cores:        spec.Cores,
		Mode:         core.ModeNVCaracal,
		Layout:       baseLayout(spec, 128, rows, 256, rows, 4),
		CacheEnabled: true,
		CacheK:       4,
		CacheOnRead:  true,
		Registry:     reg,
	}
	return nil
}

func (s *session) initTPCC() error {
	spec := s.spec
	cfg := tpcc.Config{
		Warehouses:           spec.Rows,
		Districts:            2,
		CustomersPerDistrict: 20,
		Items:                50,
	}
	w, err := tpcc.New(cfg)
	if err != nil {
		return err
	}
	s.tp = w
	reg := core.NewRegistry()
	w.Register(reg)
	// Orders, order lines, and history rows accumulate every epoch.
	base := int64(cfg.Warehouses*(cfg.Districts*(1+cfg.CustomersPerDistrict)+cfg.Items) + 8)
	grow := int64((spec.WarmEpochs + 2) * spec.TxnsPerEpoch * 16)
	rows := base + grow + 256
	s.opts = core.Options{
		Cores:            spec.Cores,
		Mode:             core.ModeNVCaracal,
		Layout:           baseLayout(spec, 192, rows, 256, rows, cfg.RequiredCounters()),
		CacheEnabled:     true,
		CacheK:           4,
		CacheOnRead:      true,
		MinorGCEnabled:   true,
		RevertOnRecovery: true,
		Registry:         reg,
	}
	return nil
}

// newDevice creates a fresh device sized for the session, with chaos
// eviction armed when the spec asks for it.
func (s *session) newDevice() *nvm.Device {
	var devOpts []nvm.Option
	if s.spec.ChaosDenom > 0 {
		devOpts = append(devOpts, nvm.WithChaosEviction(s.spec.ChaosDenom, s.spec.Seed))
	}
	return nvm.New(s.opts.Layout.TotalBytes(), devOpts...)
}

// rng returns the deterministic stream for one logical epoch (1-based;
// the probe epoch is WarmEpochs+1). Epoch streams are independent so a
// worker can regenerate the probe batch without replaying warm epochs.
func (s *session) rng(logicalEpoch int) *rand.Rand {
	return rand.New(rand.NewSource(s.spec.Seed*1_000_003 + int64(logicalEpoch)*2_654_435_761))
}

func fillValue(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// loadBatches regenerates the initial-load epochs.
func (s *session) loadBatches() [][]*core.Txn {
	switch s.spec.Workload {
	case "kv":
		rng := s.rng(0)
		var batches [][]*core.Txn
		var cur []*core.Txn
		for k := 0; k < s.spec.Rows; k++ {
			n := 8
			if s.spec.ValueBytes > 0 && k%3 == 0 {
				n = s.spec.ValueBytes
			}
			cur = append(cur, kit.MkInsert(uint64(k), fillValue(rng, n)))
			if len(cur) == loadBatchSize {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			batches = append(batches, cur)
		}
		return batches
	case "ycsb":
		return s.y.LoadBatches(loadBatchSize)
	case "smallbank":
		return s.sb.LoadBatches(loadBatchSize)
	default:
		return s.tp.LoadBatches(loadBatchSize)
	}
}

// kvInsKey is the key inserted at position i of logical epoch le.
func (s *session) kvInsKey(le, i int) uint64 {
	return kvInsBase + uint64(le*s.spec.TxnsPerEpoch+i)
}

// batch generates one logical epoch for the Caracal-style flavours. The
// KV mix is positional so structural pairings hold by construction: slot
// i%8==5 inserts a fresh key every epoch and slot i%8==6 deletes exactly
// the key slot 5 inserted one epoch earlier — never double-deleted, never
// colliding with the base keys the RMW/set/transfer slots touch. tpcc
// reads committed counters from db (identical between the oracle and a
// recovered worker), the rest ignore it.
func (s *session) batch(db *core.DB, le int) []*core.Txn {
	rng := s.rng(le)
	n := s.spec.TxnsPerEpoch
	switch s.spec.Workload {
	case "ycsb":
		return s.y.GenBatch(rng, n)
	case "smallbank":
		return s.sb.GenBatch(rng, n)
	case "tpcc":
		return s.tp.GenBatch(rng, db, n)
	}
	out := make([]*core.Txn, 0, n)
	for i := 0; i < n; i++ {
		hot := uint64(rng.Intn(max(1, s.spec.Rows/4)))
		any := uint64(rng.Intn(s.spec.Rows))
		switch i % 8 {
		case 0, 1, 2:
			out = append(out, kit.MkRMW(hot, byte('a'+rng.Intn(26))))
		case 3:
			out = append(out, kit.MkSet(any, fillValue(rng, max(8, s.spec.ValueBytes))))
		case 4:
			out = append(out, kit.MkSet(any, fillValue(rng, 8)))
		case 5:
			out = append(out, kit.MkInsert(s.kvInsKey(le, i), fillValue(rng, max(8, s.spec.ValueBytes))))
		case 6:
			if le >= 2 {
				out = append(out, kit.MkDelete(s.kvInsKey(le-1, i-1)))
			} else {
				out = append(out, kit.MkRMW(any, byte('0'+rng.Intn(10))))
			}
		default:
			if rng.Intn(2) == 0 {
				to := uint64(rng.Intn(s.spec.Rows))
				if to == any { // a transfer must touch two distinct rows
					to = (to + 1) % uint64(s.spec.Rows)
				}
				out = append(out, kit.MkTransfer(any, to))
			} else {
				out = append(out, kit.MkAbortSet(any, fillValue(rng, 8)))
			}
		}
	}
	return out
}

// ariaBatch is batch for the Aria flavour (kv only).
func (s *session) ariaBatch(le int) []*core.AriaTxn {
	rng := s.rng(le)
	n := s.spec.TxnsPerEpoch
	out := make([]*core.AriaTxn, 0, n)
	for i := 0; i < n; i++ {
		hot := uint64(rng.Intn(max(1, s.spec.Rows/4)))
		any := uint64(rng.Intn(s.spec.Rows))
		switch i % 8 {
		case 0, 1, 2:
			out = append(out, kit.AriaRMW(hot, byte('a'+rng.Intn(26))))
		case 3:
			out = append(out, kit.AriaSet(any, fillValue(rng, max(8, s.spec.ValueBytes))))
		case 4:
			out = append(out, kit.AriaSet(any, fillValue(rng, 8)))
		case 5:
			out = append(out, kit.AriaSet(s.kvInsKey(le, i), fillValue(rng, max(8, s.spec.ValueBytes))))
		case 6:
			if le >= 2 {
				out = append(out, kit.AriaDelete(s.kvInsKey(le-1, i-1)))
			} else {
				out = append(out, kit.AriaRMW(any, byte('0'+rng.Intn(10))))
			}
		default:
			to := uint64(rng.Intn(s.spec.Rows))
			if to == any {
				to = (to + 1) % uint64(s.spec.Rows)
			}
			out = append(out, kit.AriaTransfer(any, to))
		}
	}
	return out
}

// runEpoch runs one logical epoch in the spec's flavour. It drains the
// asynchronous commit tail before returning so callers can snapshot the
// device or digest the state immediately (a no-op with AsyncPersist off).
func (s *session) runEpoch(db *core.DB, le int) error {
	if s.spec.Aria {
		if _, err := db.RunEpochAria(s.ariaBatch(le)); err != nil {
			return err
		}
		db.WaitDurable()
		return nil
	}
	if _, err := db.RunEpoch(s.batch(db, le)); err != nil {
		return err
	}
	db.WaitDurable()
	return nil
}

// runEpochUntilCrash is runEpoch with injected-crash conversion.
func (s *session) runEpochUntilCrash(db *core.DB, le int) (bool, error) {
	if s.spec.Aria {
		return kit.RunAriaUntilCrash(db, s.ariaBatch(le))
	}
	return kit.RunUntilCrash(db, s.batch(db, le))
}

// windowEpochs is how many engine epochs the probe window spans: one
// normally, two under Pipeline, where the point of the sweep is the overlap
// between epoch P's background commit and epoch P+1's front.
func (s *session) windowEpochs() int {
	if s.spec.Pipeline {
		return 2
	}
	return 1
}

// probeWindow runs the probe window crash-free starting at logical epoch
// le. Under Pipeline it submits both epochs back to back — epoch le's
// checkpoint overlaps epoch le+1's front — and drains only at the end;
// otherwise it is runEpoch.
func (s *session) probeWindow(db *core.DB, le int) error {
	if !s.spec.Pipeline {
		return s.runEpoch(db, le)
	}
	if err := s.submitEpoch(db, le); err != nil {
		return err
	}
	if err := s.submitEpoch(db, le+1); err != nil {
		return err
	}
	db.WaitDurable()
	return nil
}

// submitEpoch runs one engine epoch without draining the commit pipeline.
func (s *session) submitEpoch(db *core.DB, le int) error {
	if s.spec.Aria {
		_, err := db.RunEpochAria(s.ariaBatch(le))
		return err
	}
	_, err := db.RunEpoch(s.batch(db, le))
	return err
}

// digest summarizes db's committed state for oracle comparison. Under
// Pipeline it excludes per-pool allocation totals: whether an overlapped
// allocation adopts a freed ring slot or bumps depends on how the
// committer's checkpoint fence interleaves with the front, so the totals
// are not replay-deterministic even though the logical state is (allocator
// accounting is still covered by CheckInvariants on every recovered
// state). Elsewhere the full digest keeps pinning the totals.
func (s *session) digest(db *core.DB) uint64 {
	if s.spec.Pipeline {
		return db.LogicalDigest()
	}
	return db.StateDigest()
}

// probeWindowUntilCrash is probeWindow with injected-crash conversion.
// Under Pipeline the fail point fires on exactly one goroutine — the front
// or the background committer — and the survivor keeps issuing device
// accesses; the window therefore quiesces the engine before returning, so
// the caller may crash the device (nvm.Device.Crash requires no in-flight
// accesses). The drained survivor's flushes land before the cut, the same
// state a chaos eviction could reach, so the checks stay sound.
func (s *session) probeWindowUntilCrash(db *core.DB, le int) (bool, error) {
	if !s.spec.Pipeline {
		return s.runEpochUntilCrash(db, le)
	}
	fired, err := kit.RunFuncUntilCrash(func() error { return s.probeWindow(db, le) })
	kit.Quiesce(db)
	return fired, err
}
