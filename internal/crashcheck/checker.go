package crashcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Violation kinds.
const (
	KindRecoverError   = "recover-error"   // Recover returned an error or crashed unexpectedly
	KindEpochError     = "epoch-error"     // the probe epoch failed for a non-crash reason
	KindEpochLost      = "committed-epoch-lost"
	KindDigestMismatch = "digest-mismatch" // lost committed data or resurrected uncommitted data
	KindInvariant      = "invariant"       // structural invariant broken (see core.CheckInvariants)
)

// Point identifies one crash point: the fail-point position within the
// probe epoch's flush sequence, the crash mode, and — for double faults —
// a second fail-point armed during the recovery that follows.
type Point struct {
	FailAfter int64  `json:"fail_after"`
	Mode      string `json:"mode"` // "strict" | "all" | "random"
	CrashSeed int64  `json:"crash_seed,omitempty"`
	// DoubleFailAfter, when positive, arms a second fail-point during the
	// first recovery attempt, crashing it mid-flight before the final
	// recovery runs.
	DoubleFailAfter int64 `json:"double_fail_after,omitempty"`
}

func (p Point) String() string {
	s := fmt.Sprintf("fail@%d/%s", p.FailAfter, p.Mode)
	if p.Mode == "random" {
		s += fmt.Sprintf("#%d", p.CrashSeed)
	}
	if p.DoubleFailAfter > 0 {
		s += fmt.Sprintf("+refail@%d", p.DoubleFailAfter)
	}
	return s
}

func crashModeOf(name string) (nvm.CrashMode, error) {
	switch name {
	case "strict":
		return nvm.CrashStrict, nil
	case "all":
		return nvm.CrashAll, nil
	case "random":
		return nvm.CrashRandom, nil
	}
	return 0, fmt.Errorf("crashcheck: unknown crash mode %q", name)
}

// Violation is one failed check at one crash point.
type Violation struct {
	Point  Point  `json:"point"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
	// FlightTail is the engine's flight-recorder dump across the failing
	// point's crash-recover-check cycle: epoch transitions, fences, GC,
	// recovery stages. Populated when the explorer ran with a flight
	// recorder attached (always, from Run and Replay).
	FlightTail string `json:"flight_tail,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %s", v.Kind, v.Point, v.Detail)
}

// Config controls an exploration run.
type Config struct {
	// Budget bounds wall-clock time; zero means unbounded. Points not
	// explored before the deadline are skipped (and counted in the report).
	Budget time.Duration
	// MaxPoints bounds the number of points planned; zero plans the full
	// cross product (exhaustive). When the full product exceeds MaxPoints
	// the planner samples fail-points stratified toward fence boundaries.
	MaxPoints int
	// Workers is the worker-pool size; zero means GOMAXPROCS.
	Workers int
	// Modes are the crash modes to cross with each fail-point; nil means
	// all three.
	Modes []string
	// RandomSeeds is how many seeds each CrashRandom point gets (min 1).
	RandomSeeds int
	// DoubleFaults adds crash-during-recovery variants for a subset of
	// points (every DoubleEvery-th, default 8).
	DoubleFaults bool
	DoubleEvery  int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{"strict", "all", "random"}
	}
	if c.RandomSeeds < 1 {
		c.RandomSeeds = 1
	}
	if c.DoubleEvery <= 0 {
		c.DoubleEvery = 8
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Report is the outcome of an exploration run.
type Report struct {
	Spec       Spec   `json:"spec"`
	ProbeEpoch uint64 `json:"probe_epoch"`
	// WindowEpochs is how many engine epochs the probe window spans: one
	// normally, two under Spec.Pipeline (the overlapped commit/front pair).
	WindowEpochs int `json:"window_epochs"`
	// FlushPoints is the number of explicit line flushes the probe window
	// issues when run after recovery from the probe-boundary snapshot —
	// the space the fail-points index into.
	FlushPoints int64 `json:"flush_points"`
	// FenceCount is how many fences the probe epoch issues (the persist-
	// phase boundaries stratified sampling biases toward).
	FenceCount int `json:"fence_count"`
	// Deterministic reports whether two independent replica runs of the
	// probe epoch produced identical flush counts and digests. Single-core
	// specs are deterministic; multi-core specs usually are not, in which
	// case each point samples one interleaving (checks remain valid).
	Deterministic bool `json:"deterministic"`
	// Exhaustive reports that every fail-point in [1, FlushPoints] was
	// planned (no sampling).
	Exhaustive     bool   `json:"exhaustive"`
	PointsPlanned  int    `json:"points_planned"`
	PointsExplored int    `json:"points_explored"`
	DigestPre      string `json:"digest_pre"`
	// DigestMid is the digest after the first window epoch alone — the
	// state a crash between the two pipelined commits must recover to.
	// Present only when the window spans more than one epoch.
	DigestMid  string      `json:"digest_mid,omitempty"`
	DigestPost string      `json:"digest_post"`
	Violations []Violation `json:"violations,omitempty"`
	ElapsedMS  int64       `json:"elapsed_ms"`
}

// oracle holds the crash-free reference: a device snapshot at the probe
// boundary, the digests at every committed state the probe window passes
// through, and the shape of the window's flush sequence.
type oracle struct {
	sess       *session
	snap       *nvm.Snapshot
	probeEpoch uint64 // engine epoch number of the first window epoch
	windowLast uint64 // engine epoch number of the last window epoch
	probeLE    int    // logical epoch index fed to the generator
	digestPre  uint64
	digestMid  uint64 // after the first window epoch (== digestPost when the window is one epoch)
	digestPost uint64
	flushes    int64
	fenceMarks []int64 // flush counts (relative to window start) at each fence
	determin   bool
}

// buildOracle runs the workload crash-free and captures the reference
// state. Three runs are involved: the main run produces the snapshot and
// both digests; a replica run (recover-then-probe, the exact path every
// checker worker takes) measures the flush sequence; a second replica run
// re-measures it to classify the spec as deterministic.
func buildOracle(sess *session) (*oracle, error) {
	o := &oracle{sess: sess, probeLE: sess.spec.WarmEpochs + 1}

	dev := sess.newDevice()
	db, err := core.Open(dev, sess.opts)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: open: %w", err)
	}
	epochs := 0
	for _, b := range sess.loadBatches() {
		if _, err := db.RunEpoch(b); err != nil {
			return nil, fmt.Errorf("crashcheck: load epoch: %w", err)
		}
		epochs++
	}
	for le := 1; le <= sess.spec.WarmEpochs; le++ {
		if err := sess.runEpoch(db, le); err != nil {
			return nil, fmt.Errorf("crashcheck: warm epoch %d: %w", le, err)
		}
		epochs++
	}
	o.probeEpoch = uint64(epochs + 1)
	o.windowLast = o.probeEpoch + uint64(sess.windowEpochs()-1)
	o.digestPre = sess.digest(db)
	if err := db.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("crashcheck: invariants broken before probe (spec unusable): %w", err)
	}
	o.snap = dev.Snapshot()
	// The main run executes the window epochs drained one at a time even
	// under Pipeline: the digests describe logical committed state, which
	// the deterministic engine reaches identically whether the window ran
	// overlapped or serial, and draining after the first epoch is the only
	// way to capture the mid-window digest a crash landing between the two
	// commits must recover to.
	if err := sess.runEpoch(db, o.probeLE); err != nil {
		return nil, fmt.Errorf("crashcheck: probe epoch: %w", err)
	}
	o.digestMid = sess.digest(db)
	for i := 1; i < sess.windowEpochs(); i++ {
		if err := sess.runEpoch(db, o.probeLE+i); err != nil {
			return nil, fmt.Errorf("crashcheck: window epoch %d: %w", o.probeLE+i, err)
		}
	}
	o.digestPost = sess.digest(db)
	if err := db.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("crashcheck: invariants broken after probe (spec unusable): %w", err)
	}
	if o.digestPre == o.digestMid || o.digestPre == o.digestPost ||
		(o.windowLast > o.probeEpoch && o.digestMid == o.digestPost) {
		return nil, fmt.Errorf("crashcheck: a window epoch left the digest unchanged; the spec cannot detect lost epochs")
	}

	// Replica runs: measure the flush sequence on the path workers take.
	f1, marks1, d1, err := o.replicaProbe()
	if err != nil {
		return nil, err
	}
	f2, _, d2, err := o.replicaProbe()
	if err != nil {
		return nil, err
	}
	if d1 != o.digestPost || d2 != o.digestPost {
		return nil, fmt.Errorf("crashcheck: recovered replica's probe digest %016x/%016x does not match oracle %016x; workload is not replay-deterministic",
			d1, d2, o.digestPost)
	}
	o.flushes, o.fenceMarks = f1, marks1
	o.determin = f1 == f2
	return o, nil
}

// replicaProbe recovers a fresh replica of the snapshot and runs the probe
// window crash-free with fence tracing — overlapped, on the exact path the
// checker workers take — returning the flush count, the relative fence
// marks, and the resulting digest.
func (o *oracle) replicaProbe() (int64, []int64, uint64, error) {
	dev := o.snap.NewDevice()
	db, _, err := core.Recover(dev, o.sess.opts)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("crashcheck: clean recovery of the probe-boundary snapshot failed: %w", err)
	}
	if got := o.sess.digest(db); got != o.digestPre {
		return 0, nil, 0, fmt.Errorf("crashcheck: clean recovery changed the digest: %016x != %016x", got, o.digestPre)
	}
	base := dev.Stats().Flushes
	dev.TraceFences(true)
	if err := o.sess.probeWindow(db, o.probeLE); err != nil {
		return 0, nil, 0, fmt.Errorf("crashcheck: replica probe window: %w", err)
	}
	marksAbs := dev.FenceMarks()
	dev.TraceFences(false)
	flushes := dev.Stats().Flushes - base
	marks := make([]int64, 0, len(marksAbs))
	for _, m := range marksAbs {
		if rel := m - base; rel > 0 && rel <= flushes {
			marks = append(marks, rel)
		}
	}
	return flushes, marks, o.sess.digest(db), nil
}

// newFlightObs builds the minimal per-worker observability attachment: just
// a flight recorder, small enough to reset per point, so a violation can
// carry the event trail of its crash-recover-check cycle.
func newFlightObs() *obs.Obs {
	return obs.New(obs.Config{FlightPerStripe: 512})
}

// explore runs one crash point on the worker's device replica and returns
// the first violated check, or nil. fobs (optional) records the engine's
// flight events across the cycle; on a violation its dump is attached.
func (o *oracle) explore(dev *nvm.Device, pt Point, fobs *obs.Obs) *Violation {
	opts := o.sess.opts
	opts.Obs = fobs
	fobs.Reset()
	v := o.explorePoint(dev, pt, opts)
	if v != nil && fobs != nil {
		var b strings.Builder
		fobs.Flight().Dump(&b, 0)
		v.FlightTail = b.String()
	}
	return v
}

func (o *oracle) explorePoint(dev *nvm.Device, pt Point, opts core.Options) *Violation {
	mode, err := crashModeOf(pt.Mode)
	if err != nil {
		return &Violation{Point: pt, Kind: KindEpochError, Detail: err.Error()}
	}
	dev.Restore(o.snap)
	db, _, err := core.Recover(dev, opts)
	if err != nil {
		return &Violation{Point: pt, Kind: KindRecoverError, Detail: fmt.Sprintf("pre-probe recovery: %v", err)}
	}

	dev.SetFailAfter(pt.FailAfter)
	fired, err := o.sess.probeWindowUntilCrash(db, o.probeLE)
	dev.SetFailAfter(0)
	if err != nil {
		return &Violation{Point: pt, Kind: KindEpochError, Detail: err.Error()}
	}
	dev.Crash(mode, pt.CrashSeed)

	if pt.DoubleFailAfter > 0 {
		dev.SetFailAfter(pt.DoubleFailAfter)
		_, _, refired, rerr := kit.RecoverUntilCrash(dev, opts)
		dev.SetFailAfter(0)
		if rerr != nil {
			return &Violation{Point: pt, Kind: KindRecoverError, Detail: fmt.Sprintf("first recovery attempt: %v", rerr)}
		}
		if refired {
			// Crash the interrupted recovery too; vary the seed so the two
			// faults do not share an eviction pattern.
			dev.Crash(mode, pt.CrashSeed+7919)
		}
	}

	db2, rep, err := core.Recover(dev, opts)
	if err != nil {
		return &Violation{Point: pt, Kind: KindRecoverError, Detail: err.Error()}
	}

	// No committed epoch may be lost: everything up to the probe boundary
	// was durable before the fail-point armed.
	if rep.CheckpointEpoch < o.probeEpoch-1 {
		return &Violation{Point: pt, Kind: KindEpochLost,
			Detail: fmt.Sprintf("recovered checkpoint epoch %d but epochs through %d were committed before the crash",
				rep.CheckpointEpoch, o.probeEpoch-1)}
	}
	// The effective recovered epoch is the youngest state the recovery
	// reconstructed, by checkpoint or WAL replay. The window admits three:
	// nothing committed (pre), the first window epoch committed (mid — only
	// distinct from post under the two-epoch pipeline window), or the whole
	// window committed (post).
	eff := rep.CheckpointEpoch
	if rep.ReplayedEpoch > eff {
		eff = rep.ReplayedEpoch
	}
	if eff > o.windowLast {
		return &Violation{Point: pt, Kind: KindRecoverError,
			Detail: fmt.Sprintf("recovered epoch %d (ckpt=%d replayed=%d) is beyond the probe window end %d",
				eff, rep.CheckpointEpoch, rep.ReplayedEpoch, o.windowLast)}
	}
	var want uint64
	var side string
	switch {
	case eff < o.probeEpoch:
		want, side = o.digestPre, "pre-window (no window epoch committed: lost uncommitted data must vanish entirely)"
	case eff == o.probeEpoch && o.windowLast > o.probeEpoch:
		want, side = o.digestMid, "mid-window (first window epoch committed or replayed)"
	default:
		want, side = o.digestPost, "post-window (whole window committed or replayed)"
	}
	if got := o.sess.digest(db2); got != want {
		return &Violation{Point: pt, Kind: KindDigestMismatch,
			Detail: fmt.Sprintf("recovered digest %016x != %s oracle %016x (fired=%v ckpt=%d replayed=%d)",
				got, side, want, fired, rep.CheckpointEpoch, rep.ReplayedEpoch)}
	}
	if err := db2.CheckInvariants(); err != nil {
		return &Violation{Point: pt, Kind: KindInvariant, Detail: err.Error()}
	}
	return nil
}

// Run explores the crash-point space of the spec's probe epoch and
// reports every violated check.
func Run(spec Spec, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	sess, err := newSession(spec)
	if err != nil {
		return nil, err
	}
	o, err := buildOracle(sess)
	if err != nil {
		return nil, err
	}
	pts, exhaustive := plan(o, cfg)
	cfg.logf("probe epoch %d (+%d window): %d flushes, %d fences; %d points planned (exhaustive=%v deterministic=%v)",
		o.probeEpoch, o.windowLast-o.probeEpoch, o.flushes, len(o.fenceMarks), len(pts), exhaustive, o.determin)

	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	var (
		mu         sync.Mutex
		violations []Violation
		explored   int
	)
	ch := make(chan Point)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := o.snap.NewDevice()
			fobs := newFlightObs()
			for pt := range ch {
				if !deadline.IsZero() && time.Now().After(deadline) {
					continue // budget exhausted: drain without exploring
				}
				v := o.explore(dev, pt, fobs)
				mu.Lock()
				explored++
				if v != nil {
					violations = append(violations, *v)
				}
				mu.Unlock()
			}
		}()
	}
	for _, pt := range pts {
		ch <- pt
	}
	close(ch)
	wg.Wait()

	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].Point, violations[j].Point
		if a.FailAfter != b.FailAfter {
			return a.FailAfter < b.FailAfter
		}
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		if a.CrashSeed != b.CrashSeed {
			return a.CrashSeed < b.CrashSeed
		}
		return a.DoubleFailAfter < b.DoubleFailAfter
	})
	rep := &Report{
		Spec:           spec,
		ProbeEpoch:     o.probeEpoch,
		WindowEpochs:   int(o.windowLast-o.probeEpoch) + 1,
		FlushPoints:    o.flushes,
		FenceCount:     len(o.fenceMarks),
		Deterministic:  o.determin,
		Exhaustive:     exhaustive,
		PointsPlanned:  len(pts),
		PointsExplored: explored,
		DigestPre:      fmt.Sprintf("%016x", o.digestPre),
		DigestPost:     fmt.Sprintf("%016x", o.digestPost),
		Violations:     violations,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}
	if o.windowLast > o.probeEpoch {
		rep.DigestMid = fmt.Sprintf("%016x", o.digestMid)
	}
	return rep, nil
}
