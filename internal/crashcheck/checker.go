package crashcheck

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
)

// Violation kinds.
const (
	KindRecoverError   = "recover-error"   // Recover returned an error or crashed unexpectedly
	KindEpochError     = "epoch-error"     // the probe epoch failed for a non-crash reason
	KindEpochLost      = "committed-epoch-lost"
	KindDigestMismatch = "digest-mismatch" // lost committed data or resurrected uncommitted data
	KindInvariant      = "invariant"       // structural invariant broken (see core.CheckInvariants)
)

// Point identifies one crash point: the fail-point position within the
// probe epoch's flush sequence, the crash mode, and — for double faults —
// a second fail-point armed during the recovery that follows.
type Point struct {
	FailAfter int64  `json:"fail_after"`
	Mode      string `json:"mode"` // "strict" | "all" | "random"
	CrashSeed int64  `json:"crash_seed,omitempty"`
	// DoubleFailAfter, when positive, arms a second fail-point during the
	// first recovery attempt, crashing it mid-flight before the final
	// recovery runs.
	DoubleFailAfter int64 `json:"double_fail_after,omitempty"`
}

func (p Point) String() string {
	s := fmt.Sprintf("fail@%d/%s", p.FailAfter, p.Mode)
	if p.Mode == "random" {
		s += fmt.Sprintf("#%d", p.CrashSeed)
	}
	if p.DoubleFailAfter > 0 {
		s += fmt.Sprintf("+refail@%d", p.DoubleFailAfter)
	}
	return s
}

func crashModeOf(name string) (nvm.CrashMode, error) {
	switch name {
	case "strict":
		return nvm.CrashStrict, nil
	case "all":
		return nvm.CrashAll, nil
	case "random":
		return nvm.CrashRandom, nil
	}
	return 0, fmt.Errorf("crashcheck: unknown crash mode %q", name)
}

// Violation is one failed check at one crash point.
type Violation struct {
	Point  Point  `json:"point"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %s: %s", v.Kind, v.Point, v.Detail)
}

// Config controls an exploration run.
type Config struct {
	// Budget bounds wall-clock time; zero means unbounded. Points not
	// explored before the deadline are skipped (and counted in the report).
	Budget time.Duration
	// MaxPoints bounds the number of points planned; zero plans the full
	// cross product (exhaustive). When the full product exceeds MaxPoints
	// the planner samples fail-points stratified toward fence boundaries.
	MaxPoints int
	// Workers is the worker-pool size; zero means GOMAXPROCS.
	Workers int
	// Modes are the crash modes to cross with each fail-point; nil means
	// all three.
	Modes []string
	// RandomSeeds is how many seeds each CrashRandom point gets (min 1).
	RandomSeeds int
	// DoubleFaults adds crash-during-recovery variants for a subset of
	// points (every DoubleEvery-th, default 8).
	DoubleFaults bool
	DoubleEvery  int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if len(c.Modes) == 0 {
		c.Modes = []string{"strict", "all", "random"}
	}
	if c.RandomSeeds < 1 {
		c.RandomSeeds = 1
	}
	if c.DoubleEvery <= 0 {
		c.DoubleEvery = 8
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Report is the outcome of an exploration run.
type Report struct {
	Spec       Spec   `json:"spec"`
	ProbeEpoch uint64 `json:"probe_epoch"`
	// FlushPoints is the number of explicit line flushes the probe epoch
	// issues when run after recovery from the probe-boundary snapshot —
	// the space the fail-points index into.
	FlushPoints int64 `json:"flush_points"`
	// FenceCount is how many fences the probe epoch issues (the persist-
	// phase boundaries stratified sampling biases toward).
	FenceCount int `json:"fence_count"`
	// Deterministic reports whether two independent replica runs of the
	// probe epoch produced identical flush counts and digests. Single-core
	// specs are deterministic; multi-core specs usually are not, in which
	// case each point samples one interleaving (checks remain valid).
	Deterministic bool `json:"deterministic"`
	// Exhaustive reports that every fail-point in [1, FlushPoints] was
	// planned (no sampling).
	Exhaustive     bool        `json:"exhaustive"`
	PointsPlanned  int         `json:"points_planned"`
	PointsExplored int         `json:"points_explored"`
	DigestPre      string      `json:"digest_pre"`
	DigestPost     string      `json:"digest_post"`
	Violations     []Violation `json:"violations,omitempty"`
	ElapsedMS      int64       `json:"elapsed_ms"`
}

// oracle holds the crash-free reference: a device snapshot at the probe
// boundary, the digests on either side of the probe epoch, and the shape
// of the probe epoch's flush sequence.
type oracle struct {
	sess       *session
	snap       *nvm.Snapshot
	probeEpoch uint64 // engine epoch number of the probe epoch
	probeLE    int    // logical epoch index fed to the generator
	digestPre  uint64
	digestPost uint64
	flushes    int64
	fenceMarks []int64 // flush counts (relative to probe start) at each fence
	determin   bool
}

// buildOracle runs the workload crash-free and captures the reference
// state. Three runs are involved: the main run produces the snapshot and
// both digests; a replica run (recover-then-probe, the exact path every
// checker worker takes) measures the flush sequence; a second replica run
// re-measures it to classify the spec as deterministic.
func buildOracle(sess *session) (*oracle, error) {
	o := &oracle{sess: sess, probeLE: sess.spec.WarmEpochs + 1}

	dev := sess.newDevice()
	db, err := core.Open(dev, sess.opts)
	if err != nil {
		return nil, fmt.Errorf("crashcheck: open: %w", err)
	}
	epochs := 0
	for _, b := range sess.loadBatches() {
		if _, err := db.RunEpoch(b); err != nil {
			return nil, fmt.Errorf("crashcheck: load epoch: %w", err)
		}
		epochs++
	}
	for le := 1; le <= sess.spec.WarmEpochs; le++ {
		if err := sess.runEpoch(db, le); err != nil {
			return nil, fmt.Errorf("crashcheck: warm epoch %d: %w", le, err)
		}
		epochs++
	}
	o.probeEpoch = uint64(epochs + 1)
	o.digestPre = db.StateDigest()
	if err := db.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("crashcheck: invariants broken before probe (spec unusable): %w", err)
	}
	o.snap = dev.Snapshot()
	if err := sess.runEpoch(db, o.probeLE); err != nil {
		return nil, fmt.Errorf("crashcheck: probe epoch: %w", err)
	}
	o.digestPost = db.StateDigest()
	if err := db.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("crashcheck: invariants broken after probe (spec unusable): %w", err)
	}
	if o.digestPre == o.digestPost {
		return nil, fmt.Errorf("crashcheck: probe epoch left the digest unchanged; the spec cannot detect lost epochs")
	}

	// Replica runs: measure the flush sequence on the path workers take.
	f1, marks1, d1, err := o.replicaProbe()
	if err != nil {
		return nil, err
	}
	f2, _, d2, err := o.replicaProbe()
	if err != nil {
		return nil, err
	}
	if d1 != o.digestPost || d2 != o.digestPost {
		return nil, fmt.Errorf("crashcheck: recovered replica's probe digest %016x/%016x does not match oracle %016x; workload is not replay-deterministic",
			d1, d2, o.digestPost)
	}
	o.flushes, o.fenceMarks = f1, marks1
	o.determin = f1 == f2
	return o, nil
}

// replicaProbe recovers a fresh replica of the snapshot and runs the probe
// epoch crash-free with fence tracing, returning the flush count, the
// relative fence marks, and the resulting digest.
func (o *oracle) replicaProbe() (int64, []int64, uint64, error) {
	dev := o.snap.NewDevice()
	db, _, err := core.Recover(dev, o.sess.opts)
	if err != nil {
		return 0, nil, 0, fmt.Errorf("crashcheck: clean recovery of the probe-boundary snapshot failed: %w", err)
	}
	if got := db.StateDigest(); got != o.digestPre {
		return 0, nil, 0, fmt.Errorf("crashcheck: clean recovery changed the digest: %016x != %016x", got, o.digestPre)
	}
	base := dev.Stats().Flushes
	dev.TraceFences(true)
	if err := o.sess.runEpoch(db, o.probeLE); err != nil {
		return 0, nil, 0, fmt.Errorf("crashcheck: replica probe epoch: %w", err)
	}
	marksAbs := dev.FenceMarks()
	dev.TraceFences(false)
	flushes := dev.Stats().Flushes - base
	marks := make([]int64, 0, len(marksAbs))
	for _, m := range marksAbs {
		if rel := m - base; rel > 0 && rel <= flushes {
			marks = append(marks, rel)
		}
	}
	return flushes, marks, db.StateDigest(), nil
}

// explore runs one crash point on the worker's device replica and returns
// the first violated check, or nil.
func (o *oracle) explore(dev *nvm.Device, pt Point) *Violation {
	mode, err := crashModeOf(pt.Mode)
	if err != nil {
		return &Violation{Point: pt, Kind: KindEpochError, Detail: err.Error()}
	}
	dev.Restore(o.snap)
	db, _, err := core.Recover(dev, o.sess.opts)
	if err != nil {
		return &Violation{Point: pt, Kind: KindRecoverError, Detail: fmt.Sprintf("pre-probe recovery: %v", err)}
	}

	dev.SetFailAfter(pt.FailAfter)
	fired, err := o.sess.runEpochUntilCrash(db, o.probeLE)
	dev.SetFailAfter(0)
	if err != nil {
		return &Violation{Point: pt, Kind: KindEpochError, Detail: err.Error()}
	}
	dev.Crash(mode, pt.CrashSeed)

	if pt.DoubleFailAfter > 0 {
		dev.SetFailAfter(pt.DoubleFailAfter)
		_, _, refired, rerr := kit.RecoverUntilCrash(dev, o.sess.opts)
		dev.SetFailAfter(0)
		if rerr != nil {
			return &Violation{Point: pt, Kind: KindRecoverError, Detail: fmt.Sprintf("first recovery attempt: %v", rerr)}
		}
		if refired {
			// Crash the interrupted recovery too; vary the seed so the two
			// faults do not share an eviction pattern.
			dev.Crash(mode, pt.CrashSeed+7919)
		}
	}

	db2, rep, err := core.Recover(dev, o.sess.opts)
	if err != nil {
		return &Violation{Point: pt, Kind: KindRecoverError, Detail: err.Error()}
	}

	// No committed epoch may be lost: everything up to the probe boundary
	// was durable before the fail-point armed.
	if rep.CheckpointEpoch < o.probeEpoch-1 {
		return &Violation{Point: pt, Kind: KindEpochLost,
			Detail: fmt.Sprintf("recovered checkpoint epoch %d but epochs through %d were committed before the crash",
				rep.CheckpointEpoch, o.probeEpoch-1)}
	}
	if rep.CheckpointEpoch > o.probeEpoch {
		return &Violation{Point: pt, Kind: KindRecoverError,
			Detail: fmt.Sprintf("recovered checkpoint epoch %d is beyond the probe epoch %d", rep.CheckpointEpoch, o.probeEpoch)}
	}

	committed := rep.CheckpointEpoch >= o.probeEpoch || rep.ReplayedEpoch == o.probeEpoch
	want, side := o.digestPre, "pre-probe (epoch not committed: lost uncommitted data must vanish entirely)"
	if committed {
		want, side = o.digestPost, "post-probe (epoch committed or replayed)"
	}
	if got := db2.StateDigest(); got != want {
		return &Violation{Point: pt, Kind: KindDigestMismatch,
			Detail: fmt.Sprintf("recovered digest %016x != %s oracle %016x (fired=%v ckpt=%d replayed=%d)",
				got, side, want, fired, rep.CheckpointEpoch, rep.ReplayedEpoch)}
	}
	if err := db2.CheckInvariants(); err != nil {
		return &Violation{Point: pt, Kind: KindInvariant, Detail: err.Error()}
	}
	return nil
}

// Run explores the crash-point space of the spec's probe epoch and
// reports every violated check.
func Run(spec Spec, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	sess, err := newSession(spec)
	if err != nil {
		return nil, err
	}
	o, err := buildOracle(sess)
	if err != nil {
		return nil, err
	}
	pts, exhaustive := plan(o, cfg)
	cfg.logf("probe epoch %d: %d flushes, %d fences; %d points planned (exhaustive=%v deterministic=%v)",
		o.probeEpoch, o.flushes, len(o.fenceMarks), len(pts), exhaustive, o.determin)

	var deadline time.Time
	if cfg.Budget > 0 {
		deadline = start.Add(cfg.Budget)
	}
	var (
		mu         sync.Mutex
		violations []Violation
		explored   int
	)
	ch := make(chan Point)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev := o.snap.NewDevice()
			for pt := range ch {
				if !deadline.IsZero() && time.Now().After(deadline) {
					continue // budget exhausted: drain without exploring
				}
				v := o.explore(dev, pt)
				mu.Lock()
				explored++
				if v != nil {
					violations = append(violations, *v)
				}
				mu.Unlock()
			}
		}()
	}
	for _, pt := range pts {
		ch <- pt
	}
	close(ch)
	wg.Wait()

	sort.Slice(violations, func(i, j int) bool {
		a, b := violations[i].Point, violations[j].Point
		if a.FailAfter != b.FailAfter {
			return a.FailAfter < b.FailAfter
		}
		if a.Mode != b.Mode {
			return a.Mode < b.Mode
		}
		if a.CrashSeed != b.CrashSeed {
			return a.CrashSeed < b.CrashSeed
		}
		return a.DoubleFailAfter < b.DoubleFailAfter
	})
	return &Report{
		Spec:           spec,
		ProbeEpoch:     o.probeEpoch,
		FlushPoints:    o.flushes,
		FenceCount:     len(o.fenceMarks),
		Deterministic:  o.determin,
		Exhaustive:     exhaustive,
		PointsPlanned:  len(pts),
		PointsExplored: explored,
		DigestPre:      fmt.Sprintf("%016x", o.digestPre),
		DigestPost:     fmt.Sprintf("%016x", o.digestPost),
		Violations:     violations,
		ElapsedMS:      time.Since(start).Milliseconds(),
	}, nil
}
