package crashcheck

import (
	"testing"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck/kit"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// The dual-version zero-intermediate invariant must hold across the crash
// kit's workloads too: through crash injection and recovery, no execution
// path may attribute an intermediate-version NVMM write, and the recovery
// traffic must be attributed to the recovery cause.
func TestAttribZeroIntermediateAcrossCrash(t *testing.T) {
	opts := kit.Options(1)
	o := obs.New(obs.Config{Attrib: true})
	opts.Obs = o
	a := o.Attrib()
	dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithAttrib(a))
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	val := func(b byte) []byte { return []byte{b, b, b, b, b, b, b, b} }
	var load []*core.Txn
	for k := uint64(0); k < 24; k++ {
		load = append(load, kit.MkInsert(k, val('a')))
	}
	if _, err := db.RunEpoch(load); err != nil {
		t.Fatal(err)
	}

	// Multi-writer epochs: several writes per row so intermediates exist.
	batch := func(round byte) []*core.Txn {
		var b []*core.Txn
		for k := uint64(0); k < 24; k++ {
			b = append(b, kit.MkSet(k, val(round)), kit.MkRMW(k, round), kit.MkTransfer(k, (k+1)%24))
		}
		return b
	}
	if _, err := db.RunEpoch(batch('b')); err != nil {
		t.Fatal(err)
	}

	// Crash mid-epoch at a persist boundary, then recover on the same
	// attribution instrument.
	dev.SetFailAfter(20)
	fired, err := kit.RunUntilCrash(db, batch('c'))
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fail-point did not fire; deepen the batch or lower the count")
	}
	dev.SetFailAfter(0)
	dev.Crash(nvm.CrashStrict, 1)

	preRecovery := a.Counts(obs.CauseRecovery)
	rdb, _, err := core.Recover(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rdb.RunEpoch(batch('d')); err != nil {
		t.Fatal(err)
	}

	if c := a.Counts(obs.CauseIntermediate); c.LineWrites != 0 || c.Flushes != 0 {
		t.Fatalf("intermediate NVMM writes attributed across crash/recovery: %+v", c)
	}
	post := a.Counts(obs.CauseRecovery)
	if post.LineReads <= preRecovery.LineReads {
		t.Fatalf("recovery attributed no reads: pre %+v post %+v", preRecovery, post)
	}
}

// Same invariant under an Aria-flavoured crashed epoch, whose recovery path
// (full scan, Aria replay) differs from the Caracal one.
func TestAttribZeroIntermediateAriaCrash(t *testing.T) {
	opts := kit.Options(1)
	o := obs.New(obs.Config{Attrib: true})
	opts.Obs = o
	a := o.Attrib()
	dev := nvm.New(opts.Layout.TotalBytes(), nvm.WithAttrib(a))
	db, err := core.Open(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	var load []*core.AriaTxn
	for k := uint64(0); k < 16; k++ {
		load = append(load, kit.AriaSet(k, []byte{byte(k), 1, 2, 3}))
	}
	if _, err := db.RunEpochAria(load); err != nil {
		t.Fatal(err)
	}
	var work []*core.AriaTxn
	for k := uint64(0); k < 16; k++ {
		work = append(work, kit.AriaRMW(k, 'z'), kit.AriaTransfer(k, (k+3)%16))
	}
	dev.SetFailAfter(15)
	fired, err := kit.RunAriaUntilCrash(db, work)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fail-point did not fire")
	}
	dev.SetFailAfter(0)
	dev.Crash(nvm.CrashStrict, 2)
	if _, _, err := core.Recover(dev, opts); err != nil {
		t.Fatal(err)
	}
	if c := a.Counts(obs.CauseIntermediate); c.LineWrites != 0 || c.Flushes != 0 {
		t.Fatalf("intermediate NVMM writes attributed in aria crash/recovery: %+v", c)
	}
}
