package pmem

import (
	"encoding/binary"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// IndexEntry is one persistent index-journal record.
type IndexEntry struct {
	// Kind is IdxPut, IdxDel, or IdxGC.
	Kind uint8
	// Table/Key identify the row.
	Table uint32
	Key   uint64
	// RowOff is the persistent row offset (IdxPut and IdxGC).
	RowOff int64
}

// Index-journal entry kinds.
const (
	// IdxPut maps a key to a persistent row.
	IdxPut uint8 = 1
	// IdxDel removes a key.
	IdxDel uint8 = 2
	// IdxGC marks a row as pending major collection in the next epoch.
	IdxGC uint8 = 3
)

const (
	idxEntrySize = 21 // kind(1) + table(4) + key(8) + rowOff(8)
	idxBlockHdr  = 24 // epoch(8) + count(8) + checksum(8)

	// Journal control line fields.
	idxCtlOffEven  = 0  // writeOff, even-epoch checkpoint
	idxCtlOffOdd   = 8  // writeOff, odd-epoch checkpoint
	idxCtlOverflow = 16 // sticky overflow flag
)

// IndexLog is the persistent index journal (paper §7 extension): every
// epoch's index deltas — row creations, deletions, and the next epoch's
// major-GC work list — are appended as one checksummed block, and the
// journal's write offset is checkpointed with the same dual-slot parity
// scheme as the allocator pools. Recovery replays the journal instead of
// scanning every persistent row; any validation failure falls back to the
// scan, so the journal is strictly an accelerator.
type IndexLog struct {
	dev  nvm.Tagged
	base int64 // region start (control line)
	size int64 // region size

	writeOff int64 // DRAM append position (bytes from base)
	overflow bool
}

// NewIndexLog returns the journal for a formatted device, or nil when the
// layout has no journal region.
func NewIndexLog(dev *nvm.Device, l Layout) *IndexLog {
	if l.IndexLogBytes == 0 {
		return nil
	}
	return &IndexLog{dev: dev.Tag(obs.CauseIdxJournal), base: l.idxLogOff, size: alignUp(l.IndexLogBytes), writeOff: line}
}

// blockBytes returns the encoded size of a block with n entries.
func blockBytes(n int) int64 { return idxBlockHdr + int64(n)*idxEntrySize }

// Remaining returns the bytes left before the journal overflows.
func (il *IndexLog) Remaining() int64 { return il.size - il.writeOff }

// Fits reports whether a block of n entries can be appended now. The
// pipelined engine decides synchronously — before handing the block to the
// background committer — whether the append can run off the critical path
// or compaction (which walks the live index) must run inline first.
func (il *IndexLog) Fits(n int) bool {
	return !il.overflow && blockBytes(n) <= il.Remaining()
}

// Overflowed reports whether the journal gave up; recovery must scan.
func (il *IndexLog) Overflowed() bool { return il.overflow }

// FNV-1a constants for block checksums.
const (
	idxFnvOffset = uint64(14695981039346656037)
	idxFnvPrime  = uint64(1099511628211)
)

func idxChecksum(epoch uint64, payload []byte) uint64 {
	h := idxFnvOffset ^ (epoch * 0x9E3779B97F4A7C15)
	for _, b := range payload {
		h ^= uint64(b)
		h *= idxFnvPrime
	}
	return h
}

func encodeEntries(entries []IndexEntry) []byte {
	buf := make([]byte, 0, len(entries)*idxEntrySize)
	for _, e := range entries {
		buf = append(buf, e.Kind)
		buf = binary.LittleEndian.AppendUint32(buf, e.Table)
		buf = binary.LittleEndian.AppendUint64(buf, e.Key)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.RowOff))
	}
	return buf
}

// AppendEpoch writes one epoch's delta block and flushes it. Durability
// comes from the caller's checkpoint fence. If the block does not fit, the
// journal sets its sticky overflow flag: the engine may first try
// ResetForSnapshot to compact.
func (il *IndexLog) AppendEpoch(epoch uint64, entries []IndexEntry) (ok bool) {
	if il.overflow {
		return false
	}
	need := blockBytes(len(entries))
	if need > il.Remaining() {
		il.overflow = true
		return false
	}
	payload := encodeEntries(entries)
	var hdr [idxBlockHdr]byte
	binary.LittleEndian.PutUint64(hdr[0:], epoch)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(entries)))
	binary.LittleEndian.PutUint64(hdr[16:], idxChecksum(epoch, payload))
	off := il.base + il.writeOff
	// One vectored write for the whole block, payload before header (a torn
	// append never leaves a checksummed header over garbage entries), with
	// the flush batched into the same call.
	fields := []nvm.FieldWrite{{Off: off, Data: hdr[:]}}
	if len(payload) > 0 {
		fields = []nvm.FieldWrite{
			{Off: off + idxBlockHdr, Data: payload},
			{Off: off, Data: hdr[:]},
		}
	}
	il.dev.WriteFields(fields, []nvm.Range{{Off: off, N: need}})
	il.writeOff += need
	return true
}

// ResetForSnapshot rewinds the journal so the next AppendEpoch writes a
// full index snapshot at the region start, logically discarding all prior
// blocks. The rewind only becomes durable at the next checkpoint; a crash
// before that leaves the old write offset pointing at partially overwritten
// blocks, which recovery detects by checksum and handles by falling back to
// the row scan.
func (il *IndexLog) ResetForSnapshot() {
	il.writeOff = line
	// The rewind logically discards every prior block, so a delta that
	// failed to fit no longer counts against the journal: clear the overflow
	// flag and let the snapshot append re-set it if even the snapshot does
	// not fit. Without this the engine's compaction could never succeed —
	// the failed delta append had already latched the sticky flag.
	il.overflow = false
}

// Checkpoint persists the write offset into the epoch-parity slot and the
// overflow flag; the caller fences.
func (il *IndexLog) Checkpoint(epoch uint64) {
	par := int64(epoch % 2)
	il.dev.Store64(il.base+idxCtlOffEven+par*8, uint64(il.writeOff))
	ov := uint64(0)
	if il.overflow {
		ov = 1
	}
	il.dev.Store64(il.base+idxCtlOverflow, ov)
	il.dev.Flush(il.base, line)
}

// Recover restores the journal state from the checkpoint of ckptEpoch and
// replays all valid blocks in order, invoking apply for each entry. It
// returns false — and the caller must fall back to the row scan — when the
// journal overflowed or any block fails validation.
func (il *IndexLog) Recover(ckptEpoch uint64, apply func(epoch uint64, e IndexEntry)) bool {
	// Post-crash journal replay is recovery traffic, not journal-append
	// traffic, for attribution purposes.
	rd := il.dev.Retag(obs.CauseRecovery)
	par := int64(ckptEpoch % 2)
	il.writeOff = int64(rd.Load64(il.base + idxCtlOffEven + par*8))
	il.overflow = rd.Load64(il.base+idxCtlOverflow) != 0
	if il.overflow {
		return false
	}
	if il.writeOff == 0 {
		// Never checkpointed with a journal. Valid only for a fresh device;
		// a device with committed epochs but no journal history (journaling
		// enabled later) must fall back to the scan.
		il.writeOff = line
		return ckptEpoch == 0
	}
	if il.writeOff < line || il.writeOff > il.size {
		return false
	}
	pos := line
	var lastEpoch uint64
	for pos < il.writeOff {
		if il.writeOff-pos < idxBlockHdr {
			return false
		}
		var hdr [idxBlockHdr]byte
		rd.ReadAt(hdr[:], il.base+pos)
		epoch := binary.LittleEndian.Uint64(hdr[0:])
		count := binary.LittleEndian.Uint64(hdr[8:])
		sum := binary.LittleEndian.Uint64(hdr[16:])
		need := blockBytes(int(count))
		if epoch == 0 || epoch > ckptEpoch || epoch < lastEpoch || pos+need > il.writeOff {
			return false
		}
		payload := make([]byte, count*idxEntrySize)
		rd.ReadAt(payload, il.base+pos+idxBlockHdr)
		if idxChecksum(epoch, payload) != sum {
			return false
		}
		for i := uint64(0); i < count; i++ {
			p := payload[i*idxEntrySize:]
			apply(epoch, IndexEntry{
				Kind:   p[0],
				Table:  binary.LittleEndian.Uint32(p[1:]),
				Key:    binary.LittleEndian.Uint64(p[5:]),
				RowOff: int64(binary.LittleEndian.Uint64(p[13:])),
			})
		}
		lastEpoch = epoch
		pos += need
	}
	// Every committed epoch appends a block (possibly empty), so a journal
	// whose final block is older than the checkpoint is missing history
	// (e.g. journaling was disabled for some runs) and cannot be trusted.
	if ckptEpoch > 0 && lastEpoch != ckptEpoch {
		return false
	}
	return true
}
