package pmem

import (
	"testing"

	"nvcaracal/internal/nvm"
)

func idxTestLayout(t *testing.T, logBytes int64) (Layout, *nvm.Device) {
	t.Helper()
	l := Layout{
		Cores: 1, RowSize: 256, RowsPerCore: 64, ValueSize: 256,
		ValuesPerCore: 64, RingCap: 256, LogBytes: 4096, Counters: 0,
		IndexLogBytes: logBytes,
	}
	if err := l.Finalize(); err != nil {
		t.Fatal(err)
	}
	dev := nvm.New(l.TotalBytes())
	if err := Format(dev, l); err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestIndexLogNilWhenDisabled(t *testing.T) {
	l, dev := idxTestLayout(t, 0)
	if NewIndexLog(dev, l) != nil {
		t.Fatal("journal created without a region")
	}
}

func TestIndexLogRoundTrip(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<16)
	il := NewIndexLog(dev, l)
	e1 := []IndexEntry{
		{Kind: IdxPut, Table: 1, Key: 10, RowOff: 4096},
		{Kind: IdxPut, Table: 1, Key: 11, RowOff: 4352},
	}
	e2 := []IndexEntry{
		{Kind: IdxDel, Table: 1, Key: 10},
		{Kind: IdxGC, Table: 1, Key: 11, RowOff: 4352},
	}
	if !il.AppendEpoch(1, e1) {
		t.Fatal("append 1 failed")
	}
	il.Checkpoint(1)
	if !il.AppendEpoch(2, e2) {
		t.Fatal("append 2 failed")
	}
	il.Checkpoint(2)
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 1)

	il2 := NewIndexLog(dev, l)
	var got []IndexEntry
	var epochs []uint64
	if !il2.Recover(2, func(ep uint64, e IndexEntry) {
		got = append(got, e)
		epochs = append(epochs, ep)
	}) {
		t.Fatal("recover failed")
	}
	want := append(append([]IndexEntry{}, e1...), e2...)
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if epochs[0] != 1 || epochs[3] != 2 {
		t.Fatalf("epochs = %v", epochs)
	}
}

func TestIndexLogUncheckpointedBlockIgnored(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<16)
	il := NewIndexLog(dev, l)
	il.AppendEpoch(1, []IndexEntry{{Kind: IdxPut, Table: 1, Key: 1, RowOff: 64}})
	il.Checkpoint(1)
	dev.Fence()
	// Epoch 2's block is written but never checkpointed.
	il.AppendEpoch(2, []IndexEntry{{Kind: IdxPut, Table: 1, Key: 2, RowOff: 128}})
	dev.Crash(nvm.CrashStrict, 2)

	il2 := NewIndexLog(dev, l)
	var got []IndexEntry
	if !il2.Recover(1, func(_ uint64, e IndexEntry) { got = append(got, e) }) {
		t.Fatal("recover failed")
	}
	if len(got) != 1 || got[0].Key != 1 {
		t.Fatalf("got %+v, want only epoch 1's entry", got)
	}
}

func TestIndexLogOverflowSticky(t *testing.T) {
	l, dev := idxTestLayout(t, 4096)
	il := NewIndexLog(dev, l)
	big := make([]IndexEntry, 400) // 400*21 > 4096
	if il.AppendEpoch(1, big) {
		t.Fatal("oversized block accepted")
	}
	if !il.Overflowed() {
		t.Fatal("overflow flag not set")
	}
	if il.AppendEpoch(2, nil) {
		t.Fatal("append after overflow accepted")
	}
	il.Checkpoint(1)
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 1)
	il2 := NewIndexLog(dev, l)
	if il2.Recover(1, func(uint64, IndexEntry) {}) {
		t.Fatal("recover succeeded despite overflow; scan fallback required")
	}
}

func TestIndexLogSnapshotReset(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<14)
	il := NewIndexLog(dev, l)
	for ep := uint64(1); ep <= 5; ep++ {
		if !il.AppendEpoch(ep, []IndexEntry{{Kind: IdxPut, Table: 1, Key: ep, RowOff: int64(ep * 64)}}) {
			t.Fatal("append failed")
		}
		il.Checkpoint(ep)
		dev.Fence()
	}
	// Compact: snapshot replaces history.
	il.ResetForSnapshot()
	snap := []IndexEntry{
		{Kind: IdxPut, Table: 1, Key: 100, RowOff: 640},
		{Kind: IdxPut, Table: 1, Key: 101, RowOff: 704},
	}
	if !il.AppendEpoch(6, snap) {
		t.Fatal("snapshot append failed")
	}
	il.Checkpoint(6)
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 3)

	il2 := NewIndexLog(dev, l)
	var got []IndexEntry
	if !il2.Recover(6, func(_ uint64, e IndexEntry) { got = append(got, e) }) {
		t.Fatal("recover after snapshot failed")
	}
	if len(got) != 2 || got[0].Key != 100 {
		t.Fatalf("snapshot entries = %+v", got)
	}
}

func TestIndexLogCrashDuringSnapshotFallsBack(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<14)
	il := NewIndexLog(dev, l)
	// Several committed epochs.
	for ep := uint64(1); ep <= 3; ep++ {
		il.AppendEpoch(ep, []IndexEntry{{Kind: IdxPut, Table: 1, Key: ep, RowOff: int64(ep * 64)}})
		il.Checkpoint(ep)
		dev.Fence()
	}
	// Snapshot overwrites the region start but crashes before checkpoint.
	il.ResetForSnapshot()
	il.AppendEpoch(4, []IndexEntry{{Kind: IdxPut, Table: 9, Key: 9, RowOff: 999}})
	// Force the overwrite to be durable (worst case) without the ctl update.
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 4)

	il2 := NewIndexLog(dev, l)
	ok := il2.Recover(3, func(uint64, IndexEntry) {})
	if ok {
		t.Fatal("recover validated a journal whose blocks were overwritten mid-snapshot")
	}
}

func TestIndexLogEmptyFreshDevice(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<14)
	il := NewIndexLog(dev, l)
	if !il.Recover(0, func(uint64, IndexEntry) { t.Fatal("entry on fresh device") }) {
		t.Fatal("fresh recover failed")
	}
}

func TestIndexLogEmptyEpochBlocks(t *testing.T) {
	l, dev := idxTestLayout(t, 1<<14)
	il := NewIndexLog(dev, l)
	for ep := uint64(1); ep <= 3; ep++ {
		if !il.AppendEpoch(ep, nil) {
			t.Fatal("empty append failed")
		}
		il.Checkpoint(ep)
		dev.Fence()
	}
	dev.Crash(nvm.CrashStrict, 5)
	il2 := NewIndexLog(dev, l)
	n := 0
	if !il2.Recover(3, func(uint64, IndexEntry) { n++ }) {
		t.Fatal("recover failed")
	}
	if n != 0 {
		t.Fatalf("entries = %d", n)
	}
}
