package pmem

import (
	"errors"
	"fmt"
	"sync/atomic"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Control-line field offsets (all fields share one cache line, which is
// safe: a checkpoint modifies only the current-parity slots and then
// persists the line; an un-fenced crash reverts the whole line to the
// previous checkpoint's content, in which the other-parity slots are the
// ones recovery reads).
//
// Offsets 48 and 56 held layout v4's non-revertible current-tail stage
// (epoch stamp + tail), persisted with its own fence after major GC. Layout
// v5 replaced that mechanism with self-validating stamped ring entries (see
// Free/FreeGC): recovery now identifies the crashed epoch's GC frees from
// the entries themselves, so the slots are unused and the stage fence is
// gone.
const (
	ctlBump0 = 0  // bump offset, even-epoch checkpoint
	ctlBump1 = 8  // bump offset, odd-epoch checkpoint
	ctlHead0 = 16 // free-list head, even
	ctlHead1 = 24 // free-list head, odd
	ctlTail0 = 32 // free-list tail, even
	ctlTail1 = 40 // free-list tail, odd
)

// ringStride is the byte footprint of one free-ring entry: the freed slot
// offset plus its validation stamp. Entries never straddle a cache line
// (64/16 divides evenly), so an entry is all-or-nothing under any crash
// mode.
const ringStride = 16

// Ring-entry kinds, mixed into the stamp. A transaction free ('T') is
// revertible: a crash before the epoch checkpoints must un-free the slot,
// so recovery never adopts it. A major-GC free ('G') is non-revertible:
// recovery must adopt it if the freeing epoch's phase-2 row rewrites could
// have reached NVMM, or the slot would leak.
const (
	entryTxn = 'T'
	entryGC  = 'G'
)

// entryStamp hashes an entry's identity — kind, monotonic logical ring
// position, freeing epoch, and the freed offset — so Recover can tell a
// durably-landed entry of the crashed epoch from stale ring bytes of an
// earlier epoch (or of an earlier wrap of the same ring slot) without any
// separately-persisted extent pointer.
func entryStamp(kind byte, pos int64, epoch uint64, off int64) uint64 {
	h := uint64(idxFnvOffset)
	for _, v := range [4]uint64{uint64(kind), uint64(pos), epoch, uint64(off)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= idxFnvPrime
		}
	}
	return h
}

// ErrPoolFull is returned when neither the free list nor the bump region
// can satisfy an allocation.
var ErrPoolFull = errors.New("pmem: pool out of space")

// Pool is one core's persistent slot allocator: a bump allocator over a
// fixed slot region plus a ring-buffer free list, both with dual
// epoch-checkpointed control offsets (paper §5.4, Figure 4).
//
// A Pool is owned by a single core: all calls must come from one goroutine
// at a time. Cross-core offsets may be freed into any pool because ring
// entries are absolute device offsets.
//
// All pool device traffic (ring appends/reads, control-line checkpoints)
// is attributed to obs.CauseAlloc, including appends made on behalf of GC:
// the GC causes cover row rewrites only, allocator bookkeeping stays with
// the allocator.
type Pool struct {
	dev      nvm.Tagged
	ctlOff   int64
	ringOff  int64
	dataOff  int64
	slotSize int64
	capSlots int64
	ringCap  int64

	// DRAM state (Figure 4's "offset", "head", "tail").
	bump int64 // slots handed out from the bump region
	head int64 // logical free-list consume position (monotonic)
	tail int64 // logical free-list append position (monotonic)

	// Checkpoint barriers. Atomic because a pipelined committer publishes
	// them (Checkpointed) while the owner core already allocates inside the
	// next epoch: Alloc reads tailCkpt, appendEntry reads headCkpt. A stale
	// read is conservative in both places — Alloc falls back to the bump
	// region, the overflow check trips early.
	headCkpt atomic.Int64 // head at last checkpoint: entries >= headCkpt must survive a crash
	tailCkpt atomic.Int64 // tail at last checkpoint: allocations must not cross it (invariant 2)

	// Control values captured by Checkpoint for the epoch being committed.
	// Checkpointed publishes these, not the live offsets: under a pipelined
	// commit the next epoch may already have advanced head/tail, and those
	// moves belong to its own future checkpoint.
	stagedHead, stagedTail int64

	// Ring-flush bookkeeping: appends since the last flush.
	flushFrom int64
}

// RowPool returns core c's persistent row pool.
func RowPool(dev *nvm.Device, l Layout, c int) *Pool {
	return &Pool{
		dev:      dev.Tag(obs.CauseAlloc),
		ctlOff:   l.rowCtlOff[c],
		ringOff:  l.rowRingOff[c],
		dataOff:  l.rowDataOff[c],
		slotSize: l.RowSize,
		capSlots: l.RowsPerCore,
		ringCap:  l.RingCap,
	}
}

// ValuePool returns core c's persistent value pool for size class k.
func ValuePool(dev *nvm.Device, l Layout, k, c int) *Pool {
	return &Pool{
		dev:      dev.Tag(obs.CauseAlloc),
		ctlOff:   l.valCtlOff[k][c],
		ringOff:  l.valRingOff[k][c],
		dataOff:  l.valDataOff[k][c],
		slotSize: l.valClasses[k],
		capSlots: l.ValuesPerCore,
		ringCap:  l.RingCap,
	}
}

// SlotSize returns the fixed slot size of this pool.
func (p *Pool) SlotSize() int64 { return p.slotSize }

// DataBase returns the base offset of the pool's slot region.
func (p *Pool) DataBase() int64 { return p.dataOff }

// Bump returns the number of slots handed out from the bump region.
func (p *Pool) Bump() int64 { return p.bump }

// FreeCount returns the number of entries currently on the free list.
func (p *Pool) FreeCount() int64 { return p.tail - p.head }

// UsedBytes returns the bytes of the bump region in use (upper bound on
// live data; free-list slots within it are reusable).
func (p *Pool) UsedBytes() int64 { return p.bump * p.slotSize }

func (p *Pool) ringSlotOff(pos int64) int64 {
	return p.ringOff + (pos%p.ringCap)*ringStride
}

// Alloc returns the device offset of a free slot. It prefers the free list
// but never consumes entries appended after the last checkpoint (invariant
// 2: slots freed in the current epoch must not be reused until the epoch is
// checkpointed, so their deletion can be reverted). Allocation never writes
// NVMM: only the DRAM head or bump offset moves.
func (p *Pool) Alloc() (int64, error) {
	if p.head < p.tailCkpt.Load() {
		off := int64(p.dev.Load64(p.ringSlotOff(p.head)))
		p.head++
		return off, nil
	}
	if p.bump < p.capSlots {
		off := p.dataOff + p.bump*p.slotSize
		p.bump++
		return off, nil
	}
	return 0, fmt.Errorf("%w (cap %d slots of %d bytes)", ErrPoolFull, p.capSlots, p.slotSize)
}

// Free appends the slot at off to the free list as a revertible
// transaction free. The ring entry is written to NVMM but not flushed;
// FlushRing batches the writeback. The entry becomes allocatable only after
// the next checkpoint.
func (p *Pool) Free(off int64) { p.appendEntry(entryTxn, 0, off) }

// FreeGC appends the slot at off to the free list as a non-revertible
// major-GC free of the given epoch. The entry's stamp is what recovery
// validates when it adopts the crashed epoch's GC frees, so the caller must
// make all GC entries durable (FlushRing + one fence) before rewriting any
// row in phase 2 — that single fence is the only ordering major GC needs.
func (p *Pool) FreeGC(off int64, epoch uint64) { p.appendEntry(entryGC, epoch, off) }

func (p *Pool) appendEntry(kind byte, epoch uint64, off int64) {
	if p.tail-p.headCkpt.Load() >= p.ringCap {
		// The ring must retain every entry from the last checkpointed head
		// onward so a crash can revert consumption; running out means the
		// pool was sized too small for the workload's churn.
		panic(fmt.Sprintf("pmem: free-list ring overflow (cap %d)", p.ringCap))
	}
	slot := p.ringSlotOff(p.tail)
	p.dev.Store64(slot, uint64(off))
	p.dev.Store64(slot+8, entryStamp(kind, p.tail, epoch, off))
	p.tail++
}

// FlushRing issues write-backs for all ring entries appended since the last
// flush. Sequential appends flush at line granularity, matching the paper's
// batched free-list persistence.
func (p *Pool) FlushRing() {
	for pos := p.flushFrom; pos < p.tail; {
		slot := p.ringSlotOff(pos)
		lineStart := slot / line * line
		lineEnd := lineStart + line
		p.dev.Flush(lineStart, line)
		// Advance pos past every entry within this flushed line, handling
		// ring wraparound (entries in one line are contiguous positions).
		for pos < p.tail && p.ringSlotOff(pos) >= lineStart && p.ringSlotOff(pos) < lineEnd {
			pos++
		}
		p.flushFrom = pos
	}
}

// Checkpoint writes the DRAM bump/head/tail into the parity slots for the
// given epoch and flushes the ring and control line. The caller issues the
// fence (one fence covers all pools), then calls Checkpointed. Under a
// pipelined commit the committer must call Checkpoint before the owner core
// enters the next epoch's init phase for this pool (the engine's per-pool
// staging token), so the values read here are still end-of-epoch values.
func (p *Pool) Checkpoint(epoch uint64) {
	p.FlushRing()
	par := int64(epoch % 2)
	p.dev.Store64(p.ctlOff+ctlBump0+par*8, uint64(p.bump))
	p.dev.Store64(p.ctlOff+ctlHead0+par*8, uint64(p.head))
	p.dev.Store64(p.ctlOff+ctlTail0+par*8, uint64(p.tail))
	p.dev.Flush(p.ctlOff, line)
	p.stagedHead, p.stagedTail = p.head, p.tail
}

// Checkpointed commits the checkpoint barriers after the caller's fence
// made the epoch durable: entries freed last epoch become allocatable. It
// publishes the values Checkpoint staged, which under a pipelined commit
// may trail the live offsets by the next epoch's own frees.
func (p *Pool) Checkpointed() {
	p.headCkpt.Store(p.stagedHead)
	p.tailCkpt.Store(p.stagedTail)
}

// Recover restores the DRAM state from the checkpoint of ckptEpoch and,
// when adoptGC is set, adopts the crashed epoch's (ckptEpoch+1's) major-GC
// frees by scanning the ring past the checkpointed tail while entries carry
// a valid GC stamp for that epoch. Those frees are non-revertible: they
// came from phase 1 of major GC, which fences them durable before phase 2
// rewrites any row, so
//
//   - if any collected row landed in NVMM, the fence preceding phase 2 has
//     completed and every GC entry is durable — the scan adopts them all
//     and no freed slot leaks;
//   - if the crash hit before that fence, entries may have landed partially
//     (cache evictions), but then no row was collected: the adopted prefix
//     is a subset of frees the replayed GC re-issues, and the returned
//     duplicate-suppression set prevents the double free.
//
// Both arms assume the crashed epoch is REPLAYED, which is why the caller
// gates adoption: adoptGC must be set only when the crashed epoch's logged
// inputs are durable. When they are not, the epoch's single init fence —
// which orders the input log before any GC phase-2 rewrite — cannot have
// completed, so no row was collected, every queued row still references its
// stale slot, and the epoch's landed entries must vanish with the rest of
// the epoch (they are overwritten when the ring tail advances again).
// Adopting them without the replay's re-issued collection would free slots
// that live rows still point to.
//
// Transaction frees ('T' stamps, appended only after the GC phase of the
// epoch) and stale bytes from earlier epochs or earlier ring wraps fail the
// stamp check and stop the scan. It returns the offsets freed
// non-revertibly in the crashed epoch, which recovery uses as the
// duplicate-suppression set when it re-runs major GC.
func (p *Pool) Recover(ckptEpoch uint64, adoptGC bool) []int64 {
	par := int64(ckptEpoch % 2)
	p.bump = int64(p.dev.Load64(p.ctlOff + ctlBump0 + par*8))
	p.head = int64(p.dev.Load64(p.ctlOff + ctlHead0 + par*8))
	p.tail = int64(p.dev.Load64(p.ctlOff + ctlTail0 + par*8))
	ckptTail := p.tail
	var gcFrees []int64
	if adoptGC {
		for pos := ckptTail; pos-ckptTail < p.ringCap; pos++ {
			slot := p.ringSlotOff(pos)
			off := int64(p.dev.Load64(slot))
			if p.dev.Load64(slot+8) != entryStamp(entryGC, pos, ckptEpoch+1, off) {
				break
			}
			gcFrees = append(gcFrees, off)
		}
	}
	p.tail = ckptTail + int64(len(gcFrees))
	p.headCkpt.Store(p.head)
	// Invariant 2 uses the checkpointed tail, not the adopted tail: slots
	// freed by the crashed epoch's GC must not be reallocated while that
	// epoch is replayed.
	p.tailCkpt.Store(ckptTail)
	p.flushFrom = p.tail
	return gcFrees
}

// FreeSet returns the set of slot offsets currently on the free list
// (between head and tail). Recovery uses it to skip free slots while
// scanning the bump region for live rows.
func (p *Pool) FreeSet() map[int64]struct{} {
	s := make(map[int64]struct{}, p.tail-p.head)
	for pos := p.head; pos < p.tail; pos++ {
		s[int64(p.dev.Load64(p.ringSlotOff(pos)))] = struct{}{}
	}
	return s
}

// FreeList returns the free-list entries in ring order, head to tail,
// including duplicates. Invariant checkers use it to detect double frees,
// which FreeSet's map form would silently collapse.
func (p *Pool) FreeList() []int64 {
	l := make([]int64, 0, p.tail-p.head)
	for pos := p.head; pos < p.tail; pos++ {
		l = append(l, int64(p.dev.Load64(p.ringSlotOff(pos))))
	}
	return l
}
