package pmem

import (
	"errors"
	"fmt"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Control-line field offsets (all eight fields share one cache line, which
// is safe: a checkpoint modifies only the current-parity slots and then
// persists the line; an un-fenced crash reverts the whole line to the
// previous checkpoint's content, in which the other-parity slots are the
// ones recovery reads).
const (
	ctlBump0 = 0  // bump offset, even-epoch checkpoint
	ctlBump1 = 8  // bump offset, odd-epoch checkpoint
	ctlHead0 = 16 // free-list head, even
	ctlHead1 = 24 // free-list head, odd
	ctlTail0 = 32 // free-list tail, even
	ctlTail1 = 40 // free-list tail, odd
	ctlCTEp  = 48 // epoch stamp of the non-revertible current-tail slot
	ctlCT    = 56 // current tail (persisted after major GC, before execution)
)

// ErrPoolFull is returned when neither the free list nor the bump region
// can satisfy an allocation.
var ErrPoolFull = errors.New("pmem: pool out of space")

// Pool is one core's persistent slot allocator: a bump allocator over a
// fixed slot region plus a ring-buffer free list, both with dual
// epoch-checkpointed control offsets (paper §5.4, Figure 4).
//
// A Pool is owned by a single core: all calls must come from one goroutine
// at a time. Cross-core offsets may be freed into any pool because ring
// entries are absolute device offsets.
//
// All pool device traffic (ring appends/reads, control-line checkpoints)
// is attributed to obs.CauseAlloc, including appends made on behalf of GC:
// the GC causes cover row rewrites only, allocator bookkeeping stays with
// the allocator.
type Pool struct {
	dev      nvm.Tagged
	ctlOff   int64
	ringOff  int64
	dataOff  int64
	slotSize int64
	capSlots int64
	ringCap  int64

	// DRAM state (Figure 4's "offset", "head", "tail").
	bump int64 // slots handed out from the bump region
	head int64 // logical free-list consume position (monotonic)
	tail int64 // logical free-list append position (monotonic)

	// Checkpoint barriers.
	headCkpt int64 // head at last checkpoint: entries >= headCkpt must survive a crash
	tailCkpt int64 // tail at last checkpoint: allocations must not cross it (invariant 2)

	// Ring-flush bookkeeping: appends since the last flush.
	flushFrom int64
}

// RowPool returns core c's persistent row pool.
func RowPool(dev *nvm.Device, l Layout, c int) *Pool {
	return &Pool{
		dev:      dev.Tag(obs.CauseAlloc),
		ctlOff:   l.rowCtlOff[c],
		ringOff:  l.rowRingOff[c],
		dataOff:  l.rowDataOff[c],
		slotSize: l.RowSize,
		capSlots: l.RowsPerCore,
		ringCap:  l.RingCap,
	}
}

// ValuePool returns core c's persistent value pool for size class k.
func ValuePool(dev *nvm.Device, l Layout, k, c int) *Pool {
	return &Pool{
		dev:      dev.Tag(obs.CauseAlloc),
		ctlOff:   l.valCtlOff[k][c],
		ringOff:  l.valRingOff[k][c],
		dataOff:  l.valDataOff[k][c],
		slotSize: l.valClasses[k],
		capSlots: l.ValuesPerCore,
		ringCap:  l.RingCap,
	}
}

// SlotSize returns the fixed slot size of this pool.
func (p *Pool) SlotSize() int64 { return p.slotSize }

// DataBase returns the base offset of the pool's slot region.
func (p *Pool) DataBase() int64 { return p.dataOff }

// Bump returns the number of slots handed out from the bump region.
func (p *Pool) Bump() int64 { return p.bump }

// FreeCount returns the number of entries currently on the free list.
func (p *Pool) FreeCount() int64 { return p.tail - p.head }

// UsedBytes returns the bytes of the bump region in use (upper bound on
// live data; free-list slots within it are reusable).
func (p *Pool) UsedBytes() int64 { return p.bump * p.slotSize }

func (p *Pool) ringSlotOff(pos int64) int64 {
	return p.ringOff + (pos%p.ringCap)*8
}

// Alloc returns the device offset of a free slot. It prefers the free list
// but never consumes entries appended after the last checkpoint (invariant
// 2: slots freed in the current epoch must not be reused until the epoch is
// checkpointed, so their deletion can be reverted). Allocation never writes
// NVMM: only the DRAM head or bump offset moves.
func (p *Pool) Alloc() (int64, error) {
	if p.head < p.tailCkpt {
		off := int64(p.dev.Load64(p.ringSlotOff(p.head)))
		p.head++
		return off, nil
	}
	if p.bump < p.capSlots {
		off := p.dataOff + p.bump*p.slotSize
		p.bump++
		return off, nil
	}
	return 0, fmt.Errorf("%w (cap %d slots of %d bytes)", ErrPoolFull, p.capSlots, p.slotSize)
}

// Free appends the slot at off to the free list. The ring entry is written
// to NVMM but not flushed; FlushRing batches the writeback. The entry
// becomes allocatable only after the next checkpoint.
func (p *Pool) Free(off int64) {
	if p.tail-p.headCkpt >= p.ringCap {
		// The ring must retain every entry from the last checkpointed head
		// onward so a crash can revert consumption; running out means the
		// pool was sized too small for the workload's churn.
		panic(fmt.Sprintf("pmem: free-list ring overflow (cap %d)", p.ringCap))
	}
	p.dev.Store64(p.ringSlotOff(p.tail), uint64(off))
	p.tail++
}

// FlushRing issues write-backs for all ring entries appended since the last
// flush. Sequential appends flush at line granularity, matching the paper's
// batched free-list persistence.
func (p *Pool) FlushRing() {
	for pos := p.flushFrom; pos < p.tail; {
		slot := p.ringSlotOff(pos)
		lineStart := slot / line * line
		lineEnd := lineStart + line
		p.dev.Flush(lineStart, line)
		// Advance pos past every entry within this flushed line, handling
		// ring wraparound (entries in one line are contiguous positions).
		for pos < p.tail && p.ringSlotOff(pos) >= lineStart && p.ringSlotOff(pos) < lineEnd {
			pos++
		}
		p.flushFrom = pos
	}
}

// Checkpoint writes the DRAM bump/head/tail into the parity slots for the
// given epoch and flushes the ring and control line. The caller issues the
// fence (one fence covers all pools), then calls Checkpointed.
func (p *Pool) Checkpoint(epoch uint64) {
	p.FlushRing()
	par := int64(epoch % 2)
	p.dev.Store64(p.ctlOff+ctlBump0+par*8, uint64(p.bump))
	p.dev.Store64(p.ctlOff+ctlHead0+par*8, uint64(p.head))
	p.dev.Store64(p.ctlOff+ctlTail0+par*8, uint64(p.tail))
	p.dev.Flush(p.ctlOff, line)
}

// Checkpointed commits the checkpoint barriers after the caller's fence
// made the epoch durable: entries freed last epoch become allocatable.
func (p *Pool) Checkpointed() {
	p.headCkpt = p.head
	p.tailCkpt = p.tail
}

// StageCurrentTail writes and flushes the third, non-revertible tail offset
// (paper §5.5) after major GC appends its frees and before the execution
// phase. The caller must issue one fence covering all pools before
// execution begins; after that fence the GC frees are durable and survive a
// crash during execution, while frees appended later (by transaction
// deletes) will be reverted.
func (p *Pool) StageCurrentTail(epoch uint64) {
	p.FlushRing()
	p.dev.Store64(p.ctlOff+ctlCT, uint64(p.tail))
	p.dev.Store64(p.ctlOff+ctlCTEp, epoch)
	p.dev.Flush(p.ctlOff, line)
}

// Recover restores the DRAM state from the checkpoint of ckptEpoch. If the
// crashed epoch (ckptEpoch+1) had persisted a current-tail slot, the tail
// adopts it: those frees came from major GC and are non-revertible.
// It returns the offsets freed non-revertibly in the crashed epoch, which
// recovery uses as the duplicate-suppression set when it re-runs major GC.
func (p *Pool) Recover(ckptEpoch uint64) []int64 {
	par := int64(ckptEpoch % 2)
	p.bump = int64(p.dev.Load64(p.ctlOff + ctlBump0 + par*8))
	p.head = int64(p.dev.Load64(p.ctlOff + ctlHead0 + par*8))
	p.tail = int64(p.dev.Load64(p.ctlOff + ctlTail0 + par*8))
	ckptTail := p.tail
	var gcFrees []int64
	if p.dev.Load64(p.ctlOff+ctlCTEp) == ckptEpoch+1 {
		ct := int64(p.dev.Load64(p.ctlOff + ctlCT))
		for pos := ckptTail; pos < ct; pos++ {
			gcFrees = append(gcFrees, int64(p.dev.Load64(p.ringSlotOff(pos))))
		}
		p.tail = ct
	}
	p.headCkpt = p.head
	// Invariant 2 uses the checkpointed tail, not the adopted current tail:
	// slots freed by the crashed epoch's GC must not be reallocated while
	// that epoch is replayed.
	p.tailCkpt = ckptTail
	p.flushFrom = p.tail
	return gcFrees
}

// FreeSet returns the set of slot offsets currently on the free list
// (between head and tail). Recovery uses it to skip free slots while
// scanning the bump region for live rows.
func (p *Pool) FreeSet() map[int64]struct{} {
	s := make(map[int64]struct{}, p.tail-p.head)
	for pos := p.head; pos < p.tail; pos++ {
		s[int64(p.dev.Load64(p.ringSlotOff(pos)))] = struct{}{}
	}
	return s
}

// FreeList returns the free-list entries in ring order, head to tail,
// including duplicates. Invariant checkers use it to detect double frees,
// which FreeSet's map form would silently collapse.
func (p *Pool) FreeList() []int64 {
	l := make([]int64, 0, p.tail-p.head)
	for pos := p.head; pos < p.tail; pos++ {
		l = append(l, int64(p.dev.Load64(p.ringSlotOff(pos))))
	}
	return l
}
